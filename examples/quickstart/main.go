// Quickstart: build a tiny dynamic-parallelism workload by hand, run it on
// the simulated K20c under the baseline round-robin scheduler and under
// LaPerm's Adaptive-Bind, and compare the outcomes.
package main

import (
	"fmt"
	"log"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// buildWorkload creates a parent kernel of 512 thread blocks. Each parent
// TB reads a private 4 KB slab and launches one child TB that re-reads the
// same slab — the parent-child locality LaPerm exploits.
func buildWorkload() *isa.Kernel {
	kb := isa.NewKernel("quickstart")
	for p := 0; p < 512; p++ {
		slab := uint64(p) * 4096
		child := isa.NewKernel("child").Add(
			isa.NewTB(64).
				LoadSeq(slab, 8). // re-read the parent's slab
				Compute(20).
				StoreSeq(0x8000_0000+slab, 2).
				Build(),
		).Build()
		kb.Add(isa.NewTB(64).
			LoadSeq(slab, 8). // produce/inspect the slab
			Compute(20).
			Launch(0, child).
			Compute(20).
			Build())
	}
	return kb.Build()
}

func run(sched gpu.TBScheduler) *gpu.Result {
	cfg := config.KeplerK20c()
	sim, err := gpu.New(gpu.Options{
		Config:    &cfg,
		Scheduler: sched,
		Model:     gpu.DTBL,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sim.LaunchHost(buildWorkload()); err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	cfg := config.KeplerK20c()
	fmt.Println("simulating:", cfg.String())
	fmt.Println()

	baseline := run(core.NewRoundRobin())
	laperm := run(core.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels))

	fmt.Println("round-robin  :", baseline)
	fmt.Println("adaptive-bind:", laperm)
	fmt.Println()
	fmt.Printf("speedup: %.2fx  (L1 %.1f%% -> %.1f%%, child wait %.0f -> %.0f cycles)\n",
		laperm.IPC/baseline.IPC,
		100*baseline.L1.HitRate(), 100*laperm.L1.HitRate(),
		baseline.AvgChildWait, laperm.AvgChildWait)
}
