// scheduler_compare runs one workload (default: relational join with
// gaussian-skewed partitions, a load-imbalance stress) across the full
// scheduler matrix and prints every statistic relevant to the LaPerm
// trade-off: IPC, cache hit rates, child wait, SMX imbalance.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

func main() {
	workload := flag.String("workload", "join-gaussian", "workload to compare schedulers on")
	flag.Parse()

	w, err := kernels.Lookup(*workload)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tscheduler\tcycles\tIPC\tL1\tL2\tchild wait\timbalance")
	for _, model := range gpu.Models() {
		for _, sched := range exp.SchedulerNames {
			res, err := exp.RunOne(w, model, sched, exp.Options{Scale: kernels.ScaleSmall})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%v\t%s\t%d\t%.1f\t%.1f%%\t%.1f%%\t%.0f\t%.3f\n",
				model, sched, res.Cycles, res.IPC,
				100*res.L1.HitRate(), 100*res.L2.HitRate(),
				res.AvgChildWait, res.LoadImbalance)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
