// multilevel_bfs runs a complete breadth-first traversal, not just one
// level: the host-side reference BFS computes the real frontiers of a
// generated graph, then each level becomes one host kernel whose parent TBs
// own actual frontier vertices and delegate the high-degree ones to child
// TBs — the full algorithmic loop the paper's BFS benchmark iterates.
// Because all levels are submitted together, later levels' parents overlap
// with earlier levels' children on the machine.
//
// This example deliberately exposes a structural limit of the Figure 6
// flow: BFS frontiers are wildly uneven, so a small early level's hub
// children all bind to one or two SMXs, while stage 2 keeps feeding the
// other SMXs parent TBs from later levels instead of letting stage 3 steal
// from the overloaded bank. On this shape the binding schedulers lose to
// plain round-robin — dispatching parents before stolen children is exactly
// what the paper's scheduler specifies, and it is the right call only when
// parent supply, not a clogged bank, is the bottleneck. The Table II
// workloads (single kernel, dense launches) are the regime LaPerm targets;
// compare examples/bfs.
package main

import (
	"fmt"
	"log"

	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/graph"
	"laperm/internal/isa"
)

const (
	rowPtrBase   = 0x0000_0000
	colBase      = 0x1000_0000
	levelBase    = 0x2000_0000
	frontierBase = 0x3000_0000
	tbThreads    = 64
	degThreshold = 16
)

// levelKernel builds the expansion kernel for one BFS frontier.
func levelKernel(g *graph.CSR, frontier []int32, level int) *isa.Kernel {
	kb := isa.NewKernel(fmt.Sprintf("bfs-level-%d", level))
	for base := 0; base < len(frontier); base += tbThreads {
		n := len(frontier) - base
		if n > tbThreads {
			n = tbThreads
		}
		b := isa.NewTB(tbThreads).Resources(24, 0)
		vertexOf := func(tid int) int { return int(frontier[base+tid%n]) }

		// Row bounds and level of each owned frontier vertex.
		b.Load(func(tid int) uint64 { return rowPtrBase + uint64(vertexOf(tid))*4 })
		b.Load(func(tid int) uint64 { return rowPtrBase + uint64(vertexOf(tid)+1)*4 })
		b.Compute(8)
		b.Load(func(tid int) uint64 { return levelBase + uint64(vertexOf(tid))*4 })
		b.Compute(8)

		for t := 0; t < n; t++ {
			v := vertexOf(t)
			if g.Degree(v) > degThreshold {
				b.Launch(t, expandChild(g, v, level))
			}
		}

		// Inline expansion of the low-degree vertices.
		for step := 0; step < degThreshold; step++ {
			addrs := make([]uint64, tbThreads)
			active := make([]bool, tbThreads)
			any := false
			for t := 0; t < tbThreads; t++ {
				v := vertexOf(t)
				if d := g.Degree(v); d <= degThreshold && step < d {
					addrs[t] = colBase + uint64(int(g.RowPtr[v])+step)*4
					active[t] = true
					any = true
				}
			}
			if any {
				b.LoadMasked(addrs, active)
			}
		}
		b.Compute(8)
		b.Store(func(tid int) uint64 { return frontierBase + uint64(vertexOf(tid))*4 })
		kb.Add(b.Build())
	}
	return kb.Build()
}

// expandChild streams the full adjacency of a high-degree vertex.
func expandChild(g *graph.CSR, v, level int) *isa.Kernel {
	deg := g.Degree(v)
	row := int(g.RowPtr[v])
	kb := isa.NewKernel(fmt.Sprintf("bfs-child-%d", level))
	for off := 0; off < deg; off += tbThreads {
		n := deg - off
		if n > tbThreads {
			n = tbThreads
		}
		b := isa.NewTB(tbThreads).Resources(20, 0)
		b.Load(func(tid int) uint64 { return rowPtrBase + uint64(v)*4 })
		addrs := make([]uint64, tbThreads)
		active := make([]bool, tbThreads)
		for t := 0; t < n; t++ {
			addrs[t] = colBase + uint64(row+off+t)*4
			active[t] = true
		}
		b.LoadMasked(addrs, active)
		b.Compute(6)
		for t := 0; t < n; t++ {
			addrs[t] = levelBase + uint64(g.Col[row+off+t])*4
		}
		b.LoadMasked(addrs, active)
		b.Compute(6)
		for t := 0; t < n; t++ {
			addrs[t] = frontierBase + uint64(g.Col[row+off+t])*4
		}
		b.StoreMasked(addrs, active)
		kb.Add(b.Build())
	}
	return kb.Build()
}

func main() {
	g := graph.Citation(16384, 5, 42)
	levels, frontiers := graph.BFSLevels(g, 0)
	reached := 0
	for _, l := range levels {
		if l >= 0 {
			reached++
		}
	}
	fmt.Printf("graph: %d vertices, %d edges; BFS from 0 reaches %d in %d levels\n",
		g.NumVertices(), g.NumEdges(), reached, len(frontiers))

	for _, schedName := range []string{"rr", "adaptive-bind"} {
		cfg := config.KeplerK20c()
		sched, err := exp.NewScheduler(schedName, &cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := gpu.New(gpu.Options{Config: &cfg, Scheduler: sched, Model: gpu.DTBL})
		if err != nil {
			log.Fatal(err)
		}
		for li, frontier := range frontiers {
			if len(frontier) == 0 {
				continue
			}
			if err := sim.LaunchHost(levelKernel(g, frontier, li)); err != nil {
				log.Fatal(err)
			}
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
}
