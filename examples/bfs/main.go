// BFS example: the paper's motivating workload. Runs one frontier-expansion
// level of breadth-first search over each of the three graph inputs
// (citation-like, graph500-like R-MAT, cage15-like banded) under every TB
// scheduler, on both dynamic-parallelism models, and prints the comparison.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

func main() {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "input\tmodel\tscheduler\tcycles\tIPC\tL1\tL2\tspeedup vs rr")
	for _, name := range []string{"bfs-citation", "bfs-graph5", "bfs-cage15"} {
		w, err := kernels.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, model := range gpu.Models() {
			var base float64
			for _, sched := range exp.SchedulerNames {
				res, err := exp.RunOne(w, model, sched, exp.Options{Scale: kernels.ScaleSmall})
				if err != nil {
					log.Fatal(err)
				}
				if sched == "rr" {
					base = res.IPC
				}
				fmt.Fprintf(tw, "%s\t%v\t%s\t%d\t%.1f\t%.1f%%\t%.1f%%\t%.3f\n",
					w.Input, model, sched, res.Cycles, res.IPC,
					100*res.L1.HitRate(), 100*res.L2.HitRate(), res.IPC/base)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
