// latency_study dissects where a dynamic child's time goes — launch
// latency, scheduler queueing, execution — under the baseline and under
// LaPerm, and prints a sampled timeline of each run. The queueing component
// (arrive -> first dispatch) is precisely what the LaPerm scheduler attacks
// (Section III-B).
package main

import (
	"fmt"
	"log"

	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/metrics"
)

func main() {
	w, err := kernels.Lookup("bfs-citation")
	if err != nil {
		log.Fatal(err)
	}
	for _, schedName := range exp.SchedulerNames {
		cfg := config.KeplerK20c()
		sched, err := exp.NewScheduler(schedName, &cfg)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := gpu.New(gpu.Options{
			Config:      &cfg,
			Scheduler:   sched,
			Model:       gpu.DTBL,
			SampleEvery: 10_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.LaunchHost(w.Build(kernels.ScaleSmall)); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("=== %s ===\n", schedName)
		fmt.Println(res)
		fmt.Println(metrics.AnalyzeChildLatency(sim.Kernels()))
		fmt.Println("timeline:")
		for _, s := range res.Timeline {
			fmt.Printf("  cycle %-7d ipc %-6.1f L1 %5.1f%%  L2 %5.1f%%  resident TBs %-4d live kernels %d\n",
				s.Cycle, s.IPC, 100*s.L1, 100*s.L2, s.ResidentTBs, s.LiveKernels)
		}
		fmt.Println()
	}
}
