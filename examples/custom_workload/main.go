// custom_workload shows how a downstream user writes their own
// dynamic-parallelism workload against the library: a toy sparse
// matrix-vector multiply where heavy rows are delegated to child TBs. It
// then runs the Section III-A footprint analysis on the program and
// simulates it under two schedulers.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
	"laperm/internal/metrics"
)

const (
	rowsPerTB = 64
	numTBs    = 384
	// Region layout for the SpMV data structures.
	rowPtrBase = 0x0000_0000
	colBase    = 0x1000_0000
	valBase    = 0x2000_0000
	vecBase    = 0x3000_0000
	outBase    = 0x4000_0000
)

// buildSpMV builds the workload: each parent TB multiplies 64 rows; rows
// with more than 16 nonzeros get a child TB.
func buildSpMV() *isa.Kernel {
	rng := rand.New(rand.NewSource(7))
	// Synthesize row lengths with a heavy tail and running offsets.
	nnzStart := make([]int, numTBs*rowsPerTB+1)
	for r := 1; r < len(nnzStart); r++ {
		length := 2 + rng.Intn(12)
		if rng.Float64() < 0.15 {
			length = 24 + rng.Intn(40) // heavy row
		}
		nnzStart[r] = nnzStart[r-1] + length
	}
	rowLen := func(r int) int { return nnzStart[r+1] - nnzStart[r] }

	kb := isa.NewKernel("spmv")
	for p := 0; p < numTBs; p++ {
		base := p * rowsPerTB
		b := isa.NewTB(rowsPerTB).Resources(24, 0)
		// Row bounds for each owned row.
		b.Load(func(tid int) uint64 { return rowPtrBase + uint64(base+tid)*4 })
		b.Load(func(tid int) uint64 { return rowPtrBase + uint64(base+tid+1)*4 })
		b.Compute(8)
		for t := 0; t < rowsPerTB; t++ {
			r := base + t
			if rowLen(r) <= 16 {
				continue
			}
			// Heavy row: child TB streams its nonzeros.
			start, n := nnzStart[r], rowLen(r)
			child := isa.NewTB(rowsPerTB)
			child.Load(func(tid int) uint64 { return rowPtrBase + uint64(r)*4 })
			addrs := make([]uint64, rowsPerTB)
			active := make([]bool, rowsPerTB)
			for i := 0; i < n && i < rowsPerTB; i++ {
				addrs[i] = colBase + uint64(start+i)*4
				active[i] = true
			}
			child.LoadMasked(addrs, active)
			for i := 0; i < n && i < rowsPerTB; i++ {
				addrs[i] = valBase + uint64(start+i)*8
			}
			child.LoadMasked(addrs, active)
			child.Compute(16)
			child.Store(func(tid int) uint64 { return outBase + uint64(r)*8 })
			b.Launch(t, isa.NewKernel("spmv-row").Add(child.Build()).Build())
		}
		// Light rows inline: stream up to 16 nonzeros each.
		for step := 0; step < 16; step++ {
			addrs := make([]uint64, rowsPerTB)
			active := make([]bool, rowsPerTB)
			any := false
			for t := 0; t < rowsPerTB; t++ {
				r := base + t
				if rowLen(r) <= 16 && step < rowLen(r) {
					addrs[t] = valBase + uint64(nnzStart[r]+step)*8
					active[t] = true
					any = true
				}
			}
			if any {
				b.LoadMasked(addrs, active)
			}
		}
		b.Compute(12)
		b.Store(func(tid int) uint64 { return outBase + uint64(base+tid)*8 })
		kb.Add(b.Build())
	}
	return kb.Build()
}

func main() {
	k := buildSpMV()
	if err := k.Validate(); err != nil {
		log.Fatalf("workload does not validate: %v", err)
	}

	// Static locality analysis (Figure 2 methodology).
	fmt.Println(metrics.AnalyzeFootprint("spmv", k))

	// Simulate under the baseline and under LaPerm.
	for _, mk := range []func(cfg *config.GPU) gpu.TBScheduler{
		func(cfg *config.GPU) gpu.TBScheduler { return core.NewRoundRobin() },
		func(cfg *config.GPU) gpu.TBScheduler {
			return core.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels)
		},
	} {
		cfg := config.KeplerK20c()
		sim, err := gpu.New(gpu.Options{Config: &cfg, Scheduler: mk(&cfg), Model: gpu.DTBL})
		if err != nil {
			log.Fatal(err)
		}
		if err := sim.LaunchHost(buildSpMV()); err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res)
	}
}
