package laperm_test

import (
	"fmt"

	"laperm"
)

// Example shows the minimal end-to-end flow: pick a Table II workload,
// simulate it on the Table I machine under a LaPerm scheduler, and read the
// statistics. (Output is machine-shaped, so it is not pinned here.)
func Example() {
	cfg := laperm.KeplerK20c()
	sim, err := laperm.NewSimulator(laperm.SimOptions{
		Config:    &cfg,
		Scheduler: laperm.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels),
		Model:     laperm.DTBL,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	w, err := laperm.WorkloadByName("bfs-citation")
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := sim.LaunchHost(w.Build(laperm.ScaleTiny)); err != nil {
		fmt.Println(err)
		return
	}
	res, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	_ = res.IPC          // instructions per cycle
	_ = res.L1.HitRate() // L1 hit rate
	_ = res.AvgChildWait // launch-to-dispatch gap LaPerm shrinks
}

// Example_customKernel builds a dynamic-parallelism program by hand with
// the builders and checks its parent-child footprint overlap.
func Example_customKernel() {
	child := laperm.NewKernel("child").Add(
		laperm.NewTB(64).LoadSeq(0x1000, 8).Compute(16).Build(),
	).Build()
	parent := laperm.NewKernel("parent").Add(
		laperm.NewTB(64).LoadSeq(0x1000, 8).Launch(0, child).Build(),
	).Build()

	st := laperm.AnalyzeFootprint("custom", parent)
	fmt.Printf("parent-child shared footprint: %.0f%%\n", 100*st.ParentChild)
	// Output: parent-child shared footprint: 100%
}
