package laperm_test

// The README's scheduler and launch-model tables claim to be derived from
// the registries; this test makes that claim true. Every registered entry
// must have a table row carrying its exact registry description, and the
// scheduler rows' ✓/— flag columns must match the registry metadata, so
// registering a policy without documenting it (or documenting behaviour the
// registry does not declare) fails the build.

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"laperm"
)

// readmeRow finds the table row for a registry name and returns its cells
// (trimmed, excluding the leading name cell).
func readmeRow(t *testing.T, readme, name string) []string {
	t.Helper()
	prefix := fmt.Sprintf("| `%s` |", name)
	for _, line := range strings.Split(readme, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		for i := range cells {
			cells[i] = strings.TrimSpace(cells[i])
		}
		return cells[1:] // drop the name cell
	}
	t.Fatalf("README.md has no table row for registered name %q", name)
	return nil
}

func flagCell(on bool) string {
	if on {
		return "✓"
	}
	return "—"
}

func TestReadmeTablesMatchRegistries(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)

	for _, info := range laperm.Schedulers() {
		row := readmeRow(t, readme, info.Name)
		if len(row) != 4 {
			t.Errorf("%s: row has %d cells, want 4 (child-first, binding, strict, description)", info.Name, len(row))
			continue
		}
		if row[0] != flagCell(info.ChildFirst) {
			t.Errorf("%s: child-first cell %q, registry says %v", info.Name, row[0], info.ChildFirst)
		}
		if row[1] != flagCell(info.Binding) {
			t.Errorf("%s: SMX-binding cell %q, registry says %v", info.Name, row[1], info.Binding)
		}
		if row[2] != flagCell(info.StrictBinding) {
			t.Errorf("%s: strict cell %q, registry says %v", info.Name, row[2], info.StrictBinding)
		}
		if row[3] != info.Description {
			t.Errorf("%s: description cell %q differs from registry description %q", info.Name, row[3], info.Description)
		}
	}

	for _, info := range laperm.ModelInfos() {
		row := readmeRow(t, readme, info.Name)
		if len(row) != 1 {
			t.Errorf("%s: row has %d cells, want 1 (description)", info.Name, len(row))
			continue
		}
		if row[0] != info.Description {
			t.Errorf("%s: description cell %q differs from registry description %q", info.Name, row[0], info.Description)
		}
	}
}

// TestReadmeSweepSectionMatchesSpec pins the sweep documentation the same
// way: the "Running sweeps against the service" section must exist and
// enumerate every axis field the spec package actually accepts, so adding
// a sweepable RunSpec field without documenting it fails the build.
func TestReadmeSweepSectionMatchesSpec(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)

	const heading = "## Running sweeps against the service"
	start := strings.Index(readme, heading)
	if start < 0 {
		t.Fatalf("README.md has no %q section", heading)
	}
	section := readme[start:]
	if end := strings.Index(section[len(heading):], "\n## "); end >= 0 {
		section = section[:len(heading)+end]
	}

	for _, field := range laperm.SweepAxisFields() {
		if !strings.Contains(section, "`"+field+"`") {
			t.Errorf("sweep section does not document axis field `%s`", field)
		}
	}
	for _, must := range []string{"/v1/sweeps", "Last-Event-ID", "cells.csv", "`retryable`"} {
		if !strings.Contains(section, must) {
			t.Errorf("sweep section does not mention %s", must)
		}
	}
}
