// Benchmarks, one per table and figure of the paper's evaluation (plus the
// inferred sensitivity studies of DESIGN.md). Each benchmark runs its
// experiment on a reduced 4-SMX machine with tiny workloads so an iteration
// is fast while contention (several waves of thread blocks per SMX) is
// preserved; paper-scale regeneration is `go run ./cmd/laperm-experiments`.
// Benchmarks report the figure's headline quantity via b.ReportMetric.
package laperm_test

import (
	"testing"

	"laperm"
	"laperm/internal/config"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/metrics"
)

// benchConfig is a reduced machine on which the tiny workloads (32 parent
// TBs plus children) still queue for several dispatch waves.
func benchConfig() *config.GPU {
	g := config.SmallTest()
	g.NumSMX = 4
	g.TBsPerSMX = 4
	return &g
}

// benchWorkloads is the representative subset benchmarked per figure (one
// per application class); the full 16-workload sweep lives in the
// experiment CLI.
var benchWorkloads = []string{"bfs-citation", "amr", "join-gaussian", "regx-strings"}

func benchOptions() exp.Options {
	return exp.Options{Scale: kernels.ScaleTiny, Config: benchConfig(), Workloads: benchWorkloads}
}

// warmBench builds every workload program once (the builds are memoized and
// shared, so only the first caller pays) and restarts the benchmark clock.
// Without this the first iteration carries one-time build costs that later
// iterations — and the allocation columns — never see again.
func warmBench(b *testing.B) {
	b.Helper()
	for _, w := range laperm.Workloads() {
		w.Build(laperm.ScaleTiny)
	}
	b.ReportAllocs()
	b.ResetTimer()
}

func runCell(b *testing.B, workload string, model gpu.Model, sched string) *gpu.Result {
	b.Helper()
	w, ok := kernels.ByName(workload)
	if !ok {
		b.Fatalf("unknown workload %s", workload)
	}
	res, err := exp.RunOne(w, model, sched, benchOptions())
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1_Config builds and validates the Table I configuration.
func BenchmarkTable1_Config(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := laperm.KeplerK20c()
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2_Inventory builds every Table II workload program.
func BenchmarkTable2_Inventory(b *testing.B) {
	warmBench(b)
	for i := 0; i < b.N; i++ {
		for _, w := range laperm.Workloads() {
			if k := w.Build(laperm.ScaleTiny); len(k.TBs) == 0 {
				b.Fatalf("%s built empty", w.Name)
			}
		}
	}
}

// BenchmarkFig2_SharedFootprint runs the Section III-A analysis and reports
// the average parent-child and child-sibling shared-footprint ratios.
func BenchmarkFig2_SharedFootprint(b *testing.B) {
	var pc, cs float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		var pcs, css []float64
		for _, w := range laperm.Workloads() {
			st := laperm.AnalyzeFootprint(w.Name, w.Build(laperm.ScaleTiny))
			pcs = append(pcs, st.ParentChild)
			css = append(css, st.ChildSibling)
		}
		pc, cs = metrics.Mean(pcs), metrics.Mean(css)
	}
	b.ReportMetric(100*pc, "parent-child-%")
	b.ReportMetric(100*cs, "child-sibling-%")
}

// hitRateDelta runs rr and adaptive-bind over the benchmark subset and
// returns the mean hit-rate improvement in percentage points.
func hitRateDelta(b *testing.B, model gpu.Model, pick func(*gpu.Result) float64) float64 {
	var deltas []float64
	for _, name := range benchWorkloads {
		rr := runCell(b, name, model, "rr")
		ab := runCell(b, name, model, "adaptive-bind")
		deltas = append(deltas, 100*(pick(ab)-pick(rr)))
	}
	return metrics.Mean(deltas)
}

// BenchmarkFig7_L2HitRate reports the L2 hit-rate gain of Adaptive-Bind
// over RR (Figure 7's headline movement), per model.
func BenchmarkFig7_L2HitRate(b *testing.B) {
	var cdp, dtbl float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		l2 := func(r *gpu.Result) float64 { return r.L2.HitRate() }
		cdp = hitRateDelta(b, gpu.CDP, l2)
		dtbl = hitRateDelta(b, gpu.DTBL, l2)
	}
	b.ReportMetric(cdp, "cdp-l2-delta-pp")
	b.ReportMetric(dtbl, "dtbl-l2-delta-pp")
}

// BenchmarkFig8_L1HitRate reports the L1 hit-rate gain of Adaptive-Bind
// over RR (Figure 8), per model.
func BenchmarkFig8_L1HitRate(b *testing.B) {
	var cdp, dtbl float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		l1 := func(r *gpu.Result) float64 { return r.L1.HitRate() }
		cdp = hitRateDelta(b, gpu.CDP, l1)
		dtbl = hitRateDelta(b, gpu.DTBL, l1)
	}
	b.ReportMetric(cdp, "cdp-l1-delta-pp")
	b.ReportMetric(dtbl, "dtbl-l1-delta-pp")
}

// ipcSpeedups returns each LaPerm scheme's mean IPC normalised to RR under
// the given model.
func ipcSpeedups(b *testing.B, model gpu.Model) map[string]float64 {
	out := make(map[string]float64)
	for _, sched := range []string{"tb-pri", "smx-bind", "adaptive-bind"} {
		var xs []float64
		for _, name := range benchWorkloads {
			rr := runCell(b, name, model, "rr")
			s := runCell(b, name, model, sched)
			xs = append(xs, s.IPC/rr.IPC)
		}
		out[sched] = metrics.Mean(xs)
	}
	return out
}

// BenchmarkFig9a_IPC_CDP reports normalised IPC under CDP (Figure 9(a)).
func BenchmarkFig9a_IPC_CDP(b *testing.B) {
	var sp map[string]float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		sp = ipcSpeedups(b, gpu.CDP)
	}
	b.ReportMetric(sp["tb-pri"], "tb-pri-x")
	b.ReportMetric(sp["adaptive-bind"], "adaptive-x")
}

// BenchmarkFig9b_IPC_DTBL reports normalised IPC under DTBL (Figure 9(b)).
func BenchmarkFig9b_IPC_DTBL(b *testing.B) {
	var sp map[string]float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		sp = ipcSpeedups(b, gpu.DTBL)
	}
	b.ReportMetric(sp["tb-pri"], "tb-pri-x")
	b.ReportMetric(sp["smx-bind"], "smx-bind-x")
	b.ReportMetric(sp["adaptive-bind"], "adaptive-x")
}

// BenchmarkFigA_LaunchLatency reports Adaptive-Bind's speedup over RR at a
// low and a high child launch latency (Section IV-D: the benefit shrinks as
// the launch path lengthens).
func BenchmarkFigA_LaunchLatency(b *testing.B) {
	speedupAt := func(lat int) float64 {
		cfg := benchConfig()
		cfg.DTBLLaunchLatency = lat
		opt := exp.Options{Scale: kernels.ScaleTiny, Config: cfg}
		w, _ := kernels.ByName("bfs-citation")
		rr, err := exp.RunOne(w, gpu.DTBL, "rr", opt)
		if err != nil {
			b.Fatal(err)
		}
		ab, err := exp.RunOne(w, gpu.DTBL, "adaptive-bind", opt)
		if err != nil {
			b.Fatal(err)
		}
		return ab.IPC / rr.IPC
	}
	var lo, hi float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		lo = speedupAt(10)
		hi = speedupAt(20000)
	}
	b.ReportMetric(lo, "speedup-lat10-x")
	b.ReportMetric(hi, "speedup-lat20k-x")
}

// BenchmarkFigB_LoadBalance reports the SMX busy-cycle imbalance of
// SMX-Bind vs Adaptive-Bind on the gaussian-skewed join (Section IV-C).
func BenchmarkFigB_LoadBalance(b *testing.B) {
	var sb, ab float64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		sb = runCell(b, "join-gaussian", gpu.DTBL, "smx-bind").LoadImbalance
		ab = runCell(b, "join-gaussian", gpu.DTBL, "adaptive-bind").LoadImbalance
	}
	b.ReportMetric(sb, "smx-bind-cv")
	b.ReportMetric(ab, "adaptive-cv")
}

// BenchmarkFigC_PriorityLevels reports end-to-end cycles of TB-Pri with the
// priority clamp L=1 vs L=4 on a 4-deep nested workload (Section IV-A).
func BenchmarkFigC_PriorityLevels(b *testing.B) {
	runAt := func(levels int) uint64 {
		cfg := benchConfig()
		cfg.MaxPriorityLevels = levels
		sched, err := exp.NewScheduler("tb-pri", cfg)
		if err != nil {
			b.Fatal(err)
		}
		sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: sched, Model: gpu.DTBL})
		if err := sim.LaunchHost(exp.NestedWorkload().Build(kernels.ScaleTiny)); err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			b.Fatal(err)
		}
		return res.Cycles
	}
	var l1, l4 uint64
	warmBench(b)
	for i := 0; i < b.N; i++ {
		l1 = runAt(1)
		l4 = runAt(4)
	}
	b.ReportMetric(float64(l1), "cycles-L1")
	b.ReportMetric(float64(l4), "cycles-L4")
}
