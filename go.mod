module laperm

go 1.22
