// Package laperm is a from-scratch reproduction of "LaPerm: Locality Aware
// Scheduler for Dynamic Parallelism on GPUs" (Wang, Rubin, Sidelnik,
// Yalamanchili — ISCA 2016): a cycle-level GPU simulator in the style of
// GPGPU-Sim configured as an NVIDIA Kepler K20c, both dynamic-parallelism
// launch models (CUDA Dynamic Parallelism device kernels and Dynamic Thread
// Block Launch TB groups), the baseline round-robin thread-block scheduler,
// the three LaPerm scheduling policies, the eight irregular benchmarks of
// the paper's Table II, and the analyses behind every table and figure of
// its evaluation.
//
// This package is the public facade: it re-exports the library's main types
// and constructors so downstream users need a single import. The
// implementation lives under internal/ (see DESIGN.md for the full module
// map):
//
//	internal/config   Table I machine description
//	internal/isa      abstract warp ISA and program builders
//	internal/mem      L1/L2/DRAM hierarchy with MSHRs and hashing
//	internal/smx      streaming multiprocessor and warp schedulers
//	internal/gpu      KMU/KDU, launch paths, engine loop
//	internal/core     the TB schedulers (the paper's contribution)
//	internal/graph    CSR substrate and synthetic graph inputs
//	internal/kernels  Table II workload generators
//	internal/metrics  shared-footprint analysis (Figure 2)
//	internal/exp      per-figure experiment runners
//
// # Quick start
//
//	cfg := laperm.KeplerK20c()
//	sim, err := laperm.NewSimulator(laperm.SimOptions{
//		Config:    &cfg,
//		Scheduler: laperm.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels),
//		Model:     laperm.DTBL,
//	})
//	if err != nil { ... }
//	w, err := laperm.WorkloadByName("bfs-citation")
//	if err != nil { ... }
//	if err := sim.LaunchHost(w.Build(laperm.ScaleSmall)); err != nil { ... }
//	res, err := sim.Run()
//
// Run returns structured errors for abnormal terminations: a
// *DeadlockError when the forward-progress watchdog catches a scheduling
// deadlock, an *InvariantError when auditing (SimOptions.Audit) finds
// corrupted engine state, and a *CycleLimitError when MaxCycles is hit.
// Inspect them with errors.As.
package laperm

import (
	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/isa"
	"laperm/internal/kernels"
	"laperm/internal/mem"
	"laperm/internal/metrics"
	"laperm/internal/spec"
	"laperm/internal/trace"
)

// Re-exported core types. The aliases make the internal implementation
// types usable from outside the module through this package.
type (
	// Config is the architectural configuration of the simulated GPU.
	Config = config.GPU
	// Model selects the dynamic-parallelism launch mechanism.
	Model = gpu.Model
	// Scheduler is a thread-block scheduling policy.
	Scheduler = gpu.TBScheduler
	// SimOptions configures a Simulator.
	SimOptions = gpu.Options
	// Simulator owns one end-to-end simulation.
	Simulator = gpu.Simulator
	// Result is the outcome of one simulation run.
	Result = gpu.Result
	// Kernel is a grid of thread-block programs.
	Kernel = isa.Kernel
	// TBBuilder assembles one thread block's program.
	TBBuilder = isa.TBBuilder
	// KernelBuilder assembles a grid.
	KernelBuilder = isa.KernelBuilder
	// Workload is one (application, input) pair of the evaluation.
	Workload = kernels.Workload
	// Scale selects workload size.
	Scale = kernels.Scale
	// FootprintStats is the Figure 2 shared-footprint measurement.
	FootprintStats = metrics.FootprintStats
	// ExpOptions configures an experiment run.
	ExpOptions = exp.Options
	// Experiment is one regenerable table or figure.
	Experiment = exp.Experiment
	// OverflowPolicy selects the behaviour of a launch that finds its
	// bounded queue full.
	OverflowPolicy = config.OverflowPolicy
	// DeadlockError is returned by Run when the forward-progress
	// watchdog finds a scheduling deadlock.
	DeadlockError = gpu.DeadlockError
	// InvariantError is returned by Run when the invariant auditor finds
	// corrupted engine state.
	InvariantError = gpu.InvariantError
	// CycleLimitError is returned by Run when MaxCycles is exceeded.
	CycleLimitError = gpu.CycleLimitError
	// CanceledError is returned by RunContext when its context is
	// canceled or times out mid-run.
	CanceledError = gpu.CanceledError
	// UnknownWorkloadError is returned by WorkloadByName (and RunSpec
	// validation) for a name not in Table II; it lists the valid names.
	UnknownWorkloadError = kernels.UnknownWorkloadError
	// StuckKernel describes one stuck kernel inside a DeadlockError.
	StuckKernel = gpu.StuckKernel
	// Sample is one window of a run's sampled timeline
	// (SimOptions.SampleEvery, Result.Timeline).
	Sample = gpu.Sample
	// ReuseStats breaks classified cache hits down by the relationship
	// between the accessing kernel instance and the line's installer
	// (SimOptions.Attribution, Result.L1Reuse/L2Reuse).
	ReuseStats = mem.ReuseStats
	// ReuseClass labels one such relationship.
	ReuseClass = mem.ReuseClass
	// TraceRecorder accumulates structured run events and exports them as
	// JSON Lines or Chrome/Perfetto trace_event JSON.
	TraceRecorder = trace.Recorder
	// RunSpec is a versioned, JSON-serializable description of one run:
	// workload, scale, model, scheduler (name + params), and simulation
	// options. Validate it, Hash it for content addressing, or Build it
	// into a ready-to-run *Simulator. The lapermd service accepts RunSpec
	// JSON on POST /v1/runs.
	RunSpec = spec.RunSpec
	// SchedulerParams tunes the scheduler named in a RunSpec.
	SchedulerParams = spec.SchedulerParams
	// SchedulerInfo describes one entry of the scheduler registry: name,
	// description, metadata flags, and factory.
	SchedulerInfo = core.SchedulerInfo
	// ModelInfo describes one entry of the launch-model registry: name,
	// description, and launch-path descriptor.
	ModelInfo = gpu.ModelInfo
	// LaunchPath describes how a launch model routes device-side child
	// launches (direct pool vs KMU, capacity, latency, overflow policy).
	LaunchPath = gpu.LaunchPath
	// SweepSpec is a versioned description of a parameter sweep: one base
	// RunSpec plus axes whose cross product the lapermd service expands
	// server-side (POST /v1/sweeps). Each expanded cell is an ordinary
	// content-addressed RunSpec, so identical cells dedupe across sweeps.
	SweepSpec = spec.SweepSpec
	// SweepAxis is one axis of a SweepSpec: a RunSpec field name (see
	// SweepAxisFields) and the values it ranges over.
	SweepAxis = spec.SweepAxis
)

// CurrentSpecVersion is the RunSpec schema version this build writes and the
// newest it accepts (see internal/spec for the compatibility policy).
const CurrentSpecVersion = spec.CurrentVersion

// ParseRunSpec decodes a RunSpec from JSON, rejecting unknown fields. The
// result is not yet validated; call Validate (or Build) next.
func ParseRunSpec(data []byte) (RunSpec, error) { return spec.Parse(data) }

// ParseSweepSpec decodes a SweepSpec from JSON, rejecting unknown fields.
// The result is not yet validated; call Validate (or Expand) next.
func ParseSweepSpec(data []byte) (SweepSpec, error) { return spec.ParseSweep(data) }

// SweepAxisFields lists the RunSpec fields a sweep axis may range over, in
// the order they appear in the canonical form.
func SweepAxisFields() []string { return spec.AxisFields() }

// Cache-hit reuse classes.
const (
	// ReuseSelf: the accessing instance installed the line itself.
	ReuseSelf = mem.ReuseSelf
	// ReuseParentChild: installer and accessor are direct parent/child.
	ReuseParentChild = mem.ReuseParentChild
	// ReuseSibling: installer and accessor share a direct parent.
	ReuseSibling = mem.ReuseSibling
	// ReuseCross: any other relationship (including untagged installs).
	ReuseCross = mem.ReuseCross
)

// Launch-queue overflow policies.
const (
	// StallWarp stalls the launching warp until an entry frees (the
	// hardware-faithful default).
	StallWarp = config.StallWarp
	// DropToKMU demotes an overflowing DTBL TB-group launch to the CDP
	// device-kernel path.
	DropToKMU = config.DropToKMU
)

// Dynamic-parallelism models.
const (
	// CDP launches children as device kernels through the KMU and KDU.
	CDP = gpu.CDP
	// DTBL launches children as lightweight thread-block groups.
	DTBL = gpu.DTBL
	// PMK launches children through a persistent microkernel's device-side
	// task queue, bypassing the KMU entirely.
	PMK = gpu.PMK
)

// Workload scales.
const (
	ScaleTiny   = kernels.ScaleTiny
	ScaleSmall  = kernels.ScaleSmall
	ScaleMedium = kernels.ScaleMedium
)

// KeplerK20c returns the Table I baseline configuration.
func KeplerK20c() Config { return config.KeplerK20c() }

// NewSimulator builds a simulator, returning an error on an invalid
// configuration or missing scheduler; see gpu.New.
func NewSimulator(opts SimOptions) (*Simulator, error) { return gpu.New(opts) }

// MustNewSimulator builds a simulator, panicking where NewSimulator would
// return an error — for tests and known-good configurations.
func MustNewSimulator(opts SimOptions) *Simulator { return gpu.MustNew(opts) }

// NewTB returns a builder for a thread block with the given thread count.
func NewTB(threads int) *TBBuilder { return isa.NewTB(threads) }

// NewKernel returns a builder for a named grid.
func NewKernel(name string) *KernelBuilder { return isa.NewKernel(name) }

// NewRoundRobin returns the baseline round-robin TB scheduler.
func NewRoundRobin() Scheduler { return core.NewRoundRobin() }

// NewTBPri returns the TB Prioritizing scheduler (Section IV-A).
func NewTBPri(maxLevels int) Scheduler { return core.NewTBPri(maxLevels) }

// NewSMXBind returns the Prioritized SMX Binding scheduler (Section IV-B).
func NewSMXBind(numSMX, maxLevels int) Scheduler { return core.NewSMXBind(numSMX, maxLevels) }

// NewAdaptiveBind returns the Adaptive Prioritized SMX Binding scheduler
// (Section IV-C).
func NewAdaptiveBind(numSMX, maxLevels int) Scheduler {
	return core.NewAdaptiveBind(numSMX, maxLevels)
}

// NewWorkSteal returns the work-stealing task-queue scheduler: per-SMX
// deques, owner pops newest, thieves steal oldest in cluster-distance order.
func NewWorkSteal(numSMX int) Scheduler { return core.NewWorkSteal(numSMX) }

// NewScheduler builds a scheduler by its registered name (see
// SchedulerNames).
func NewScheduler(name string, cfg *Config) (Scheduler, error) {
	return exp.NewScheduler(name, cfg)
}

// Schedulers returns every registered TB scheduling policy's descriptor, in
// registration order.
func Schedulers() []SchedulerInfo { return core.Schedulers() }

// SchedulerNames returns every registered TB scheduler name, in registration
// order.
func SchedulerNames() []string { return core.SchedulerNames() }

// Models returns every registered launch-model handle, in registration
// order.
func Models() []Model { return gpu.Models() }

// ModelInfos returns every registered launch model's descriptor, in
// registration order.
func ModelInfos() []ModelInfo { return gpu.ModelInfos() }

// ModelNames returns every registered launch-model name, in registration
// order.
func ModelNames() []string { return gpu.ModelNames() }

// Workloads returns every Table II workload.
func Workloads() []Workload { return kernels.All() }

// WorkloadByName returns the named Table II workload. An unknown name yields
// a structured *UnknownWorkloadError listing the valid names; inspect it with
// errors.As.
func WorkloadByName(name string) (Workload, error) { return kernels.Lookup(name) }

// AnalyzeFootprint computes the Section III-A shared-footprint ratios for a
// workload program.
func AnalyzeFootprint(name string, k *Kernel) FootprintStats {
	return metrics.AnalyzeFootprint(name, k)
}

// Experiments returns the per-table/figure experiment runners.
func Experiments() []Experiment { return exp.All() }

// NewTraceRecorder returns an empty trace recorder; attach its hooks via
// SimOptions.TraceDispatch/TraceQueue/TraceBlockDone/TraceSample and call
// FinishRun after Run.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }
