package gpu

import (
	"testing"
)

// FuzzKMUFIFO drives push/pop sequences through the amortised head-cursor
// queue and cross-checks every observable against a trivial reference
// implementation, so the head-compaction path cannot silently reorder, drop,
// or duplicate entries.
func FuzzKMUFIFO(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1})
	// Long alternating runs push the head cursor past compactThreshold.
	long := make([]byte, 512)
	for i := range long {
		long[i] = byte(i % 2)
	}
	f.Add(long)

	f.Fuzz(func(t *testing.T, ops []byte) {
		var q kmuFIFO
		var ref []*KernelInstance
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ki := &KernelInstance{ID: next}
				next++
				q.push(ki)
				ref = append(ref, ki)
			} else {
				got := q.pop()
				if len(ref) == 0 {
					if got != nil {
						t.Fatalf("pop on empty queue returned kernel %d", got.ID)
					}
					continue
				}
				want := ref[0]
				ref = ref[1:]
				if got == nil {
					t.Fatalf("pop returned nil, want kernel %d", want.ID)
				}
				if got != want {
					t.Fatalf("pop returned kernel %d, want %d (FIFO order broken)", got.ID, want.ID)
				}
			}
			if q.len() != len(ref) {
				t.Fatalf("len() = %d, reference %d", q.len(), len(ref))
			}
			if q.empty() != (len(ref) == 0) {
				t.Fatalf("empty() = %v with %d queued", q.empty(), len(ref))
			}
			// The compaction contract: the head cursor never runs away
			// from the live region, so the backing array stays within a
			// constant factor of the queue's true size.
			if q.head >= compactThreshold && q.head*2 >= len(q.items) && q.len() > 0 {
				t.Fatalf("head %d / backing %d escaped compaction", q.head, len(q.items))
			}
			// Every slot behind the head must have been nil'd for GC.
			for i := 0; i < q.head; i++ {
				if q.items[i] != nil {
					t.Fatalf("popped slot %d retains kernel %d", i, q.items[i].ID)
				}
			}
		}
	})
}

// FuzzArrivalOrdering checks the sorted-insert used when DropToKMU demotions
// mix the two launch latencies: arrivals must stay nondecreasing in
// ArriveCycle from the head cursor onward.
func FuzzArrivalOrdering(f *testing.F) {
	f.Add([]byte{10, 200, 10, 10, 200, 30})
	f.Fuzz(func(t *testing.T, lat []byte) {
		if len(lat) > 256 {
			t.Skip("bounded input")
		}
		s := &Simulator{}
		for i, l := range lat {
			s.insertArrival(&KernelInstance{ID: i, ArriveCycle: uint64(l)})
		}
		for i := s.arrHead + 1; i < len(s.arrivals); i++ {
			if s.arrivals[i-1].ArriveCycle > s.arrivals[i].ArriveCycle {
				t.Fatalf("arrivals unsorted at %d: %d > %d",
					i, s.arrivals[i-1].ArriveCycle, s.arrivals[i].ArriveCycle)
			}
		}
		if len(s.arrivals) != len(lat) {
			t.Fatalf("inserted %d, stored %d", len(lat), len(s.arrivals))
		}
	})
}
