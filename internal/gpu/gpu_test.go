package gpu_test

import (
	"errors"
	"strings"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

func smallCfg() *config.GPU {
	g := config.SmallTest()
	return &g
}

// simpleKernel builds nTBs compute+load thread blocks of 64 threads.
func simpleKernel(name string, nTBs int) *isa.Kernel {
	kb := isa.NewKernel(name)
	for i := 0; i < nTBs; i++ {
		base := uint64(i) * 4096
		kb.Add(isa.NewTB(64).
			Compute(4).
			LoadSeq(base, 4).
			Compute(4).
			Build())
	}
	return kb.Build()
}

// launchingKernel builds a parent whose TB i launches childTBs children.
func launchingKernel(nParents, childTBs int) *isa.Kernel {
	kb := isa.NewKernel("parent")
	for i := 0; i < nParents; i++ {
		base := uint64(i) * 8192
		child := isa.NewKernel("child")
		for c := 0; c < childTBs; c++ {
			child.Add(isa.NewTB(64).LoadSeq(base, 4).Compute(2).Build())
		}
		kb.Add(isa.NewTB(64).
			LoadSeq(base, 4).
			Launch(0, child.Build()).
			Compute(2).
			Build())
	}
	return kb.Build()
}

func run(t *testing.T, opts gpu.Options, kernels ...*isa.Kernel) *gpu.Result {
	t.Helper()
	sim := gpu.MustNew(opts)
	for _, k := range kernels {
		mustLaunch(t, sim, k)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func mustLaunch(t *testing.T, sim *gpu.Simulator, k *isa.Kernel) {
	t.Helper()
	if err := sim.LaunchHost(k); err != nil {
		t.Fatalf("LaunchHost: %v", err)
	}
}

func TestSimpleKernelCompletes(t *testing.T) {
	res := run(t, gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin()},
		simpleKernel("k", 12))
	if res.BlockCount != 12 {
		t.Errorf("BlockCount = %d, want 12", res.BlockCount)
	}
	if res.KernelCount != 1 {
		t.Errorf("KernelCount = %d, want 1", res.KernelCount)
	}
	if res.IPC <= 0 {
		t.Errorf("IPC = %f", res.IPC)
	}
	wantInsts := simpleKernel("k", 12).TotalInstCount()
	if res.ThreadInsts != wantInsts {
		t.Errorf("ThreadInsts = %d, want %d", res.ThreadInsts, wantInsts)
	}
}

func TestDynamicLaunchesComplete(t *testing.T) {
	for _, model := range gpu.Models() {
		res := run(t, gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin(), Model: model},
			launchingKernel(6, 3))
		if res.KernelCount != 1+6 {
			t.Errorf("%v: KernelCount = %d, want 7", model, res.KernelCount)
		}
		if res.DynamicKernelCount != 6 {
			t.Errorf("%v: DynamicKernelCount = %d, want 6", model, res.DynamicKernelCount)
		}
		if want := 6 + 6*3; res.BlockCount != want {
			t.Errorf("%v: BlockCount = %d, want %d", model, res.BlockCount, want)
		}
	}
}

func TestCDPLaunchLatencyDelaysChildren(t *testing.T) {
	cfg := smallCfg()
	cfg.CDPLaunchLatency = 2000
	cfg.DTBLLaunchLatency = 10
	k := launchingKernel(4, 2)

	cdp := run(t, gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), Model: gpu.CDP}, k)
	dtbl := run(t, gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), Model: gpu.DTBL}, k)
	if cdp.AvgChildWait <= dtbl.AvgChildWait {
		t.Errorf("CDP child wait %.0f should exceed DTBL %.0f", cdp.AvgChildWait, dtbl.AvgChildWait)
	}
	if cdp.AvgChildWait < 2000 {
		t.Errorf("CDP child wait %.0f below launch latency", cdp.AvgChildWait)
	}
	if cdp.Cycles <= dtbl.Cycles {
		t.Errorf("CDP run (%d cycles) should be slower than DTBL (%d)", cdp.Cycles, dtbl.Cycles)
	}
}

func TestKDULimitSerialisesCDPKernels(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxConcurrentKernels = 1
	res := run(t, gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), Model: gpu.CDP},
		launchingKernel(4, 2))
	// Everything must still finish, just serialised.
	if want := 4 + 4*2; res.BlockCount != want {
		t.Errorf("BlockCount = %d, want %d", res.BlockCount, want)
	}

	cfg2 := smallCfg()
	cfg2.MaxConcurrentKernels = 32
	wide := run(t, gpu.Options{Config: cfg2, Scheduler: core.NewRoundRobin(), Model: gpu.CDP},
		launchingKernel(4, 2))
	if res.Cycles <= wide.Cycles {
		t.Errorf("1-entry KDU (%d cycles) should be slower than 32-entry (%d)", res.Cycles, wide.Cycles)
	}
}

func TestDTBLBypassesKDULimit(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxConcurrentKernels = 1
	cfg.DTBLLaunchLatency = 5
	// Under DTBL the children coalesce onto the distributor and must not
	// deadlock or serialise behind the single KDU entry.
	res := run(t, gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), Model: gpu.DTBL},
		launchingKernel(4, 2))
	if want := 4 + 4*2; res.BlockCount != want {
		t.Errorf("BlockCount = %d, want %d", res.BlockCount, want)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *gpu.Result {
		return run(t, gpu.Options{Config: smallCfg(), Scheduler: core.NewAdaptiveBind(smallCfg().NumSMX, 4), Model: gpu.DTBL},
			launchingKernel(8, 3))
	}
	a, b := mk(), mk()
	if a.Cycles != b.Cycles || a.ThreadInsts != b.ThreadInsts ||
		a.L1 != b.L1 || a.L2 != b.L2 || a.DRAMTransactions != b.DRAMTransactions {
		t.Errorf("runs differ:\n%v\n%v", a, b)
	}
}

func TestNestedLaunchPriorityClamp(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxPriorityLevels = 2
	// Three-deep nesting: leaf priority must clamp at 2.
	leaf := isa.NewKernel("leaf").Add(isa.NewTB(32).Compute(1).Build()).Build()
	mid := isa.NewKernel("mid").Add(isa.NewTB(32).Launch(0, leaf).Build()).Build()
	inner := isa.NewKernel("inner").Add(isa.NewTB(32).Launch(0, mid).Build()).Build()
	root := isa.NewKernel("root").Add(isa.NewTB(32).Launch(0, inner).Build()).Build()

	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewTBPri(cfg.MaxPriorityLevels), Model: gpu.DTBL})
	mustLaunch(t, sim, root)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	var prios []int
	for _, ki := range sim.Kernels() {
		prios = append(prios, ki.Priority)
	}
	want := []int{0, 1, 2, 2}
	for i, p := range prios {
		if p != want[i] {
			t.Errorf("kernel %d priority = %d, want %d", i, p, want[i])
		}
	}
}

func TestTraceDispatchObservesEveryTB(t *testing.T) {
	var count int
	var cyclesMonotone = true
	var last uint64
	opts := gpu.Options{
		Config:    smallCfg(),
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.DTBL,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			count++
			if cycle < last {
				cyclesMonotone = false
			}
			last = cycle
		},
	}
	res := run(t, opts, launchingKernel(4, 2))
	if count != res.BlockCount {
		t.Errorf("trace saw %d dispatches, result counted %d blocks", count, res.BlockCount)
	}
	if !cyclesMonotone {
		t.Error("dispatch cycles not monotone")
	}
}

func TestRunGuards(t *testing.T) {
	sim := gpu.MustNew(gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin()})
	if _, err := sim.Run(); err == nil {
		t.Error("Run with no kernels should error")
	}
	if _, err := sim.Run(); err == nil {
		t.Error("second Run should error")
	}
	if err := sim.LaunchHost(simpleKernel("late", 1)); err == nil {
		t.Error("LaunchHost after Run should error")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	sim := gpu.MustNew(gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin(), MaxCycles: 10})
	mustLaunch(t, sim, simpleKernel("k", 8))
	_, err := sim.Run()
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("expected cycle-guard error, got %v", err)
	}
	var cle *gpu.CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("error is %T, want *gpu.CycleLimitError", err)
	}
	if cle.MaxCycles != 10 {
		t.Errorf("CycleLimitError.MaxCycles = %d, want 10", cle.MaxCycles)
	}
}

func TestNewErrors(t *testing.T) {
	for name, opts := range map[string]gpu.Options{
		"nil config":    {Scheduler: core.NewRoundRobin()},
		"nil scheduler": {Config: smallCfg()},
		"bad config": {Config: &config.GPU{NumSMX: -1},
			Scheduler: core.NewRoundRobin()},
	} {
		if _, err := gpu.New(opts); err == nil {
			t.Errorf("%s: New returned nil error", name)
		}
	}
	sim := gpu.MustNew(gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin()})
	if err := sim.LaunchHost(&isa.Kernel{Name: "bad", TBs: []*isa.TB{{Threads: 0}}}); err == nil {
		t.Error("invalid kernel: LaunchHost returned nil error")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew with nil scheduler did not panic")
		}
	}()
	gpu.MustNew(gpu.Options{Config: smallCfg()})
}

func TestModelString(t *testing.T) {
	if gpu.CDP.String() != "cdp" || gpu.DTBL.String() != "dtbl" {
		t.Error("model names wrong")
	}
}

func TestResultStringMentionsScheduler(t *testing.T) {
	res := run(t, gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin()}, simpleKernel("k", 4))
	if s := res.String(); !strings.Contains(s, "rr/") {
		t.Errorf("Result.String() = %q", s)
	}
}

func TestAllSchedulersCompleteAllModels(t *testing.T) {
	cfg := smallCfg()
	for _, model := range gpu.Models() {
		for _, info := range core.Schedulers() {
			sched := info.New(cfg)
			res := run(t, gpu.Options{Config: cfg, Scheduler: sched, Model: model},
				launchingKernel(8, 3))
			if want := 8 + 8*3; res.BlockCount != want {
				t.Errorf("%s/%v: BlockCount = %d, want %d", sched.Name(), model, res.BlockCount, want)
			}
		}
	}
}

func TestKernelTimestamps(t *testing.T) {
	cfg := smallCfg()
	cfg.DTBLLaunchLatency = 50
	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), Model: gpu.DTBL})
	mustLaunch(t, sim, launchingKernel(2, 2))
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	for _, ki := range sim.Kernels() {
		if ki.Parent == nil {
			continue
		}
		if ki.ArriveCycle != ki.LaunchCycle+50 {
			t.Errorf("kernel %d: arrive %d, launch %d, want +50", ki.ID, ki.ArriveCycle, ki.LaunchCycle)
		}
		if ki.FirstDispatchCycle < ki.ArriveCycle {
			t.Errorf("kernel %d dispatched at %d before arrival %d", ki.ID, ki.FirstDispatchCycle, ki.ArriveCycle)
		}
		if ki.CompleteCycle < ki.FirstDispatchCycle {
			t.Errorf("kernel %d completed at %d before first dispatch %d", ki.ID, ki.CompleteCycle, ki.FirstDispatchCycle)
		}
	}
}

// TestKMUPriorityOrdering: with a single free KDU entry at a time, a
// later-arriving higher-priority CDP kernel must be dispatched from the KMU
// before earlier lower-priority ones (the prioritized kernel launch
// extension of Section IV-A).
func TestKMUPriorityOrdering(t *testing.T) {
	cfg := smallCfg()
	cfg.MaxConcurrentKernels = 2 // host kernel + one child at a time
	cfg.CDPLaunchLatency = 10

	// A nested workload: the host kernel's first TB launches a child
	// (priority 1) whose TB launches a grandchild (priority 2). The host
	// kernel also launches several other priority-1 children afterwards.
	grandchild := isa.NewKernel("grandchild").Add(isa.NewTB(32).Compute(1).Build()).Build()
	firstChild := isa.NewKernel("first-child").Add(isa.NewTB(32).Compute(1).Launch(0, grandchild).Compute(200).Build()).Build()
	kb := isa.NewKernel("host")
	kb.Add(isa.NewTB(32).Launch(0, firstChild).Compute(400).Build())
	for i := 0; i < 3; i++ {
		sib := isa.NewKernel("sibling").Add(isa.NewTB(32).Compute(50).Build()).Build()
		kb.Add(isa.NewTB(32).Compute(2).Launch(0, sib).Compute(400).Build())
	}

	var order []string
	sim := gpu.MustNew(gpu.Options{
		Config:    cfg,
		Scheduler: core.NewTBPri(cfg.MaxPriorityLevels),
		Model:     gpu.CDP,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			order = append(order, ki.Prog.Name)
		},
	})
	mustLaunch(t, sim, kb.Build())
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}

	// The grandchild (priority 2) launches after the siblings (priority
	// 1) but must dispatch before at least the last of them: find
	// positions.
	pos := func(name string) int {
		for i, n := range order {
			if n == name {
				return i
			}
		}
		return -1
	}
	g := pos("grandchild")
	if g < 0 {
		t.Fatalf("grandchild never dispatched; order = %v", order)
	}
	lastSibling := -1
	for i, n := range order {
		if n == "sibling" {
			lastSibling = i
		}
	}
	if lastSibling >= 0 && g > lastSibling {
		t.Errorf("priority-2 grandchild dispatched after every priority-1 sibling: %v", order)
	}
}

func TestTimelineSampling(t *testing.T) {
	cfg := smallCfg()
	sim := gpu.MustNew(gpu.Options{
		Config:      cfg,
		Scheduler:   core.NewRoundRobin(),
		Model:       gpu.DTBL,
		SampleEvery: 100,
	})
	mustLaunch(t, sim, launchingKernel(8, 3))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no samples recorded")
	}
	var last uint64
	var sawWork bool
	for _, smp := range res.Timeline {
		if smp.Cycle <= last {
			t.Errorf("samples not monotone: %d after %d", smp.Cycle, last)
		}
		last = smp.Cycle
		if smp.Cycle%100 != 0 {
			t.Errorf("sample at %d, want multiples of 100", smp.Cycle)
		}
		if smp.IPC < 0 || smp.L1 < 0 || smp.L1 > 1 || smp.L2 < 0 || smp.L2 > 1 {
			t.Errorf("sample out of range: %+v", smp)
		}
		if smp.IPC > 0 {
			sawWork = true
		}
	}
	if !sawWork {
		t.Error("all samples report zero IPC")
	}
	// Windowed IPC must average out near the global IPC.
	var sum float64
	for _, smp := range res.Timeline {
		sum += smp.IPC
	}
	avg := sum / float64(len(res.Timeline))
	if avg < res.IPC/3 || avg > res.IPC*3 {
		t.Errorf("windowed IPC average %.2f far from global %.2f", avg, res.IPC)
	}
}

func TestNoSamplingByDefault(t *testing.T) {
	res := run(t, gpu.Options{Config: smallCfg(), Scheduler: core.NewRoundRobin()}, simpleKernel("k", 4))
	if len(res.Timeline) != 0 {
		t.Errorf("unexpected samples: %d", len(res.Timeline))
	}
}

// TestClusteredMachineEndToEnd runs a launching workload on a machine whose
// L1 is shared by SMX pairs, with the cluster-aware binding scheduler, and
// checks that children stay inside their parent's cluster.
func TestClusteredMachineEndToEnd(t *testing.T) {
	cfg := smallCfg() // 4 SMXs
	cfg.SMXsPerCluster = 2
	parentSMX := make(map[*gpu.KernelInstance]int)
	var violations int
	sim := gpu.MustNew(gpu.Options{
		Config:    cfg,
		Scheduler: core.NewSMXBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels),
		Model:     gpu.DTBL,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			if ki.Parent == nil {
				parentSMX[ki] = smxID
				return
			}
			if cfg.ClusterOf(smxID) != cfg.ClusterOf(ki.BoundSMX) {
				violations++
			}
		},
	})
	mustLaunch(t, sim, launchingKernel(8, 2))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if want := 8 + 8*2; res.BlockCount != want {
		t.Fatalf("BlockCount = %d, want %d", res.BlockCount, want)
	}
	if violations > 0 {
		t.Errorf("%d child TBs escaped their parent's cluster", violations)
	}
}
