package gpu_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// clockSchedulers builds every registered TB scheduler policy fresh for a
// config, in the shape the differential matrix iterates over. Every policy
// implements gpu.IdleAware, so these cover both quiescence proofs the
// fast-forward clock uses (single-nil for the global queues, full-round for
// the per-SMX cursors).
func clockSchedulers(cfg *config.GPU) map[string]func() gpu.TBScheduler {
	mks := make(map[string]func() gpu.TBScheduler)
	for _, info := range core.Schedulers() {
		info := info
		mks[info.Name] = func() gpu.TBScheduler { return info.New(cfg) }
	}
	return mks
}

// clockRun executes one cell with every observable armed — sampling,
// attribution, auditing, and all four trace hooks captured into an ordered
// log — under the requested clocking. The returned Result has its host-timing
// fields zeroed (the only legitimately non-deterministic outputs); everything
// else must match its dense twin exactly.
func clockRun(t *testing.T, dense bool, model gpu.Model, cfg config.GPU,
	sched gpu.TBScheduler, k *isa.Kernel) (*gpu.Result, []string, error) {
	t.Helper()
	var log []string
	sim := gpu.MustNew(gpu.Options{
		Config:      &cfg,
		Scheduler:   sched,
		Model:       model,
		SampleEvery: 64,
		Attribution: true,
		Audit:       true,
		DenseClock:  dense,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			log = append(log, fmt.Sprintf("dispatch k%d tb%d smx%d @%d", ki.ID, tbIndex, smxID, cycle))
		},
		TraceBlockDone: func(ki *gpu.KernelInstance, tbIndex, smxID int, dispatchCycle, cycle uint64) {
			log = append(log, fmt.Sprintf("done k%d tb%d smx%d %d..%d", ki.ID, tbIndex, smxID, dispatchCycle, cycle))
		},
		TraceQueue: func(ev gpu.QueueEvent) {
			log = append(log, fmt.Sprintf("queue %d %s smx%d @%d", ev.Kind, ev.Queue, ev.SMX, ev.Cycle))
		},
		TraceSample: func(s gpu.Sample) {
			log = append(log, fmt.Sprintf("sample @%d ipc=%.6f tbs=%d", s.Cycle, s.IPC, s.ResidentTBs))
		},
	})
	mustLaunch(t, sim, k)
	res, err := sim.Run()
	if res != nil {
		res.WallTime, res.SimCyclesPerSec = 0, 0
	}
	return res, log, err
}

// diffClocks runs the same cell under both clockings and fails unless the
// Results and the full trace-event streams are identical.
func diffClocks(t *testing.T, model gpu.Model, cfg config.GPU,
	newSched func() gpu.TBScheduler, k *isa.Kernel) {
	t.Helper()
	dense, denseLog, denseErr := clockRun(t, true, model, cfg, newSched(), k)
	ff, ffLog, ffErr := clockRun(t, false, model, cfg, newSched(), k)
	if denseErr != nil || ffErr != nil {
		t.Fatalf("unexpected errors: dense=%v ff=%v", denseErr, ffErr)
	}
	if !reflect.DeepEqual(dense, ff) {
		t.Errorf("Results diverge:\ndense: %+v\nff:    %+v", dense, ff)
	}
	if !reflect.DeepEqual(denseLog, ffLog) {
		t.Errorf("trace streams diverge: dense %d events, ff %d events",
			len(denseLog), len(ffLog))
		for i := 0; i < len(denseLog) && i < len(ffLog); i++ {
			if denseLog[i] != ffLog[i] {
				t.Errorf("first divergence at event %d:\ndense: %s\nff:    %s",
					i, denseLog[i], ffLog[i])
				break
			}
		}
	}
}

// TestClockEquivalenceMatrix is the core differential guarantee: for every
// scheduler under both dynamic-parallelism models, a dynamic-launch workload
// produces byte-identical Results, timelines, and trace streams whether the
// engine steps densely or fast-forwards between event horizons.
func TestClockEquivalenceMatrix(t *testing.T) {
	cfg := config.SmallTest()
	for _, model := range gpu.Models() {
		for name, mk := range clockSchedulers(&cfg) {
			t.Run(fmt.Sprintf("%v/%s", model, name), func(t *testing.T) {
				diffClocks(t, model, cfg, mk, launchingKernel(6, 3))
			})
		}
	}
}

// TestClockEquivalenceBackpressure pins the hard case for idle-span elision:
// bounded launch queues put warps into launch-stall loops whose every retry
// cycle is accounted (LaunchStallCycles), and queue-frees cross component
// boundaries within a cycle. Both overflow policies must stay cycle-exact.
func TestClockEquivalenceBackpressure(t *testing.T) {
	for _, policy := range []config.OverflowPolicy{config.StallWarp, config.DropToKMU} {
		t.Run(fmt.Sprintf("dtbl-agg-%v", policy), func(t *testing.T) {
			cfg := config.SmallTest()
			cfg.DTBLAggBufferEntries = 2
			cfg.DTBLOverflowPolicy = policy
			diffClocks(t, gpu.DTBL, cfg,
				func() gpu.TBScheduler { return core.NewRoundRobin() },
				overflowWorkload(4, 6))
		})
	}
	t.Run("cdp-kmu-pool", func(t *testing.T) {
		cfg := config.SmallTest()
		cfg.KMUPendingCapacity = 1
		cfg.CDPLaunchLatency = 40
		diffClocks(t, gpu.CDP, cfg,
			func() gpu.TBScheduler { return core.NewRoundRobin() },
			overflowWorkload(2, 5))
	})
	t.Run("pmk-taskq", func(t *testing.T) {
		// PMK's task queue is StallWarp-only: a producer that finds it
		// full spins, with every retry cycle accounted.
		cfg := config.SmallTest()
		cfg.PMKTaskQueueEntries = 2
		diffClocks(t, gpu.PMK, cfg,
			func() gpu.TBScheduler { return core.NewRoundRobin() },
			overflowWorkload(4, 6))
	})
}

// TestClockEquivalenceDeadlock checks failure-path equivalence: the watchdog
// must fire on the same cycle with an identical report under both clockings,
// so fast-forward can never skip a simulation into or past a deadlock
// verdict.
func TestClockEquivalenceDeadlock(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MaxConcurrentKernels = 4
	cfg.KMUPendingCapacity = 2
	cfg.CDPLaunchLatency = 100

	run := func(dense bool) error {
		sim := gpu.MustNew(gpu.Options{
			Config:           &cfg,
			Scheduler:        core.NewRoundRobin(),
			Model:            gpu.CDP,
			WatchdogInterval: 2_000,
			DenseClock:       dense,
		})
		mustLaunch(t, sim, deadlockWorkload(20, 2))
		_, err := sim.Run()
		return err
	}
	denseErr, ffErr := run(true), run(false)
	var denseDL, ffDL *gpu.DeadlockError
	if !errors.As(denseErr, &denseDL) || !errors.As(ffErr, &ffDL) {
		t.Fatalf("want DeadlockError from both clocks, got dense=%v ff=%v", denseErr, ffErr)
	}
	if !reflect.DeepEqual(denseDL, ffDL) {
		t.Errorf("deadlock reports diverge:\ndense: %+v\nff:    %+v", denseDL, ffDL)
	}
}

// TestClockEquivalenceCycleLimit checks the other failure path and the
// horizon clamp: with the watchdog off, a stuck machine must run out the
// MaxCycles clock — not fast-forward past it — and report identically.
func TestClockEquivalenceCycleLimit(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MaxConcurrentKernels = 4
	cfg.KMUPendingCapacity = 2
	cfg.CDPLaunchLatency = 100

	run := func(dense bool) error {
		sim := gpu.MustNew(gpu.Options{
			Config:     &cfg,
			Scheduler:  core.NewRoundRobin(),
			Model:      gpu.CDP,
			NoWatchdog: true,
			MaxCycles:  30_000,
			DenseClock: dense,
		})
		mustLaunch(t, sim, deadlockWorkload(20, 2))
		_, err := sim.Run()
		return err
	}
	denseErr, ffErr := run(true), run(false)
	var denseCL, ffCL *gpu.CycleLimitError
	if !errors.As(denseErr, &denseCL) || !errors.As(ffErr, &ffCL) {
		t.Fatalf("want CycleLimitError from both clocks, got dense=%v ff=%v", denseErr, ffErr)
	}
	if !reflect.DeepEqual(denseCL, ffCL) {
		t.Errorf("cycle-limit reports diverge:\ndense: %+v\nff:    %+v", denseCL, ffCL)
	}
}

// TestClockSampleCyclesPinned is the periodic-tick regression test: the
// sampler period is a horizon source, so no skipped span may ever jump over
// a scheduled sample. Every sample must land on an exact multiple of
// SampleEvery — deliberately an odd period, so misaligned skips cannot hide —
// and the fast-forward sample cycles must equal the dense ones one for one.
func TestClockSampleCyclesPinned(t *testing.T) {
	cfg := config.SmallTest()
	const every = 97

	sample := func(dense bool) []uint64 {
		var cycles []uint64
		sim := gpu.MustNew(gpu.Options{
			Config:      &cfg,
			Scheduler:   core.NewRoundRobin(),
			Model:       gpu.CDP,
			SampleEvery: every,
			DenseClock:  dense,
			TraceSample: func(s gpu.Sample) { cycles = append(cycles, s.Cycle) },
		})
		mustLaunch(t, sim, launchingKernel(4, 2))
		if _, err := sim.Run(); err != nil {
			t.Fatalf("dense=%v: %v", dense, err)
		}
		return cycles
	}

	denseCycles, ffCycles := sample(true), sample(false)
	if len(ffCycles) == 0 {
		t.Fatal("fast-forward run took no samples")
	}
	for i, c := range ffCycles {
		if c%every != 0 {
			t.Errorf("sample %d at cycle %d, not a multiple of %d (skip jumped the sampler)",
				i, c, every)
		}
	}
	if !reflect.DeepEqual(denseCycles, ffCycles) {
		t.Errorf("sample cycles diverge:\ndense: %v\nff:    %v", denseCycles, ffCycles)
	}
}

// opaqueScheduler hides RoundRobin's IdleAware extension, modelling a
// third-party policy that predates the fast-forward clock.
type opaqueScheduler struct{ inner gpu.TBScheduler }

func (o opaqueScheduler) Name() string                                 { return o.inner.Name() }
func (o opaqueScheduler) Enqueue(k *gpu.KernelInstance)                { o.inner.Enqueue(k) }
func (o opaqueScheduler) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	return o.inner.Select(d)
}

// TestClockDenseFallbackNonIdleAware checks the degradation contract: a
// scheduler without the IdleAware extension pins the TB phase to every cycle,
// so fast-forward silently degrades to dense stepping around it — slower, but
// still exactly equivalent.
func TestClockDenseFallbackNonIdleAware(t *testing.T) {
	cfg := config.SmallTest()
	diffClocks(t, gpu.CDP, cfg,
		func() gpu.TBScheduler { return opaqueScheduler{core.NewRoundRobin()} },
		launchingKernel(5, 2))
}
