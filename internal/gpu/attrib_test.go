package gpu_test

import (
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/isa"
	"laperm/internal/mem"
)

// pinSched places every thread block on the SMX pick returns for its
// kernel instance — a degenerate scheduler for constructing placement
// scenarios the policy schedulers would never emit.
type pinSched struct {
	pick  func(ki *gpu.KernelInstance) int
	queue []*gpu.KernelInstance
}

func (p *pinSched) Name() string                  { return "pin" }
func (p *pinSched) Enqueue(k *gpu.KernelInstance) { p.queue = append(p.queue, k) }

func (p *pinSched) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	for _, ki := range p.queue {
		if ki.Exhausted() {
			continue
		}
		if smx := p.pick(ki); d.CanFit(smx, ki.PeekTB()) {
			return ki, smx
		}
	}
	return nil, 0
}

// attribProgram builds the smallest parent-child reuse scenario: one parent
// TB loads eight lines and launches one child TB that loads exactly the
// same eight lines and nothing else.
func attribProgram() (prog *isa.Kernel) {
	child := isa.NewKernel("child").
		Add(isa.NewTB(64).LoadSeq(0, 4).Compute(2).Build()).Build()
	return isa.NewKernel("parent").
		Add(isa.NewTB(64).LoadSeq(0, 4).Launch(0, child).Compute(2).Build()).
		Build()
}

// runPinned runs attribProgram with the child pinned to the given SMX (the
// parent always runs on SMX 0) and returns the L1 reuse breakdown.
func runPinned(t *testing.T, childSMX int) mem.ReuseStats {
	t.Helper()
	sched := &pinSched{pick: func(ki *gpu.KernelInstance) int {
		if ki.Parent != nil {
			return childSMX
		}
		return 0
	}}
	res := run(t, gpu.Options{
		Config: smallCfg(), Scheduler: sched,
		Model: gpu.DTBL, Attribution: true,
	}, attribProgram())
	return res.L1Reuse
}

// TestAttributionSameSMXIsAllParentChild: with the child on the parent's
// SMX, every classified L1 hit must be a parent-child hit — the child reads
// only lines the parent installed, and the parent itself never re-touches a
// line (its eight loads are cold misses).
func TestAttributionSameSMXIsAllParentChild(t *testing.T) {
	r := runPinned(t, 0)
	if r.Total() == 0 {
		t.Fatalf("no classified L1 hits; want the child's reloads to hit: %v", r)
	}
	if r.ParentChild != r.Total() {
		t.Errorf("parent-child share = %.2f (%v), want 1.00", r.Share(mem.ReuseParentChild), r)
	}
}

// TestAttributionCrossSMXIsZero: forced onto a different SMX (a different
// private L1), the child cold-misses everything and no parent-child hit can
// occur.
func TestAttributionCrossSMXIsZero(t *testing.T) {
	r := runPinned(t, 1)
	if r.ParentChild != 0 {
		t.Errorf("parent-child hits = %d across SMXs, want 0 (%v)", r.ParentChild, r)
	}
}
