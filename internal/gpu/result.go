package gpu

import (
	"fmt"
	"math"

	"laperm/internal/mem"
	"laperm/internal/smx"
)

// Sample is one point of a run's timeline, covering the window since the
// previous sample.
type Sample struct {
	// Cycle is the sample position.
	Cycle uint64
	// IPC is the windowed thread-instructions per cycle.
	IPC float64
	// L1 and L2 are the windowed cache hit rates (0 when the window had
	// no accesses).
	L1, L2 float64
	// ResidentTBs is the instantaneous thread-block count across SMXs.
	ResidentTBs int
	// LiveKernels is the instantaneous count of incomplete kernel
	// instances.
	LiveKernels int
}

// Result is the outcome of one simulation run.
type Result struct {
	// Scheduler and Model identify the run.
	Scheduler string
	Model     Model

	// Cycles is the total simulated core cycles.
	Cycles uint64
	// ThreadInsts is the total per-thread instruction count issued.
	ThreadInsts int64
	// IPC is ThreadInsts / Cycles.
	IPC float64

	// L1 aggregates load statistics over all SMX L1 caches; L2 over all
	// banks.
	L1 mem.Stats
	L2 mem.Stats
	// DRAMTransactions counts 128-byte off-chip transfers.
	DRAMTransactions int64

	// SMXStats holds per-SMX execution statistics.
	SMXStats []smx.Stats

	// KernelCount and BlockCount size the run; DynamicKernelCount counts
	// device-side launches.
	KernelCount        int
	BlockCount         int
	DynamicKernelCount int

	// AvgChildWait is the mean cycles between a dynamic launch executing
	// and its first thread block dispatching — the parent-to-child time
	// gap LaPerm tries to shrink (Section III-B).
	AvgChildWait float64

	// LoadImbalance is the coefficient of variation of per-SMX busy
	// (resident) cycles: 0 for perfectly balanced SMXs.
	LoadImbalance float64

	// LaunchStallCycles counts warp-cycles spent stalled on a full launch
	// queue (KMU pending pool or DTBL aggregation buffer), and
	// LaunchStallEpisodes the distinct stall episodes behind them.
	LaunchStallCycles   uint64
	LaunchStallEpisodes int64
	// QueueOverflows counts DTBL launches demoted to the KMU path by the
	// DropToKMU overflow policy.
	QueueOverflows int64
	// PeakKMUPending and PeakAggEntries are high-water marks of the
	// bounded launch pools, for sizing capacities.
	PeakKMUPending int
	PeakAggEntries int

	// Samples is the run timeline when Options.SampleEvery was set.
	Samples []Sample
}

// sampleBase holds the cumulative counters at the previous sample, so each
// Sample reports windowed rates.
type sampleBase struct {
	cycle       uint64
	threadInsts int64
	l1, l2      mem.Stats
}

func (s *Simulator) takeSample() {
	var insts int64
	resident := 0
	for _, x := range s.smxs {
		insts += x.Stats().ThreadInsts
		resident += x.ResidentBlocks()
	}
	l1, l2 := s.memsys.L1Total(), s.memsys.L2Total()
	window := s.now - s.lastSample.cycle
	smp := Sample{Cycle: s.now, ResidentTBs: resident, LiveKernels: s.live}
	if window > 0 {
		smp.IPC = float64(insts-s.lastSample.threadInsts) / float64(window)
	}
	if d := l1.Accesses - s.lastSample.l1.Accesses; d > 0 {
		smp.L1 = float64(l1.Hits-s.lastSample.l1.Hits) / float64(d)
	}
	if d := l2.Accesses - s.lastSample.l2.Accesses; d > 0 {
		smp.L2 = float64(l2.Hits-s.lastSample.l2.Hits) / float64(d)
	}
	s.samples = append(s.samples, smp)
	s.lastSample = sampleBase{cycle: s.now, threadInsts: insts, l1: l1, l2: l2}
}

func (s *Simulator) result() *Result {
	r := &Result{
		Scheduler: s.sched.Name(),
		Model:     s.model,
		Cycles:    s.now,
		L1:        s.memsys.L1Total(),
		L2:        s.memsys.L2Total(),

		DRAMTransactions: s.memsys.DRAMTransactions(),

		LaunchStallCycles:   s.launchStallCycles,
		LaunchStallEpisodes: s.launchStallEpisodes,
		QueueOverflows:      s.queueOverflows,
		PeakKMUPending:      s.peakKMU,
		PeakAggEntries:      s.peakAgg,
	}
	r.SMXStats = make([]smx.Stats, len(s.smxs))
	for i, x := range s.smxs {
		r.SMXStats[i] = x.Stats()
		r.ThreadInsts += x.Stats().ThreadInsts
		r.BlockCount += x.Stats().BlocksCompleted
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.ThreadInsts) / float64(r.Cycles)
	}
	r.KernelCount = len(s.kernels)
	var waitSum float64
	var waitN int
	for _, ki := range s.kernels {
		if ki.Parent == nil {
			continue
		}
		r.DynamicKernelCount++
		if ki.dispatchedAny {
			waitSum += float64(ki.FirstDispatchCycle - ki.LaunchCycle)
			waitN++
		}
	}
	if waitN > 0 {
		r.AvgChildWait = waitSum / float64(waitN)
	}
	r.LoadImbalance = imbalance(r.SMXStats)
	r.Samples = s.samples
	return r
}

// imbalance returns the coefficient of variation of per-SMX resident
// cycles.
func imbalance(stats []smx.Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum float64
	for _, st := range stats {
		sum += float64(st.ResidentCycles)
	}
	mean := sum / float64(len(stats))
	if mean == 0 {
		return 0
	}
	var varSum float64
	for _, st := range stats {
		d := float64(st.ResidentCycles) - mean
		varSum += d * d
	}
	return math.Sqrt(varSum/float64(len(stats))) / mean
}

// String summarises the result on a few lines.
func (r *Result) String() string {
	s := fmt.Sprintf(
		"%s/%s: %d cycles, IPC %.2f, L1 %.1f%%, L2 %.1f%%, %d kernels (%d dynamic), %d TBs, child wait %.0f cyc, imbalance %.3f",
		r.Scheduler, r.Model, r.Cycles, r.IPC,
		100*r.L1.HitRate(), 100*r.L2.HitRate(),
		r.KernelCount, r.DynamicKernelCount, r.BlockCount,
		r.AvgChildWait, r.LoadImbalance)
	if r.LaunchStallCycles > 0 || r.QueueOverflows > 0 {
		s += fmt.Sprintf(", launch backpressure %d stall cyc / %d overflows",
			r.LaunchStallCycles, r.QueueOverflows)
	}
	return s
}
