package gpu

import (
	"fmt"
	"math"
	"time"

	"laperm/internal/mem"
	"laperm/internal/smx"
)

// Sample is one point of a run's timeline. Rate fields (IPC, hit rates,
// stall and dispatch counts) cover the window since the previous sample;
// occupancy and queue-depth fields are instantaneous.
type Sample struct {
	// Cycle is the sample position.
	Cycle uint64
	// IPC is the windowed thread-instructions per cycle.
	IPC float64
	// L1 and L2 are the windowed cache hit rates (0 when the window had
	// no accesses).
	L1, L2 float64
	// ResidentTBs is the instantaneous thread-block count across SMXs.
	ResidentTBs int
	// LiveKernels is the instantaneous count of incomplete kernel
	// instances.
	LiveKernels int
	// SMXResident is the instantaneous per-SMX resident thread-block
	// count (index = SMX ID).
	SMXResident []int
	// PendingArrivals counts launches still waiting out their launch
	// latency; KMUQueued instances queued at the KMU for a KDU entry;
	// KDUUsed occupied KDU entries; AggEntries DTBL aggregation-buffer
	// entries in use.
	PendingArrivals int
	KMUQueued       int
	KDUUsed         int
	AggEntries      int
	// TBsDispatched counts thread blocks dispatched during the window.
	TBsDispatched uint64
	// MemStalls and LaunchStalls count warp-cycles spent stalled in the
	// window on a full MSHR table / full launch queue.
	MemStalls    int64
	LaunchStalls int64
	// L1ParentChild is the windowed parent-child share of classified L1
	// hits (0 unless Options.Attribution is on).
	L1ParentChild float64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Scheduler and Model identify the run.
	Scheduler string
	Model     Model

	// Cycles is the total simulated core cycles.
	Cycles uint64
	// ThreadInsts is the total per-thread instruction count issued.
	ThreadInsts int64
	// IPC is ThreadInsts / Cycles.
	IPC float64

	// L1 aggregates load statistics over all SMX L1 caches; L2 over all
	// banks.
	L1 mem.Stats
	L2 mem.Stats
	// L1Reuse and L2Reuse break the caches' hits down by the relationship
	// between the accessing kernel instance and the one that installed
	// the line (self / parent-child / sibling / cross) — the repo-native
	// Figure 3 locality evidence. Zero-valued unless Options.Attribution
	// was set.
	L1Reuse mem.ReuseStats
	L2Reuse mem.ReuseStats
	// DRAMTransactions counts 128-byte off-chip transfers.
	DRAMTransactions int64

	// SMXStats holds per-SMX execution statistics.
	SMXStats []smx.Stats

	// KernelCount and BlockCount size the run; DynamicKernelCount counts
	// device-side launches.
	KernelCount        int
	BlockCount         int
	DynamicKernelCount int

	// AvgChildWait is the mean cycles between a dynamic launch executing
	// and its first thread block dispatching — the parent-to-child time
	// gap LaPerm tries to shrink (Section III-B).
	AvgChildWait float64

	// LoadImbalance is the coefficient of variation of per-SMX busy
	// (resident) cycles: 0 for perfectly balanced SMXs.
	LoadImbalance float64

	// LaunchStallCycles counts warp-cycles spent stalled on a full launch
	// queue (KMU pending pool or DTBL aggregation buffer), and
	// LaunchStallEpisodes the distinct stall episodes behind them.
	LaunchStallCycles   uint64
	LaunchStallEpisodes int64
	// QueueOverflows counts DTBL launches demoted to the KMU path by the
	// DropToKMU overflow policy.
	QueueOverflows int64
	// PeakKMUPending and PeakAggEntries are high-water marks of the
	// bounded launch pools, for sizing capacities.
	PeakKMUPending int
	PeakAggEntries int

	// Timeline is the run's sampled timeline when Options.SampleEvery was
	// set, one Sample per window.
	Timeline []Sample

	// WallTime is the host-side duration of Run and SimCyclesPerSec the
	// simulation throughput (Cycles / WallTime) — the only
	// non-deterministic fields of a Result. Sweep harnesses that compare
	// Results bit-for-bit (internal/exp) zero them after folding the
	// cycle count into their throughput meter.
	WallTime        time.Duration
	SimCyclesPerSec float64
}

// sampleBase holds the cumulative counters at the previous sample, so each
// Sample reports windowed rates.
type sampleBase struct {
	cycle         uint64
	threadInsts   int64
	l1, l2        mem.Stats
	l1Reuse       mem.ReuseStats
	tbsDispatched uint64
	memStalls     int64
	launchStalls  int64
}

func (s *Simulator) takeSample() {
	var insts, memStalls, launchStalls int64
	resident := 0
	perSMX := make([]int, len(s.smxs))
	for i, x := range s.smxs {
		st := x.Stats()
		insts += st.ThreadInsts
		memStalls += st.MemStallEvents
		launchStalls += st.LaunchStallEvents
		perSMX[i] = x.ResidentBlocks()
		resident += perSMX[i]
	}
	l1, l2 := s.memsys.L1Total(), s.memsys.L2Total()
	l1Reuse := s.memsys.L1Reuse()
	window := s.now - s.lastSample.cycle
	smp := Sample{
		Cycle:           s.now,
		ResidentTBs:     resident,
		LiveKernels:     s.live,
		SMXResident:     perSMX,
		PendingArrivals: s.pendingArrivals(),
		KMUQueued:       s.kmuCount,
		KDUUsed:         s.kduUsed,
		AggEntries:      s.aggUsed,
		TBsDispatched:   s.tbsDispatched - s.lastSample.tbsDispatched,
		MemStalls:       memStalls - s.lastSample.memStalls,
		LaunchStalls:    launchStalls - s.lastSample.launchStalls,
	}
	if window > 0 {
		smp.IPC = float64(insts-s.lastSample.threadInsts) / float64(window)
	}
	if d := l1.Accesses - s.lastSample.l1.Accesses; d > 0 {
		smp.L1 = float64(l1.Hits-s.lastSample.l1.Hits) / float64(d)
	}
	if d := l2.Accesses - s.lastSample.l2.Accesses; d > 0 {
		smp.L2 = float64(l2.Hits-s.lastSample.l2.Hits) / float64(d)
	}
	if d := l1Reuse.Total() - s.lastSample.l1Reuse.Total(); d > 0 {
		smp.L1ParentChild = float64(l1Reuse.ParentChild-s.lastSample.l1Reuse.ParentChild) / float64(d)
	}
	s.samples = append(s.samples, smp)
	s.lastSample = sampleBase{
		cycle:         s.now,
		threadInsts:   insts,
		l1:            l1,
		l2:            l2,
		l1Reuse:       l1Reuse,
		tbsDispatched: s.tbsDispatched,
		memStalls:     memStalls,
		launchStalls:  launchStalls,
	}
	if s.traceSmp != nil {
		s.traceSmp(smp)
	}
}

func (s *Simulator) result() *Result {
	r := &Result{
		Scheduler: s.sched.Name(),
		Model:     s.model,
		Cycles:    s.now,
		L1:        s.memsys.L1Total(),
		L2:        s.memsys.L2Total(),

		DRAMTransactions: s.memsys.DRAMTransactions(),

		LaunchStallCycles:   s.launchStallCycles,
		LaunchStallEpisodes: s.launchStallEpisodes,
		QueueOverflows:      s.queueOverflows,
		PeakKMUPending:      s.peakKMU,
		PeakAggEntries:      s.peakAgg,
	}
	r.SMXStats = make([]smx.Stats, len(s.smxs))
	for i, x := range s.smxs {
		r.SMXStats[i] = x.Stats()
		r.ThreadInsts += x.Stats().ThreadInsts
		r.BlockCount += x.Stats().BlocksCompleted
	}
	if r.Cycles > 0 {
		r.IPC = float64(r.ThreadInsts) / float64(r.Cycles)
	}
	r.KernelCount = len(s.kernels)
	var waitSum float64
	var waitN int
	for _, ki := range s.kernels {
		if ki.Parent == nil {
			continue
		}
		r.DynamicKernelCount++
		if ki.dispatchedAny {
			waitSum += float64(ki.FirstDispatchCycle - ki.LaunchCycle)
			waitN++
		}
	}
	if waitN > 0 {
		r.AvgChildWait = waitSum / float64(waitN)
	}
	r.LoadImbalance = imbalance(r.SMXStats)
	r.L1Reuse = s.memsys.L1Reuse()
	r.L2Reuse = s.memsys.L2Reuse()
	r.Timeline = s.samples
	r.WallTime = time.Since(s.started)
	if secs := r.WallTime.Seconds(); secs > 0 {
		r.SimCyclesPerSec = float64(r.Cycles) / secs
	}
	return r
}

// imbalance returns the coefficient of variation of per-SMX resident
// cycles.
func imbalance(stats []smx.Stats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum float64
	for _, st := range stats {
		sum += float64(st.ResidentCycles)
	}
	mean := sum / float64(len(stats))
	if mean == 0 {
		return 0
	}
	var varSum float64
	for _, st := range stats {
		d := float64(st.ResidentCycles) - mean
		varSum += d * d
	}
	return math.Sqrt(varSum/float64(len(stats))) / mean
}

// String summarises the result on a few lines.
func (r *Result) String() string {
	s := fmt.Sprintf(
		"%s/%s: %d cycles, IPC %.2f, L1 %.1f%%, L2 %.1f%%, %d kernels (%d dynamic), %d TBs, child wait %.0f cyc, imbalance %.3f",
		r.Scheduler, r.Model, r.Cycles, r.IPC,
		100*r.L1.HitRate(), 100*r.L2.HitRate(),
		r.KernelCount, r.DynamicKernelCount, r.BlockCount,
		r.AvgChildWait, r.LoadImbalance)
	if r.LaunchStallCycles > 0 || r.QueueOverflows > 0 {
		s += fmt.Sprintf(", launch backpressure %d stall cyc / %d overflows",
			r.LaunchStallCycles, r.QueueOverflows)
	}
	return s
}
