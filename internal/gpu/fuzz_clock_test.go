package gpu_test

import (
	"reflect"
	"testing"

	"laperm/internal/config"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// FuzzClockEquivalence is the adversarial version of the clock differential
// matrix: the fuzz bytes shape a dynamic-parallelism workload (parent count,
// launches per parent, child width, nesting, memory footprint overlap) and
// pick a launch-queue bound, then every registered scheduler under every
// registered model runs the same cell densely and fast-forwarded. Any byte sequence whose Results or
// trace streams diverge is a cycle-exactness bug in the event-horizon clock.
func FuzzClockEquivalence(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(8), uint8(3), uint8(2), uint8(1), uint8(1))
	f.Add(uint8(1), uint8(6), uint8(1), uint8(1), uint8(2))
	f.Add(uint8(12), uint8(0), uint8(3), uint8(0), uint8(0))

	f.Fuzz(func(t *testing.T, nParents, perParent, childTBs, nest, bound uint8) {
		parents := int(nParents%10) + 1
		launches := int(perParent % 3)
		width := int(childTBs%3) + 1
		deep := nest%2 == 1

		cfg := config.SmallTest()
		switch bound % 3 {
		case 0: // unbounded queues
		case 1:
			cfg.KMUPendingCapacity = 8
			cfg.DTBLAggBufferEntries = 4
			cfg.DTBLOverflowPolicy = config.DropToKMU
			cfg.PMKTaskQueueEntries = 64 // stall-only queue: keep above peak live children
		case 2:
			// StallWarp can genuinely deadlock with a saturated machine;
			// that is fine here — the deadlock verdict itself must be
			// clock-equivalent — but keep the blocked share small enough
			// that most inputs exercise the completing path.
			cfg.KMUPendingCapacity = 16
			cfg.DTBLAggBufferEntries = 4
			cfg.DTBLOverflowPolicy = config.StallWarp
			cfg.PMKTaskQueueEntries = 8
			deep = false
			if max := cfg.NumSMX * cfg.TBsPerSMX / 2; parents > max {
				parents = max
			}
		}
		cfg.CDPLaunchLatency = 200 // long enough for real idle spans, short enough to fuzz fast

		kb := isa.NewKernel("root")
		for i := 0; i < parents; i++ {
			base := uint64(i) * 2048
			b := isa.NewTB(32).Compute(1).LoadSeq(base, 2)
			for c := 0; c < launches; c++ {
				child := isa.NewKernel("leaf")
				for w := 0; w < width; w++ {
					child.Add(isa.NewTB(32).LoadSeq(base, 2).Compute(1 + (i+c)%3).Build())
				}
				if deep {
					mid := isa.NewKernel("mid").
						Add(isa.NewTB(32).Compute(1).Launch(0, child.Build()).Build()).Build()
					b.Launch(c, mid)
				} else {
					b.Launch(c, child.Build())
				}
			}
			kb.Add(b.Compute(1).Build())
		}
		k := kb.Build()

		for _, model := range gpu.Models() {
			for name, mk := range clockSchedulers(&cfg) {
				runOnce := func(dense bool) (*gpu.Result, []string, error) {
					res, log, err := clockRun(t, dense, model, cfg, mk(), k)
					return res, log, err
				}
				dense, denseLog, denseErr := runOnce(true)
				ff, ffLog, ffErr := runOnce(false)
				if (denseErr == nil) != (ffErr == nil) {
					t.Fatalf("%s/%v: error divergence: dense=%v ff=%v", name, model, denseErr, ffErr)
				}
				if denseErr != nil {
					if denseErr.Error() != ffErr.Error() {
						t.Fatalf("%s/%v: error reports diverge:\ndense: %v\nff:    %v",
							name, model, denseErr, ffErr)
					}
					continue
				}
				if !reflect.DeepEqual(dense, ff) {
					t.Fatalf("%s/%v (parents=%d launches=%d width=%d deep=%v bound=%d): Results diverge:\ndense: %+v\nff:    %+v",
						name, model, parents, launches, width, deep, bound%3, dense, ff)
				}
				if !reflect.DeepEqual(denseLog, ffLog) {
					t.Fatalf("%s/%v: trace streams diverge (%d vs %d events)",
						name, model, len(denseLog), len(ffLog))
				}
			}
		}
	})
}
