package gpu

import "laperm/internal/faults"

// The forward-progress watchdog. Every WatchdogInterval cycles the engine
// snapshots a progress vector — everything that changes when the machine
// does useful work — and compares it with the previous snapshot. Live work
// with an unchanged vector means no arrival was delivered, no kernel moved
// into the KDU, no thread block dispatched or retired, no instruction
// issued, and no memory transaction completed for the whole window: a
// scheduling deadlock. Run then returns a *DeadlockError naming the stuck
// kernels instead of spinning to MaxCycles.
//
// Launch-stall retries and MSHR-stall retries deliberately do not count as
// progress: a machine where every warp is stalled on a full launch queue is
// exactly the deadlock this watchdog exists to catch.

// progressVec is everything that advances when the simulation does.
type progressVec struct {
	launched      int    // kernel instances created
	delivered     uint64 // arrivals handed to KMU/scheduler
	kduFilled     uint64 // KMU -> KDU moves
	tbsDispatched uint64 // thread blocks placed on SMXs
	blocksRetired int    // thread blocks retired
	live          int    // incomplete kernels (completion is progress)
	threadInsts   int64  // instructions issued
	memAccesses   int64  // L1 accesses (loads + stores)
	dramTrans     int64  // off-chip transactions
}

func (s *Simulator) progress() progressVec {
	v := progressVec{
		launched:      len(s.kernels),
		delivered:     s.delivered,
		kduFilled:     s.kduFilled,
		tbsDispatched: s.tbsDispatched,
		live:          s.live,
		dramTrans:     s.memsys.DRAMTransactions(),
	}
	for _, x := range s.smxs {
		st := x.Stats()
		v.blocksRetired += st.BlocksCompleted
		v.threadInsts += st.ThreadInsts
	}
	l1 := s.memsys.L1Total()
	v.memAccesses = l1.Accesses
	return v
}

// watchdogCheck compares the current progress vector with the previous
// snapshot and returns a *DeadlockError when a full window passed without
// progress. Two guards keep short watchdog intervals safe: pending arrivals
// always imply future progress (they deliver at a fixed cycle), and an SMX
// with self-advancing work (a warp waiting out a compute or memory latency
// longer than the window) will progress without outside help. Neither guard
// covers warps stalled at a launch — those need the engine to free a queue
// entry, which is exactly the dependency a deadlock breaks.
func (s *Simulator) watchdogCheck() error {
	if err := s.flts.Hit(faults.SiteGPUWatchdog); err != nil {
		return err
	}
	cur := s.progress()
	prev := s.lastProgress
	s.lastProgress = cur
	if cur != prev || s.done() || s.pendingArrivals() > 0 {
		return nil
	}
	for _, x := range s.smxs {
		if x.PendingWork() {
			return nil
		}
	}
	return s.deadlockError()
}

// deadlockError builds the structured deadlock report.
func (s *Simulator) deadlockError() *DeadlockError {
	e := &DeadlockError{
		Cycle:       s.now,
		Window:      s.watchdogEvery,
		Live:        s.live,
		KMUQueued:   s.kmuCount,
		KDUUsed:     s.kduUsed,
		QueueDepths: make([]int, len(s.kmuQueue)),
	}
	for p := range s.kmuQueue {
		e.QueueDepths[p] = s.kmuQueue[p].len()
	}
	const maxListed = 16
	for _, ki := range s.kernels {
		if ki.Complete() {
			continue
		}
		e.TotalStuck++
		if len(e.Stuck) >= maxListed {
			continue
		}
		e.Stuck = append(e.Stuck, StuckKernel{
			ID:         ki.ID,
			Name:       ki.Prog.Name,
			Priority:   ki.Priority,
			BoundSMX:   ki.BoundSMX,
			Dispatched: ki.NextTB,
			Done:       ki.DoneTBs,
			Total:      len(ki.Prog.TBs),
			Where:      s.locate(ki),
		})
	}
	return e
}

// locate classifies where on the launch path an incomplete instance sits.
func (s *Simulator) locate(ki *KernelInstance) string {
	switch {
	case ki.ArriveCycle > s.now:
		return "in-flight"
	case ki.viaKMU && !ki.usesKDU:
		return "kmu"
	case !ki.dispatchedAny:
		return "distributor"
	case !ki.Exhausted():
		return "partially-dispatched"
	default:
		return "executing"
	}
}
