package gpu

import "fmt"

// The invariant auditor. With Options.Audit set, the engine validates its
// resource accounting against a recomputation from first principles at
// every sample and watchdog tick and once at completion, replacing the old
// scattered panic()-style checks with a structured *InvariantError that
// carries a state dump. The checks cover:
//
//   - per-SMX occupancy (threads, registers, shared memory, TB slots,
//     warp lists) via smx.CheckInvariants;
//   - KMU queue counters vs the actual queue contents;
//   - KDU entry accounting vs the set of incomplete KDU kernels;
//   - the live-kernel count vs the instance list;
//   - bounded launch-pool occupancy (KMU pending pool, the model's direct
//     pool) vs the per-instance entry flags, and their capacities;
//   - per-instance TB counters (dispatched/done vs grid size).

// invariant wraps a failed check into an *InvariantError with the engine
// state dump attached.
func (s *Simulator) invariant(check, detail string) error {
	return &InvariantError{
		Cycle:  s.now,
		Check:  check,
		Detail: detail,
		State:  s.stateDump(),
	}
}

// stateDump summarises the engine counters on one line.
func (s *Simulator) stateDump() string {
	resident := 0
	for _, x := range s.smxs {
		resident += x.ResidentBlocks()
	}
	pool := s.path.Queue
	if pool == "" { // KMU-only model: no direct pool to name
		pool = "direct"
	}
	return fmt.Sprintf("cycle=%d live=%d kernels=%d arrivals=%d kmuCount=%d kduUsed=%d kmuPool=%d/%d %s=%d/%d residentTBs=%d",
		s.now, s.live, len(s.kernels), s.pendingArrivals(), s.kmuCount, s.kduUsed,
		s.kmuInFlight, s.cfg.KMUPendingCapacity, pool, s.aggUsed, s.path.Capacity, resident)
}

// runAudit validates every engine invariant, returning an *InvariantError
// describing the first violation.
func (s *Simulator) runAudit() error {
	for _, x := range s.smxs {
		if err := x.CheckInvariants(); err != nil {
			return s.invariant("smx-occupancy", err.Error())
		}
	}

	queued := 0
	for p := range s.kmuQueue {
		queued += s.kmuQueue[p].len()
	}
	if queued != s.kmuCount {
		return s.invariant("kmu-count",
			fmt.Sprintf("kmuCount %d but queues hold %d", s.kmuCount, queued))
	}

	var live, kdu, poolKMU, poolAgg, schedLive int
	for _, ki := range s.kernels {
		if ki.enqueued && !ki.Exhausted() {
			schedLive++
		}
		if ki.NextTB < 0 || ki.NextTB > len(ki.Prog.TBs) {
			return s.invariant("tb-cursor",
				fmt.Sprintf("kernel %d NextTB %d of %d TBs", ki.ID, ki.NextTB, len(ki.Prog.TBs)))
		}
		if ki.DoneTBs < 0 || ki.DoneTBs > ki.NextTB {
			return s.invariant("tb-done",
				fmt.Sprintf("kernel %d DoneTBs %d exceeds dispatched %d", ki.ID, ki.DoneTBs, ki.NextTB))
		}
		if !ki.Complete() {
			live++
			if ki.usesKDU {
				kdu++
			}
		}
		if ki.poolKMU {
			poolKMU++
		}
		if ki.poolAgg {
			poolAgg++
		}
	}
	if schedLive != s.schedLive {
		return s.invariant("sched-live",
			fmt.Sprintf("schedLive counter %d but %d enqueued instances are unexhausted", s.schedLive, schedLive))
	}
	if live != s.live {
		return s.invariant("live-count",
			fmt.Sprintf("live counter %d but %d instances incomplete", s.live, live))
	}
	if kdu != s.kduUsed {
		return s.invariant("kdu-count",
			fmt.Sprintf("kduUsed %d but %d incomplete kernels hold KDU entries", s.kduUsed, kdu))
	}
	if s.kduUsed > s.cfg.MaxConcurrentKernels {
		return s.invariant("kdu-capacity",
			fmt.Sprintf("kduUsed %d exceeds the %d KDU entries", s.kduUsed, s.cfg.MaxConcurrentKernels))
	}
	if poolKMU != s.kmuInFlight {
		return s.invariant("kmu-pool",
			fmt.Sprintf("kmuInFlight %d but %d instances hold pool entries", s.kmuInFlight, poolKMU))
	}
	if poolAgg != s.aggUsed {
		return s.invariant("agg-pool",
			fmt.Sprintf("aggUsed %d but %d instances hold buffer entries", s.aggUsed, poolAgg))
	}
	if c := s.cfg.KMUPendingCapacity; c > 0 && s.kmuInFlight > c {
		return s.invariant("kmu-pool-capacity",
			fmt.Sprintf("kmuInFlight %d exceeds capacity %d", s.kmuInFlight, c))
	}
	if c := s.path.Capacity; s.path.Direct && c > 0 && s.aggUsed > c {
		return s.invariant("agg-pool-capacity",
			fmt.Sprintf("%s pool holds %d entries, exceeds capacity %d", s.path.Queue, s.aggUsed, c))
	}
	return nil
}
