package gpu

// The launch-model registry. A dynamic-parallelism model used to be a bare
// enum with `s.model == DTBL` branches scattered through the engine; it is
// now a registry entry owning a LaunchPath descriptor, computed once per
// simulator, that the launch path consults instead of branching on the model
// identity. internal/spec, internal/exp, the facade, and the CLIs enumerate
// and validate model names against this registry, so adding a model is one
// RegisterModel call (plus whatever configuration it reads) — no switch
// statements to chase.

import (
	"fmt"

	"laperm/internal/config"
)

// Model is a handle into the launch-model registry, selecting the
// dynamic-parallelism launch mechanism. The zero value is CDP.
type Model int

// The built-in launch models, in the paper's presentation order. PMK is the
// persistent-microkernel extension; CDP and DTBL are the two models the
// paper evaluates.
const (
	// CDP launches children as device kernels routed SMX -> KMU -> KDU,
	// paying the full device-kernel launch latency and competing for the
	// 32 KDU entries.
	CDP Model = iota
	// DTBL launches children as lightweight thread-block groups that are
	// coalesced onto the kernel distributor and are always visible to
	// the TB scheduler.
	DTBL
	// PMK launches children through a persistent microkernel: scheduler
	// warps resident on each SMX consume a device-side task queue, so a
	// child never round-trips through the KMU at all. Modeled after
	// GPU-microkernel runtimes (see DESIGN.md §14).
	PMK
)

// LaunchPath describes how a model routes device-side child launches. The
// engine computes one per simulator (from the model's descriptor and the GPU
// configuration) and consults it on every launch instruction; host kernels
// always take the KMU path regardless of model.
type LaunchPath struct {
	// Direct routes children straight to the TB scheduler after Latency
	// cycles, bypassing the KMU and KDU. False means the KMU path: the
	// child pays the CDP launch latency, competes for KDU entries, and is
	// bounded by KMUPendingCapacity.
	Direct bool
	// Queue names the direct pool in backpressure trace events ("agg" for
	// the DTBL aggregation buffer, "taskq" for the PMK task queue).
	Queue string
	// Capacity bounds the direct pool: entries are held from the launch
	// instruction until the child's last thread block dispatches. 0 means
	// unbounded.
	Capacity int
	// Latency is the direct path's launch latency in cycles.
	Latency int
	// OverflowToKMU demotes a launch that finds the direct pool full to
	// the KMU path (paying the CDP latency) instead of stalling the
	// launching warp.
	OverflowToKMU bool
}

// ModelInfo describes one registered launch model.
type ModelInfo struct {
	// Name is the model's registry key ("cdp"), used in specs, CLIs, CSV
	// columns, and error messages.
	Name string
	// Description is a one-line summary for -h output and README tables.
	Description string
	// Path computes the model's child-launch path for a configuration.
	// It must be a pure function of cfg: equal configurations must yield
	// equal paths, or runs stop being reproducible from their RunSpec.
	Path func(cfg *config.GPU) LaunchPath
}

// modelRegistry holds every registered model in registration order; a Model
// value indexes it. The built-ins are registered here rather than in init so
// the order is explicit and the Model constants provably match their slots.
var modelRegistry = []ModelInfo{
	CDP: {
		Name:        "cdp",
		Description: "CUDA Dynamic Parallelism: children are device kernels routed SMX -> KMU -> KDU",
		Path: func(cfg *config.GPU) LaunchPath {
			return LaunchPath{Direct: false}
		},
	},
	DTBL: {
		Name:        "dtbl",
		Description: "Dynamic Thread Block Launch: children are TB groups coalesced onto the distributor via the aggregation buffer",
		Path: func(cfg *config.GPU) LaunchPath {
			return LaunchPath{
				Direct:        true,
				Queue:         "agg",
				Capacity:      cfg.DTBLAggBufferEntries,
				Latency:       cfg.DTBLLaunchLatency,
				OverflowToKMU: cfg.DTBLOverflowPolicy == config.DropToKMU,
			}
		},
	},
	PMK: {
		Name:        "pmk",
		Description: "persistent microkernel: resident scheduler warps consume a device-side task queue, no KMU round-trip",
		Path: func(cfg *config.GPU) LaunchPath {
			return LaunchPath{
				Direct:   true,
				Queue:    "taskq",
				Capacity: cfg.PMKTaskQueueEntries,
				Latency:  cfg.PMKLaunchLatency,
				// The task queue is a memory-backed ring consumed by
				// the resident scheduler warps; a producer that finds
				// it full spins until an entry frees. There is no
				// KMU to demote to — the microkernel never talks to
				// it.
				OverflowToKMU: false,
			}
		},
	},
}

// RegisterModel adds a launch model to the registry and returns its handle.
// It panics on a duplicate or empty name or a nil Path — registration is an
// init-time programming act, not a runtime input. Registration order is
// enumeration order everywhere (specs, matrices, CSVs, goldens).
func RegisterModel(info ModelInfo) Model {
	if info.Name == "" {
		panic("gpu: RegisterModel with empty name")
	}
	if info.Path == nil {
		panic(fmt.Sprintf("gpu: RegisterModel(%q) with nil Path", info.Name))
	}
	if _, ok := ModelByName(info.Name); ok {
		panic(fmt.Sprintf("gpu: RegisterModel(%q) duplicates a registered model", info.Name))
	}
	modelRegistry = append(modelRegistry, info)
	return Model(len(modelRegistry) - 1)
}

// Models returns every registered model handle in registration order. The
// slice is fresh; callers may keep or mutate it.
func Models() []Model {
	ms := make([]Model, len(modelRegistry))
	for i := range ms {
		ms[i] = Model(i)
	}
	return ms
}

// ModelInfos returns every registered model's descriptor in registration
// order, for enumerating names and descriptions (CLIs, README tables).
func ModelInfos() []ModelInfo {
	return append([]ModelInfo(nil), modelRegistry...)
}

// ModelNames returns every registered model name in registration order.
func ModelNames() []string {
	names := make([]string, len(modelRegistry))
	for i, info := range modelRegistry {
		names[i] = info.Name
	}
	return names
}

// ModelByName resolves a model name against the registry.
func ModelByName(name string) (Model, bool) {
	for i, info := range modelRegistry {
		if info.Name == name {
			return Model(i), true
		}
	}
	return 0, false
}

// Info returns the model's registry entry, or false for a handle outside the
// registry.
func (m Model) Info() (ModelInfo, bool) {
	if m < 0 || int(m) >= len(modelRegistry) {
		return ModelInfo{}, false
	}
	return modelRegistry[m], true
}

// String returns the registered model name.
func (m Model) String() string {
	if info, ok := m.Info(); ok {
		return info.Name
	}
	return fmt.Sprintf("Model(%d)", int(m))
}
