package gpu_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// deadlockWorkload builds the circular wait of the acceptance criteria:
// enough single-warp parent TBs to occupy every TB slot of the machine, each
// launching several children. Under CDP with a small KMU pool and KDU, the
// parents stall at their launch instructions (pool full), the pool cannot
// drain (KDU full), the KDU cannot drain (children need SMX space), and SMX
// space never frees (the parents never retire) — a genuine scheduling
// deadlock the watchdog must convert into a *DeadlockError.
func deadlockWorkload(nParents, launchesPerParent int) *isa.Kernel {
	kb := isa.NewKernel("deadlock-parent")
	for i := 0; i < nParents; i++ {
		b := isa.NewTB(32).Compute(2)
		for c := 0; c < launchesPerParent; c++ {
			child := isa.NewKernel("deadlock-child").
				Add(isa.NewTB(32).Compute(1).Build()).Build()
			b.Launch(c, child)
		}
		kb.Add(b.Compute(2).Build())
	}
	return kb.Build()
}

func TestDeadlockWatchdogReportsCircularWait(t *testing.T) {
	cfg := config.SmallTest() // 4 SMXs x 4 TB slots = 16 resident TBs
	cfg.MaxConcurrentKernels = 4
	cfg.KMUPendingCapacity = 2
	cfg.CDPLaunchLatency = 100

	sim := gpu.MustNew(gpu.Options{
		Config:           &cfg,
		Scheduler:        core.NewRoundRobin(),
		Model:            gpu.CDP,
		WatchdogInterval: 2_000,
		Audit:            true,
	})
	// 16 parents fill every TB slot; 7 launches per parent exceed the
	// machine's total absorb capacity of 2 (pool) + 4 (KDU), so no parent
	// can ever finish its launch sequence and retire.
	if err := sim.LaunchHost(deadlockWorkload(16, 7)); err != nil {
		t.Fatal(err)
	}
	_, err := sim.Run()
	if err == nil {
		t.Fatal("circular-wait workload completed; expected DeadlockError")
	}
	var de *gpu.DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run returned %T (%v), want *gpu.DeadlockError", err, err)
	}
	if de.Cycle >= gpu.DefaultMaxCycles/100 {
		t.Errorf("deadlock detected at cycle %d, want well under DefaultMaxCycles (%d)",
			de.Cycle, gpu.DefaultMaxCycles)
	}
	if de.TotalStuck == 0 || len(de.Stuck) == 0 {
		t.Fatalf("DeadlockError names no stuck kernels: %+v", de)
	}
	msg := de.Error()
	if !strings.Contains(msg, "deadlock-child") && !strings.Contains(msg, "deadlock-parent") {
		t.Errorf("DeadlockError message names no workload kernel:\n%s", msg)
	}
	// The stuck-kernel records must carry the diagnostic fields of the
	// acceptance criteria: priority and location.
	sawChild := false
	for _, sk := range de.Stuck {
		if sk.Name == "deadlock-child" {
			sawChild = true
			if sk.Priority != 1 {
				t.Errorf("stuck child priority = %d, want 1", sk.Priority)
			}
		}
		if sk.Where == "" {
			t.Errorf("stuck kernel %d has empty location", sk.ID)
		}
	}
	if !sawChild {
		t.Errorf("no stuck child kernel reported: %+v", de.Stuck)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	cfg := config.SmallTest()
	sim := gpu.MustNew(gpu.Options{
		Config:           &cfg,
		Scheduler:        core.NewRoundRobin(),
		Model:            gpu.DTBL,
		WatchdogInterval: 50, // absurdly aggressive: must still not misfire
		Audit:            true,
	})
	mustLaunch(t, sim, launchingKernel(8, 3))
	if _, err := sim.Run(); err != nil {
		t.Fatalf("healthy run failed: %v", err)
	}
}

// completionSet reduces a run to its multiset of completed kernels, for the
// backpressure-equivalence checks: bounded queues may reshuffle timing but
// must never lose or duplicate work.
func completionSet(t *testing.T, sim *gpu.Simulator) []string {
	t.Helper()
	var set []string
	for _, ki := range sim.Kernels() {
		if !ki.Complete() {
			t.Fatalf("kernel %d %q incomplete after Run", ki.ID, ki.Prog.Name)
		}
		set = append(set, fmt.Sprintf("%s/%dTBs", ki.Prog.Name, len(ki.Prog.TBs)))
	}
	sort.Strings(set)
	return set
}

// overflowWorkload launches childTBs-per-parent DTBL groups from a few
// parents, leaving most TB slots free so the machine always has room to
// drain the aggregation buffer (backpressure, not deadlock).
func overflowWorkload(nParents, launchesPerParent int) *isa.Kernel {
	kb := isa.NewKernel("ovf-parent")
	for i := 0; i < nParents; i++ {
		b := isa.NewTB(32).Compute(2)
		for c := 0; c < launchesPerParent; c++ {
			child := isa.NewKernel("ovf-child").
				Add(isa.NewTB(32).Compute(4).Build()).Build()
			b.Launch(c, child).Compute(2)
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}

func TestAggBufferOverflowStallWarp(t *testing.T) {
	k := func() *isa.Kernel { return overflowWorkload(4, 6) }

	runWith := func(entries int, policy config.OverflowPolicy) (*gpu.Result, *gpu.Simulator) {
		cfg := config.SmallTest()
		cfg.DTBLAggBufferEntries = entries
		cfg.DTBLOverflowPolicy = policy
		sim := gpu.MustNew(gpu.Options{
			Config:    &cfg,
			Scheduler: core.NewRoundRobin(),
			Model:     gpu.DTBL,
			Audit:     true,
		})
		mustLaunch(t, sim, k())
		res, err := sim.Run()
		if err != nil {
			t.Fatalf("entries=%d policy=%v: %v", entries, policy, err)
		}
		return res, sim
	}

	base, baseSim := runWith(0, config.StallWarp) // unbounded baseline
	if base.LaunchStallCycles != 0 || base.QueueOverflows != 0 {
		t.Fatalf("unbounded baseline reports backpressure: %+v", base)
	}

	// StallWarp: launches past the 2-entry buffer stall the warp.
	stall, stallSim := runWith(2, config.StallWarp)
	if stall.LaunchStallCycles == 0 {
		t.Error("StallWarp: LaunchStallCycles = 0, want > 0")
	}
	if stall.LaunchStallEpisodes == 0 {
		t.Error("StallWarp: LaunchStallEpisodes = 0, want > 0")
	}
	if stall.PeakAggEntries != 2 {
		t.Errorf("StallWarp: PeakAggEntries = %d, want capacity 2", stall.PeakAggEntries)
	}
	if stall.Cycles <= base.Cycles {
		t.Errorf("StallWarp run (%d cycles) not slower than unbounded (%d)",
			stall.Cycles, base.Cycles)
	}
	if !strings.Contains(stall.String(), "backpressure") {
		t.Errorf("Result.String() hides backpressure: %q", stall.String())
	}

	// DropToKMU: overflowing launches are demoted, counted, and pay the
	// CDP latency instead of stalling forever.
	drop, dropSim := runWith(2, config.DropToKMU)
	if drop.QueueOverflows == 0 {
		t.Error("DropToKMU: QueueOverflows = 0, want > 0")
	}

	// Identical final completion set across all three regimes.
	want := completionSet(t, baseSim)
	for name, sim := range map[string]*gpu.Simulator{"stall": stallSim, "drop": dropSim} {
		got := completionSet(t, sim)
		if len(got) != len(want) {
			t.Fatalf("%s: completed %d kernels, baseline %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: completion set diverges at %d: %q vs %q", name, i, got[i], want[i])
			}
		}
	}
}

func TestKMUPoolBackpressureCDP(t *testing.T) {
	cfg := config.SmallTest()
	cfg.KMUPendingCapacity = 1
	cfg.CDPLaunchLatency = 50
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.CDP,
		Audit:     true,
	})
	// Few parents (machine keeps free slots), many launches against a
	// 1-entry pool: launches serialise but everything completes.
	mustLaunch(t, sim, overflowWorkload(2, 5))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchStallCycles == 0 {
		t.Error("LaunchStallCycles = 0, want > 0 with a 1-entry KMU pool")
	}
	if res.PeakKMUPending != 1 {
		t.Errorf("PeakKMUPending = %d, want 1", res.PeakKMUPending)
	}
	if want := 1 + 2*5; res.KernelCount != want { // host kernel + 2 parents x 5 children
		t.Errorf("KernelCount = %d, want %d", res.KernelCount, want)
	}
	completionSet(t, sim) // fails the test if anything is incomplete
}

func TestTraceQueueObservesBackpressure(t *testing.T) {
	var stalls, overflows int
	cfg := config.SmallTest()
	cfg.DTBLAggBufferEntries = 1
	cfg.DTBLOverflowPolicy = config.StallWarp
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.DTBL,
		TraceQueue: func(ev gpu.QueueEvent) {
			switch ev.Kind {
			case gpu.QueueStall:
				stalls++
			case gpu.QueueOverflow:
				overflows++
			}
			if ev.Queue != "agg" {
				t.Errorf("queue = %q, want agg", ev.Queue)
			}
			if ev.Parent == nil || ev.Child == nil {
				t.Error("queue event missing parent or child")
			}
		},
	})
	mustLaunch(t, sim, overflowWorkload(2, 4))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if stalls == 0 {
		t.Error("no QueueStall events traced")
	}
	if overflows != 0 {
		t.Errorf("%d QueueOverflow events under StallWarp, want 0", overflows)
	}
	// One event per episode, not per retry cycle.
	if int64(stalls) != res.LaunchStallEpisodes {
		t.Errorf("traced %d stall events, result counts %d episodes", stalls, res.LaunchStallEpisodes)
	}
	if uint64(stalls) >= res.LaunchStallCycles && res.LaunchStallCycles > uint64(stalls) {
		t.Errorf("episodes %d vs stall cycles %d inconsistent", stalls, res.LaunchStallCycles)
	}
}

func TestAuditCleanAcrossSchedulersAndModels(t *testing.T) {
	cfg := config.SmallTest()
	cfg.DTBLAggBufferEntries = 4
	cfg.KMUPendingCapacity = 4
	cfg.PMKTaskQueueEntries = 4
	for _, model := range gpu.Models() {
		for _, info := range core.Schedulers() {
			sched := info.New(&cfg)
			sim := gpu.MustNew(gpu.Options{
				Config:           &cfg,
				Scheduler:        sched,
				Model:            model,
				Audit:            true,
				WatchdogInterval: 500,
				SampleEvery:      250,
			})
			mustLaunch(t, sim, overflowWorkload(3, 4))
			if _, err := sim.Run(); err != nil {
				t.Errorf("%s/%v: %v", sched.Name(), model, err)
			}
		}
	}
}

func TestNoWatchdogFallsBackToCycleLimit(t *testing.T) {
	cfg := config.SmallTest()
	cfg.MaxConcurrentKernels = 4
	cfg.KMUPendingCapacity = 2
	cfg.CDPLaunchLatency = 100
	sim := gpu.MustNew(gpu.Options{
		Config:     &cfg,
		Scheduler:  core.NewRoundRobin(),
		Model:      gpu.CDP,
		NoWatchdog: true,
		MaxCycles:  20_000,
	})
	mustLaunch(t, sim, deadlockWorkload(16, 7))
	_, err := sim.Run()
	var cle *gpu.CycleLimitError
	if !errors.As(err, &cle) {
		t.Fatalf("with NoWatchdog the deadlock should hit the cycle limit; got %T (%v)", err, err)
	}
	if cle.Live == 0 {
		t.Error("CycleLimitError.Live = 0, want live kernels in the report")
	}
}
