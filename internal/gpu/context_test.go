package gpu_test

import (
	"context"
	"errors"
	"testing"

	"laperm/internal/core"
	"laperm/internal/gpu"
)

// TestRunContextPreCanceled: a context canceled before RunContext starts
// yields a *CanceledError at cycle 0 without simulating anything.
func TestRunContextPreCanceled(t *testing.T) {
	cfg := smallCfg()
	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
	mustLaunch(t, sim, simpleKernel("k", 4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sim.RunContext(ctx)
	if res != nil {
		t.Fatalf("canceled run returned a Result")
	}
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if ce.Cycle != 0 {
		t.Errorf("CanceledError.Cycle = %d, want 0", ce.Cycle)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; cause not unwrapped")
	}
}

// TestRunContextCancelMidRun cancels from inside a dispatch trace hook — a
// point deterministically mid-run — and expects the engine to stop with a
// *CanceledError instead of completing. Dense clocking guarantees the engine
// loop iterates at least once per cycle, so the throttled context poll fires
// soon after the hook runs.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := smallCfg()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dispatches := 0
	sim := gpu.MustNew(gpu.Options{
		Config:     cfg,
		Scheduler:  core.NewRoundRobin(),
		DenseClock: true,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			if dispatches++; dispatches == 2 {
				cancel()
			}
		},
	})
	// Enough thread blocks that thousands of cycles remain after the
	// second dispatch, guaranteeing the throttled context poll fires
	// before the run can complete.
	mustLaunch(t, sim, simpleKernel("k", 4096))
	res, err := sim.RunContext(ctx)
	if res != nil {
		t.Fatalf("canceled run returned a Result")
	}
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if ce.Live == 0 {
		t.Errorf("CanceledError.Live = 0, want live kernels at cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not unwrapped to context.Canceled: %v", err)
	}
}

// TestRunContextBackgroundMatchesRun: RunContext(Background) is Run — same
// Result for the same workload.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *gpu.Simulator {
		cfg := smallCfg()
		sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
		mustLaunch(t, sim, simpleKernel("k", 8))
		return sim
	}
	r1, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.ThreadInsts != r2.ThreadInsts {
		t.Fatalf("Run vs RunContext diverged: %d/%d cycles, %d/%d insts",
			r1.Cycles, r2.Cycles, r1.ThreadInsts, r2.ThreadInsts)
	}
}

// TestRunContextDeadline: an already-expired deadline surfaces as a
// *CanceledError whose cause is context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	cfg := smallCfg()
	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
	mustLaunch(t, sim, simpleKernel("k", 4))
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := sim.RunContext(ctx)
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause not unwrapped to DeadlineExceeded: %v", err)
	}
}
