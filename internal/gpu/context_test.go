package gpu_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/faults"
	"laperm/internal/gpu"
)

// TestRunContextPreCanceled: a context canceled before RunContext starts
// yields a *CanceledError at cycle 0 without simulating anything.
func TestRunContextPreCanceled(t *testing.T) {
	cfg := smallCfg()
	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
	mustLaunch(t, sim, simpleKernel("k", 4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sim.RunContext(ctx)
	if res != nil {
		t.Fatalf("canceled run returned a Result")
	}
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if ce.Cycle != 0 {
		t.Errorf("CanceledError.Cycle = %d, want 0", ce.Cycle)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; cause not unwrapped")
	}
}

// TestRunContextCancelMidRun cancels from inside a dispatch trace hook — a
// point deterministically mid-run — and expects the engine to stop with a
// *CanceledError instead of completing. Dense clocking guarantees the engine
// loop iterates at least once per cycle, so the throttled context poll fires
// soon after the hook runs.
func TestRunContextCancelMidRun(t *testing.T) {
	cfg := smallCfg()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dispatches := 0
	sim := gpu.MustNew(gpu.Options{
		Config:     cfg,
		Scheduler:  core.NewRoundRobin(),
		DenseClock: true,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			if dispatches++; dispatches == 2 {
				cancel()
			}
		},
	})
	// Enough thread blocks that thousands of cycles remain after the
	// second dispatch, guaranteeing the throttled context poll fires
	// before the run can complete.
	mustLaunch(t, sim, simpleKernel("k", 4096))
	res, err := sim.RunContext(ctx)
	if res != nil {
		t.Fatalf("canceled run returned a Result")
	}
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if ce.Live == 0 {
		t.Errorf("CanceledError.Live = 0, want live kernels at cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause not unwrapped to context.Canceled: %v", err)
	}
}

// TestRunContextBackgroundMatchesRun: RunContext(Background) is Run — same
// Result for the same workload.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	mk := func() *gpu.Simulator {
		cfg := smallCfg()
		sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
		mustLaunch(t, sim, simpleKernel("k", 8))
		return sim
	}
	r1, err := mk().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk().RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.ThreadInsts != r2.ThreadInsts {
		t.Fatalf("Run vs RunContext diverged: %d/%d cycles, %d/%d insts",
			r1.Cycles, r2.Cycles, r1.ThreadInsts, r2.ThreadInsts)
	}
}

// TestRunContextDeadline: an already-expired deadline surfaces as a
// *CanceledError whose cause is context.DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	cfg := smallCfg()
	sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin()})
	mustLaunch(t, sim, simpleKernel("k", 4))
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_, err := sim.RunContext(ctx)
	var ce *gpu.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("cause not unwrapped to DeadlineExceeded: %v", err)
	}
}

// deadlockSim builds a fresh circular-wait simulator (the harden_test
// workload) with an aggressive watchdog, optionally with an armed failpoint
// registry — the substrate for the cancellation/watchdog race tests.
func deadlockSim(t *testing.T, reg *faults.Registry) *gpu.Simulator {
	t.Helper()
	cfg := config.SmallTest()
	cfg.MaxConcurrentKernels = 4
	cfg.KMUPendingCapacity = 2
	cfg.CDPLaunchLatency = 100
	sim := gpu.MustNew(gpu.Options{
		Config:           &cfg,
		Scheduler:        core.NewRoundRobin(),
		Model:            gpu.CDP,
		WatchdogInterval: 2_000,
		DenseClock:       true,
		Faults:           reg,
	})
	mustLaunch(t, sim, deadlockWorkload(16, 7))
	return sim
}

// oneStructuredKind asserts the run error is exactly one of the structured
// kinds a deadlocking-and-canceled run may legally surface — *CanceledError
// or *DeadlockError, never both, never a plain error — and names which.
func oneStructuredKind(t *testing.T, err error) string {
	t.Helper()
	if err == nil {
		t.Fatal("deadlocking run returned nil error")
	}
	var de *gpu.DeadlockError
	var ce *gpu.CanceledError
	isDeadlock, isCanceled := errors.As(err, &de), errors.As(err, &ce)
	switch {
	case isDeadlock && isCanceled:
		t.Fatalf("error is both deadlock and canceled: %v", err)
	case isDeadlock:
		return "deadlock"
	case isCanceled:
		return "canceled"
	}
	t.Fatalf("err = %T %v, want *DeadlockError or *CanceledError", err, err)
	return ""
}

// TestCancelRacingWatchdog: a run that deadlocks *and* gets canceled must
// deterministically report one structured error kind, under -race. The two
// deterministic extremes pin which side wins; the concurrent subtests race
// the cancellation against the watchdog (with injected poll latency widening
// the window) and require that exactly one structured kind surfaces every
// time.
func TestCancelRacingWatchdog(t *testing.T) {
	t.Run("cancel-before-run always wins", func(t *testing.T) {
		for rep := 0; rep < 3; rep++ {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			_, err := deadlockSim(t, nil).RunContext(ctx)
			if kind := oneStructuredKind(t, err); kind != "canceled" {
				t.Fatalf("rep %d: kind = %s, want canceled", rep, kind)
			}
		}
	})
	t.Run("no-cancel always deadlocks at the same cycle", func(t *testing.T) {
		var cycle uint64
		for rep := 0; rep < 3; rep++ {
			_, err := deadlockSim(t, nil).RunContext(context.Background())
			if kind := oneStructuredKind(t, err); kind != "deadlock" {
				t.Fatalf("rep %d: kind = %s, want deadlock", rep, kind)
			}
			var de *gpu.DeadlockError
			errors.As(err, &de)
			if rep == 0 {
				cycle = de.Cycle
			} else if de.Cycle != cycle {
				t.Fatalf("rep %d: deadlock cycle %d, rep 0 saw %d (nondeterministic)", rep, de.Cycle, cycle)
			}
		}
	})
	t.Run("concurrent cancel yields exactly one kind", func(t *testing.T) {
		for rep := 0; rep < 5; rep++ {
			sim := deadlockSim(t, nil)
			ctx, cancel := context.WithCancel(context.Background())
			go func(d time.Duration) {
				time.Sleep(d)
				cancel()
			}(time.Duration(rep) * 500 * time.Microsecond)
			_, err := sim.RunContext(ctx)
			t.Logf("rep %d: %s", rep, oneStructuredKind(t, err))
			cancel()
		}
	})
	t.Run("injected poll latency widens the race", func(t *testing.T) {
		for rep := 0; rep < 3; rep++ {
			reg, err := faults.Parse("gpu.run.poll=delay:d=1ms:p=0.5", uint64(rep+1))
			if err != nil {
				t.Fatal(err)
			}
			sim := deadlockSim(t, reg)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(time.Millisecond)
				cancel()
			}()
			_, rerr := sim.RunContext(ctx)
			t.Logf("rep %d: %s", rep, oneStructuredKind(t, rerr))
			cancel()
		}
	})
}

// TestInjectedEngineFaultSurfaces: an error fault at the engine's poll site
// aborts the run with the structured *faults.InjectedError (the transient
// kind upstream retry policies key on), and an exhausted schedule lets a
// fresh simulator complete the same workload normally.
func TestInjectedEngineFaultSurfaces(t *testing.T) {
	reg, err := faults.Parse("gpu.run.poll=error:n=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *gpu.Simulator {
		cfg := smallCfg()
		sim := gpu.MustNew(gpu.Options{Config: cfg, Scheduler: core.NewRoundRobin(), DenseClock: true, Faults: reg})
		mustLaunch(t, sim, simpleKernel("k", 4096))
		return sim
	}
	_, rerr := mk().RunContext(context.Background())
	if !faults.IsInjected(rerr) {
		t.Fatalf("run with armed poll fault returned %T %v, want injected error", rerr, rerr)
	}
	res, rerr := mk().RunContext(context.Background())
	if rerr != nil || res == nil {
		t.Fatalf("run after fault exhaustion failed: %v", rerr)
	}
}
