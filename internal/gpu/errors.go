package gpu

import (
	"fmt"
	"strings"
)

// This file defines the structured error taxonomy of the hardened engine.
// Run returns exactly one of:
//
//   - *DeadlockError    — the forward-progress watchdog found a scheduling
//     deadlock: live work exists but nothing moved for a full watchdog
//     window.
//   - *InvariantError   — the invariant auditor (or an engine-internal
//     check) found corrupted state: resource accounting, queue counters,
//     or a scheduler contract violation.
//   - *CycleLimitError  — the run exceeded MaxCycles without deadlocking
//     (a runaway workload or an undersized limit).
//   - *CanceledError    — RunContext's context was canceled or timed out
//     before the run completed.
//   - a plain error     — usage errors (Run called twice, nothing to run).

// StuckKernel describes one incomplete kernel instance inside a
// DeadlockError, with enough context to see why it cannot make progress.
type StuckKernel struct {
	// ID, Name and Priority identify the instance.
	ID       int
	Name     string
	Priority int
	// BoundSMX is the SMX the instance is bound to (-1 for host kernels).
	BoundSMX int
	// Dispatched and Done count thread blocks against Total.
	Dispatched, Done, Total int
	// Where locates the instance on the launch path: "in-flight" (launch
	// latency not yet elapsed), "kmu" (waiting for a KDU entry),
	// "distributor" (visible to the TB scheduler, nothing dispatched),
	// "partially-dispatched", or "executing".
	Where string
}

func (k StuckKernel) String() string {
	return fmt.Sprintf("kernel %d %q (prio %d, smx %d, %d/%d dispatched, %d done) %s",
		k.ID, k.Name, k.Priority, k.BoundSMX, k.Dispatched, k.Total, k.Done, k.Where)
}

// DeadlockError reports that the forward-progress watchdog observed a full
// window with live work but no progress: no arrival delivered, no kernel
// moved to the KDU, no thread block dispatched or retired, no instruction
// issued, and no memory traffic.
type DeadlockError struct {
	// Cycle is when the watchdog fired; Window is the progress-free span.
	Cycle  uint64
	Window uint64
	// Live counts incomplete kernel instances; KMUQueued those waiting at
	// the KMU; KDUUsed the occupied KDU entries.
	Live      int
	KMUQueued int
	KDUUsed   int
	// QueueDepths is the per-priority-level KMU queue occupancy.
	QueueDepths []int
	// Stuck lists incomplete kernel instances (capped; TotalStuck is the
	// full count).
	Stuck      []StuckKernel
	TotalStuck int
}

func (e *DeadlockError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpu: deadlock at cycle %d: no forward progress for %d cycles (%d kernels live, %d at KMU, %d KDU entries used)",
		e.Cycle, e.Window, e.Live, e.KMUQueued, e.KDUUsed)
	for _, k := range e.Stuck {
		fmt.Fprintf(&b, "\n  stuck: %s", k)
	}
	if e.TotalStuck > len(e.Stuck) {
		fmt.Fprintf(&b, "\n  ... and %d more", e.TotalStuck-len(e.Stuck))
	}
	return b.String()
}

// InvariantError reports corrupted engine state found by the invariant
// auditor or an engine-internal consistency check.
type InvariantError struct {
	// Cycle is when the violation was detected.
	Cycle uint64
	// Check names the failed invariant; Detail describes the mismatch.
	Check  string
	Detail string
	// State is a one-line dump of the engine counters at failure.
	State string
}

func (e *InvariantError) Error() string {
	s := fmt.Sprintf("gpu: invariant %q violated at cycle %d: %s", e.Check, e.Cycle, e.Detail)
	if e.State != "" {
		s += " [" + e.State + "]"
	}
	return s
}

// CycleLimitError reports that the simulation exceeded MaxCycles while
// still making progress (the watchdog had not fired).
type CycleLimitError struct {
	MaxCycles       uint64
	Live            int
	PendingArrivals int
	KMUQueued       int
}

func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("gpu: simulation exceeded %d cycles (%d kernels live, %d arrivals, %d at KMU)",
		e.MaxCycles, e.Live, e.PendingArrivals, e.KMUQueued)
}

// CanceledError reports that RunContext's context was canceled (or its
// deadline expired) before the simulation completed. It wraps the context's
// cancellation cause, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both see through it.
type CanceledError struct {
	// Cycle is the simulated cycle at which the cancellation was observed.
	Cycle uint64
	// Live counts the kernel instances still incomplete at cancellation.
	Live int
	// Cause is context.Cause(ctx) at the time of the observation.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("gpu: run canceled at cycle %d (%d kernels live): %v", e.Cycle, e.Live, e.Cause)
}

// Unwrap exposes the cancellation cause to errors.Is / errors.As.
func (e *CanceledError) Unwrap() error { return e.Cause }
