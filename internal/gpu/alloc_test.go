package gpu

// Allocation pins for the engine's per-cycle paths, extending the pattern of
// faults.TestDisarmedSitesZeroAlloc: the steady-state dense tick and the
// fast-forward skip/replay path must allocate nothing once the machine is
// warmed up. The budgets below are a table with explicit numbers so an
// intentional regression requires editing a constant, and an accidental one
// fails loudly.
//
// These are in-package tests: they drive the phase list cycle by cycle the
// way RunContext does, which needs access to phaseList, now, and the
// host-kernel materialization. The scheduler is a local FIFO because
// internal/core imports this package (the real schedulers are pinned by the
// whole-cell budgets in internal/exp).

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/isa"
)

// allocFIFO is a minimal IdleAware TBScheduler: FIFO dispatch onto the first
// fitting SMX, quiescent after a single nil Select.
type allocFIFO struct {
	queue []*KernelInstance
	head  int
}

func (f *allocFIFO) Name() string              { return "alloc-fifo" }
func (f *allocFIFO) Enqueue(k *KernelInstance) { f.queue = append(f.queue, k) }

func (f *allocFIFO) Select(d Dispatcher) (*KernelInstance, int) {
	for f.head < len(f.queue) {
		ki := f.queue[f.head]
		if ki.Exhausted() {
			f.head++
			continue
		}
		tb := ki.PeekTB()
		for x := 0; x < d.NumSMX(); x++ {
			if d.CanFit(x, tb) {
				return ki, x
			}
		}
		return nil, 0
	}
	return nil, 0
}

func (f *allocFIFO) IdleSelectPeriod() int   { return 1 }
func (f *allocFIFO) SkipIdleSelects(uint64)  {}
func (f *allocFIFO) SkipEmptySelects(uint64) {}

// startAlloc builds a simulator for prog and materializes the host kernel
// exactly as RunContext does, so tests can step the phase list themselves.
func startAlloc(t *testing.T, prog *isa.Kernel, dense bool) *Simulator {
	t.Helper()
	cfg := config.SmallTest()
	s, err := New(Options{Config: &cfg, Scheduler: &allocFIFO{}, Model: DTBL, DenseClock: dense})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LaunchHost(prog); err != nil {
		t.Fatal(err)
	}
	s.ran = true
	for _, k := range s.hostPending {
		ki := s.newInstance()
		ki.ID, ki.Prog, ki.BoundSMX, ki.viaKMU = s.nextID, k, -1, true
		s.nextID++
		s.live++
		s.kernels = append(s.kernels, ki)
		s.arrivals = append(s.arrivals, ki)
	}
	s.lastProgress = s.progress()
	return s
}

// denseStep is one dense engine cycle: every phase ticks, now advances by 1.
func denseStep(t *testing.T, s *Simulator) {
	for _, ph := range s.phaseList {
		if err := ph.Tick(s.now); err != nil {
			t.Fatal(err)
		}
	}
	s.now++
}

// ffStep is one fast-forward engine iteration: tick every phase, merge the
// NextEvent horizons, and credit the skipped span — the loop body of
// RunContext under the default clock.
func ffStep(t *testing.T, s *Simulator) {
	for _, ph := range s.phaseList {
		if err := ph.Tick(s.now); err != nil {
			t.Fatal(err)
		}
	}
	next := s.now + 1
	horizon := uint64(NoEvent)
	for _, ph := range s.phaseList {
		if h := ph.NextEvent(next); h < horizon {
			horizon = h
		}
	}
	if horizon > s.maxCycles {
		horizon = s.maxCycles
	}
	if horizon > next {
		span := horizon - next
		for _, ph := range s.phaseList {
			ph.Skip(span)
		}
		next = horizon
	}
	s.now = next
}

// dispatchAll steps the engine until every thread block of the (single) host
// kernel is resident, leaving the machine in steady-state execution.
func dispatchAll(t *testing.T, s *Simulator, step func(*testing.T, *Simulator), totalTBs uint64) {
	t.Helper()
	for i := 0; s.tbsDispatched < totalTBs; i++ {
		if i > 1_000_000 {
			t.Fatalf("only %d of %d TBs dispatched after 1M steps", s.tbsDispatched, totalTBs)
		}
		step(t, s)
	}
	if s.done() {
		t.Fatal("workload completed during warm-up; grow the streams")
	}
}

// steadyProg builds a host kernel whose blocks saturate the SmallTest
// machine and then execute a long mixed compute/load/store stream — enough
// cycles of steady-state work that the measured windows below never see a
// dispatch or retirement.
func steadyProg(computeLatency, insts int) *isa.Kernel {
	kb := isa.NewKernel("steady")
	for tb := 0; tb < 8; tb++ {
		base := uint64(tb) * 1 << 20
		b := isa.NewTB(64)
		for i := 0; i < insts; i++ {
			switch i % 4 {
			case 0:
				off := base + uint64(i)*512
				b.Load(func(tid int) uint64 { return off + uint64(tid)*4 })
			case 3:
				off := base + uint64(i)*512
				b.Store(func(tid int) uint64 { return 0x4000_0000 + off + uint64(tid)*4 })
			default:
				b.Compute(computeLatency)
			}
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}

// TestEnginePathAllocPins drives the two per-cycle engine paths to steady
// state and pins their allocation rate. Budgets are exact: 0 allocations per
// engine iteration. Raising one is an explicit, reviewed decision.
func TestEnginePathAllocPins(t *testing.T) {
	cases := []struct {
		name   string
		dense  bool
		prog   *isa.Kernel
		step   func(*testing.T, *Simulator)
		rounds int
		budget float64
	}{
		// The dense tick: every phase processed on every cycle, warps
		// issuing compute, loads (MSHR insert/merge/expire), and stores.
		{name: "steady-state-dense-tick", dense: true, prog: steadyProg(4, 4000), step: denseStep, rounds: 500, budget: 0},
		// The fast-forward path: long compute latencies force horizon
		// merges, span skips, and SkipIdle/Skip replays every iteration.
		{name: "idle-fast-forward-replay", dense: false, prog: steadyProg(500, 400), step: ffStep, rounds: 200, budget: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := startAlloc(t, tc.prog, tc.dense)
			dispatchAll(t, s, tc.step, uint64(len(tc.prog.TBs)))
			allocs := testing.AllocsPerRun(tc.rounds, func() { tc.step(t, s) })
			if s.done() {
				t.Fatal("workload completed inside the measured window; grow the streams")
			}
			if allocs > tc.budget {
				t.Errorf("%s: %.2f allocs per engine iteration, budget %.0f", tc.name, allocs, tc.budget)
			}
		})
	}
}
