package gpu_test

import (
	"reflect"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
)

// TestModelRegistryOrderAndNames pins the registration order — it indexes
// the Model constants and orders every matrix, CSV, and golden file.
func TestModelRegistryOrderAndNames(t *testing.T) {
	if want := []string{"cdp", "dtbl", "pmk"}; !reflect.DeepEqual(gpu.ModelNames(), want) {
		t.Errorf("ModelNames() = %v, want %v", gpu.ModelNames(), want)
	}
	if want := []gpu.Model{gpu.CDP, gpu.DTBL, gpu.PMK}; !reflect.DeepEqual(gpu.Models(), want) {
		t.Errorf("Models() = %v, want %v", gpu.Models(), want)
	}
	for _, m := range gpu.Models() {
		info, ok := m.Info()
		if !ok {
			t.Fatalf("model %d has no registry entry", int(m))
		}
		if m.String() != info.Name {
			t.Errorf("model %d String() = %q, registry name %q", int(m), m.String(), info.Name)
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
		if got, ok := gpu.ModelByName(info.Name); !ok || got != m {
			t.Errorf("ModelByName(%q) = %v, %v, want %v", info.Name, got, ok, m)
		}
	}
	if _, ok := gpu.ModelByName("sycl"); ok {
		t.Error("ModelByName accepted an unknown name")
	}
	if _, ok := gpu.Model(99).Info(); ok {
		t.Error("Info() accepted an out-of-range handle")
	}
}

// TestModelLaunchPaths checks each built-in's descriptor against its
// configuration fields.
func TestModelLaunchPaths(t *testing.T) {
	cfg := config.KeplerK20c()
	path := func(m gpu.Model) gpu.LaunchPath {
		info, ok := m.Info()
		if !ok {
			t.Fatalf("no registry entry for %v", m)
		}
		return info.Path(&cfg)
	}
	if p := path(gpu.CDP); p.Direct {
		t.Errorf("cdp path is direct: %+v", p)
	}
	if p := path(gpu.DTBL); !p.Direct || p.Queue != "agg" ||
		p.Capacity != cfg.DTBLAggBufferEntries || p.Latency != cfg.DTBLLaunchLatency {
		t.Errorf("dtbl path = %+v", p)
	}
	if p := path(gpu.PMK); !p.Direct || p.Queue != "taskq" ||
		p.Capacity != cfg.PMKTaskQueueEntries || p.Latency != cfg.PMKLaunchLatency || p.OverflowToKMU {
		t.Errorf("pmk path = %+v", p)
	}
}

// TestNewRejectsUnknownModel: the simulator constructor must resolve the
// model against the registry, not accept an arbitrary integer.
func TestNewRejectsUnknownModel(t *testing.T) {
	cfg := config.SmallTest()
	_, err := gpu.New(gpu.Options{Config: &cfg, Scheduler: core.NewRoundRobin(), Model: gpu.Model(99)})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestPMKBypassesKMU: under the persistent microkernel, no child launch ever
// touches the KMU pending pool — PeakKMUPending stays at zero even with a
// deep dynamic workload (only host kernels route via the KMU, and those
// never hold pending-pool entries).
func TestPMKBypassesKMU(t *testing.T) {
	cfg := config.SmallTest()
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.PMK,
		Audit:     true,
	})
	mustLaunch(t, sim, launchingKernel(6, 3))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakKMUPending != 0 {
		t.Errorf("PeakKMUPending = %d under pmk, want 0", res.PeakKMUPending)
	}
	if res.PeakAggEntries == 0 {
		t.Error("PeakAggEntries = 0 under pmk: task-queue entries not tracked")
	}
	if res.DynamicKernelCount != 6 {
		t.Errorf("DynamicKernelCount = %d, want 6", res.DynamicKernelCount)
	}
}

// TestPMKLaunchLatency: a child's arrival trails its launch by exactly the
// configured task-queue latency.
func TestPMKLaunchLatency(t *testing.T) {
	cfg := config.SmallTest()
	cfg.PMKLaunchLatency = 30
	sim := gpu.MustNew(gpu.Options{Config: &cfg, Scheduler: core.NewRoundRobin(), Model: gpu.PMK})
	mustLaunch(t, sim, launchingKernel(2, 2))
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	children := 0
	for _, ki := range sim.Kernels() {
		if ki.Parent == nil {
			continue
		}
		children++
		if ki.ArriveCycle != ki.LaunchCycle+30 {
			t.Errorf("kernel %d: arrive %d, launch %d, want +30", ki.ID, ki.ArriveCycle, ki.LaunchCycle)
		}
	}
	if children == 0 {
		t.Fatal("no dynamic children ran")
	}
}

// TestPMKQueueFullStallsProducer: a bounded task queue has no KMU fallback,
// so saturating it must produce launch-stall episodes — and the run must
// still complete with nothing demoted to the KMU.
func TestPMKQueueFullStallsProducer(t *testing.T) {
	cfg := config.SmallTest()
	cfg.PMKTaskQueueEntries = 1
	var overflow int
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: core.NewRoundRobin(),
		Model:     gpu.PMK,
		Audit:     true,
		TraceQueue: func(ev gpu.QueueEvent) {
			if ev.Kind == gpu.QueueOverflow {
				overflow++
			}
		},
	})
	mustLaunch(t, sim, overflowWorkload(3, 4))
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.LaunchStallEpisodes == 0 {
		t.Error("no launch stalls with a 1-entry task queue")
	}
	if overflow != 0 {
		t.Errorf("%d overflow demotions under pmk, want 0 (no KMU fallback)", overflow)
	}
	if res.PeakKMUPending != 0 {
		t.Errorf("PeakKMUPending = %d: a pmk launch reached the KMU", res.PeakKMUPending)
	}
	if res.PeakAggEntries != 1 {
		t.Errorf("PeakAggEntries = %d with a 1-entry queue", res.PeakAggEntries)
	}
}

// TestRegisterModelPanics pins the registration-time guards. Registration is
// append-only global state, so this test uses throwaway names.
func TestRegisterModelPanics(t *testing.T) {
	expectPanic := func(why string, info gpu.ModelInfo) {
		defer func() {
			if recover() == nil {
				t.Errorf("RegisterModel with %s did not panic", why)
			}
		}()
		gpu.RegisterModel(info)
	}
	path := func(cfg *config.GPU) gpu.LaunchPath { return gpu.LaunchPath{} }
	expectPanic("empty name", gpu.ModelInfo{Path: path})
	expectPanic("nil path", gpu.ModelInfo{Name: "x"})
	expectPanic("duplicate name", gpu.ModelInfo{Name: "cdp", Path: path})
}
