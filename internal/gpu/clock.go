package gpu

// This file is the event-horizon clock: the phase decomposition of the
// engine loop and the fast-forward machinery that advances `now` directly to
// the next cycle on which anything can happen, instead of incrementing by
// one. Fast-forward is the default and is cycle-exact — dense and
// fast-forward runs produce byte-identical Results, traces, and timelines
// (see DESIGN.md §9 for the argument) — with Options.DenseClock as the
// reference escape hatch.

// NoEvent is the NextEvent value of a component with nothing scheduled: it
// never constrains the horizon merge.
const NoEvent = ^uint64(0)

// Clocked is one phase of the engine loop. Every processed cycle runs each
// phase's Tick once, in a fixed order matching the original dense loop
// (arrivals, KMU dispatch, TB dispatch, SMX pipelines, sampler, watchdog).
type Clocked interface {
	// Tick advances the phase at cycle now.
	Tick(now uint64) error
	// NextEvent returns the earliest cycle >= next at which the phase can
	// change simulation state, or NoEvent when it is inert until some
	// other phase acts. The engine processes every cycle up to and
	// including the minimum over all phases, so a phase is never ticked
	// past its own horizon.
	NextEvent(next uint64) uint64
	// Skip accounts an elided idle span of `cycles` cycles, all strictly
	// before every phase's horizon. Phases with per-cycle bookkeeping
	// (resident-cycle counting, elided scheduler polls) bulk-apply it
	// here; pure event-driven phases do nothing.
	Skip(cycles uint64)
}

// IdleAware is an optional TBScheduler extension that lets the fast-forward
// clock elide Select calls on provably idle cycles. A scheduler reports a
// nil-period p >= 1 with the contract: after p consecutive Select calls
// returning nil with no intervening Enqueue, successful dispatch, or
// thread-block retirement, every further Select also returns nil, and the
// only state such a call mutates is reproduced exactly by SkipIdleSelects.
// The round-robin cursors of the binding schedulers make p the SMX count
// (one full fruitless round proves quiescence); the global-queue schedulers
// are idle after a single nil. A period <= 0 opts out, and schedulers that
// do not implement the interface are polled every cycle — fast-forward then
// degrades to dense stepping around them, trading speed for correctness.
type IdleAware interface {
	IdleSelectPeriod() int
	// SkipIdleSelects replays the state effect of n consecutive
	// nil-returning Select calls in O(1).
	SkipIdleSelects(n uint64)
	// SkipEmptySelects replays the state effect of n consecutive Select
	// calls made while the scheduler held no unexhausted instance (every
	// such call is trivially nil, whatever the SMX occupancy). It exists
	// separately from SkipIdleSelects because these calls can be elided
	// without a proving nil round first, so per-slot cleanup a nil round
	// would have completed (AdaptiveBind's backup resets) must be replayed
	// here, in O(SMX count) or better.
	SkipEmptySelects(n uint64)
}

// periodic is the shared period arithmetic of the sampler, watchdog, and
// auditor ticks: fires reproduces the dense loop's `now%every == 0` gate and
// nextAt is its horizon, so a skipped span can never jump over a scheduled
// tick — the two are derived from the same divisor.
type periodic struct{ every uint64 }

// fires reports whether the periodic tick is due at cycle now.
func (p periodic) fires(now uint64) bool {
	return p.every > 0 && now > 0 && now%p.every == 0
}

// nextAt returns the first cycle >= next at which fires is true, or NoEvent
// for a disabled (zero) period.
func (p periodic) nextAt(next uint64) uint64 {
	if p.every == 0 {
		return NoEvent
	}
	if next == 0 {
		return p.every
	}
	if r := next % p.every; r != 0 {
		return next + (p.every - r)
	}
	return next
}

// arrivalsPhase delivers launches whose latency has elapsed. Its horizon is
// the head of the ArriveCycle-sorted arrival queue.
type arrivalsPhase struct{ s *Simulator }

func (p arrivalsPhase) Tick(now uint64) error { p.s.deliverArrivals(); return nil }

func (p arrivalsPhase) NextEvent(next uint64) uint64 {
	s := p.s
	if s.arrHead >= len(s.arrivals) {
		return NoEvent
	}
	if at := s.arrivals[s.arrHead].ArriveCycle; at > next {
		return at
	}
	return next
}

func (p arrivalsPhase) Skip(uint64) {}

// kmuPhase fills free KDU entries from the KMU queues. kmuDispatch drains
// until the KDU is full or the KMU empty, so after a processed cycle it is
// actionable exactly when kernels are still queued behind a full KDU — and a
// KDU entry can only free through a block retirement, which is inside the
// SMX phase's horizon.
type kmuPhase struct{ s *Simulator }

func (p kmuPhase) Tick(now uint64) error { return p.s.kmuDispatch() }

func (p kmuPhase) NextEvent(next uint64) uint64 {
	s := p.s
	if s.kmuCount > 0 && s.kduUsed < s.cfg.MaxConcurrentKernels {
		return next
	}
	return NoEvent
}

func (p kmuPhase) Skip(uint64) {}

// tbPhase runs the TB scheduler's dispatch slots. With an IdleAware
// scheduler it goes inert once the nil-Select streak proves quiescence;
// elided polls accumulate in pendingIdle and are replayed before the next
// real Select. Without one it is actionable every cycle, pinning the engine
// to dense stepping.
type tbPhase struct{ s *Simulator }

func (p tbPhase) Tick(now uint64) error { return p.s.tbDispatch() }

func (p tbPhase) NextEvent(next uint64) uint64 {
	if p.s.schedQuiesced() {
		return NoEvent
	}
	return next
}

func (p tbPhase) Skip(cycles uint64) {
	if p.s.schedLive == 0 {
		p.s.pendingEmpty += cycles
	} else {
		p.s.pendingIdle += cycles
	}
}

// smxPhase ticks every SMX pipeline. Its horizon is the minimum of the
// per-SMX NextEvent bounds: the earliest issuable warp or pending
// retirement, lowered to the MSHR-release cycle when warps are stalled on a
// full MSHR table. Skipped spans bulk-apply the per-cycle effects a dense
// tick would have had — resident-cycle counting and the once-per-cycle
// failing retry of every stalled warp, whose launch-path share feeds the
// engine's backpressure counter exactly as the elided Launch callbacks
// would have (trace events are per-episode, not per-retry, so none are
// elided).
type smxPhase struct{ s *Simulator }

func (p smxPhase) Tick(now uint64) error {
	if p.s.ff {
		// Under fast-forward the horizons computed for the last merge also
		// prove, per SMX, that nothing can happen on this processed cycle;
		// TickFF elides those SMXs' ticks entirely (see smx.TickFF).
		for _, x := range p.s.smxs {
			x.TickFF(now)
		}
		return nil
	}
	for _, x := range p.s.smxs {
		x.Tick(now)
	}
	return nil
}

func (p smxPhase) NextEvent(next uint64) uint64 {
	horizon := uint64(NoEvent)
	for _, x := range p.s.smxs {
		if h := x.NextEvent(next); h < horizon {
			horizon = h
		}
	}
	return horizon
}

func (p smxPhase) Skip(cycles uint64) {
	for _, x := range p.s.smxs {
		p.s.launchStallCycles += x.SkipIdle(cycles)
	}
}

// samplerPhase takes timeline samples (and audits, when enabled) at exact
// multiples of SampleEvery, identically under both clocks: its period is a
// horizon source, so no skip can jump over a scheduled sample.
type samplerPhase struct {
	s *Simulator
	periodic
}

func (p samplerPhase) Tick(now uint64) error {
	if !p.fires(now) {
		return nil
	}
	p.s.takeSample()
	if p.s.audit {
		return p.s.runAudit()
	}
	return nil
}

func (p samplerPhase) NextEvent(next uint64) uint64 { return p.nextAt(next) }

func (p samplerPhase) Skip(uint64) {}

// watchdogPhase compares forward-progress snapshots (and audits, when
// enabled) at exact multiples of the watchdog interval, again as a horizon
// source so deadlock detection fires on the same cycle under both clocks.
type watchdogPhase struct {
	s *Simulator
	periodic
}

func (p watchdogPhase) Tick(now uint64) error {
	if !p.fires(now) {
		return nil
	}
	if err := p.s.watchdogCheck(); err != nil {
		return err
	}
	if p.s.audit {
		return p.s.runAudit()
	}
	return nil
}

func (p watchdogPhase) NextEvent(next uint64) uint64 { return p.nextAt(next) }

func (p watchdogPhase) Skip(uint64) {}

// schedQuiesced reports whether the TB scheduler is provably idle: it is
// IdleAware, fast-forwarding is on, and either every instance handed to it
// has been fully dispatched (schedLive == 0 — a Select then has nothing to
// return no matter the SMX state, the common case while dispatched blocks
// execute), or the scheduler has returned nil for a full nil-period of
// consecutive Selects with no intervening enqueue, dispatch, or retirement
// (dirtySched resets the streak on each of those).
func (s *Simulator) schedQuiesced() bool {
	return s.ff && s.idleSched != nil && (s.schedLive == 0 || s.nilStreak >= s.idlePeriod)
}

// dirtySched notes a dispatch-state change the TB scheduler can observe — a
// newly enqueued kernel, a successful dispatch, or a retirement freeing SMX
// resources — invalidating the nil-Select streak.
func (s *Simulator) dirtySched() { s.nilStreak = 0 }

// phases builds the engine's phase list in dense-loop order. New calls it
// once (into phaseList) so the per-run path allocates nothing for phases.
func (s *Simulator) phases() []Clocked {
	return []Clocked{
		arrivalsPhase{s},
		kmuPhase{s},
		tbPhase{s},
		smxPhase{s},
		samplerPhase{s, periodic{s.sampleEvery}},
		watchdogPhase{s, periodic{s.watchdogEvery}},
	}
}
