// Package gpu is the top level of the simulator: the Kernel Management Unit
// (KMU), the 32-entry Kernel Distributor Unit (KDU), the device-side launch
// paths of both dynamic-parallelism models (CDP device kernels and DTBL
// thread-block groups), the per-cycle engine loop, and the dispatcher
// contract the TB schedulers in internal/core implement.
//
// Figure 1 of the paper is the blueprint: host kernels enter the KMU; the
// KMU fills the KDU subject to its entry limit; the SMX scheduler (a
// TBScheduler implementation) dispatches thread blocks from KDU kernels to
// the SMXs; each SMX can issue new launches back to the KMU (CDP) or
// coalesce TB groups straight onto the distributor (DTBL).
package gpu

import (
	"fmt"

	"laperm/internal/config"
	"laperm/internal/isa"
	"laperm/internal/mem"
	"laperm/internal/smx"
)

// Model selects the dynamic-parallelism launch mechanism.
type Model int

const (
	// CDP launches children as device kernels routed SMX -> KMU -> KDU,
	// paying the full device-kernel launch latency and competing for the
	// 32 KDU entries.
	CDP Model = iota
	// DTBL launches children as lightweight thread-block groups that are
	// coalesced onto the kernel distributor and are always visible to
	// the TB scheduler.
	DTBL
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case CDP:
		return "cdp"
	case DTBL:
		return "dtbl"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// KernelInstance is one running (or pending) grid: a host-launched kernel,
// a CDP device kernel, or a DTBL thread-block group.
type KernelInstance struct {
	// ID is unique per simulation, in creation order.
	ID int
	// Prog is the grid's program.
	Prog *isa.Kernel
	// Priority is the LaPerm priority: 0 for host kernels, parent+1
	// (clamped to the configured maximum level) for dynamic launches.
	Priority int
	// BoundSMX is the SMX that executed the direct parent thread block,
	// or -1 for host-launched kernels. The SMX-binding policies dispatch
	// the instance's TBs there.
	BoundSMX int
	// Parent is the launching kernel instance (nil for host kernels).
	Parent *KernelInstance

	// NextTB indexes the next thread block to dispatch; the instance is
	// exhausted when NextTB reaches len(Prog.TBs).
	NextTB int
	// DoneTBs counts completed thread blocks.
	DoneTBs int

	// LaunchCycle is when the launch instruction executed (0 for host).
	LaunchCycle uint64
	// ArriveCycle is when the instance became visible to the KMU (CDP)
	// or the TB scheduler (DTBL), i.e. LaunchCycle plus launch latency.
	ArriveCycle uint64
	// FirstDispatchCycle and CompleteCycle bracket execution (valid once
	// dispatched / completed).
	FirstDispatchCycle uint64
	CompleteCycle      uint64

	dispatchedAny bool
	usesKDU       bool
}

// Exhausted reports whether every thread block has been dispatched.
func (k *KernelInstance) Exhausted() bool { return k.NextTB >= len(k.Prog.TBs) }

// PeekTB returns the next thread block to dispatch. It panics if the
// instance is exhausted.
func (k *KernelInstance) PeekTB() *isa.TB { return k.Prog.TBs[k.NextTB] }

// Complete reports whether every thread block has finished execution.
func (k *KernelInstance) Complete() bool { return k.DoneTBs >= len(k.Prog.TBs) }

// Dispatcher is the engine view a TBScheduler uses to place thread blocks.
type Dispatcher interface {
	// NumSMX returns the SMX count.
	NumSMX() int
	// CanFit reports whether the thread block currently fits on the SMX.
	CanFit(smxID int, tb *isa.TB) bool
	// ResidentTBs returns the number of thread blocks currently resident
	// on the SMX (for contention-aware policies).
	ResidentTBs(smxID int) int
	// Cycle returns the current cycle.
	Cycle() uint64
}

// TBScheduler is the SMX scheduler of Figure 1: the policy that decides,
// each dispatch slot, which kernel's next thread block runs on which SMX.
// Implementations live in internal/core (RR, TB-Pri, SMX-Bind,
// Adaptive-Bind).
//
// Contract: Enqueue is called once per kernel instance when it becomes
// dispatchable. Select returns an instance with Exhausted() == false and an
// SMX for which CanFit(smx, instance.PeekTB()) is true, or (nil, 0) when
// nothing can dispatch this slot. The engine advances NextTB after a
// successful Select; schedulers drop exhausted instances lazily.
type TBScheduler interface {
	Name() string
	Enqueue(k *KernelInstance)
	Select(d Dispatcher) (*KernelInstance, int)
}

// Options configures a Simulator.
type Options struct {
	Config    *config.GPU
	Scheduler TBScheduler
	Model     Model
	// WarpPolicy defaults to GTO (Table I).
	WarpPolicy smx.Policy
	// MaxCycles bounds Run; 0 means the DefaultMaxCycles safety net.
	MaxCycles uint64
	// TraceDispatch, when non-nil, observes every thread-block dispatch:
	// the kernel instance, the TB index within it, the target SMX, and
	// the cycle. Tests and the footprint analyses use it.
	TraceDispatch func(ki *KernelInstance, tbIndex, smxID int, cycle uint64)
	// SampleEvery, when non-zero, records a timeline Sample (windowed
	// IPC, cache hit rates, occupancy) every that many cycles.
	SampleEvery uint64
}

// DefaultMaxCycles is the runaway-simulation guard used when Options leaves
// MaxCycles at zero.
const DefaultMaxCycles = 50_000_000

// Simulator owns one end-to-end simulation.
type Simulator struct {
	cfg    *config.GPU
	model  Model
	sched  TBScheduler
	memsys *mem.System
	smxs   []*smx.SMX
	seq    uint64

	now uint64
	// arrivals holds launched instances waiting out their launch
	// latency. Launch latency is uniform per run, so ArriveCycle is
	// nondecreasing and arrHead walks the slice without refiltering.
	arrivals []*KernelInstance
	arrHead  int
	// kmuQueue holds instances at the KMU waiting for a KDU entry, one
	// FIFO per priority level (highest level dispatches first), each
	// with a head cursor.
	kmuQueue  []kmuFIFO
	kmuCount  int
	kduUsed   int
	live      int
	kernels   []*KernelInstance // every instance ever created
	nextID    int
	maxCycles uint64
	trace     func(ki *KernelInstance, tbIndex, smxID int, cycle uint64)

	sampleEvery uint64
	samples     []Sample
	lastSample  sampleBase

	hostPending []*isa.Kernel
	ran         bool
}

// New builds a simulator. It panics on an invalid configuration or a nil
// scheduler, since both are programming errors.
func New(opts Options) *Simulator {
	if opts.Config == nil {
		panic("gpu: Options.Config is required")
	}
	if err := opts.Config.Validate(); err != nil {
		panic(fmt.Sprintf("gpu: %v", err))
	}
	if opts.Scheduler == nil {
		panic("gpu: Options.Scheduler is required")
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	s := &Simulator{
		cfg:         opts.Config,
		model:       opts.Model,
		sched:       opts.Scheduler,
		memsys:      mem.NewSystem(opts.Config),
		maxCycles:   maxCycles,
		trace:       opts.TraceDispatch,
		sampleEvery: opts.SampleEvery,
	}
	s.kmuQueue = make([]kmuFIFO, opts.Config.MaxPriorityLevels+1)
	s.smxs = make([]*smx.SMX, opts.Config.NumSMX)
	for i := range s.smxs {
		s.smxs[i] = smx.New(i, opts.Config, s.memsys, s, opts.WarpPolicy, &s.seq)
	}
	return s
}

// LaunchHost queues a host-side kernel launch, available to the KMU at
// cycle 0. It must be called before Run.
func (s *Simulator) LaunchHost(k *isa.Kernel) {
	if s.ran {
		panic("gpu: LaunchHost after Run")
	}
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("gpu: invalid kernel: %v", err))
	}
	s.hostPending = append(s.hostPending, k)
}

// NumSMX implements Dispatcher.
func (s *Simulator) NumSMX() int { return len(s.smxs) }

// CanFit implements Dispatcher.
func (s *Simulator) CanFit(smxID int, tb *isa.TB) bool { return s.smxs[smxID].CanFit(tb) }

// ResidentTBs implements Dispatcher.
func (s *Simulator) ResidentTBs(smxID int) int { return s.smxs[smxID].ResidentBlocks() }

// Cycle implements Dispatcher.
func (s *Simulator) Cycle() uint64 { return s.now }

// Launch implements smx.Events: a warp executed a device-side launch.
func (s *Simulator) Launch(smxID int, b *smx.Block, child *isa.Kernel, now uint64) {
	parent := b.Owner.(*KernelInstance)
	prio := parent.Priority + 1
	if prio > s.cfg.MaxPriorityLevels {
		prio = s.cfg.MaxPriorityLevels
	}
	latency := s.cfg.CDPLaunchLatency
	if s.model == DTBL {
		latency = s.cfg.DTBLLaunchLatency
	}
	ki := &KernelInstance{
		ID:          s.nextID,
		Prog:        child,
		Priority:    prio,
		BoundSMX:    smxID,
		Parent:      parent,
		LaunchCycle: now,
		ArriveCycle: now + uint64(latency),
	}
	s.nextID++
	s.live++
	s.kernels = append(s.kernels, ki)
	s.arrivals = append(s.arrivals, ki)
}

// BlockDone implements smx.Events: a thread block retired.
func (s *Simulator) BlockDone(smxID int, b *smx.Block, now uint64) {
	ki := b.Owner.(*KernelInstance)
	ki.DoneTBs++
	if ki.Complete() {
		ki.CompleteCycle = now
		s.live--
		if ki.usesKDU {
			s.kduUsed--
		}
	}
}

// kmuFIFO is one priority level's KMU queue with an amortised head cursor.
type kmuFIFO struct {
	items []*KernelInstance
	head  int
}

func (q *kmuFIFO) push(ki *KernelInstance) { q.items = append(q.items, ki) }

func (q *kmuFIFO) pop() *KernelInstance {
	if q.head >= len(q.items) {
		return nil
	}
	ki := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return ki
}

func (q *kmuFIFO) empty() bool { return q.head >= len(q.items) }

// deliverArrivals moves launches whose latency has elapsed to the KMU (CDP
// and host kernels) or directly to the TB scheduler (DTBL TB groups, which
// are coalesced onto the distributor and always visible).
func (s *Simulator) deliverArrivals() {
	for s.arrHead < len(s.arrivals) && s.arrivals[s.arrHead].ArriveCycle <= s.now {
		ki := s.arrivals[s.arrHead]
		s.arrivals[s.arrHead] = nil
		s.arrHead++
		if s.model == DTBL && ki.Parent != nil {
			s.sched.Enqueue(ki)
		} else {
			p := ki.Priority
			if p >= len(s.kmuQueue) {
				p = len(s.kmuQueue) - 1
			}
			s.kmuQueue[p].push(ki)
			s.kmuCount++
		}
	}
	if s.arrHead == len(s.arrivals) {
		s.arrivals = s.arrivals[:0]
		s.arrHead = 0
	}
}

// pendingArrivals reports launches still waiting out their latency.
func (s *Simulator) pendingArrivals() int { return len(s.arrivals) - s.arrHead }

// kmuDispatch fills free KDU entries from the KMU queues, highest priority
// first (FCFS within a priority level), as the prioritized kernel launch
// extension of Section IV-A requires. For the baseline RR scheduler every
// kernel has the same effective behaviour as plain FCFS since host kernels
// and CDP children arrive in launch order within a level.
func (s *Simulator) kmuDispatch() {
	for s.kduUsed < s.cfg.MaxConcurrentKernels && s.kmuCount > 0 {
		var ki *KernelInstance
		for p := len(s.kmuQueue) - 1; p >= 0; p-- {
			if ki = s.kmuQueue[p].pop(); ki != nil {
				break
			}
		}
		if ki == nil {
			panic("gpu: kmuCount out of sync with queues")
		}
		s.kmuCount--
		ki.usesKDU = true
		s.kduUsed++
		s.sched.Enqueue(ki)
	}
}

// tbDispatch runs the TB scheduler for this cycle's dispatch slots.
func (s *Simulator) tbDispatch() {
	for slot := 0; slot < s.cfg.TBDispatchPerCycle; slot++ {
		ki, smxID := s.sched.Select(s)
		if ki == nil {
			return
		}
		if ki.Exhausted() {
			panic(fmt.Sprintf("gpu: scheduler %s selected exhausted kernel %d", s.sched.Name(), ki.ID))
		}
		tb := ki.PeekTB()
		if !s.smxs[smxID].CanFit(tb) {
			panic(fmt.Sprintf("gpu: scheduler %s selected SMX %d without room", s.sched.Name(), smxID))
		}
		if s.trace != nil {
			s.trace(ki, ki.NextTB, smxID, s.now)
		}
		ki.NextTB++
		if !ki.dispatchedAny {
			ki.dispatchedAny = true
			ki.FirstDispatchCycle = s.now
		}
		s.smxs[smxID].AddBlock(tb, ki, s.now)
	}
}

func (s *Simulator) done() bool {
	return s.live == 0 && s.pendingArrivals() == 0 && s.kmuCount == 0
}

// Run executes the simulation to completion and returns the result. It
// returns an error if the cycle guard is hit (a scheduling deadlock or a
// runaway workload).
func (s *Simulator) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("gpu: Run called twice")
	}
	s.ran = true
	// Host kernels materialise as instances at cycle 0.
	for _, k := range s.hostPending {
		ki := &KernelInstance{ID: s.nextID, Prog: k, BoundSMX: -1}
		s.nextID++
		s.live++
		s.kernels = append(s.kernels, ki)
		s.arrivals = append(s.arrivals, ki)
	}
	if s.live == 0 {
		return nil, fmt.Errorf("gpu: nothing to run; call LaunchHost first")
	}

	for ; s.now < s.maxCycles; s.now++ {
		s.deliverArrivals()
		s.kmuDispatch()
		s.tbDispatch()
		for _, x := range s.smxs {
			x.Tick(s.now)
		}
		if s.sampleEvery > 0 && s.now > 0 && s.now%s.sampleEvery == 0 {
			s.takeSample()
		}
		if s.done() {
			s.now++
			return s.result(), nil
		}
	}
	return nil, fmt.Errorf("gpu: simulation exceeded %d cycles (%d kernels live, %d arrivals, %d at KMU)",
		s.maxCycles, s.live, s.pendingArrivals(), s.kmuCount)
}

// Kernels returns every kernel instance created during the run, in creation
// order, for post-run analysis.
func (s *Simulator) Kernels() []*KernelInstance { return s.kernels }
