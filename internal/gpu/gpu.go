// Package gpu is the top level of the simulator: the Kernel Management Unit
// (KMU), the 32-entry Kernel Distributor Unit (KDU), the device-side launch
// paths of both dynamic-parallelism models (CDP device kernels and DTBL
// thread-block groups), the per-cycle engine loop, and the dispatcher
// contract the TB schedulers in internal/core implement.
//
// Figure 1 of the paper is the blueprint: host kernels enter the KMU; the
// KMU fills the KDU subject to its entry limit; the SMX scheduler (a
// TBScheduler implementation) dispatches thread blocks from KDU kernels to
// the SMXs; each SMX can issue new launches back to the KMU (CDP) or
// coalesce TB groups straight onto the distributor (DTBL).
//
// The engine is hardened for long unattended runs: the device launch paths
// have finite capacities with warp-level backpressure (config
// KMUPendingCapacity / DTBLAggBufferEntries), a forward-progress watchdog
// turns scheduling deadlocks into a structured *DeadlockError instead of
// spinning to MaxCycles, and an optional invariant auditor (Options.Audit)
// validates resource accounting during the run. See errors.go for the
// error taxonomy.
package gpu

import (
	"context"
	"fmt"
	"time"

	"laperm/internal/config"
	"laperm/internal/faults"
	"laperm/internal/isa"
	"laperm/internal/mem"
	"laperm/internal/smx"
)

// KernelInstance is one running (or pending) grid: a host-launched kernel,
// a CDP device kernel, or a DTBL thread-block group.
type KernelInstance struct {
	// ID is unique per simulation, in creation order.
	ID int
	// Prog is the grid's program.
	Prog *isa.Kernel
	// Priority is the LaPerm priority: 0 for host kernels, parent+1
	// (clamped to the configured maximum level) for dynamic launches.
	Priority int
	// BoundSMX is the SMX that executed the direct parent thread block,
	// or -1 for host-launched kernels. The SMX-binding policies dispatch
	// the instance's TBs there.
	BoundSMX int
	// Parent is the launching kernel instance (nil for host kernels).
	Parent *KernelInstance

	// NextTB indexes the next thread block to dispatch; the instance is
	// exhausted when NextTB reaches len(Prog.TBs).
	NextTB int
	// DoneTBs counts completed thread blocks.
	DoneTBs int

	// LaunchCycle is when the launch instruction executed (0 for host).
	LaunchCycle uint64
	// ArriveCycle is when the instance became visible to the KMU (CDP)
	// or the TB scheduler (DTBL), i.e. LaunchCycle plus launch latency.
	ArriveCycle uint64
	// FirstDispatchCycle and CompleteCycle bracket execution (valid once
	// dispatched / completed).
	FirstDispatchCycle uint64
	CompleteCycle      uint64

	dispatchedAny bool
	usesKDU       bool
	// enqueued marks the instance as handed to the TB scheduler; together
	// with Exhausted it drives the engine's schedLive count.
	enqueued bool
	// viaKMU routes the arrival: true for host kernels, children of
	// KMU-path models (CDP), and direct-path children demoted to the KMU
	// by an OverflowToKMU launch path.
	viaKMU bool
	// poolKMU / poolAgg mark a held entry in the bounded KMU pending
	// pool / direct launch pool (the DTBL aggregation buffer or the PMK
	// task queue).
	poolKMU bool
	poolAgg bool
}

// Exhausted reports whether every thread block has been dispatched.
func (k *KernelInstance) Exhausted() bool { return k.NextTB >= len(k.Prog.TBs) }

// PeekTB returns the next thread block to dispatch. It panics if the
// instance is exhausted.
func (k *KernelInstance) PeekTB() *isa.TB { return k.Prog.TBs[k.NextTB] }

// Complete reports whether every thread block has finished execution.
func (k *KernelInstance) Complete() bool { return k.DoneTBs >= len(k.Prog.TBs) }

// Dispatcher is the engine view a TBScheduler uses to place thread blocks.
type Dispatcher interface {
	// NumSMX returns the SMX count.
	NumSMX() int
	// CanFit reports whether the thread block currently fits on the SMX.
	CanFit(smxID int, tb *isa.TB) bool
	// ResidentTBs returns the number of thread blocks currently resident
	// on the SMX (for contention-aware policies).
	ResidentTBs(smxID int) int
	// Cycle returns the current cycle.
	Cycle() uint64
}

// TBScheduler is the SMX scheduler of Figure 1: the policy that decides,
// each dispatch slot, which kernel's next thread block runs on which SMX.
// Implementations live in internal/core (RR, TB-Pri, SMX-Bind,
// Adaptive-Bind).
//
// Contract: Enqueue is called once per kernel instance when it becomes
// dispatchable. Select returns an instance with Exhausted() == false and an
// SMX for which CanFit(smx, instance.PeekTB()) is true, or (nil, 0) when
// nothing can dispatch this slot. The engine advances NextTB after a
// successful Select; schedulers drop exhausted instances lazily.
type TBScheduler interface {
	Name() string
	Enqueue(k *KernelInstance)
	Select(d Dispatcher) (*KernelInstance, int)
}

// QueueEventKind labels a backpressure episode on the device launch path.
type QueueEventKind int

const (
	// QueueStall: a warp's launch found its queue full and stalled (one
	// event per episode, not per retry cycle).
	QueueStall QueueEventKind = iota
	// QueueOverflow: a direct-path launch found its pool full and was
	// demoted to the KMU path (an OverflowToKMU launch path, e.g. DTBL
	// under DropToKMU).
	QueueOverflow
)

// QueueEvent describes one backpressure episode for Options.TraceQueue.
type QueueEvent struct {
	Kind  QueueEventKind
	Cycle uint64
	// SMX is the launching SMX; Parent the launching instance; Child the
	// grid whose launch stalled or overflowed.
	SMX    int
	Parent *KernelInstance
	Child  *isa.Kernel
	// Queue names the full queue: "kmu" for the KMU pending pool, or the
	// model's direct-pool name ("agg" for DTBL, "taskq" for PMK).
	Queue string
}

// Options configures a Simulator.
type Options struct {
	Config    *config.GPU
	Scheduler TBScheduler
	Model     Model
	// WarpPolicy defaults to GTO (Table I).
	WarpPolicy smx.Policy
	// MaxCycles bounds Run; 0 means the DefaultMaxCycles safety net.
	MaxCycles uint64
	// TraceDispatch, when non-nil, observes every thread-block dispatch:
	// the kernel instance, the TB index within it, the target SMX, and
	// the cycle. Tests and the footprint analyses use it.
	TraceDispatch func(ki *KernelInstance, tbIndex, smxID int, cycle uint64)
	// TraceQueue, when non-nil, observes launch-queue backpressure
	// episodes (stalls and overflows).
	TraceQueue func(ev QueueEvent)
	// TraceBlockDone, when non-nil, observes every thread-block
	// retirement: the kernel instance, the TB index within it, the SMX it
	// ran on, and the cycles bracketing its residency.
	TraceBlockDone func(ki *KernelInstance, tbIndex, smxID int, dispatchCycle, cycle uint64)
	// TraceSample, when non-nil, observes every timeline Sample as it is
	// taken (requires SampleEvery). Trace recorders use it to build
	// counter tracks.
	TraceSample func(s Sample)
	// SampleEvery, when non-zero, records a timeline Sample (windowed
	// IPC, cache hit rates, occupancy, queue depths, stall counters)
	// every that many cycles into Result.Timeline.
	SampleEvery uint64
	// Attribution enables reuse-tagged cache accounting: every L1/L2
	// line remembers the kernel instance that installed it and every hit
	// is classified self / parent-child / sibling / cross into
	// Result.L1Reuse and Result.L2Reuse. Off (the default), the tagged
	// paths are inert and cost nothing.
	Attribution bool
	// WatchdogInterval is how often the forward-progress watchdog
	// compares progress snapshots; 0 means DefaultWatchdogInterval. Set
	// NoWatchdog to disable it entirely.
	WatchdogInterval uint64
	NoWatchdog       bool
	// Audit enables the invariant auditor: resource accounting, queue
	// counters, and live-kernel bookkeeping are validated at every
	// sample and watchdog tick (and once at completion), and Run returns
	// an *InvariantError on the first violation.
	Audit bool
	// DenseClock disables event-horizon fast-forwarding and steps the
	// engine one cycle at a time, the original reference behaviour. The
	// two clockings are cycle-exact — Results, traces, and timelines are
	// byte-identical (see DESIGN.md §9) — so this exists as a
	// differential-testing oracle and debugging escape hatch, not a
	// fidelity knob.
	DenseClock bool
	// Faults, when non-nil, arms deterministic failure injection at the
	// engine's failpoint sites (faults.SiteGPURunPoll at the throttled
	// cancellation poll, faults.SiteGPUWatchdog at each watchdog check).
	// Nil — the default — keeps every site zero-cost.
	Faults *faults.Registry
	// TraceSpan, when non-nil, observes the run's coarse wall-clock phases
	// as closed (name, start, end) spans: "gpu.simulate" for the engine
	// loop and "gpu.result" for result assembly. Flight recorders use it
	// to break an "engine run" span into its internal phases; nil — the
	// default — costs nothing.
	TraceSpan func(name string, start, end time.Time)
}

// DefaultMaxCycles is the runaway-simulation guard used when Options leaves
// MaxCycles at zero.
const DefaultMaxCycles = 50_000_000

// DefaultWatchdogInterval is the forward-progress check period used when
// Options leaves WatchdogInterval at zero. It is comfortably above every
// architectural latency (the longest, the CDP launch latency, is thousands
// of cycles), so a progress-free window of this length is a genuine
// deadlock rather than a long-latency wait.
const DefaultWatchdogInterval = 50_000

// Simulator owns one end-to-end simulation.
type Simulator struct {
	cfg   *config.GPU
	model Model
	// path is the model's child-launch path, computed once from the
	// registry descriptor and cfg; Launch consults it instead of
	// branching on the model identity.
	path   LaunchPath
	sched  TBScheduler
	memsys *mem.System
	smxs   []*smx.SMX
	seq    uint64

	now uint64
	// arrivals holds launched instances waiting out their launch
	// latency. Launch latency is uniform per launch path, but DropToKMU
	// demotions pay the (longer) CDP latency, so ArriveCycle is kept
	// sorted by insertion point; arrHead walks the slice without
	// refiltering.
	arrivals []*KernelInstance
	arrHead  int
	// delivered counts arrivals handed to the KMU or scheduler, for the
	// watchdog's progress vector.
	delivered uint64
	// kmuQueue holds instances at the KMU waiting for a KDU entry, one
	// FIFO per priority level (highest level dispatches first), each
	// with a head cursor.
	kmuQueue  []kmuFIFO
	kmuCount  int
	kduUsed   int
	kduFilled uint64 // cumulative KMU->KDU moves (watchdog progress)
	live      int
	kernels   []*KernelInstance // every instance ever created
	nextID    int
	maxCycles  uint64
	trace      func(ki *KernelInstance, tbIndex, smxID int, cycle uint64)
	traceQ     func(ev QueueEvent)
	traceBlock func(ki *KernelInstance, tbIndex, smxID int, dispatchCycle, cycle uint64)
	traceSmp   func(s Sample)

	// Bounded launch-path state. kmuInFlight counts device launches
	// holding a KMU pending-pool entry (in arrivals or KMU queues);
	// aggUsed counts direct-path children holding a direct-pool entry —
	// a DTBL aggregation-buffer or PMK task-queue slot (launched, not
	// yet fully dispatched).
	kmuInFlight int
	aggUsed     int
	peakKMU     int
	peakAgg     int
	// Backpressure counters surfaced in Result.
	launchStallCycles   uint64
	launchStallEpisodes int64
	queueOverflows      int64
	tbsDispatched       uint64

	sampleEvery uint64
	samples     []Sample
	lastSample  sampleBase

	watchdogEvery uint64
	lastProgress  progressVec
	audit         bool

	// Event-horizon clock state (clock.go). ff enables fast-forwarding;
	// idleSched/idlePeriod cache the scheduler's IdleAware view (nil/0
	// when it opts out); nilStreak counts consecutive nil Selects since
	// the last dispatch-state change; pendingIdle counts elided Select
	// polls awaiting an O(1) replay.
	ff          bool
	idleSched   IdleAware
	idlePeriod  int
	nilStreak   int
	pendingIdle uint64
	// pendingEmpty counts elided Select polls from cycles on which the
	// scheduler held no unexhausted instance (schedLive == 0); they replay
	// through SkipEmptySelects instead of SkipIdleSelects. A quiesced
	// stretch accrues only one kind — schedLive can only change through an
	// enqueue or a real dispatch, both of which end the stretch first.
	pendingEmpty uint64
	// schedLive counts kernel instances handed to the TB scheduler and not
	// yet exhausted. At zero every Select is provably nil regardless of SMX
	// occupancy, so the scheduler is quiescent without waiting out a nil
	// streak — the common long-idle case where all blocks are dispatched
	// and executing.
	schedLive int
	started     time.Time

	// flts is the armed failpoint registry (nil = disarmed, zero-cost).
	flts *faults.Registry

	// traceSpan observes coarse wall-clock run phases (nil = off).
	traceSpan func(name string, start, end time.Time)

	// kiArena is the current KernelInstance allocation chunk. Launches
	// draw instance records from chunked slabs — one allocation per
	// kiChunkSize launches instead of one per launch — and the slabs are
	// never recycled: instances live to the end of the run (Kernels()
	// exposes them), so pointers into a chunk stay valid forever.
	kiArena []KernelInstance

	// phaseList is the engine's phase decomposition, built once in New;
	// RunContext iterates it every processed cycle.
	phaseList []Clocked

	hostPending []*isa.Kernel
	ran         bool
}

// kiChunkSize is the KernelInstance arena chunk length.
const kiChunkSize = 256

// newInstance carves one zeroed KernelInstance from the arena.
func (s *Simulator) newInstance() *KernelInstance {
	if len(s.kiArena) == cap(s.kiArena) {
		s.kiArena = make([]KernelInstance, 0, kiChunkSize)
	}
	s.kiArena = append(s.kiArena, KernelInstance{})
	return &s.kiArena[len(s.kiArena)-1]
}

// New builds a simulator. It returns an error on a missing or invalid
// configuration or a nil scheduler. MustNew panics instead, for tests and
// known-good configurations.
func New(opts Options) (*Simulator, error) {
	if opts.Config == nil {
		return nil, fmt.Errorf("gpu: Options.Config is required")
	}
	if err := opts.Config.Validate(); err != nil {
		return nil, fmt.Errorf("gpu: %w", err)
	}
	if opts.Scheduler == nil {
		return nil, fmt.Errorf("gpu: Options.Scheduler is required")
	}
	modelInfo, ok := opts.Model.Info()
	if !ok {
		return nil, fmt.Errorf("gpu: unknown launch model %d (registered: %v)", int(opts.Model), ModelNames())
	}
	maxCycles := opts.MaxCycles
	if maxCycles == 0 {
		maxCycles = DefaultMaxCycles
	}
	watchdog := opts.WatchdogInterval
	if watchdog == 0 {
		watchdog = DefaultWatchdogInterval
	}
	if opts.NoWatchdog {
		watchdog = 0
	}
	s := &Simulator{
		cfg:           opts.Config,
		model:         opts.Model,
		path:          modelInfo.Path(opts.Config),
		sched:         opts.Scheduler,
		memsys:        mem.NewSystem(opts.Config),
		maxCycles:     maxCycles,
		trace:         opts.TraceDispatch,
		traceQ:        opts.TraceQueue,
		traceBlock:    opts.TraceBlockDone,
		traceSmp:      opts.TraceSample,
		sampleEvery:   opts.SampleEvery,
		watchdogEvery: watchdog,
		audit:         opts.Audit,
		ff:            !opts.DenseClock,
		flts:          opts.Faults,
		traceSpan:     opts.TraceSpan,
	}
	if ia, ok := opts.Scheduler.(IdleAware); ok {
		if p := ia.IdleSelectPeriod(); p > 0 {
			s.idleSched, s.idlePeriod = ia, p
		}
	}
	if opts.Attribution {
		s.memsys.SetAttribution(true)
	}
	s.kmuQueue = make([]kmuFIFO, opts.Config.MaxPriorityLevels+1)
	s.smxs = make([]*smx.SMX, opts.Config.NumSMX)
	for i := range s.smxs {
		s.smxs[i] = smx.New(i, opts.Config, s.memsys, s, opts.WarpPolicy, &s.seq)
	}
	s.phaseList = s.phases()
	return s, nil
}

// MustNew builds a simulator, panicking on the errors New reports.
func MustNew(opts Options) *Simulator {
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// LaunchHost queues a host-side kernel launch, available to the KMU at
// cycle 0. It must be called before Run; host kernels do not consume
// device launch-pool entries.
func (s *Simulator) LaunchHost(k *isa.Kernel) error {
	if s.ran {
		return fmt.Errorf("gpu: LaunchHost after Run")
	}
	if err := k.Validate(); err != nil {
		return fmt.Errorf("gpu: invalid kernel: %w", err)
	}
	s.hostPending = append(s.hostPending, k)
	return nil
}

// NumSMX implements Dispatcher.
func (s *Simulator) NumSMX() int { return len(s.smxs) }

// CanFit implements Dispatcher.
func (s *Simulator) CanFit(smxID int, tb *isa.TB) bool { return s.smxs[smxID].CanFit(tb) }

// ResidentTBs implements Dispatcher.
func (s *Simulator) ResidentTBs(smxID int) int { return s.smxs[smxID].ResidentBlocks() }

// Cycle implements Dispatcher.
func (s *Simulator) Cycle() uint64 { return s.now }

// Launch implements smx.Events: a warp executed a device-side launch. The
// model's LaunchPath decides the route: direct paths (DTBL, PMK) hand the
// child straight to the TB scheduler after their launch latency; the KMU
// path (CDP) routes it through the KMU and KDU. It returns false — stalling
// the warp — when the path's bounded pool is full and does not overflow to
// the KMU; a direct launch that overflows with OverflowToKMU set is demoted
// to the KMU path instead, paying the CDP latency.
func (s *Simulator) Launch(smxID int, b *smx.Block, child *isa.Kernel, now uint64, retry bool) bool {
	parent := b.Owner.(*KernelInstance)
	direct := s.path.Direct
	demoted := false
	if direct && s.path.Capacity > 0 && s.aggUsed >= s.path.Capacity {
		if s.path.OverflowToKMU {
			direct, demoted = false, true
		} else {
			s.noteStall(smxID, parent, child, retry, s.path.Queue)
			return false
		}
	}
	if !direct && s.cfg.KMUPendingCapacity > 0 && s.kmuInFlight >= s.cfg.KMUPendingCapacity {
		s.noteStall(smxID, parent, child, retry, "kmu")
		return false
	}

	prio := parent.Priority + 1
	if prio > s.cfg.MaxPriorityLevels {
		prio = s.cfg.MaxPriorityLevels
	}
	latency := s.cfg.CDPLaunchLatency
	if direct {
		latency = s.path.Latency
	}
	ki := s.newInstance()
	ki.ID = s.nextID
	ki.Prog = child
	ki.Priority = prio
	ki.BoundSMX = smxID
	ki.Parent = parent
	ki.LaunchCycle = now
	ki.ArriveCycle = now + uint64(latency)
	ki.viaKMU = !direct
	if direct {
		ki.poolAgg = true
		s.aggUsed++
		if s.aggUsed > s.peakAgg {
			s.peakAgg = s.aggUsed
		}
	} else {
		ki.poolKMU = true
		s.kmuInFlight++
		if s.kmuInFlight > s.peakKMU {
			s.peakKMU = s.kmuInFlight
		}
	}
	if demoted {
		s.queueOverflows++
		if s.traceQ != nil {
			s.traceQ(QueueEvent{Kind: QueueOverflow, Cycle: now, SMX: smxID,
				Parent: parent, Child: child, Queue: s.path.Queue})
		}
	}
	s.nextID++
	s.live++
	s.kernels = append(s.kernels, ki)
	s.insertArrival(ki)
	return true
}

// noteStall accounts one stalled launch cycle, emitting a trace event at
// the start of each episode.
func (s *Simulator) noteStall(smxID int, parent *KernelInstance, child *isa.Kernel, retry bool, queue string) {
	s.launchStallCycles++
	if !retry {
		s.launchStallEpisodes++
		if s.traceQ != nil {
			s.traceQ(QueueEvent{Kind: QueueStall, Cycle: s.now, SMX: smxID,
				Parent: parent, Child: child, Queue: queue})
		}
	}
}

// insertArrival appends ki keeping arrivals sorted by ArriveCycle. With a
// single launch path the slice is naturally sorted; DropToKMU demotions mix
// the two latencies, so later entries may need to shift by a few slots.
func (s *Simulator) insertArrival(ki *KernelInstance) {
	s.arrivals = append(s.arrivals, ki)
	for i := len(s.arrivals) - 1; i > s.arrHead && s.arrivals[i-1].ArriveCycle > ki.ArriveCycle; i-- {
		s.arrivals[i] = s.arrivals[i-1]
		s.arrivals[i-1] = ki
	}
}

// BlockDone implements smx.Events: a thread block retired.
func (s *Simulator) BlockDone(smxID int, b *smx.Block, now uint64) {
	s.dirtySched() // freed SMX resources may unblock the TB scheduler
	ki := b.Owner.(*KernelInstance)
	ki.DoneTBs++
	if ki.Complete() {
		ki.CompleteCycle = now
		s.live--
		if ki.usesKDU {
			s.kduUsed--
		}
	}
	if s.traceBlock != nil {
		s.traceBlock(ki, b.TBIndex, smxID, b.DispatchCycle, now)
	}
}

// reuseTag is the attribution identity a kernel instance's blocks carry into
// the memory hierarchy.
func reuseTag(ki *KernelInstance) mem.Accessor {
	t := mem.Accessor{Inst: int32(ki.ID), Parent: -1}
	if ki.Parent != nil {
		t.Parent = int32(ki.Parent.ID)
	}
	return t
}

// compactThreshold is the head-cursor depth past which the amortised queues
// copy their live tail down, so backing arrays do not grow without bound
// under steady launch pressure that never fully drains them.
const compactThreshold = 64

// kmuFIFO is one priority level's KMU queue with an amortised head cursor.
type kmuFIFO struct {
	items []*KernelInstance
	head  int
}

func (q *kmuFIFO) push(ki *KernelInstance) { q.items = append(q.items, ki) }

func (q *kmuFIFO) pop() *KernelInstance {
	if q.head >= len(q.items) {
		return nil
	}
	ki := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= compactThreshold && q.head*2 >= len(q.items) {
		q.compact()
	}
	return ki
}

// compact shifts the live entries to the front of the backing array and
// nils the vacated tail so popped instances become collectable.
func (q *kmuFIFO) compact() {
	n := copy(q.items, q.items[q.head:])
	for i := n; i < len(q.items); i++ {
		q.items[i] = nil
	}
	q.items = q.items[:n]
	q.head = 0
}

func (q *kmuFIFO) len() int { return len(q.items) - q.head }

func (q *kmuFIFO) empty() bool { return q.head >= len(q.items) }

// deliverArrivals moves launches whose latency has elapsed to the KMU (CDP
// and host kernels, plus demoted direct-path children) or directly to the
// TB scheduler (DTBL TB groups and PMK task-queue entries, which are always
// visible to it).
func (s *Simulator) deliverArrivals() {
	for s.arrHead < len(s.arrivals) && s.arrivals[s.arrHead].ArriveCycle <= s.now {
		ki := s.arrivals[s.arrHead]
		s.arrivals[s.arrHead] = nil
		s.arrHead++
		s.delivered++
		if ki.viaKMU {
			p := ki.Priority
			if p >= len(s.kmuQueue) {
				p = len(s.kmuQueue) - 1
			}
			s.kmuQueue[p].push(ki)
			s.kmuCount++
		} else {
			s.enqueueSched(ki)
		}
	}
	if s.arrHead == len(s.arrivals) {
		s.arrivals = s.arrivals[:0]
		s.arrHead = 0
	} else if s.arrHead >= compactThreshold && s.arrHead*2 >= len(s.arrivals) {
		n := copy(s.arrivals, s.arrivals[s.arrHead:])
		for i := n; i < len(s.arrivals); i++ {
			s.arrivals[i] = nil
		}
		s.arrivals = s.arrivals[:n]
		s.arrHead = 0
	}
}

// pendingArrivals reports launches still waiting out their latency.
func (s *Simulator) pendingArrivals() int { return len(s.arrivals) - s.arrHead }

// kmuDispatch fills free KDU entries from the KMU queues, highest priority
// first (FCFS within a priority level), as the prioritized kernel launch
// extension of Section IV-A requires. For the baseline RR scheduler every
// kernel has the same effective behaviour as plain FCFS since host kernels
// and CDP children arrive in launch order within a level. Moving a device
// kernel into the KDU releases its KMU pending-pool entry.
func (s *Simulator) kmuDispatch() error {
	for s.kduUsed < s.cfg.MaxConcurrentKernels && s.kmuCount > 0 {
		var ki *KernelInstance
		for p := len(s.kmuQueue) - 1; p >= 0; p-- {
			if ki = s.kmuQueue[p].pop(); ki != nil {
				break
			}
		}
		if ki == nil {
			return s.invariant("kmu-count",
				fmt.Sprintf("kmuCount %d but every priority queue is empty", s.kmuCount))
		}
		s.kmuCount--
		if ki.poolKMU {
			ki.poolKMU = false
			s.kmuInFlight--
		}
		ki.usesKDU = true
		s.kduUsed++
		s.kduFilled++
		s.enqueueSched(ki)
	}
	return nil
}

// enqueueSched hands an instance to the TB scheduler, maintaining the
// schedLive count and waking the scheduler phase.
func (s *Simulator) enqueueSched(ki *KernelInstance) {
	s.sched.Enqueue(ki)
	ki.enqueued = true
	if !ki.Exhausted() {
		s.schedLive++
	}
	s.dirtySched()
}

// tbDispatch runs the TB scheduler for this cycle's dispatch slots. A
// direct-path child's pool entry (aggregation buffer / task queue) is
// released when its last thread block dispatches. A quiesced IdleAware scheduler is not polled: the elided nil
// Select is counted and replayed in bulk once the scheduler wakes, so the
// Select-call sequence it observes is identical to dense clocking.
func (s *Simulator) tbDispatch() error {
	if s.schedQuiesced() {
		if s.schedLive == 0 {
			s.pendingEmpty++
		} else {
			s.pendingIdle++
		}
		return nil
	}
	if s.pendingIdle > 0 {
		s.idleSched.SkipIdleSelects(s.pendingIdle)
		s.pendingIdle = 0
	}
	if s.pendingEmpty > 0 {
		s.idleSched.SkipEmptySelects(s.pendingEmpty)
		s.pendingEmpty = 0
	}
	for slot := 0; slot < s.cfg.TBDispatchPerCycle; slot++ {
		ki, smxID := s.sched.Select(s)
		if ki == nil {
			s.nilStreak++
			return nil
		}
		s.nilStreak = 0
		if ki.Exhausted() {
			return s.invariant("scheduler-contract",
				fmt.Sprintf("scheduler %s selected exhausted kernel %d", s.sched.Name(), ki.ID))
		}
		tb := ki.PeekTB()
		if !s.smxs[smxID].CanFit(tb) {
			return s.invariant("scheduler-contract",
				fmt.Sprintf("scheduler %s selected SMX %d without room for kernel %d", s.sched.Name(), smxID, ki.ID))
		}
		if s.trace != nil {
			s.trace(ki, ki.NextTB, smxID, s.now)
		}
		tbIndex := ki.NextTB
		ki.NextTB++
		s.tbsDispatched++
		if ki.Exhausted() {
			s.schedLive--
			if ki.poolAgg {
				ki.poolAgg = false
				s.aggUsed--
			}
		}
		if !ki.dispatchedAny {
			ki.dispatchedAny = true
			ki.FirstDispatchCycle = s.now
		}
		s.smxs[smxID].AddBlockAttr(tb, ki, tbIndex, reuseTag(ki), s.now)
	}
	return nil
}

func (s *Simulator) done() bool {
	return s.live == 0 && s.pendingArrivals() == 0 && s.kmuCount == 0
}

// Run executes the simulation to completion and returns the result. On
// failure it returns one of the structured errors documented in errors.go:
// *DeadlockError when the watchdog finds a progress-free window,
// *InvariantError when auditing detects corrupted state, and
// *CycleLimitError when the MaxCycles guard is hit.
//
// The loop is a phased engine (clock.go): every processed cycle ticks each
// phase once, in the order of the original dense loop. Under the default
// fast-forward clock the engine then merges the phases' NextEvent horizons
// and, when the minimum lies beyond the next cycle, credits the skipped span
// to each phase and jumps straight to it; with Options.DenseClock it steps
// one cycle at a time. Both clockings process the same cycles with the same
// state, so every observable is byte-identical.
func (s *Simulator) Run() (*Result, error) {
	return s.RunContext(context.Background())
}

// ctxCheckMask throttles RunContext's cancellation polls: the context is
// consulted once every ctxCheckMask+1 engine-loop iterations, so a canceled
// run stops within a few thousand processed cycles while an uncanceled run
// pays nothing measurable.
const ctxCheckMask = 1<<13 - 1

// RunContext is Run under a context: cancellation (or a deadline) observed
// mid-run stops the simulation and returns a *CanceledError wrapping
// context.Cause(ctx), alongside the error taxonomy Run documents. The engine
// polls the context every few thousand loop iterations, so cancellation
// latency is milliseconds, not cycles. A Result is never returned for a
// canceled run; build a fresh Simulator to retry.
func (s *Simulator) RunContext(ctx context.Context) (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("gpu: Run called twice")
	}
	s.ran = true
	s.started = time.Now()
	// Host kernels materialise as instances at cycle 0.
	for _, k := range s.hostPending {
		ki := s.newInstance()
		ki.ID, ki.Prog, ki.BoundSMX, ki.viaKMU = s.nextID, k, -1, true
		s.nextID++
		s.live++
		s.kernels = append(s.kernels, ki)
		s.arrivals = append(s.arrivals, ki)
	}
	if s.live == 0 {
		return nil, fmt.Errorf("gpu: nothing to run; call LaunchHost first")
	}
	s.lastProgress = s.progress()
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Cycle: s.now, Live: s.live, Cause: context.Cause(ctx)}
	}

	if s.traceSpan != nil {
		simStart := time.Now()
		defer func() { s.traceSpan("gpu.simulate", simStart, time.Now()) }()
	}
	phases := s.phaseList
	var iter uint64
	for s.now < s.maxCycles {
		if iter++; iter&ctxCheckMask == 0 {
			// The failpoint shares the poll cadence: error faults
			// surface as a transient engine failure, delay faults
			// widen the cancellation/watchdog race window.
			if err := s.flts.Hit(faults.SiteGPURunPoll); err != nil {
				return nil, err
			}
			if err := ctx.Err(); err != nil {
				return nil, &CanceledError{Cycle: s.now, Live: s.live, Cause: context.Cause(ctx)}
			}
		}
		for _, ph := range phases {
			if err := ph.Tick(s.now); err != nil {
				return nil, err
			}
		}
		if s.done() {
			s.now++
			if s.audit {
				if err := s.runAudit(); err != nil {
					return nil, err
				}
			}
			if s.traceSpan != nil {
				resStart := time.Now()
				res := s.result()
				s.traceSpan("gpu.result", resStart, time.Now())
				return res, nil
			}
			return s.result(), nil
		}
		next := s.now + 1
		if s.ff {
			horizon := uint64(NoEvent)
			for _, ph := range phases {
				if h := ph.NextEvent(next); h < horizon {
					horizon = h
				}
			}
			if horizon > s.maxCycles {
				// An all-inert machine that is not done (a deadlock
				// with the watchdog disabled) runs out the clock, as
				// the dense loop would.
				horizon = s.maxCycles
			}
			if horizon > next {
				span := horizon - next
				for _, ph := range phases {
					ph.Skip(span)
				}
				next = horizon
			}
		}
		s.now = next
	}
	return nil, &CycleLimitError{
		MaxCycles:       s.maxCycles,
		Live:            s.live,
		PendingArrivals: s.pendingArrivals(),
		KMUQueued:       s.kmuCount,
	}
}

// Kernels returns every kernel instance created during the run, in creation
// order, for post-run analysis.
func (s *Simulator) Kernels() []*KernelInstance { return s.kernels }
