package exp

// The pool-scaling regression test: the PR 2 worker pool once showed a flat
// 1→8 worker curve (BENCH_4.json: ~110 ms at every worker count) because
// per-cell program rebuilds and per-cycle allocation churn made the garbage
// collector the cross-worker serializer. With memoized programs and the
// zero-alloc core that bottleneck is gone; this test keeps it gone by
// asserting real wall-clock speedup at 8 workers — alongside the existing
// guarantee that parallel output is identical to serial, so the speedup is
// never bought with nondeterminism.

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// minScalingSpeedup is the wall-clock factor an 8-worker matrix sweep must
// achieve over the serial sweep on a machine with at least 8 schedulable
// CPUs. The matrix cells are near-uniform in cost, so an unserialised pool
// clears 3x comfortably; the GC-bound regression this guards against
// plateaued at ~1x.
const minScalingSpeedup = 3.0

func TestPoolScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scaling measurement skipped in -short mode")
	}
	if p := runtime.GOMAXPROCS(0); p < 8 {
		t.Skipf("GOMAXPROCS = %d < 8: 8-worker wall-clock speedup is not measurable on this machine", p)
	}

	o := fastOptions("bfs-citation", "join-uniform", "amr", "bht")
	o.Workers = 1
	// Warm every memoized program and input so neither timed sweep pays
	// one-time build costs.
	warm, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}

	// Best-of-3 timings tolerate scheduler noise without averaging it in.
	best := func(workers int) (time.Duration, *Matrix) {
		opt := o
		opt.Workers = workers
		var (
			bestD time.Duration
			m     *Matrix
		)
		for i := 0; i < 3; i++ {
			start := time.Now()
			got, err := RunMatrix(opt)
			if err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); m == nil || d < bestD {
				bestD, m = d, got
			}
		}
		return bestD, m
	}

	serialD, serialM := best(1)
	parallelD, parallelM := best(8)

	// The determinism contract first: byte-identical results and CSV at
	// any worker count. A speedup that breaks this is a bug, not a win.
	if !reflect.DeepEqual(warm, serialM) || !reflect.DeepEqual(serialM, parallelM) {
		t.Fatal("matrix results differ across runs/worker counts")
	}
	var serialCSV, parallelCSV bytes.Buffer
	if err := WriteMatrixCSV(serialM, &serialCSV); err != nil {
		t.Fatal(err)
	}
	if err := WriteMatrixCSV(parallelM, &parallelCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialCSV.Bytes(), parallelCSV.Bytes()) {
		t.Fatal("matrix CSV bytes differ between 1 and 8 workers")
	}

	speedup := float64(serialD) / float64(parallelD)
	t.Logf("serial %v, 8 workers %v: speedup %.2fx", serialD, parallelD, speedup)
	if speedup < minScalingSpeedup {
		t.Errorf("8-worker speedup %.2fx below the %.1fx floor (serial %v, parallel %v): the worker pool is serialized again",
			speedup, minScalingSpeedup, serialD, parallelD)
	}
}
