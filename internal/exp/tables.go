package exp

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// table renders aligned text tables for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table { return &table{header: header} }

func (t *table) row(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) write(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, c)
		}
		fmt.Fprintln(tw)
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i, h := range t.header {
		for range h {
			sep[i] += "-"
		}
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return tw.Flush()
}

func pct(x float64) string  { return fmt.Sprintf("%.1f%%", 100*x) }
func norm(x float64) string { return fmt.Sprintf("%.3f", x) }
