package exp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"laperm/internal/faults"
)

func TestPoolRunsEveryCellExactlyOnce(t *testing.T) {
	const n = 100
	var ran [n]atomic.Int32
	err := Pool{Workers: 8}.Run(n, func(i int) error {
		ran[i].Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ran {
		if got := ran[i].Load(); got != 1 {
			t.Errorf("cell %d ran %d times", i, got)
		}
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int32
	err := Pool{Workers: workers}.Run(50, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent cells, worker bound is %d", p, workers)
	}
}

func TestPoolDefaultWorkers(t *testing.T) {
	var ran atomic.Int32
	if err := (Pool{}).Run(10, func(int) error { ran.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 10 {
		t.Errorf("ran %d cells, want 10", ran.Load())
	}
	if err := (Pool{}).Run(0, func(int) error { t.Error("cell ran for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRecoversPanicsAsErrors(t *testing.T) {
	err := Pool{Workers: 4}.Run(10, func(i int) error {
		if i == 5 {
			panic("kaboom")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Cell != 5 || pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("PanicError = cell %d value %v stack %d bytes", pe.Cell, pe.Value, len(pe.Stack))
	}
}

func TestPoolReturnsLowestIndexError(t *testing.T) {
	// Cell 3 fails slowly, cell 7 fails instantly. A serial loop would
	// report cell 3; the pool must return the same error even though cell
	// 7's failure lands first.
	err := Pool{Workers: 8}.Run(20, func(i int) error {
		switch i {
		case 3:
			time.Sleep(30 * time.Millisecond)
			return fmt.Errorf("cell 3 failed")
		case 7:
			return fmt.Errorf("cell 7 failed")
		}
		return nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Errorf("err = %v, want the lowest-index failure (cell 3)", err)
	}
}

func TestPoolStopsClaimingAfterFailure(t *testing.T) {
	const n = 1000
	var ran atomic.Int32
	err := Pool{Workers: 2}.Run(n, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return fmt.Errorf("early failure")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := ran.Load(); got > n/2 {
		t.Errorf("%d of %d cells ran after an immediate failure; cancellation is not working", got, n)
	}
}

func TestPoolProgressMonotonicWithETA(t *testing.T) {
	const n = 25
	var mu sync.Mutex
	var dones []int
	var lastETA time.Duration
	p := Pool{Workers: 4, Progress: func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		if pr.Total != n {
			t.Errorf("total = %d, want %d", pr.Total, n)
		}
		if pr.ETA < 0 {
			t.Errorf("negative ETA %v", pr.ETA)
		}
		if pr.SimCycles != 0 || pr.CyclesPerSec != 0 {
			t.Errorf("meterless pool reported throughput %d cycles / %.0f c/s", pr.SimCycles, pr.CyclesPerSec)
		}
		dones = append(dones, pr.Done)
		lastETA = pr.ETA
	}}
	if err := p.Run(n, func(int) error { time.Sleep(time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("progress called %d times, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("progress done sequence %v not strictly increasing by 1", dones)
		}
	}
	if lastETA != 0 {
		t.Errorf("final ETA = %v, want 0", lastETA)
	}
}

// TestPoolProgressReportsMeteredThroughput pins the metered progress path:
// cells fold simulated cycles into the pool's Meter, and every observation
// reports a monotonically non-decreasing cycle total, with the final one
// seeing every cell's contribution.
func TestPoolProgressReportsMeteredThroughput(t *testing.T) {
	const n = 8
	const perCell = 1000
	m := NewMeter()
	var mu sync.Mutex
	var last Progress
	p := Pool{Workers: 2, Meter: m, Progress: func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		if pr.SimCycles < last.SimCycles {
			t.Errorf("SimCycles went backwards: %d after %d", pr.SimCycles, last.SimCycles)
		}
		last = pr
	}}
	if err := p.Run(n, func(i int) error { m.Add(perCell); return nil }); err != nil {
		t.Fatal(err)
	}
	if got := m.Cycles(); got != n*perCell {
		t.Errorf("Meter.Cycles() = %d, want %d", got, n*perCell)
	}
	if last.SimCycles != n*perCell {
		t.Errorf("final Progress.SimCycles = %d, want %d", last.SimCycles, n*perCell)
	}
	if last.Done != n {
		t.Errorf("final Progress.Done = %d, want %d", last.Done, n)
	}
}

func TestSweepReturnsResultsInIndexOrder(t *testing.T) {
	o := Options{Workers: 8}
	out, err := sweep(o, 64, func(i int) (int, error) {
		time.Sleep(time.Duration(64-i) % 5 * time.Millisecond) // scramble completion order
		return i * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
	if _, err := sweep(o, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, fmt.Errorf("boom")
		}
		return i, nil
	}); err == nil || err.Error() != "boom" {
		t.Errorf("sweep error = %v, want boom", err)
	}
}

// mustFaults parses a fault schedule for pool injection tests.
func mustFaults(t *testing.T, spec string) *faults.Registry {
	t.Helper()
	r, err := faults.Parse(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestPoolInjectedCellError: an error fault at the cell site surfaces as the
// cell's error with the pool's serial min-index semantics, and IsInjected
// marks it transient.
func TestPoolInjectedCellError(t *testing.T) {
	p := Pool{Workers: 1, Faults: mustFaults(t, "exp.cell.run=error:n=1")}
	var ran atomic.Int32
	err := p.Run(8, func(i int) error {
		ran.Add(1)
		return nil
	})
	if !faults.IsInjected(err) {
		t.Fatalf("Run = %v, want an injected error", err)
	}
	// One worker claims in index order: cell 0 absorbs the single fault,
	// and with the failure recorded no further cells start.
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d cells ran after the injected min-index failure, want 0", got)
	}
}

// TestPoolInjectedPanicRecovered: a panic fault is recovered by the cell's
// recovery scope into *PanicError whose value is the structured
// *faults.InjectedError.
func TestPoolInjectedPanicRecovered(t *testing.T) {
	p := Pool{Workers: 4, Faults: mustFaults(t, "exp.cell.run=panic:n=1")}
	err := p.Run(16, func(i int) error { return nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run = %T %v, want *PanicError", err, err)
	}
	if _, ok := pe.Value.(*faults.InjectedError); !ok {
		t.Fatalf("PanicError.Value = %T, want *faults.InjectedError", pe.Value)
	}
	if !faults.IsInjected(err) {
		// PanicError does not wrap its value; transient classification
		// for panics goes through the panic value, which callers (the
		// serve retry policy) inspect via the Value field.
		t.Log("PanicError does not unwrap to the injected error (by design)")
	}
}

// TestPoolExhaustedFaultsRunClean: once an n-limited schedule is spent, the
// same pool value runs every cell — the retry story a service depends on.
func TestPoolExhaustedFaultsRunClean(t *testing.T) {
	p := Pool{Workers: 4, Faults: mustFaults(t, "exp.cell.run=error:n=1")}
	if err := p.Run(4, func(i int) error { return nil }); !faults.IsInjected(err) {
		t.Fatalf("first sweep: %v, want injected error", err)
	}
	var ran atomic.Int32
	if err := p.Run(8, func(i int) error { ran.Add(1); return nil }); err != nil {
		t.Fatalf("second sweep after fault exhaustion: %v", err)
	}
	if ran.Load() != 8 {
		t.Fatalf("second sweep ran %d/8 cells", ran.Load())
	}
}
