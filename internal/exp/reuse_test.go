package exp

import (
	"bytes"
	"strings"
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/mem"
)

// reuseApps picks one workload per application, the granularity of the
// paper's Figure 3 comparison.
var reuseApps = []string{
	"amr", "bht", "bfs-citation", "clr-citation",
	"regx-darpa", "pre-movielens", "join-uniform", "sssp-citation",
}

// TestReuseLaPermBeatsRR is the PR's acceptance property: under DTBL at
// tiny scale on the default K20c configuration, the locality-binding
// scheduler must raise the parent-child share of classified L1 hits over
// the rr baseline on at least 6 of the 8 applications — the repo-native
// Figure 3/6 locality claim. (join can never show parent-child L1 hits:
// its parent-to-child data flows through stores, and the write-through
// no-allocate L1 never installs stored lines under the parent's identity.)
func TestReuseLaPermBeatsRR(t *testing.T) {
	o := Options{Scale: kernels.ScaleTiny, Workloads: reuseApps}
	m, err := RunReuse(o, gpu.DTBL)
	if err != nil {
		t.Fatalf("RunReuse: %v", err)
	}
	wins := 0
	for _, app := range reuseApps {
		baseR := m.Results[Cell{app, gpu.DTBL, "rr"}].L1Reuse
		gotR := m.Results[Cell{app, gpu.DTBL, "smx-bind"}].L1Reuse
		base := baseR.Share(mem.ReuseParentChild)
		got := gotR.Share(mem.ReuseParentChild)
		t.Logf("%s: rr %.4f (%v), smx-bind %.4f (%v)", app, base, baseR, got, gotR)
		if got > base {
			wins++
		}
	}
	if wins < 6 {
		t.Errorf("smx-bind beat rr's parent-child L1 share on %d/8 apps, want >= 6", wins)
	}
}

// TestReuseCSVAndReport checks both emitters produce complete, well-formed
// output for a small reuse matrix.
func TestReuseCSVAndReport(t *testing.T) {
	o := fastOptions("bfs-citation", "join-uniform")
	m, err := RunReuse(o, gpu.DTBL)
	if err != nil {
		t.Fatalf("RunReuse: %v", err)
	}
	var csvBuf bytes.Buffer
	if err := WriteReuseCSV(m, &csvBuf); err != nil {
		t.Fatalf("WriteReuseCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	// header + 2 workloads x schedulers x 2 cache levels
	if want := 1 + 2*len(SchedulerNames)*2; len(lines) != want {
		t.Errorf("reuse CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "workload,app,input,model,scheduler,level,") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	var rep bytes.Buffer
	if err := WriteReuseReport(m, &rep); err != nil {
		t.Fatalf("WriteReuseReport: %v", err)
	}
	for _, want := range []string{"Parent-child share", "bfs-citation", "adaptive-bind"} {
		if !strings.Contains(rep.String(), want) {
			t.Errorf("report missing %q:\n%s", want, rep.String())
		}
	}
}

// TestAttributionPreservesTiming verifies attribution is observationally
// free: the same cell with and without attribution must agree on every
// timing and cache statistic.
func TestAttributionPreservesTiming(t *testing.T) {
	o := fastOptions("bfs-citation")
	ws, err := o.workloads()
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunOne(ws[0], gpu.DTBL, "adaptive-bind", o)
	if err != nil {
		t.Fatal(err)
	}
	o.Attribution = true
	on, err := RunOne(ws[0], gpu.DTBL, "adaptive-bind", o)
	if err != nil {
		t.Fatal(err)
	}
	if off.Cycles != on.Cycles || off.ThreadInsts != on.ThreadInsts ||
		off.L1 != on.L1 || off.L2 != on.L2 ||
		off.DRAMTransactions != on.DRAMTransactions {
		t.Errorf("attribution changed the run: off %+v, on %+v", off, on)
	}
	if off.L1Reuse.Total() != 0 {
		t.Errorf("attribution off but L1Reuse populated: %v", off.L1Reuse)
	}
	if on.L1Reuse.Total() == 0 {
		t.Errorf("attribution on but no classified L1 hits")
	}
}
