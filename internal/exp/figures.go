package exp

import (
	"fmt"
	"io"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/metrics"
)

// runTable1 prints the architectural configuration (Table I).
func runTable1(o Options, w io.Writer) error {
	cfg := o.config()
	t := newTable("parameter", "value")
	t.row("Clock Freq. (SMX)", fmt.Sprintf("%d MHz", cfg.CoreClockMHz))
	t.row("Clock Freq. (Memory)", fmt.Sprintf("%d MHz", cfg.MemClockMHz))
	t.row("SMXs", fmt.Sprintf("%d", cfg.NumSMX))
	t.row("Threads per SMX", fmt.Sprintf("%d", cfg.ThreadsPerSMX))
	t.row("TBs per SMX", fmt.Sprintf("%d", cfg.TBsPerSMX))
	t.row("Registers per SMX", fmt.Sprintf("%d", cfg.RegistersPerSMX))
	t.row("Shared memory per SMX", fmt.Sprintf("%d KB", cfg.SharedMemPerSMX/1024))
	t.row("L1 cache", fmt.Sprintf("%d KB", cfg.L1Bytes/1024))
	t.row("L2 cache", fmt.Sprintf("%d KB", cfg.L2Bytes/1024))
	t.row("Cache line size", "128 bytes")
	t.row("Max concurrent kernels", fmt.Sprintf("%d", cfg.MaxConcurrentKernels))
	t.row("Warp scheduler", "Greedy-Then-Oldest")
	return t.write(w)
}

// runTable2 prints the benchmark inventory (Table II).
func runTable2(o Options, w io.Writer) error {
	t := newTable("application", "input data set", "workload")
	labels := map[string]string{
		"amr":  "Adaptive Mesh Refinement (AMR)",
		"bht":  "Barnes Hut Tree (BHT)",
		"bfs":  "Breadth-First Search (BFS)",
		"clr":  "Graph Coloring (CLR)",
		"regx": "Regular Expression Match (REGX)",
		"pre":  "Product Recommendation (PRE)",
		"join": "Relational Join (JOIN)",
		"sssp": "Single Source Shortest Path (SSSP)",
	}
	for _, wk := range kernels.All() {
		t.row(labels[wk.App], wk.Input, wk.Name)
	}
	return t.write(w)
}

// runFig2 prints the shared-footprint ratios of Figure 2. The per-workload
// footprint analyses are independent and fan out over the pool.
func runFig2(o Options, w io.Writer) error {
	ws, err := o.workloads()
	if err != nil {
		return err
	}
	stats, err := analyzeFootprints(o, ws)
	if err != nil {
		return err
	}
	t := newTable("workload", "parent-child", "child-sibling", "parent-parent")
	var pc, cs, pp []float64
	for i, wk := range ws {
		st := stats[i]
		t.row(wk.Name, pct(st.ParentChild), pct(st.ChildSibling), pct(st.ParentParent))
		pc = append(pc, st.ParentChild)
		cs = append(cs, st.ChildSibling)
		pp = append(pp, st.ParentParent)
	}
	t.row("average", pct(metrics.Mean(pc)), pct(metrics.Mean(cs)), pct(metrics.Mean(pp)))
	if err := t.write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\npaper: average parent-child 38.4%%, child-sibling 30.5%%, parent-parent 9.3%%\n")
	return nil
}

// analyzeFootprints runs the Figure 2 shared-footprint analysis for every
// workload on the pool, returning stats in workload order.
func analyzeFootprints(o Options, ws []kernels.Workload) ([]metrics.FootprintStats, error) {
	return sweep(o, len(ws), func(i int) (metrics.FootprintStats, error) {
		return metrics.AnalyzeFootprint(ws[i].Name, ws[i].Build(o.Scale)), nil
	})
}

// hitRateTable renders a Figure 7/8-style table: one row per workload, one
// column per (model, scheduler) pair.
func hitRateTable(m *Matrix, level string, pick func(*gpu.Result) float64, w io.Writer) error {
	header := []string{"workload"}
	for _, model := range Models {
		for _, sched := range SchedulerNames {
			header = append(header, fmt.Sprintf("%s/%s", model, sched))
		}
	}
	t := newTable(header...)
	sums := make([]float64, len(header)-1)
	for _, wk := range m.Workloads {
		row := []string{wk.Name}
		i := 0
		for _, model := range Models {
			for _, sched := range SchedulerNames {
				v := pick(m.Get(wk.Name, model, sched))
				row = append(row, pct(v))
				sums[i] += v
				i++
			}
		}
		t.row(row...)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, pct(s/float64(len(m.Workloads))))
	}
	t.row(avg...)
	fmt.Fprintf(w, "%s cache hit rate by model/scheduler\n", level)
	return t.write(w)
}

// runFig7 prints the L2 hit-rate matrix (Figure 7).
func runFig7(o Options, w io.Writer) error {
	m, err := RunMatrix(o)
	if err != nil {
		return err
	}
	return Fig7From(m, w)
}

// Fig7From renders Figure 7 from an existing matrix.
func Fig7From(m *Matrix, w io.Writer) error {
	return hitRateTable(m, "L2", func(r *gpu.Result) float64 { return r.L2.HitRate() }, w)
}

// runFig8 prints the L1 hit-rate matrix (Figure 8).
func runFig8(o Options, w io.Writer) error {
	m, err := RunMatrix(o)
	if err != nil {
		return err
	}
	return Fig8From(m, w)
}

// Fig8From renders Figure 8 from an existing matrix.
func Fig8From(m *Matrix, w io.Writer) error {
	return hitRateTable(m, "L1", func(r *gpu.Result) float64 { return r.L1.HitRate() }, w)
}

// runFig9a prints IPC normalised to CDP+RR (Figure 9(a)).
func runFig9a(o Options, w io.Writer) error {
	m, err := RunMatrix(Options{Scale: o.Scale, Workloads: o.Workloads, Config: o.Config})
	if err != nil {
		return err
	}
	return Fig9From(m, gpu.CDP, w)
}

// runFig9b prints IPC normalised to DTBL+RR (Figure 9(b)).
func runFig9b(o Options, w io.Writer) error {
	m, err := RunMatrix(o)
	if err != nil {
		return err
	}
	return Fig9From(m, gpu.DTBL, w)
}

// Fig9From renders a Figure 9 panel (normalised IPC under one model) from
// an existing matrix.
func Fig9From(m *Matrix, model gpu.Model, w io.Writer) error {
	header := []string{"workload"}
	header = append(header, SchedulerNames...)
	t := newTable(header...)
	speedups := make(map[string][]float64)
	for _, wk := range m.Workloads {
		base := m.Get(wk.Name, model, "rr").IPC
		row := []string{wk.Name}
		for _, sched := range SchedulerNames {
			v := m.Get(wk.Name, model, sched).IPC / base
			row = append(row, norm(v))
			speedups[sched] = append(speedups[sched], v)
		}
		t.row(row...)
	}
	avg := []string{"average"}
	for _, sched := range SchedulerNames {
		avg = append(avg, norm(metrics.Mean(speedups[sched])))
	}
	t.row(avg...)
	fmt.Fprintf(w, "IPC normalized to %s with RR scheduler\n", model)
	if err := t.write(w); err != nil {
		return err
	}
	if model == gpu.DTBL {
		fmt.Fprintf(w, "\npaper: LaPerm averages ~1.27x over the RR baseline\n")
	}
	return nil
}
