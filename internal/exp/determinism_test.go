package exp

import (
	"bytes"
	"reflect"
	"testing"
)

// TestMatrixDeterminismAcrossPool is the determinism contract of the
// parallel engine: the same options produce bit-identical gpu.Result values
// for every cell — all four schedulers under both CDP and DTBL — whether the
// matrix runs serially (twice, to catch run-to-run nondeterminism) or fanned
// out over eight pool workers.
func TestMatrixDeterminismAcrossPool(t *testing.T) {
	o := fastOptions("bfs-citation", "join-uniform")

	o.Workers = 1
	serialA, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	serialB, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	parallel, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}

	wantCells := 2 * len(Models) * len(SchedulerNames)
	if len(serialA.Results) != wantCells || len(parallel.Results) != wantCells {
		t.Fatalf("cells = %d serial / %d parallel, want %d", len(serialA.Results), len(parallel.Results), wantCells)
	}
	for cell, a := range serialA.Results {
		if b := serialB.Results[cell]; !reflect.DeepEqual(a, b) {
			t.Errorf("%s/%v/%s: serial rerun diverged:\n  a: %v\n  b: %v", cell.Workload, cell.Model, cell.Sched, a, b)
		}
		if p := parallel.Results[cell]; !reflect.DeepEqual(a, p) {
			t.Errorf("%s/%v/%s: parallel run diverged from serial:\n  serial:   %v\n  parallel: %v", cell.Workload, cell.Model, cell.Sched, a, p)
		}
	}
}

// TestMatrixDeterminismWithObservability re-runs the determinism contract
// with the full observability stack on — sampling and reuse attribution —
// so the timeline and reuse fields of gpu.Result are covered by the same
// bit-identical guarantee, and the sampled timelines serialise to identical
// CSV bytes.
func TestMatrixDeterminismWithObservability(t *testing.T) {
	o := fastOptions("bfs-citation", "join-uniform")
	o.Attribution = true
	o.SampleEvery = 128

	o.Workers = 1
	serial, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 8
	parallel, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	for cell, a := range serial.Results {
		p := parallel.Results[cell]
		if !reflect.DeepEqual(a, p) {
			t.Errorf("%s/%v/%s: diverged with sampling+attribution on", cell.Workload, cell.Model, cell.Sched)
			continue
		}
		if len(a.Timeline) == 0 {
			t.Errorf("%s/%v/%s: no timeline with SampleEvery set", cell.Workload, cell.Model, cell.Sched)
		}
		var ca, cp bytes.Buffer
		if err := WriteTimelineCSV(a, &ca); err != nil {
			t.Fatal(err)
		}
		if err := WriteTimelineCSV(p, &cp); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ca.Bytes(), cp.Bytes()) {
			t.Errorf("%s/%v/%s: timeline CSV differs across worker counts", cell.Workload, cell.Model, cell.Sched)
		}
	}
}

// TestRunAllByteIdenticalAcrossWorkers asserts the ordered-aggregation
// contract end to end: the full report (tables, figures, sensitivity
// studies) is byte-identical with 1 and 4 workers.
func TestRunAllByteIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll executes every experiment")
	}
	o := fastOptions("amr", "join-uniform")
	var serial, parallel bytes.Buffer
	o.Workers = 1
	if err := RunAll(o, &serial); err != nil {
		t.Fatal(err)
	}
	o.Workers = 4
	if err := RunAll(o, &parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial.Bytes(), parallel.Bytes()) {
		t.Errorf("RunAll output differs between 1 and 4 workers:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			serial.String(), parallel.String())
	}
}

// TestMatrixCSVByteIdenticalAcrossWorkers covers the CSV emission path.
func TestMatrixCSVByteIdenticalAcrossWorkers(t *testing.T) {
	o := fastOptions("bfs-citation")
	var bufs [2]bytes.Buffer
	for i, workers := range []int{1, 4} {
		o.Workers = workers
		m, err := RunMatrix(o)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteMatrixCSV(m, &bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("matrix CSV differs between 1 and 4 workers")
	}
}
