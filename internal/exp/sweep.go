package exp

import (
	"fmt"

	"laperm/internal/config"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/spec"
)

// NewScheduler builds the named TB scheduler for the given configuration. It
// delegates to spec.NewScheduler, the single scheduler factory the CLIs, the
// experiment runners, and the lapermd service all share.
func NewScheduler(name string, cfg *config.GPU) (gpu.TBScheduler, error) {
	return spec.NewScheduler(name, cfg)
}

// RunOne simulates one workload under one (model, scheduler) pair.
func RunOne(w kernels.Workload, model gpu.Model, sched string, o Options) (*gpu.Result, error) {
	res, _, err := RunCell(w, model, sched, o, nil)
	return res, err
}

// RunCell is RunOne exposing the engine: customize, when non-nil, edits the
// assembled gpu.Options before the simulator is built (trace hooks, sampling
// overrides), and the simulator is returned alongside the result so callers
// can read kernel-instance timestamps afterwards. On a Run error the
// simulator is still returned for post-mortem inspection (nil only when
// construction itself failed).
func RunCell(w kernels.Workload, model gpu.Model, sched string, o Options,
	customize func(*gpu.Options)) (*gpu.Result, *gpu.Simulator, error) {
	cfg := o.config()
	s, err := NewScheduler(sched, cfg)
	if err != nil {
		return nil, nil, err
	}
	gopts := gpu.Options{
		Config: cfg, Scheduler: s, Model: model, WarpPolicy: o.WarpPolicy,
		Attribution: o.Attribution, SampleEvery: o.SampleEvery,
		DenseClock: o.DenseClock,
	}
	if customize != nil {
		customize(&gopts)
	}
	sim, err := gpu.New(gopts)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	if err := sim.LaunchHost(w.Build(o.Scale)); err != nil {
		return nil, sim, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	res, err := sim.Run()
	if err != nil {
		return nil, sim, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	o.meterResult(res)
	return res, sim, nil
}

// meterResult folds a finished cell's simulated cycles into the Options'
// throughput meter (when one is set) and strips the Result's host-timing
// fields, which vary run to run and would otherwise break the sweep
// engine's bit-identical determinism contract.
func (o Options) meterResult(r *gpu.Result) {
	if r == nil {
		return
	}
	if o.Meter != nil {
		o.Meter.Add(r.Cycles)
	}
	r.WallTime, r.SimCyclesPerSec = 0, 0
}

// Cell identifies one run of the full evaluation matrix.
type Cell struct {
	Workload string
	Model    gpu.Model
	Sched    string
}

// Matrix holds the results of the full workload x model x scheduler sweep
// that figures 7, 8, and 9 all read from.
type Matrix struct {
	Workloads []kernels.Workload
	Results   map[Cell]*gpu.Result
}

// RunMatrix executes the full evaluation sweep for the given options,
// fanning the workload x model x scheduler cells out over the Options' pool
// (o.Workers goroutines). Each cell builds its own workload program,
// configuration copy, scheduler, and simulator, so the results — and any
// error — are identical to a serial sweep regardless of worker count.
func RunMatrix(o Options) (*Matrix, error) {
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	byName := make(map[string]kernels.Workload, len(ws))
	for _, w := range ws {
		byName[w.Name] = w
		for _, model := range Models {
			for _, sched := range SchedulerNames {
				cells = append(cells, Cell{w.Name, model, sched})
			}
		}
	}
	results, err := sweep(o, len(cells), func(i int) (*gpu.Result, error) {
		c := cells[i]
		return RunOne(byName[c.Workload], c.Model, c.Sched, o)
	})
	if err != nil {
		return nil, err
	}
	m := &Matrix{Workloads: ws, Results: make(map[Cell]*gpu.Result, len(cells))}
	for i, c := range cells {
		m.Results[c] = results[i]
	}
	return m, nil
}

// Get returns the result for one cell, panicking on a missing cell (a
// programming error in a figure runner).
func (m *Matrix) Get(workload string, model gpu.Model, sched string) *gpu.Result {
	r, err := m.lookup(workload, model, sched)
	if err != nil {
		panic(err.Error())
	}
	return r
}

// lookup returns the result for one cell, or an error on a missing cell,
// for emitters that must fail cleanly instead of panicking mid-file.
func (m *Matrix) lookup(workload string, model gpu.Model, sched string) (*gpu.Result, error) {
	r, ok := m.Results[Cell{workload, model, sched}]
	if !ok {
		return nil, fmt.Errorf("exp: matrix missing cell %s/%v/%s", workload, model, sched)
	}
	return r, nil
}
