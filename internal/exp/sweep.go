package exp

import (
	"fmt"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

// NewScheduler builds the named TB scheduler for the given configuration.
func NewScheduler(name string, cfg *config.GPU) (gpu.TBScheduler, error) {
	switch name {
	case "rr":
		return core.NewRoundRobin(), nil
	case "tb-pri":
		return core.NewTBPri(cfg.MaxPriorityLevels), nil
	case "smx-bind":
		return core.NewSMXBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels), nil
	case "adaptive-bind":
		return core.NewAdaptiveBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels), nil
	}
	return nil, fmt.Errorf("exp: unknown scheduler %q (known: %v)", name, SchedulerNames)
}

// RunOne simulates one workload under one (model, scheduler) pair.
func RunOne(w kernels.Workload, model gpu.Model, sched string, o Options) (*gpu.Result, error) {
	cfg := o.config()
	s, err := NewScheduler(sched, cfg)
	if err != nil {
		return nil, err
	}
	sim, err := gpu.New(gpu.Options{Config: cfg, Scheduler: s, Model: model, WarpPolicy: o.WarpPolicy})
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	if err := sim.LaunchHost(w.Build(o.Scale)); err != nil {
		return nil, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	res, err := sim.Run()
	if err != nil {
		return nil, fmt.Errorf("exp: %s/%v/%s: %w", w.Name, model, sched, err)
	}
	return res, nil
}

// Cell identifies one run of the full evaluation matrix.
type Cell struct {
	Workload string
	Model    gpu.Model
	Sched    string
}

// Matrix holds the results of the full workload x model x scheduler sweep
// that figures 7, 8, and 9 all read from.
type Matrix struct {
	Workloads []kernels.Workload
	Results   map[Cell]*gpu.Result
}

// RunMatrix executes the full evaluation sweep for the given options.
func RunMatrix(o Options) (*Matrix, error) {
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	m := &Matrix{Workloads: ws, Results: make(map[Cell]*gpu.Result)}
	for _, w := range ws {
		for _, model := range Models {
			for _, sched := range SchedulerNames {
				res, err := RunOne(w, model, sched, o)
				if err != nil {
					return nil, err
				}
				m.Results[Cell{w.Name, model, sched}] = res
			}
		}
	}
	return m, nil
}

// Get returns the result for one cell, panicking on a missing cell (a
// programming error in a figure runner).
func (m *Matrix) Get(workload string, model gpu.Model, sched string) *gpu.Result {
	r, ok := m.Results[Cell{workload, model, sched}]
	if !ok {
		panic(fmt.Sprintf("exp: matrix missing cell %s/%v/%s", workload, model, sched))
	}
	return r
}
