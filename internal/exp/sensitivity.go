package exp

import (
	"fmt"
	"io"

	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/metrics"
	"laperm/internal/smx"
)

// LatencySweepPoints are the child launch latencies (cycles) swept by the
// launch-latency sensitivity study of Section IV-D.
var LatencySweepPoints = []int{10, 100, 500, 1000, 2500, 5000, 10000, 20000}

// resolveWorkloads maps names to workloads, erroring on the first unknown
// name (in input order, matching the serial runners).
func resolveWorkloads(names []string) ([]kernels.Workload, error) {
	wks := make([]kernels.Workload, len(names))
	for i, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown workload %q", name)
		}
		wks[i] = wk
	}
	return wks, nil
}

// runLatency reproduces the Section IV-D analysis: LaPerm's benefit over RR
// as a function of child launch latency. The longer the launch path, the
// wider the parent-child time gap and the less temporal locality survives.
// Each (latency, workload) cell runs independently on the pool.
func runLatency(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "sssp-cage15", "join-uniform"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	type cell struct{ li, wi int }
	var cells []cell
	for li := range LatencySweepPoints {
		for wi := range wks {
			cells = append(cells, cell{li, wi})
		}
	}
	ratios, err := sweep(o, len(cells), func(i int) (float64, error) {
		c := cells[i]
		cfg := o.config()
		cfg.DTBLLaunchLatency = LatencySweepPoints[c.li]
		opt := Options{Scale: o.Scale, Config: cfg}
		base, err := RunOne(wks[c.wi], gpu.DTBL, "rr", opt)
		if err != nil {
			return 0, err
		}
		lap, err := RunOne(wks[c.wi], gpu.DTBL, "adaptive-bind", opt)
		if err != nil {
			return 0, err
		}
		return lap.IPC / base.IPC, nil
	})
	if err != nil {
		return err
	}
	t := newTable(append([]string{"latency (cycles)"}, names...)...)
	for li, lat := range LatencySweepPoints {
		row := []string{fmt.Sprintf("%d", lat)}
		for wi := range wks {
			row = append(row, norm(ratios[li*len(wks)+wi]))
		}
		t.row(row...)
	}
	fmt.Fprintln(w, "Adaptive-Bind IPC normalized to RR (DTBL) vs child launch latency")
	return t.write(w)
}

// runBalance contrasts SMX-Bind and Adaptive-Bind on workloads with
// imbalanced launch patterns, reporting SMX busy-cycle imbalance, stage-3
// steal share, and the resulting speedups (the Section IV-C trade-off).
func runBalance(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"amr", "join-gaussian", "regx-darpa", "bfs-graph5"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	scheds := []string{"rr", "smx-bind", "adaptive-bind"}
	results, err := sweep(o, len(wks)*len(scheds), func(i int) (*gpu.Result, error) {
		return RunOne(wks[i/len(scheds)], gpu.DTBL, scheds[i%len(scheds)], o)
	})
	if err != nil {
		return err
	}
	t := newTable("workload", "imbalance rr", "imbalance smx-bind", "imbalance adaptive", "ipc smx-bind/rr", "ipc adaptive/rr")
	for wi, name := range names {
		rr, sb, ab := results[wi*3], results[wi*3+1], results[wi*3+2]
		t.row(name,
			norm(rr.LoadImbalance), norm(sb.LoadImbalance), norm(ab.LoadImbalance),
			norm(sb.IPC/rr.IPC), norm(ab.IPC/rr.IPC))
	}
	fmt.Fprintln(w, "SMX busy-cycle imbalance (coefficient of variation) and IPC vs RR (DTBL)")
	return t.write(w)
}

// runLevels sweeps the maximum priority level L on a deeply nested synthetic
// workload: with L=1 all nesting levels collapse into one queue; larger L
// lets deeper descendants pre-empt earlier generations.
func runLevels(o Options, w io.Writer) error {
	levels := []int{1, 2, 4, 8}
	scheds := []string{"rr", "tb-pri", "adaptive-bind"}
	results, err := sweep(o, len(levels)*len(scheds), func(i int) (*gpu.Result, error) {
		cfg := o.config()
		cfg.MaxPriorityLevels = levels[i/len(scheds)]
		opt := Options{Scale: o.Scale, Config: cfg}
		return RunOne(NestedWorkload(), gpu.DTBL, scheds[i%len(scheds)], opt)
	})
	if err != nil {
		return err
	}
	t := newTable("max level L", "ipc tb-pri/rr", "ipc adaptive/rr", "avg child wait (adaptive)")
	for li, l := range levels {
		rr, tp, ab := results[li*3], results[li*3+1], results[li*3+2]
		t.row(fmt.Sprintf("%d", l), norm(tp.IPC/rr.IPC), norm(ab.IPC/rr.IPC),
			fmt.Sprintf("%.0f", ab.AvgChildWait))
	}
	fmt.Fprintln(w, "priority-level ablation on a 4-deep nested workload (DTBL)")
	return t.write(w)
}

// runClusters is the SMX-cluster ablation (Section IV-B's clustered-L1
// discussion): the same workloads on a 12-SMX machine whose L1 is private,
// shared by pairs, or shared by quads of SMXs, comparing Adaptive-Bind's
// gain over RR and the L1 hit rates.
func runClusters(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "bht", "amr"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	sizes := []int{1, 2, 4}
	scheds := []string{"rr", "adaptive-bind"}
	results, err := sweep(o, len(wks)*len(sizes)*len(scheds), func(i int) (*gpu.Result, error) {
		cfg := o.config()
		cfg.NumSMX = 12 // divisible by every swept cluster size
		cfg.SMXsPerCluster = sizes[(i / len(scheds)) % len(sizes)]
		opt := Options{Scale: o.Scale, Config: cfg}
		return RunOne(wks[i/(len(sizes)*len(scheds))], gpu.DTBL, scheds[i%len(scheds)], opt)
	})
	if err != nil {
		return err
	}
	t := newTable("workload", "cluster size", "ipc adaptive/rr", "l1 rr", "l1 adaptive")
	for wi, name := range names {
		for si, size := range sizes {
			rr := results[(wi*len(sizes)+si)*2]
			ab := results[(wi*len(sizes)+si)*2+1]
			t.row(name, fmt.Sprintf("%d", size), norm(ab.IPC/rr.IPC),
				pct(rr.L1.HitRate()), pct(ab.L1.HitRate()))
		}
	}
	fmt.Fprintln(w, "Adaptive-Bind with cluster-shared L1s (12 SMXs, DTBL)")
	return t.write(w)
}

// runWarp checks the Section IV-F claim that LaPerm is orthogonal to the
// warp scheduling discipline: Adaptive-Bind's gain over RR under
// Greedy-Then-Oldest and under loose round-robin warp scheduling.
func runWarp(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "join-gaussian", "bht"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	policies := []smx.Policy{smx.GTO, smx.LRR, smx.TwoLevel}
	ratios, err := sweep(o, len(wks)*len(policies), func(i int) (float64, error) {
		opt := Options{Scale: o.Scale, Config: o.Config, WarpPolicy: policies[i%len(policies)]}
		rr, err := RunOne(wks[i/len(policies)], gpu.DTBL, "rr", opt)
		if err != nil {
			return 0, err
		}
		ab, err := RunOne(wks[i/len(policies)], gpu.DTBL, "adaptive-bind", opt)
		if err != nil {
			return 0, err
		}
		return ab.IPC / rr.IPC, nil
	})
	if err != nil {
		return err
	}
	t := newTable("workload", "ipc adaptive/rr (gto)", "ipc adaptive/rr (lrr)", "ipc adaptive/rr (two-level)")
	for wi, name := range names {
		row := []string{name}
		for pi := range policies {
			row = append(row, norm(ratios[wi*len(policies)+pi]))
		}
		t.row(row...)
	}
	fmt.Fprintln(w, "LaPerm speedup under different warp schedulers (DTBL)")
	return t.write(w)
}

// runThrottle sweeps the contention-aware residency cap of Section IV-F on
// Adaptive-Bind: fewer resident TBs per SMX leave more L1 per block (better
// parent-child reuse) at a parallelism cost.
func runThrottle(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "bht"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	caps := []int{16, 12, 8, 4}
	results, err := sweep(o, len(wks)*len(caps), func(i int) (*gpu.Result, error) {
		cfg := o.config()
		inner, err := NewScheduler("adaptive-bind", cfg)
		if err != nil {
			return nil, err
		}
		sched := core.NewThrottled(inner, caps[i%len(caps)])
		sim, err := gpu.New(gpu.Options{Config: cfg, Scheduler: sched, Model: gpu.DTBL, DenseClock: o.DenseClock})
		if err != nil {
			return nil, err
		}
		if err := sim.LaunchHost(wks[i/len(caps)].Build(o.Scale)); err != nil {
			return nil, err
		}
		res, err := sim.Run()
		o.meterResult(res)
		return res, err
	})
	if err != nil {
		return err
	}
	t := newTable("workload", "cap", "ipc vs uncapped", "l1 hit")
	for wi, name := range names {
		base := results[wi*len(caps)].IPC // cap 16 is the uncapped baseline
		for ci, c := range caps {
			res := results[wi*len(caps)+ci]
			t.row(name, fmt.Sprintf("%d", c), norm(res.IPC/base), pct(res.L1.HitRate()))
		}
	}
	fmt.Fprintln(w, "Adaptive-Bind with contention-aware TB residency caps (DTBL)")
	return t.write(w)
}

// runBackup is the sticky-backup ablation: Figure 6 records one backup bank
// per SMX and drains it; the ablation re-scans every slot. The paper argues
// stickiness preserves stolen-sibling locality.
func runBackup(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "join-gaussian", "amr"}
	}
	wks, err := resolveWorkloads(names)
	if err != nil {
		return err
	}
	// Variants per workload: the RR baseline, sticky backup, free backup.
	type variantResult struct {
		res    *gpu.Result
		steals int64
	}
	results, err := sweep(o, len(wks)*3, func(i int) (variantResult, error) {
		wk, variant := wks[i/3], i%3
		if variant == 0 {
			res, err := RunOne(wk, gpu.DTBL, "rr", o)
			return variantResult{res: res}, err
		}
		cfg := o.config()
		ab := core.NewAdaptiveBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels)
		ab.FreeBackup = variant == 2
		sim, err := gpu.New(gpu.Options{Config: cfg, Scheduler: ab, Model: gpu.DTBL, DenseClock: o.DenseClock})
		if err != nil {
			return variantResult{}, err
		}
		if err := sim.LaunchHost(wk.Build(o.Scale)); err != nil {
			return variantResult{}, err
		}
		res, err := sim.Run()
		o.meterResult(res)
		return variantResult{res: res, steals: ab.Steals}, err
	})
	if err != nil {
		return err
	}
	t := newTable("workload", "ipc sticky/rr", "ipc free/rr", "steals sticky", "steals free")
	for wi, name := range names {
		rr, sticky, free := results[wi*3], results[wi*3+1], results[wi*3+2]
		t.row(name, norm(sticky.res.IPC/rr.res.IPC), norm(free.res.IPC/rr.res.IPC),
			fmt.Sprintf("%d", sticky.steals), fmt.Sprintf("%d", free.steals))
	}
	fmt.Fprintln(w, "Adaptive-Bind stage-3 backup policy ablation (DTBL)")
	return t.write(w)
}

var _ = metrics.Mean // metrics is used by figures.go in this package
