package exp

import (
	"fmt"
	"io"

	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/metrics"
	"laperm/internal/smx"
)

// LatencySweepPoints are the child launch latencies (cycles) swept by the
// launch-latency sensitivity study of Section IV-D.
var LatencySweepPoints = []int{10, 100, 500, 1000, 2500, 5000, 10000, 20000}

// runLatency reproduces the Section IV-D analysis: LaPerm's benefit over RR
// as a function of child launch latency. The longer the launch path, the
// wider the parent-child time gap and the less temporal locality survives.
func runLatency(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "sssp-cage15", "join-uniform"}
	}
	t := newTable(append([]string{"latency (cycles)"}, names...)...)
	for _, lat := range LatencySweepPoints {
		row := []string{fmt.Sprintf("%d", lat)}
		for _, name := range names {
			wk, ok := kernels.ByName(name)
			if !ok {
				return fmt.Errorf("exp: unknown workload %q", name)
			}
			cfg := o.config()
			cfg.DTBLLaunchLatency = lat
			opt := Options{Scale: o.Scale, Config: cfg}
			base, err := RunOne(wk, gpu.DTBL, "rr", opt)
			if err != nil {
				return err
			}
			lap, err := RunOne(wk, gpu.DTBL, "adaptive-bind", opt)
			if err != nil {
				return err
			}
			row = append(row, norm(lap.IPC/base.IPC))
		}
		t.row(row...)
	}
	fmt.Fprintln(w, "Adaptive-Bind IPC normalized to RR (DTBL) vs child launch latency")
	return t.write(w)
}

// runBalance contrasts SMX-Bind and Adaptive-Bind on workloads with
// imbalanced launch patterns, reporting SMX busy-cycle imbalance, stage-3
// steal share, and the resulting speedups (the Section IV-C trade-off).
func runBalance(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"amr", "join-gaussian", "regx-darpa", "bfs-graph5"}
	}
	t := newTable("workload", "imbalance rr", "imbalance smx-bind", "imbalance adaptive", "ipc smx-bind/rr", "ipc adaptive/rr")
	for _, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return fmt.Errorf("exp: unknown workload %q", name)
		}
		rr, err := RunOne(wk, gpu.DTBL, "rr", o)
		if err != nil {
			return err
		}
		sb, err := RunOne(wk, gpu.DTBL, "smx-bind", o)
		if err != nil {
			return err
		}
		ab, err := RunOne(wk, gpu.DTBL, "adaptive-bind", o)
		if err != nil {
			return err
		}
		t.row(name,
			norm(rr.LoadImbalance), norm(sb.LoadImbalance), norm(ab.LoadImbalance),
			norm(sb.IPC/rr.IPC), norm(ab.IPC/rr.IPC))
	}
	fmt.Fprintln(w, "SMX busy-cycle imbalance (coefficient of variation) and IPC vs RR (DTBL)")
	return t.write(w)
}

// runLevels sweeps the maximum priority level L on a deeply nested synthetic
// workload: with L=1 all nesting levels collapse into one queue; larger L
// lets deeper descendants pre-empt earlier generations.
func runLevels(o Options, w io.Writer) error {
	t := newTable("max level L", "ipc tb-pri/rr", "ipc adaptive/rr", "avg child wait (adaptive)")
	for _, levels := range []int{1, 2, 4, 8} {
		cfg := o.config()
		cfg.MaxPriorityLevels = levels
		opt := Options{Scale: o.Scale, Config: cfg}
		wk := NestedWorkload()
		rr, err := RunOne(wk, gpu.DTBL, "rr", opt)
		if err != nil {
			return err
		}
		tp, err := RunOne(wk, gpu.DTBL, "tb-pri", opt)
		if err != nil {
			return err
		}
		ab, err := RunOne(wk, gpu.DTBL, "adaptive-bind", opt)
		if err != nil {
			return err
		}
		t.row(fmt.Sprintf("%d", levels), norm(tp.IPC/rr.IPC), norm(ab.IPC/rr.IPC),
			fmt.Sprintf("%.0f", ab.AvgChildWait))
	}
	fmt.Fprintln(w, "priority-level ablation on a 4-deep nested workload (DTBL)")
	return t.write(w)
}

// runClusters is the SMX-cluster ablation (Section IV-B's clustered-L1
// discussion): the same workloads on a 12-SMX machine whose L1 is private,
// shared by pairs, or shared by quads of SMXs, comparing Adaptive-Bind's
// gain over RR and the L1 hit rates.
func runClusters(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "bht", "amr"}
	}
	t := newTable("workload", "cluster size", "ipc adaptive/rr", "l1 rr", "l1 adaptive")
	for _, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return fmt.Errorf("exp: unknown workload %q", name)
		}
		for _, size := range []int{1, 2, 4} {
			cfg := o.config()
			cfg.NumSMX = 12 // divisible by every swept cluster size
			cfg.SMXsPerCluster = size
			opt := Options{Scale: o.Scale, Config: cfg}
			rr, err := RunOne(wk, gpu.DTBL, "rr", opt)
			if err != nil {
				return err
			}
			ab, err := RunOne(wk, gpu.DTBL, "adaptive-bind", opt)
			if err != nil {
				return err
			}
			t.row(name, fmt.Sprintf("%d", size), norm(ab.IPC/rr.IPC),
				pct(rr.L1.HitRate()), pct(ab.L1.HitRate()))
		}
	}
	fmt.Fprintln(w, "Adaptive-Bind with cluster-shared L1s (12 SMXs, DTBL)")
	return t.write(w)
}

// runWarp checks the Section IV-F claim that LaPerm is orthogonal to the
// warp scheduling discipline: Adaptive-Bind's gain over RR under
// Greedy-Then-Oldest and under loose round-robin warp scheduling.
func runWarp(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "join-gaussian", "bht"}
	}
	t := newTable("workload", "ipc adaptive/rr (gto)", "ipc adaptive/rr (lrr)", "ipc adaptive/rr (two-level)")
	for _, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return fmt.Errorf("exp: unknown workload %q", name)
		}
		row := []string{name}
		for _, policy := range []smx.Policy{smx.GTO, smx.LRR, smx.TwoLevel} {
			opt := Options{Scale: o.Scale, Config: o.Config, WarpPolicy: policy}
			rr, err := RunOne(wk, gpu.DTBL, "rr", opt)
			if err != nil {
				return err
			}
			ab, err := RunOne(wk, gpu.DTBL, "adaptive-bind", opt)
			if err != nil {
				return err
			}
			row = append(row, norm(ab.IPC/rr.IPC))
		}
		t.row(row...)
	}
	fmt.Fprintln(w, "LaPerm speedup under different warp schedulers (DTBL)")
	return t.write(w)
}

// runThrottle sweeps the contention-aware residency cap of Section IV-F on
// Adaptive-Bind: fewer resident TBs per SMX leave more L1 per block (better
// parent-child reuse) at a parallelism cost.
func runThrottle(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "bht"}
	}
	t := newTable("workload", "cap", "ipc vs uncapped", "l1 hit")
	for _, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return fmt.Errorf("exp: unknown workload %q", name)
		}
		var base float64
		for _, cap := range []int{16, 12, 8, 4} {
			cfg := o.config()
			inner, err := NewScheduler("adaptive-bind", cfg)
			if err != nil {
				return err
			}
			sched := core.NewThrottled(inner, cap)
			sim, err := gpu.New(gpu.Options{Config: cfg, Scheduler: sched, Model: gpu.DTBL})
			if err != nil {
				return err
			}
			if err := sim.LaunchHost(wk.Build(o.Scale)); err != nil {
				return err
			}
			res, err := sim.Run()
			if err != nil {
				return err
			}
			if cap == 16 {
				base = res.IPC
			}
			t.row(name, fmt.Sprintf("%d", cap), norm(res.IPC/base), pct(res.L1.HitRate()))
		}
	}
	fmt.Fprintln(w, "Adaptive-Bind with contention-aware TB residency caps (DTBL)")
	return t.write(w)
}

// runBackup is the sticky-backup ablation: Figure 6 records one backup bank
// per SMX and drains it; the ablation re-scans every slot. The paper argues
// stickiness preserves stolen-sibling locality.
func runBackup(o Options, w io.Writer) error {
	names := o.Workloads
	if len(names) == 0 {
		names = []string{"bfs-citation", "join-gaussian", "amr"}
	}
	t := newTable("workload", "ipc sticky/rr", "ipc free/rr", "steals sticky", "steals free")
	for _, name := range names {
		wk, ok := kernels.ByName(name)
		if !ok {
			return fmt.Errorf("exp: unknown workload %q", name)
		}
		rr, err := RunOne(wk, gpu.DTBL, "rr", o)
		if err != nil {
			return err
		}
		run := func(free bool) (*gpu.Result, int64, error) {
			cfg := o.config()
			ab := core.NewAdaptiveBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels)
			ab.FreeBackup = free
			sim, err := gpu.New(gpu.Options{Config: cfg, Scheduler: ab, Model: gpu.DTBL})
			if err != nil {
				return nil, 0, err
			}
			if err := sim.LaunchHost(wk.Build(o.Scale)); err != nil {
				return nil, 0, err
			}
			res, err := sim.Run()
			return res, ab.Steals, err
		}
		sticky, sSteals, err := run(false)
		if err != nil {
			return err
		}
		free, fSteals, err := run(true)
		if err != nil {
			return err
		}
		t.row(name, norm(sticky.IPC/rr.IPC), norm(free.IPC/rr.IPC),
			fmt.Sprintf("%d", sSteals), fmt.Sprintf("%d", fSteals))
	}
	fmt.Fprintln(w, "Adaptive-Bind stage-3 backup policy ablation (DTBL)")
	return t.write(w)
}

var _ = metrics.Mean // metrics is used by figures.go in this package
