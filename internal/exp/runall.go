package exp

import (
	"fmt"
	"io"

	"laperm/internal/gpu"
)

// RunAll executes every experiment, sharing a single workload x model x
// scheduler sweep across Figures 7, 8, 9(a) and 9(b) instead of re-running
// the matrix per figure. Simulation cells fan out over o.Workers pool
// goroutines; the report text is identical for every worker count. Output
// is buffered and written to w only when every experiment succeeds, so an
// error mid-matrix never emits a truncated report.
func RunAll(o Options, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error { return runAll(o, w) })
}

func runAll(o Options, w io.Writer) error {
	section := func(e Experiment) {
		fmt.Fprintf(w, "=== %s: %s", e.ID, e.Title)
		if e.Inferred {
			fmt.Fprint(w, " [inferred from the paper's text]")
		}
		fmt.Fprintln(w, " ===")
	}
	byID := make(map[string]Experiment)
	for _, e := range All() {
		byID[e.ID] = e
	}

	// Cheap, matrix-free experiments first.
	for _, id := range []string{"table1", "table2", "fig2"} {
		e := byID[id]
		section(e)
		if err := e.Run(o, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}

	// One shared sweep for the hit-rate and IPC figures.
	m, err := RunMatrix(o)
	if err != nil {
		return err
	}
	section(byID["fig7"])
	if err := Fig7From(m, w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	section(byID["fig8"])
	if err := Fig8From(m, w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	section(byID["fig9a"])
	if err := Fig9From(m, gpu.CDP, w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	section(byID["fig9b"])
	if err := Fig9From(m, gpu.DTBL, w); err != nil {
		return err
	}
	fmt.Fprintln(w)

	// Sensitivity studies and ablations.
	for _, id := range []string{"latency", "balance", "levels", "clusters", "warp", "throttle", "backup"} {
		e := byID[id]
		section(e)
		if err := e.Run(o, w); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
