package exp

import (
	"errors"
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

// clockBenchWorkloads is the bfs/amr/join trio the clock benchmarks sweep:
// the same diverse subset the golden matrix pins, on the full K20c machine
// at small scale so the launch latencies — and therefore the idle spans the
// fast-forward clock elides — are the real Table I values. CDP's 5000-cycle
// launch latency creates the longest spans, which is where the event-horizon
// clock pays off most.
var clockBenchWorkloads = []string{"bfs-citation", "amr", "join-uniform"}

// benchClock sweeps the clock-benchmark workloads under every scheduler for
// one (model, clocking) pair. The FastForward/Dense benchmark pairs below
// are the perf trajectory CI records into BENCH_<run>.json: the ns_per_op
// ratio of a pair is the end-to-end speedup of event-horizon clocking.
func benchClock(b *testing.B, model gpu.Model, dense bool) {
	b.Helper()
	o := Options{Scale: kernels.ScaleSmall, DenseClock: dense}
	ws := make([]kernels.Workload, len(clockBenchWorkloads))
	for i, name := range clockBenchWorkloads {
		w, ok := kernels.ByName(name)
		if !ok {
			b.Fatalf("%s missing", name)
		}
		ws[i] = w
		w.Build(o.Scale) // warm the memoized graph inputs
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			for _, sched := range SchedulerNames {
				if _, err := RunOne(w, model, sched, o); err != nil {
					// Some bfs cells genuinely deadlock under CDP's launch
					// latencies with the non-priority schedulers; the
					// watchdog fires on the same cycle under both clocks,
					// so the pair still benchmarks identical work.
					var dl *gpu.DeadlockError
					if !errors.As(err, &dl) {
						b.Fatal(err)
					}
				}
			}
		}
	}
}

func BenchmarkClockFastForwardCDP(b *testing.B)  { benchClock(b, gpu.CDP, false) }
func BenchmarkClockDenseCDP(b *testing.B)        { benchClock(b, gpu.CDP, true) }
func BenchmarkClockFastForwardDTBL(b *testing.B) { benchClock(b, gpu.DTBL, false) }
func BenchmarkClockDenseDTBL(b *testing.B)       { benchClock(b, gpu.DTBL, true) }
