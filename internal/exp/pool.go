package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"laperm/internal/faults"
	"laperm/internal/telemetry"
)

// Progress is one sweep-progress observation delivered to a ProgressFunc.
type Progress struct {
	// Done counts completed cells and Total the sweep size.
	Done, Total int
	// Elapsed is the time since the sweep started; ETA the estimated
	// time remaining (zero once the last cell finishes).
	Elapsed, ETA time.Duration
	// SimCycles is the total simulated cycles of the completed cells and
	// CyclesPerSec the resulting host-side simulation throughput
	// (SimCycles / Elapsed). Both are zero unless the sweep carries a
	// Meter (Options.Meter / Pool.Meter).
	SimCycles    uint64
	CyclesPerSec float64
}

// ProgressFunc observes sweep progress after each completed cell.
// Implementations must be fast; the pool invokes the callback under its
// bookkeeping lock, so Done is strictly increasing across calls.
type ProgressFunc func(p Progress)

// Meter accumulates simulated cycles across a sweep's cells so progress
// reporting can surface simulation throughput. Cell runners fold each
// finished gpu.Result's cycle count into the meter (and zero the Result's
// host-timing fields, keeping Results bit-deterministic). Safe for
// concurrent use.
type Meter struct{ cycles atomic.Uint64 }

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{} }

// Add folds one finished cell's cycle count in.
func (m *Meter) Add(cycles uint64) { m.cycles.Add(cycles) }

// Cycles returns the total simulated cycles folded in so far.
func (m *Meter) Cycles() uint64 { return m.cycles.Load() }

// Pool runs independent simulation cells on a bounded goroutine worker pool.
// The zero value is ready to use: Workers <= 0 means GOMAXPROCS.
//
// Every experiment sweep in this package (RunMatrix, the sensitivity
// studies, the footprint analyses) dispatches its cells through a Pool, and
// the command-line tools expose the worker count as -workers. Cells must be
// independent: each one builds its own workload program, configuration copy,
// scheduler, and simulator, so runs are data-race-free and bit-identical to
// a serial execution regardless of completion order.
type Pool struct {
	// Workers bounds the number of concurrently executing cells.
	// Zero or negative means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when non-nil, is called after each completed cell.
	Progress ProgressFunc
	// Meter, when non-nil, supplies the simulated-cycle totals reported
	// in Progress observations (cells must feed it; see Options.Meter).
	Meter *Meter
	// Faults, when non-nil, arms deterministic failure injection at
	// faults.SiteCellRun inside each cell's recovery scope: error faults
	// become cell errors, panic faults are recovered into *PanicError —
	// a crashing or flaking worker. Nil keeps the site zero-cost.
	Faults *faults.Registry
	// Busy, when non-nil, tracks pool occupancy: incremented while a cell
	// executes, so a scrape sees how many workers are busy right now.
	// CellSeconds, when non-nil, observes each cell's wall-clock run time.
	// Both are nil-safe telemetry handles; unset they cost nothing.
	Busy *telemetry.Gauge
	// CellSeconds observes per-cell latency (seconds).
	CellSeconds *telemetry.Histogram
}

// PanicError is a panic recovered from a worker-pool cell, surfaced as an
// ordinary error so one corrupt cell cannot take down a whole sweep.
type PanicError struct {
	// Cell is the index of the cell that panicked.
	Cell int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("exp: cell %d panicked: %v", e.Cell, e.Value)
}

// effectiveWorkers resolves the worker count for n cells.
func (p Pool) effectiveWorkers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	return w
}

// Run evaluates fn(0) .. fn(n-1), at most Workers at a time, and returns the
// error of the lowest-index failing cell (nil if every cell succeeded).
//
// Error semantics match a serial loop exactly: cells are claimed in index
// order, the first failure stops new cells from starting, in-flight cells
// run to completion, and among all failures the lowest index wins — so a
// parallel run returns the same error a `for i := 0; i < n; i++` loop would.
// A cell that panics is recovered and reported as a *PanicError.
func (p Pool) Run(n int, fn func(i int) error) error {
	return p.RunContext(context.Background(), n, func(_ context.Context, i int) error {
		return fn(i)
	})
}

// RunContext is Run under a context, for callers whose sweeps must cancel
// cleanly (server jobs, signal-driven CLIs). Each cell receives the context
// so it can thread it into Simulator.RunContext. Cancellation stops new
// cells from being claimed; in-flight cells run to completion (interrupting
// themselves via the context they were handed). Cell errors keep Run's
// lowest-index semantics and take precedence; when the run was cut short by
// cancellation and no cell failed, RunContext returns context.Cause(ctx).
func (p Pool) RunContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.effectiveWorkers(n)

	var (
		next   atomic.Int64 // next cell index to claim
		failed atomic.Bool  // stops new cells from starting

		mu       sync.Mutex
		firstIdx = n // lowest failing cell index seen
		firstErr error
		done     int
		start    = time.Now()
	)
	finish := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			failed.Store(true)
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			return
		}
		done++
		if p.Progress != nil {
			pr := Progress{Done: done, Total: n, Elapsed: time.Since(start)}
			if done < n {
				pr.ETA = pr.Elapsed / time.Duration(done) * time.Duration(n-done)
			}
			if p.Meter != nil {
				pr.SimCycles = p.Meter.Cycles()
				if secs := pr.Elapsed.Seconds(); secs > 0 {
					pr.CyclesPerSec = float64(pr.SimCycles) / secs
				}
			}
			p.Progress(pr)
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	var canceled atomic.Bool
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if ctx.Err() != nil {
					canceled.Store(true)
					return
				}
				// Claims are strictly index-ordered and a claimed cell
				// always runs, so when any cell fails, every lower-index
				// cell has already been claimed and will report its own
				// outcome — the min-index winner below is exactly the
				// error a serial loop would have returned.
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cellStart := time.Now()
				p.Busy.Inc()
				err := runCell(ctx, i, p.Faults, fn)
				p.Busy.Dec()
				p.CellSeconds.Observe(time.Since(cellStart).Seconds())
				finish(i, err)
			}
		}()
	}
	wg.Wait()
	if firstErr == nil && canceled.Load() {
		return context.Cause(ctx)
	}
	return firstErr
}

// runCell executes one cell with panic recovery. The cell failpoint sits
// inside the recovery scope, so injected panics exercise the same recovery
// path a real worker crash would.
func runCell(ctx context.Context, i int, flts *faults.Registry, fn func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Cell: i, Value: r, Stack: buf}
		}
	}()
	if err := flts.Hit(faults.SiteCellRun); err != nil {
		return err
	}
	return fn(ctx, i)
}

// pool returns the Pool configured by these Options.
func (o Options) pool() Pool {
	return Pool{Workers: o.Workers, Progress: o.Progress, Meter: o.Meter}
}

// sweep evaluates n independent cells through the Options' pool and returns
// their results in index order, so callers render output identical to a
// serial loop regardless of cell completion order.
func sweep[T any](o Options, n int, run func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := o.pool().Run(n, func(i int) error {
		v, err := run(i)
		if err != nil {
			return err
		}
		out[i] = v // each cell owns its own index: no write overlaps
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
