package exp

import (
	"laperm/internal/isa"
	"laperm/internal/kernels"
)

// NestedWorkload builds a synthetic 4-deep nested launch tree for the
// priority-level ablation: every TB reads a region shared with its
// descendants (so prioritising deep children pays off in cache reuse) and
// launches two children until the depth limit.
func NestedWorkload() kernels.Workload {
	return kernels.Workload{
		Name:  "nested-4",
		App:   "nested",
		Input: "synthetic",
		Build: func(s kernels.Scale) *isa.Kernel {
			// Each root expands to 31 TBs (1+2+4+8+16). The small
			// scale pushes ~10k TBs through the 208-TB machine and
			// exceeds it with root TBs alone, so descendants truly
			// queue and priority order matters.
			roots := 16
			if s == kernels.ScaleSmall {
				roots = 320
			}
			if s == kernels.ScaleMedium {
				roots = 640
			}
			kb := isa.NewKernel("nested")
			id := 0
			for r := 0; r < roots; r++ {
				kb.Add(nestedTB(uint64(r), 4, &id))
			}
			return kb.Build()
		},
	}
}

// nestedTB builds one TB of the nested tree rooted at region `root`, with
// `depth` further generations below it.
func nestedTB(root uint64, depth int, id *int) *isa.TB {
	base := kernels.RegionData + root*64*1024
	b := isa.NewTB(kernels.TBThreads).Resources(20, 0)
	// Read the subtree-shared region (4 KB that every generation of this
	// root reuses) and a small generation-private stripe.
	for word := 0; word < 16; word++ {
		off := uint64(word * kernels.TBThreads * 4)
		b.Load(func(tid int) uint64 { return base + off + uint64(tid)*4 })
		b.Compute(4)
	}
	priv := uint64(*id) * 4096
	*id++
	b.Load(func(tid int) uint64 { return kernels.RegionData2 + priv + uint64(tid)*4 })
	b.Compute(12)
	if depth > 0 {
		for c := 0; c < 2; c++ {
			child := isa.NewKernel("nested-child").
				Add(nestedTB(root, depth-1, id)).Build()
			b.Launch(c*32, child)
		}
	}
	b.Compute(12)
	b.Store(func(tid int) uint64 { return kernels.RegionOut + priv + uint64(tid)*4 })
	return b.Build()
}
