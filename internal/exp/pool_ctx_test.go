package exp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestRunContextCancelStopsNewClaims: once the context is canceled, no new
// cells start; cells that already ran are counted; the returned error is the
// cancellation cause.
func TestRunContextCancelStopsNewClaims(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	gate := make(chan struct{})
	err := Pool{Workers: 2}.RunContext(ctx, 100, func(ctx context.Context, i int) error {
		if n := ran.Add(1); n == 2 {
			cancel()
			close(gate)
		} else {
			<-gate // hold the first cells until the cancel lands
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d cells ran despite cancellation", n)
	}
}

// TestRunContextCellErrorWins: a real cell failure takes precedence over the
// cancellation cause.
func TestRunContextCellErrorWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	boom := fmt.Errorf("cell exploded")
	err := Pool{Workers: 1}.RunContext(ctx, 4, func(ctx context.Context, i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the cell error", err)
	}
}

// TestRunContextPropagatesCtxToCells: the context handed to RunContext is the
// one each cell observes, so cells can thread it into Simulator.RunContext.
func TestRunContextPropagatesCtxToCells(t *testing.T) {
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "marker")
	err := Pool{Workers: 3}.RunContext(ctx, 8, func(ctx context.Context, i int) error {
		if ctx.Value(key{}) != "marker" {
			return fmt.Errorf("cell %d got a different context", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunContextPreCanceled: an already-canceled context runs nothing and
// returns its cause.
func TestRunContextPreCanceled(t *testing.T) {
	cause := fmt.Errorf("shutdown")
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(cause)
	var ran atomic.Int64
	err := Pool{Workers: 4}.RunContext(ctx, 16, func(ctx context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want cause %v", err, cause)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d cells ran under a pre-canceled context", ran.Load())
	}
}

// TestRunDelegatesToRunContext: Run is RunContext(Background): serial error
// semantics are unchanged.
func TestRunDelegatesToRunContext(t *testing.T) {
	var ran atomic.Int64
	err := Pool{Workers: 4}.Run(10, func(i int) error {
		ran.Add(1)
		return nil
	})
	if err != nil || ran.Load() != 10 {
		t.Fatalf("Run: err=%v ran=%d", err, ran.Load())
	}
}
