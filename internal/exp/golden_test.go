package exp

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"laperm/internal/config"
	"laperm/internal/kernels"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/exp/ -run Golden -update
var update = flag.Bool("update", false, "rewrite golden result files")

// goldenCell is one matrix cell's snapshot: the per-cell metrics future
// scheduler or memory-hierarchy changes are most likely to disturb. Floats
// are stored pre-formatted so the files diff cleanly and comparisons are
// exact.
type goldenCell struct {
	Workload       string `json:"workload"`
	Model          string `json:"model"`
	Scheduler      string `json:"scheduler"`
	Cycles         uint64 `json:"cycles"`
	ThreadInsts    int64  `json:"thread_insts"`
	IPC            string `json:"ipc"`
	L1HitRate      string `json:"l1_hit_rate"`
	L2HitRate      string `json:"l2_hit_rate"`
	Kernels        int    `json:"kernels"`
	DynamicKernels int    `json:"dynamic_kernels"`
	Blocks         int    `json:"blocks"`
	QueueOverflows int64  `json:"queue_overflows"`
}

// goldenOptions is the pinned configuration of the snapshot: the SmallTest
// machine on tiny-scale inputs, a diverse three-workload subset covering a
// graph traversal, a tree build, and a relational join.
func goldenOptions() Options {
	g := config.SmallTest()
	return Options{
		Scale:     kernels.ScaleTiny,
		Config:    &g,
		Workloads: []string{"bfs-citation", "amr", "join-uniform"},
	}
}

func goldenPath() string { return filepath.Join("testdata", "golden", "matrix_tiny.json") }

// snapshotMatrix runs the golden matrix under the chosen clocking and
// flattens it in presentation order.
func snapshotMatrix(t *testing.T, dense bool) []goldenCell {
	t.Helper()
	o := goldenOptions()
	o.DenseClock = dense
	m, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	var cells []goldenCell
	for _, wk := range m.Workloads {
		for _, model := range Models {
			for _, sched := range SchedulerNames {
				r := m.Get(wk.Name, model, sched)
				cells = append(cells, goldenCell{
					Workload:       wk.Name,
					Model:          model.String(),
					Scheduler:      sched,
					Cycles:         r.Cycles,
					ThreadInsts:    r.ThreadInsts,
					IPC:            fmt.Sprintf("%.6f", r.IPC),
					L1HitRate:      fmt.Sprintf("%.6f", r.L1.HitRate()),
					L2HitRate:      fmt.Sprintf("%.6f", r.L2.HitRate()),
					Kernels:        r.KernelCount,
					DynamicKernels: r.DynamicKernelCount,
					Blocks:         r.BlockCount,
					QueueOverflows: r.QueueOverflows,
				})
			}
		}
	}
	return cells
}

// TestGoldenMatrix compares the SmallTest/tiny matrix against the committed
// snapshot, cell by cell, so scheduler and memory changes diff against
// known-good numbers instead of loose bounds. Run with -update after an
// intentional behaviour change and commit the new file alongside it.
func TestGoldenMatrix(t *testing.T) {
	got := snapshotMatrix(t, false)

	if *update {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath()), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s (%d cells)", goldenPath(), len(got))
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/exp/ -run Golden -update` to create it): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath(), err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d cells, golden file has %d; regenerate with -update", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %s/%s/%s drifted from golden:\n  want %+v\n  got  %+v",
				want[i].Workload, want[i].Model, want[i].Scheduler, want[i], got[i])
		}
	}
}

// TestGoldenMatrixDenseClock runs the same matrix with per-cycle stepping
// and holds it to the identical golden file: the committed snapshot pins
// both clockings at once, so a clocking divergence surfaces as a golden
// drift even when no differential test ran the affected cell.
func TestGoldenMatrixDenseClock(t *testing.T) {
	if *update {
		t.Skip("golden file is written by TestGoldenMatrix")
	}
	got := snapshotMatrix(t, true)
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden file (run `go test ./internal/exp/ -run Golden -update` to create it): %v", err)
	}
	var want []goldenCell
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", goldenPath(), err)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d cells, golden file has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("dense-clock cell %s/%s/%s diverges from golden:\n  want %+v\n  got  %+v",
				want[i].Workload, want[i].Model, want[i].Scheduler, want[i], got[i])
		}
	}
}
