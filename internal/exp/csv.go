package exp

import (
	"bytes"
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"laperm/internal/gpu"
)

// writeAtomic runs fn against a buffer and copies the buffer to w only when
// fn succeeds, so an error interleaved mid-emission (a missing matrix cell,
// a failed analysis) never leaves w holding a partial, header-only file.
func writeAtomic(w io.Writer, fn func(io.Writer) error) error {
	var buf bytes.Buffer
	if err := fn(&buf); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteFileAtomic writes fn's output to path via a temporary file in the
// same directory renamed into place, so readers never observe a partial
// file and a failed emitter leaves any existing file untouched.
func WriteFileAtomic(path string, fn func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	err = writeAtomic(tmp, fn)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// WriteTimelineCSV emits one run's sampled timeline (Result.Timeline) as
// CSV, one row per sample window. Per-SMX occupancy is flattened into
// smx<N>_tbs columns.
func WriteTimelineCSV(res *gpu.Result, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		nSMX := 0
		if len(res.Timeline) > 0 {
			nSMX = len(res.Timeline[0].SMXResident)
		}
		header := []string{
			"cycle", "ipc", "l1_hit_rate", "l2_hit_rate",
			"resident_tbs", "live_kernels",
			"pending_arrivals", "kmu_queued", "kdu_used", "agg_entries",
			"tbs_dispatched", "mem_stalls", "launch_stalls",
			"l1_parent_child_share",
		}
		for i := 0; i < nSMX; i++ {
			header = append(header, fmt.Sprintf("smx%d_tbs", i))
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		f := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
		for _, s := range res.Timeline {
			row := []string{
				strconv.FormatUint(s.Cycle, 10),
				f(s.IPC), f(s.L1), f(s.L2),
				strconv.Itoa(s.ResidentTBs), strconv.Itoa(s.LiveKernels),
				strconv.Itoa(s.PendingArrivals), strconv.Itoa(s.KMUQueued),
				strconv.Itoa(s.KDUUsed), strconv.Itoa(s.AggEntries),
				strconv.FormatUint(s.TBsDispatched, 10),
				strconv.FormatInt(s.MemStalls, 10),
				strconv.FormatInt(s.LaunchStalls, 10),
				f(s.L1ParentChild),
			}
			for _, n := range s.SMXResident {
				row = append(row, strconv.Itoa(n))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

// WriteMatrixCSV emits the full evaluation matrix as machine-readable CSV:
// one row per (workload, model, scheduler) cell with every statistic the
// figures read, for downstream plotting. Output is buffered and written only
// on success: an incomplete matrix yields an error and zero bytes on w.
func WriteMatrixCSV(m *Matrix, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		header := []string{
			"workload", "app", "input", "model", "scheduler",
			"cycles", "thread_insts", "ipc",
			"l1_hit_rate", "l2_hit_rate", "dram_transactions",
			"kernels", "dynamic_kernels", "blocks",
			"avg_child_wait_cycles", "smx_load_imbalance",
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		f := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
		for _, wk := range m.Workloads {
			for _, model := range Models {
				for _, sched := range SchedulerNames {
					r, err := m.lookup(wk.Name, model, sched)
					if err != nil {
						return err
					}
					row := []string{
						wk.Name, wk.App, wk.Input, model.String(), sched,
						strconv.FormatUint(r.Cycles, 10),
						strconv.FormatInt(r.ThreadInsts, 10),
						f(r.IPC),
						f(r.L1.HitRate()), f(r.L2.HitRate()),
						strconv.FormatInt(r.DRAMTransactions, 10),
						strconv.Itoa(r.KernelCount), strconv.Itoa(r.DynamicKernelCount), strconv.Itoa(r.BlockCount),
						f(r.AvgChildWait), f(r.LoadImbalance),
					}
					if err := cw.Write(row); err != nil {
						return err
					}
				}
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

// CellRow is one sweep cell for WriteCellsCSV: the cell's content-addressed
// run ID, its rendered axis values (aligned with the axes header), and the
// completed result.
type CellRow struct {
	ID     string
	Values []string
	Result *gpu.Result
}

// WriteCellsCSV emits a sweep's aggregated results: one row per cell, the
// axis-value columns first, then the same statistics WriteMatrixCSV
// reports. Rows are emitted in the order given (a sweep's deterministic
// expansion order), and because the engine is bit-deterministic the file is
// byte-identical however the cells were obtained — fresh runs, deduped
// cells, or cache hits. As with WriteMatrixCSV, w receives either the
// complete file or nothing.
func WriteCellsCSV(axes []string, rows []CellRow, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		header := append([]string{"run_id"}, axes...)
		header = append(header,
			"cycles", "thread_insts", "ipc",
			"l1_hit_rate", "l2_hit_rate", "dram_transactions",
			"kernels", "dynamic_kernels", "blocks",
			"avg_child_wait_cycles", "smx_load_imbalance",
		)
		if err := cw.Write(header); err != nil {
			return err
		}
		f := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
		for _, row := range rows {
			if len(row.Values) != len(axes) {
				return fmt.Errorf("exp: cell %s has %d axis values, want %d", row.ID, len(row.Values), len(axes))
			}
			if row.Result == nil {
				return fmt.Errorf("exp: cell %s has no result", row.ID)
			}
			r := row.Result
			out := append([]string{row.ID}, row.Values...)
			out = append(out,
				strconv.FormatUint(r.Cycles, 10),
				strconv.FormatInt(r.ThreadInsts, 10),
				f(r.IPC),
				f(r.L1.HitRate()), f(r.L2.HitRate()),
				strconv.FormatInt(r.DRAMTransactions, 10),
				strconv.Itoa(r.KernelCount), strconv.Itoa(r.DynamicKernelCount), strconv.Itoa(r.BlockCount),
				f(r.AvgChildWait), f(r.LoadImbalance),
			)
			if err := cw.Write(out); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

// WriteFootprintCSV emits the Figure 2 analysis as CSV, running the
// per-workload analyses on the Options' pool. As with WriteMatrixCSV, w
// receives either the complete file or nothing.
func WriteFootprintCSV(o Options, w io.Writer) error {
	ws, err := o.workloads()
	if err != nil {
		return err
	}
	stats, err := analyzeFootprints(o, ws)
	if err != nil {
		return err
	}
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		if err := cw.Write([]string{"workload", "app", "input", "parent_child", "child_sibling", "parent_parent", "direct_parents", "child_tbs"}); err != nil {
			return err
		}
		for i, wk := range ws {
			st := stats[i]
			if err := cw.Write([]string{
				wk.Name, wk.App, wk.Input,
				fmt.Sprintf("%.6f", st.ParentChild),
				fmt.Sprintf("%.6f", st.ChildSibling),
				fmt.Sprintf("%.6f", st.ParentParent),
				strconv.Itoa(st.DirectParents), strconv.Itoa(st.ChildTBs),
			}); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
}
