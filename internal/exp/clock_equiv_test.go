package exp

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"laperm/internal/config"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/trace"
)

// clockCellArtifacts is every serialized observable of one traced cell: the
// event stream (JSONL), the Perfetto export, and the sampled-timeline CSV.
// The fast-forward clock must reproduce all three byte for byte.
type clockCellArtifacts struct {
	res      *gpu.Result
	jsonl    []byte
	perfetto []byte
	timeline []byte
}

// runClockCell runs one workload cell fully traced under the given clocking.
func runClockCell(t *testing.T, workload string, model gpu.Model, sched string,
	scale kernels.Scale, dense bool) clockCellArtifacts {
	t.Helper()
	w, ok := kernels.ByName(workload)
	if !ok {
		t.Fatalf("unknown workload %s", workload)
	}
	g := config.SmallTest()
	o := Options{
		Scale:       scale,
		Config:      &g,
		Attribution: true,
		SampleEvery: 256,
		DenseClock:  dense,
	}
	rec := trace.NewRecorder()
	res, sim, err := RunCell(w, model, sched, o, func(g *gpu.Options) {
		g.TraceDispatch = rec.DispatchHook()
		g.TraceQueue = rec.QueueHook()
		g.TraceBlockDone = rec.BlockHook()
		g.TraceSample = rec.SampleHook()
	})
	if err != nil {
		t.Fatalf("%s/%v/%s dense=%v: %v", workload, model, sched, dense, err)
	}
	rec.FinishRun(sim)

	a := clockCellArtifacts{res: res}
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	a.jsonl = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	a.perfetto = append([]byte(nil), buf.Bytes()...)
	buf.Reset()
	if err := WriteTimelineCSV(res, &buf); err != nil {
		t.Fatal(err)
	}
	a.timeline = append([]byte(nil), buf.Bytes()...)
	return a
}

// diffClockCell asserts one cell's dense and fast-forward runs are
// observably identical: equal Results and byte-identical trace, Perfetto,
// and timeline artifacts.
func diffClockCell(t *testing.T, workload string, model gpu.Model, sched string,
	scale kernels.Scale) {
	t.Helper()
	dense := runClockCell(t, workload, model, sched, scale, true)
	ff := runClockCell(t, workload, model, sched, scale, false)
	if !reflect.DeepEqual(dense.res, ff.res) {
		t.Errorf("Results diverge:\ndense: %+v\nff:    %+v", dense.res, ff.res)
	}
	if !bytes.Equal(dense.jsonl, ff.jsonl) {
		t.Errorf("JSONL traces diverge (%d vs %d bytes)", len(dense.jsonl), len(ff.jsonl))
	}
	if !bytes.Equal(dense.perfetto, ff.perfetto) {
		t.Errorf("Perfetto exports diverge (%d vs %d bytes)", len(dense.perfetto), len(ff.perfetto))
	}
	if !bytes.Equal(dense.timeline, ff.timeline) {
		t.Errorf("timeline CSVs diverge (%d vs %d bytes)", len(dense.timeline), len(ff.timeline))
	}
}

// TestClockEquivalenceCells is the end-to-end differential matrix on real
// workloads: one representative per Table II benchmark app under every
// scheduler and both models, each cell run densely and fast-forwarded with
// full tracing, attribution, and sampling. -short trims the sweep to one
// representative cell per model.
func TestClockEquivalenceCells(t *testing.T) {
	workloads := []string{
		"amr", "bht", "bfs-citation", "clr-citation",
		"regx-darpa", "pre-movielens", "join-uniform", "sssp-citation",
	}
	for _, workload := range workloads {
		for _, model := range Models {
			for _, sched := range SchedulerNames {
				if testing.Short() && !(workload == "bfs-citation" && sched == "tb-pri") {
					continue
				}
				t.Run(fmt.Sprintf("%s/%v/%s", workload, model, sched), func(t *testing.T) {
					diffClockCell(t, workload, model, sched, kernels.ScaleTiny)
				})
			}
		}
	}
}
