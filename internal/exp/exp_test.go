package exp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"laperm/internal/config"
	"laperm/internal/gpu"
	"laperm/internal/isa"
	"laperm/internal/kernels"
)

// fastOptions runs experiments on a reduced machine with tiny workloads so
// a test completes in milliseconds while contention is preserved.
func fastOptions(workloads ...string) Options {
	g := config.SmallTest()
	g.NumSMX = 4
	g.TBsPerSMX = 4
	return Options{Scale: kernels.ScaleTiny, Config: &g, Workloads: workloads}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"table1", "table2", "fig2", "fig7", "fig8", "fig9a", "fig9b", "latency", "balance", "levels", "clusters", "warp", "throttle", "backup"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Errorf("experiment %d = %q, want %q", i, ids[i], id)
		}
	}
	if _, ok := ByID("fig7"); !ok {
		t.Error("ByID(fig7) not found")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestNewSchedulerNames(t *testing.T) {
	cfg := config.SmallTest()
	for _, name := range SchedulerNames {
		s, err := NewScheduler(name, &cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("scheduler %q reports name %q", name, s.Name())
		}
	}
	if _, err := NewScheduler("bogus", &cfg); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestOptionsWorkloadsValidation(t *testing.T) {
	o := Options{Workloads: []string{"not-a-workload"}}
	if _, err := o.workloads(); err == nil {
		t.Error("unknown workload accepted")
	}
	o = Options{}
	ws, err := o.workloads()
	if err != nil || len(ws) != 16 {
		t.Errorf("default workloads = %d, %v", len(ws), err)
	}
}

func TestRunMatrixAndFigures(t *testing.T) {
	o := fastOptions("bfs-citation", "join-uniform")
	m, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(Models) * len(SchedulerNames); len(m.Results) != want {
		t.Fatalf("matrix cells = %d, want %d", len(m.Results), want)
	}
	var buf bytes.Buffer
	if err := Fig7From(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Fig8From(m, &buf); err != nil {
		t.Fatal(err)
	}
	if err := Fig9From(m, gpu.DTBL, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bfs-citation", "join-uniform", "average", "cdp/rr", "dtbl/adaptive-bind"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q", want)
		}
	}
	// RR baseline rows of Fig9 must be exactly 1.000.
	if !strings.Contains(out, "1.000") {
		t.Error("Fig9 missing normalised baseline")
	}
}

func TestMatrixGetPanicsOnMissingCell(t *testing.T) {
	m := &Matrix{Results: map[Cell]*gpu.Result{}}
	defer func() {
		if recover() == nil {
			t.Fatal("Get on missing cell did not panic")
		}
	}()
	m.Get("x", gpu.CDP, "rr")
}

func TestTables12Render(t *testing.T) {
	var buf bytes.Buffer
	if err := runTable1(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"706 MHz", "13", "1536 KB", "Greedy-Then-Oldest"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	buf.Reset()
	if err := runTable2(Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Breadth-First Search", "Relational Join", "cage15"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table2 missing %q", want)
		}
	}
}

func TestFig2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := runFig2(fastOptions("amr", "bht"), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "average") {
		t.Error("fig2 missing average row")
	}
}

func TestSensitivityExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sensitivity sweeps are slow")
	}
	var buf bytes.Buffer
	o := fastOptions("join-uniform")
	if err := runBalance(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "join-uniform") {
		t.Error("balance output missing workload")
	}
	buf.Reset()
	o2 := fastOptions()
	o2.Workloads = []string{"bfs-citation"}
	if err := runLatency(o2, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "20000") {
		t.Error("latency output missing sweep point")
	}
	buf.Reset()
	if err := runLevels(fastOptions(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max level L") {
		t.Error("levels output missing header")
	}
}

func TestNestedWorkloadValidates(t *testing.T) {
	k := NestedWorkload().Build(kernels.ScaleTiny)
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	// Depth-4 nesting: each TB launches two children for 4 generations,
	// so each of the 16 tiny-scale roots yields 2+4+8+16 = 30 descendant
	// grids.
	grids := 0
	k.Walk(func(parent, child *isa.Kernel) {
		if parent != nil {
			grids++
		}
	})
	if want := 16 * 30; grids != want {
		t.Errorf("descendant grids = %d, want %d", grids, want)
	}
}

func TestRunOneErrorsOnUnknownScheduler(t *testing.T) {
	w, _ := kernels.ByName("amr")
	if _, err := RunOne(w, gpu.DTBL, "bogus", fastOptions()); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestCSVExports(t *testing.T) {
	o := fastOptions("amr", "bht")
	m, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMatrixCSV(m, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// header + one row per workload x model x scheduler cell.
	if want := 1 + 2*len(Models)*len(SchedulerNames); len(lines) != want {
		t.Errorf("matrix CSV rows = %d, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "workload,app,input,model,scheduler") {
		t.Errorf("header = %q", lines[0])
	}
	for _, l := range lines[1:] {
		if strings.Count(l, ",") != strings.Count(lines[0], ",") {
			t.Errorf("ragged CSV row: %q", l)
		}
	}

	buf.Reset()
	if err := WriteFootprintCSV(o, &buf); err != nil {
		t.Fatal(err)
	}
	fp := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(fp) != 3 {
		t.Errorf("footprint CSV rows = %d, want 3", len(fp))
	}

	bad := Options{Workloads: []string{"nope"}}
	if err := WriteFootprintCSV(bad, &buf); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWriteMatrixCSVAtomicOnMissingCell(t *testing.T) {
	o := fastOptions("amr")
	m, err := RunMatrix(o)
	if err != nil {
		t.Fatal(err)
	}
	// Remove a mid-matrix cell: the writer must error without emitting the
	// header or any leading rows.
	delete(m.Results, Cell{"amr", gpu.DTBL, "smx-bind"})
	var buf bytes.Buffer
	if err := WriteMatrixCSV(m, &buf); err == nil {
		t.Fatal("missing cell not reported")
	}
	if buf.Len() != 0 {
		t.Errorf("partial CSV emitted on error: %q", buf.String())
	}
}

func TestRunAllAtomicOnMidMatrixError(t *testing.T) {
	// An unknown workload is only discovered at the fig2 stage, after the
	// table1/table2 sections have been rendered; nothing may reach w.
	var buf bytes.Buffer
	if err := RunAll(Options{Workloads: []string{"nope"}}, &buf); err == nil {
		t.Fatal("unknown workload not reported")
	}
	if buf.Len() != 0 {
		t.Errorf("partial report emitted on error: %q", buf.String())
	}
}

func TestRunOnePropagatesPanicAsPoolError(t *testing.T) {
	// A scheduler that panics mid-run must surface as an error from the
	// sweep, not crash the process.
	o := fastOptions("amr")
	o.Workers = 2
	err := o.pool().Run(3, func(i int) error {
		if i == 1 {
			panic("scheduler bug")
		}
		_, err := RunMatrix(fastOptions("amr"))
		return err
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Cell != 1 {
		t.Fatalf("err = %v, want *PanicError for cell 1", err)
	}
}

func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll executes every experiment")
	}
	o := fastOptions("amr", "join-uniform")
	var buf bytes.Buffer
	if err := RunAll(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID+":") {
			t.Errorf("RunAll output missing section %q", e.ID)
		}
	}
}
