package exp

// Whole-cell allocation budgets: one explicit number per benchmarked
// workload, covering simulator construction, the complete run (including the
// device-launch path the micro pins in internal/gpu cannot see), and result
// assembly, across every registered launch model and scheduler. The steady
// state is zero-alloc (pinned in gpu/smx/mem), so a cell's total is its
// fixed setup cost — measured at 211–274 allocations per cell. The budgets
// leave ~50% headroom for benign construction changes; a single stray
// allocation on a per-cycle path adds tens of thousands and fails
// immediately. Raising a budget is an explicit, reviewed edit to this table.

import (
	"testing"

	"laperm/internal/kernels"
)

var cellAllocBudgets = []struct {
	workload string
	budget   float64
}{
	{"bfs-citation", 400},
	{"join-uniform", 400},
	{"amr", 400},
	{"bht", 400},
}

func TestCellAllocationBudgets(t *testing.T) {
	o := fastOptions()
	for _, tc := range cellAllocBudgets {
		t.Run(tc.workload, func(t *testing.T) {
			w, err := kernels.Lookup(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			w.Build(o.Scale) // warm the program and graph-input memos
			for _, model := range Models {
				for _, sched := range SchedulerNames {
					var runErr error
					allocs := testing.AllocsPerRun(2, func() {
						if _, err := RunOne(w, model, sched, o); err != nil {
							runErr = err
						}
					})
					if runErr != nil {
						t.Fatal(runErr)
					}
					if allocs > tc.budget {
						t.Errorf("%s/%s/%s: %.0f allocs per cell, budget %.0f",
							tc.workload, model, sched, allocs, tc.budget)
					}
				}
			}
		})
	}
}
