package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/mem"
)

// ReuseMatrix holds the reuse-attributed sweep of every workload under
// every scheduler for one launch model: the repo-native Figure 3 evidence
// that LaPerm's schedulers raise the parent-child share of L1 hits.
type ReuseMatrix struct {
	Model     gpu.Model
	Workloads []kernels.Workload
	Results   map[Cell]*gpu.Result
}

// RunReuse sweeps every workload x scheduler cell for the given model with
// reuse attribution enabled, fanning cells over the Options' pool.
func RunReuse(o Options, model gpu.Model) (*ReuseMatrix, error) {
	o.Attribution = true
	ws, err := o.workloads()
	if err != nil {
		return nil, err
	}
	var cells []Cell
	byName := make(map[string]kernels.Workload, len(ws))
	for _, w := range ws {
		byName[w.Name] = w
		for _, sched := range SchedulerNames {
			cells = append(cells, Cell{w.Name, model, sched})
		}
	}
	results, err := sweep(o, len(cells), func(i int) (*gpu.Result, error) {
		c := cells[i]
		return RunOne(byName[c.Workload], c.Model, c.Sched, o)
	})
	if err != nil {
		return nil, err
	}
	m := &ReuseMatrix{Model: model, Workloads: ws, Results: make(map[Cell]*gpu.Result, len(cells))}
	for i, c := range cells {
		m.Results[c] = results[i]
	}
	return m, nil
}

// lookup returns one cell's result, erroring on a missing cell.
func (m *ReuseMatrix) lookup(workload, sched string) (*gpu.Result, error) {
	r, ok := m.Results[Cell{workload, m.Model, sched}]
	if !ok {
		return nil, fmt.Errorf("exp: reuse matrix missing cell %s/%v/%s", workload, m.Model, sched)
	}
	return r, nil
}

// WriteReuseCSV emits the reuse breakdown as CSV: one row per (workload,
// scheduler, cache level) with raw class counts and shares. As with the
// other emitters, w receives the complete file or nothing.
func WriteReuseCSV(m *ReuseMatrix, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		header := []string{
			"workload", "app", "input", "model", "scheduler", "level",
			"self", "parent_child", "sibling", "cross", "classified_hits",
			"self_share", "parent_child_share", "sibling_share", "cross_share",
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		f := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
		for _, wk := range m.Workloads {
			for _, sched := range SchedulerNames {
				r, err := m.lookup(wk.Name, sched)
				if err != nil {
					return err
				}
				for _, lvl := range []struct {
					name string
					rs   mem.ReuseStats
				}{{"l1", r.L1Reuse}, {"l2", r.L2Reuse}} {
					row := []string{
						wk.Name, wk.App, wk.Input, m.Model.String(), sched, lvl.name,
						strconv.FormatInt(lvl.rs.Self, 10),
						strconv.FormatInt(lvl.rs.ParentChild, 10),
						strconv.FormatInt(lvl.rs.Sibling, 10),
						strconv.FormatInt(lvl.rs.Cross, 10),
						strconv.FormatInt(lvl.rs.Total(), 10),
						f(lvl.rs.Share(mem.ReuseSelf)),
						f(lvl.rs.Share(mem.ReuseParentChild)),
						f(lvl.rs.Share(mem.ReuseSibling)),
						f(lvl.rs.Share(mem.ReuseCross)),
					}
					if err := cw.Write(row); err != nil {
						return err
					}
				}
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

// WriteRunReuseCSV emits one run's reuse breakdown (Result.L1Reuse/L2Reuse)
// as CSV: one row per cache level with raw class counts and shares — the
// single-run counterpart of WriteReuseCSV, used by the lapermd artifact
// endpoint. Zero-valued stats (Attribution off) still produce rows, so the
// file shape is stable.
func WriteRunReuseCSV(res *gpu.Result, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		header := []string{
			"level", "self", "parent_child", "sibling", "cross", "classified_hits",
			"self_share", "parent_child_share", "sibling_share", "cross_share",
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		f := func(x float64) string { return strconv.FormatFloat(x, 'f', 6, 64) }
		for _, lvl := range []struct {
			name string
			rs   mem.ReuseStats
		}{{"l1", res.L1Reuse}, {"l2", res.L2Reuse}} {
			row := []string{
				lvl.name,
				strconv.FormatInt(lvl.rs.Self, 10),
				strconv.FormatInt(lvl.rs.ParentChild, 10),
				strconv.FormatInt(lvl.rs.Sibling, 10),
				strconv.FormatInt(lvl.rs.Cross, 10),
				strconv.FormatInt(lvl.rs.Total(), 10),
				f(lvl.rs.Share(mem.ReuseSelf)),
				f(lvl.rs.Share(mem.ReuseParentChild)),
				f(lvl.rs.Share(mem.ReuseSibling)),
				f(lvl.rs.Share(mem.ReuseCross)),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
}

// WriteReuseReport prints the parent-child L1 share per workload and
// scheduler as an aligned terminal table, flagging per row whether every
// LaPerm scheduler beat the rr baseline.
func WriteReuseReport(m *ReuseMatrix, w io.Writer) error {
	return writeAtomic(w, func(w io.Writer) error {
		fmt.Fprintf(w, "Parent-child share of classified L1 hits (%v, %d workloads)\n",
			m.Model, len(m.Workloads))
		fmt.Fprintf(w, "%-18s", "workload")
		for _, sched := range SchedulerNames {
			fmt.Fprintf(w, " %13s", sched)
		}
		fmt.Fprintln(w)
		for _, wk := range m.Workloads {
			base, err := m.lookup(wk.Name, "rr")
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-18s", wk.Name)
			allBeat := true
			for _, sched := range SchedulerNames {
				r, err := m.lookup(wk.Name, sched)
				if err != nil {
					return err
				}
				share := r.L1Reuse.Share(mem.ReuseParentChild)
				fmt.Fprintf(w, " %12.1f%%", 100*share)
				if sched != "rr" && share <= base.L1Reuse.Share(mem.ReuseParentChild) {
					allBeat = false
				}
			}
			if allBeat {
				fmt.Fprint(w, "  +")
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w, "(+ = every LaPerm scheduler beat rr on that workload)")
		return nil
	})
}
