// Package exp is the experiment harness: one runner per table and figure of
// the paper's evaluation (Section V), producing the same rows and series the
// paper reports, plus the inferred sensitivity studies listed in DESIGN.md.
package exp

import (
	"fmt"
	"io"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/smx"
)

// SchedulerNames lists the evaluated TB schedulers: every policy in the
// core scheduler registry, in registration order (the paper's baseline and
// three LaPerm schemes, then extensions).
var SchedulerNames = core.SchedulerNames()

// Models lists the dynamic-parallelism models evaluated: every model in the
// gpu launch-model registry, in registration order.
var Models = gpu.Models()

// Options configures an experiment run.
type Options struct {
	// Scale selects workload size (default ScaleSmall).
	Scale kernels.Scale
	// Workloads restricts the workload set (default: all of Table II).
	Workloads []string
	// Config overrides the GPU configuration (default: Table I K20c).
	Config *config.GPU
	// WarpPolicy selects the warp scheduler (default GTO, per Table I).
	WarpPolicy smx.Policy
	// Workers bounds how many simulation cells run concurrently in sweeps
	// (RunMatrix, the sensitivity studies, footprint analyses). Zero or
	// negative means GOMAXPROCS; 1 forces serial execution. Output is
	// byte-identical for every worker count.
	Workers int
	// Progress, when non-nil, observes sweep progress (cells done, total,
	// ETA). It may be called from pool goroutines, one call at a time.
	Progress ProgressFunc
	// Attribution enables reuse-tagged cache accounting on every run
	// (gpu.Options.Attribution): Result.L1Reuse/L2Reuse break cache hits
	// down by installer relationship. Off by default; timing is identical
	// either way.
	Attribution bool
	// SampleEvery, when non-zero, records a timeline Sample every that
	// many cycles on every run (gpu.Options.SampleEvery).
	SampleEvery uint64
	// DenseClock runs every cell with per-cycle stepping instead of the
	// default event-horizon fast-forward (gpu.Options.DenseClock). The
	// two are cycle-exact; this exists for differential testing.
	DenseClock bool
	// Meter, when non-nil, accumulates every cell's simulated cycles so
	// Progress observations report sweep throughput (Progress.SimCycles,
	// Progress.CyclesPerSec). The cell runners also strip the
	// host-timing fields (WallTime, SimCyclesPerSec) from each Result —
	// metered or not — keeping sweep Results bit-deterministic.
	Meter *Meter
}

// config returns a private copy of the effective GPU configuration. Every
// caller gets its own copy so sweep cells that tweak parameters (launch
// latency, cluster size, priority levels) can never alias the caller's
// struct or race with a concurrent cell reading it.
func (o Options) config() *config.GPU {
	if o.Config != nil {
		g := o.Config.Clone()
		return &g
	}
	g := config.KeplerK20c()
	return &g
}

func (o Options) workloads() ([]kernels.Workload, error) {
	if len(o.Workloads) == 0 {
		return kernels.All(), nil
	}
	var ws []kernels.Workload
	for _, name := range o.Workloads {
		w, err := kernels.Lookup(name)
		if err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the flag value ("fig7") and Title the heading printed above
	// the output.
	ID    string
	Title string
	// Inferred marks experiments reconstructed from the paper's text
	// rather than from a visible figure (see DESIGN.md).
	Inferred bool
	// Run executes the experiment and writes its table to w.
	Run func(o Options, w io.Writer) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Table I: GPGPU-Sim configuration parameters", Run: runTable1},
		{ID: "table2", Title: "Table II: benchmarks used in the experimental evaluation", Run: runTable2},
		{ID: "fig2", Title: "Figure 2: shared footprint ratio for parent-child and child-sibling TBs", Run: runFig2},
		{ID: "fig7", Title: "Figure 7: L2 cache hit rate", Run: runFig7},
		{ID: "fig8", Title: "Figure 8: L1 cache hit rate", Run: runFig8},
		{ID: "fig9a", Title: "Figure 9(a): IPC normalized to CDP with RR scheduler", Run: runFig9a},
		{ID: "fig9b", Title: "Figure 9(b): IPC normalized to DTBL with RR scheduler", Run: runFig9b},
		{ID: "latency", Title: "Launch-latency sensitivity of LaPerm (Section IV-D)", Inferred: true, Run: runLatency},
		{ID: "balance", Title: "SMX load balance: SMX-Bind vs Adaptive-Bind (Section IV-C)", Inferred: true, Run: runBalance},
		{ID: "levels", Title: "Priority-level ablation: clamping level L (Section IV-A)", Inferred: true, Run: runLevels},
		{ID: "clusters", Title: "SMX-cluster ablation: L1 shared by 1/2/4 SMXs (Section IV-B)", Inferred: true, Run: runClusters},
		{ID: "warp", Title: "Warp-scheduler orthogonality: LaPerm under GTO vs LRR (Section IV-F)", Inferred: true, Run: runWarp},
		{ID: "throttle", Title: "Contention-aware TB residency caps on Adaptive-Bind (Section IV-F)", Inferred: true, Run: runThrottle},
		{ID: "backup", Title: "Sticky-backup ablation for Adaptive-Bind stage 3 (Figure 6)", Inferred: true, Run: runBackup},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
