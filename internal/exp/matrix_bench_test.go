package exp

import (
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

// benchMatrix runs the SmallTest evaluation matrix (4 workloads x every
// registered model x every registered scheduler) at the given worker count.
// The serial/parallel
// pair is the speedup trajectory CI tracks via `go test -bench=Matrix`.
func benchMatrix(b *testing.B, workers int) {
	o := fastOptions("bfs-citation", "join-uniform", "amr", "bht")
	o.Workers = workers
	// Warm the memoized graph inputs so every measurement sees the same
	// build costs.
	if _, err := RunMatrix(o); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunMatrix(o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatrixWorkers1(b *testing.B) { benchMatrix(b, 1) }
func BenchmarkMatrixWorkers2(b *testing.B) { benchMatrix(b, 2) }
func BenchmarkMatrixWorkers4(b *testing.B) { benchMatrix(b, 4) }
func BenchmarkMatrixWorkers8(b *testing.B) { benchMatrix(b, 8) }

// BenchmarkRunOneCells benchmarks individual cell costs per scheduler, for
// profiling which policy dominates matrix time.
func BenchmarkRunOneCells(b *testing.B) {
	o := fastOptions()
	wk, ok := kernels.ByName("bfs-citation")
	if !ok {
		b.Fatal("bfs-citation missing")
	}
	for _, sched := range SchedulerNames {
		b.Run(sched, func(b *testing.B) {
			// Warm the memoized program so the first iteration pays the
			// same cost as the rest.
			if _, err := RunOne(wk, gpu.DTBL, sched, o); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunOne(wk, gpu.DTBL, sched, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
