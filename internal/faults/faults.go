// Package faults is a deterministic, seedable failpoint registry: named
// injection sites threaded through the hot seams of the stack (the lapermd
// cache, dispatcher, and SSE streams; the experiment pool's cells; the
// engine's cancellation and watchdog paths) that can be armed to return
// errors, add latency, panic, or fail writes partway through.
//
// A disarmed site is provably free: every site call goes through a method on
// a possibly-nil *Registry, and the nil receiver returns immediately without
// touching memory — TestDisarmedSitesZeroAlloc pins zero allocations per
// call. Armed sites decide deterministically: whether evaluation n of a site
// fires depends only on (seed, site, n), never on wall-clock time or map
// iteration order, so a failing chaos schedule replays exactly from its spec
// string and seed.
//
// Spec grammar (the LAPERM_FAULTS syntax and Parse's input):
//
//	spec  := entry (';' entry)*
//	entry := site '=' kind (':' param)*
//	kind  := "error" | "panic" | "delay" | "partial"
//	param := "p=" float        probability per evaluation (default 1)
//	       | "n=" uint         max fires (default unlimited)
//	       | "after=" uint     skip the first N evaluations (default 0)
//	       | "d=" duration     injected latency (delay kind; default 1ms)
//
// Example:
//
//	LAPERM_FAULTS='serve.cache.write=error:n=1;exp.cell.run=panic:p=0.5;gpu.run.poll=delay:d=2ms:p=0.1'
//	LAPERM_FAULTS_SEED=42
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Site names one failpoint. The catalog below is closed: Parse rejects
// unknown sites so a typo'd schedule fails loudly instead of silently
// injecting nothing.
type Site string

// The failpoint catalog. Each constant documents where the site sits and
// what an injected failure simulates.
const (
	// SiteCacheWrite fires per artifact write in the result cache's Put:
	// error/panic/delay before the write, partial midway through it —
	// disk-full and torn-write failures.
	SiteCacheWrite Site = "serve.cache.write"
	// SiteCacheRead fires in ReadArtifact before the file read — a
	// flaky or dying disk on the serving path.
	SiteCacheRead Site = "serve.cache.read"
	// SiteCacheEvict fires before an eviction's RemoveAll; an injected
	// error skips the removal, leaving an orphaned entry directory the
	// next OpenCache must absorb.
	SiteCacheEvict Site = "serve.cache.evict"
	// SiteSubmit fires in the submit handler before a job is enqueued;
	// an injected error sheds the submission with 503 — an overloaded or
	// flapping frontend.
	SiteSubmit Site = "serve.submit"
	// SiteSSEFlush fires before each SSE event write; an injected error
	// drops the client's stream mid-subscription — the broken pipe a
	// resuming client must absorb via Last-Event-ID.
	SiteSSEFlush Site = "serve.sse.flush"
	// SiteCellRun fires inside the experiment pool's per-cell recovery
	// scope, before the cell function runs — a wedged or crashing
	// worker. Panic faults here are recovered into *exp.PanicError.
	SiteCellRun Site = "exp.cell.run"
	// SiteGPURunPoll fires at the engine's throttled cancellation poll
	// (every few thousand loop iterations) — transient engine failures,
	// and delay faults that widen the cancellation/watchdog race window.
	SiteGPURunPoll Site = "gpu.run.poll"
	// SiteGPUWatchdog fires at each forward-progress watchdog check — a
	// failure surfacing at watchdog cadence.
	SiteGPUWatchdog Site = "gpu.watchdog.check"
)

// Sites lists the whole catalog, in a stable documentation order.
var Sites = []Site{
	SiteCacheWrite, SiteCacheRead, SiteCacheEvict,
	SiteSubmit, SiteSSEFlush,
	SiteCellRun,
	SiteGPURunPoll, SiteGPUWatchdog,
}

func knownSite(s Site) bool {
	for _, k := range Sites {
		if k == s {
			return true
		}
	}
	return false
}

// Kind is what an armed site does when it fires.
type Kind uint8

const (
	// KindError returns an *InjectedError from the site.
	KindError Kind = iota
	// KindPanic panics with an *InjectedError.
	KindPanic
	// KindDelay sleeps for the rule's duration, then proceeds normally.
	KindDelay
	// KindPartial fails a wrapped writer after half of its first write —
	// a torn write. At non-writer sites it behaves like KindError.
	KindPartial
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindPartial:
		return "partial"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "error":
		return KindError, nil
	case "panic":
		return KindPanic, nil
	case "delay":
		return KindDelay, nil
	case "partial":
		return KindPartial, nil
	}
	return 0, fmt.Errorf("faults: unknown kind %q (valid: error, panic, delay, partial)", s)
}

// InjectedError is the structured error every fired fault surfaces as (error
// and partial kinds return it; panic kinds panic with it). Holding the site
// and evaluation index, it names exactly which scheduled fault fired, and
// IsInjected lets retry policies treat any injected failure as transient.
type InjectedError struct {
	// Site is the failpoint that fired.
	Site Site
	// Kind is the fired rule's kind.
	Kind Kind
	// Eval is the site's evaluation index (0-based) at which it fired.
	Eval uint64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s at %s (eval %d)", e.Kind, e.Site, e.Eval)
}

// IsInjected reports whether err is (or wraps) an *InjectedError.
func IsInjected(err error) bool {
	var ie *InjectedError
	return errors.As(err, &ie)
}

// rule is one site's parsed schedule entry.
type rule struct {
	kind  Kind
	prob  float64 // fire probability per evaluation, (0, 1]
	times uint64  // max fires; 0 = unlimited
	after uint64  // evaluations skipped before the rule becomes eligible
	delay time.Duration
}

func (r rule) spec() string {
	var b strings.Builder
	b.WriteString(r.kind.String())
	if r.prob < 1 {
		fmt.Fprintf(&b, ":p=%g", r.prob)
	}
	if r.times > 0 {
		fmt.Fprintf(&b, ":n=%d", r.times)
	}
	if r.after > 0 {
		fmt.Fprintf(&b, ":after=%d", r.after)
	}
	if r.kind == KindDelay {
		fmt.Fprintf(&b, ":d=%s", r.delay)
	}
	return b.String()
}

// siteState is a site's rule plus its live counters.
type siteState struct {
	rule     rule
	siteHash uint64        // FNV-1a of the site name, fixed at Parse
	evals    atomic.Uint64 // evaluations so far
	fired    atomic.Uint64 // fires so far
}

// Registry is an armed set of failpoint rules. The zero of its pointer type
// — a nil *Registry — is the disarmed registry: every method is safe and
// free on it, so call sites never branch on nil themselves.
//
// A Registry's rule set is immutable after Parse; only the per-site counters
// advance, atomically, so one Registry may serve concurrent sites.
type Registry struct {
	seed  uint64
	sites map[Site]*siteState
	// obs, when non-nil, observes every site evaluation (fired or not) —
	// the bridge to externally owned metrics. Set once via SetObserver
	// before the registry is shared across goroutines.
	obs func(site Site, fired bool)
}

// SetObserver installs a callback observing every evaluation of every armed
// site: fired reports whether the rule fired. The callback must be fast and
// allocation-free (it runs on the instrumented hot paths) and must be
// installed before the registry is used concurrently. A nil registry
// ignores the call.
func (r *Registry) SetObserver(fn func(site Site, fired bool)) {
	if r == nil {
		return
	}
	r.obs = fn
}

// Parse builds a Registry from a schedule spec (see the package comment for
// the grammar) and a seed. An empty spec yields a valid, armed-but-empty
// registry; callers that want a disarmed registry should use nil instead.
func Parse(spec string, seed uint64) (*Registry, error) {
	r := &Registry{seed: seed, sites: make(map[Site]*siteState)}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, rest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("faults: entry %q is not site=kind[:param...]", entry)
		}
		site = strings.TrimSpace(site)
		if !knownSite(Site(site)) {
			return nil, fmt.Errorf("faults: unknown site %q (valid: %v)", site, Sites)
		}
		if _, dup := r.sites[Site(site)]; dup {
			return nil, fmt.Errorf("faults: site %q listed twice", site)
		}
		fields := strings.Split(rest, ":")
		kind, err := parseKind(strings.TrimSpace(fields[0]))
		if err != nil {
			return nil, err
		}
		ru := rule{kind: kind, prob: 1}
		if kind == KindDelay {
			ru.delay = time.Millisecond
		}
		for _, f := range fields[1:] {
			key, val, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("faults: %s: param %q is not key=value", site, f)
			}
			switch key {
			case "p":
				p, err := strconv.ParseFloat(val, 64)
				if err != nil || p <= 0 || p > 1 {
					return nil, fmt.Errorf("faults: %s: p=%q must be a float in (0, 1]", site, val)
				}
				ru.prob = p
			case "n":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: %s: n=%q must be a non-negative integer", site, val)
				}
				ru.times = n
			case "after":
				n, err := strconv.ParseUint(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: %s: after=%q must be a non-negative integer", site, val)
				}
				ru.after = n
			case "d":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: %s: d=%q must be a non-negative duration", site, val)
				}
				ru.delay = d
			default:
				return nil, fmt.Errorf("faults: %s: unknown param %q (valid: p, n, after, d)", site, key)
			}
		}
		h := fnv.New64a()
		io.WriteString(h, site)
		r.sites[Site(site)] = &siteState{rule: ru, siteHash: h.Sum64()}
	}
	return r, nil
}

// EnvVar and EnvSeedVar are the environment variables FromEnv reads.
const (
	EnvVar     = "LAPERM_FAULTS"
	EnvSeedVar = "LAPERM_FAULTS_SEED"
)

// FromEnv builds a Registry from LAPERM_FAULTS / LAPERM_FAULTS_SEED.
// An unset or empty LAPERM_FAULTS returns (nil, nil): disarmed.
func FromEnv() (*Registry, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	if v := os.Getenv(EnvSeedVar); v != "" {
		s, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faults: %s=%q is not an unsigned integer", EnvSeedVar, v)
		}
		seed = s
	}
	return Parse(spec, seed)
}

// Seed returns the registry's seed (0 for nil).
func (r *Registry) Seed() uint64 {
	if r == nil {
		return 0
	}
	return r.seed
}

// Spec returns the registry's canonical schedule string (sites sorted), the
// form chaos harnesses log so a failing schedule replays exactly. Nil and
// empty registries return "".
func (r *Registry) Spec() string {
	if r == nil || len(r.sites) == 0 {
		return ""
	}
	names := make([]string, 0, len(r.sites))
	for s := range r.sites {
		names = append(names, string(s))
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+r.sites[Site(n)].rule.spec())
	}
	return strings.Join(parts, ";")
}

// Count is one site's evaluation/fire tally.
type Count struct {
	Evals, Fired uint64
}

// Counts snapshots every armed site's tallies (nil for a nil registry).
func (r *Registry) Counts() map[Site]Count {
	if r == nil {
		return nil
	}
	out := make(map[Site]Count, len(r.sites))
	for s, st := range r.sites {
		out[s] = Count{Evals: st.evals.Load(), Fired: st.fired.Load()}
	}
	return out
}

// splitmix64 is the avalanche mixer behind the deterministic fire decision.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide evaluates one site hit, returning the fired rule and the evaluation
// index. The decision for evaluation n is a pure function of (seed, site, n);
// the times cap is enforced with a CAS so concurrent evaluations never
// over-fire.
func (st *siteState) decide(seed uint64) (rule, uint64, bool) {
	n := st.evals.Add(1) - 1
	ru := st.rule
	if n < ru.after {
		return rule{}, n, false
	}
	if ru.prob < 1 {
		u := splitmix64(seed ^ st.siteHash ^ splitmix64(n))
		if float64(u>>11)/(1<<53) >= ru.prob {
			return rule{}, n, false
		}
	}
	if ru.times > 0 {
		for {
			f := st.fired.Load()
			if f >= ru.times {
				return rule{}, n, false
			}
			if st.fired.CompareAndSwap(f, f+1) {
				break
			}
		}
	} else {
		st.fired.Add(1)
	}
	return ru, n, true
}

// Hit evaluates a site: it sleeps through delay faults, panics with an
// *InjectedError for panic faults, and returns an *InjectedError for error
// (and partial) faults. On a nil registry, an unarmed site, or a rule that
// does not fire, it returns nil without allocating.
func (r *Registry) Hit(site Site) error {
	if r == nil {
		return nil
	}
	st, ok := r.sites[site]
	if !ok {
		return nil
	}
	ru, n, fired := st.decide(r.seed)
	if r.obs != nil {
		r.obs(site, fired)
	}
	if !fired {
		return nil
	}
	switch ru.kind {
	case KindDelay:
		time.Sleep(ru.delay)
		return nil
	case KindPanic:
		panic(&InjectedError{Site: site, Kind: KindPanic, Eval: n})
	}
	return &InjectedError{Site: site, Kind: ru.kind, Eval: n}
}

// Writer arms a site on a write path: when the site's rule fires, the
// returned writer misbehaves per the rule's kind — partial writes half of
// the first Write then fails, error fails immediately, panic panics on the
// first Write, and delay sleeps once before the first Write. When nothing
// fires, w is returned unchanged (and a nil registry returns w directly).
func (r *Registry) Writer(site Site, w io.Writer) io.Writer {
	if r == nil {
		return w
	}
	st, ok := r.sites[site]
	if !ok {
		return w
	}
	ru, n, fired := st.decide(r.seed)
	if r.obs != nil {
		r.obs(site, fired)
	}
	if !fired {
		return w
	}
	return &faultWriter{w: w, rule: ru, err: &InjectedError{Site: site, Kind: ru.kind, Eval: n}}
}

// faultWriter applies one fired rule to a write stream.
type faultWriter struct {
	w     io.Writer
	rule  rule
	err   *InjectedError
	wrote bool
	dead  bool
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.dead {
		return 0, fw.err
	}
	switch fw.rule.kind {
	case KindDelay:
		if !fw.wrote {
			fw.wrote = true
			time.Sleep(fw.rule.delay)
		}
		return fw.w.Write(p)
	case KindPanic:
		panic(fw.err)
	case KindPartial:
		fw.dead = true
		n, err := fw.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fw.err
	}
	fw.dead = true
	return 0, fw.err
}
