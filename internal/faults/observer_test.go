package faults

import (
	"sync/atomic"
	"testing"
)

// TestObserverSeesEvalsAndFires pins the SetObserver contract: the hook runs
// on every evaluation of an armed site, with fired reporting whether the
// rule triggered, and unarmed sites never reach it.
func TestObserverSeesEvalsAndFires(t *testing.T) {
	r := mustParse(t, "serve.cache.write=error:n=2", 1)
	var evals, fires atomic.Uint64
	r.SetObserver(func(site Site, fired bool) {
		if site != SiteCacheWrite {
			t.Errorf("observer saw unexpected site %s", site)
		}
		evals.Add(1)
		if fired {
			fires.Add(1)
		}
	})
	for i := 0; i < 5; i++ {
		r.Hit(SiteCacheWrite)
		r.Hit(SiteSubmit) // unarmed: must not invoke the observer
	}
	if got := evals.Load(); got != 5 {
		t.Fatalf("observer evals = %d, want 5", got)
	}
	if got := fires.Load(); got != 2 {
		t.Fatalf("observer fires = %d, want 2 (n=2 cap)", got)
	}
}

// TestObserverZeroAlloc pins that attaching an observer keeps the armed-quiet
// hit path allocation-free — the observer rides the existing zero-alloc
// contract, it must not break it.
func TestObserverZeroAlloc(t *testing.T) {
	r := mustParse(t, "serve.cache.write=error:after=1000000000", 1)
	var count atomic.Uint64
	r.SetObserver(func(Site, bool) { count.Add(1) })
	if n := testing.AllocsPerRun(1000, func() {
		if err := r.Hit(SiteCacheWrite); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("armed site with observer allocates %v per hit", n)
	}
	if count.Load() == 0 {
		t.Fatal("observer never invoked")
	}
}
