package faults

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func mustParse(t *testing.T, spec string, seed uint64) *Registry {
	t.Helper()
	r, err := Parse(spec, seed)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return r
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"no.such.site=error",
		"serve.cache.write=explode",
		"serve.cache.write=error:p=2",
		"serve.cache.write=error:p=0",
		"serve.cache.write=error:bogus",
		"serve.cache.write=error:n=x",
		"serve.cache.write=delay:d=-1s",
		"serve.cache.write=error;serve.cache.write=panic",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

// TestErrorFaultFiresAndExhausts: an n-limited error rule fires exactly n
// times, as *InjectedError, then goes quiet.
func TestErrorFaultFiresAndExhausts(t *testing.T) {
	r := mustParse(t, "serve.cache.write=error:n=2", 1)
	fired := 0
	for i := 0; i < 10; i++ {
		if err := r.Hit(SiteCacheWrite); err != nil {
			fired++
			var ie *InjectedError
			if !errors.As(err, &ie) || ie.Site != SiteCacheWrite {
				t.Fatalf("err = %T %v, want *InjectedError at %s", err, err, SiteCacheWrite)
			}
			if !IsInjected(err) {
				t.Fatal("IsInjected = false for an injected error")
			}
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want exactly 2", fired)
	}
	if c := r.Counts()[SiteCacheWrite]; c.Evals != 10 || c.Fired != 2 {
		t.Fatalf("counts = %+v, want 10 evals / 2 fired", c)
	}
}

// TestUnarmedSiteIsInert: sites not in the spec never fire.
func TestUnarmedSiteIsInert(t *testing.T) {
	r := mustParse(t, "serve.cache.write=error", 1)
	for i := 0; i < 100; i++ {
		if err := r.Hit(SiteSSEFlush); err != nil {
			t.Fatalf("unarmed site fired: %v", err)
		}
	}
}

// TestPanicFaultPanicsWithInjectedError: the panic value is the structured
// *InjectedError, so recovery layers can classify it as transient.
func TestPanicFaultPanicsWithInjectedError(t *testing.T) {
	r := mustParse(t, "exp.cell.run=panic:n=1", 1)
	defer func() {
		v := recover()
		ie, ok := v.(*InjectedError)
		if !ok || ie.Site != SiteCellRun || ie.Kind != KindPanic {
			t.Fatalf("panic value = %T %v, want *InjectedError at %s", v, v, SiteCellRun)
		}
	}()
	r.Hit(SiteCellRun)
	t.Fatal("panic fault did not panic")
}

// TestDelayFaultSleeps: delay faults add latency, and return nil.
func TestDelayFaultSleeps(t *testing.T) {
	r := mustParse(t, "gpu.run.poll=delay:d=20ms:n=1", 1)
	start := time.Now()
	if err := r.Hit(SiteGPURunPoll); err != nil {
		t.Fatalf("delay fault returned error: %v", err)
	}
	if el := time.Since(start); el < 15*time.Millisecond {
		t.Fatalf("delay fault slept %v, want >= 20ms", el)
	}
	if err := r.Hit(SiteGPURunPoll); err != nil {
		t.Fatal(err)
	}
}

// TestProbabilisticFiresAreDeterministic: the same (spec, seed) produces the
// same fire pattern on every replay, and a different seed a different one.
func TestProbabilisticFiresAreDeterministic(t *testing.T) {
	pattern := func(seed uint64) string {
		r := mustParse(t, "serve.cache.read=error:p=0.5", seed)
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if r.Hit(SiteCacheRead) != nil {
				b.WriteByte('x')
			} else {
				b.WriteByte('.')
			}
		}
		return b.String()
	}
	p1, p2 := pattern(7), pattern(7)
	if p1 != p2 {
		t.Fatalf("same seed diverged:\n%s\n%s", p1, p2)
	}
	if p3 := pattern(8); p3 == p1 {
		t.Fatalf("seeds 7 and 8 produced identical patterns: %s", p1)
	}
	fires := strings.Count(p1, "x")
	if fires < 16 || fires > 48 {
		t.Fatalf("p=0.5 fired %d/64 times; decision function looks biased", fires)
	}
}

// TestPartialWriterTearsFirstWrite: a partial fault writes half the first
// buffer, then fails with the injected error; nothing further lands.
func TestPartialWriterTearsFirstWrite(t *testing.T) {
	r := mustParse(t, "serve.cache.write=partial:n=1", 1)
	var buf bytes.Buffer
	w := r.Writer(SiteCacheWrite, &buf)
	n, err := w.Write([]byte("0123456789"))
	if n != 5 || !IsInjected(err) {
		t.Fatalf("torn write = (%d, %v), want (5, injected error)", n, err)
	}
	if buf.String() != "01234" {
		t.Fatalf("buffer = %q, want the first half only", buf.String())
	}
	if _, err := w.Write([]byte("more")); !IsInjected(err) {
		t.Fatalf("write after tear = %v, want the injected error again", err)
	}
	// The rule is exhausted: the next wrap is a clean pass-through.
	var buf2 bytes.Buffer
	w2 := r.Writer(SiteCacheWrite, &buf2)
	if _, err := w2.Write([]byte("ok")); err != nil || buf2.String() != "ok" {
		t.Fatalf("exhausted writer site still faulty: %q, %v", buf2.String(), err)
	}
}

// TestSpecRoundTrips: Spec() canonicalizes into a form Parse accepts with
// identical behaviour — the replay contract for chaos artifacts.
func TestSpecRoundTrips(t *testing.T) {
	in := "serve.sse.flush=error:p=0.25:n=3;gpu.run.poll=delay:d=2ms;exp.cell.run=panic:after=1"
	r := mustParse(t, in, 9)
	r2 := mustParse(t, r.Spec(), 9)
	if r.Spec() != r2.Spec() {
		t.Fatalf("Spec round-trip diverged:\n%s\n%s", r.Spec(), r2.Spec())
	}
	if (*Registry)(nil).Spec() != "" {
		t.Fatal("nil registry Spec not empty")
	}
}

// TestFromEnv: the env arming path, including the disarmed default.
func TestFromEnv(t *testing.T) {
	t.Setenv(EnvVar, "")
	if r, err := FromEnv(); err != nil || r != nil {
		t.Fatalf("empty env: (%v, %v), want (nil, nil)", r, err)
	}
	t.Setenv(EnvVar, "serve.submit=error:n=1")
	t.Setenv(EnvSeedVar, "42")
	r, err := FromEnv()
	if err != nil || r == nil || r.Seed() != 42 {
		t.Fatalf("FromEnv = (%v, %v), want an armed registry with seed 42", r, err)
	}
	t.Setenv(EnvSeedVar, "nope")
	if _, err := FromEnv(); err == nil {
		t.Fatal("bad seed accepted")
	}
}

// TestDisarmedSitesZeroAlloc is the acceptance criterion for disarmed cost:
// every catalog site, hit through a nil registry (the disarmed wiring) and
// through an armed registry in which the site is quiet, performs zero
// allocations per call.
func TestDisarmedSitesZeroAlloc(t *testing.T) {
	var nilReg *Registry
	armed := mustParse(t, "serve.cache.write=error:after=1000000000", 1)
	for _, site := range Sites {
		site := site
		if n := testing.AllocsPerRun(1000, func() {
			if err := nilReg.Hit(site); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("nil registry: site %s allocates %v per hit", site, n)
		}
		if n := testing.AllocsPerRun(1000, func() {
			if err := armed.Hit(site); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("armed-quiet registry: site %s allocates %v per hit", site, n)
		}
	}
	var buf bytes.Buffer
	if n := testing.AllocsPerRun(1000, func() {
		if w := nilReg.Writer(SiteCacheWrite, &buf); w != &buf {
			t.Fatal("nil registry Writer did not pass through")
		}
	}); n != 0 {
		t.Errorf("nil registry: Writer allocates %v per wrap", n)
	}
}

// BenchmarkDisarmedHit pins the disarmed fast path for profiling; its
// allocs/op must report 0.
func BenchmarkDisarmedHit(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.Hit(SiteGPURunPoll); err != nil {
			b.Fatal(err)
		}
	}
}
