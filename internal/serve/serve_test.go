package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// tinySpec is the test workload: small enough to finish in well under a
// second, with sampling and attribution on so every artifact has content.
const tinySpec = `{"workload":"amr","scale":"tiny","sample_every":256,"attribution":true}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) (int, jobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view jobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode submit response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, view
}

func getStatus(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint returned %d", resp.StatusCode)
	}
	var view jobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		view := getStatus(t, ts, id)
		if view.State == StateDone || view.State == StateFailed {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not reach a terminal state", id)
	return jobView{}
}

func getArtifact(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/artifacts/" + id + "/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact %s returned %d", name, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func getMetrics(t *testing.T, ts *httptest.Server) metricsView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsView
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSubmitRunCacheHit is the acceptance path: the first submission
// executes; the second identical one is answered from the cache (visible in
// /metrics) without executing again, and both name the same artifacts.
func TestSubmitRunCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()

	code, view := submit(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", code)
	}
	if len(view.ID) != 64 {
		t.Fatalf("run id %q is not a sha256 hex digest", view.ID)
	}
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run failed: %s (%s)", final.Error, final.ErrorKind)
	}
	if len(final.Result) == 0 {
		t.Fatal("done view has no embedded result")
	}

	code2, view2 := submit(t, ts, tinySpec)
	if code2 != http.StatusOK {
		t.Fatalf("second submit: status %d, want 200", code2)
	}
	if view2.ID != view.ID {
		t.Fatalf("identical specs got different ids: %s vs %s", view.ID, view2.ID)
	}
	if view2.State != StateDone || len(view2.Result) == 0 {
		t.Fatalf("second submit not served from cache: %+v", view2)
	}

	m := getMetrics(t, ts)
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.JobsDone != 1 {
		t.Fatalf("metrics = hits %d, misses %d, done %d; want 1/1/1 (one execution, one hit)",
			m.CacheHits, m.CacheMisses, m.JobsDone)
	}
	if m.CacheHitRatio != 0.5 {
		t.Fatalf("cache_hit_ratio = %v, want 0.5", m.CacheHitRatio)
	}
	if m.SimCycles == 0 {
		t.Fatal("metrics report zero simulated cycles after a completed run")
	}

	for _, name := range ArtifactNames {
		if len(getArtifact(t, ts, view.ID, name)) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
}

// TestCachedArtifactsByteIdentical: the same spec computed by two
// independent servers (separate cache directories) yields byte-identical
// artifacts — the determinism contract that makes the cache safe to trust.
func TestCachedArtifactsByteIdentical(t *testing.T) {
	sA, tsA := newTestServer(t, Config{Workers: 1})
	sA.Start()
	sB, tsB := newTestServer(t, Config{Workers: 1})
	sB.Start()

	_, viewA := submit(t, tsA, tinySpec)
	_, viewB := submit(t, tsB, tinySpec)
	if viewA.ID != viewB.ID {
		t.Fatalf("ids diverged: %s vs %s", viewA.ID, viewB.ID)
	}
	if fa := waitTerminal(t, tsA, viewA.ID); fa.State != StateDone {
		t.Fatalf("server A run failed: %s", fa.Error)
	}
	if fb := waitTerminal(t, tsB, viewB.ID); fb.State != StateDone {
		t.Fatalf("server B run failed: %s", fb.Error)
	}
	for _, name := range ArtifactNames {
		a := getArtifact(t, tsA, viewA.ID, name)
		b := getArtifact(t, tsB, viewB.ID, name)
		if !bytes.Equal(a, b) {
			t.Errorf("artifact %s differs between a cached and a fresh run (%d vs %d bytes)",
				name, len(a), len(b))
		}
	}
}

// TestInFlightCoalescing: a submission identical to a job that is still
// running attaches to it instead of executing again.
func TestInFlightCoalescing(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ready := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testBeforeRun = func(*Job) {
		once.Do(func() { close(ready) })
		<-release
	}
	s.Start()

	code1, view1 := submit(t, ts, tinySpec)
	if code1 != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code1)
	}
	<-ready // the job is now running and held

	code2, view2 := submit(t, ts, tinySpec)
	if code2 != http.StatusOK || view2.ID != view1.ID || view2.State != StateRunning {
		t.Fatalf("second submit did not coalesce: status %d, view %+v", code2, view2)
	}
	close(release)

	if final := waitTerminal(t, ts, view1.ID); final.State != StateDone {
		t.Fatalf("run failed: %s", final.Error)
	}
	m := getMetrics(t, ts)
	if m.Coalesced != 1 || m.JobsDone != 1 || m.Submissions != 2 {
		t.Fatalf("metrics = coalesced %d, done %d, submissions %d; want 1/1/2",
			m.Coalesced, m.JobsDone, m.Submissions)
	}
}

// TestEventsSSE: the events endpoint streams state transitions as SSE and
// terminates once the job is done.
func TestEventsSSE(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ready := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testBeforeRun = func(*Job) {
		once.Do(func() { close(ready) })
		<-release
	}
	s.Start()

	_, view := submit(t, ts, tinySpec)
	<-ready

	resp, err := http.Get(ts.URL + "/v1/runs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	close(release)

	var states []string
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "state":
			var v jobView
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
				t.Fatalf("bad state payload: %v", err)
			}
			states = append(states, string(v.State))
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if len(states) == 0 || states[0] != string(StateRunning) {
		t.Fatalf("states = %v, want a running snapshot first", states)
	}
	if last := states[len(states)-1]; last != string(StateDone) {
		t.Fatalf("states = %v, want a final done event", states)
	}
}

// TestSSEAfterCompletion: attaching to an already-finished job yields the
// terminal snapshot and a closed stream, not a hang.
func TestSSEAfterCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)

	resp, err := http.Get(ts.URL + "/v1/runs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"state":"done"`) {
		t.Fatalf("snapshot stream missing done state: %q", buf.String())
	}
}

func TestSubmitUnknownWorkload(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Start()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"nope"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var body apiError
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Kind != ErrKindBadRequest {
		t.Fatalf("error kind = %q, want %q", body.Kind, ErrKindBadRequest)
	}
	if body.Retryable {
		t.Fatalf("bad-request error marked retryable: %+v", body)
	}
	if len(body.ValidWorkloads) == 0 {
		t.Fatalf("error body does not list valid workloads: %+v", body)
	}
}

func TestSubmitRejectsMalformedSpecs(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Start()
	for _, body := range []string{
		`{not json`,
		`{"workload":"amr","scael":"tiny"}`, // unknown field
		`{"workload":"amr","spec_version":99}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit(%q): status %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestStatusUnknownRun(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Start()
	resp, err := http.Get(ts.URL + "/v1/runs/" + strings.Repeat("0", 64))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// TestJobDeadline: a per-job wall-clock budget that expires surfaces as a
// structured "deadline" failure, and the failed run is not cached.
func TestJobDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobDeadline: time.Nanosecond})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateFailed || final.ErrorKind != KindDeadline {
		t.Fatalf("state %s kind %q, want failed/deadline (%s)", final.State, final.ErrorKind, final.Error)
	}
	if st := s.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("failed run was cached: %+v", st)
	}
}

// TestMaxCyclesCap: the server-wide cycle budget maps onto the engine's
// *CycleLimitError ("cycle-limit"), and the capped failure is not cached.
func TestMaxCyclesCap(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxCycles: 100})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateFailed || final.ErrorKind != KindCycleLimit {
		t.Fatalf("state %s kind %q, want failed/cycle-limit (%s)", final.State, final.ErrorKind, final.Error)
	}
	if st := s.Cache().Stats(); st.Entries != 0 {
		t.Fatalf("cycle-limited run was cached: %+v", st)
	}
}

// TestFailedRunRetries: failures are not cached, so resubmitting the same
// spec executes again rather than replaying the failure.
func TestFailedRunRetries(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxCycles: 100})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	if final := waitTerminal(t, ts, view.ID); final.State != StateFailed {
		t.Fatalf("expected the capped run to fail, got %s", final.State)
	}
	code, view2 := submit(t, ts, tinySpec)
	if code != http.StatusAccepted || view2.ID != view.ID {
		t.Fatalf("resubmit after failure: status %d id %s, want 202 and the same id", code, view2.ID)
	}
	waitTerminal(t, ts, view2.ID)
	if m := getMetrics(t, ts); m.CacheMisses != 2 {
		t.Fatalf("cache_misses = %d, want 2 (both submissions executed)", m.CacheMisses)
	}
}

// TestDrainRejectsNewRuns: after Drain, submissions needing execution get
// 503 while status, artifacts, and cached answers keep working.
func TestDrainRejectsNewRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"bht","scale":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	// Cached answers still flow.
	code, cached := submit(t, ts, tinySpec)
	if code != http.StatusOK || cached.State != StateDone {
		t.Fatalf("cached submit while draining: status %d state %s", code, cached.State)
	}
	if getStatus(t, ts, view.ID).State != StateDone {
		t.Fatal("status endpoint broken while draining")
	}
}

// TestQueueFull: submissions beyond the queue depth are shed with 429 +
// Retry-After (a transient, retryable condition — distinct from the 503 a
// draining server answers) instead of blocking the handler, and /readyz
// reports not-ready while saturated.
func TestQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	ready := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testBeforeRun = func(*Job) {
		once.Do(func() { close(ready) })
		<-release
	}
	s.Start()
	defer close(release)

	submit(t, ts, tinySpec) // occupies the single worker
	<-ready
	code, _ := submit(t, ts, `{"workload":"bht","scale":"tiny"}`)
	if code != http.StatusAccepted {
		t.Fatalf("second submit: status %d, want 202 (fills the queue)", code)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"workload":"bfs-citation","scale":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	ready2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready2.Body.Close()
	if ready2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while saturated: status %d, want 503", ready2.StatusCode)
	}
}

// TestCloseCancelsRunningJob: shutdown cancellation surfaces as a
// structured "canceled" failure on the in-flight job.
func TestCloseCancelsRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ready := make(chan struct{})
	var once sync.Once
	s.testBeforeRun = func(*Job) {
		once.Do(func() { close(ready) })
		<-s.baseCtx.Done() // hold the job until shutdown lands
	}
	s.Start()
	_, view := submit(t, ts, tinySpec)
	<-ready
	s.Close()
	final := getStatus(t, ts, view.ID)
	if final.State != StateFailed || final.ErrorKind != KindCanceled {
		t.Fatalf("state %s kind %q, want failed/canceled (%s)", final.State, final.ErrorKind, final.Error)
	}
}

// TestCacheSurvivesRestart: a second server over the same cache directory
// answers the same spec without executing.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	s1.Start()
	_, view := submit(t, ts1, tinySpec)
	waitTerminal(t, ts1, view.ID)
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	s2.Start()
	code, view2 := submit(t, ts2, tinySpec)
	if code != http.StatusOK || view2.State != StateDone || !view2.Cached {
		t.Fatalf("restart submit: status %d, view %+v; want a cached done answer", code, view2)
	}
	if m := getMetrics(t, ts2); m.CacheHits != 1 || m.JobsDone != 0 {
		t.Fatalf("metrics after restart = hits %d, done %d; want 1 hit, 0 executions", m.CacheHits, m.JobsDone)
	}
	// The status and events endpoints also work for disk-only entries.
	if v := getStatus(t, ts2, view.ID); v.State != StateDone {
		t.Fatalf("status of disk-only entry: %+v", v)
	}
}

// TestArtifactEndpointRejections: unknown names and ids 404 without
// touching the filesystem.
func TestArtifactEndpointRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Start()
	for _, path := range []string{
		"/v1/artifacts/" + strings.Repeat("0", 64) + "/result.json", // unknown id
		"/v1/artifacts/" + strings.Repeat("0", 64) + "/secrets.txt", // unknown name
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestConcurrentIdenticalSubmits hammers one spec from many goroutines:
// exactly one execution must happen regardless of interleaving.
func TestConcurrentIdenticalSubmits(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()
	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tinySpec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var v jobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("submission %d got id %s, others %s", i, ids[i], ids[0])
		}
	}
	waitTerminal(t, ts, ids[0])
	m := getMetrics(t, ts)
	if m.JobsDone != 1 || m.CacheMisses != 1 {
		t.Fatalf("metrics = done %d, misses %d; want exactly one execution", m.JobsDone, m.CacheMisses)
	}
	if m.Coalesced+m.CacheHits != n-1 {
		t.Fatalf("coalesced %d + hits %d != %d", m.Coalesced, m.CacheHits, n-1)
	}
}
// TestHealthz keeps the liveness probe honest.
func TestHealthz(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Start()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
}
