package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"

	"laperm/internal/spec"
)

func getDiscovery[T any](t *testing.T, ts *httptest.Server, path string) discoveryView[T] {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s returned %d", path, resp.StatusCode)
	}
	var view discoveryView[T]
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// TestDiscoveryEndpoints: the registries come back non-empty, every listed
// name round-trips through a valid RunSpec, and /v1/workloads carries the
// sweepable axis vocabulary.
func TestDiscoveryEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()

	ws := getDiscovery[workloadView](t, ts, "/v1/workloads")
	if len(ws.Items) == 0 {
		t.Fatal("no workloads listed")
	}
	if !reflect.DeepEqual(ws.AxisFields, spec.AxisFields()) {
		t.Fatalf("axis_fields = %v, want %v", ws.AxisFields, spec.AxisFields())
	}
	if len(ws.Scales) == 0 || len(ws.WarpPolicy) == 0 {
		t.Fatalf("workload discovery missing spec vocabulary: %+v", ws)
	}

	scheds := getDiscovery[schedulerView](t, ts, "/v1/schedulers")
	if len(scheds.Items) == 0 {
		t.Fatal("no schedulers listed")
	}
	models := getDiscovery[modelView](t, ts, "/v1/models")
	if len(models.Items) == 0 {
		t.Fatal("no models listed")
	}

	// Every advertised (workload, scheduler, model) combination validates.
	sp := spec.RunSpec{
		Workload:  ws.Items[0].Name,
		Scheduler: scheds.Items[len(scheds.Items)-1].Name,
		Model:     models.Items[len(models.Items)-1].Name,
	}
	if err := sp.Normalized().Validate(); err != nil {
		t.Fatalf("spec built from discovery listings does not validate: %v", err)
	}
}

// TestRunsList: GET /v1/runs pages through the job table in submission
// order with state filtering and cursor pagination.
func TestRunsList(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()

	specs := []string{
		`{"workload":"amr","scale":"tiny","sample_every":256}`,
		`{"workload":"bht","scale":"tiny","sample_every":256}`,
		`{"workload":"amr","scale":"tiny","sample_every":128}`,
	}
	var ids []string
	for _, sp := range specs {
		_, view := submit(t, ts, sp)
		ids = append(ids, view.ID)
		waitTerminal(t, ts, view.ID)
	}

	list := func(query string) runsListView {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/runs?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q returned %d", query, resp.StatusCode)
		}
		var view runsListView
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		return view
	}

	all := list("")
	if all.Total != 3 || len(all.Runs) != 3 {
		t.Fatalf("list = %d runs of %d total, want 3 of 3", len(all.Runs), all.Total)
	}
	for i, id := range ids {
		if all.Runs[i].ID != id {
			t.Fatalf("listing out of submission order: got %s at %d, want %s", all.Runs[i].ID, i, id)
		}
	}

	done := list("state=" + url.QueryEscape(string(StateDone)))
	if done.Total != 3 {
		t.Fatalf("done filter total = %d, want 3", done.Total)
	}
	if failed := list("state=failed"); failed.Total != 0 || len(failed.Runs) != 0 {
		t.Fatalf("failed filter = %+v, want empty", failed)
	}

	// Page through one run at a time.
	var paged []string
	cursor := ""
	for range 4 {
		page := list("limit=1&cursor=" + cursor)
		if len(page.Runs) != 1 {
			t.Fatalf("page after %q has %d runs, want 1", cursor, len(page.Runs))
		}
		paged = append(paged, page.Runs[0].ID)
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if !reflect.DeepEqual(paged, ids) {
		t.Fatalf("paged ids = %v, want %v", paged, ids)
	}

	if resp, err := http.Get(ts.URL + "/v1/runs?state=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus state filter returned %d, want 400", resp.StatusCode)
		}
	}
}
