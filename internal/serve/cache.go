package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"laperm/internal/exp"
	"laperm/internal/faults"
	"laperm/internal/telemetry"
)

// ResultArtifact is the artifact name that doubles as the cache entry's
// completion marker: it is always written last, so a directory holding one
// is a complete entry and a directory without one is debris from a crashed
// write and is discarded on open.
const ResultArtifact = "result.json"

// ManifestArtifact is the entry's integrity manifest: the SHA-256 of every
// artifact (including ResultArtifact), written immediately before the
// completion marker. Reads verify against it, so a truncated or corrupted
// payload — not just a missing marker — is detected before it is ever
// served, treated as a miss, and removed as debris.
const ManifestArtifact = "manifest.json"

// manifest is the on-disk schema of ManifestArtifact.
type manifest struct {
	// Artifacts maps artifact name to lowercase-hex SHA-256.
	Artifacts map[string]string `json:"artifacts"`
}

// CorruptEntryError reports a cache entry whose bytes failed integrity
// verification; the entry has already been removed when this is returned,
// so the caller's next lookup re-executes instead of serving debris.
type CorruptEntryError struct {
	// ID is the entry; Artifact the file that failed; Detail the mismatch.
	ID, Artifact, Detail string
}

func (e *CorruptEntryError) Error() string {
	return fmt.Sprintf("serve: cache entry %q corrupt at %s: %s (entry discarded)",
		e.ID, e.Artifact, e.Detail)
}

// Artifact is one named file of a cache entry.
type Artifact struct {
	// Name is the file name inside the entry directory (no separators).
	Name string
	// Write emits the artifact body.
	Write func(io.Writer) error
}

// CacheStats is a point-in-time snapshot of the cache's occupancy.
type CacheStats struct {
	// Entries and Bytes are the current entry count and their total size.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured budget (0 = unlimited).
	MaxBytes int64 `json:"max_bytes"`
	// Evictions counts entries removed to stay under the budget.
	Evictions int64 `json:"evictions"`
	// Corruptions counts entries discarded after failing integrity
	// verification on read.
	Corruptions int64 `json:"corruptions"`
}

// Cache is the content-addressed on-disk result store: one directory per
// RunSpec hash holding the run's artifacts, bounded by an LRU byte budget.
// Writes are atomic (temp file + rename via exp.WriteFileAtomic) and ordered
// so ResultArtifact lands last; readers therefore never observe a partial
// entry, even across a crash. Every read verifies the artifact's SHA-256
// against the entry's manifest: a mismatch discards the entry and surfaces
// as a *CorruptEntryError, never as served bytes.
type Cache struct {
	dir      string
	maxBytes int64
	// flts is the armed failpoint registry (nil = disarmed): sites
	// SiteCacheWrite, SiteCacheRead, SiteCacheEvict.
	flts *faults.Registry
	// readBytes / writtenBytes count artifact bytes served from and
	// committed to the cache. Nil-safe telemetry handles, wired by the
	// owning server; a standalone Cache leaves them nil at no cost.
	readBytes    *telemetry.Counter
	writtenBytes *telemetry.Counter

	mu          sync.Mutex
	entries     map[string]*cacheEntry
	clock       uint64 // LRU clock: bumped on every touch
	total       int64
	evictions   int64
	corruptions int64
}

type cacheEntry struct {
	bytes    int64
	lastUsed uint64
}

// OpenCache opens (creating if needed) the cache rooted at dir with the
// given byte budget (maxBytes <= 0 means unlimited). Existing complete
// entries — holding both the ResultArtifact completion marker and the
// integrity manifest — are indexed, ordered for LRU by their result file's
// mtime; incomplete ones are debris from a crashed write and are removed.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: cache directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create cache dir: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, entries: make(map[string]*cacheEntry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scan cache dir: %w", err)
	}
	type found struct {
		id    string
		bytes int64
		mtime int64
	}
	var scanned []found
	for _, de := range names {
		if !de.IsDir() {
			continue
		}
		id := de.Name()
		entryDir := filepath.Join(dir, id)
		st, err := os.Stat(filepath.Join(entryDir, ResultArtifact))
		if err != nil {
			// No completion marker: a crashed or in-progress write from a
			// previous process. Remove it; the run will recompute.
			os.RemoveAll(entryDir)
			continue
		}
		if _, err := os.Stat(filepath.Join(entryDir, ManifestArtifact)); err != nil {
			// No integrity manifest (pre-manifest format or a torn
			// write): unverifiable, so it is debris too.
			os.RemoveAll(entryDir)
			continue
		}
		var bytes int64
		files, err := os.ReadDir(entryDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				bytes += info.Size()
			}
		}
		scanned = append(scanned, found{id: id, bytes: bytes, mtime: st.ModTime().UnixNano()})
	}
	sort.Slice(scanned, func(i, j int) bool { return scanned[i].mtime < scanned[j].mtime })
	for _, f := range scanned {
		c.clock++
		c.entries[f.id] = &cacheEntry{bytes: f.bytes, lastUsed: c.clock}
		c.total += f.bytes
	}
	c.mu.Lock()
	c.evictFor("")
	c.mu.Unlock()
	return c, nil
}

// validID guards the filesystem: cache IDs are lowercase-hex content hashes,
// never path fragments.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Lookup reports whether a complete entry for id exists, returning its
// directory and marking it most-recently-used. Presence only — integrity is
// verified by ReadArtifact on the serving path.
func (c *Cache) Lookup(id string) (string, bool) {
	if !validID(id) {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return "", false
	}
	c.clock++
	e.lastUsed = c.clock
	return filepath.Join(c.dir, id), true
}

// readManifest loads and parses an entry's integrity manifest.
func readManifest(dir string) (manifest, error) {
	var m manifest
	raw, err := os.ReadFile(filepath.Join(dir, ManifestArtifact))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		return m, err
	}
	if m.Artifacts == nil {
		return m, fmt.Errorf("manifest lists no artifacts")
	}
	return m, nil
}

// ReadArtifact returns one artifact's bytes from a complete entry, verified
// against the entry's manifest. A hash mismatch (a truncated or corrupted
// payload) discards the whole entry and returns a *CorruptEntryError, so
// upstream treats it exactly like a miss and recomputes.
func (c *Cache) ReadArtifact(id, name string) ([]byte, error) {
	dir, ok := c.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("serve: no cache entry %q", id)
	}
	if strings.ContainsAny(name, `/\`) {
		return nil, fmt.Errorf("serve: invalid artifact name %q", name)
	}
	if err := c.flts.Hit(faults.SiteCacheRead); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return nil, err
	}
	if name == ManifestArtifact {
		return data, nil
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, c.discardCorrupt(id, ManifestArtifact, err.Error())
	}
	want, ok := man.Artifacts[name]
	if !ok {
		return nil, c.discardCorrupt(id, name, "artifact missing from manifest")
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != want {
		return nil, c.discardCorrupt(id, name,
			fmt.Sprintf("sha256 %s, manifest says %s (%d bytes)", got, want, len(data)))
	}
	c.readBytes.Add(uint64(len(data)))
	return data, nil
}

// discardCorrupt drops a corrupt entry from the index and the disk, counts
// it, and builds the structured error.
func (c *Cache) discardCorrupt(id, artifact, detail string) error {
	c.mu.Lock()
	if e, ok := c.entries[id]; ok {
		c.total -= e.bytes
		delete(c.entries, id)
	}
	c.corruptions++
	c.mu.Unlock()
	os.RemoveAll(filepath.Join(c.dir, id))
	return &CorruptEntryError{ID: id, Artifact: artifact, Detail: detail}
}

// Put writes a new entry: every artifact atomically with its SHA-256
// recorded, then the integrity manifest, then ResultArtifact last as the
// completion marker, then indexes the entry and evicts least-recently-used
// entries until the byte budget holds again. Writing an id that already
// exists is a no-op (the content address guarantees identical bytes).
func (c *Cache) Put(id string, artifacts []Artifact) error {
	if !validID(id) {
		return fmt.Errorf("serve: invalid cache id %q", id)
	}
	c.mu.Lock()
	_, exists := c.entries[id]
	c.mu.Unlock()
	if exists {
		return nil
	}
	var result *Artifact
	for i := range artifacts {
		a := &artifacts[i]
		if strings.ContainsAny(a.Name, `/\`) || a.Name == "" || a.Name == ManifestArtifact {
			return fmt.Errorf("serve: invalid artifact name %q", a.Name)
		}
		if a.Name == ResultArtifact {
			result = a
		}
	}
	if result == nil {
		return fmt.Errorf("serve: entry %q has no %s artifact", id, ResultArtifact)
	}
	entryDir := filepath.Join(c.dir, id)
	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return fmt.Errorf("serve: create cache entry: %w", err)
	}
	sums := make(map[string]string, len(artifacts))
	writeHashed := func(name string, emit func(io.Writer) error) error {
		if err := c.flts.Hit(faults.SiteCacheWrite); err != nil {
			return fmt.Errorf("serve: write artifact %s: %w", name, err)
		}
		return exp.WriteFileAtomic(filepath.Join(entryDir, name), func(w io.Writer) error {
			h := sha256.New()
			if err := emit(io.MultiWriter(c.flts.Writer(faults.SiteCacheWrite, w), h)); err != nil {
				return fmt.Errorf("serve: write artifact %s: %w", name, err)
			}
			sums[name] = hex.EncodeToString(h.Sum(nil))
			return nil
		})
	}
	for i := range artifacts {
		a := &artifacts[i]
		if a.Name == ResultArtifact {
			continue
		}
		if err := writeHashed(a.Name, a.Write); err != nil {
			return err
		}
	}
	// The result body is buffered first so its hash lands in the manifest,
	// which must be on disk before the completion marker: a crash between
	// the two leaves a marker-less directory OpenCache removes as debris.
	var resultBody bytes.Buffer
	if err := result.Write(&resultBody); err != nil {
		return fmt.Errorf("serve: write artifact %s: %w", ResultArtifact, err)
	}
	resultSum := sha256.Sum256(resultBody.Bytes())
	sums[ResultArtifact] = hex.EncodeToString(resultSum[:])
	if err := exp.WriteFileAtomic(filepath.Join(entryDir, ManifestArtifact), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(manifest{Artifacts: sums})
	}); err != nil {
		return fmt.Errorf("serve: write artifact %s: %w", ManifestArtifact, err)
	}
	if err := writeHashed(ResultArtifact, func(w io.Writer) error {
		_, err := w.Write(resultBody.Bytes())
		return err
	}); err != nil {
		return err
	}
	var bytes int64
	files, err := os.ReadDir(entryDir)
	if err != nil {
		return fmt.Errorf("serve: size cache entry: %w", err)
	}
	for _, f := range files {
		if info, err := f.Info(); err == nil {
			bytes += info.Size()
		}
	}
	c.writtenBytes.Add(uint64(bytes))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.entries[id] = &cacheEntry{bytes: bytes, lastUsed: c.clock}
	c.total += bytes
	c.evictFor(id)
	return nil
}

// evictFor removes least-recently-used entries until the budget holds,
// sparing the entry named keep (the one just written — callers are about to
// read it). Called with c.mu held. An injected eviction fault skips the
// disk removal — a RemoveAll that failed — leaving an orphaned complete
// entry a later OpenCache re-indexes; the in-memory index stays consistent
// either way.
func (c *Cache) evictFor(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.total > c.maxBytes {
		victim := ""
		var oldest uint64
		for id, e := range c.entries {
			if id == keep {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = id, e.lastUsed
			}
		}
		if victim == "" {
			return // only the spared entry remains; it may exceed the budget
		}
		c.total -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions++
		if err := c.flts.Hit(faults.SiteCacheEvict); err == nil {
			os.RemoveAll(filepath.Join(c.dir, victim))
		}
	}
}

// Stats returns an occupancy snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     len(c.entries),
		Bytes:       c.total,
		MaxBytes:    c.maxBytes,
		Evictions:   c.evictions,
		Corruptions: c.corruptions,
	}
}
