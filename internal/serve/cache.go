package serve

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"laperm/internal/exp"
)

// ResultArtifact is the artifact name that doubles as the cache entry's
// completion marker: it is always written last, so a directory holding one
// is a complete entry and a directory without one is debris from a crashed
// write and is discarded on open.
const ResultArtifact = "result.json"

// Artifact is one named file of a cache entry.
type Artifact struct {
	// Name is the file name inside the entry directory (no separators).
	Name string
	// Write emits the artifact body.
	Write func(io.Writer) error
}

// CacheStats is a point-in-time snapshot of the cache's occupancy.
type CacheStats struct {
	// Entries and Bytes are the current entry count and their total size.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// MaxBytes is the configured budget (0 = unlimited).
	MaxBytes int64 `json:"max_bytes"`
	// Evictions counts entries removed to stay under the budget.
	Evictions int64 `json:"evictions"`
}

// Cache is the content-addressed on-disk result store: one directory per
// RunSpec hash holding the run's artifacts, bounded by an LRU byte budget.
// Writes are atomic (temp file + rename via exp.WriteFileAtomic) and ordered
// so ResultArtifact lands last; readers therefore never observe a partial
// entry, even across a crash.
type Cache struct {
	dir      string
	maxBytes int64

	mu        sync.Mutex
	entries   map[string]*cacheEntry
	clock     uint64 // LRU clock: bumped on every touch
	total     int64
	evictions int64
}

type cacheEntry struct {
	bytes    int64
	lastUsed uint64
}

// OpenCache opens (creating if needed) the cache rooted at dir with the
// given byte budget (maxBytes <= 0 means unlimited). Existing complete
// entries are indexed — ordered for LRU by their result file's mtime — and
// incomplete ones (no ResultArtifact) are removed.
func OpenCache(dir string, maxBytes int64) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("serve: cache directory is required")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create cache dir: %w", err)
	}
	c := &Cache{dir: dir, maxBytes: maxBytes, entries: make(map[string]*cacheEntry)}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("serve: scan cache dir: %w", err)
	}
	type found struct {
		id    string
		bytes int64
		mtime int64
	}
	var scanned []found
	for _, de := range names {
		if !de.IsDir() {
			continue
		}
		id := de.Name()
		entryDir := filepath.Join(dir, id)
		st, err := os.Stat(filepath.Join(entryDir, ResultArtifact))
		if err != nil {
			// No completion marker: a crashed or in-progress write from a
			// previous process. Remove it; the run will recompute.
			os.RemoveAll(entryDir)
			continue
		}
		var bytes int64
		files, err := os.ReadDir(entryDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				bytes += info.Size()
			}
		}
		scanned = append(scanned, found{id: id, bytes: bytes, mtime: st.ModTime().UnixNano()})
	}
	sort.Slice(scanned, func(i, j int) bool { return scanned[i].mtime < scanned[j].mtime })
	for _, f := range scanned {
		c.clock++
		c.entries[f.id] = &cacheEntry{bytes: f.bytes, lastUsed: c.clock}
		c.total += f.bytes
	}
	c.mu.Lock()
	c.evictFor("")
	c.mu.Unlock()
	return c, nil
}

// validID guards the filesystem: cache IDs are lowercase-hex content hashes,
// never path fragments.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// Lookup reports whether a complete entry for id exists, returning its
// directory and marking it most-recently-used.
func (c *Cache) Lookup(id string) (string, bool) {
	if !validID(id) {
		return "", false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[id]
	if !ok {
		return "", false
	}
	c.clock++
	e.lastUsed = c.clock
	return filepath.Join(c.dir, id), true
}

// ReadArtifact returns one artifact's bytes from a complete entry.
func (c *Cache) ReadArtifact(id, name string) ([]byte, error) {
	dir, ok := c.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("serve: no cache entry %q", id)
	}
	if strings.ContainsAny(name, `/\`) {
		return nil, fmt.Errorf("serve: invalid artifact name %q", name)
	}
	return os.ReadFile(filepath.Join(dir, name))
}

// Put writes a new entry: every artifact atomically, ResultArtifact last as
// the completion marker, then indexes the entry and evicts least-recently-
// used entries until the byte budget holds again. Writing an id that already
// exists is a no-op (the content address guarantees identical bytes).
func (c *Cache) Put(id string, artifacts []Artifact) error {
	if !validID(id) {
		return fmt.Errorf("serve: invalid cache id %q", id)
	}
	c.mu.Lock()
	_, exists := c.entries[id]
	c.mu.Unlock()
	if exists {
		return nil
	}
	entryDir := filepath.Join(c.dir, id)
	if err := os.MkdirAll(entryDir, 0o755); err != nil {
		return fmt.Errorf("serve: create cache entry: %w", err)
	}
	var result *Artifact
	for i := range artifacts {
		a := artifacts[i]
		if strings.ContainsAny(a.Name, `/\`) || a.Name == "" {
			return fmt.Errorf("serve: invalid artifact name %q", a.Name)
		}
		if a.Name == ResultArtifact {
			result = &artifacts[i]
			continue
		}
		if err := exp.WriteFileAtomic(filepath.Join(entryDir, a.Name), a.Write); err != nil {
			return fmt.Errorf("serve: write artifact %s: %w", a.Name, err)
		}
	}
	if result == nil {
		return fmt.Errorf("serve: entry %q has no %s artifact", id, ResultArtifact)
	}
	if err := exp.WriteFileAtomic(filepath.Join(entryDir, ResultArtifact), result.Write); err != nil {
		return fmt.Errorf("serve: write artifact %s: %w", ResultArtifact, err)
	}
	var bytes int64
	files, err := os.ReadDir(entryDir)
	if err != nil {
		return fmt.Errorf("serve: size cache entry: %w", err)
	}
	for _, f := range files {
		if info, err := f.Info(); err == nil {
			bytes += info.Size()
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock++
	c.entries[id] = &cacheEntry{bytes: bytes, lastUsed: c.clock}
	c.total += bytes
	c.evictFor(id)
	return nil
}

// evictFor removes least-recently-used entries until the budget holds,
// sparing the entry named keep (the one just written — callers are about to
// read it). Called with c.mu held.
func (c *Cache) evictFor(keep string) {
	if c.maxBytes <= 0 {
		return
	}
	for c.total > c.maxBytes {
		victim := ""
		var oldest uint64
		for id, e := range c.entries {
			if id == keep {
				continue
			}
			if victim == "" || e.lastUsed < oldest {
				victim, oldest = id, e.lastUsed
			}
		}
		if victim == "" {
			return // only the spared entry remains; it may exceed the budget
		}
		c.total -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.evictions++
		os.RemoveAll(filepath.Join(c.dir, victim))
	}
}

// Stats returns an occupancy snapshot.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Bytes:     c.total,
		MaxBytes:  c.maxBytes,
		Evictions: c.evictions,
	}
}
