package serve

import (
	"sync"

	"laperm/internal/telemetry"
)

// Event is one SSE payload: a state transition, a retry notice, a batch
// progress tick, a timeline sample from a running simulation, or a sweep's
// per-cell completion notice. ID is the stream-scoped monotonic SSE id;
// clients resume a dropped stream by replaying everything after their
// Last-Event-ID.
type Event struct {
	ID   uint64
	Type string // "state", "retry", "progress", "sample", "cell"
	Data any
}

// eventHistoryCap bounds each stream's replay ring. A tiny run emits a
// handful of state transitions plus its timeline samples; 1024 comfortably
// covers a reconnect window without letting a sample-heavy run (or a large
// sweep's cell feed) grow without bound.
const eventHistoryCap = 1024

// hub is the publish/subscribe core shared by jobs and sweeps: monotonic
// event ids, a bounded replay ring for Last-Event-ID resumes, and
// drop-on-full delivery so a slow SSE consumer never stalls the publisher.
// Embedding types guard their own state with hub.mu too — one lock per
// stream, promoted as (e.g.) j.mu.
type hub struct {
	mu      sync.Mutex
	subs    map[chan Event]struct{}
	lastID  uint64  // last SSE event id assigned
	history []Event // replay ring for Last-Event-ID resumes

	// sseEvents / sseDropped, set at creation, count event publishes and
	// drops caused by lagging subscribers. Nil-safe (telemetry.Counter
	// methods accept nil receivers).
	sseEvents  *telemetry.Counter
	sseDropped *telemetry.Counter
}

func newHub() hub {
	return hub{subs: make(map[chan Event]struct{})}
}

// subscription is one SSE consumer's attachment to a stream: the replay
// backlog owed to it, its live channel, and the snapshot to open with.
type subscription struct {
	// backlog holds already-published events with ID > the subscriber's
	// Last-Event-ID, replayed before any live event.
	backlog []Event
	// ch delivers live events; closed when the stream is (or was already)
	// terminal.
	ch chan Event
	// snap is the stream's wire view at subscribe time (jobView or
	// sweepView) and lastID the newest event id assigned so far (0 if
	// none).
	snap   any
	lastID uint64
	// cancel unsubscribes.
	cancel func()
}

// subscribeLocked registers an event channel, replaying history after
// afterID (0 means a fresh attach: no replay, snapshot only). Callers hold
// h.mu and pass the wire snapshot they built under that same acquisition,
// so a subscriber sees every event exactly once: in the backlog, or live,
// never both and never neither. If the stream is already terminal the
// channel comes back closed: backlog plus snapshot is all there is.
func (h *hub) subscribeLocked(afterID uint64, snap any, terminal bool) subscription {
	sub := subscription{ch: make(chan Event, 64), snap: snap, lastID: h.lastID}
	if afterID > 0 {
		for _, ev := range h.history {
			if ev.ID > afterID {
				sub.backlog = append(sub.backlog, ev)
			}
		}
	}
	if terminal {
		close(sub.ch)
		sub.cancel = func() {}
		return sub
	}
	ch := sub.ch
	h.subs[ch] = struct{}{}
	sub.cancel = func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
	}
	return sub
}

// publishLocked assigns the next event id, records the event in the replay
// ring, and delivers it to all subscribers, dropping it for any whose
// buffer is full.
func (h *hub) publishLocked(ev Event) {
	h.lastID++
	ev.ID = h.lastID
	if len(h.history) >= eventHistoryCap {
		// Drop the oldest half in one copy; reconnects older than the ring
		// fall back to the snapshot path.
		keep := h.history[len(h.history)-eventHistoryCap/2:]
		h.history = append(make([]Event, 0, eventHistoryCap), keep...)
	}
	h.history = append(h.history, ev)
	for ch := range h.subs {
		select {
		case ch <- ev:
			h.sseEvents.Inc()
		default:
			// A slow SSE consumer must not stall the publisher; the drop
			// is visible as subscriber lag in /metrics.
			h.sseDropped.Inc()
		}
	}
}

func (h *hub) closeSubsLocked() {
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
