package serve

// The chaos harness: randomized, seed-reproducible fault schedules armed
// across every failpoint site while real jobs run through the real HTTP
// stack and the resilient client. The invariants under test are the
// service's whole robustness story:
//
//   - No wedged jobs: every submission reaches a terminal state, and the
//     server ends with nothing queued or running.
//   - Every failure is structured: a failed run always carries a known
//     error kind (injected chaos only ever surfaces retryable kinds).
//   - No corrupt artifact is ever served: results fetched under chaos are
//     byte-identical to a fault-free run of the same spec.
//   - Convergence: n-limited schedules exhaust, so bounded resubmission
//     always lands every job.
//
// Reproduce a failure with LAPERM_CHAOS_SEED=<seed printed by the failing
// run>; set CHAOS_ARTIFACT_DIR to keep the failing schedule as a file.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"laperm/internal/client"
	"laperm/internal/faults"
)

// chaosSpecs are the distinct workloads of one chaos round (distinct
// content hashes, so they are independent jobs).
var chaosSpecs = []string{
	`{"workload":"amr","scale":"tiny","sample_every":256,"attribution":true}`,
	`{"workload":"amr","scale":"tiny","sample_every":128}`,
	`{"workload":"bht","scale":"tiny","sample_every":256}`,
	`{"workload":"bfs-citation","scale":"tiny","attribution":true}`,
}

// chaosRNG is a splitmix64 stream for schedule generation.
type chaosRNG struct{ state uint64 }

func (r *chaosRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *chaosRNG) intn(n uint64) uint64 { return r.next() % n }

// chaosSchedule derives a randomized but seed-deterministic fault schedule:
// every serve-visible site armed with a random retryable kind, probability,
// and a small fire cap — n-limited so the schedule always exhausts and
// retries converge.
func chaosSchedule(seed uint64) string {
	r := &chaosRNG{state: seed}
	pick := func(ks ...string) string { return ks[r.intn(uint64(len(ks)))] }
	parts := []string{
		fmt.Sprintf("serve.cache.write=%s:p=0.%d:n=%d", pick("error", "panic", "partial"), 2+r.intn(4), 1+r.intn(3)),
		fmt.Sprintf("serve.cache.read=error:p=0.%d:n=%d", 1+r.intn(3), 1+r.intn(2)),
		fmt.Sprintf("serve.submit=error:p=0.%d:n=%d", 2+r.intn(3), 1+r.intn(3)),
		fmt.Sprintf("serve.sse.flush=error:p=0.%d:n=%d", 2+r.intn(4), 1+r.intn(3)),
		fmt.Sprintf("exp.cell.run=%s:p=0.%d:n=%d", pick("error", "panic"), 1+r.intn(3), 1+r.intn(2)),
		fmt.Sprintf("gpu.run.poll=delay:p=0.%d:n=%d:d=200us", 1+r.intn(3), 1+r.intn(4)),
	}
	return strings.Join(parts, ";")
}

// chaosSeeds resolves the round seeds: LAPERM_CHAOS_SEED pins a single
// reproduction seed, otherwise a fixed small set (one round in -short).
func chaosSeeds(t *testing.T) []uint64 {
	if v := os.Getenv("LAPERM_CHAOS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("bad LAPERM_CHAOS_SEED %q: %v", v, err)
		}
		return []uint64{n}
	}
	if testing.Short() {
		return []uint64{1}
	}
	return []uint64{1, 2, 3}
}

// saveChaosArtifact writes the failing schedule where CI can upload it.
func saveChaosArtifact(t *testing.T, seed uint64, schedule string) {
	dir := os.Getenv("CHAOS_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("chaos artifact dir: %v", err)
		return
	}
	path := filepath.Join(dir, fmt.Sprintf("chaos-schedule-seed%d.txt", seed))
	body := fmt.Sprintf("seed: %d\nschedule: %s\nreproduce: LAPERM_CHAOS_SEED=%d go test -race -run TestChaos ./internal/serve/\n", seed, schedule, seed)
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Logf("chaos artifact write: %v", err)
	} else {
		t.Logf("chaos schedule saved to %s", path)
	}
}

// chaosBaseline runs every chaos spec on a fault-free server and returns
// the canonical result bytes per spec.
func chaosBaseline(t *testing.T) map[string][]byte {
	t.Helper()
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()
	out := make(map[string][]byte, len(chaosSpecs))
	for _, sp := range chaosSpecs {
		_, view := submit(t, ts, sp)
		if v := waitTerminal(t, ts, view.ID); v.State != StateDone {
			t.Fatalf("baseline run of %s failed: %+v", sp, v)
		}
		out[sp] = getArtifact(t, ts, view.ID, ResultArtifact)
	}
	return out
}

// runJobUnderChaos drives one spec to completion through the resilient
// client, recording every terminal failure kind along the way. Fatal if the
// job does not converge within the deadline or a failure is unstructured.
func runJobUnderChaos(ctx context.Context, t *testing.T, cl *client.Client, ts *httptest.Server, specBody string, kinds *sync.Map) (client.RunView, error) {
	v, err := cl.SubmitRaw(ctx, []byte(specBody))
	if err != nil {
		return v, fmt.Errorf("submit: %w", err)
	}
	resubmits := 0
	for {
		if ctx.Err() != nil {
			return v, fmt.Errorf("job %s wedged: %w (last state %s)", v.ID, ctx.Err(), v.State)
		}
		if v.Terminal() {
			if v.State == "done" {
				return v, nil
			}
			// Every chaos-induced failure must carry a structured,
			// retryable kind — anything else is a real bug surfacing.
			if !client.RetryableKind(v.ErrorKind) {
				return v, fmt.Errorf("job %s failed with non-retryable kind %q: %s", v.ID, v.ErrorKind, v.Error)
			}
			kinds.Store(v.ErrorKind, true)
			resubmits++
			if resubmits > 20 {
				return v, fmt.Errorf("job %s did not converge after %d resubmits", v.ID, resubmits)
			}
			if v, err = cl.SubmitRaw(ctx, []byte(specBody)); err != nil {
				return v, fmt.Errorf("resubmit: %w", err)
			}
			continue
		}
		time.Sleep(2 * time.Millisecond)
		if v, err = cl.Status(ctx, v.ID); err != nil {
			return v, fmt.Errorf("status: %w", err)
		}
	}
}

// TestChaosRandomizedFaultSchedules is the end-to-end soak. Run it under
// -race (CI does); it is deterministic per seed up to goroutine
// interleaving of the probabilistic fault draws.
func TestChaosRandomizedFaultSchedules(t *testing.T) {
	baseline := chaosBaseline(t)
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			schedule := chaosSchedule(seed)
			t.Logf("chaos seed %d schedule %s", seed, schedule)
			failed := true
			defer func() {
				if failed {
					saveChaosArtifact(t, seed, schedule)
				}
			}()

			reg, err := faults.Parse(schedule, seed)
			if err != nil {
				t.Fatalf("generated schedule does not parse: %v", err)
			}
			s, ts := newTestServer(t, Config{Workers: 2, Faults: reg})
			s.Start()
			cl := client.New(client.Config{
				BaseURL:     ts.URL,
				MaxAttempts: 8,
				Seed:        seed,
				// Compress real backoff waits so Retry-After floors do
				// not dominate the test's wall clock.
				Sleep: func(d time.Duration) {
					if d > 2*time.Millisecond {
						d = 2 * time.Millisecond
					}
					time.Sleep(d)
				},
			})

			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			var kinds sync.Map
			var wg sync.WaitGroup
			errs := make([]error, len(chaosSpecs))
			views := make([]client.RunView, len(chaosSpecs))
			for i, sp := range chaosSpecs {
				wg.Add(1)
				go func(i int, sp string) {
					defer wg.Done()
					views[i], errs[i] = runJobUnderChaos(ctx, t, cl, ts, sp, &kinds)
				}(i, sp)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Errorf("spec %s: %v", chaosSpecs[i], err)
				}
			}
			if t.Failed() {
				return
			}

			// No corrupt artifact is ever served: bytes under chaos are
			// the fault-free bytes.
			for i, sp := range chaosSpecs {
				got, err := cl.Artifact(ctx, views[i].ID, ResultArtifact)
				if err != nil {
					t.Errorf("artifact fetch for %s: %v", sp, err)
					continue
				}
				if string(got) != string(baseline[sp]) {
					t.Errorf("result served under chaos differs from fault-free baseline for %s", sp)
				}
			}

			// The event stream converges too: SSE flush faults may tear
			// it, but the client resumes and always lands the terminal
			// state.
			for _, v := range views {
				sawDone := false
				err := cl.WatchEvents(ctx, v.ID, func(ev client.SSEEvent) error {
					if ev.Type == "state" && strings.Contains(string(ev.Data), `"done"`) {
						sawDone = true
					}
					return nil
				})
				if err != nil || !sawDone {
					t.Errorf("event stream for %s under chaos: err=%v sawDone=%v", v.ID, err, sawDone)
				}
			}

			// No wedged work left behind.
			if m := getMetrics(t, ts); m.Running != 0 || m.QueueDepth != 0 {
				t.Errorf("server left running=%d queued=%d after chaos", m.Running, m.QueueDepth)
			}
			kinds.Range(func(k, _ any) bool {
				t.Logf("observed structured failure kind: %v", k)
				return true
			})
			failed = false
		})
	}
}

// TestChaosDrainUnderFaults: draining while chaos jobs are queued must
// still terminate every job and exit the dispatcher — shutdown does not
// wedge under injected failures.
func TestChaosDrainUnderFaults(t *testing.T) {
	reg, err := faults.Parse("serve.cache.write=error:p=0.5:n=4;exp.cell.run=error:p=0.5:n=2", 99)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Faults: reg})
	s.Start()
	var ids []string
	for _, sp := range chaosSpecs {
		_, view := submit(t, ts, sp)
		ids = append(ids, view.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain under faults: %v", err)
	}
	for _, id := range ids {
		st := getStatus(t, ts, id)
		if st.State != StateDone && st.State != StateFailed {
			t.Errorf("job %s left in state %s after drain", id, st.State)
		}
		if st.State == StateFailed && st.ErrorKind == "" {
			t.Errorf("job %s failed without a structured kind", id)
		}
	}
}
