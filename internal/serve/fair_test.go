package serve

import (
	"errors"
	"testing"

	"laperm/internal/spec"
)

func fqJob(id string, key flowKey) *Job {
	j := newJob(id, spec.RunSpec{})
	j.flow = key
	return j
}

func drainOrder(t *testing.T, q *fairQueue) []string {
	t.Helper()
	var order []string
	for q.Len() > 0 {
		batch, ok := q.PopBatch(1)
		if !ok {
			t.Fatal("queue reported closed while jobs remained")
		}
		for _, j := range batch {
			order = append(order, j.ID)
		}
	}
	return order
}

// TestFairQueueTenantRoundRobin: two tenants with unequal backlogs
// alternate dequeue for dequeue until the small one drains.
func TestFairQueueTenantRoundRobin(t *testing.T) {
	q := newFairQueue(16)
	for i := 0; i < 4; i++ {
		q.Push(fqJob(string(rune('a'+i)), flowKey{tenant: "big", sweep: "s1"}), 1)
	}
	q.Push(fqJob("x", flowKey{tenant: "small", sweep: "s2"}), 1)
	q.Push(fqJob("y", flowKey{tenant: "small", sweep: "s2"}), 1)

	order := drainOrder(t, q)
	// Strict tenant RR: big, small, big, small, then big drains alone.
	want := []string{"a", "x", "b", "y", "c", "d"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueWeightedFlows: within one tenant, a priority-3 sweep gets
// three dequeues for each one of a priority-1 sweep.
func TestFairQueueWeightedFlows(t *testing.T) {
	q := newFairQueue(16)
	for i := 0; i < 6; i++ {
		q.Push(fqJob(string(rune('A'+i)), flowKey{tenant: "t", sweep: "hi"}), 3)
	}
	for i := 0; i < 2; i++ {
		q.Push(fqJob(string(rune('u'+i)), flowKey{tenant: "t", sweep: "lo"}), 1)
	}
	order := drainOrder(t, q)
	want := []string{"A", "B", "C", "u", "D", "E", "F", "v"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dequeue order = %v, want %v", order, want)
		}
	}
}

// TestFairQueueSingletonCapacity: only the per-tenant singleton flows are
// bounded by capacity; sweep flows enqueue past it.
func TestFairQueueSingletonCapacity(t *testing.T) {
	q := newFairQueue(1)
	if err := q.Push(fqJob("s1", flowKey{tenant: "t"}), 1); err != nil {
		t.Fatalf("first singleton push: %v", err)
	}
	if err := q.Push(fqJob("s2", flowKey{tenant: "t"}), 1); !errors.Is(err, errQueueFull) {
		t.Fatalf("second singleton push: err = %v, want errQueueFull", err)
	}
	for i := 0; i < 10; i++ {
		if err := q.Push(fqJob(string(rune('a'+i)), flowKey{tenant: "t", sweep: "sw"}), 1); err != nil {
			t.Fatalf("sweep push %d past singleton capacity: %v", i, err)
		}
	}
	if !q.SinglesSaturated() {
		t.Fatal("SinglesSaturated = false with the singleton flow full")
	}
	if q.Len() != 11 {
		t.Fatalf("Len = %d, want 11", q.Len())
	}
}

// TestFairQueueRemove: a removed job is never dequeued, and the drained
// flow/tenant leave the rotation.
func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue(16)
	j1 := fqJob("j1", flowKey{tenant: "t", sweep: "sw"})
	j2 := fqJob("j2", flowKey{tenant: "t", sweep: "sw"})
	q.Push(j1, 1)
	q.Push(j2, 1)
	if !q.Remove(j1) {
		t.Fatal("Remove(j1) = false for a queued job")
	}
	if q.Remove(j1) {
		t.Fatal("Remove(j1) = true twice")
	}
	order := drainOrder(t, q)
	if len(order) != 1 || order[0] != "j2" {
		t.Fatalf("drain after remove = %v, want [j2]", order)
	}
	if d := q.Depths(); len(d) != 0 {
		t.Fatalf("Depths after drain = %v, want empty", d)
	}
}

// TestFairQueueClose: a closed queue rejects pushes and PopBatch drains the
// backlog before reporting done.
func TestFairQueueClose(t *testing.T) {
	q := newFairQueue(16)
	q.Push(fqJob("j1", flowKey{tenant: "t"}), 1)
	q.Close()
	if err := q.Push(fqJob("j2", flowKey{tenant: "t"}), 1); !errors.Is(err, errQueueClosed) {
		t.Fatalf("push after close: err = %v, want errQueueClosed", err)
	}
	batch, ok := q.PopBatch(4)
	if !ok || len(batch) != 1 {
		t.Fatalf("PopBatch after close = (%v, %v), want the queued job", batch, ok)
	}
	if _, ok := q.PopBatch(4); ok {
		t.Fatal("PopBatch on a closed empty queue reported more work")
	}
}
