package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"laperm/internal/exp"
	"laperm/internal/faults"
	"laperm/internal/gpu"
	"laperm/internal/spec"
	"laperm/internal/telemetry"
)

// Artifact names of one completed sweep, served under
// /v1/sweeps/{id}/artifacts/. ResultArtifact (result.json, the sweep
// summary and the cache's completion marker) is shared with runs.
const (
	SweepSpecArtifact  = "sweep.json"
	SweepCellsArtifact = "cells.csv"
)

// SweepArtifactNames lists every artifact a completed sweep exposes.
var SweepArtifactNames = []string{SweepSpecArtifact, SweepCellsArtifact, ResultArtifact}

// Cell sources: how the sweep obtained each cell.
const (
	// CellSourceRun is a fresh execution this sweep scheduled.
	CellSourceRun = "run"
	// CellSourceDedupe attached to work another request already owns — a
	// concurrent sweep's cell or an in-flight singleton run.
	CellSourceDedupe = "dedupe"
	// CellSourceCache was answered from a completed job or the disk cache
	// without executing anything.
	CellSourceCache = "cache"
)

// sweepCell is one expanded cell's bookkeeping inside a Sweep, guarded by
// the sweep's lock.
type sweepCell struct {
	index  int
	runID  string
	values []string
	source string
	state  State
	errKind,
	errMsg string
	job *Job // nil for cells answered straight from the disk cache
}

// Sweep is one submitted parameter sweep, keyed by its SweepSpec hash. All
// mutable fields are guarded by the embedded hub's mutex (promoted as
// sw.mu).
type Sweep struct {
	// ID is the SweepSpec content hash — sweep ID, coalescing key, and the
	// cache key of the sweep-level artifacts.
	ID string
	// Spec is the normalized submitted sweep.
	Spec spec.SweepSpec
	// Axes caches the axis field names in order (the cells.csv header).
	Axes []string

	seq    uint64
	flight *telemetry.Flight

	hub
	state     State
	errMsg    string
	errKind   string
	cached    bool // sweep artifacts served from the disk cache
	canceled  bool
	coalesced int64
	cells     []*sweepCell
	remaining int // cells not yet terminal
	failed    int // cells that reached failed
	deduped   int // cells attached to work another request owns
	fromCache int // cells answered without executing
	scheduled int // cells freshly scheduled by this sweep
	doneAt    time.Time
}

func newSweep(id string, sp spec.SweepSpec, axes []string) *Sweep {
	return &Sweep{ID: id, Spec: sp, Axes: axes, state: StateRunning, hub: newHub()}
}

// newCachedSweep materializes a sweep for a disk-cache hit: born terminal,
// no cell table (the cell detail lives in the cached cells.csv).
func newCachedSweep(id string, sp spec.SweepSpec, axes []string) *Sweep {
	return &Sweep{ID: id, Spec: sp, Axes: axes, state: StateDone, cached: true, hub: newHub()}
}

// State returns the current state.
func (sw *Sweep) State() State {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.state
}

func (sw *Sweep) terminalLocked() bool { return sw.state == StateDone || sw.state == StateFailed }

func (sw *Sweep) noteCoalesced() {
	sw.mu.Lock()
	sw.coalesced++
	sw.mu.Unlock()
}

// sweepCellView is one row of the sweep's wire cell table.
type sweepCellView struct {
	Index     int      `json:"index"`
	RunID     string   `json:"run_id"`
	Values    []string `json:"values"`
	Source    string   `json:"source"`
	State     State    `json:"state"`
	Error     string   `json:"error,omitempty"`
	ErrorKind string   `json:"error_kind,omitempty"`
}

// sweepView is the wire representation of a sweep returned by the submit
// and status endpoints and carried in "state" SSE events (without the cell
// table — state events stay small; GET /v1/sweeps/{id} has it).
type sweepView struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Tenant    string          `json:"tenant"`
	Priority  int             `json:"priority"`
	Cached    bool            `json:"cached"`
	Canceled  bool            `json:"canceled,omitempty"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Axes      []string        `json:"axes"`
	Cells     int             `json:"cells"`
	Done      int             `json:"done"`
	Failed    int             `json:"failed,omitempty"`
	Deduped   int             `json:"deduped"`
	FromCache int             `json:"served_from_cache"`
	Scheduled int             `json:"scheduled"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.SweepSpec  `json:"spec"`
	CellTable []sweepCellView `json:"cell_table,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

func (sw *Sweep) viewLocked(withCells bool) sweepView {
	v := sweepView{
		ID:        sw.ID,
		State:     sw.state,
		Tenant:    sw.Spec.Tenant,
		Priority:  sw.Spec.Priority,
		Cached:    sw.cached,
		Canceled:  sw.canceled,
		Coalesced: sw.coalesced,
		Axes:      sw.Axes,
		Cells:     len(sw.cells),
		Done:      len(sw.cells) - sw.remaining - sw.failed,
		Failed:    sw.failed,
		Deduped:   sw.deduped,
		FromCache: sw.fromCache,
		Scheduled: sw.scheduled,
		Error:     sw.errMsg,
		ErrorKind: sw.errKind,
		Spec:      sw.Spec,
	}
	if sw.cached {
		// A disk-materialized sweep has no in-process cell records; its
		// counts live in the cached result.json.
		v.Cells = sw.Spec.CellCount()
		v.Done = v.Cells
	}
	if sw.state == StateDone {
		v.Artifacts = SweepArtifactNames
	}
	if withCells {
		v.CellTable = make([]sweepCellView, len(sw.cells))
		for i, c := range sw.cells {
			v.CellTable[i] = sweepCellView{
				Index: c.index, RunID: c.runID, Values: c.values,
				Source: c.source, State: c.state,
				Error: c.errMsg, ErrorKind: c.errKind,
			}
		}
	}
	return v
}

func (sw *Sweep) view(withCells bool) sweepView {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.viewLocked(withCells)
}

// subscribeSince registers an event channel on the sweep's stream; see
// hub.subscribeLocked for the exactly-once contract.
func (sw *Sweep) subscribeSince(afterID uint64) subscription {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return sw.subscribeLocked(afterID, sw.viewLocked(false), sw.terminalLocked())
}

// handleSweepSubmit accepts a SweepSpec, expands it server-side, resolves
// every cell by content hash — attaching to in-flight work, answering from
// the cache, or scheduling a fresh execution on the sweep's fair-share flow
// — and returns the sweep view (202 for newly scheduled sweeps, 200 for
// coalesced or cached ones).
func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		badRequest(w, fmt.Errorf("serve: read request: %w", err))
		return
	}
	sp, err := spec.ParseSweep(body)
	if err != nil {
		badRequest(w, err)
		return
	}
	sp = sp.Normalized()
	cells, err := sp.Expand()
	if err != nil {
		badRequest(w, err)
		return
	}
	if max := s.cfg.MaxSweepCells; max > 0 && len(cells) > max {
		badRequest(w, fmt.Errorf("serve: sweep expands to %d cells, this server accepts at most %d",
			len(cells), max))
		return
	}
	id, err := sp.Hash()
	if err != nil {
		badRequest(w, err)
		return
	}
	axes := make([]string, len(sp.Axes))
	for i, ax := range sp.Axes {
		axes[i] = ax.Field
	}
	s.tel.sweepSubmissions.Inc()

	s.mu.Lock()
	if sw, ok := s.sweeps[id]; ok && sw.State() != StateFailed {
		// In-flight or finished in this process: coalesce, exactly like
		// runs. Coalesced resubmissions bypass the rate limiter — they
		// schedule nothing.
		sw.noteCoalesced()
		s.tel.sweepsCoalesced.Inc()
		s.mu.Unlock()
		s.respondSweep(w, http.StatusOK, sw, false)
		return
	}
	if _, ok := s.cache.Lookup(id); ok {
		if _, err := s.cache.ReadArtifact(id, ResultArtifact); err == nil {
			sw := newCachedSweep(id, sp, axes)
			if existing := s.sweeps[id]; existing != nil {
				sw = existing
			} else {
				s.sweeps[id] = sw
			}
			s.mu.Unlock()
			s.respondSweep(w, http.StatusOK, sw, false)
			return
		}
	}
	if s.draining {
		s.mu.Unlock()
		draining(w, errors.New("serve: draining, not accepting new sweeps"))
		return
	}
	// The rate limiter gates only sweeps that schedule new work; it sits
	// after the coalesce and cache paths so an idempotent retry of an
	// already-accepted sweep is never throttled.
	if ok, after := s.limits.Allow(sp.Tenant); !ok {
		s.mu.Unlock()
		s.tel.sweepsThrottled.Inc()
		rateLimited(w, after,
			fmt.Errorf("serve: tenant %q over the sweep rate limit, retry later", sp.Tenant))
		return
	}

	sw := newSweep(id, sp, axes)
	sw.sseEvents, sw.sseDropped = s.tel.sseEvents, s.tel.sseDropped
	sw.flight = telemetry.NewFlight(id)
	sw.flight.Instant("sweep", "submit", map[string]string{
		"tenant": sp.Tenant, "cells": fmt.Sprint(len(cells)),
	})
	scheduleEnd := sw.flight.Start("sweep", "schedule")
	sw.cells = make([]*sweepCell, len(cells))
	sw.remaining = len(cells)
	for i, c := range cells {
		sw.cells[i] = &sweepCell{index: c.Index, runID: c.Hash, values: c.Values, state: StateQueued}
	}
	s.jobSeq++
	sw.seq = s.jobSeq
	s.sweeps[id] = sw
	s.tel.sweepsActive.Inc()
	s.tel.sweepCellsExpanded.Add(uint64(len(cells)))
	s.log.Info("sweep submitted", "sweep", id, "tenant", sp.Tenant, "cells", len(cells))

	// Resolve every cell under s.mu: nothing can race a concurrent sweep's
	// resolution of the same run IDs, and closeQueue (which also takes
	// s.mu) cannot interleave, so fq.Push cannot fail here.
	for i, c := range cells {
		cell := sw.cells[i]
		if j, ok := s.jobs[c.Hash]; ok && j.State() != StateFailed {
			// Tier 1: in-process job — running, queued, or already done.
			shared := j.addOwner(id)
			if j.State() == StateDone {
				cell.source = CellSourceCache
				sw.fromCache++
				s.tel.sweepCellsCached.Inc()
				s.cellDone(sw, cell, j)
			} else {
				cell.source = CellSourceDedupe
				cell.job = j
				sw.deduped++
				if shared {
					s.tel.sweepCellsDeduped.Inc()
				}
				j.addTerminalHook(func(j *Job) { s.cellDone(sw, cell, j) })
			}
			continue
		}
		// Tier 2: the disk cache, verified before trusting.
		if _, ok := s.cache.Lookup(c.Hash); ok {
			if _, err := s.cache.ReadArtifact(c.Hash, ResultArtifact); err == nil {
				cell.source = CellSourceCache
				sw.fromCache++
				s.tel.sweepCellsCached.Inc()
				j := s.registerLocked(newCachedJob(c.Hash, c.Spec))
				j.addOwner(id)
				s.cellDone(sw, cell, j)
				continue
			}
		}
		// Tier 3: fresh execution on this sweep's fair-share flow.
		j := newJob(c.Hash, c.Spec)
		j.flow = flowKey{tenant: sp.Tenant, sweep: id}
		j.addOwner(id)
		j.sseEvents, j.sseDropped = s.tel.sseEvents, s.tel.sseDropped
		j.flight = telemetry.NewFlight(c.Hash)
		j.flight.Instant("job", "submit", map[string]string{
			"workload": c.Spec.Workload, "scheduler": c.Spec.Scheduler, "sweep": id,
		})
		j.enqueuedAt = time.Now()
		j.queueEnd = j.flight.Start("job", "queue")
		cell.source = CellSourceRun
		cell.job = j
		sw.scheduled++
		s.tel.sweepCellsScheduled.Inc()
		if err := s.fq.Push(j, sp.Priority); err != nil {
			// Unreachable by construction (drain is excluded by s.mu and
			// sweep flows have no depth bound), but never let a cell
			// silently wedge the sweep if the invariant ever breaks.
			s.failJob(j, KindError, err)
		}
		s.registerLocked(j)
		s.tel.queueDepth.Inc()
		j.addTerminalHook(func(j *Job) { s.cellDone(sw, cell, j) })
	}
	scheduleEnd()
	s.mu.Unlock()
	s.respondSweep(w, http.StatusAccepted, sw, false)
}

// cellDone records one cell's terminal outcome on its sweep, publishes the
// "cell" SSE event, and finalizes the sweep when the last cell lands. Runs
// either inline during resolution (cached cells) or as a job terminal hook
// on the dispatcher's goroutine.
func (s *Server) cellDone(sw *Sweep, cell *sweepCell, j *Job) {
	state, errMsg, errKind, _, _ := j.snapshot()
	data := map[string]any{
		"index":  cell.index,
		"run_id": cell.runID,
		"values": cell.values,
		"source": cell.source,
		"state":  state,
	}
	if state == StateDone {
		// Best-effort partial result: headline numbers straight from the
		// cached result so sweep watchers can plot without fetching every
		// cell artifact.
		if raw, err := s.cache.ReadArtifact(cell.runID, ResultArtifact); err == nil {
			var head struct {
				Cycles uint64
				IPC    float64
			}
			if json.Unmarshal(raw, &head) == nil {
				data["cycles"] = head.Cycles
				data["ipc"] = head.IPC
			}
		}
	} else {
		data["error"] = errMsg
		data["error_kind"] = errKind
	}

	sw.mu.Lock()
	if cell.state == StateDone || cell.state == StateFailed {
		// Already settled (a canceled sweep settles its cells eagerly).
		sw.mu.Unlock()
		return
	}
	cell.state = state
	cell.errMsg, cell.errKind = errMsg, errKind
	sw.remaining--
	if state == StateFailed {
		sw.failed++
	}
	sw.publishLocked(Event{Type: "cell", Data: data})
	last := sw.remaining == 0 && !sw.terminalLocked()
	sw.mu.Unlock()
	if last {
		s.finalizeSweep(sw)
	}
}

// finalizeSweep transitions a fully-settled sweep to its terminal state,
// writing the sweep-level artifacts on full success.
func (s *Server) finalizeSweep(sw *Sweep) {
	sw.mu.Lock()
	if sw.terminalLocked() {
		sw.mu.Unlock()
		return
	}
	failed := sw.failed
	cells := sw.cells
	sw.mu.Unlock()

	var finalErr error
	if failed > 0 {
		finalErr = fmt.Errorf("serve: %d of %d cells failed", failed, len(cells))
	} else {
		artEnd := sw.flight.Start("sweep", "artifacts")
		finalErr = s.writeSweepArtifacts(sw, cells)
		artEnd()
	}

	sw.mu.Lock()
	if finalErr != nil {
		sw.state = StateFailed
		sw.errKind = KindError
		if sw.canceled {
			sw.errKind = KindCanceled
		}
		sw.errMsg = finalErr.Error()
	} else {
		sw.state = StateDone
		sw.doneAt = time.Now()
	}
	view := sw.viewLocked(false)
	sw.publishLocked(Event{Type: "state", Data: view})
	sw.closeSubsLocked()
	sw.mu.Unlock()

	s.tel.sweepsActive.Dec()
	if finalErr != nil {
		s.tel.sweepsFailed.Inc()
		sw.flight.Instant("sweep", "fail", map[string]string{"error": finalErr.Error()})
		s.log.Info("sweep failed", "sweep", sw.ID, "error", finalErr.Error())
	} else {
		s.tel.sweepsDone.Inc()
		s.log.Info("sweep done", "sweep", sw.ID)
	}
	s.flights.Add(sw.flight)
}

// writeSweepArtifacts assembles and commits the sweep's cache entry: the
// canonical sweep spec, the aggregated cells.csv (via the exp writer, so it
// is byte-identical to an in-process RunMatrix export of the same axes),
// and the result.json summary that doubles as the cache completion marker.
func (s *Server) writeSweepArtifacts(sw *Sweep, cells []*sweepCell) error {
	canon, err := sw.Spec.Canonical()
	if err != nil {
		return err
	}
	rows := make([]exp.CellRow, len(cells))
	for i, c := range cells {
		raw, err := s.cache.ReadArtifact(c.runID, ResultArtifact)
		if err != nil {
			return fmt.Errorf("serve: sweep cell %d result: %w", c.index, err)
		}
		var res gpu.Result
		if err := json.Unmarshal(raw, &res); err != nil {
			return fmt.Errorf("serve: sweep cell %d result: %w", c.index, err)
		}
		rows[i] = exp.CellRow{ID: c.runID, Values: c.values, Result: &res}
	}
	summary := sw.view(true)
	summary.State = StateDone
	summary.Artifacts = SweepArtifactNames
	for i := range summary.CellTable {
		summary.CellTable[i].State = StateDone
	}
	return s.cache.Put(sw.ID, []Artifact{
		{Name: SweepSpecArtifact, Write: func(w io.Writer) error {
			_, err := w.Write(append(canon, '\n'))
			return err
		}},
		{Name: SweepCellsArtifact, Write: func(w io.Writer) error {
			return exp.WriteCellsCSV(sw.Axes, rows, w)
		}},
		{Name: ResultArtifact, Write: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(summary)
		}},
	})
}

// lookupSweep resolves id to a sweep, materializing one for disk-only cache
// entries left by a previous process.
func (s *Server) lookupSweep(id string) *Sweep {
	s.mu.Lock()
	sw := s.sweeps[id]
	s.mu.Unlock()
	if sw != nil {
		return sw
	}
	if _, ok := s.cache.Lookup(id); !ok {
		return nil
	}
	raw, err := s.cache.ReadArtifact(id, SweepSpecArtifact)
	if err != nil {
		return nil
	}
	sp, err := spec.ParseSweep(raw)
	if err != nil {
		return nil
	}
	sp = sp.Normalized()
	axes := make([]string, len(sp.Axes))
	for i, ax := range sp.Axes {
		axes[i] = ax.Field
	}
	sw = newCachedSweep(id, sp, axes)
	s.mu.Lock()
	if existing := s.sweeps[id]; existing != nil {
		sw = existing
	} else {
		s.sweeps[id] = sw
	}
	s.mu.Unlock()
	return sw
}

// respondSweep writes a sweep view; completed sweeps embed their artifact
// list (and, with cells, the full cell table).
func (s *Server) respondSweep(w http.ResponseWriter, status int, sw *Sweep, withCells bool) {
	writeJSON(w, status, sw.view(withCells))
}

// handleSweepStatus serves GET /v1/sweeps/{id}: full status with the cell
// table and dedupe/cache-hit counts.
func (s *Server) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw := s.lookupSweep(id)
	if sw == nil {
		notFound(w, fmt.Errorf("serve: no sweep %q", id))
		return
	}
	s.respondSweep(w, http.StatusOK, sw, true)
}

// handleSweepEvents streams a sweep's lifecycle over SSE: a "state"
// snapshot, then per-cell "cell" completion events and the terminal "state"
// transition, with the same monotonic-id / Last-Event-ID resume contract as
// run streams.
func (s *Server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw := s.lookupSweep(id)
	if sw == nil {
		notFound(w, fmt.Errorf("serve: no sweep %q", id))
		return
	}
	s.streamSSE(w, r, sw.subscribeSince)
}

// handleSweepArtifact serves one sweep-level artifact.
func (s *Server) handleSweepArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	known := false
	for _, n := range SweepArtifactNames {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		notFound(w, fmt.Errorf("serve: unknown sweep artifact %q (valid: %v)", name, SweepArtifactNames))
		return
	}
	data, err := s.cache.ReadArtifact(id, name)
	if err != nil {
		if faults.IsInjected(err) {
			transientErr(w, err)
			return
		}
		notFound(w, fmt.Errorf("serve: no artifact %s for sweep %q", name, id))
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Write(data)
}

// handleSweepCancel implements POST /v1/sweeps/{id}/cancel: queued cells
// owned only by this sweep are released (removed from the fair queue and
// failed with kind "canceled"); cells shared with other sweeps or direct
// submissions, and cells already running, are left to finish — their
// results stay cacheable and their other owners unaffected.
func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sw := s.sweeps[id]
	if sw == nil {
		s.mu.Unlock()
		notFound(w, fmt.Errorf("serve: no sweep %q", id))
		return
	}
	if sw.State() == StateDone || sw.State() == StateFailed {
		s.mu.Unlock()
		s.respondSweep(w, http.StatusOK, sw, false)
		return
	}

	// Collect the exclusively-owned queued cells, then release them. The
	// failJob calls fire this sweep's terminal hooks, which find the cells
	// already settled below and no-op.
	var release []*Job
	sw.mu.Lock()
	sw.canceled = true
	for _, cell := range sw.cells {
		if cell.state != StateQueued && cell.state != StateRunning {
			continue
		}
		j := cell.job
		if j != nil && j.State() == StateQueued && !j.sharedBeyond(id) && s.fq.Remove(j) {
			release = append(release, j)
			cell.state = StateFailed
			cell.errKind = KindCanceled
			cell.errMsg = "serve: sweep canceled"
			sw.remaining--
			sw.failed++
			continue
		}
		// Running or shared: the job finishes on its own; the terminal
		// hook settles the cell later (the sweep is already terminal by
		// then, so the hook's publish is a no-op).
		cell.state = StateFailed
		cell.errKind = KindCanceled
		cell.errMsg = "serve: sweep canceled (cell left to finish)"
		sw.remaining--
		sw.failed++
	}
	sw.state = StateFailed
	sw.errKind = KindCanceled
	sw.errMsg = "serve: sweep canceled"
	view := sw.viewLocked(false)
	sw.publishLocked(Event{Type: "state", Data: view})
	sw.closeSubsLocked()
	sw.mu.Unlock()

	for _, j := range release {
		s.tel.queueDepth.Dec()
		s.failJob(j, KindCanceled, errors.New("serve: sweep canceled"))
	}
	s.tel.sweepsActive.Dec()
	s.tel.sweepsCanceled.Inc()
	sw.flight.Instant("sweep", "cancel", map[string]string{
		"released": fmt.Sprint(len(release)),
	})
	s.flights.Add(sw.flight)
	s.log.Info("sweep canceled", "sweep", id, "released", len(release))
	s.mu.Unlock()
	s.respondSweep(w, http.StatusOK, sw, false)
}
