package serve

import (
	"errors"
	"sync"
)

// Queue-rejection sentinels, mapped by handleSubmit/handleSweepSubmit onto
// 429 (full: back off and retry the idempotent submission) and 503 (closed:
// this process is draining, go elsewhere).
var (
	errQueueFull   = errors.New("serve: launch queue full")
	errQueueClosed = errors.New("serve: queue closed")
)

// flowKey names one scheduling flow: a tenant plus the sweep the work
// belongs to. Sweep "" is the tenant's singleton-runs flow — direct
// /v1/runs submissions share one flow per tenant.
type flowKey struct {
	tenant string
	sweep  string
}

// flow is one FIFO lane of queued jobs with a weighted-round-robin weight.
type flow struct {
	key    flowKey
	weight int
	credit int // picks remaining in the current WRR round
	jobs   []*Job
}

// tenantQ groups a tenant's flows in rotation order.
type tenantQ struct {
	name  string
	flows []*flow
	idx   int // WRR cursor into flows
}

// fairQueue replaces the dispatcher's plain FIFO channel with two-level
// fair scheduling:
//
//   - Across tenants: strict round-robin. Each dequeue serves the next
//     tenant with queued work, so one tenant's thousand-cell sweep and
//     another tenant's two-cell sweep alternate cell for cell — the big
//     sweep cannot starve the small one (Section "fair-share" of
//     DESIGN.md §15).
//   - Within a tenant: weighted round-robin across its flows (one flow per
//     active sweep, plus one for singleton runs). A flow's weight is its
//     sweep's priority: a priority-3 sweep gets three dequeues for every
//     one of a priority-1 sweep in the same tenant.
//
// Capacity bounds only the singleton flows — the same load-shedding
// contract /v1/runs always had. Sweep flows are bounded upstream by the
// expansion cap and per-tenant sweep rate limits, and their cells must all
// enqueue or none (a half-admitted sweep would deadlock its progress
// accounting), so they bypass the depth check.
type fairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	capacity int // bound on queued singleton jobs
	singles  int // queued singleton jobs right now
	size     int // queued jobs total

	tenants  []*tenantQ
	tidx     int // strict-RR cursor into tenants
	byTenant map[string]*tenantQ
	byKey    map[flowKey]*flow
	closed   bool
}

func newFairQueue(capacity int) *fairQueue {
	q := &fairQueue{
		capacity: capacity,
		byTenant: make(map[string]*tenantQ),
		byKey:    make(map[flowKey]*flow),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j on its flow (Job.flow), creating the flow with the given
// weight if absent. Singleton flows respect the queue capacity
// (errQueueFull); a closed queue rejects everything (errQueueClosed).
func (q *fairQueue) Push(j *Job, weight int) error {
	if weight < 1 {
		weight = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if j.flow.sweep == "" {
		if q.singles >= q.capacity {
			return errQueueFull
		}
		q.singles++
	}
	f := q.byKey[j.flow]
	if f == nil {
		f = &flow{key: j.flow, weight: weight, credit: weight}
		q.byKey[j.flow] = f
		t := q.byTenant[j.flow.tenant]
		if t == nil {
			t = &tenantQ{name: j.flow.tenant}
			q.byTenant[j.flow.tenant] = t
			q.tenants = append(q.tenants, t)
		}
		t.flows = append(t.flows, f)
	}
	f.jobs = append(f.jobs, j)
	q.size++
	q.cond.Signal()
	return nil
}

// popLocked removes and returns the next job in fair order, or nil if the
// queue is empty. Caller holds q.mu.
func (q *fairQueue) popLocked() *Job {
	if q.size == 0 {
		return nil
	}
	// Strict RR across tenants: resume at the cursor, take the first
	// tenant with queued work, and leave the cursor past it.
	for range q.tenants {
		t := q.tenants[q.tidx%len(q.tenants)]
		j := t.popLocked()
		if j == nil {
			q.tidx = (q.tidx + 1) % len(q.tenants)
			continue
		}
		q.tidx = (q.tidx + 1) % len(q.tenants)
		q.size--
		if j.flow.sweep == "" {
			q.singles--
		}
		q.gcLocked(t)
		return j
	}
	return nil
}

// popLocked dequeues the tenant's next job by weighted round-robin: the
// cursor flow keeps the turn while it has credit and work; exhausted
// credits refill a full round at a time.
func (t *tenantQ) popLocked() *Job {
	if len(t.flows) == 0 {
		return nil
	}
	// Two passes: the first may find every non-empty flow out of credit,
	// in which case refill and take the second.
	for pass := 0; pass < 2; pass++ {
		for range t.flows {
			f := t.flows[t.idx%len(t.flows)]
			if len(f.jobs) == 0 || f.credit == 0 {
				t.idx = (t.idx + 1) % len(t.flows)
				continue
			}
			j := f.jobs[0]
			f.jobs = f.jobs[1:]
			f.credit--
			if f.credit == 0 {
				t.idx = (t.idx + 1) % len(t.flows)
			}
			return j
		}
		for _, f := range t.flows {
			f.credit = f.weight
		}
	}
	return nil
}

// gcLocked drops t's drained flows (and t itself when its last flow goes),
// so finished sweeps do not accumulate in the rotation.
func (q *fairQueue) gcLocked(t *tenantQ) {
	flows := t.flows[:0]
	for _, f := range t.flows {
		if len(f.jobs) == 0 {
			delete(q.byKey, f.key)
			continue
		}
		flows = append(flows, f)
	}
	t.flows = flows
	if t.idx >= len(t.flows) {
		t.idx = 0
	}
	if len(t.flows) > 0 {
		return
	}
	delete(q.byTenant, t.name)
	tenants := q.tenants[:0]
	for _, other := range q.tenants {
		if other != t {
			tenants = append(tenants, other)
		}
	}
	q.tenants = tenants
	if len(q.tenants) == 0 {
		q.tidx = 0
	} else {
		q.tidx %= len(q.tenants)
	}
}

// PopBatch blocks until at least one job is queued (or the queue is closed
// and empty — ok=false, the dispatcher's exit signal), then greedily
// dequeues up to max jobs in fair order without further blocking.
func (q *fairQueue) PopBatch(max int) ([]*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	var batch []*Job
	for len(batch) < max {
		j := q.popLocked()
		if j == nil {
			break
		}
		batch = append(batch, j)
	}
	return batch, true
}

// Remove unqueues a specific job (sweep cancellation releasing its queued
// cells); reports whether the job was still queued here.
func (q *fairQueue) Remove(j *Job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	f := q.byKey[j.flow]
	if f == nil {
		return false
	}
	for i, queued := range f.jobs {
		if queued == j {
			f.jobs = append(f.jobs[:i], f.jobs[i+1:]...)
			q.size--
			if j.flow.sweep == "" {
				q.singles--
			}
			if t := q.byTenant[j.flow.tenant]; t != nil {
				q.gcLocked(t)
			}
			return true
		}
	}
	return false
}

// Close stops accepting pushes; PopBatch drains what is queued and then
// reports done.
func (q *fairQueue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len returns the total queued jobs.
func (q *fairQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// SinglesSaturated reports whether the singleton-flow capacity is
// exhausted (the /readyz saturation signal).
func (q *fairQueue) SinglesSaturated() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.singles >= q.capacity
}

// Depths snapshots per-tenant queued-job counts for the fair-share depth
// gauges.
func (q *fairQueue) Depths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for _, t := range q.tenants {
		n := 0
		for _, f := range t.flows {
			n += len(f.jobs)
		}
		out[t.name] = n
	}
	return out
}
