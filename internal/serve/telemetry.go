package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"laperm/internal/faults"
	"laperm/internal/telemetry"
	"laperm/internal/trace"
)

// flightRingCap bounds the completed-job trace ring: the last N terminal
// jobs keep their flight recorder reachable through the trace endpoint even
// under sustained traffic.
const flightRingCap = 256

// Metric names, exported so tests and the smoke scrape assert against
// constants instead of string literals.
const (
	MetricHTTPRequests   = "laperm_http_requests_total"
	MetricHTTPLatency    = "laperm_http_request_seconds"
	MetricSubmissions    = "laperm_jobs_submitted_total"
	MetricCoalesced      = "laperm_jobs_coalesced_total"
	MetricJobsDone       = "laperm_jobs_done_total"
	MetricJobsFailed     = "laperm_jobs_failed_total"
	MetricRetries        = "laperm_job_retries_total"
	MetricShed           = "laperm_jobs_shed_total"
	MetricQueueDepth     = "laperm_queue_depth"
	MetricRunning        = "laperm_jobs_running"
	MetricQueueWait      = "laperm_queue_wait_seconds"
	MetricRunSeconds     = "laperm_job_run_seconds"
	MetricSSEEvents      = "laperm_sse_events_total"
	MetricSSEDropped     = "laperm_sse_dropped_total"
	MetricCacheHits      = "laperm_cache_hits_total"
	MetricCacheMisses    = "laperm_cache_misses_total"
	MetricCacheEvictions = "laperm_cache_evictions_total"
	MetricCacheCorrupt   = "laperm_cache_corruptions_total"
	MetricCacheReadB     = "laperm_cache_read_bytes_total"
	MetricCacheWrittenB  = "laperm_cache_written_bytes_total"
	MetricCacheEntries   = "laperm_cache_entries"
	MetricCacheBytes     = "laperm_cache_bytes"
	MetricCacheMaxBytes  = "laperm_cache_max_bytes"
	MetricSimCycles      = "laperm_sim_cycles_total"
	MetricPoolBusy       = "laperm_pool_busy_workers"
	MetricCellSeconds    = "laperm_pool_cell_seconds"
	MetricFaultEvals     = "laperm_fault_evals_total"
	MetricFaultHits      = "laperm_fault_hits_total"
	MetricUptime         = "laperm_uptime_seconds"
	MetricDraining       = "laperm_draining"
	MetricWorkers        = "laperm_workers"

	MetricSweepSubmissions    = "laperm_sweeps_submitted_total"
	MetricSweepsCoalesced     = "laperm_sweeps_coalesced_total"
	MetricSweepsThrottled     = "laperm_sweeps_throttled_total"
	MetricSweepsDone          = "laperm_sweeps_done_total"
	MetricSweepsFailed        = "laperm_sweeps_failed_total"
	MetricSweepsCanceled      = "laperm_sweeps_canceled_total"
	MetricSweepsActive        = "laperm_sweeps_active"
	MetricSweepCellsExpanded  = "laperm_sweep_cells_expanded_total"
	MetricSweepCellsDeduped   = "laperm_sweep_cells_deduped_total"
	MetricSweepCellsCached    = "laperm_sweep_cells_cached_total"
	MetricSweepCellsScheduled = "laperm_sweep_cells_scheduled_total"
	MetricFairQueueDepth      = "laperm_fair_queue_depth"
)

// serveMetrics is the server's instrumentation bundle: every handle the
// request, dispatch, and cache paths touch, registered once at New time so
// hot paths never pay a registry lookup.
type serveMetrics struct {
	reg *telemetry.Registry

	httpRequests *telemetry.CounterVec
	httpLatency  *telemetry.HistogramVec

	submissions *telemetry.Counter
	coalesced   *telemetry.Counter
	jobsDone    *telemetry.Counter
	jobsFailed  *telemetry.Counter
	retries     *telemetry.Counter
	shed        *telemetry.Counter

	queueDepth *telemetry.Gauge
	running    *telemetry.Gauge
	queueWait  *telemetry.Histogram
	runSeconds *telemetry.Histogram

	sseEvents  *telemetry.Counter
	sseDropped *telemetry.Counter

	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter

	poolBusy    *telemetry.Gauge
	cellSeconds *telemetry.Histogram

	sweepSubmissions    *telemetry.Counter
	sweepsCoalesced     *telemetry.Counter
	sweepsThrottled     *telemetry.Counter
	sweepsDone          *telemetry.Counter
	sweepsFailed        *telemetry.Counter
	sweepsCanceled      *telemetry.Counter
	sweepsActive        *telemetry.Gauge
	sweepCellsExpanded  *telemetry.Counter
	sweepCellsDeduped   *telemetry.Counter
	sweepCellsCached    *telemetry.Counter
	sweepCellsScheduled *telemetry.Counter
}

// newServeMetrics registers the server's metric families on reg and wires
// scrape-time collectors for externally owned values (uptime, drain state,
// cache occupancy, simulated-cycle throughput).
func (s *Server) newServeMetrics(reg *telemetry.Registry) *serveMetrics {
	m := &serveMetrics{
		reg: reg,

		httpRequests: reg.CounterVec(MetricHTTPRequests,
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		httpLatency: reg.HistogramVec(MetricHTTPLatency,
			"HTTP request latency in seconds, by route pattern.", telemetry.DefBuckets, "route"),

		submissions: reg.Counter(MetricSubmissions, "RunSpec submissions accepted for processing."),
		coalesced:   reg.Counter(MetricCoalesced, "Submissions that attached to an already in-flight job."),
		jobsDone:    reg.Counter(MetricJobsDone, "Jobs that completed successfully."),
		jobsFailed:  reg.Counter(MetricJobsFailed, "Jobs that reached the failed state."),
		retries:     reg.Counter(MetricRetries, "Transparent server-side re-executions after retryable failures."),
		shed:        reg.Counter(MetricShed, "Submissions shed with 429 because the launch queue was full."),

		queueDepth: reg.Gauge(MetricQueueDepth, "Jobs queued and not yet started."),
		running:    reg.Gauge(MetricRunning, "Jobs executing right now."),
		queueWait: reg.Histogram(MetricQueueWait,
			"Seconds a job waited between enqueue and dispatch.", telemetry.DefBuckets),
		runSeconds: reg.Histogram(MetricRunSeconds,
			"Seconds a dispatched job spent executing (all attempts).", telemetry.DefBuckets),

		sseEvents:  reg.Counter(MetricSSEEvents, "Events published to job SSE streams."),
		sseDropped: reg.Counter(MetricSSEDropped, "SSE events dropped because a subscriber lagged (full buffer)."),

		cacheHits:   reg.Counter(MetricCacheHits, "Submissions answered from a completed job or the disk cache."),
		cacheMisses: reg.Counter(MetricCacheMisses, "Submissions that required a fresh execution."),

		poolBusy: reg.Gauge(MetricPoolBusy, "Worker-pool cells executing right now."),
		cellSeconds: reg.Histogram(MetricCellSeconds,
			"Per-cell wall-clock latency in seconds inside the worker pool.", telemetry.DefBuckets),

		sweepSubmissions: reg.Counter(MetricSweepSubmissions, "SweepSpec submissions accepted for processing."),
		sweepsCoalesced:  reg.Counter(MetricSweepsCoalesced, "Sweep submissions that attached to an already in-flight sweep."),
		sweepsThrottled:  reg.Counter(MetricSweepsThrottled, "Sweep submissions rejected by the per-tenant rate limit."),
		sweepsDone:       reg.Counter(MetricSweepsDone, "Sweeps that completed with every cell successful."),
		sweepsFailed:     reg.Counter(MetricSweepsFailed, "Sweeps that reached the failed state."),
		sweepsCanceled:   reg.Counter(MetricSweepsCanceled, "Sweeps canceled by their submitter."),
		sweepsActive:     reg.Gauge(MetricSweepsActive, "Sweeps with cells still outstanding."),
		sweepCellsExpanded: reg.Counter(MetricSweepCellsExpanded,
			"Cells produced by server-side sweep expansion."),
		sweepCellsDeduped: reg.Counter(MetricSweepCellsDeduped,
			"Sweep cells that attached to work another request already owned (cross-request dedupe)."),
		sweepCellsCached: reg.Counter(MetricSweepCellsCached,
			"Sweep cells answered from a completed job or the disk cache without executing."),
		sweepCellsScheduled: reg.Counter(MetricSweepCellsScheduled,
			"Sweep cells scheduled as fresh executions."),
	}

	reg.GaugeFunc(MetricUptime, "Seconds since the server started.",
		func() float64 { return time.Since(s.started).Seconds() })
	reg.GaugeFunc(MetricDraining, "1 while the server is draining, else 0.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.draining {
			return 1
		}
		return 0
	})
	workers := reg.Gauge(MetricWorkers, "Configured worker-pool size.")
	workers.Set(int64(s.workers))
	reg.CounterFunc(MetricSimCycles, "Total simulated cycles executed by completed runs.",
		func() float64 { return float64(s.meter.Cycles()) })

	// Cache counters are incremented at the cache's own sites; occupancy
	// gauges sync from one Stats snapshot per scrape.
	entries := reg.Gauge(MetricCacheEntries, "Complete entries in the result cache.")
	bytes := reg.Gauge(MetricCacheBytes, "Bytes held by the result cache.")
	maxBytes := reg.Gauge(MetricCacheMaxBytes, "Configured cache byte budget (0 = unlimited).")
	reg.OnScrape(func() {
		st := s.cache.Stats()
		entries.Set(int64(st.Entries))
		bytes.Set(st.Bytes)
		maxBytes.Set(st.MaxBytes)
	})
	reg.CounterFunc(MetricCacheEvictions, "Cache entries evicted to stay under the byte budget.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.CounterFunc(MetricCacheCorrupt, "Cache entries discarded after failing integrity verification.",
		func() float64 { return float64(s.cache.Stats().Corruptions) })

	// Fair-share queue depths, one gauge per tenant, synced per scrape.
	// Tenants that drain to empty are zeroed (not dropped) so dashboards
	// see the queue empty rather than a stale last value.
	fairDepth := reg.GaugeVec(MetricFairQueueDepth,
		"Jobs queued in the fair-share queue, by tenant.", "tenant")
	seenTenants := make(map[string]bool)
	reg.OnScrape(func() {
		depths := s.fq.Depths()
		for tenant := range seenTenants {
			if _, ok := depths[tenant]; !ok {
				fairDepth.With(tenant).Set(0)
			}
		}
		for tenant, n := range depths {
			seenTenants[tenant] = true
			fairDepth.With(tenant).Set(int64(n))
		}
	})

	// Fault-injection sites: one evals/hits counter pair per armed site,
	// pre-created so every site is visible at zero, fed by the registry's
	// observer on the (zero-alloc) hit path.
	if s.cfg.Faults != nil {
		evalsVec := reg.CounterVec(MetricFaultEvals,
			"Failpoint evaluations, by armed site.", "site")
		hitsVec := reg.CounterVec(MetricFaultHits,
			"Failpoint rule fires, by armed site.", "site")
		evals := make(map[faults.Site]*telemetry.Counter)
		hits := make(map[faults.Site]*telemetry.Counter)
		for site := range s.cfg.Faults.Counts() {
			evals[site] = evalsVec.With(string(site))
			hits[site] = hitsVec.With(string(site))
		}
		s.cfg.Faults.SetObserver(func(site faults.Site, fired bool) {
			evals[site].Inc()
			if fired {
				hits[site].Inc()
			}
		})
	}
	return m
}

// Telemetry exposes the server's metric registry (tests, embedding).
func (s *Server) Telemetry() *telemetry.Registry { return s.tel.reg }

// handleMetricsProm renders the Prometheus text exposition.
func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.tel.reg.WritePrometheus(w)
}

// handleTrace serves a job's flight-recorder trace as Perfetto-loadable
// Chrome trace_event JSON: live jobs render their partial flight, terminal
// jobs the completed one (also reachable from the bounded ring after the
// job itself ages out).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var f *telemetry.Flight
	if j := s.lookupJob(id); j != nil {
		f = j.flight
	}
	if f == nil {
		f = s.flights.Get(id)
	}
	if f == nil || f.Len() == 0 {
		notFound(w, fmt.Errorf("serve: no trace recorded for run %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteFlightPerfetto(w, f)
}

// statusWriter captures the response status for instrumentation, passing
// flushes through so SSE streaming keeps working behind the middleware.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.code == 0 {
		sw.code = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.code == 0 {
		sw.code = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with per-route request counting, latency
// observation, and a debug-level structured access line carrying the
// request id.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := s.tel.httpLatency.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		req := s.reqSeq.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		dur := time.Since(start)
		lat.Observe(dur.Seconds())
		s.tel.httpRequests.With(route, strconv.Itoa(sw.code)).Inc()
		s.log.LogAttrs(r.Context(), slog.LevelDebug, "http request",
			slog.Uint64("req", req),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.Int("code", sw.code),
			slog.Duration("dur", dur))
	}
}

// discardHandler drops every record: the default logger when Config.Logger
// is nil, so embedding servers (and tests) stay quiet unless they opt in.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// logTransition emits the single structured line every job lifecycle
// transition owes the log: queued, running, retrying, done, failed, or
// canceled, always carrying the job id.
func (s *Server) logTransition(j *Job, transition string, attrs ...slog.Attr) {
	all := append([]slog.Attr{
		slog.String("job", j.ID),
		slog.String("transition", transition),
	}, attrs...)
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "job "+transition, all...)
}
