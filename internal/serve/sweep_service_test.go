package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"laperm/internal/exp"
	"laperm/internal/spec"
)

// tinySweep expands to 4 cells over (workload × scheduler), every cell a
// sub-second tiny run.
const tinySweep = `{
	"base": {"scale": "tiny", "sample_every": 256},
	"axes": [
		{"field": "workload", "values": ["amr", "bht"]},
		{"field": "scheduler", "values": ["rr", "adaptive-bind"]}
	]
}`

func submitSweep(t *testing.T, ts *httptest.Server, body string) (int, sweepView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view sweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode sweep response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, view
}

func getSweep(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status endpoint returned %d", resp.StatusCode)
	}
	var view sweepView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

func waitSweepTerminal(t *testing.T, ts *httptest.Server, id string) sweepView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		view := getSweep(t, ts, id)
		if view.State == StateDone || view.State == StateFailed {
			return view
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not reach a terminal state", id)
	return sweepView{}
}

func getSweepArtifact(t *testing.T, ts *httptest.Server, id, name string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/artifacts/" + name)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep artifact %s returned %d", name, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepEndToEnd: submit, expand, execute, aggregate. The sweep's
// cells.csv must be byte-identical to running the same expansion serially
// in-process — the acceptance check that server-side scheduling (any
// interleaving, any dedupe path) cannot change results.
func TestSweepEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()

	code, view := submitSweep(t, ts, tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d, want 202", code)
	}
	if len(view.ID) != 64 {
		t.Fatalf("sweep id %q is not a sha256 hex digest", view.ID)
	}
	if view.Cells != 4 || view.Scheduled != 4 {
		t.Fatalf("sweep view = %+v, want 4 cells all scheduled", view)
	}

	final := waitSweepTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("sweep failed: %s (%s)", final.Error, final.ErrorKind)
	}
	if final.Done != 4 {
		t.Fatalf("done = %d, want 4", final.Done)
	}
	if len(final.CellTable) != 4 {
		t.Fatalf("cell table has %d rows, want 4", len(final.CellTable))
	}
	for _, c := range final.CellTable {
		if c.State != StateDone || c.Source != CellSourceRun {
			t.Fatalf("cell %d = %+v, want done/run", c.Index, c)
		}
		if len(c.RunID) != 64 {
			t.Fatalf("cell %d run id %q is not a content hash", c.Index, c.RunID)
		}
		// Every cell is addressable as an ordinary run.
		if rv := getStatus(t, ts, c.RunID); rv.State != StateDone {
			t.Fatalf("cell %d job state = %s, want done", c.Index, rv.State)
		}
	}

	got := getSweepArtifact(t, ts, view.ID, SweepCellsArtifact)

	// Serial in-process reference: expand the same spec, run every cell on
	// a fresh simulator, and emit the same writer.
	sp, err := spec.ParseSweep([]byte(tinySweep))
	if err != nil {
		t.Fatal(err)
	}
	cells, err := sp.Normalized().Expand()
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]exp.CellRow, len(cells))
	for i, c := range cells {
		sim, _, err := c.Spec.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = exp.CellRow{ID: c.Hash, Values: c.Values, Result: res}
	}
	var want bytes.Buffer
	if err := exp.WriteCellsCSV([]string{"workload", "scheduler"}, rows, &want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("sweep cells.csv differs from serial in-process execution:\nserver:\n%s\nserial:\n%s",
			got, want.Bytes())
	}
}

// TestConcurrentSweepsDedupeSharedCells: two overlapping sweeps submitted
// concurrently must simulate each unique cell exactly once — proven by the
// scheduled-cells metric — and still each produce a complete, correct
// aggregate. The server starts only after both submissions so the overlap
// is guaranteed to be resolved against in-flight (not completed) work.
func TestConcurrentSweepsDedupeSharedCells(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// 4 cells each, sharing the 2 (bht × {rr, adaptive-bind}) cells.
	sweepA := `{
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [
			{"field": "workload", "values": ["amr", "bht"]},
			{"field": "scheduler", "values": ["rr", "adaptive-bind"]}
		]
	}`
	sweepB := `{
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [
			{"field": "workload", "values": ["bht", "bfs-citation"]},
			{"field": "scheduler", "values": ["rr", "adaptive-bind"]}
		]
	}`

	var wg sync.WaitGroup
	ids := make([]string, 2)
	for i, body := range []string{sweepA, sweepB} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var view sweepView
			if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
				t.Error(err)
				return
			}
			ids[i] = view.ID
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	s.Start()

	finalA := waitSweepTerminal(t, ts, ids[0])
	finalB := waitSweepTerminal(t, ts, ids[1])
	if finalA.State != StateDone || finalB.State != StateDone {
		t.Fatalf("sweeps: %s / %s, want done/done", finalA.State, finalB.State)
	}

	m := getMetrics(t, ts)
	if m.Sweeps.CellsExpanded != 8 {
		t.Fatalf("cells expanded = %d, want 8", m.Sweeps.CellsExpanded)
	}
	// 6 unique cells across the two sweeps: exactly 6 scheduled, 2 deduped.
	if m.Sweeps.CellsScheduled != 6 {
		t.Fatalf("cells scheduled = %d, want 6 (each unique cell simulated once)", m.Sweeps.CellsScheduled)
	}
	if m.Sweeps.CellsDeduped != 2 {
		t.Fatalf("cells deduped = %d, want 2", m.Sweeps.CellsDeduped)
	}
	if m.JobsDone != 6 {
		t.Fatalf("jobs done = %d, want 6", m.JobsDone)
	}

	// The deduped sweep's aggregate must be byte-identical to what a
	// private, serial execution of its axes produces.
	dedupedID := ids[0]
	if finalB.Deduped > 0 {
		dedupedID = ids[1]
	}
	var dedupedBody string
	if dedupedID == ids[0] {
		dedupedBody = sweepA
	} else {
		dedupedBody = sweepB
	}
	got := getSweepArtifact(t, ts, dedupedID, SweepCellsArtifact)

	s2, ts2 := newTestServer(t, Config{Workers: 1})
	s2.Start()
	_, v2 := submitSweep(t, ts2, dedupedBody)
	if f := waitSweepTerminal(t, ts2, v2.ID); f.State != StateDone {
		t.Fatalf("reference sweep failed: %s", f.Error)
	}
	want := getSweepArtifact(t, ts2, v2.ID, SweepCellsArtifact)
	if !bytes.Equal(got, want) {
		t.Fatalf("deduped sweep cells.csv differs from isolated execution:\nshared:\n%s\nisolated:\n%s", got, want)
	}
}

// TestSweepDedupesInFlightSingleton: a sweep whose cell matches an
// in-flight /v1/runs submission attaches to it instead of scheduling a
// duplicate.
func TestSweepDedupesInFlightSingleton(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Not started: the singleton stays queued while the sweep resolves.

	code, rv := submit(t, ts, `{"workload":"amr","scale":"tiny","sample_every":256}`)
	if code != http.StatusAccepted {
		t.Fatalf("singleton submit: status %d, want 202", code)
	}
	_, sv := submitSweep(t, ts, `{
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [{"field": "workload", "values": ["amr", "bht"]}]
	}`)
	if sv.Deduped != 1 || sv.Scheduled != 1 {
		t.Fatalf("sweep view = %+v, want 1 deduped (the in-flight amr run) + 1 scheduled", sv)
	}

	s.Start()
	final := waitSweepTerminal(t, ts, sv.ID)
	if final.State != StateDone {
		t.Fatalf("sweep failed: %s", final.Error)
	}
	if jv := waitTerminal(t, ts, rv.ID); jv.State != StateDone {
		t.Fatalf("singleton failed: %s", jv.Error)
	}
	m := getMetrics(t, ts)
	if m.Sweeps.CellsDeduped != 1 {
		t.Fatalf("cells deduped = %d, want 1", m.Sweeps.CellsDeduped)
	}
}

// TestSweepCoalesceAndCache: resubmitting an identical sweep coalesces
// while in flight and answers from the cache when done — and the cached
// answer survives a process restart on the same cache directory.
func TestSweepCoalesceAndCache(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	s.Start()

	_, v1 := submitSweep(t, ts, tinySweep)
	final := waitSweepTerminal(t, ts, v1.ID)
	if final.State != StateDone {
		t.Fatalf("sweep failed: %s", final.Error)
	}

	code, v2 := submitSweep(t, ts, tinySweep)
	if code != http.StatusOK {
		t.Fatalf("resubmit: status %d, want 200", code)
	}
	if v2.ID != v1.ID {
		t.Fatalf("identical sweeps got different ids: %s vs %s", v1.ID, v2.ID)
	}
	m := getMetrics(t, ts)
	if m.Sweeps.Coalesced != 1 {
		t.Fatalf("sweeps coalesced = %d, want 1", m.Sweeps.Coalesced)
	}
	csv1 := getSweepArtifact(t, ts, v1.ID, SweepCellsArtifact)

	// Restart on the same cache dir: the sweep answers from disk without
	// executing anything, artifacts intact.
	s2, ts2 := newTestServer(t, Config{Workers: 1, CacheDir: dir})
	s2.Start()
	code3, v3 := submitSweep(t, ts2, tinySweep)
	if code3 != http.StatusOK || !v3.Cached {
		t.Fatalf("restart resubmit: status %d cached %v, want 200 cached", code3, v3.Cached)
	}
	if m2 := getMetrics(t, ts2); m2.Sweeps.CellsScheduled != 0 {
		t.Fatalf("restart scheduled %d cells, want 0", m2.Sweeps.CellsScheduled)
	}
	csv2 := getSweepArtifact(t, ts2, v1.ID, SweepCellsArtifact)
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("cached cells.csv differs across restart")
	}
}

// TestSweepFairShareNoStarvation: with one worker, a large sweep queued
// first must not starve a small sweep from another tenant — strict tenant
// round-robin interleaves them, so the small sweep finishes while the large
// one still has queued cells. Both sweeps are queued before the dispatcher
// starts, so the big sweep's entire backlog sits ahead of the small one.
func TestSweepFairShareNoStarvation(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})

	// 40 distinct cells: sample_every values on one tiny workload.
	values := make([]string, 40)
	for i := range values {
		values[i] = strconv.Itoa(64 + i)
	}
	big := `{
		"tenant": "bulk",
		"base": {"workload": "amr", "scale": "tiny"},
		"axes": [{"field": "sample_every", "values": [` + strings.Join(values, ",") + `]}]
	}`
	small := `{
		"tenant": "interactive",
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [{"field": "workload", "values": ["amr", "bht"]}]
	}`

	_, bigView := submitSweep(t, ts, big)
	if bigView.Cells != 40 {
		t.Fatalf("big sweep cells = %d, want 40", bigView.Cells)
	}
	_, smallView := submitSweep(t, ts, small)
	s.Start()

	finalSmall := waitSweepTerminal(t, ts, smallView.ID)
	if finalSmall.State != StateDone {
		t.Fatalf("small sweep failed: %s", finalSmall.Error)
	}
	// The moment the small sweep completed, fair share guarantees the big
	// sweep had not monopolized the worker: it must still have cells left.
	bigNow := getSweep(t, ts, bigView.ID)
	if bigNow.Done >= bigNow.Cells {
		t.Fatal("big sweep finished before the small sweep: fair share failed to interleave tenants")
	}
	if finalBig := waitSweepTerminal(t, ts, bigView.ID); finalBig.State != StateDone {
		t.Fatalf("big sweep failed: %s", finalBig.Error)
	}
}

// TestSweepCancel: cancellation releases exclusively-owned queued cells but
// leaves shared cells to finish for their other owners.
func TestSweepCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	// Not started: everything stays queued while we set up ownership.

	_, a := submitSweep(t, ts, `{
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [{"field": "workload", "values": ["amr", "bht", "bfs-citation"]}]
	}`)
	_, b := submitSweep(t, ts, `{
		"base": {"scale": "tiny", "sample_every": 256},
		"axes": [{"field": "workload", "values": ["amr", "bht"]}]
	}`)
	if b.Deduped != 2 {
		t.Fatalf("sweep B deduped = %d, want 2", b.Deduped)
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps/"+a.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var av sweepView
	if err := json.NewDecoder(resp.Body).Decode(&av); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if av.State != StateFailed || av.ErrorKind != KindCanceled {
		t.Fatalf("canceled sweep = %s/%s, want failed/canceled", av.State, av.ErrorKind)
	}

	s.Start()
	// B still completes: its two cells were shared, so cancel left them.
	finalB := waitSweepTerminal(t, ts, b.ID)
	if finalB.State != StateDone {
		t.Fatalf("sweep B failed after A's cancel: %s", finalB.Error)
	}
	// A's exclusive bfs-citation cell was released without executing.
	m := getMetrics(t, ts)
	if m.Sweeps.Canceled != 1 {
		t.Fatalf("sweeps canceled = %d, want 1", m.Sweeps.Canceled)
	}
	if m.JobsDone != 2 {
		t.Fatalf("jobs done = %d, want 2 (released cell must not execute)", m.JobsDone)
	}
}

// TestSweepRateLimit: per-tenant sweep token bucket answers 429 with
// Retry-After once the burst is spent — but idempotent resubmissions of an
// accepted sweep coalesce without being throttled.
func TestSweepRateLimit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, SweepRPS: 0.001, SweepBurst: 1})
	s.Start()

	code, v1 := submitSweep(t, ts, tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("first sweep: status %d, want 202", code)
	}

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{
		"base": {"scale": "tiny", "sample_every": 128},
		"axes": [{"field": "workload", "values": ["amr"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second sweep: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var envelope apiError
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Kind != ErrKindRateLimited || !envelope.Retryable {
		t.Fatalf("throttle envelope = %+v, want retryable rate-limited", envelope)
	}

	// Retrying the accepted sweep is free: it coalesces before the limiter.
	code3, v3 := submitSweep(t, ts, tinySweep)
	if code3 != http.StatusOK || v3.ID != v1.ID {
		t.Fatalf("coalescing resubmit throttled: status %d id %s", code3, v3.ID)
	}

	// A different tenant has its own bucket.
	code4, _ := submitSweep(t, ts, `{
		"tenant": "other",
		"base": {"scale": "tiny", "sample_every": 128},
		"axes": [{"field": "workload", "values": ["amr"]}]
	}`)
	if code4 != http.StatusAccepted {
		t.Fatalf("other tenant's sweep: status %d, want 202", code4)
	}
}

// TestSweepValidationErrors: malformed sweeps answer 400 with the unified
// error envelope.
func TestSweepValidationErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxSweepCells: 8})
	s.Start()
	for _, body := range []string{
		`{not json`,
		`{"base": {"scale":"tiny"}, "axes": []}`,                                             // no axes
		`{"base": {"scale":"tiny"}, "axes": [{"field":"nope","values":[1]}]}`,                // unknown field
		`{"base": {"scale":"tiny"}, "axes": [{"field":"workload","values":["amr","amr"]}]}`,  // dup value
		`{"base": {"scale":"tiny"}, "axes": [{"field":"max_cycles","values":[1,2,3,4,5,6,7,8,9]}]}`, // > MaxSweepCells
	} {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var envelope apiError
		if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
			t.Fatalf("sweep(%q): envelope decode: %v", body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || envelope.Kind != ErrKindBadRequest {
			t.Errorf("sweep(%q): status %d kind %q, want 400 bad-request", body, resp.StatusCode, envelope.Kind)
		}
	}
}

// TestSweepEvents: a live SSE subscriber sees every per-cell completion and
// the terminal state with monotonic ids, and a reconnect with Last-Event-ID
// replays exactly the missed suffix.
func TestSweepEvents(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	// Submit while the dispatcher is stopped, attach the stream, then
	// start: every cell event is delivered live.
	_, view := submitSweep(t, ts, tinySweep)
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	s.Start()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	stream := buf.String()
	if n := strings.Count(stream, "event: cell"); n != 4 {
		t.Fatalf("stream has %d cell events, want 4:\n%s", n, stream)
	}
	if !strings.Contains(stream, `"state":"done"`) {
		t.Fatalf("stream missing terminal done state:\n%s", stream)
	}

	// Resume after the first event: the replay must hold the remaining
	// cell events and the terminal state, nothing before the cursor.
	req, err := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+view.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "1")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var buf2 bytes.Buffer
	if _, err := buf2.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	resumed := buf2.String()
	if strings.Contains(resumed, "id: 1\n") {
		t.Fatalf("resume replayed the acknowledged event:\n%s", resumed)
	}
	if n := strings.Count(resumed, "event: cell"); n != 3 {
		t.Fatalf("resume replayed %d cell events, want 3:\n%s", n, resumed)
	}
	if !strings.Contains(resumed, `"state":"done"`) {
		t.Fatalf("resume missing terminal state:\n%s", resumed)
	}
}
