// Package serve implements lapermd: an HTTP/JSON simulation service over the
// RunSpec API with a content-addressed result cache.
//
// A submission is a RunSpec; its SHA-256 content hash (spec.RunSpec.Hash) is
// simultaneously the run ID, the in-flight coalescing key, and the on-disk
// cache key. Two identical submissions therefore execute the simulation once:
// the second either attaches to the in-flight job (coalesced) or is answered
// from the cache (hit), and the engine's bit-determinism guarantees the
// cached artifacts are byte-identical to what a fresh run would produce.
//
// Execution fans into the experiment harness's bounded worker pool
// (exp.Pool.RunContext): a dispatcher goroutine batches queued jobs up to the
// worker count, runs each batch under the server's base context, and maps
// run failures onto the engine's structured error taxonomy (deadlock,
// invariant, cycle-limit, deadline, canceled, panic). Progress and timeline
// samples stream to clients over Server-Sent Events.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"laperm/internal/exp"
	"laperm/internal/faults"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/spec"
	"laperm/internal/telemetry"
	"laperm/internal/trace"
)

// Artifact names of one completed run, served under /v1/artifacts/{id}/.
// ResultArtifact (result.json) is declared in cache.go.
const (
	SpecArtifact     = "spec.json"
	EventsArtifact   = "events.jsonl"
	PerfettoArtifact = "trace.perfetto.json"
	TimelineArtifact = "timeline.csv"
	ReuseArtifact    = "reuse.csv"
)

// ArtifactNames lists every artifact a completed run exposes.
var ArtifactNames = []string{
	SpecArtifact, ResultArtifact, EventsArtifact,
	PerfettoArtifact, TimelineArtifact, ReuseArtifact,
}

// artifactContentType maps artifact names onto media types.
func artifactContentType(name string) string {
	switch filepath.Ext(name) {
	case ".json":
		return "application/json"
	case ".jsonl":
		return "application/jsonl"
	case ".csv":
		return "text/csv"
	}
	return "application/octet-stream"
}

// Config configures a Server.
type Config struct {
	// CacheDir roots the content-addressed result cache. Required.
	CacheDir string
	// CacheMaxBytes bounds the cache (LRU eviction); <= 0 means unlimited.
	CacheMaxBytes int64
	// Workers bounds concurrently executing jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds queued-but-unstarted jobs; <= 0 means 256.
	// Submissions beyond it are rejected with 503.
	QueueDepth int
	// JobDeadline is the per-job wall-clock budget; a run that exceeds it
	// is canceled and fails with kind "deadline". <= 0 means unlimited.
	JobDeadline time.Duration
	// MaxCycles caps every job's simulated-cycle budget. A spec asking
	// for more (or for the engine default) runs under this cap instead; a
	// run that would exceed it fails with a *gpu.CycleLimitError (kind
	// "cycle-limit") and is not cached. Completing runs are unaffected —
	// MaxCycles only bounds, it never alters behaviour — so the cap
	// cannot poison the content-addressed cache. <= 0 means no cap.
	MaxCycles uint64
	// RetryLimit bounds transparent server-side re-executions of a job
	// whose attempt failed with a retryable kind (transient, panic).
	// 0 means the default of 2; negative disables retries entirely.
	RetryLimit int
	// Faults, when non-nil, arms deterministic failure injection across
	// the service: cache write/read/evict, submit, SSE flush, the
	// experiment pool's cell site, and the engine's poll/watchdog sites.
	// Nil (production) keeps every site zero-cost.
	Faults *faults.Registry
	// Telemetry, when non-nil, is the metric registry the server
	// instruments itself onto — share one across servers to aggregate, or
	// leave nil and the server creates a private registry (reachable via
	// Server.Telemetry). Both expositions, GET /metrics (Prometheus text)
	// and GET /metrics.json, render from this registry.
	Telemetry *telemetry.Registry
	// Logger, when non-nil, receives structured logs: one line per job
	// lifecycle transition at Info, per-request access lines at Debug.
	// Nil discards everything.
	Logger *slog.Logger
	// MaxSweepCells caps how many cells one sweep may expand to, below
	// the spec-level spec.MaxSweepCells bound; <= 0 means the spec bound.
	MaxSweepCells int
	// SweepRPS rate-limits sweep submissions per tenant (token bucket,
	// sustained sweeps per second); <= 0 means unlimited. Submissions over
	// the limit get 429 with Retry-After.
	SweepRPS float64
	// SweepBurst is the per-tenant token-bucket burst; <= 0 means 1 (only
	// meaningful when SweepRPS > 0).
	SweepBurst int
}

// defaultRetryLimit is the number of transparent re-executions a job gets
// after retryable failures when Config.RetryLimit is zero.
const defaultRetryLimit = 2

// retryLimit resolves Config.RetryLimit's encoding.
func (c Config) retryLimit() int {
	switch {
	case c.RetryLimit < 0:
		return 0
	case c.RetryLimit == 0:
		return defaultRetryLimit
	}
	return c.RetryLimit
}

// Server is the lapermd service: handlers, job registry, dispatcher, and
// cache. Create with New, start the dispatcher with Start, mount Handler,
// and stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	workers int
	cache   *Cache
	meter   *exp.Meter
	started time.Time
	log     *slog.Logger
	tel     *serveMetrics
	flights *telemetry.FlightRing
	reqSeq  atomic.Uint64

	mu       sync.Mutex
	jobs     map[string]*Job
	sweeps   map[string]*Sweep
	jobSeq   uint64 // listing-order sequence; next value, guarded by mu
	draining bool
	fq       *fairQueue
	limits   *rateLimits

	batchMu sync.Mutex
	batch   []*Job

	baseCtx        context.Context
	cancelBase     context.CancelCauseFunc
	dispatcherDone chan struct{}

	// testBeforeRun, when non-nil, runs after a job transitions to
	// running and before the simulator starts — a test gate for
	// deterministic coalescing and cancellation scenarios.
	testBeforeRun func(*Job)
}

// New builds a Server (opening or creating its cache) without starting the
// dispatcher; call Start before serving.
func New(cfg Config) (*Server, error) {
	cache, err := OpenCache(cfg.CacheDir, cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	cache.flts = cfg.Faults
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:            cfg,
		workers:        workers,
		cache:          cache,
		meter:          exp.NewMeter(),
		started:        time.Now(),
		log:            logger,
		flights:        telemetry.NewFlightRing(flightRingCap),
		jobs:           make(map[string]*Job),
		sweeps:         make(map[string]*Sweep),
		fq:             newFairQueue(depth),
		limits:         newRateLimits(cfg.SweepRPS, cfg.SweepBurst),
		baseCtx:        ctx,
		cancelBase:     cancel,
		dispatcherDone: make(chan struct{}),
	}
	s.tel = s.newServeMetrics(reg)
	cache.readBytes = reg.Counter(MetricCacheReadB, "Artifact bytes read (and verified) from the cache.")
	cache.writtenBytes = reg.Counter(MetricCacheWrittenB, "Artifact bytes committed to the cache.")
	return s, nil
}

// Start launches the dispatcher goroutine.
func (s *Server) Start() { go s.dispatch() }

// Drain stops accepting new work (submissions get 503), lets queued and
// running jobs finish, and returns when the dispatcher exits. If ctx expires
// first, in-flight simulations are canceled (they fail with kind "canceled")
// and Drain waits for the dispatcher before returning ctx's error.
func (s *Server) Drain(ctx context.Context) error {
	s.closeQueue()
	select {
	case <-s.dispatcherDone:
		return nil
	case <-ctx.Done():
		s.cancelBase(fmt.Errorf("serve: drain deadline exceeded: %w", context.Cause(ctx)))
		<-s.dispatcherDone
		return ctx.Err()
	}
}

// Close cancels all in-flight work and waits for the dispatcher to exit.
func (s *Server) Close() {
	s.closeQueue()
	s.cancelBase(errors.New("serve: server closed"))
	<-s.dispatcherDone
}

func (s *Server) closeQueue() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.draining {
		s.draining = true
		s.fq.Close()
	}
}

// Cache exposes the server's result cache (tests and metrics).
func (s *Server) Cache() *Cache { return s.cache }

// Handler returns the service's routes, each wrapped with per-route
// request/latency instrumentation (the "route" label is the pattern, so
// path parameters never explode series cardinality).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument("/v1/runs", s.handleSubmit))
	mux.HandleFunc("GET /v1/runs", s.instrument("/v1/runs:list", s.handleRunsList))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument("/v1/runs/{id}", s.handleStatus))
	mux.HandleFunc("GET /v1/runs/{id}/events", s.instrument("/v1/runs/{id}/events", s.handleEvents))
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.instrument("/v1/runs/{id}/trace", s.handleTrace))
	mux.HandleFunc("GET /v1/artifacts/{id}/{name}", s.instrument("/v1/artifacts/{id}/{name}", s.handleArtifact))
	mux.HandleFunc("POST /v1/sweeps", s.instrument("/v1/sweeps", s.handleSweepSubmit))
	mux.HandleFunc("GET /v1/sweeps/{id}", s.instrument("/v1/sweeps/{id}", s.handleSweepStatus))
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.instrument("/v1/sweeps/{id}/events", s.handleSweepEvents))
	mux.HandleFunc("POST /v1/sweeps/{id}/cancel", s.instrument("/v1/sweeps/{id}/cancel", s.handleSweepCancel))
	mux.HandleFunc("GET /v1/sweeps/{id}/artifacts/{name}",
		s.instrument("/v1/sweeps/{id}/artifacts/{name}", s.handleSweepArtifact))
	mux.HandleFunc("GET /v1/workloads", s.instrument("/v1/workloads", s.handleWorkloads))
	mux.HandleFunc("GET /v1/schedulers", s.instrument("/v1/schedulers", s.handleSchedulers))
	mux.HandleFunc("GET /v1/models", s.instrument("/v1/models", s.handleModels))
	// Prometheus text exposition; the JSON view of the same registry
	// stays at /metrics.json for humans and the smoke tests.
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetricsProm))
	mux.HandleFunc("GET /metrics.json", s.instrument("/metrics.json", s.handleMetricsJSON))
	// Liveness: the process is up and serving HTTP. Always 200 — a
	// draining or saturated server is still alive and must not be killed
	// by a liveness probe mid-drain.
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}))
	// Readiness: whether new submissions would be accepted right now.
	// False (503) while draining or while the launch queue is saturated,
	// so load balancers steer traffic away before it is shed.
	mux.HandleFunc("GET /readyz", s.instrument("/readyz", s.handleReady))
	return mux
}

// handleReady implements the readiness probe.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	saturated := s.fq.SinglesSaturated()
	switch {
	case draining:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case saturated:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "saturated"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// Wire error kinds shared by every endpoint: the envelope's "kind" field
// classifies the failure so clients branch on a stable string, never on
// message text.
const (
	ErrKindBadRequest  = "bad-request"   // 400: the request itself is wrong; retrying it verbatim cannot help
	ErrKindNotFound    = "not-found"     // 404: no such run, sweep, or artifact
	ErrKindRateLimited = "rate-limited"  // 429: shed or throttled; retry the idempotent request after retry_after
	ErrKindDraining    = "draining"      // 503: this process is shutting down; go to another backend
	ErrKindTransient   = "transient"     // 503: momentary server-side failure; retry after retry_after
	ErrKindInternal    = "internal"      // 500: a bug, not a caller problem
)

// apiError is the one JSON error envelope every endpoint writes: a stable
// kind, the human message, whether the same request may succeed on retry,
// and (when retryable) how long to wait. internal/client parses exactly
// this shape everywhere.
type apiError struct {
	Kind      string `json:"kind"`
	Message   string `json:"message"`
	Retryable bool   `json:"retryable"`
	// RetryAfterSec mirrors the Retry-After header for clients that only
	// see the body.
	RetryAfterSec int `json:"retry_after,omitempty"`
	// ValidWorkloads is attached when the error was an unknown workload.
	ValidWorkloads []string `json:"valid_workloads,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeAPIError writes the envelope; retryAfter > 0 also sets the
// Retry-After header (before WriteHeader, necessarily).
func writeAPIError(w http.ResponseWriter, status int, kind string, retryable bool, retryAfter int, err error) {
	body := apiError{Kind: kind, Message: err.Error(), Retryable: retryable, RetryAfterSec: retryAfter}
	var ue *kernels.UnknownWorkloadError
	if errors.As(err, &ue) {
		body.ValidWorkloads = ue.Known
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, body)
}

func badRequest(w http.ResponseWriter, err error) {
	writeAPIError(w, http.StatusBadRequest, ErrKindBadRequest, false, 0, err)
}

func notFound(w http.ResponseWriter, err error) {
	writeAPIError(w, http.StatusNotFound, ErrKindNotFound, false, 0, err)
}

func rateLimited(w http.ResponseWriter, retryAfter int, err error) {
	writeAPIError(w, http.StatusTooManyRequests, ErrKindRateLimited, true, retryAfter, err)
}

func draining(w http.ResponseWriter, err error) {
	// Draining is terminal for this process: no Retry-After, not
	// retryable here — clients should go elsewhere.
	writeAPIError(w, http.StatusServiceUnavailable, ErrKindDraining, false, 0, err)
}

func transientErr(w http.ResponseWriter, err error) {
	writeAPIError(w, http.StatusServiceUnavailable, ErrKindTransient, true, 1, err)
}

func internalErr(w http.ResponseWriter, err error) {
	writeAPIError(w, http.StatusInternalServerError, ErrKindInternal, false, 0, err)
}

// tenantOf extracts the request's fair-share tenant: the X-Laperm-Tenant
// header, defaulting to spec.DefaultTenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Laperm-Tenant"); t != "" {
		return t
	}
	return spec.DefaultTenant
}

// handleSubmit accepts a RunSpec, resolves it to a job by content hash —
// attaching to an in-flight job, answering from the cache, or enqueueing a
// fresh execution — and returns the job view (202 for newly queued work,
// 200 otherwise).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		badRequest(w, fmt.Errorf("serve: read request: %w", err))
		return
	}
	sp, err := spec.Parse(body)
	if err != nil {
		badRequest(w, err)
		return
	}
	sp = sp.Normalized()
	if err := sp.Validate(); err != nil {
		badRequest(w, err)
		return
	}
	id, err := sp.Hash()
	if err != nil {
		badRequest(w, err)
		return
	}
	s.tel.submissions.Inc()
	if err := s.cfg.Faults.Hit(faults.SiteSubmit); err != nil {
		// An injected submit failure models the server dying mid-accept:
		// answered as a retryable 503 so clients back off and resubmit —
		// idempotent by construction, since the content hash is the run ID.
		transientErr(w, err)
		return
	}

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok && j.State() != StateFailed {
		// In-flight or finished in this process. Attaching to a live job
		// is a coalesce; matching a done job is a cache hit. Either way
		// the job now carries a direct claim: a sweep that also owns it
		// may no longer release it on cancellation.
		j.noteSingleton()
		if j.State() == StateDone {
			s.tel.cacheHits.Inc()
		} else {
			s.tel.coalesced.Inc()
			j.noteCoalesced()
		}
		s.mu.Unlock()
		s.respondJob(w, http.StatusOK, j)
		return
	}
	if _, ok := s.cache.Lookup(id); ok {
		// Complete entry from a previous process (or an evicted job
		// record). Verify before serving: ReadArtifact hashes the result
		// against the entry's manifest and discards corrupt debris, in
		// which case this submission falls through to a fresh execution
		// instead of answering from a poisoned entry.
		if _, err := s.cache.ReadArtifact(id, ResultArtifact); err == nil {
			s.tel.cacheHits.Inc()
			j := s.registerLocked(newCachedJob(id, sp))
			s.mu.Unlock()
			s.respondJob(w, http.StatusOK, j)
			return
		}
	}
	s.tel.cacheMisses.Inc()
	if s.draining {
		s.mu.Unlock()
		draining(w, errors.New("serve: draining, not accepting new runs"))
		return
	}
	j := newJob(id, sp)
	j.noteSingleton()
	j.flow = flowKey{tenant: tenantOf(r)}
	j.sseEvents, j.sseDropped = s.tel.sseEvents, s.tel.sseDropped
	j.flight = telemetry.NewFlight(id)
	j.flight.Instant("job", "submit", map[string]string{
		"workload": sp.Workload, "scheduler": sp.Scheduler,
	})
	j.enqueuedAt = time.Now()
	j.queueEnd = j.flight.Start("job", "queue")
	if err := s.fq.Push(j, 1); err != nil {
		s.mu.Unlock()
		if errors.Is(err, errQueueClosed) {
			draining(w, errors.New("serve: draining, not accepting new runs"))
			return
		}
		// Load shedding: the queue is momentarily saturated. 429 with
		// Retry-After tells well-behaved clients to back off and retry
		// the same (idempotent) submission.
		s.tel.shed.Inc()
		rateLimited(w, 1,
			fmt.Errorf("serve: launch queue full (%d queued), retry later", s.tel.queueDepth.Value()))
		return
	}
	s.registerLocked(j)
	s.tel.queueDepth.Inc()
	s.logTransition(j, "queued")
	s.mu.Unlock()
	s.respondJob(w, http.StatusAccepted, j)
}

// registerLocked adds a job to the registry under s.mu, assigning its
// listing sequence number. Returns the registered job: the existing one if
// the id is already present and live, the new one when the slot was empty
// or held a failed record (failure is terminal — its hooks have fired and
// resubmission is expected to supersede it).
func (s *Server) registerLocked(j *Job) *Job {
	if existing := s.jobs[j.ID]; existing != nil && existing.State() != StateFailed {
		return existing
	}
	s.jobSeq++
	j.seq = s.jobSeq
	s.jobs[j.ID] = j
	return j
}

// lookupJob resolves id to a job, materializing one for disk-only cache
// entries left by a previous process.
func (s *Server) lookupJob(id string) *Job {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j != nil {
		return j
	}
	if _, ok := s.cache.Lookup(id); !ok {
		return nil
	}
	sp := spec.RunSpec{}
	if raw, err := s.cache.ReadArtifact(id, SpecArtifact); err == nil {
		if parsed, err := spec.Parse(raw); err == nil {
			sp = parsed.Normalized()
		}
	}
	j = newCachedJob(id, sp)
	s.mu.Lock()
	j = s.registerLocked(j)
	s.mu.Unlock()
	return j
}

// respondJob writes a job view, embedding the cached result and artifact
// list for completed jobs.
func (s *Server) respondJob(w http.ResponseWriter, status int, j *Job) {
	view := j.view(nil)
	if view.State == StateDone {
		if raw, err := s.cache.ReadArtifact(j.ID, ResultArtifact); err == nil {
			view.Result = raw
		}
		view.Artifacts = ArtifactNames
	}
	writeJSON(w, status, view)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		notFound(w, fmt.Errorf("serve: no run %q", id))
		return
	}
	s.respondJob(w, http.StatusOK, j)
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id, name := r.PathValue("id"), r.PathValue("name")
	known := false
	for _, n := range ArtifactNames {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		notFound(w,
			fmt.Errorf("serve: unknown artifact %q (valid: %v)", name, ArtifactNames))
		return
	}
	data, err := s.cache.ReadArtifact(id, name)
	if err != nil {
		// A transient (injected) read failure is retryable; everything
		// else — no entry, or a corrupt entry that verification just
		// discarded — is an honest miss the caller resolves by
		// resubmitting the run.
		if faults.IsInjected(err) {
			transientErr(w, err)
			return
		}
		notFound(w, fmt.Errorf("serve: no artifact %s for run %q", name, id))
		return
	}
	w.Header().Set("Content-Type", artifactContentType(name))
	w.Write(data)
}

// handleEvents streams a job's lifecycle over Server-Sent Events: a "state"
// snapshot immediately, then state transitions, retry notices, batch
// "progress" ticks, and timeline "sample" events until the job reaches a
// terminal state. Every published event carries a job-scoped monotonic
// `id:`; a client reconnecting with Last-Event-ID replays everything it
// missed from the job's ring before rejoining the live stream.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.lookupJob(id)
	if j == nil {
		notFound(w, fmt.Errorf("serve: no run %q", id))
		return
	}
	s.streamSSE(w, r, j.subscribeSince)
}

// streamSSE runs the SSE protocol over any stream (job or sweep): snapshot
// or backlog replay per Last-Event-ID, then live events until the stream
// ends or the client goes away.
func (s *Server) streamSSE(w http.ResponseWriter, r *http.Request, subscribe func(uint64) subscription) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		internalErr(w, errors.New("serve: streaming unsupported"))
		return
	}
	var afterID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			badRequest(w, fmt.Errorf("serve: bad Last-Event-ID %q", v))
			return
		}
		afterID = n
	}
	sub := subscribe(afterID)
	defer sub.cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// flush pushes one event; an injected flush fault drops the connection
	// mid-stream, exactly like a proxy or network tear — the client's
	// Last-Event-ID resume is the recovery path under test.
	flush := func(ev Event) bool {
		if err := s.cfg.Faults.Hit(faults.SiteSSEFlush); err != nil {
			return false
		}
		writeSSE(w, ev)
		flusher.Flush()
		return true
	}
	// A fresh attach opens with a snapshot. A resume replays the backlog
	// instead — unless the ring has dropped events past afterID, in which
	// case a snapshot bridges the gap before the backlog.
	gap := afterID > 0 && len(sub.backlog) > 0 && sub.backlog[0].ID > afterID+1
	if afterID == 0 || gap {
		snapID := sub.lastID
		if len(sub.backlog) > 0 {
			snapID = sub.backlog[0].ID - 1
		}
		if !flush(Event{ID: snapID, Type: "state", Data: sub.snap}) {
			return
		}
	} else if afterID > 0 && len(sub.backlog) == 0 {
		// Nothing missed; if the job is already terminal the closed
		// channel would end the stream with no bytes at all, so restate
		// the terminal snapshot for the client's benefit.
		select {
		case ev, open := <-sub.ch:
			if !open {
				flush(Event{ID: sub.lastID, Type: "state", Data: sub.snap})
				return
			}
			if !flush(ev) { // a live event raced in; deliver it
				return
			}
		default:
		}
	}
	for _, ev := range sub.backlog {
		if !flush(ev) {
			return
		}
	}
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				return // terminal state delivered; stream complete
			}
			if !flush(ev) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, ev Event) {
	payload, err := json.Marshal(ev.Data)
	if err != nil {
		payload = []byte(`{"error":"marshal failed"}`)
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, payload)
}

// metricsView is the /metrics payload.
type metricsView struct {
	UptimeSec float64 `json:"uptime_sec"`
	Draining  bool    `json:"draining"`
	Workers   int     `json:"workers"`

	QueueDepth int64 `json:"queue_depth"`
	Running    int64 `json:"running"`
	JobsDone   int64 `json:"jobs_done"`
	JobsFailed int64 `json:"jobs_failed"`
	Retries    int64 `json:"retries"`
	Shed       int64 `json:"shed"`

	Submissions   int64   `json:"submissions"`
	Coalesced     int64   `json:"coalesced"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`

	Cache CacheStats `json:"cache"`

	Sweeps sweepMetricsView `json:"sweeps"`

	SimCycles       uint64  `json:"sim_cycles"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec"`
}

// sweepMetricsView is the sweep-service slice of /metrics.json.
type sweepMetricsView struct {
	Submitted      int64 `json:"submitted"`
	Coalesced      int64 `json:"coalesced"`
	Throttled      int64 `json:"throttled"`
	Active         int64 `json:"active"`
	Done           int64 `json:"done"`
	Failed         int64 `json:"failed"`
	Canceled       int64 `json:"canceled"`
	CellsExpanded  int64 `json:"cells_expanded"`
	CellsDeduped   int64 `json:"cells_deduped"`
	CellsCached    int64 `json:"cells_served_from_cache"`
	CellsScheduled int64 `json:"cells_scheduled"`
}

// handleMetricsJSON renders the JSON metrics view — the same registry the
// Prometheus exposition reads, reshaped into the original /metrics payload
// (field-compatible with pre-telemetry clients).
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	m := metricsView{
		UptimeSec:   time.Since(s.started).Seconds(),
		Draining:    draining,
		Workers:     s.workers,
		QueueDepth:  s.tel.queueDepth.Value(),
		Running:     s.tel.running.Value(),
		JobsDone:    int64(s.tel.jobsDone.Value()),
		JobsFailed:  int64(s.tel.jobsFailed.Value()),
		Retries:     int64(s.tel.retries.Value()),
		Shed:        int64(s.tel.shed.Value()),
		Submissions: int64(s.tel.submissions.Value()),
		Coalesced:   int64(s.tel.coalesced.Value()),
		CacheHits:   int64(s.tel.cacheHits.Value()),
		CacheMisses: int64(s.tel.cacheMisses.Value()),
		Cache:       s.cache.Stats(),
		Sweeps: sweepMetricsView{
			Submitted:      int64(s.tel.sweepSubmissions.Value()),
			Coalesced:      int64(s.tel.sweepsCoalesced.Value()),
			Throttled:      int64(s.tel.sweepsThrottled.Value()),
			Active:         s.tel.sweepsActive.Value(),
			Done:           int64(s.tel.sweepsDone.Value()),
			Failed:         int64(s.tel.sweepsFailed.Value()),
			Canceled:       int64(s.tel.sweepsCanceled.Value()),
			CellsExpanded:  int64(s.tel.sweepCellsExpanded.Value()),
			CellsDeduped:   int64(s.tel.sweepCellsDeduped.Value()),
			CellsCached:    int64(s.tel.sweepCellsCached.Value()),
			CellsScheduled: int64(s.tel.sweepCellsScheduled.Value()),
		},
		SimCycles: s.meter.Cycles(),
	}
	if looked := m.CacheHits + m.CacheMisses; looked > 0 {
		m.CacheHitRatio = float64(m.CacheHits) / float64(looked)
	}
	if up := m.UptimeSec; up > 0 {
		m.SimCyclesPerSec = float64(m.SimCycles) / up
	}
	writeJSON(w, http.StatusOK, m)
}

// dispatch is the dispatcher goroutine: it batches queued jobs up to the
// worker count and fans each batch into the experiment pool under the
// server's base context. It exits when the queue is closed and drained.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	pool := exp.Pool{
		Workers: s.workers, Meter: s.meter, Progress: s.batchProgress, Faults: s.cfg.Faults,
		Busy: s.tel.poolBusy, CellSeconds: s.tel.cellSeconds,
	}
	for {
		batch, ok := s.fq.PopBatch(s.workers)
		if !ok {
			return
		}
		s.setBatch(batch)
		// Job failures are recorded on the job, never returned as cell
		// errors: a failed run must not stop the pool from claiming the
		// rest of the batch. A non-nil pool error is therefore worker
		// machinery failing (an injected cell fault, or cancellation),
		// not a job outcome.
		poolErr := pool.RunContext(s.baseCtx, len(batch), func(ctx context.Context, i int) error {
			s.runJob(ctx, batch[i])
			return nil
		})
		s.setBatch(nil)
		// Cells the pool never ran — skipped by cancellation, or stranded
		// when an injected cell fault stopped the batch — still hold
		// queued jobs; fail them with the real cause so no submission
		// waits forever and clients can classify (and resubmit
		// transients).
		for _, j := range batch {
			if j.State() == StateQueued {
				s.tel.queueDepth.Dec()
				if poolErr != nil {
					s.failJob(j, classifyErr(poolErr), poolErr)
				} else {
					s.failJob(j, KindCanceled, shutdownCause(s.baseCtx))
				}
			}
		}
	}
}

func (s *Server) setBatch(batch []*Job) {
	s.batchMu.Lock()
	s.batch = batch
	s.batchMu.Unlock()
}

// batchProgress relays pool progress to every still-running job's event
// stream.
func (s *Server) batchProgress(p exp.Progress) {
	s.batchMu.Lock()
	batch := s.batch
	s.batchMu.Unlock()
	ev := Event{Type: "progress", Data: map[string]any{
		"done":               p.Done,
		"total":              p.Total,
		"elapsed_sec":        p.Elapsed.Seconds(),
		"eta_sec":            p.ETA.Seconds(),
		"sim_cycles":         p.SimCycles,
		"sim_cycles_per_sec": p.CyclesPerSec,
	}}
	for _, j := range batch {
		if j.State() == StateRunning {
			j.publish(ev)
		}
	}
}

func shutdownCause(ctx context.Context) error {
	if cause := context.Cause(ctx); cause != nil {
		return cause
	}
	return errors.New("serve: server shutting down")
}

// finishJob marks a job done: counters, flight hand-off into the completed
// ring, and the lifecycle log line.
func (s *Server) finishJob(j *Job) {
	s.tel.jobsDone.Inc()
	j.finish()
	s.flights.Add(j.flight)
	s.logTransition(j, "done")
}

// failJob marks a job failed with a classified error: counters, flight
// hand-off, and the lifecycle log line carrying kind and error.
func (s *Server) failJob(j *Job, kind string, err error) {
	s.tel.jobsFailed.Inc()
	j.fail(kind, err)
	j.flight.Instant("job", "fail", map[string]string{"kind": kind, "error": err.Error()})
	s.flights.Add(j.flight)
	transition := "failed"
	if kind == KindCanceled {
		transition = "canceled"
	}
	s.logTransition(j, transition,
		slog.String("kind", kind), slog.String("error", err.Error()))
}

// runJob executes one job end to end: state transitions, the simulation
// itself (with bounded transparent retries of retryable failures), artifact
// writes, and error classification. A panic anywhere in the attempt is
// contained here — it must not unwind into the pool's cell recovery, which
// would strand the job in StateRunning forever.
func (s *Server) runJob(ctx context.Context, j *Job) {
	s.tel.queueDepth.Dec()
	s.tel.running.Inc()
	defer s.tel.running.Dec()
	if j.queueEnd != nil {
		j.queueEnd()
	}
	if !j.enqueuedAt.IsZero() {
		s.tel.queueWait.Observe(time.Since(j.enqueuedAt).Seconds())
	}
	runEnd := j.flight.Start("job", "run")
	defer runEnd()
	runStart := time.Now()
	defer func() { s.tel.runSeconds.Observe(time.Since(runStart).Seconds()) }()
	j.setRunning()
	s.logTransition(j, "running")
	if hook := s.testBeforeRun; hook != nil {
		hook(j)
	}
	if err := ctx.Err(); err != nil {
		s.failJob(j, KindCanceled, shutdownCause(ctx))
		return
	}
	jctx := ctx
	if s.cfg.JobDeadline > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, s.cfg.JobDeadline)
		defer cancel()
	}
	limit := s.cfg.retryLimit()
	for attempt := 0; ; attempt++ {
		attemptEnd := j.flight.Start("job", fmt.Sprintf("attempt %d", attempt+1))
		err := s.attempt(jctx, j)
		attemptEnd()
		if err == nil {
			s.finishJob(j)
			return
		}
		kind := classifyErr(err)
		if attempt < limit && retryableKind(kind) && jctx.Err() == nil {
			// Bit-determinism makes retries safe: a clean re-execution of
			// the same spec produces byte-identical artifacts, so nothing
			// a failed attempt touched can leak — failures are never
			// cached, and Put is atomic-per-artifact with the completion
			// marker last.
			s.tel.retries.Inc()
			j.noteRetry()
			j.flight.Instant("job", "retry", map[string]string{
				"kind": kind, "error": err.Error(),
			})
			s.logTransition(j, "retrying",
				slog.Int("attempt", attempt+1), slog.String("kind", kind),
				slog.String("error", err.Error()))
			j.publish(Event{Type: "retry", Data: map[string]any{
				"attempt": attempt + 1, "kind": kind, "error": err.Error(),
			}})
			continue
		}
		s.failJob(j, kind, err)
		return
	}
}

// attempt is one full execution try: simulate, assemble artifacts, commit
// to the cache. Panics are recovered into errors here — an injected panic
// fault surfaces as its structured *faults.InjectedError (so it classifies
// as transient), anything else as an *exp.PanicError — keeping the worker
// cell alive and the job owned by this function.
func (s *Server) attempt(ctx context.Context, j *Job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if ie, ok := r.(*faults.InjectedError); ok {
				err = ie
				return
			}
			buf := make([]byte, 64<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &exp.PanicError{Value: r, Stack: buf}
		}
	}()
	res, rec, err := s.execute(ctx, j)
	if err != nil {
		return err
	}
	artEnd := j.flight.Start("engine", "artifacts")
	defer artEnd()
	arts, err := runArtifacts(j.Spec, res, rec)
	if err != nil {
		return err
	}
	return s.cache.Put(j.ID, arts)
}

// execute builds the job's simulator with trace recording attached, runs it
// under ctx, and returns the bit-deterministic result (host-timing fields
// stripped after feeding the throughput meter).
func (s *Server) execute(ctx context.Context, j *Job) (*gpu.Result, *trace.Recorder, error) {
	rec := trace.NewRecorder()
	buildEnd := j.flight.Start("engine", "build")
	sim, _, err := j.Spec.BuildWith(func(g *gpu.Options) {
		g.Faults = s.cfg.Faults
		if s.cfg.MaxCycles > 0 && (g.MaxCycles == 0 || g.MaxCycles > s.cfg.MaxCycles) {
			g.MaxCycles = s.cfg.MaxCycles
		}
		if j.flight != nil {
			// Engine run phases (simulate loop, result assembly) land on
			// the flight's "engine" track alongside build and artifacts.
			g.TraceSpan = func(name string, start, end time.Time) {
				j.flight.Add("engine", name, start, end)
			}
		}
		g.TraceDispatch = rec.DispatchHook()
		g.TraceQueue = rec.QueueHook()
		g.TraceBlockDone = rec.BlockHook()
		recordSample := rec.SampleHook()
		g.TraceSample = func(smp gpu.Sample) {
			recordSample(smp)
			j.publish(Event{Type: "sample", Data: smp})
		}
	})
	buildEnd()
	if err != nil {
		return nil, nil, err
	}
	res, err := sim.RunContext(ctx)
	if err != nil {
		return nil, nil, err
	}
	rec.FinishRun(sim)
	s.meter.Add(res.Cycles)
	res.WallTime, res.SimCyclesPerSec = 0, 0
	return res, rec, nil
}

// runArtifacts assembles a completed run's cache entry. ResultArtifact is
// included last-by-convention; the cache enforces write ordering itself.
func runArtifacts(sp spec.RunSpec, res *gpu.Result, rec *trace.Recorder) ([]Artifact, error) {
	canon, err := sp.Canonical()
	if err != nil {
		return nil, err
	}
	return []Artifact{
		{Name: SpecArtifact, Write: func(w io.Writer) error {
			_, err := w.Write(append(canon, '\n'))
			return err
		}},
		{Name: EventsArtifact, Write: rec.WriteJSONL},
		{Name: PerfettoArtifact, Write: rec.WritePerfetto},
		{Name: TimelineArtifact, Write: func(w io.Writer) error { return exp.WriteTimelineCSV(res, w) }},
		{Name: ReuseArtifact, Write: func(w io.Writer) error { return exp.WriteRunReuseCSV(res, w) }},
		{Name: ResultArtifact, Write: func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(res)
		}},
	}, nil
}
