package serve

import (
	"math"
	"sync"
	"time"
)

// rateLimits is a per-tenant token bucket over sweep submissions. Each
// tenant accrues tokens at rps per second up to burst; a submission
// consumes one. An empty bucket answers with how many whole seconds until
// the next token — the Retry-After the 429 carries.
type rateLimits struct {
	mu      sync.Mutex
	rps     float64
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newRateLimits builds the limiter; rps <= 0 disables limiting entirely.
func newRateLimits(rps float64, burst int) *rateLimits {
	if rps <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimits{
		rps:     rps,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow consumes one token for tenant, reporting whether the submission may
// proceed and, when it may not, the whole-second Retry-After to send. A nil
// limiter allows everything.
func (rl *rateLimits) Allow(tenant string) (ok bool, retryAfter int) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	b := rl.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[tenant] = b
	} else {
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := (1 - b.tokens) / rl.rps
	return false, int(math.Ceil(wait))
}
