package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"time"

	"laperm/internal/exp"
	"laperm/internal/faults"
	"laperm/internal/gpu"
	"laperm/internal/spec"
	"laperm/internal/telemetry"
)

// State is a job's position in its lifecycle.
type State string

// Job states, in lifecycle order. A job is terminal in StateDone or
// StateFailed; failed runs are never cached, so resubmitting the same spec
// retries them.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Error kinds, mapping the engine's structured error taxonomy onto stable
// wire strings.
const (
	KindDeadlock   = "deadlock"
	KindInvariant  = "invariant"
	KindCycleLimit = "cycle-limit"
	KindDeadline   = "deadline"
	KindCanceled   = "canceled"
	KindPanic      = "panic"
	KindTransient  = "transient"
	KindError      = "error"
)

// classifyErr maps a run error onto its wire kind.
func classifyErr(err error) string {
	var (
		de  *gpu.DeadlockError
		ie  *gpu.InvariantError
		cle *gpu.CycleLimitError
		ce  *gpu.CanceledError
		pe  *exp.PanicError
	)
	switch {
	case faults.IsInjected(err):
		return KindTransient
	case errors.As(err, &de):
		return KindDeadlock
	case errors.As(err, &ie):
		return KindInvariant
	case errors.As(err, &cle):
		return KindCycleLimit
	case errors.As(err, &ce):
		if errors.Is(err, context.DeadlineExceeded) {
			return KindDeadline
		}
		return KindCanceled
	case errors.As(err, &pe):
		return KindPanic
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	case errors.Is(err, context.Canceled):
		return KindCanceled
	}
	return KindError
}

// retryableKind reports whether a failure of this kind may succeed on a
// clean re-execution. Injected transients and recovered panics are worker
// flakiness; deadlocks, invariant violations, cycle/deadline overruns, and
// cancellations are deterministic properties of the run (or of the caller)
// and retrying them only burns cycles.
func retryableKind(kind string) bool {
	return kind == KindTransient || kind == KindPanic
}

// Event is one SSE payload: a state transition, a retry notice, a batch
// progress tick, or a timeline sample from the running simulation. ID is the
// job-scoped monotonic SSE id; clients resume a dropped stream by replaying
// everything after their Last-Event-ID.
type Event struct {
	ID   uint64
	Type string // "state", "retry", "progress", "sample"
	Data any
}

// eventHistoryCap bounds each job's replay ring. A tiny run emits a handful
// of state transitions plus its timeline samples; 1024 comfortably covers a
// reconnect window without letting a sample-heavy run grow without bound.
const eventHistoryCap = 1024

// Job is one submitted run, keyed by its spec hash. All mutable fields are
// guarded by mu; subscribers receive Events until the job reaches a terminal
// state, at which point their channels are closed.
type Job struct {
	// ID is the RunSpec content hash — run ID, coalescing key, and cache
	// key are all the same string.
	ID string
	// Spec is the normalized submitted spec.
	Spec spec.RunSpec

	// flight is the job's flight recorder: wall-clock spans from submit to
	// terminal state, served at /v1/runs/{id}/trace. Nil for cached jobs
	// (nothing executed) — every telemetry field here is nil-safe.
	flight *telemetry.Flight
	// queueEnd closes the flight's "queue" span when dispatch claims the
	// job; enqueuedAt feeds the queue-wait histogram.
	queueEnd   func()
	enqueuedAt time.Time
	// sseEvents / sseDropped, set at submit time, count event publishes and
	// drops caused by lagging subscribers.
	sseEvents  *telemetry.Counter
	sseDropped *telemetry.Counter

	mu        sync.Mutex
	state     State
	errMsg    string
	errKind   string
	cached    bool // result served from the cache without executing
	coalesced int64
	retries   int64
	subs      map[chan Event]struct{}
	lastID    uint64  // last SSE event id assigned
	history   []Event // replay ring for Last-Event-ID resumes
}

func newJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateQueued, subs: make(map[chan Event]struct{})}
}

// newCachedJob materializes a job for a disk-cache hit: born terminal.
func newCachedJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateDone, cached: true, subs: make(map[chan Event]struct{})}
}

// snapshot returns the job's current externally visible state.
func (j *Job) snapshot() (State, string, string, bool, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.errKind, j.cached, j.coalesced
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) terminalLocked() bool { return j.state == StateDone || j.state == StateFailed }

// noteCoalesced counts a submission that attached to this in-flight job.
func (j *Job) noteCoalesced() {
	j.mu.Lock()
	j.coalesced++
	j.mu.Unlock()
}

// setRunning transitions queued -> running and notifies subscribers.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.mu.Unlock()
}

// finish transitions to done, notifies subscribers, and closes their
// channels.
func (j *Job) finish() {
	j.mu.Lock()
	j.state = StateDone
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	j.mu.Unlock()
}

// fail transitions to failed with a classified error, notifies subscribers,
// and closes their channels.
func (j *Job) fail(kind string, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errKind = kind
	j.errMsg = err.Error()
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	j.mu.Unlock()
}

// noteRetry counts one transparent re-execution after a transient failure.
func (j *Job) noteRetry() {
	j.mu.Lock()
	j.retries++
	j.mu.Unlock()
}

// subscription is one SSE consumer's attachment to a job: the replay
// backlog owed to it, its live channel, and the snapshot to open with.
type subscription struct {
	// backlog holds already-published events with ID > the subscriber's
	// Last-Event-ID, replayed before any live event.
	backlog []Event
	// ch delivers live events; closed when the job is (or was already)
	// terminal.
	ch chan Event
	// snap is the job view at subscribe time and lastID the newest event
	// id assigned so far (0 if none).
	snap   jobView
	lastID uint64
	// cancel unsubscribes.
	cancel func()
}

// subscribeSince registers an event channel, replaying history after
// afterID (0 means a fresh attach: no replay, snapshot only). The snapshot
// and backlog are captured under the same lock acquisition that registers
// the channel, so a subscriber sees every event exactly once: in the
// backlog, or live, never both and never neither. If the job is already
// terminal the channel comes back closed: backlog plus snapshot is all
// there is.
func (j *Job) subscribeSince(afterID uint64) subscription {
	sub := subscription{ch: make(chan Event, 64)}
	j.mu.Lock()
	defer j.mu.Unlock()
	sub.snap = j.viewLocked(nil)
	sub.lastID = j.lastID
	if afterID > 0 {
		for _, ev := range j.history {
			if ev.ID > afterID {
				sub.backlog = append(sub.backlog, ev)
			}
		}
	}
	if j.terminalLocked() {
		close(sub.ch)
		sub.cancel = func() {}
		return sub
	}
	ch := sub.ch
	j.subs[ch] = struct{}{}
	sub.cancel = func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
	return sub
}

// publish delivers an event to all subscribers, dropping it for any whose
// buffer is full — a slow SSE consumer must not stall the simulation.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.publishLocked(ev)
	j.mu.Unlock()
}

func (j *Job) publishLocked(ev Event) {
	j.lastID++
	ev.ID = j.lastID
	if len(j.history) >= eventHistoryCap {
		// Drop the oldest half in one copy; reconnects older than the ring
		// fall back to the snapshot path.
		keep := j.history[len(j.history)-eventHistoryCap/2:]
		j.history = append(make([]Event, 0, eventHistoryCap), keep...)
	}
	j.history = append(j.history, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
			j.sseEvents.Inc()
		default:
			// A slow SSE consumer must not stall the simulation; the drop
			// is visible as subscriber lag in /metrics.
			j.sseDropped.Inc()
		}
	}
}

func (j *Job) closeSubsLocked() {
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
}

// jobView is the wire representation of a job returned by the submit and
// status endpoints and carried in "state" SSE events.
type jobView struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Retries   int64           `json:"retries,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.RunSpec    `json:"spec"`
	Result    json.RawMessage `json:"result,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// viewLocked builds the wire view. result, when non-nil, is the cached
// result.json body to embed; callers outside job.go attach it for terminal
// done jobs.
func (j *Job) viewLocked(result json.RawMessage) jobView {
	return jobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Retries:   j.retries,
		Error:     j.errMsg,
		ErrorKind: j.errKind,
		Spec:      j.Spec,
		Result:    result,
	}
}

// view is viewLocked under the lock.
func (j *Job) view(result json.RawMessage) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(result)
}
