package serve

import (
	"context"
	"encoding/json"
	"errors"
	"sync"

	"laperm/internal/exp"
	"laperm/internal/gpu"
	"laperm/internal/spec"
)

// State is a job's position in its lifecycle.
type State string

// Job states, in lifecycle order. A job is terminal in StateDone or
// StateFailed; failed runs are never cached, so resubmitting the same spec
// retries them.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Error kinds, mapping the engine's structured error taxonomy onto stable
// wire strings.
const (
	KindDeadlock   = "deadlock"
	KindInvariant  = "invariant"
	KindCycleLimit = "cycle-limit"
	KindDeadline   = "deadline"
	KindCanceled   = "canceled"
	KindPanic      = "panic"
	KindError      = "error"
)

// classifyErr maps a run error onto its wire kind.
func classifyErr(err error) string {
	var (
		de  *gpu.DeadlockError
		ie  *gpu.InvariantError
		cle *gpu.CycleLimitError
		ce  *gpu.CanceledError
		pe  *exp.PanicError
	)
	switch {
	case errors.As(err, &de):
		return KindDeadlock
	case errors.As(err, &ie):
		return KindInvariant
	case errors.As(err, &cle):
		return KindCycleLimit
	case errors.As(err, &ce):
		if errors.Is(err, context.DeadlineExceeded) {
			return KindDeadline
		}
		return KindCanceled
	case errors.As(err, &pe):
		return KindPanic
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	case errors.Is(err, context.Canceled):
		return KindCanceled
	}
	return KindError
}

// Event is one SSE payload: a state transition, a batch progress tick, or a
// timeline sample from the running simulation.
type Event struct {
	Type string // "state", "progress", "sample"
	Data any
}

// Job is one submitted run, keyed by its spec hash. All mutable fields are
// guarded by mu; subscribers receive Events until the job reaches a terminal
// state, at which point their channels are closed.
type Job struct {
	// ID is the RunSpec content hash — run ID, coalescing key, and cache
	// key are all the same string.
	ID string
	// Spec is the normalized submitted spec.
	Spec spec.RunSpec

	mu        sync.Mutex
	state     State
	errMsg    string
	errKind   string
	cached    bool // result served from the cache without executing
	coalesced int64
	subs      map[chan Event]struct{}
}

func newJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateQueued, subs: make(map[chan Event]struct{})}
}

// newCachedJob materializes a job for a disk-cache hit: born terminal.
func newCachedJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateDone, cached: true, subs: make(map[chan Event]struct{})}
}

// snapshot returns the job's current externally visible state.
func (j *Job) snapshot() (State, string, string, bool, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.errKind, j.cached, j.coalesced
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) terminalLocked() bool { return j.state == StateDone || j.state == StateFailed }

// noteCoalesced counts a submission that attached to this in-flight job.
func (j *Job) noteCoalesced() {
	j.mu.Lock()
	j.coalesced++
	j.mu.Unlock()
}

// setRunning transitions queued -> running and notifies subscribers.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.mu.Unlock()
}

// finish transitions to done, notifies subscribers, and closes their
// channels.
func (j *Job) finish() {
	j.mu.Lock()
	j.state = StateDone
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	j.mu.Unlock()
}

// fail transitions to failed with a classified error, notifies subscribers,
// and closes their channels.
func (j *Job) fail(kind string, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errKind = kind
	j.errMsg = err.Error()
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	j.mu.Unlock()
}

// subscribe registers an event channel and returns it with the job's
// current view (so the caller can emit a snapshot first without racing a
// transition) and an unsubscribe func. If the job is already terminal the
// returned channel is closed immediately: the snapshot is all there is.
func (j *Job) subscribe() (ch chan Event, snap jobView, cancel func()) {
	ch = make(chan Event, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	snap = j.viewLocked(nil)
	if j.terminalLocked() {
		close(ch)
		return ch, snap, func() {}
	}
	j.subs[ch] = struct{}{}
	return ch, snap, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
			close(ch)
		}
	}
}

// publish delivers an event to all subscribers, dropping it for any whose
// buffer is full — a slow SSE consumer must not stall the simulation.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.publishLocked(ev)
	j.mu.Unlock()
}

func (j *Job) publishLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (j *Job) closeSubsLocked() {
	for ch := range j.subs {
		delete(j.subs, ch)
		close(ch)
	}
}

// jobView is the wire representation of a job returned by the submit and
// status endpoints and carried in "state" SSE events.
type jobView struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.RunSpec    `json:"spec"`
	Result    json.RawMessage `json:"result,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// viewLocked builds the wire view. result, when non-nil, is the cached
// result.json body to embed; callers outside job.go attach it for terminal
// done jobs.
func (j *Job) viewLocked(result json.RawMessage) jobView {
	return jobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Error:     j.errMsg,
		ErrorKind: j.errKind,
		Spec:      j.Spec,
		Result:    result,
	}
}

// view is viewLocked under the lock.
func (j *Job) view(result json.RawMessage) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(result)
}
