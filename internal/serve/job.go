package serve

import (
	"context"
	"encoding/json"
	"errors"
	"time"

	"laperm/internal/exp"
	"laperm/internal/faults"
	"laperm/internal/gpu"
	"laperm/internal/spec"
	"laperm/internal/telemetry"
)

// State is a job's (or sweep's) position in its lifecycle.
type State string

// Job states, in lifecycle order. A job is terminal in StateDone or
// StateFailed; failed runs are never cached, so resubmitting the same spec
// retries them.
const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Error kinds, mapping the engine's structured error taxonomy onto stable
// wire strings.
const (
	KindDeadlock   = "deadlock"
	KindInvariant  = "invariant"
	KindCycleLimit = "cycle-limit"
	KindDeadline   = "deadline"
	KindCanceled   = "canceled"
	KindPanic      = "panic"
	KindTransient  = "transient"
	KindError      = "error"
)

// classifyErr maps a run error onto its wire kind.
func classifyErr(err error) string {
	var (
		de  *gpu.DeadlockError
		ie  *gpu.InvariantError
		cle *gpu.CycleLimitError
		ce  *gpu.CanceledError
		pe  *exp.PanicError
	)
	switch {
	case faults.IsInjected(err):
		return KindTransient
	case errors.As(err, &de):
		return KindDeadlock
	case errors.As(err, &ie):
		return KindInvariant
	case errors.As(err, &cle):
		return KindCycleLimit
	case errors.As(err, &ce):
		if errors.Is(err, context.DeadlineExceeded) {
			return KindDeadline
		}
		return KindCanceled
	case errors.As(err, &pe):
		return KindPanic
	case errors.Is(err, context.DeadlineExceeded):
		return KindDeadline
	case errors.Is(err, context.Canceled):
		return KindCanceled
	}
	return KindError
}

// retryableKind reports whether a failure of this kind may succeed on a
// clean re-execution. Injected transients and recovered panics are worker
// flakiness; deadlocks, invariant violations, cycle/deadline overruns, and
// cancellations are deterministic properties of the run (or of the caller)
// and retrying them only burns cycles.
func retryableKind(kind string) bool {
	return kind == KindTransient || kind == KindPanic
}

// Job is one submitted run, keyed by its spec hash. All mutable fields are
// guarded by the embedded hub's mutex (promoted as j.mu); subscribers
// receive Events until the job reaches a terminal state, at which point
// their channels are closed.
type Job struct {
	// ID is the RunSpec content hash — run ID, coalescing key, and cache
	// key are all the same string.
	ID string
	// Spec is the normalized submitted spec.
	Spec spec.RunSpec

	// flow is the fair-share flow the job was queued on: its tenant plus
	// the sweep that first scheduled it ("" for direct submissions).
	flow flowKey
	// seq orders jobs by first registration — the /v1/runs listing cursor.
	seq uint64

	// flight is the job's flight recorder: wall-clock spans from submit to
	// terminal state, served at /v1/runs/{id}/trace. Nil for cached jobs
	// (nothing executed) — every telemetry field here is nil-safe.
	flight *telemetry.Flight
	// queueEnd closes the flight's "queue" span when dispatch claims the
	// job; enqueuedAt feeds the queue-wait histogram.
	queueEnd   func()
	enqueuedAt time.Time

	hub
	state   State
	errMsg  string
	errKind string
	cached  bool // result served from the cache without executing
	// singleton records that at least one direct /v1/runs submission wants
	// this job; owners records the sweeps sharing it. A job with singleton
	// set or more than one owner is "shared": sweep cancellation must not
	// release it.
	singleton bool
	owners    map[string]struct{}
	// onTerminal hooks run exactly once, after the terminal transition,
	// outside the job lock — sweeps use them for cell accounting.
	onTerminal []func(*Job)
	coalesced  int64
	retries    int64
}

func newJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateQueued, hub: newHub()}
}

// newCachedJob materializes a job for a disk-cache hit: born terminal.
func newCachedJob(id string, sp spec.RunSpec) *Job {
	return &Job{ID: id, Spec: sp, state: StateDone, cached: true, hub: newHub()}
}

// snapshot returns the job's current externally visible state.
func (j *Job) snapshot() (State, string, string, bool, int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg, j.errKind, j.cached, j.coalesced
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *Job) terminalLocked() bool { return j.state == StateDone || j.state == StateFailed }

// noteCoalesced counts a submission that attached to this in-flight job.
func (j *Job) noteCoalesced() {
	j.mu.Lock()
	j.coalesced++
	j.mu.Unlock()
}

// noteSingleton records a direct submission's claim on the job: it is no
// longer exclusively owned by sweeps, so no sweep cancellation may release
// it.
func (j *Job) noteSingleton() {
	j.mu.Lock()
	j.singleton = true
	j.mu.Unlock()
}

// addOwner records a sweep's claim on the job and reports whether the job
// was already claimed by a different sweep or a direct submission —
// i.e. whether this attachment is a cross-request dedupe.
func (j *Job) addOwner(sweepID string) (shared bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	shared = j.singleton || len(j.owners) > 0
	if j.owners == nil {
		j.owners = make(map[string]struct{})
	}
	j.owners[sweepID] = struct{}{}
	return shared
}

// sharedBeyond reports whether anyone other than the given sweep holds a
// claim on the job — the test that gates cancellation.
func (j *Job) sharedBeyond(sweepID string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.singleton {
		return true
	}
	for owner := range j.owners {
		if owner != sweepID {
			return true
		}
	}
	return false
}

// addTerminalHook registers fn to run once the job reaches a terminal
// state, outside the job lock. If the job is already terminal, fn runs
// immediately (on this goroutine).
func (j *Job) addTerminalHook(fn func(*Job)) {
	j.mu.Lock()
	if j.terminalLocked() {
		j.mu.Unlock()
		fn(j)
		return
	}
	j.onTerminal = append(j.onTerminal, fn)
	j.mu.Unlock()
}

// takeHooksLocked claims the terminal hooks for the caller to run after
// releasing the lock.
func (j *Job) takeHooksLocked() []func(*Job) {
	hooks := j.onTerminal
	j.onTerminal = nil
	return hooks
}

func (j *Job) runHooks(hooks []func(*Job)) {
	for _, fn := range hooks {
		fn(j)
	}
}

// setRunning transitions queued -> running and notifies subscribers.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.mu.Unlock()
}

// finish transitions to done, notifies subscribers, closes their channels,
// and fires the terminal hooks.
func (j *Job) finish() {
	j.mu.Lock()
	j.state = StateDone
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	hooks := j.takeHooksLocked()
	j.mu.Unlock()
	j.runHooks(hooks)
}

// fail transitions to failed with a classified error, notifies subscribers,
// closes their channels, and fires the terminal hooks.
func (j *Job) fail(kind string, err error) {
	j.mu.Lock()
	j.state = StateFailed
	j.errKind = kind
	j.errMsg = err.Error()
	view := j.viewLocked(nil)
	j.publishLocked(Event{Type: "state", Data: view})
	j.closeSubsLocked()
	hooks := j.takeHooksLocked()
	j.mu.Unlock()
	j.runHooks(hooks)
}

// noteRetry counts one transparent re-execution after a transient failure.
func (j *Job) noteRetry() {
	j.mu.Lock()
	j.retries++
	j.mu.Unlock()
}

// subscribeSince registers an event channel, replaying history after
// afterID (0 means a fresh attach: no replay, snapshot only). See
// hub.subscribeLocked for the exactly-once contract.
func (j *Job) subscribeSince(afterID uint64) subscription {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.subscribeLocked(afterID, j.viewLocked(nil), j.terminalLocked())
}

// publish delivers an event to all subscribers, dropping it for any whose
// buffer is full — a slow SSE consumer must not stall the simulation.
func (j *Job) publish(ev Event) {
	j.mu.Lock()
	j.publishLocked(ev)
	j.mu.Unlock()
}

// jobView is the wire representation of a job returned by the submit and
// status endpoints and carried in "state" SSE events.
type jobView struct {
	ID        string          `json:"id"`
	State     State           `json:"state"`
	Cached    bool            `json:"cached"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Retries   int64           `json:"retries,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.RunSpec    `json:"spec"`
	Result    json.RawMessage `json:"result,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// viewLocked builds the wire view. result, when non-nil, is the cached
// result.json body to embed; callers outside job.go attach it for terminal
// done jobs.
func (j *Job) viewLocked(result json.RawMessage) jobView {
	return jobView{
		ID:        j.ID,
		State:     j.state,
		Cached:    j.cached,
		Coalesced: j.coalesced,
		Retries:   j.retries,
		Error:     j.errMsg,
		ErrorKind: j.errKind,
		Spec:      j.Spec,
		Result:    result,
	}
}

// view is viewLocked under the lock.
func (j *Job) view(result json.RawMessage) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked(result)
}
