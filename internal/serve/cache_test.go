package serve

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"laperm/internal/faults"
)

func hexID(digit byte, n int) string { return strings.Repeat(string(digit), n) }

func bytesArtifact(name string, body []byte) Artifact {
	return Artifact{Name: name, Write: func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	}}
}

func putEntry(t *testing.T, c *Cache, id string, size int) {
	t.Helper()
	err := c.Put(id, []Artifact{
		bytesArtifact("data.bin", make([]byte, size)),
		bytesArtifact(ResultArtifact, []byte(`{}`)),
	})
	if err != nil {
		t.Fatalf("Put(%s): %v", id[:8], err)
	}
}

func TestCachePutLookupReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('1', 64)
	putEntry(t, c, id, 100)
	if _, ok := c.Lookup(id); !ok {
		t.Fatal("entry missing right after Put")
	}
	if got, err := c.ReadArtifact(id, ResultArtifact); err != nil || string(got) != `{}` {
		t.Fatalf("ReadArtifact = %q, %v", got, err)
	}
	// 102 payload bytes (100 + `{}`) plus the integrity manifest.
	st := c.Stats()
	if st.Entries != 1 || st.Bytes <= 102 {
		t.Fatalf("stats = %+v, want 1 entry of >102 bytes (payload + manifest)", st)
	}

	// A fresh Cache over the same directory must index the entry: the
	// cache survives process restarts.
	c2, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup(id); !ok {
		t.Fatal("entry lost across reopen")
	}
	if st2 := c2.Stats(); st2.Entries != 1 || st2.Bytes != st.Bytes {
		t.Fatalf("reopened stats = %+v, want %+v", st2, st)
	}
}

// TestCacheIncompleteEntryDiscarded: a directory without the ResultArtifact
// completion marker is debris from a crashed write and must be removed, not
// served.
func TestCacheIncompleteEntryDiscarded(t *testing.T) {
	dir := t.TempDir()
	id := hexID('2', 64)
	entry := filepath.Join(dir, id)
	if err := os.MkdirAll(entry, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(entry, "events.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("incomplete entry served")
	}
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Fatalf("incomplete entry not removed: %v", err)
	}
}

// TestCacheLRUEviction: over-budget Puts evict the least-recently-used
// entry; a Lookup refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	// Probe the on-disk size of one entry (payload + manifest), then
	// budget for two entries but not three.
	probe, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	putEntry(t, probe, hexID('f', 64), 100)
	entrySize := probe.Stats().Bytes
	c, err := OpenCache(t.TempDir(), 2*entrySize+entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, id3 := hexID('a', 64), hexID('b', 64), hexID('c', 64)
	putEntry(t, c, id1, 100)
	putEntry(t, c, id2, 100)
	if _, ok := c.Lookup(id1); !ok { // refresh id1: id2 becomes LRU
		t.Fatal("id1 missing")
	}
	putEntry(t, c, id3, 100) // 3 entries > budget: evict exactly one, the LRU (id2)
	if _, ok := c.Lookup(id2); ok {
		t.Fatal("LRU entry id2 survived eviction")
	}
	for _, id := range []string{id1, id3} {
		if _, ok := c.Lookup(id); !ok {
			t.Fatalf("entry %s evicted out of LRU order", id[:8])
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	if _, err := os.Stat(filepath.Join(c.dir, id2)); !os.IsNotExist(err) {
		t.Fatal("evicted entry still on disk")
	}
}

func TestCacheRejectsBadIDsAndNames(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "ABC", "../etc", hexID('1', 200)} {
		if err := c.Put(id, []Artifact{bytesArtifact(ResultArtifact, nil)}); err == nil {
			t.Errorf("Put accepted id %q", id)
		}
		if _, ok := c.Lookup(id); ok {
			t.Errorf("Lookup accepted id %q", id)
		}
	}
	id := hexID('3', 64)
	if err := c.Put(id, []Artifact{bytesArtifact("../escape", nil), bytesArtifact(ResultArtifact, nil)}); err == nil {
		t.Error("Put accepted a path-traversal artifact name")
	}
	if err := c.Put(id, []Artifact{bytesArtifact("data.bin", nil)}); err == nil {
		t.Errorf("Put accepted an entry without %s", ResultArtifact)
	}
}

// TestCachePutExistingIsNoop: content addressing makes re-writing an id
// redundant by construction.
func TestCachePutExistingIsNoop(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('4', 64)
	putEntry(t, c, id, 10)
	before := c.Stats()
	err = c.Put(id, []Artifact{bytesArtifact(ResultArtifact, []byte("different"))})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.ReadArtifact(id, ResultArtifact); string(got) != `{}` {
		t.Fatalf("second Put overwrote the entry: %q", got)
	}
	if after := c.Stats(); after != before {
		t.Fatalf("second Put changed stats: %+v -> %+v", before, after)
	}
}

// mustRegistry parses a fault schedule for cache fault tests.
func mustRegistry(t *testing.T, spec string) *faults.Registry {
	t.Helper()
	r, err := faults.Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestCacheCorruptArtifactDiscarded: flipping bytes in a cached artifact is
// detected by the manifest hash check on read; the poisoned entry is
// discarded (never served) and subsequent lookups miss, so the run
// re-executes.
func TestCacheCorruptArtifactDiscarded(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('5', 64)
	putEntry(t, c, id, 100)
	// Corrupt the payload in place — a torn write or bit rot.
	if err := os.WriteFile(filepath.Join(dir, id, ResultArtifact), []byte(`{"x":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = c.ReadArtifact(id, ResultArtifact)
	var ce *CorruptEntryError
	if !errors.As(err, &ce) {
		t.Fatalf("ReadArtifact on corrupt entry = %v, want *CorruptEntryError", err)
	}
	if ce.ID != id || ce.Artifact != ResultArtifact {
		t.Errorf("CorruptEntryError = %+v", ce)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("corrupt entry still indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, id)); !os.IsNotExist(err) {
		t.Fatal("corrupt entry not removed from disk")
	}
	st := c.Stats()
	if st.Corruptions != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats after corruption = %+v", st)
	}
}

// TestCacheTruncatedArtifactDiscarded: crash-truncated bytes (shorter than
// the manifest recorded) fail verification the same way.
func TestCacheTruncatedArtifactDiscarded(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('6', 64)
	putEntry(t, c, id, 100)
	if err := os.Truncate(filepath.Join(dir, id, "data.bin"), 10); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptEntryError
	if _, err := c.ReadArtifact(id, "data.bin"); !errors.As(err, &ce) {
		t.Fatalf("ReadArtifact on truncated entry = %v, want *CorruptEntryError", err)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("truncated entry still indexed")
	}
}

// TestCacheManifestlessEntryIsDebris: an entry with a completion marker but
// no manifest (a torn write, or the pre-manifest format) is unverifiable
// and is removed on open.
func TestCacheManifestlessEntryIsDebris(t *testing.T) {
	dir := t.TempDir()
	id := hexID('7', 64)
	entry := filepath.Join(dir, id)
	if err := os.MkdirAll(entry, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(entry, ResultArtifact), []byte(`{}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("manifestless entry served")
	}
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Fatal("manifestless entry not removed")
	}
}

// TestCacheInjectedWriteFault: an armed write failpoint fails Put cleanly —
// the entry is never indexed and a retry (fault exhausted) succeeds against
// the same id.
func TestCacheInjectedWriteFault(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	c.flts = mustRegistry(t, "serve.cache.write=error:n=1")
	id := hexID('8', 64)
	err = c.Put(id, []Artifact{
		bytesArtifact("data.bin", make([]byte, 50)),
		bytesArtifact(ResultArtifact, []byte(`{}`)),
	})
	if !faults.IsInjected(err) {
		t.Fatalf("Put under write fault = %v, want injected error", err)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("failed Put left an indexed entry")
	}
	putEntry(t, c, id, 50) // fault exhausted: retry succeeds
	if got, err := c.ReadArtifact(id, ResultArtifact); err != nil || string(got) != `{}` {
		t.Fatalf("retry after write fault: %q, %v", got, err)
	}
}

// TestCacheInjectedPartialWriteFault: a partial-write fault tears an
// artifact mid-stream. The atomic writer never renames a failed write into
// place, so the entry directory holds no completion marker and a reopened
// cache treats it as debris.
func TestCacheInjectedPartialWriteFault(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.flts = mustRegistry(t, "serve.cache.write=partial:n=1")
	id := hexID('9', 64)
	err = c.Put(id, []Artifact{
		bytesArtifact("data.bin", make([]byte, 64)),
		bytesArtifact(ResultArtifact, []byte(`{}`)),
	})
	if !faults.IsInjected(err) {
		t.Fatalf("Put under partial fault = %v, want injected error", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id, ResultArtifact)); err == nil {
		t.Fatal("torn Put left a completion marker")
	}
	c2, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup(id); ok {
		t.Fatal("torn entry indexed on reopen")
	}
}

// TestCacheInjectedEvictFault: an eviction fault models RemoveAll failing —
// the index stays consistent (the victim is gone from memory) and the
// orphaned directory is re-indexed by a later open.
func TestCacheInjectedEvictFault(t *testing.T) {
	probe, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	putEntry(t, probe, hexID('f', 64), 100)
	entrySize := probe.Stats().Bytes
	dir := t.TempDir()
	c, err := OpenCache(dir, entrySize+entrySize/2)
	if err != nil {
		t.Fatal(err)
	}
	c.flts = mustRegistry(t, "serve.cache.evict=error:n=1")
	id1, id2 := hexID('a', 64), hexID('b', 64)
	putEntry(t, c, id1, 100)
	putEntry(t, c, id2, 100) // evicts id1; injected fault skips the disk removal
	if _, ok := c.Lookup(id1); ok {
		t.Fatal("evicted entry still indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, id1)); err != nil {
		t.Fatalf("fault should have orphaned the directory on disk: %v", err)
	}
	c2, err := OpenCache(dir, 10*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup(id1); !ok {
		t.Fatal("orphaned complete entry not re-indexed on reopen")
	}
}
