package serve

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func hexID(digit byte, n int) string { return strings.Repeat(string(digit), n) }

func bytesArtifact(name string, body []byte) Artifact {
	return Artifact{Name: name, Write: func(w io.Writer) error {
		_, err := w.Write(body)
		return err
	}}
}

func putEntry(t *testing.T, c *Cache, id string, size int) {
	t.Helper()
	err := c.Put(id, []Artifact{
		bytesArtifact("data.bin", make([]byte, size)),
		bytesArtifact(ResultArtifact, []byte(`{}`)),
	})
	if err != nil {
		t.Fatalf("Put(%s): %v", id[:8], err)
	}
}

func TestCachePutLookupReopen(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('1', 64)
	putEntry(t, c, id, 100)
	if _, ok := c.Lookup(id); !ok {
		t.Fatal("entry missing right after Put")
	}
	if got, err := c.ReadArtifact(id, ResultArtifact); err != nil || string(got) != `{}` {
		t.Fatalf("ReadArtifact = %q, %v", got, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 102 {
		t.Fatalf("stats = %+v, want 1 entry of 102 bytes", st)
	}

	// A fresh Cache over the same directory must index the entry: the
	// cache survives process restarts.
	c2, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Lookup(id); !ok {
		t.Fatal("entry lost across reopen")
	}
	if st := c2.Stats(); st.Entries != 1 || st.Bytes != 102 {
		t.Fatalf("reopened stats = %+v", st)
	}
}

// TestCacheIncompleteEntryDiscarded: a directory without the ResultArtifact
// completion marker is debris from a crashed write and must be removed, not
// served.
func TestCacheIncompleteEntryDiscarded(t *testing.T) {
	dir := t.TempDir()
	id := hexID('2', 64)
	entry := filepath.Join(dir, id)
	if err := os.MkdirAll(entry, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(entry, "events.jsonl"), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Lookup(id); ok {
		t.Fatal("incomplete entry served")
	}
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Fatalf("incomplete entry not removed: %v", err)
	}
}

// TestCacheLRUEviction: over-budget Puts evict the least-recently-used
// entry; a Lookup refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	id1, id2, id3 := hexID('a', 64), hexID('b', 64), hexID('c', 64)
	putEntry(t, c, id1, 100) // 102 bytes each
	putEntry(t, c, id2, 100)
	if _, ok := c.Lookup(id1); !ok { // refresh id1: id2 becomes LRU
		t.Fatal("id1 missing")
	}
	putEntry(t, c, id3, 100) // 306 > 250: evict exactly one, the LRU (id2)
	if _, ok := c.Lookup(id2); ok {
		t.Fatal("LRU entry id2 survived eviction")
	}
	for _, id := range []string{id1, id3} {
		if _, ok := c.Lookup(id); !ok {
			t.Fatalf("entry %s evicted out of LRU order", id[:8])
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 2 entries after 1 eviction", st)
	}
	if _, err := os.Stat(filepath.Join(c.dir, id2)); !os.IsNotExist(err) {
		t.Fatal("evicted entry still on disk")
	}
}

func TestCacheRejectsBadIDsAndNames(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", "ABC", "../etc", hexID('1', 200)} {
		if err := c.Put(id, []Artifact{bytesArtifact(ResultArtifact, nil)}); err == nil {
			t.Errorf("Put accepted id %q", id)
		}
		if _, ok := c.Lookup(id); ok {
			t.Errorf("Lookup accepted id %q", id)
		}
	}
	id := hexID('3', 64)
	if err := c.Put(id, []Artifact{bytesArtifact("../escape", nil), bytesArtifact(ResultArtifact, nil)}); err == nil {
		t.Error("Put accepted a path-traversal artifact name")
	}
	if err := c.Put(id, []Artifact{bytesArtifact("data.bin", nil)}); err == nil {
		t.Errorf("Put accepted an entry without %s", ResultArtifact)
	}
}

// TestCachePutExistingIsNoop: content addressing makes re-writing an id
// redundant by construction.
func TestCachePutExistingIsNoop(t *testing.T) {
	c, err := OpenCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	id := hexID('4', 64)
	putEntry(t, c, id, 10)
	before := c.Stats()
	err = c.Put(id, []Artifact{bytesArtifact(ResultArtifact, []byte("different"))})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := c.ReadArtifact(id, ResultArtifact); string(got) != `{}` {
		t.Fatalf("second Put overwrote the entry: %q", got)
	}
	if after := c.Stats(); after != before {
		t.Fatalf("second Put changed stats: %+v -> %+v", before, after)
	}
}
