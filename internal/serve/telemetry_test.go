package serve

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"laperm/internal/faults"
)

// scrapeProm fetches /metrics and returns the body after validating the
// text exposition's structural invariants: every sample belongs to a family
// with exactly one HELP and one TYPE line, and no series repeats.
func scrapeProm(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q, want text exposition 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	validateProm(t, string(body))
	return string(body)
}

// validateProm checks Prometheus text-format invariants.
func validateProm(t *testing.T, body string) {
	t.Helper()
	typed := map[string]string{} // family -> type
	helped := map[string]bool{}
	seen := map[string]bool{} // full series key
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if helped[name] {
				t.Fatalf("duplicate HELP for %s", name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if typed[f[2]] != "" {
				t.Fatalf("duplicate TYPE for %s", f[2])
			}
			typed[f[2]] = f[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		key := line[:sp]
		if seen[key] {
			t.Fatalf("duplicate series %q", key)
		}
		seen[key] = true
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if typed[name] == "" && typed[base] == "" {
			t.Fatalf("sample %q has no TYPE comment", name)
		}
	}
}

// promValue extracts one unlabeled sample's value from an exposition.
func promValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("exposition has no sample %q:\n%s", name, body)
	return ""
}

// TestPrometheusExposition runs one job to completion and checks the scrape
// covers the acceptance surface: job counts, queue, cache, latency
// histograms, HTTP requests — all in valid text format.
func TestPrometheusExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	s.Start()

	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)
	submit(t, ts, tinySpec) // cache hit

	body := scrapeProm(t, ts)
	if got := promValue(t, body, MetricJobsDone); got != "1" {
		t.Fatalf("%s = %s, want 1", MetricJobsDone, got)
	}
	if got := promValue(t, body, MetricSubmissions); got != "2" {
		t.Fatalf("%s = %s, want 2", MetricSubmissions, got)
	}
	if got := promValue(t, body, MetricCacheHits); got != "1" {
		t.Fatalf("%s = %s, want 1", MetricCacheHits, got)
	}
	if got := promValue(t, body, MetricQueueWait+"_count"); got != "1" {
		t.Fatalf("queue wait count = %s, want 1", got)
	}
	if got := promValue(t, body, MetricRunSeconds+"_count"); got != "1" {
		t.Fatalf("run seconds count = %s, want 1", got)
	}
	for _, name := range []string{
		MetricQueueDepth, MetricRunning, MetricJobsFailed, MetricRetries,
		MetricShed, MetricCoalesced, MetricCacheMisses, MetricCacheEntries,
		MetricCacheBytes, MetricCacheReadB, MetricCacheWrittenB,
		MetricCacheEvictions, MetricCacheCorrupt, MetricSimCycles,
		MetricUptime, MetricDraining, MetricWorkers, MetricPoolBusy,
	} {
		if !strings.Contains(body, "# TYPE "+name+" ") {
			t.Errorf("exposition missing family %s", name)
		}
	}
	// Per-route HTTP series: the submit route must have counted.
	if !strings.Contains(body, MetricHTTPRequests+`{route="/v1/runs",code="202"} 1`) {
		t.Errorf("missing instrumented submit request:\n%s", body)
	}
	if !strings.Contains(body, MetricHTTPLatency+`_bucket{route="/v1/runs",le="+Inf"}`) {
		t.Errorf("missing http latency histogram for submit route")
	}
	// The cache committed artifacts, so written bytes must be non-zero.
	if got := promValue(t, body, MetricCacheWrittenB); got == "0" {
		t.Errorf("%s = 0 after a completed run", MetricCacheWrittenB)
	}

	// The JSON view renders the same registry with the original fields.
	m := getMetrics(t, ts)
	if m.JobsDone != 1 || m.Submissions != 2 || m.CacheHits != 1 {
		t.Fatalf("JSON view mismatch: %+v", m)
	}
}

// TestTraceEndpoint pins the flight recorder: a completed job serves a
// Perfetto trace whose queue and run spans account for the submit-to-done
// wall time, with the engine phases on their own track.
func TestTraceEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()

	before := time.Now()
	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)
	wall := time.Since(before)

	resp, err := http.Get(ts.URL + "/v1/runs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace endpoint returned %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   uint64 `json:"ts"`
			Dur  uint64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	spans := map[string]uint64{} // name -> dur
	ends := map[string]uint64{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans[ev.Name] = ev.Dur
			ends[ev.Name] = ev.Ts + ev.Dur
		}
	}
	for _, want := range []string{"queue", "run", "attempt 1", "build", "gpu.simulate", "gpu.result", "artifacts"} {
		if _, ok := spans[want]; !ok {
			t.Errorf("trace missing span %q (have %v)", want, spans)
		}
	}
	// queue + run must account for the job's wall time: the run span ends
	// within the observed submit-to-done window.
	if end := time.Duration(ends["run"]) * time.Microsecond; end > wall+time.Second {
		t.Errorf("run span ends at %v, beyond observed wall %v", end, wall)
	}
	if spans["run"] == 0 {
		t.Error("run span has zero duration")
	}

	if resp, err := http.Get(ts.URL + "/v1/runs/ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff/trace"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown run trace returned %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestFaultAndRetryCountersExposed pins the satellite requirement: counters
// that previously never reached an exposition — per-site fault hits, retry
// totals — are visible in both /metrics and /metrics.json.
func TestFaultAndRetryCountersExposed(t *testing.T) {
	reg, err := faults.Parse("serve.cache.write=error:n=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Config{Workers: 1, Faults: reg})
	s.Start()

	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run failed: %s (%s)", final.Error, final.ErrorKind)
	}
	if final.Retries == 0 {
		t.Fatal("injected cache-write fault did not cause a retry")
	}

	body := scrapeProm(t, ts)
	if !strings.Contains(body, MetricFaultHits+`{site="serve.cache.write"} 1`) {
		t.Errorf("fault hit counter missing:\n%s", body)
	}
	if !strings.Contains(body, MetricFaultEvals+`{site="serve.cache.write"}`) {
		t.Errorf("fault evals counter missing")
	}
	if got := promValue(t, body, MetricRetries); got != "1" {
		t.Errorf("%s = %s, want 1", MetricRetries, got)
	}
	m := getMetrics(t, ts)
	if m.Retries != 1 {
		t.Errorf("JSON retries = %d, want 1", m.Retries)
	}
}

// TestDrainingVisibleInExposition: the drain gauge flips to 1 once the
// server stops accepting work.
func TestDrainingVisibleInExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()
	if got := promValue(t, scrapeProm(t, ts), MetricDraining); got != "0" {
		t.Fatalf("draining = %s before drain", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := promValue(t, scrapeProm(t, ts), MetricDraining); got != "1" {
		t.Fatalf("draining = %s after drain, want 1", got)
	}
}

// recordingHandler captures slog records for assertion.
type recordingHandler struct {
	mu   sync.Mutex
	recs []slog.Record
}

func (h *recordingHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *recordingHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	h.recs = append(h.recs, r.Clone())
	h.mu.Unlock()
	return nil
}
func (h *recordingHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *recordingHandler) WithGroup(string) slog.Handler      { return h }

// transitions returns the captured "job <transition>" lines for one job id.
func (h *recordingHandler) transitions(jobID string) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for _, r := range h.recs {
		if !strings.HasPrefix(r.Message, "job ") {
			continue
		}
		match := false
		r.Attrs(func(a slog.Attr) bool {
			if a.Key == "job" && a.Value.String() == jobID {
				match = true
			}
			return true
		})
		if match {
			out = append(out, strings.TrimPrefix(r.Message, "job "))
		}
	}
	return out
}

// TestLifecycleLogLines pins the structured-logging satellite: each
// lifecycle transition emits exactly one Info line carrying the job id.
func TestLifecycleLogLines(t *testing.T) {
	h := &recordingHandler{}
	s, ts := newTestServer(t, Config{Workers: 1, Logger: slog.New(h)})
	s.Start()

	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run failed: %s", final.Error)
	}
	got := h.transitions(view.ID)
	want := []string{"queued", "running", "done"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}

// TestRetryLifecycleLog: a retried job logs exactly one retrying line per
// attempt that failed retryably, then done.
func TestRetryLifecycleLog(t *testing.T) {
	reg, err := faults.Parse("serve.cache.write=error:n=1", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := &recordingHandler{}
	s, ts := newTestServer(t, Config{Workers: 1, Faults: reg, Logger: slog.New(h)})
	s.Start()

	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run failed: %s", final.Error)
	}
	got := h.transitions(view.ID)
	want := []string{"queued", "running", "retrying", "done"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
}
