package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/spec"
)

// Discovery endpoints: the registries, rendered as JSON, so clients build
// valid RunSpecs and SweepSpecs without hardcoding name lists. Everything
// here derives from the same registries spec.Validate checks against —
// a name listed here is by construction a name the server accepts.

// workloadView is one /v1/workloads row.
type workloadView struct {
	Name  string `json:"name"`
	App   string `json:"app"`
	Input string `json:"input"`
}

// schedulerView is one /v1/schedulers row.
type schedulerView struct {
	Name          string `json:"name"`
	Description   string `json:"description"`
	IdleAware     bool   `json:"idle_aware"`
	Binding       bool   `json:"binding"`
	StrictBinding bool   `json:"strict_binding"`
	ChildFirst    bool   `json:"child_first"`
}

// modelView is one /v1/models row.
type modelView struct {
	Name        string `json:"name"`
	Description string `json:"description"`
}

// discoveryView wraps each listing with the other spec vocabulary a client
// needs (scales, warp policies, sweepable axis fields), so one round trip
// is enough to construct any spec.
type discoveryView[T any] struct {
	Items      []T      `json:"items"`
	Scales     []string `json:"scales,omitempty"`
	WarpPolicy []string `json:"warp_policies,omitempty"`
	AxisFields []string `json:"axis_fields,omitempty"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	all := kernels.All()
	items := make([]workloadView, len(all))
	for i, wk := range all {
		items[i] = workloadView{Name: wk.Name, App: wk.App, Input: wk.Input}
	}
	writeJSON(w, http.StatusOK, discoveryView[workloadView]{
		Items:      items,
		Scales:     []string{"tiny", "small", "medium"},
		WarpPolicy: []string{"gto", "lrr"},
		AxisFields: spec.AxisFields(),
	})
}

func (s *Server) handleSchedulers(w http.ResponseWriter, r *http.Request) {
	all := core.Schedulers()
	items := make([]schedulerView, len(all))
	for i, info := range all {
		items[i] = schedulerView{
			Name: info.Name, Description: info.Description,
			IdleAware: info.IdleAware, Binding: info.Binding,
			StrictBinding: info.StrictBinding, ChildFirst: info.ChildFirst,
		}
	}
	writeJSON(w, http.StatusOK, discoveryView[schedulerView]{Items: items})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	all := gpu.ModelInfos()
	items := make([]modelView, len(all))
	for i, info := range all {
		items[i] = modelView{Name: info.Name, Description: info.Description}
	}
	writeJSON(w, http.StatusOK, discoveryView[modelView]{Items: items})
}

// runsListView is the GET /v1/runs payload: one page of jobs in submission
// order, plus the cursor for the next page ("" when this is the last).
type runsListView struct {
	Runs       []jobView `json:"runs"`
	NextCursor string    `json:"next_cursor,omitempty"`
	Total      int       `json:"total"`
}

// maxRunsPage bounds one listing page.
const maxRunsPage = 500

// handleRunsList serves GET /v1/runs: the in-process job table, ordered by
// first registration, filtered by ?state= (queued|running|done|failed) and
// paginated by ?cursor= / ?limit=. The cursor is the last-seen sequence
// number — stable under concurrent submissions, since sequence numbers only
// grow and a job's never changes.
func (s *Server) handleRunsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var stateFilter State
	if v := q.Get("state"); v != "" {
		switch State(v) {
		case StateQueued, StateRunning, StateDone, StateFailed:
			stateFilter = State(v)
		default:
			badRequest(w, fmt.Errorf("serve: unknown state filter %q (valid: %s, %s, %s, %s)",
				v, StateQueued, StateRunning, StateDone, StateFailed))
			return
		}
	}
	limit := 100
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			badRequest(w, fmt.Errorf("serve: bad limit %q", v))
			return
		}
		limit = min(n, maxRunsPage)
	}
	var cursor uint64
	if v := q.Get("cursor"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			badRequest(w, fmt.Errorf("serve: bad cursor %q", v))
			return
		}
		cursor = n
	}

	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })

	view := runsListView{Runs: []jobView{}}
	var lastSeq uint64
	truncated := false
	for _, j := range jobs {
		jv := j.view(nil)
		if stateFilter != "" && jv.State != stateFilter {
			continue
		}
		view.Total++
		if j.seq <= cursor {
			continue
		}
		if len(view.Runs) >= limit {
			truncated = true
			continue
		}
		view.Runs = append(view.Runs, jv)
		lastSeq = j.seq
	}
	if truncated {
		view.NextCursor = strconv.FormatUint(lastSeq, 10)
	}
	writeJSON(w, http.StatusOK, view)
}
