package serve

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"laperm/internal/faults"
)

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	id    uint64
	event string
	data  string
}

// readSSE parses a full SSE stream (the handler closes it at the terminal
// state).
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	scanner := bufio.NewScanner(body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var evs []sseEvent
	var cur sseEvent
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			cur.id = n
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				evs = append(evs, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	return evs
}

// getEvents GETs a job's event stream to completion, optionally resuming
// from a Last-Event-ID.
func getEvents(t *testing.T, ts *httptest.Server, id string, lastEventID uint64) []sseEvent {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+"/v1/runs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastEventID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events stream: status %d", resp.StatusCode)
	}
	return readSSE(t, resp.Body)
}

// mustParse arms a registry for server fault tests.
func mustParse(t *testing.T, spec string, seed uint64) *faults.Registry {
	t.Helper()
	r, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestSSEEventIDsMonotonicAndResume: every published event carries a
// strictly increasing id, and a reconnect with Last-Event-ID replays
// exactly the missed suffix (here: everything after the first event),
// ending with the terminal state.
func TestSSEEventIDsMonotonicAndResume(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)

	// Live history now holds at least the running and done transitions.
	fresh := getEvents(t, ts, view.ID, 0)
	if len(fresh) != 1 || fresh[0].event != "state" || !strings.Contains(fresh[0].data, `"done"`) {
		t.Fatalf("fresh attach to a terminal job = %+v, want one done snapshot", fresh)
	}
	snapID := fresh[0].id
	if snapID < 2 {
		t.Fatalf("terminal snapshot id = %d, want >= 2 (running + done were published)", snapID)
	}

	// Resume after the first event: the replayed suffix must be ids
	// 2..snapID in order, terminal state last.
	resumed := getEvents(t, ts, view.ID, 1)
	if len(resumed) == 0 {
		t.Fatal("resume replayed nothing")
	}
	prev := uint64(1)
	for _, ev := range resumed {
		if ev.id <= prev {
			t.Fatalf("replayed ids not strictly increasing: %+v", resumed)
		}
		prev = ev.id
	}
	last := resumed[len(resumed)-1]
	if last.event != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("resume did not end with the terminal state: %+v", last)
	}
	if last.id != snapID {
		t.Fatalf("resume ended at id %d, snapshot says history ends at %d", last.id, snapID)
	}

	// Resuming from the very end: nothing was missed; the handler restates
	// the terminal snapshot so the client still learns the outcome.
	caughtUp := getEvents(t, ts, view.ID, snapID)
	if len(caughtUp) != 1 || !strings.Contains(caughtUp[0].data, `"done"`) {
		t.Fatalf("caught-up resume = %+v, want the terminal snapshot", caughtUp)
	}
}

// TestServerRetriesTransientFault: a one-shot injected fault (at the cache
// write — a site every attempt must pass; the engine's own poll site is
// exercised in the gpu package, whose workloads are big enough to cross the
// poll throttle) is retried transparently; the job completes, the retry is
// visible in the job view and /metrics, and the artifacts are
// byte-identical to a fault-free run of the same spec.
func TestServerRetriesTransientFault(t *testing.T) {
	clean, cleanTS := newTestServer(t, Config{Workers: 1})
	clean.Start()
	_, cv := submit(t, cleanTS, tinySpec)
	if v := waitTerminal(t, cleanTS, cv.ID); v.State != StateDone {
		t.Fatalf("baseline run failed: %+v", v)
	}
	baseline := getArtifact(t, cleanTS, cv.ID, ResultArtifact)

	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "serve.cache.write=error:n=1", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("faulted run did not recover: %+v", final)
	}
	if final.Retries != 1 {
		t.Errorf("view.Retries = %d, want 1", final.Retries)
	}
	if m := getMetrics(t, ts); m.Retries != 1 || m.JobsFailed != 0 || m.JobsDone != 1 {
		t.Errorf("metrics = retries %d, failed %d, done %d; want 1, 0, 1", m.Retries, m.JobsFailed, m.JobsDone)
	}
	if got := getArtifact(t, ts, view.ID, ResultArtifact); !bytes.Equal(got, baseline) {
		t.Error("result after a retried transient differs from the fault-free baseline")
	}
}

// TestServerContainsInjectedPanic: a panic fault mid-attempt (here in the
// cache commit) unwinds into runJob's containment — not the pool's cell
// recovery, which would strand the job running forever — classifies as
// transient, and is retried to completion.
func TestServerContainsInjectedPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "serve.cache.write=panic:n=1", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run did not recover from injected panic: %+v", final)
	}
	if final.Retries != 1 {
		t.Errorf("view.Retries = %d, want 1", final.Retries)
	}
}

// TestServerRetriesCacheWriteFault: a transient cache-write failure after a
// successful simulation is retried end to end (the attempt re-executes and
// re-commits) and the job still completes.
func TestServerRetriesCacheWriteFault(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "serve.cache.write=error:n=1", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateDone {
		t.Fatalf("run did not recover from cache-write fault: %+v", final)
	}
	if final.Retries != 1 {
		t.Errorf("view.Retries = %d, want 1", final.Retries)
	}
}

// TestRetryLimitExhaustedFailsTransient: when the fault schedule outlasts
// the retry budget, the job fails with the structured transient kind — a
// signal the client may resubmit.
func TestRetryLimitExhaustedFailsTransient(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers:    1,
		RetryLimit: 1,
		Faults:     mustParse(t, "serve.cache.write=error:n=10", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateFailed || final.ErrorKind != KindTransient {
		t.Fatalf("state %s kind %q, want failed/transient", final.State, final.ErrorKind)
	}
	if m := getMetrics(t, ts); m.Retries != 1 {
		t.Errorf("metrics.Retries = %d, want 1 (the budget)", m.Retries)
	}

	// Failures are never cached and the schedule is spent (n=10 burns on
	// the retry chain only up to the budget; exhaust the rest first), so a
	// resubmission re-executes. Drain the remaining fault charges by
	// resubmitting until clean.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, v := submit(t, ts, tinySpec)
		v = waitTerminal(t, ts, v.ID)
		if v.State == StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resubmissions never converged after fault exhaustion")
		}
	}
}

// TestCellFaultFailsJobWithTransientKind: a fault at the pool's cell site
// fires before runJob ever runs, so the batch strands the job queued; the
// dispatcher sweep must fail it with the classified transient cause — not
// a bogus "canceled" — and a resubmission converges.
func TestCellFaultFailsJobWithTransientKind(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "exp.cell.run=error:n=1", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	final := waitTerminal(t, ts, view.ID)
	if final.State != StateFailed || final.ErrorKind != KindTransient {
		t.Fatalf("state %s kind %q, want failed/transient", final.State, final.ErrorKind)
	}
	_, v2 := submit(t, ts, tinySpec)
	if final2 := waitTerminal(t, ts, v2.ID); final2.State != StateDone {
		t.Fatalf("resubmit after cell fault: %+v", final2)
	}
}

// TestSubmitFaultShedsRetryably: an injected submit failure answers 503
// with Retry-After (the server "died" mid-accept); the identical retry
// succeeds because submission is idempotent by content hash.
func TestSubmitFaultShedsRetryably(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "serve.submit=error:n=1", 1),
	})
	s.Start()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under fault: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("injected submit failure missing Retry-After")
	}
	code, view := submit(t, ts, tinySpec)
	if code != http.StatusAccepted {
		t.Fatalf("retry submit: status %d, want 202", code)
	}
	if v := waitTerminal(t, ts, view.ID); v.State != StateDone {
		t.Fatalf("retried submission failed: %+v", v)
	}
}

// TestSSEFlushFaultDropsStreamResumable: an injected flush fault tears the
// event stream (zero or partial frames); reconnecting — with the ids the
// client did receive — completes the story.
func TestSSEFlushFaultDropsStreamResumable(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		Faults:  mustParse(t, "serve.sse.flush=error:n=1", 1),
	})
	s.Start()
	_, view := submit(t, ts, tinySpec)
	waitTerminal(t, ts, view.ID)

	torn := getEvents(t, ts, view.ID, 0)
	if len(torn) != 0 {
		t.Fatalf("flush fault on the first frame should tear before any event, got %+v", torn)
	}
	resumed := getEvents(t, ts, view.ID, 0)
	if len(resumed) != 1 || !strings.Contains(resumed[0].data, `"done"`) {
		t.Fatalf("reconnect after tear = %+v, want the terminal snapshot", resumed)
	}
}

// TestReadyzLifecycle: /readyz is ready while serving, not-ready while
// draining; /healthz stays 200 throughout (liveness must not kill a
// draining server).
func TestReadyzLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	s.Start()
	check := func(path string, want int) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	check("/readyz", http.StatusOK)
	check("/healthz", http.StatusOK)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	check("/readyz", http.StatusServiceUnavailable)
	check("/healthz", http.StatusOK)
}

// TestEventStreamMidRunCarriesIDs: attaching mid-run yields a snapshot and
// then live events whose ids strictly increase from the snapshot's.
func TestEventStreamMidRunCarriesIDs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ready := make(chan struct{})
	release := make(chan struct{})
	released := false
	s.testBeforeRun = func(*Job) {
		if !released {
			released = true
			close(ready)
			<-release
		}
	}
	s.Start()
	_, view := submit(t, ts, tinySpec)
	<-ready
	resp, err := http.Get(ts.URL + "/v1/runs/" + view.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(release)
	evs := readSSE(t, resp.Body)
	if len(evs) < 2 {
		t.Fatalf("stream = %+v, want snapshot plus at least the done transition", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].id <= evs[i-1].id {
			t.Fatalf("ids not strictly increasing: %s", fmt.Sprint(evs))
		}
	}
	last := evs[len(evs)-1]
	if last.event != "state" || !strings.Contains(last.data, `"done"`) {
		t.Fatalf("stream did not end with done: %+v", last)
	}
}
