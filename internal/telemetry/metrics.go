// Package telemetry is the service's dependency-free measurement layer: a
// metrics registry (counters, gauges, fixed-bucket histograms) that renders
// Prometheus text exposition, and a span-based per-job flight recorder
// (flight.go) for wall-clock tracing of a job's path through the service.
//
// Two contracts shape the API:
//
//   - Disabled telemetry is free. Every metric type is used through a
//     pointer whose nil value no-ops: a component holding a nil *Counter or
//     nil *Histogram pays a nil check per call and allocates nothing —
//     the same contract as the faults package's disarmed registry, pinned
//     by TestDisabledTelemetryZeroAlloc.
//   - Hot paths are atomic. Counter.Add, Gauge.Set, and Histogram.Observe
//     perform only atomic operations on pre-allocated state: no locks, no
//     allocation, safe under full concurrency while another goroutine
//     renders the exposition.
//
// Registration (Registry.Counter, CounterVec.With, ...) takes locks and may
// allocate; callers on hot paths register once and hold the handle.
package telemetry

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The nil *Counter discards
// updates.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. The nil *Gauge discards updates.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket distribution. Observe is allocation-free:
// bucket counts, the total count, and the sum (float64 bits updated by CAS)
// are all atomics sized at registration. The nil *Histogram discards
// observations.
type Histogram struct {
	// uppers holds the inclusive upper bounds of the finite buckets, in
	// increasing order; counts has len(uppers)+1 entries, the last being
	// the +Inf bucket. Counts are per-bucket (non-cumulative); the
	// exposition accumulates.
	uppers []float64
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits of the running sum
}

func newHistogram(buckets []float64) *Histogram {
	h := &Histogram{
		uppers: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// DefBuckets are general-purpose latency buckets in seconds, 1ms to ~100s.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// ExpBuckets returns n buckets starting at start, each factor times the
// previous — byte sizes, queue depths, and other wide-range positives.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// metricType is a family's Prometheus type.
type metricType uint8

const (
	typeCounter metricType = iota
	typeGauge
	typeHistogram
)

func (t metricType) String() string {
	switch t {
	case typeCounter:
		return "counter"
	case typeGauge:
		return "gauge"
	case typeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance inside a family. Exactly one of counter,
// gauge, hist, or fn is set; fn-backed series read their value at render
// time (for values owned elsewhere, e.g. cache occupancy).
type series struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
	fn          func() float64
}

// family is one named metric with its type, help text, label schema, and
// series set. Series registration locks the family; reads during rendering
// hold the same lock, but the metric handles themselves are lock-free.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]*series
	order  []string // registration order of series keys; rendering sorts
}

// Registry holds a metric namespace. The nil *Registry no-ops every
// registration, returning nil metric handles, so a component instrumented
// against a possibly-nil registry costs nothing when it is not measured.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	names      []string
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric or label name.
func validName(s string, label bool) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || r == '_'
		if !label && r == ':' {
			alpha = true
		}
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookupOrCreate returns the family for name, creating it on first use.
// Registering the same name again returns the existing family; registering
// it with a different type, label schema, or bucket layout panics — that is
// a programming error that would corrupt the exposition with conflicting
// series.
func (r *Registry) lookupOrCreate(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !validName(name, false) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l, true) {
			panic(fmt.Sprintf("telemetry: metric %s: invalid label name %q", name, l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labelNames, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: append([]string(nil), labels...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]*series),
	}
	r.families[name] = f
	r.names = append(r.names, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// seriesKey joins label values into the family's series map key. The unit
// separator cannot appear in reasonable label values, so distinct tuples
// never collide.
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the series for the label values, creating it with mk on first
// use.
func (f *family) get(values []string, mk func() *series) *series {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %s: %d label values for %d labels",
			f.name, len(values), len(f.labelNames)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := mk()
	s.labelValues = append([]string(nil), values...)
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

// Counter registers (or returns) an unlabeled counter. Nil registries return
// a nil handle, whose methods no-op.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.lookupOrCreate(name, help, typeCounter, nil, nil)
	return f.get(nil, func() *series { return &series{counter: &Counter{}} }).counter
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.lookupOrCreate(name, help, typeGauge, nil, nil)
	return f.get(nil, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// Histogram registers (or returns) an unlabeled fixed-bucket histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkBuckets(name, buckets)
	f := r.lookupOrCreate(name, help, typeHistogram, nil, buckets)
	return f.get(nil, func() *series { return &series{hist: newHistogram(buckets)} }).hist
}

func checkBuckets(name string, buckets []float64) {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s has no buckets", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing", name))
		}
	}
}

// CounterFunc registers a counter whose value is read from fn at render
// time — for monotonic totals owned elsewhere (the simulation-cycle meter,
// cache statistics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookupOrCreate(name, help, typeCounter, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.lookupOrCreate(name, help, typeGauge, nil, nil)
	f.get(nil, func() *series { return &series{fn: fn} })
}

// OnScrape registers a collector invoked (in registration order) at the
// start of every exposition render, before any family is read — the hook
// for syncing externally owned values (queue depths, cache occupancy) into
// gauges exactly once per scrape.
func (r *Registry) OnScrape(fn func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.lookupOrCreate(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for one label-value tuple, creating it on first
// use. Hot paths should hold the returned handle rather than calling With
// per operation.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues, func() *series { return &series{counter: &Counter{}} }).counter
}

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// GaugeVec registers (or returns) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.lookupOrCreate(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for one label-value tuple, creating it on first use.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues, func() *series { return &series{gauge: &Gauge{}} }).gauge
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers (or returns) a labeled histogram family; every
// series shares the bucket layout.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkBuckets(name, buckets)
	return &HistogramVec{
		f:       r.lookupOrCreate(name, help, typeHistogram, labelNames, buckets),
		buckets: buckets,
	}
}

// With returns the histogram for one label-value tuple, creating it on
// first use.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.get(labelValues, func() *series { return &series{hist: newHistogram(v.buckets)} }).hist
}
