package telemetry

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with exactly one
// # HELP and one # TYPE comment, series sorted by label values, histograms
// expanded into cumulative _bucket series plus _sum and _count. Every
// series is emitted at most once, so the output never contains duplicates.
//
// Collectors registered with OnScrape run first. Rendering holds each
// family's lock only while reading its series; metric updates remain
// lock-free throughout.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	collectors := append([]func(){}, r.collectors...)
	names := append([]string{}, r.names...)
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		families = append(families, r.families[n])
	}
	r.mu.Unlock()
	for _, fn := range collectors {
		fn()
	}

	bw := bufio.NewWriter(w)
	for _, f := range families {
		f.write(bw)
	}
	return bw.Flush()
}

// write renders one family.
func (f *family) write(w *bufio.Writer) {
	f.mu.Lock()
	keys := append([]string{}, f.order...)
	rows := make([]*series, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		rows = append(rows, f.series[k])
	}
	f.mu.Unlock()
	if len(rows) == 0 {
		return
	}

	w.WriteString("# HELP ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(escapeHelp(f.help))
	w.WriteByte('\n')
	w.WriteString("# TYPE ")
	w.WriteString(f.name)
	w.WriteByte(' ')
	w.WriteString(f.typ.String())
	w.WriteByte('\n')

	for _, s := range rows {
		switch {
		case s.hist != nil:
			f.writeHistogram(w, s)
		case s.counter != nil:
			f.writeSeries(w, f.name, s.labelValues, "", "", formatUint(s.counter.Value()))
		case s.gauge != nil:
			f.writeSeries(w, f.name, s.labelValues, "", "", strconv.FormatInt(s.gauge.Value(), 10))
		case s.fn != nil:
			f.writeSeries(w, f.name, s.labelValues, "", "", formatFloat(s.fn()))
		}
	}
}

// writeHistogram renders one histogram series: cumulative buckets with an
// le label, then _sum and _count.
func (f *family) writeHistogram(w *bufio.Writer, s *series) {
	h := s.hist
	var cum uint64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		f.writeSeries(w, f.name+"_bucket", s.labelValues, "le", formatFloat(upper), formatUint(cum))
	}
	cum += h.counts[len(h.uppers)].Load()
	f.writeSeries(w, f.name+"_bucket", s.labelValues, "le", "+Inf", formatUint(cum))
	f.writeSeries(w, f.name+"_sum", s.labelValues, "", "", formatFloat(h.Sum()))
	f.writeSeries(w, f.name+"_count", s.labelValues, "", "", formatUint(h.Count()))
}

// writeSeries emits one sample line, appending an extra label (the
// histogram le) when extraName is non-empty.
func (f *family) writeSeries(w *bufio.Writer, name string, labelValues []string, extraName, extraValue, value string) {
	w.WriteString(name)
	if len(labelValues) > 0 || extraName != "" {
		w.WriteByte('{')
		for i, lv := range labelValues {
			if i > 0 {
				w.WriteByte(',')
			}
			w.WriteString(f.labelNames[i])
			w.WriteString(`="`)
			w.WriteString(escapeLabel(lv))
			w.WriteByte('"')
		}
		if extraName != "" {
			if len(labelValues) > 0 {
				w.WriteByte(',')
			}
			w.WriteString(extraName)
			w.WriteString(`="`)
			w.WriteString(escapeLabel(extraValue))
			w.WriteByte('"')
		}
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// escapeHelp escapes a HELP comment per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
