package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Inc()
	g.Dec()
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("histogram count = %d, want 4", got)
	}
	if got := h.Sum(); got != 55.55 {
		t.Fatalf("histogram sum = %v, want 55.55", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same_total", "help")
	b := r.Counter("same_total", "help")
	if a != b {
		t.Fatal("re-registering the same counter returned a different handle")
	}
}

func TestSchemaConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("conflict", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("conflict", "help")
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "500").Inc()
	if got := v.With("/a", "200").Value(); got != 3 {
		t.Fatalf("series value = %d, want 3", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`req_total{route="/a",code="200"} 3`,
		`req_total{route="/a",code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 10, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// TestExpositionGolden pins the exact rendered output of a small registry:
// families sorted by name, one HELP/TYPE pair each, cumulative histogram
// buckets, escaped label values.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Gauge("zz_gauge", "last alphabetically, first registered").Set(-3)
	c := r.Counter("aa_total", "first alphabetically")
	c.Add(42)
	h := r.Histogram("mid_seconds", "a histogram", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(99)
	v := r.CounterVec("lbl_total", `with "quotes"`, "name")
	v.With(`va"l`).Inc()
	r.GaugeFunc("fn_gauge", "function-backed", func() float64 { return 1.5 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_total first alphabetically
# TYPE aa_total counter
aa_total 42
# HELP fn_gauge function-backed
# TYPE fn_gauge gauge
fn_gauge 1.5
# HELP lbl_total with "quotes"
# TYPE lbl_total counter
lbl_total{name="va\"l"} 1
# HELP mid_seconds a histogram
# TYPE mid_seconds histogram
mid_seconds_bucket{le="0.5"} 1
mid_seconds_bucket{le="2"} 2
mid_seconds_bucket{le="+Inf"} 3
mid_seconds_sum 100.25
mid_seconds_count 3
# HELP zz_gauge last alphabetically, first registered
# TYPE zz_gauge gauge
zz_gauge -3
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestNoDuplicateSeries renders a registry with several families and checks
// no sample line (metric name + label set) repeats — the invariant Prometheus
// scrapers reject on.
func TestNoDuplicateSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.Counter("a_total", "a").Inc() // same handle, one series
	v := r.CounterVec("b_total", "b", "l")
	v.With("x").Inc()
	v.With("x").Inc()
	v.With("y").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(sb.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key := line[:strings.LastIndexByte(line, ' ')]
		if seen[key] {
			t.Fatalf("duplicate series %q in exposition:\n%s", key, sb.String())
		}
		seen[key] = true
	}
}

// TestDisabledTelemetryZeroAlloc pins the nil-handle contract: every metric
// operation through a nil registry, handle, or flight allocates nothing —
// the same contract the faults package gives disarmed sites.
func TestDisabledTelemetryZeroAlloc(t *testing.T) {
	var nilReg *Registry
	c := nilReg.Counter("x_total", "h")
	g := nilReg.Gauge("x", "h")
	h := nilReg.Histogram("x_seconds", "h", DefBuckets)
	cv := nilReg.CounterVec("xv_total", "h", "l")
	var f *Flight
	var ring *FlightRing
	if c != nil || g != nil || h != nil || cv != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	cases := map[string]func(){
		"counter.Inc":       func() { c.Inc() },
		"counter.Add":       func() { c.Add(3) },
		"gauge.Set":         func() { g.Set(1) },
		"gauge.Add":         func() { g.Add(-1) },
		"histogram.Observe": func() { h.Observe(0.5) },
		"vec.With":          func() { cv.With("v").Inc() },
		"flight.Add":        func() { f.Add("t", "n", time.Time{}, time.Time{}) },
		"flight.Instant":    func() { f.Instant("t", "n", nil) },
		"flight.Start":      func() { f.Start("t", "n")() },
		"ring.Add":          func() { ring.Add(nil) },
		"registry.Write":    func() { nilReg.WritePrometheus(nil) },
	}
	for name, op := range cases {
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%s on nil handle: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestHotPathZeroAlloc pins the armed hot paths: updates on live handles
// perform only atomic operations, no allocation.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "h")
	g := r.Gauge("hot", "h")
	h := r.Histogram("hot_seconds", "h", DefBuckets)
	cases := map[string]func(){
		"counter.Inc":       func() { c.Inc() },
		"gauge.Add":         func() { g.Add(1) },
		"histogram.Observe": func() { h.Observe(0.42) },
	}
	for name, op := range cases {
		if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

// TestConcurrentScrape hammers metric updates from many goroutines while the
// exposition renders repeatedly; run under -race this pins the lock-free
// update / locked-render split.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "h")
	g := r.Gauge("hammer", "h")
	h := r.Histogram("hammer_seconds", "h", []float64{0.1, 1})
	v := r.CounterVec("hammer_lbl_total", "h", "w")
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := v.With(string(rune('a' + w)))
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i) / iters)
				lbl.Inc()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		select {
		case <-done:
			if got := c.Value(); got != workers*iters {
				t.Fatalf("counter = %d, want %d", got, workers*iters)
			}
			if got := h.Count(); got != workers*iters {
				t.Fatalf("histogram count = %d, want %d", got, workers*iters)
			}
			return
		default:
		}
	}
}
