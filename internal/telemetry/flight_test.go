package telemetry

import (
	"fmt"
	"testing"
	"time"
)

func TestFlightSpans(t *testing.T) {
	f := NewFlight("run1")
	if f.ID() != "run1" {
		t.Fatalf("ID = %q", f.ID())
	}
	if f.Begin().IsZero() {
		t.Fatal("Begin is zero")
	}
	end := f.Start("job", "queue")
	f.Instant("job", "retry", map[string]string{"kind": "transient"})
	end()
	f.Add("engine", "simulate", time.Now(), time.Now().Add(time.Millisecond))

	spans := f.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "queue" || spans[0].End.IsZero() {
		t.Fatalf("queue span not closed: %+v", spans[0])
	}
	if !spans[1].Instant || spans[1].Attrs["kind"] != "transient" {
		t.Fatalf("instant span wrong: %+v", spans[1])
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestFlightOpenSpan(t *testing.T) {
	f := NewFlight("run2")
	f.Start("job", "run") // never closed
	spans := f.Spans()
	if len(spans) != 1 || !spans[0].End.IsZero() {
		t.Fatalf("open span should have zero End: %+v", spans)
	}
}

func TestFlightRing(t *testing.T) {
	r := NewFlightRing(2)
	for i := 0; i < 3; i++ {
		r.Add(NewFlight(fmt.Sprintf("f%d", i)))
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Get("f0") != nil {
		t.Fatal("oldest flight not evicted")
	}
	if r.Get("f2") == nil || r.Get("f1") == nil {
		t.Fatal("recent flights missing")
	}
	// Replacing an id must not consume a slot.
	repl := NewFlight("f2")
	r.Add(repl)
	if r.Len() != 2 || r.Get("f2") != repl {
		t.Fatal("re-add did not replace in place")
	}
	if r.Get("f1") == nil {
		t.Fatal("re-add evicted an unrelated flight")
	}
}

func TestNilFlightSafe(t *testing.T) {
	var f *Flight
	f.Add("t", "n", time.Now(), time.Now())
	f.Instant("t", "n", nil)
	f.Start("t", "n")()
	if f.ID() != "" || f.Len() != 0 || f.Spans() != nil {
		t.Fatal("nil flight should be empty")
	}
	var r *FlightRing
	r.Add(f)
	if r.Get("x") != nil || r.Len() != 0 {
		t.Fatal("nil ring should be empty")
	}
}
