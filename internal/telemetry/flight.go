package telemetry

import (
	"sync"
	"time"
)

// Span is one wall-clock interval in a flight: where a job spent its time
// between submission and its terminal state. Track groups spans into rows
// ("job" for the service-level lifecycle, "engine" for simulator-internal
// phases); a span whose End is zero was still open when the flight was
// snapshotted. Instant marks a zero-length point event (a retry notice).
type Span struct {
	Track   string            `json:"track"`
	Name    string            `json:"name"`
	Start   time.Time         `json:"start"`
	End     time.Time         `json:"end"`
	Instant bool              `json:"instant,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Flight is one job's span trace. All methods are safe for concurrent use,
// and every method on the nil *Flight no-ops without allocating, so code
// paths instrumented with spans cost nothing when no recorder is attached —
// the same contract as the nil metric handles.
type Flight struct {
	id    string
	begin time.Time

	mu    sync.Mutex
	spans []Span
}

// NewFlight starts a flight for run id, anchored at now.
func NewFlight(id string) *Flight {
	return &Flight{id: id, begin: time.Now()}
}

// ID returns the flight's run id ("" for nil).
func (f *Flight) ID() string {
	if f == nil {
		return ""
	}
	return f.id
}

// Begin returns the flight's anchor time (zero for nil).
func (f *Flight) Begin() time.Time {
	if f == nil {
		return time.Time{}
	}
	return f.begin
}

// Add records a closed span.
func (f *Flight) Add(track, name string, start, end time.Time) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.spans = append(f.spans, Span{Track: track, Name: name, Start: start, End: end})
	f.mu.Unlock()
}

// Start opens a span now and returns the closure that ends it. The closure
// is safe to call exactly once; spans left open appear with a zero End.
func (f *Flight) Start(track, name string) (end func()) {
	if f == nil {
		return func() {}
	}
	start := time.Now()
	f.mu.Lock()
	f.spans = append(f.spans, Span{Track: track, Name: name, Start: start})
	i := len(f.spans) - 1
	f.mu.Unlock()
	return func() {
		f.mu.Lock()
		f.spans[i].End = time.Now()
		f.mu.Unlock()
	}
}

// Instant records a point event with optional attributes.
func (f *Flight) Instant(track, name string, attrs map[string]string) {
	if f == nil {
		return
	}
	now := time.Now()
	f.mu.Lock()
	f.spans = append(f.spans, Span{Track: track, Name: name, Start: now, End: now, Instant: true, Attrs: attrs})
	f.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in recording order.
func (f *Flight) Spans() []Span {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Span(nil), f.spans...)
}

// Len returns the recorded span count (0 for nil).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.spans)
}

// FlightRing keeps the last N completed flights by run id: the bounded
// store behind the service's trace endpoint. Re-adding an id replaces its
// flight without consuming a slot; beyond capacity, the oldest flight is
// dropped. A nil *FlightRing discards adds and misses every lookup.
type FlightRing struct {
	cap int

	mu   sync.Mutex
	byID map[string]*Flight
	fifo []string
}

// NewFlightRing returns a ring keeping the last n flights (n < 1 keeps 1).
func NewFlightRing(n int) *FlightRing {
	if n < 1 {
		n = 1
	}
	return &FlightRing{cap: n, byID: make(map[string]*Flight)}
}

// Add stores a completed flight, evicting the oldest beyond capacity.
func (r *FlightRing) Add(f *Flight) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[f.id]; ok {
		r.byID[f.id] = f
		return
	}
	r.byID[f.id] = f
	r.fifo = append(r.fifo, f.id)
	for len(r.fifo) > r.cap {
		delete(r.byID, r.fifo[0])
		r.fifo = r.fifo[1:]
	}
}

// Get returns the flight for id, or nil.
func (r *FlightRing) Get(id string) *Flight {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Len returns the stored flight count.
func (r *FlightRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.fifo)
}
