// Package graph provides the Compressed Sparse Row graph substrate used by
// the graph benchmarks (BFS, SSSP, CLR) of Table II, plus synthetic input
// generators standing in for the paper's data sets:
//
//   - Citation generates a clustered graph with strong index locality, the
//     property the paper attributes to the citation-network input
//     (Section III-A: "vertices are more likely to connect to their
//     (spatially) closer neighbors").
//   - RMAT generates a Graph500-style R-MAT graph where vertices connect
//     "all over the graph", giving children distributed memory accesses.
//   - Banded generates a banded sparse-matrix graph standing in for the
//     Cage15 matrix, whose nonzeros concentrate near the diagonal.
//   - Uniform generates an Erdős–Rényi-style graph for stress tests.
//
// Reference host-side algorithms (BFS levels, Bellman-Ford SSSP, greedy
// colouring) are provided for workload construction and validation.
package graph

import (
	"fmt"
	"math/rand"
	"sort"
)

// CSR is a directed graph in Compressed Sparse Row form. Neighbours of
// vertex v are Col[RowPtr[v]:RowPtr[v+1]], stored in ascending order.
type CSR struct {
	RowPtr []int32
	Col    []int32
}

// NumVertices returns the vertex count.
func (g *CSR) NumVertices() int { return len(g.RowPtr) - 1 }

// NumEdges returns the directed edge count.
func (g *CSR) NumEdges() int { return len(g.Col) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v int) int { return int(g.RowPtr[v+1] - g.RowPtr[v]) }

// Neighbors returns the adjacency slice of v (shared storage; do not
// mutate).
func (g *CSR) Neighbors(v int) []int32 { return g.Col[g.RowPtr[v]:g.RowPtr[v+1]] }

// MaxDegree returns the largest out-degree in the graph.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Validate reports an error if the CSR arrays are inconsistent.
func (g *CSR) Validate() error {
	if len(g.RowPtr) == 0 {
		return fmt.Errorf("graph: empty RowPtr")
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return fmt.Errorf("graph: RowPtr not monotone at %d", v)
		}
	}
	if int(g.RowPtr[n]) != len(g.Col) {
		return fmt.Errorf("graph: RowPtr[n]=%d but %d columns", g.RowPtr[n], len(g.Col))
	}
	for i, c := range g.Col {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("graph: Col[%d]=%d out of [0,%d)", i, c, n)
		}
	}
	return nil
}

// FromEdges builds a CSR with n vertices from an edge list, deduplicating
// parallel edges and dropping self-loops. Adjacency lists are sorted.
func FromEdges(n int, edges [][2]int32) *CSR {
	adj := make([][]int32, n)
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			continue
		}
		adj[u] = append(adj[u], v)
	}
	rowPtr := make([]int32, n+1)
	var col []int32
	for u := 0; u < n; u++ {
		a := adj[u]
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		last := int32(-1)
		for _, v := range a {
			if v != last {
				col = append(col, v)
				last = v
			}
		}
		rowPtr[u+1] = int32(len(col))
	}
	return &CSR{RowPtr: rowPtr, Col: col}
}

// Citation generates a clustered, locality-heavy graph: each vertex links to
// avgDegree neighbours drawn from a window of nearby (lower-numbered)
// vertices, with a small fraction of long-range links. In CSR order this
// yields sibling subgraphs stored closely together, like the paper's
// citation-network input.
func Citation(n, avgDegree int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	window := n / 16
	if window < 8 {
		window = 8
	}
	var edges [][2]int32
	for v := 1; v < n; v++ {
		deg := 1 + rng.Intn(2*avgDegree)
		for i := 0; i < deg; i++ {
			var u int
			if rng.Float64() < 0.9 {
				// Cite a nearby, earlier vertex.
				lo := v - window
				if lo < 0 {
					lo = 0
				}
				u = lo + rng.Intn(v-lo)
			} else {
				u = rng.Intn(v)
			}
			edges = append(edges, [2]int32{int32(v), int32(u)})
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return FromEdges(n, edges)
}

// RMAT generates a Graph500-style recursive-matrix graph with 2^scale
// vertices and edgeFactor edges per vertex, using the standard
// (0.57, 0.19, 0.19, 0.05) partition probabilities. Connectivity is
// scattered across the whole vertex range.
func RMAT(scale, edgeFactor int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * edgeFactor
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([][2]int32, 0, 2*m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, [2]int32{int32(u), int32(v)})
		edges = append(edges, [2]int32{int32(v), int32(u)})
	}
	return FromEdges(n, edges)
}

// Banded generates a banded sparse-matrix graph standing in for Cage15:
// vertex v connects to roughly avgDegree vertices within ±bandwidth of v,
// so neighbours are stored almost contiguously in CSR order.
func Banded(n, avgDegree, bandwidth int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int32
	for v := 0; v < n; v++ {
		deg := 1 + rng.Intn(2*avgDegree)
		for i := 0; i < deg; i++ {
			off := rng.Intn(2*bandwidth+1) - bandwidth
			u := v + off
			if u < 0 || u >= n || u == v {
				continue
			}
			edges = append(edges, [2]int32{int32(v), int32(u)})
			edges = append(edges, [2]int32{int32(u), int32(v)})
		}
	}
	return FromEdges(n, edges)
}

// Uniform generates an Erdős–Rényi-style graph with n vertices and
// approximately n*avgDegree directed edges.
func Uniform(n, avgDegree int, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int32
	for i := 0; i < n*avgDegree; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		edges = append(edges, [2]int32{u, v}, [2]int32{v, u})
	}
	return FromEdges(n, edges)
}

// BFSLevels returns the breadth-first level of every vertex from src (-1 for
// unreachable vertices) and the vertices of each frontier in order.
func BFSLevels(g *CSR, src int) (levels []int32, frontiers [][]int32) {
	n := g.NumVertices()
	levels = make([]int32, n)
	for i := range levels {
		levels[i] = -1
	}
	levels[src] = 0
	cur := []int32{int32(src)}
	for len(cur) > 0 {
		frontiers = append(frontiers, cur)
		var next []int32
		for _, v := range cur {
			for _, w := range g.Neighbors(int(v)) {
				if levels[w] == -1 {
					levels[w] = levels[v] + 1
					next = append(next, w)
				}
			}
		}
		cur = next
	}
	return levels, frontiers
}

// SSSP runs Bellman-Ford from src with the given edge weight function and
// returns the distance of every vertex (-1 when unreachable).
func SSSP(g *CSR, src int, weight func(u, v int32) int64) []int64 {
	const inf = int64(1) << 62
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			if dist[u] == inf {
				continue
			}
			for _, v := range g.Neighbors(u) {
				if d := dist[u] + weight(int32(u), v); d < dist[v] {
					dist[v] = d
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range dist {
		if dist[i] == inf {
			dist[i] = -1
		}
	}
	return dist
}

// GreedyColor colours the graph with the first-fit heuristic and returns the
// colour of every vertex.
func GreedyColor(g *CSR) []int32 {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	var used []bool
	for v := 0; v < n; v++ {
		if need := g.MaxDegree() + 1; len(used) < need {
			used = make([]bool, need)
		}
		for i := range used {
			used[i] = false
		}
		for _, w := range g.Neighbors(v) {
			if c := colors[w]; c >= 0 {
				used[c] = true
			}
		}
		for c := range used {
			if !used[c] {
				colors[v] = int32(c)
				break
			}
		}
	}
	return colors
}

// LocalityIndex measures how concentrated adjacency is in index space: the
// mean of |v - u| / n over all edges (u, v), in [0, 1). Banded and citation
// graphs score low; R-MAT scores high. The paper's child-sibling footprint
// variation is driven by exactly this property.
func LocalityIndex(g *CSR) float64 {
	n := g.NumVertices()
	if g.NumEdges() == 0 || n == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			d := int(u) - v
			if d < 0 {
				d = -d
			}
			sum += float64(d) / float64(n)
		}
	}
	return sum / float64(g.NumEdges())
}
