package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasics(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {1, 0}, {2, 3}, {3, 2}})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 {
		t.Errorf("NumVertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Errorf("NumEdges = %d", g.NumEdges())
	}
	if got := g.Neighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if g.Degree(1) != 1 || g.Degree(3) != 1 {
		t.Error("degree mismatch")
	}
}

func TestFromEdgesDedupAndSelfLoops(t *testing.T) {
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 1}, {1, 1}, {2, 0}, {0, 2}, {0, 2}})
	if g.Degree(0) != 2 {
		t.Errorf("Degree(0) = %d, want 2 (dedup)", g.Degree(0))
	}
	if g.Degree(1) != 0 {
		t.Errorf("Degree(1) = %d, want 0 (self loop dropped)", g.Degree(1))
	}
}

func TestFromEdgesDropsOutOfRange(t *testing.T) {
	g := FromEdges(2, [][2]int32{{0, 5}, {-1, 0}, {0, 1}})
	if g.NumEdges() != 1 {
		t.Errorf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestFromEdgesSortsNeighbors(t *testing.T) {
	g := FromEdges(5, [][2]int32{{0, 4}, {0, 1}, {0, 3}, {0, 2}})
	nb := g.Neighbors(0)
	if !sort.SliceIsSorted(nb, func(i, j int) bool { return nb[i] < nb[j] }) {
		t.Errorf("neighbors not sorted: %v", nb)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	broken := []*CSR{
		{RowPtr: nil},
		{RowPtr: []int32{1, 2}, Col: []int32{0}},
		{RowPtr: []int32{0, 2, 1}, Col: []int32{0, 1, 0}},
		{RowPtr: []int32{0, 1}, Col: []int32{5}},
		{RowPtr: []int32{0, 2}, Col: []int32{0}},
	}
	for i, g := range broken {
		if err := g.Validate(); err == nil {
			t.Errorf("broken graph %d passed validation", i)
		}
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	gens := map[string]*CSR{
		"citation": Citation(500, 4, 1),
		"rmat":     RMAT(9, 4, 1),
		"banded":   Banded(500, 4, 16, 1),
		"uniform":  Uniform(500, 4, 1),
	}
	for name, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT(8, 4, 7)
	b := RMAT(8, 4, 7)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("RMAT not deterministic")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("RMAT adjacency differs between identical seeds")
		}
	}
	c := Citation(300, 3, 9)
	d := Citation(300, 3, 9)
	if c.NumEdges() != d.NumEdges() {
		t.Fatal("Citation not deterministic")
	}
}

// TestLocalityOrdering verifies the property the paper relies on: banded
// (cage15-like) and citation inputs have concentrated connectivity while
// R-MAT (graph500) is scattered.
func TestLocalityOrdering(t *testing.T) {
	banded := LocalityIndex(Banded(1<<10, 4, 16, 3))
	citation := LocalityIndex(Citation(1<<10, 4, 3))
	rmat := LocalityIndex(RMAT(10, 4, 3))
	if !(banded < citation) {
		t.Errorf("banded locality %f should beat citation %f", banded, citation)
	}
	if !(citation < rmat) {
		t.Errorf("citation locality %f should beat rmat %f", citation, rmat)
	}
	if banded > 0.05 {
		t.Errorf("banded locality index %f unexpectedly large", banded)
	}
	if rmat < 0.1 {
		t.Errorf("rmat locality index %f unexpectedly small", rmat)
	}
}

func TestBFSLevels(t *testing.T) {
	// 0 - 1 - 2, 3 isolated.
	g := FromEdges(4, [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}})
	levels, frontiers := BFSLevels(g, 0)
	want := []int32{0, 1, 2, -1}
	for i, l := range levels {
		if l != want[i] {
			t.Errorf("level[%d] = %d, want %d", i, l, want[i])
		}
	}
	if len(frontiers) != 3 {
		t.Errorf("frontier count = %d, want 3", len(frontiers))
	}
	if len(frontiers[1]) != 1 || frontiers[1][0] != 1 {
		t.Errorf("frontier 1 = %v", frontiers[1])
	}
}

func TestBFSCoversConnectedComponent(t *testing.T) {
	g := Citation(200, 3, 11)
	levels, frontiers := BFSLevels(g, 0)
	reached := 0
	for _, l := range levels {
		if l >= 0 {
			reached++
		}
	}
	total := 0
	for _, f := range frontiers {
		total += len(f)
	}
	if total != reached {
		t.Errorf("frontier sizes sum %d != reached %d", total, reached)
	}
	if reached < 100 {
		t.Errorf("citation graph from 0 reaches only %d/200", reached)
	}
}

func TestSSSPMatchesBFSOnUnitWeights(t *testing.T) {
	g := RMAT(7, 3, 5)
	levels, _ := BFSLevels(g, 0)
	dist := SSSP(g, 0, func(u, v int32) int64 { return 1 })
	for v := range dist {
		if dist[v] != int64(levels[v]) {
			t.Errorf("vertex %d: sssp %d != bfs %d", v, dist[v], levels[v])
		}
	}
}

func TestSSSPWeighted(t *testing.T) {
	// 0->1 (5), 0->2 (1), 2->1 (1): shortest 0->1 is 2 via vertex 2.
	g := FromEdges(3, [][2]int32{{0, 1}, {0, 2}, {2, 1}})
	w := map[[2]int32]int64{{0, 1}: 5, {0, 2}: 1, {2, 1}: 1}
	dist := SSSP(g, 0, func(u, v int32) int64 { return w[[2]int32{u, v}] })
	if dist[1] != 2 {
		t.Errorf("dist[1] = %d, want 2", dist[1])
	}
}

// Property: greedy colouring is always proper and uses at most maxDegree+1
// colours.
func TestGreedyColorProper(t *testing.T) {
	f := func(seed int64) bool {
		g := Uniform(100, 3, seed)
		colors := GreedyColor(g)
		for v := 0; v < g.NumVertices(); v++ {
			if colors[v] < 0 || int(colors[v]) > g.MaxDegree() {
				return false
			}
			for _, w := range g.Neighbors(v) {
				// Only neighbour pairs with mutual edges are
				// guaranteed conflicting in a directed build;
				// our generators add both directions.
				if int32(v) != w && colors[w] == colors[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Error(err)
	}
}

// Property: FromEdges always yields a graph that validates, with sorted,
// deduplicated adjacency.
func TestFromEdgesProperty(t *testing.T) {
	f := func(raw [][2]int16, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		edges := make([][2]int32, len(raw))
		for i, e := range raw {
			edges[i] = [2]int32{int32(int(e[0]) % n), int32(int(e[1]) % n)}
		}
		g := FromEdges(n, edges)
		if g.Validate() != nil {
			return false
		}
		for v := 0; v < n; v++ {
			nb := g.Neighbors(v)
			for i := 1; i < len(nb); i++ {
				if nb[i] <= nb[i-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

func TestMaxDegree(t *testing.T) {
	g := FromEdges(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 0}})
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d, want 3", g.MaxDegree())
	}
}
