package core

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// conformanceConfig is the machine the qualitative-invariant tests below run
// on: 4 SMXs with private L1s.
func conformanceConfig() config.GPU {
	cfg := config.KeplerK20c()
	cfg.NumSMX = 4
	cfg.SMXsPerCluster = 1
	cfg.MaxPriorityLevels = 4
	return cfg
}

// conformancePolicies is the table the qualitative-invariant tests below
// iterate: every registered policy, with the registry metadata deciding
// which claims apply to it. A newly registered scheduler is conformance-
// checked with no test edits.
var conformancePolicies = func() []struct {
	SchedulerInfo
	make func() gpu.TBScheduler
} {
	cfg := conformanceConfig()
	var table []struct {
		SchedulerInfo
		make func() gpu.TBScheduler
	}
	for _, info := range Schedulers() {
		info := info
		table = append(table, struct {
			SchedulerInfo
			make func() gpu.TBScheduler
		}{info, func() gpu.TBScheduler { return info.New(&cfg) }})
	}
	return table
}()

// TestConformanceChildrenBeforeParents: with a host parent and a bound child
// both pending, the child's TBs dispatch on the bound SMX before any parent
// TB lands there. RR, the baseline, must instead dispatch FCFS.
func TestConformanceChildrenBeforeParents(t *testing.T) {
	for _, tc := range conformancePolicies {
		t.Run(tc.Name, func(t *testing.T) {
			s := tc.make()
			parent := ki(0, 0, -1, nil, 8)
			child := ki(1, 1, 0, parent, 3) // bound to SMX 0
			s.Enqueue(parent)               // FCFS order: parent first
			s.Enqueue(child)
			d := &fakeDispatcher{numSMX: 4}
			seq := drain(t, s, d, 32)
			if len(seq) != 11 {
				t.Fatalf("dispatched %d TBs, want 11", len(seq))
			}
			switch {
			case !tc.ChildFirst:
				// FCFS baseline: the enqueued-first parent dispatches
				// first.
				if seq[0][0] != 0 {
					t.Errorf("%s dispatched the child before the FCFS parent: %v", tc.Name, seq)
				}
			case tc.Binding:
				// Per-SMX banks: on the bound SMX 0, all child TBs
				// dispatch before any parent TB lands there.
				var onSMX0 []int
				for _, e := range seq {
					if e[1] == 0 {
						onSMX0 = append(onSMX0, e[0])
					}
				}
				childSeen := 0
				for _, id := range onSMX0 {
					if id == 1 {
						childSeen++
					} else if childSeen < 3 {
						t.Fatalf("parent TB on bound SMX before the child finished: order %v", onSMX0)
					}
				}
				if childSeen != 3 {
					t.Fatalf("only %d of 3 child TBs dispatched on the bound SMX: %v", childSeen, seq)
				}
			default:
				// Child-first without binding (global priority queues):
				// every child TB dispatches, anywhere, before any parent
				// TB.
				for i := 0; i < 3; i++ {
					if seq[i][0] != 1 {
						t.Fatalf("dispatch %d is kernel %d, want all 3 child TBs first: %v", i, seq[i][0], seq)
					}
				}
			}
		})
	}
}

// TestConformanceBindingHonored: when the bound SMX has room, a child's TBs
// dispatch there. SMX-Bind must never leave the cluster even with the rest
// of the machine idle; Adaptive-Bind must prefer its own bank (stage 1)
// whenever every SMX has bound work of its own.
func TestConformanceBindingHonored(t *testing.T) {
	t.Run("strict-binding", func(t *testing.T) {
		for _, tc := range conformancePolicies {
			if !tc.StrictBinding {
				continue
			}
			s := tc.make()
			parent := ki(9, 0, -1, nil, 1)
			child := ki(0, 1, 2, parent, 5) // bound to SMX 2
			parent.NextTB = 1               // parent already fully dispatched
			s.Enqueue(child)
			d := &fakeDispatcher{numSMX: 4}
			for _, e := range drain(t, s, d, 32) {
				if e[1] != 2 {
					t.Errorf("%s: bound child dispatched on SMX %d, want 2", tc.Name, e[1])
				}
			}
		}
	})
	t.Run("adaptive-stage1-owns-smx", func(t *testing.T) {
		// One child bound per SMX: stage 1 must place each child on its
		// own SMX; no steals while every bank has work.
		ab := NewAdaptiveBind(4, 4)
		parent := ki(9, 0, -1, nil, 1)
		parent.NextTB = 1
		for smx := 0; smx < 4; smx++ {
			ab.Enqueue(ki(smx, 1, smx, parent, 1))
		}
		d := &fakeDispatcher{numSMX: 4}
		for _, e := range drain(t, ab, d, 16) {
			if e[0] != e[1] {
				t.Errorf("child bound to SMX %d dispatched on SMX %d", e[0], e[1])
			}
		}
		if ab.Steals != 0 {
			t.Errorf("adaptive-bind stole %d TBs while every bank had its own work", ab.Steals)
		}
	})
}

// TestConformanceNoOverCommit: no policy may place a TB on an SMX that
// reports no room, even when that strands high-priority work. The dispatcher
// models an SMX filling up after two resident TBs.
func TestConformanceNoOverCommit(t *testing.T) {
	for _, tc := range conformancePolicies {
		t.Run(tc.Name, func(t *testing.T) {
			s := tc.make()
			var residents [4]int
			d := &fakeDispatcher{numSMX: 4, fit: func(smx int, tb *isa.TB) bool {
				return residents[smx] < 2
			}}
			parent := ki(0, 0, -1, nil, 6)
			s.Enqueue(parent)
			s.Enqueue(ki(1, 1, 1, parent, 6))
			dispatched := 0
			for i := 0; i < 64; i++ {
				k, smx := s.Select(d)
				if k == nil {
					// A full machine (or a policy waiting on its bound
					// SMX) stops dispatching; keep probing other slots.
					continue
				}
				if residents[smx] >= 2 {
					t.Fatalf("dispatch to over-committed SMX %d", smx)
				}
				if !d.CanFit(smx, k.PeekTB()) {
					t.Fatalf("placement violates CanFit on SMX %d", smx)
				}
				k.NextTB++
				residents[smx]++
				dispatched++
			}
			if dispatched > 8 {
				t.Fatalf("dispatched %d TBs onto a machine with 8 slots", dispatched)
			}
			if dispatched == 0 {
				t.Fatal("nothing dispatched")
			}
		})
	}
}
