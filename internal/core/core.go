// Package core implements the paper's primary contribution: the thread-block
// scheduling policies evaluated in LaPerm (Section IV).
//
//   - RoundRobin is the baseline SMX scheduler of today's GPUs
//     (Section II-B): strictly FCFS over kernels, TBs fanned out to the
//     next SMX with available resources.
//   - TBPri (Section IV-A) prioritises dynamic TBs so children dispatch
//     before the remaining parent TBs, exploiting temporal parent-child
//     locality in the shared L2.
//   - SMXBind (Section IV-B) additionally binds child TBs to the SMX that
//     executed their direct parent, exposing parent-child and child-sibling
//     locality to that SMX's private L1.
//   - AdaptiveBind (Section IV-C) relaxes the binding with the three-stage
//     dispatch flow of Figure 6 (own queues, then parent TBs, then a sticky
//     backup SMX's queues) to recover SMX load balance.
//
// All four implement gpu.TBScheduler and are interchangeable in the engine.
package core

import (
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// fifo is a FCFS queue of kernel instances that lazily drops exhausted
// entries (instances whose every TB has been dispatched). Dispatch order is
// FCFS, so exhausted entries cluster at the front; trimming the head keeps
// accesses amortised O(1), with an occasional full compaction for interior
// garbage left by concurrent-kernel fill-in.
type fifo struct {
	items []*gpu.KernelInstance
}

func (f *fifo) push(k *gpu.KernelInstance) { f.items = append(f.items, k) }

// trim pops exhausted instances off the front.
func (f *fifo) trim() {
	i := 0
	for i < len(f.items) && f.items[i].Exhausted() {
		i++
	}
	if i > 0 {
		f.items = f.items[i:]
	}
}

// compact removes exhausted instances everywhere.
func (f *fifo) compact() {
	keep := f.items[:0]
	for _, k := range f.items {
		if !k.Exhausted() {
			keep = append(keep, k)
		}
	}
	f.items = keep
}

// dispatchWindow bounds how many live kernels a dispatch slot may examine
// for fill-in before giving up. Hardware kernel distributors consider a
// small window of independent kernels (the KDU holds 32 entries total), not
// the entire pending queue; the bound also keeps a full machine from
// costing O(queue) every cycle.
const dispatchWindow = 8

// scan calls fn on up to dispatchWindow live instances in FCFS order until
// fn returns true, reporting whether any call did.
func (f *fifo) scan(fn func(*gpu.KernelInstance) bool) bool {
	f.trim()
	skipped, tried := 0, 0
	for _, k := range f.items {
		if k.Exhausted() {
			skipped++
			continue
		}
		if fn(k) {
			return true
		}
		tried++
		if tried >= dispatchWindow {
			break
		}
	}
	if skipped > 32 {
		f.compact()
	}
	return false
}

// head returns the first live instance, or nil.
func (f *fifo) head() *gpu.KernelInstance {
	f.trim()
	if len(f.items) == 0 {
		return nil
	}
	return f.items[0]
}

func (f *fifo) empty() bool { return f.head() == nil }

// scanSMX returns the first SMX after `cursor` (wrapping) with room for tb.
func scanSMX(d gpu.Dispatcher, cursor int, tb *isa.TB) (int, bool) {
	n := d.NumSMX()
	for i := 1; i <= n; i++ {
		s := (cursor + i) % n
		if d.CanFit(s, tb) {
			return s, true
		}
	}
	return 0, false
}

// RoundRobin is the baseline TB scheduler: kernels in KDU order (FCFS), one
// TB per dispatch slot in increasing TB-ID order, placed on the next SMX
// with enough available resources.
type RoundRobin struct {
	q      fifo
	cursor int
}

// NewRoundRobin returns the baseline scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{cursor: -1} }

// Name implements gpu.TBScheduler.
func (r *RoundRobin) Name() string { return "rr" }

// Enqueue implements gpu.TBScheduler.
func (r *RoundRobin) Enqueue(k *gpu.KernelInstance) { r.q.push(k) }

// Select implements gpu.TBScheduler: the first FCFS kernel whose next TB
// fits anywhere wins (later kernels fill leftover resources, which is the
// concurrent-kernel-execution behaviour of Section II-B).
func (r *RoundRobin) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	var pick *gpu.KernelInstance
	var pickSMX int
	r.q.scan(func(k *gpu.KernelInstance) bool {
		if s, ok := scanSMX(d, r.cursor, k.PeekTB()); ok {
			pick, pickSMX = k, s
			return true
		}
		return false
	})
	if pick != nil {
		r.cursor = pickSMX
	}
	return pick, pickSMX
}

// TBPri is the TB Prioritizing scheduler: L+1 global priority queues
// (Figure 5(b)); dynamic TBs carry priority parent+1 (clamped to L) and
// dispatch before lower-priority TBs. SMX placement remains round-robin.
type TBPri struct {
	levels []fifo // index = priority
	cursor int
}

// NewTBPri returns a TB-Pri scheduler with priorities 0..maxLevels.
func NewTBPri(maxLevels int) *TBPri {
	return &TBPri{levels: make([]fifo, maxLevels+1), cursor: -1}
}

// Name implements gpu.TBScheduler.
func (t *TBPri) Name() string { return "tb-pri" }

// Enqueue implements gpu.TBScheduler.
func (t *TBPri) Enqueue(k *gpu.KernelInstance) {
	p := clampPriority(k.Priority, len(t.levels)-1)
	t.levels[p].push(k)
}

// Select implements gpu.TBScheduler: highest priority level first, FCFS
// within a level, round-robin SMX placement. A level whose TBs fit nowhere
// falls through to the next level so free resources are never idled by a
// too-large high-priority TB.
func (t *TBPri) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	for p := len(t.levels) - 1; p >= 0; p-- {
		var pick *gpu.KernelInstance
		var pickSMX int
		t.levels[p].scan(func(k *gpu.KernelInstance) bool {
			if s, ok := scanSMX(d, t.cursor, k.PeekTB()); ok {
				pick, pickSMX = k, s
				return true
			}
			return false
		})
		if pick != nil {
			t.cursor = pickSMX
			return pick, pickSMX
		}
	}
	return nil, 0
}

func clampPriority(p, max int) int {
	if p < 0 {
		return 0
	}
	if p > max {
		return max
	}
	return p
}

// bindQueues is the SMX-bound priority-queue bank of Figure 5(c), shared by
// SMXBind and AdaptiveBind: priority queue 0 is global and reserved for
// top-level (host-launched) kernels; queues 1..L are replicated per SMX
// cluster and hold the dynamic TBs bound to that cluster. With one SMX per
// cluster (the K20c arrangement) the banks are per-SMX; on architectures
// whose L1 is shared by an SMX cluster, Section IV-B binds new TBs to the
// whole cluster.
type bindQueues struct {
	global      fifo
	perBank     [][]fifo // [cluster][priority-1]
	clusterSize int
}

func newBindQueues(numSMX, smxsPerCluster, maxLevels int) *bindQueues {
	if smxsPerCluster < 1 || numSMX%smxsPerCluster != 0 {
		panic("core: SMXs per cluster must be positive and divide the SMX count")
	}
	b := &bindQueues{
		perBank:     make([][]fifo, numSMX/smxsPerCluster),
		clusterSize: smxsPerCluster,
	}
	for i := range b.perBank {
		b.perBank[i] = make([]fifo, maxLevels)
	}
	return b
}

// bankOf returns the queue bank serving an SMX.
func (b *bindQueues) bankOf(smx int) int { return smx / b.clusterSize }

func (b *bindQueues) enqueue(k *gpu.KernelInstance) {
	if k.Parent == nil || k.BoundSMX < 0 {
		b.global.push(k)
		return
	}
	bank := b.bankOf(k.BoundSMX)
	p := clampPriority(k.Priority, len(b.perBank[bank]))
	if p < 1 {
		p = 1
	}
	b.perBank[bank][p-1].push(k)
}

// highest returns the highest-priority live instance in the bank serving
// the SMX.
func (b *bindQueues) highest(smx int) *gpu.KernelInstance {
	return b.highestBank(b.bankOf(smx))
}

// highestBank returns the highest-priority live instance in a bank.
func (b *bindQueues) highestBank(bank int) *gpu.KernelInstance {
	qs := b.perBank[bank]
	for p := len(qs) - 1; p >= 0; p-- {
		if k := qs[p].head(); k != nil {
			return k
		}
	}
	return nil
}

// bankEmpty reports whether a bank has no live instances.
func (b *bindQueues) bankEmpty(bank int) bool { return b.highestBank(bank) == nil }

// numBanks returns the bank count.
func (b *bindQueues) numBanks() int { return len(b.perBank) }

// SMXBind is the Prioritized SMX Binding scheduler: child TBs dispatch only
// to the SMX that executed their direct parent, reusing its L1; host-kernel
// TBs fall back to round-robin when an SMX has no bound work.
type SMXBind struct {
	q      *bindQueues
	cursor int
}

// NewSMXBind returns an SMX-Bind scheduler for numSMX SMXs with private L1s
// and priorities 1..maxLevels.
func NewSMXBind(numSMX, maxLevels int) *SMXBind {
	return NewSMXBindClusters(numSMX, 1, maxLevels)
}

// NewSMXBindClusters returns an SMX-Bind scheduler for an architecture
// whose L1 is shared by clusters of smxsPerCluster SMXs: child TBs bind to
// their direct parent's cluster and may run on any of its SMXs.
func NewSMXBindClusters(numSMX, smxsPerCluster, maxLevels int) *SMXBind {
	return &SMXBind{q: newBindQueues(numSMX, smxsPerCluster, maxLevels)}
}

// Name implements gpu.TBScheduler.
func (s *SMXBind) Name() string { return "smx-bind" }

// Enqueue implements gpu.TBScheduler.
func (s *SMXBind) Enqueue(k *gpu.KernelInstance) { s.q.enqueue(k) }

// Select implements gpu.TBScheduler. One SMX is considered per dispatch
// slot (round-robin): its own bound TBs first (highest priority), then a
// host-kernel TB. A bound TB that does not currently fit waits for its SMX;
// it is never redirected.
func (s *SMXBind) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	cur := s.cursor
	s.cursor = (s.cursor + 1) % d.NumSMX()
	if k := s.q.highest(cur); k != nil {
		if d.CanFit(cur, k.PeekTB()) {
			return k, cur
		}
		return nil, 0
	}
	if k := s.q.global.head(); k != nil && d.CanFit(cur, k.PeekTB()) {
		return k, cur
	}
	return nil, 0
}

// AdaptiveBind is the Adaptive Prioritized SMX Binding scheduler: SMX-Bind
// plus the stage-3 backup mechanism of Figure 6. When an SMX's own queues
// and the global parent queue are both empty, the SMX adopts another SMX's
// queue bank as its backup and drains it (stealing the child TBs that were
// bound elsewhere) until the backup is empty, keeping all SMXs busy at the
// cost of some L1 reuse.
type AdaptiveBind struct {
	q      *bindQueues
	cursor int
	// backup[smx] is the recorded backup bank whose queues smx is
	// draining, or -1.
	backup []int
	// FreeBackup disables the sticky backup recording of Figure 6: each
	// stage-3 slot re-scans for any non-empty bank instead of draining
	// the recorded one. The paper argues stickiness both preserves
	// stolen-sibling locality and avoids reconfiguration overhead; this
	// switch exists for the ablation that checks the claim.
	FreeBackup bool
	// Steals counts stage-3 dispatches, for the load-balance analysis.
	Steals int64
}

// NewAdaptiveBind returns an Adaptive-Bind scheduler for numSMX SMXs with
// private L1s and priorities 1..maxLevels.
func NewAdaptiveBind(numSMX, maxLevels int) *AdaptiveBind {
	return NewAdaptiveBindClusters(numSMX, 1, maxLevels)
}

// NewAdaptiveBindClusters is the cluster-aware variant of NewAdaptiveBind
// (see NewSMXBindClusters).
func NewAdaptiveBindClusters(numSMX, smxsPerCluster, maxLevels int) *AdaptiveBind {
	backup := make([]int, numSMX)
	for i := range backup {
		backup[i] = -1
	}
	return &AdaptiveBind{q: newBindQueues(numSMX, smxsPerCluster, maxLevels), backup: backup}
}

// Name implements gpu.TBScheduler.
func (a *AdaptiveBind) Name() string { return "adaptive-bind" }

// Enqueue implements gpu.TBScheduler.
func (a *AdaptiveBind) Enqueue(k *gpu.KernelInstance) { a.q.enqueue(k) }

// Select implements gpu.TBScheduler, following Figure 6 stage by stage for
// the SMX under consideration this slot.
func (a *AdaptiveBind) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	cur := a.cursor
	a.cursor = (a.cursor + 1) % d.NumSMX()

	// Stage 1: highest-priority TB in the current SMX's own queues.
	if k := a.q.highest(cur); k != nil {
		if d.CanFit(cur, k.PeekTB()) {
			return k, cur
		}
		return nil, 0
	}
	// Stage 2: parent TB from the global queue.
	if k := a.q.global.head(); k != nil {
		if d.CanFit(cur, k.PeekTB()) {
			return k, cur
		}
		return nil, 0
	}
	// Stage 3: drain the recorded backup bank's queues; when exhausted,
	// record the next non-empty bank as the new backup.
	if !a.FreeBackup {
		if b := a.backup[cur]; b >= 0 && !a.q.bankEmpty(b) {
			return a.steal(d, cur, b)
		}
	}
	a.backup[cur] = -1
	myBank := a.q.bankOf(cur)
	nb := a.q.numBanks()
	for i := 1; i < nb; i++ {
		b := (myBank + i) % nb
		if !a.q.bankEmpty(b) {
			a.backup[cur] = b
			return a.steal(d, cur, b)
		}
	}
	return nil, 0
}

// steal dispatches the highest-priority TB of backup bank b onto SMX cur.
func (a *AdaptiveBind) steal(d gpu.Dispatcher, cur, b int) (*gpu.KernelInstance, int) {
	k := a.q.highestBank(b)
	if k == nil || !d.CanFit(cur, k.PeekTB()) {
		return nil, 0
	}
	a.Steals++
	return k, cur
}

// --- gpu.IdleAware implementations ---
//
// The fast-forward clock elides Select calls on provably idle cycles; each
// scheduler here declares how many consecutive nil Selects prove quiescence
// and how to replay the elided calls' state effect in O(1).
//
// RoundRobin and TBPri consult every SMX from a single global view and move
// their placement cursor only on success, so one nil Select with unchanged
// dispatch state implies all later ones: period 1, replay a no-op. (The lazy
// fifo trimming a nil Select performs is idempotent, so eliding repeats of
// it changes nothing observable.)
//
// SMXBind and AdaptiveBind consider one SMX per Select and advance their
// round-robin cursor even on a nil slot, so only a full fruitless round over
// all SMXs proves quiescence: period = SMX count, and the elided calls'
// only surviving effect is that cursor advance, replayed modulo the SMX
// count. AdaptiveBind's stage-3 backup recording reaches a per-SMX fixed
// point within that same first nil round (with frozen queues, each slot's
// scan re-records the same backup bank and fails the same CanFit check), so
// no replay is needed for it.

// IdleSelectPeriod implements gpu.IdleAware.
func (r *RoundRobin) IdleSelectPeriod() int { return 1 }

// SkipIdleSelects implements gpu.IdleAware: nil Selects leave RoundRobin's
// cursor untouched, so there is nothing to replay.
func (r *RoundRobin) SkipIdleSelects(uint64) {}

// SkipEmptySelects implements gpu.IdleAware: a Select with nothing enqueued
// only performs the idempotent lazy fifo trim, deferred safely to the next
// real call.
func (r *RoundRobin) SkipEmptySelects(uint64) {}

// IdleSelectPeriod implements gpu.IdleAware.
func (t *TBPri) IdleSelectPeriod() int { return 1 }

// SkipIdleSelects implements gpu.IdleAware (no cursor motion on nil).
func (t *TBPri) SkipIdleSelects(uint64) {}

// SkipEmptySelects implements gpu.IdleAware (same deferred-trim argument as
// RoundRobin).
func (t *TBPri) SkipEmptySelects(uint64) {}

// numSMXs returns the machine's SMX count (banks x cluster size).
func (b *bindQueues) numSMXs() int { return len(b.perBank) * b.clusterSize }

// advanceCursor replays n cursor increments modulo the SMX count.
func advanceCursor(cursor int, n uint64, numSMX int) int {
	return int((uint64(cursor) + n) % uint64(numSMX))
}

// IdleSelectPeriod implements gpu.IdleAware: one full round over the SMXs.
func (s *SMXBind) IdleSelectPeriod() int { return s.q.numSMXs() }

// SkipIdleSelects implements gpu.IdleAware: each elided nil Select would
// have advanced the round-robin cursor by one.
func (s *SMXBind) SkipIdleSelects(n uint64) {
	s.cursor = advanceCursor(s.cursor, n, s.q.numSMXs())
}

// SkipEmptySelects implements gpu.IdleAware: an empty-scheduler Select has
// the same cursor-advance-only effect as a nil one.
func (s *SMXBind) SkipEmptySelects(n uint64) { s.SkipIdleSelects(n) }

// IdleSelectPeriod implements gpu.IdleAware: one full round over the SMXs.
func (a *AdaptiveBind) IdleSelectPeriod() int { return len(a.backup) }

// SkipIdleSelects implements gpu.IdleAware: cursor advance only — the
// backup bank recordings are already at their fixed point after the nil
// round that proved quiescence.
func (a *AdaptiveBind) SkipIdleSelects(n uint64) {
	a.cursor = advanceCursor(a.cursor, n, len(a.backup))
}

// SkipEmptySelects implements gpu.IdleAware. With nothing enqueued, every
// bank is empty, so each elided call would have cleared the considered
// SMX's backup recording (stage 3 finds no non-empty bank) and advanced the
// cursor; n >= one full round clears every recording.
func (a *AdaptiveBind) SkipEmptySelects(n uint64) {
	nb := uint64(len(a.backup))
	r := n
	if r > nb {
		r = nb
	}
	for i := uint64(0); i < r; i++ {
		a.backup[(uint64(a.cursor)+i)%nb] = -1
	}
	a.cursor = advanceCursor(a.cursor, n, len(a.backup))
}

// Compile-time interface checks.
var (
	_ gpu.TBScheduler = (*RoundRobin)(nil)
	_ gpu.TBScheduler = (*TBPri)(nil)
	_ gpu.TBScheduler = (*SMXBind)(nil)
	_ gpu.TBScheduler = (*AdaptiveBind)(nil)
	_ gpu.IdleAware   = (*RoundRobin)(nil)
	_ gpu.IdleAware   = (*TBPri)(nil)
	_ gpu.IdleAware   = (*SMXBind)(nil)
	_ gpu.IdleAware   = (*AdaptiveBind)(nil)
)
