package core

import (
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// fakeDispatcher implements gpu.Dispatcher with a programmable fit
// predicate.
type fakeDispatcher struct {
	numSMX int
	fit    func(smx int, tb *isa.TB) bool
	cycle  uint64
}

func (f *fakeDispatcher) NumSMX() int { return f.numSMX }
func (f *fakeDispatcher) CanFit(smx int, tb *isa.TB) bool {
	if f.fit == nil {
		return true
	}
	return f.fit(smx, tb)
}
func (f *fakeDispatcher) Cycle() uint64 { return f.cycle }

func (f *fakeDispatcher) ResidentTBs(smx int) int { return 0 }

// ki builds a kernel instance with n one-warp TBs.
func ki(id, priority, boundSMX int, parent *gpu.KernelInstance, n int) *gpu.KernelInstance {
	kb := isa.NewKernel("k")
	for i := 0; i < n; i++ {
		kb.Add(isa.NewTB(32).Compute(1).Build())
	}
	return &gpu.KernelInstance{ID: id, Prog: kb.Build(), Priority: priority, BoundSMX: boundSMX, Parent: parent}
}

// drain repeatedly Selects until nil, advancing NextTB as the engine would,
// and returns the (kernelID, smx) sequence.
func drain(t *testing.T, s gpu.TBScheduler, d *fakeDispatcher, max int) [][2]int {
	t.Helper()
	var seq [][2]int
	for i := 0; i < max; i++ {
		k, smx := s.Select(d)
		if k == nil {
			break
		}
		if k.Exhausted() {
			t.Fatal("scheduler returned exhausted kernel")
		}
		if !d.CanFit(smx, k.PeekTB()) {
			t.Fatal("scheduler returned non-fitting placement")
		}
		k.NextTB++
		seq = append(seq, [2]int{k.ID, smx})
	}
	return seq
}

func TestRoundRobinFCFSAndSMXRotation(t *testing.T) {
	rr := NewRoundRobin()
	d := &fakeDispatcher{numSMX: 4}
	a := ki(0, 0, -1, nil, 3)
	b := ki(1, 0, -1, nil, 2)
	rr.Enqueue(a)
	rr.Enqueue(b)
	seq := drain(t, rr, d, 10)
	want := [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 3}, {1, 0}}
	if len(seq) != len(want) {
		t.Fatalf("seq = %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("step %d = %v, want %v", i, seq[i], want[i])
		}
	}
}

func TestRoundRobinSkipsFullSMXs(t *testing.T) {
	rr := NewRoundRobin()
	d := &fakeDispatcher{numSMX: 4, fit: func(smx int, tb *isa.TB) bool { return smx == 2 }}
	rr.Enqueue(ki(0, 0, -1, nil, 2))
	seq := drain(t, rr, d, 10)
	if len(seq) != 2 || seq[0][1] != 2 || seq[1][1] != 2 {
		t.Errorf("seq = %v, want both on SMX 2", seq)
	}
}

func TestRoundRobinReturnsNilWhenNothingFits(t *testing.T) {
	rr := NewRoundRobin()
	d := &fakeDispatcher{numSMX: 2, fit: func(int, *isa.TB) bool { return false }}
	rr.Enqueue(ki(0, 0, -1, nil, 1))
	if k, _ := rr.Select(d); k != nil {
		t.Error("expected nil when nothing fits")
	}
}

func TestRoundRobinConcurrentKernels(t *testing.T) {
	// First kernel's TBs need a big SMX; only SMX 1 fits them. The second
	// kernel's TBs fit anywhere and must fill the idle SMXs (concurrent
	// kernel execution, Section II-B).
	big := isa.NewKernel("big").Add(isa.NewTB(256).Compute(1).Build()).Build()
	a := &gpu.KernelInstance{ID: 0, Prog: big}
	b := ki(1, 0, -1, nil, 2)
	rr := NewRoundRobin()
	rr.Enqueue(a)
	rr.Enqueue(b)
	d := &fakeDispatcher{numSMX: 2, fit: func(smx int, tb *isa.TB) bool {
		return tb.Threads <= 32 // big TB fits nowhere
	}}
	seq := drain(t, rr, d, 10)
	if len(seq) != 2 || seq[0][0] != 1 {
		t.Errorf("seq = %v, want kernel 1 to fill in", seq)
	}
}

func TestTBPriPrefersHigherPriority(t *testing.T) {
	tp := NewTBPri(4)
	d := &fakeDispatcher{numSMX: 2}
	parent := ki(0, 0, -1, nil, 2)
	child := ki(1, 1, 0, parent, 2)
	tp.Enqueue(parent)
	tp.Enqueue(child)
	seq := drain(t, tp, d, 10)
	wantIDs := []int{1, 1, 0, 0}
	for i, w := range wantIDs {
		if seq[i][0] != w {
			t.Errorf("step %d kernel = %d, want %d (priority order)", i, seq[i][0], w)
		}
	}
}

func TestTBPriFCFSWithinLevel(t *testing.T) {
	tp := NewTBPri(4)
	d := &fakeDispatcher{numSMX: 2}
	a := ki(0, 2, 0, ki(9, 1, 0, nil, 1), 1)
	b := ki(1, 2, 0, ki(9, 1, 0, nil, 1), 1)
	tp.Enqueue(a)
	tp.Enqueue(b)
	seq := drain(t, tp, d, 10)
	if seq[0][0] != 0 || seq[1][0] != 1 {
		t.Errorf("seq = %v, want FCFS within level", seq)
	}
}

func TestTBPriFallsThroughWhenHighPrioDoesNotFit(t *testing.T) {
	tp := NewTBPri(4)
	// High-priority kernel has 256-thread TBs that fit nowhere; the
	// low-priority small TB must still dispatch.
	bigProg := isa.NewKernel("big").Add(isa.NewTB(256).Compute(1).Build()).Build()
	high := &gpu.KernelInstance{ID: 0, Prog: bigProg, Priority: 3}
	low := ki(1, 0, -1, nil, 1)
	tp.Enqueue(high)
	tp.Enqueue(low)
	d := &fakeDispatcher{numSMX: 2, fit: func(smx int, tb *isa.TB) bool { return tb.Threads <= 32 }}
	seq := drain(t, tp, d, 5)
	if len(seq) != 1 || seq[0][0] != 1 {
		t.Errorf("seq = %v, want low-priority fill-in", seq)
	}
}

func TestTBPriClampsPriority(t *testing.T) {
	tp := NewTBPri(2)
	over := ki(0, 7, 0, ki(9, 2, 0, nil, 1), 1) // priority beyond L
	negative := ki(1, -3, 0, nil, 1)            // malformed
	tp.Enqueue(over)
	tp.Enqueue(negative)
	d := &fakeDispatcher{numSMX: 1}
	seq := drain(t, tp, d, 5)
	if len(seq) != 2 {
		t.Fatalf("seq = %v", seq)
	}
	if seq[0][0] != 0 {
		t.Error("clamped high priority should still beat priority 0")
	}
}

func TestSMXBindDispatchesToBoundSMX(t *testing.T) {
	sb := NewSMXBind(4, 4)
	parent := ki(0, 0, -1, nil, 1)
	child := ki(1, 1, 2, parent, 3)
	sb.Enqueue(child)
	d := &fakeDispatcher{numSMX: 4}
	// Drain over several slots; the cursor visits SMXs round-robin, and
	// only SMX 2 may receive the child's TBs.
	var got [][2]int
	for i := 0; i < 12 && len(got) < 3; i++ {
		k, smx := sb.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		got = append(got, [2]int{k.ID, smx})
	}
	if len(got) != 3 {
		t.Fatalf("dispatched %d TBs, want 3", len(got))
	}
	for _, g := range got {
		if g[1] != 2 {
			t.Errorf("child TB on SMX %d, want bound SMX 2", g[1])
		}
	}
}

func TestSMXBindDoesNotRedirectWhenBoundSMXFull(t *testing.T) {
	sb := NewSMXBind(2, 4)
	child := ki(0, 1, 0, ki(9, 0, -1, nil, 1), 1)
	sb.Enqueue(child)
	d := &fakeDispatcher{numSMX: 2, fit: func(smx int, tb *isa.TB) bool { return smx != 0 }}
	for i := 0; i < 6; i++ {
		if k, _ := sb.Select(d); k != nil {
			t.Fatal("SMX-Bind redirected a bound TB")
		}
	}
}

func TestSMXBindHostKernelsRoundRobin(t *testing.T) {
	sb := NewSMXBind(3, 4)
	host := ki(0, 0, -1, nil, 6)
	sb.Enqueue(host)
	d := &fakeDispatcher{numSMX: 3}
	seq := drain(t, sb, d, 10)
	if len(seq) != 6 {
		t.Fatalf("seq = %v", seq)
	}
	for i, s := range seq {
		if s[1] != i%3 {
			t.Errorf("host TB %d on SMX %d, want %d", i, s[1], i%3)
		}
	}
}

func TestSMXBindPriorityWithinBank(t *testing.T) {
	sb := NewSMXBind(1, 4)
	p1 := ki(0, 1, 0, ki(8, 0, -1, nil, 1), 1)
	p3 := ki(1, 3, 0, ki(9, 2, 0, nil, 1), 1)
	sb.Enqueue(p1)
	sb.Enqueue(p3)
	d := &fakeDispatcher{numSMX: 1}
	seq := drain(t, sb, d, 5)
	if seq[0][0] != 1 || seq[1][0] != 0 {
		t.Errorf("seq = %v, want priority-3 kernel first", seq)
	}
}

func TestAdaptiveBindStealsWhenIdle(t *testing.T) {
	ab := NewAdaptiveBind(2, 4)
	child := ki(0, 1, 0, ki(9, 0, -1, nil, 1), 4) // bound to SMX 0
	ab.Enqueue(child)
	d := &fakeDispatcher{numSMX: 2}
	var onSMX [2]int
	for i := 0; i < 8; i++ {
		k, smx := ab.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		onSMX[smx]++
	}
	if onSMX[0]+onSMX[1] != 4 {
		t.Fatalf("dispatched %d TBs, want 4", onSMX[0]+onSMX[1])
	}
	if onSMX[1] == 0 {
		t.Error("Adaptive-Bind never stole to the idle SMX")
	}
	if onSMX[0] == 0 {
		t.Error("bound SMX received nothing")
	}
	if ab.Steals == 0 {
		t.Error("Steals counter not incremented")
	}
}

func TestAdaptiveBindStage1BeatsStealing(t *testing.T) {
	ab := NewAdaptiveBind(2, 4)
	own := ki(0, 1, 1, ki(8, 0, -1, nil, 1), 1)   // bound to SMX 1
	other := ki(1, 1, 0, ki(9, 0, -1, nil, 1), 1) // bound to SMX 0
	ab.Enqueue(own)
	ab.Enqueue(other)
	d := &fakeDispatcher{numSMX: 2}
	// Cursor starts at SMX 0: stage 1 must pick the TB bound to SMX 0,
	// not steal SMX 1's.
	k, smx := ab.Select(d)
	if k == nil || k.ID != 1 || smx != 0 {
		t.Errorf("got kernel %v on SMX %d, want kernel 1 on SMX 0", k, smx)
	}
	k.NextTB++
	// Next slot considers SMX 1 and takes its own TB.
	k, smx = ab.Select(d)
	if k == nil || k.ID != 0 || smx != 1 {
		t.Errorf("got kernel %v on SMX %d, want kernel 0 on SMX 1", k, smx)
	}
}

func TestAdaptiveBindStage2ParentBeforeSteal(t *testing.T) {
	ab := NewAdaptiveBind(2, 4)
	host := ki(0, 0, -1, nil, 1)
	bound := ki(1, 1, 1, ki(9, 0, -1, nil, 1), 1)
	ab.Enqueue(host)
	ab.Enqueue(bound)
	d := &fakeDispatcher{numSMX: 2}
	// SMX 0 has no bound work: stage 2 gives it the host (parent) TB
	// rather than stealing SMX 1's child.
	k, smx := ab.Select(d)
	if k == nil || k.ID != 0 || smx != 0 {
		t.Errorf("got kernel %v on SMX %d, want host kernel on SMX 0", k, smx)
	}
}

func TestAdaptiveBindBackupSticky(t *testing.T) {
	ab := NewAdaptiveBind(3, 4)
	// Two banks with work: SMX 1 and SMX 2. SMX 0 is idle and must pick
	// one backup bank and drain it before touching the other.
	c1 := ki(0, 1, 1, ki(8, 0, -1, nil, 1), 2)
	c2 := ki(1, 1, 2, ki(9, 0, -1, nil, 1), 2)
	ab.Enqueue(c1)
	ab.Enqueue(c2)
	d := &fakeDispatcher{numSMX: 3}

	var stolenBy0 []int // kernel IDs stolen by SMX 0, in order
	for i := 0; i < 30; i++ {
		k, smx := ab.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		if smx == 0 {
			stolenBy0 = append(stolenBy0, k.ID)
		}
	}
	if len(stolenBy0) == 0 {
		t.Fatal("SMX 0 never stole")
	}
	// Stickiness: SMX 0's steals must not interleave between banks.
	for i := 1; i < len(stolenBy0); i++ {
		if stolenBy0[i] != stolenBy0[i-1] {
			// A switch is only legal if the previous bank drained;
			// with 2 TBs per bank, one switch at most.
			if i < len(stolenBy0)-1 && stolenBy0[i+1] != stolenBy0[i] {
				t.Errorf("steals interleaved: %v", stolenBy0)
			}
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	names := map[string]gpu.TBScheduler{
		"rr":            NewRoundRobin(),
		"tb-pri":        NewTBPri(4),
		"smx-bind":      NewSMXBind(4, 4),
		"adaptive-bind": NewAdaptiveBind(4, 4),
	}
	for want, s := range names {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
}

func TestFifoDropsExhausted(t *testing.T) {
	var f fifo
	a := ki(0, 0, -1, nil, 1)
	b := ki(1, 0, -1, nil, 1)
	f.push(a)
	f.push(b)
	a.NextTB = 1 // exhausted
	if h := f.head(); h != b {
		t.Errorf("head = %v, want kernel 1", h)
	}
	b.NextTB = 1
	if !f.empty() {
		t.Error("fifo should be empty")
	}
}

func TestSMXBindClustersDispatchAnywhereInCluster(t *testing.T) {
	// 4 SMXs in 2 clusters of 2. Child bound to SMX 1 may run on SMX 0
	// (same cluster) but never on SMXs 2-3.
	sb := NewSMXBindClusters(4, 2, 4)
	child := ki(0, 1, 1, ki(9, 0, -1, nil, 1), 4)
	sb.Enqueue(child)
	d := &fakeDispatcher{numSMX: 4}
	var smxs []int
	for i := 0; i < 16 && len(smxs) < 4; i++ {
		k, smx := sb.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		smxs = append(smxs, smx)
	}
	if len(smxs) != 4 {
		t.Fatalf("dispatched %d TBs, want 4", len(smxs))
	}
	sawSMX0 := false
	for _, s := range smxs {
		if s >= 2 {
			t.Errorf("cluster-bound TB escaped to SMX %d", s)
		}
		if s == 0 {
			sawSMX0 = true
		}
	}
	if !sawSMX0 {
		t.Error("cluster binding never used the sibling SMX")
	}
}

func TestAdaptiveBindClustersStealAcrossClusters(t *testing.T) {
	ab := NewAdaptiveBindClusters(4, 2, 4)
	child := ki(0, 1, 0, ki(9, 0, -1, nil, 1), 6) // bound to cluster 0
	ab.Enqueue(child)
	d := &fakeDispatcher{numSMX: 4}
	var perSMX [4]int
	for i := 0; i < 24; i++ {
		k, smx := ab.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		perSMX[smx]++
	}
	total := perSMX[0] + perSMX[1] + perSMX[2] + perSMX[3]
	if total != 6 {
		t.Fatalf("dispatched %d TBs, want 6", total)
	}
	if perSMX[2]+perSMX[3] == 0 {
		t.Error("adaptive clustering never stole into the idle cluster")
	}
}

func TestNewBindQueuesPanicsOnBadCluster(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-dividing cluster size")
		}
	}()
	NewSMXBindClusters(4, 3, 2)
}
