package core

import (
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// Throttled wraps any TB scheduler with a contention-aware cap on resident
// thread blocks per SMX, below the hardware occupancy limit. Section IV-F
// discusses incorporating such contention-based TB control into LaPerm: the
// small L1 (at most 48 KB on Kepler) "may result in not fitting enough
// reusable data of the parent and child TBs", which a lower residency cap
// mitigates at some parallelism cost.
type Throttled struct {
	// Inner is the wrapped policy.
	Inner gpu.TBScheduler
	// MaxTBsPerSMX caps the thread blocks concurrently resident on one
	// SMX.
	MaxTBsPerSMX int
}

// NewThrottled wraps inner with a residency cap. It panics on a
// non-positive cap, which would deadlock dispatch.
func NewThrottled(inner gpu.TBScheduler, maxTBsPerSMX int) *Throttled {
	if maxTBsPerSMX <= 0 {
		panic("core: Throttled requires a positive TB cap")
	}
	return &Throttled{Inner: inner, MaxTBsPerSMX: maxTBsPerSMX}
}

// Name implements gpu.TBScheduler.
func (t *Throttled) Name() string { return t.Inner.Name() + "+throttle" }

// Enqueue implements gpu.TBScheduler.
func (t *Throttled) Enqueue(k *gpu.KernelInstance) { t.Inner.Enqueue(k) }

// Select implements gpu.TBScheduler by delegating to the wrapped policy
// through a dispatcher view on which saturated SMXs report no room.
func (t *Throttled) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	return t.Inner.Select(&throttledDispatcher{Dispatcher: d, cap: t.MaxTBsPerSMX})
}

// IdleSelectPeriod implements gpu.IdleAware by delegation. The residency cap
// only changes the CanFit answers the inner policy sees, and resident-TB
// counts are frozen exactly when dispatch state is frozen, so the inner
// policy's quiescence argument carries over unchanged. A non-IdleAware inner
// policy opts the wrapper out (period 0).
func (t *Throttled) IdleSelectPeriod() int {
	if ia, ok := t.Inner.(gpu.IdleAware); ok {
		return ia.IdleSelectPeriod()
	}
	return 0
}

// SkipIdleSelects implements gpu.IdleAware by delegation.
func (t *Throttled) SkipIdleSelects(n uint64) {
	if ia, ok := t.Inner.(gpu.IdleAware); ok {
		ia.SkipIdleSelects(n)
	}
}

// SkipEmptySelects implements gpu.IdleAware by delegation (the wrapper adds
// no per-call state of its own).
func (t *Throttled) SkipEmptySelects(n uint64) {
	if ia, ok := t.Inner.(gpu.IdleAware); ok {
		ia.SkipEmptySelects(n)
	}
}

type throttledDispatcher struct {
	gpu.Dispatcher
	cap int
}

func (t *throttledDispatcher) CanFit(smxID int, tb *isa.TB) bool {
	if t.Dispatcher.ResidentTBs(smxID) >= t.cap {
		return false
	}
	return t.Dispatcher.CanFit(smxID, tb)
}

var (
	_ gpu.TBScheduler = (*Throttled)(nil)
	_ gpu.IdleAware   = (*Throttled)(nil)
)
