package core

import (
	"fmt"
	"reflect"
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// These tests pin the gpu.IdleAware contract each scheduler declares: the
// state effect of n real Select calls on a quiesced (or empty) scheduler must
// be reproduced exactly by the O(1)/O(SMX) skip methods the fast-forward
// clock substitutes for them. Each case runs two identically-loaded twins —
// one taking real Select calls, one taking the skip — and requires their
// subsequent dispatch decisions (and, for the binding schedulers, their raw
// cursor/backup state) to be indistinguishable.

const idleNumSMX = 4

// idleSchedulers returns a constructor per registered policy whose metadata
// declares gpu.IdleAware — every one of them must pass the twin tests below.
func idleSchedulers() map[string]func() gpu.TBScheduler {
	cfg := conformanceConfig()
	cfg.NumSMX = idleNumSMX
	cfg.MaxPriorityLevels = 3
	mks := make(map[string]func() gpu.TBScheduler)
	for _, info := range Schedulers() {
		if !info.IdleAware {
			continue
		}
		info := info
		mks[info.Name] = func() gpu.TBScheduler { return info.New(&cfg) }
	}
	return mks
}

// loadMixed enqueues an identical mixed working set: one host kernel in the
// global queue and children bound across every SMX at varying priorities.
// idBase keeps kernel IDs distinct between successive loads so dispatch
// sequences can be compared by ID.
func loadMixed(s gpu.TBScheduler, idBase int) {
	parent := ki(idBase, 0, -1, nil, 0)
	s.Enqueue(ki(idBase+1, 0, -1, nil, 3)) // host kernel, global queue
	for i := 0; i < idleNumSMX; i++ {
		s.Enqueue(ki(idBase+2+i, 1+i%3, i, parent, 2)) // bound children
	}
}

// rawState extracts the binding schedulers' cursor/backup internals so twins
// can be compared beyond black-box behaviour.
func rawState(s gpu.TBScheduler) string {
	switch v := s.(type) {
	case *SMXBind:
		return fmt.Sprintf("cursor=%d", v.cursor)
	case *AdaptiveBind:
		return fmt.Sprintf("cursor=%d backup=%v", v.cursor, v.backup)
	case *WorkSteal:
		return fmt.Sprintf("cursor=%d", v.cursor)
	}
	return ""
}

// TestSkipIdleSelectsMatchesRealNilSelects: after the proving nil round, m
// further real nil Selects and SkipIdleSelects(m) must leave the scheduler in
// the same state for every m, including cursor wraparounds.
func TestSkipIdleSelectsMatchesRealNilSelects(t *testing.T) {
	blocked := &fakeDispatcher{numSMX: idleNumSMX, fit: func(int, *isa.TB) bool { return false }}
	for name, mk := range idleSchedulers() {
		for m := uint64(0); m <= 2*idleNumSMX+3; m++ {
			real, skip := mk(), mk()
			loadMixed(real, 0)
			loadMixed(skip, 0)

			period := real.(gpu.IdleAware).IdleSelectPeriod()
			for i := 0; i < period; i++ { // the proving round, on both twins
				if k, _ := real.Select(blocked); k != nil {
					t.Fatalf("%s: blocked dispatcher yielded kernel %d", name, k.ID)
				}
				if k, _ := skip.Select(blocked); k != nil {
					t.Fatalf("%s: blocked dispatcher yielded kernel %d", name, k.ID)
				}
			}
			for i := uint64(0); i < m; i++ {
				if k, _ := real.Select(blocked); k != nil {
					t.Fatalf("%s: post-quiescence Select yielded kernel %d", name, k.ID)
				}
			}
			skip.(gpu.IdleAware).SkipIdleSelects(m)

			if rs, ss := rawState(real), rawState(skip); rs != ss {
				t.Errorf("%s m=%d: internal state diverges: real %s, skip %s", name, m, rs, ss)
			}
			open := &fakeDispatcher{numSMX: idleNumSMX}
			seqReal := drain(t, real, open, 64)
			seqSkip := drain(t, skip, open, 64)
			if !reflect.DeepEqual(seqReal, seqSkip) {
				t.Errorf("%s m=%d: dispatch sequences diverge:\nreal: %v\nskip: %v",
					name, m, seqReal, seqSkip)
			}
		}
	}
}

// TestSkipEmptySelectsMatchesRealEmptySelects: once every enqueued instance
// is exhausted, m real Select calls and SkipEmptySelects(m) must be
// equivalent — without any proving round first. This is the engine's
// schedLive == 0 shortcut, and the interesting twin is AdaptiveBind, whose
// empty-machine Selects clear backup recordings one SMX per call.
func TestSkipEmptySelectsMatchesRealEmptySelects(t *testing.T) {
	for name, mk := range idleSchedulers() {
		for m := uint64(0); m <= 2*idleNumSMX+3; m++ {
			real, skip := mk(), mk()
			open := &fakeDispatcher{numSMX: idleNumSMX}

			// Identical history: dispatch a full working set to exhaustion,
			// which leaves the binding cursors mid-round and (for
			// AdaptiveBind) backup banks recorded by the steals.
			loadMixed(real, 0)
			loadMixed(skip, 0)
			if a, b := drain(t, real, open, 64), drain(t, skip, open, 64); !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: twins diverged during setup drain", name)
			}

			for i := uint64(0); i < m; i++ {
				if k, _ := real.Select(open); k != nil {
					t.Fatalf("%s: empty scheduler yielded kernel %d", name, k.ID)
				}
			}
			skip.(gpu.IdleAware).SkipEmptySelects(m)

			if rs, ss := rawState(real), rawState(skip); rs != ss {
				t.Errorf("%s m=%d: internal state diverges: real %s, skip %s", name, m, rs, ss)
			}
			loadMixed(real, 100)
			loadMixed(skip, 100)
			seqReal := drain(t, real, open, 64)
			seqSkip := drain(t, skip, open, 64)
			if !reflect.DeepEqual(seqReal, seqSkip) {
				t.Errorf("%s m=%d: post-skip dispatch sequences diverge:\nreal: %v\nskip: %v",
					name, m, seqReal, seqSkip)
			}
		}
	}
}
