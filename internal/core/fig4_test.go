package core_test

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// This file replays the didactic example of Figure 4: a parent kernel with
// eight TBs (P0-P7) on a four-SMX GPU where each SMX holds exactly one TB.
// P2 launches two child TBs (C0-C1) and P4 launches four (C2-C5). The tests
// assert the defining property of each scheduling scheme shown in
// Figure 4(b)-(e).

// fig4Config builds a 4-SMX GPU where one 64-thread TB fills an SMX.
func fig4Config() *config.GPU {
	g := config.SmallTest()
	g.NumSMX = 4
	g.ThreadsPerSMX = 64
	g.TBsPerSMX = 1
	g.RegistersPerSMX = 64 * 64
	g.DTBLLaunchLatency = 1
	g.MaxPriorityLevels = 4
	return &g
}

// dispatchRecord is one observed TB placement.
type dispatchRecord struct {
	kernel string // "parent", "childA" (from P2), "childB" (from P4)
	tb     int
	smx    int
	cycle  uint64
}

// runFig4 executes the Figure 4(a) launch structure under the given
// scheduler and returns the dispatch trace plus the simulator (for kernel
// inspection) and result.
func runFig4(t *testing.T, sched gpu.TBScheduler) ([]dispatchRecord, *gpu.Simulator, *gpu.Result) {
	t.Helper()
	// Each TB runs ~200 cycles of compute so dispatch "rounds" are well
	// separated; the launch executes early in the parent TB.
	mkTB := func() *isa.TB { return isa.NewTB(64).Resources(16, 0).ComputeN(10, 20).Build() }
	childA := isa.NewKernel("childA").Add(mkTB(), mkTB()).Build()
	childB := isa.NewKernel("childB").Add(mkTB(), mkTB(), mkTB(), mkTB()).Build()

	kb := isa.NewKernel("parent")
	for i := 0; i < 8; i++ {
		b := isa.NewTB(64).Resources(16, 0)
		switch i {
		case 2:
			b.Compute(2).Launch(0, childA)
		case 4:
			b.Compute(2).Launch(0, childB)
		}
		b.ComputeN(10, 20)
		kb.Add(b.Build())
	}

	var trace []dispatchRecord
	sim := gpu.MustNew(gpu.Options{
		Config:    fig4Config(),
		Scheduler: sched,
		Model:     gpu.DTBL,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			trace = append(trace, dispatchRecord{kernel: ki.Prog.Name, tb: tbIndex, smx: smxID, cycle: cycle})
		},
	})
	if err := sim.LaunchHost(kb.Build()); err != nil {
		t.Fatalf("fig4 launch: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("fig4 run: %v", err)
	}
	if len(trace) != 8+2+4 {
		t.Fatalf("dispatched %d TBs, want 14", len(trace))
	}
	return trace, sim, res
}

func lastParentCycle(trace []dispatchRecord) uint64 {
	var last uint64
	for _, r := range trace {
		if r.kernel == "parent" && r.cycle > last {
			last = r.cycle
		}
	}
	return last
}

func firstChildCycle(trace []dispatchRecord) uint64 {
	first := ^uint64(0)
	for _, r := range trace {
		if r.kernel != "parent" && r.cycle < first {
			first = r.cycle
		}
	}
	return first
}

// boundSMXOf returns the BoundSMX of the named dynamic kernel.
func boundSMXOf(t *testing.T, sim *gpu.Simulator, name string) int {
	t.Helper()
	for _, ki := range sim.Kernels() {
		if ki.Prog.Name == name {
			return ki.BoundSMX
		}
	}
	t.Fatalf("kernel %s not found", name)
	return -1
}

// TestFig4b_RoundRobin: the baseline distributes parents evenly and all
// child TBs wait until every parent TB has dispatched (Figure 4(b)).
func TestFig4b_RoundRobin(t *testing.T) {
	trace, _, _ := runFig4(t, core.NewRoundRobin())

	// Parents dispatch in TB order, the first four exactly to SMX0..3,
	// and every SMX receives exactly two parent TBs. (P2 and P4 carry an
	// extra launch instruction, so the second round's SMX release order
	// can differ from the idealised equal-pace figure by a swap.)
	pIdx := 0
	perSMX := make([]int, 4)
	for _, r := range trace {
		if r.kernel != "parent" {
			continue
		}
		if r.tb != pIdx {
			t.Errorf("parent TBs out of order: got P%d at position %d", r.tb, pIdx)
		}
		if pIdx < 4 && r.smx != pIdx {
			t.Errorf("P%d on SMX%d, want SMX%d", r.tb, r.smx, pIdx)
		}
		perSMX[r.smx]++
		pIdx++
	}
	for s, n := range perSMX {
		if n != 2 {
			t.Errorf("SMX%d received %d parent TBs, want 2", s, n)
		}
	}
	// FCFS: no child dispatches before the last parent.
	if fc, lp := firstChildCycle(trace), lastParentCycle(trace); fc < lp {
		t.Errorf("RR dispatched a child at %d before last parent at %d", fc, lp)
	}
}

// TestFig4c_TBPri: prioritising dynamic TBs moves children ahead of the
// remaining parent TBs (Figure 4(c)): C0-C1 dispatch before P6-P7.
func TestFig4c_TBPri(t *testing.T) {
	trace, _, _ := runFig4(t, core.NewTBPri(4))

	var p6Cycle, c0Cycle uint64
	for _, r := range trace {
		if r.kernel == "parent" && r.tb == 6 {
			p6Cycle = r.cycle
		}
		if r.kernel == "childA" && r.tb == 0 {
			c0Cycle = r.cycle
		}
	}
	if c0Cycle >= p6Cycle {
		t.Errorf("TB-Pri: childA TB0 at %d should precede P6 at %d", c0Cycle, p6Cycle)
	}
	// All 14 TBs still complete (checked by runFig4), and children of
	// P4 (priority 1) also beat P7.
	var p7Cycle, c2Cycle uint64
	for _, r := range trace {
		if r.kernel == "parent" && r.tb == 7 {
			p7Cycle = r.cycle
		}
		if r.kernel == "childB" && r.tb == 0 {
			c2Cycle = r.cycle
		}
	}
	if c2Cycle >= p7Cycle {
		t.Errorf("TB-Pri: childB TB0 at %d should precede P7 at %d", c2Cycle, p7Cycle)
	}
}

// TestFig4d_SMXBind: every child TB executes on the SMX of its direct
// parent (Figure 4(d)).
func TestFig4d_SMXBind(t *testing.T) {
	trace, sim, _ := runFig4(t, core.NewSMXBind(4, 4))

	boundA := boundSMXOf(t, sim, "childA")
	boundB := boundSMXOf(t, sim, "childB")
	for _, r := range trace {
		switch r.kernel {
		case "childA":
			if r.smx != boundA {
				t.Errorf("childA TB%d on SMX%d, want bound SMX%d", r.tb, r.smx, boundA)
			}
		case "childB":
			if r.smx != boundB {
				t.Errorf("childB TB%d on SMX%d, want bound SMX%d", r.tb, r.smx, boundB)
			}
		}
	}
	// The four childB TBs serialise on one single-TB SMX: their dispatch
	// cycles must be strictly increasing with real gaps (each waits for
	// the previous to finish).
	var bCycles []uint64
	for _, r := range trace {
		if r.kernel == "childB" {
			bCycles = append(bCycles, r.cycle)
		}
	}
	for i := 1; i < len(bCycles); i++ {
		if bCycles[i] < bCycles[i-1]+50 {
			t.Errorf("childB TBs not serialised: dispatches at %v", bCycles)
		}
	}
}

// TestFig4e_AdaptiveBind: the adaptive scheme keeps the parent-SMX binding
// when possible but steals bound TBs onto idle SMXs, finishing faster and
// more balanced than strict SMX-Bind (Figure 4(e)).
func TestFig4e_AdaptiveBind(t *testing.T) {
	ab := core.NewAdaptiveBind(4, 4)
	traceA, simA, resA := runFig4(t, ab)
	_, _, resS := runFig4(t, core.NewSMXBind(4, 4))

	if ab.Steals == 0 {
		t.Error("Adaptive-Bind never used stage 3 on the Figure 4 workload")
	}
	if resA.Cycles >= resS.Cycles {
		t.Errorf("Adaptive-Bind (%d cycles) should beat SMX-Bind (%d cycles)", resA.Cycles, resS.Cycles)
	}
	if resA.LoadImbalance >= resS.LoadImbalance {
		t.Errorf("Adaptive-Bind imbalance %.3f should be below SMX-Bind %.3f",
			resA.LoadImbalance, resS.LoadImbalance)
	}
	// Some childB TB still runs on the bound SMX (locality kept when the
	// SMX is available), and some runs elsewhere (stolen).
	boundB := boundSMXOf(t, simA, "childB")
	var onBound, elsewhere int
	for _, r := range traceA {
		if r.kernel != "childB" {
			continue
		}
		if r.smx == boundB {
			onBound++
		} else {
			elsewhere++
		}
	}
	if onBound == 0 {
		t.Error("Adaptive-Bind kept no childB TB on its bound SMX")
	}
	if elsewhere == 0 {
		t.Error("Adaptive-Bind stole no childB TB despite idle SMXs")
	}
}

// TestFig4SchedulersAllComplete is a guard that the four schemes execute
// the identical workload to completion with identical total work.
func TestFig4SchedulersAllComplete(t *testing.T) {
	var insts []int64
	for _, sched := range []gpu.TBScheduler{
		core.NewRoundRobin(), core.NewTBPri(4), core.NewSMXBind(4, 4), core.NewAdaptiveBind(4, 4),
	} {
		_, _, res := runFig4(t, sched)
		insts = append(insts, res.ThreadInsts)
	}
	for i := 1; i < len(insts); i++ {
		if insts[i] != insts[0] {
			t.Errorf("scheduler %d executed %d thread-insts, baseline %d", i, insts[i], insts[0])
		}
	}
}
