package core

// The scheduler registry. Every TB scheduling policy is a registry entry:
// a name, a factory taking the GPU configuration, and the metadata the rest
// of the stack needs to enumerate, validate, and conformance-check policies
// without hard-coded name lists. internal/spec validates RunSpecs against
// it, internal/exp derives its evaluation axes from it, the facade and the
// CLIs list it in -h output, and the conformance/idle/fuzz tests iterate it
// so a newly registered policy is checked automatically.
//
// Registering a scheduler is a contract (DESIGN.md §14):
//
//   - Determinism: Select must be a pure function of the scheduler's own
//     state and the Dispatcher's answers — no clocks, maps iterated in
//     random order, or other nondeterminism — so runs are byte-identical
//     at any worker count.
//   - gpu.TBScheduler: Select returns a non-exhausted instance and an SMX
//     where CanFit holds, or (nil, 0).
//   - IdleAware declaration: a policy implementing gpu.IdleAware must
//     replay elided Select calls exactly (the idle-twin tests enforce
//     this); the metadata flag below must match the implementation.
//   - Zero-alloc steady state: Select and Enqueue must not allocate per
//     call once warm (amortised queue growth aside); the per-cell
//     allocation budgets in internal/exp pin this.

import (
	"fmt"

	"laperm/internal/config"
	"laperm/internal/gpu"
)

// SchedulerInfo describes one registered TB scheduling policy.
type SchedulerInfo struct {
	// Name is the policy's registry key ("adaptive-bind"), used in specs,
	// CLIs, CSV columns, and error messages.
	Name string
	// Description is a one-line summary for -h output and README tables.
	Description string
	// IdleAware reports that instances implement gpu.IdleAware, letting
	// the event-horizon clock elide provably-nil Select calls. The
	// registry test asserts the flag matches the constructed type.
	IdleAware bool
	// Binding reports that the policy supports SMX binding: it places
	// child TBs on the SMX cluster that executed their parent when it
	// can (Section IV-B locality placement).
	Binding bool
	// StrictBinding reports that a bound TB never dispatches outside its
	// cluster, even with the rest of the machine idle (SMX-Bind; the
	// stealing policies deliberately relax this).
	StrictBinding bool
	// ChildFirst reports that dynamic TBs dispatch ahead of remaining
	// parent TBs on SMXs where both are eligible (Section IV-A; false
	// only for the strictly-FCFS RR baseline).
	ChildFirst bool
	// New builds a fresh instance for the configuration. The relevant
	// parameters are NumSMX, SMXsPerCluster, and MaxPriorityLevels.
	New func(cfg *config.GPU) gpu.TBScheduler
}

// schedulerRegistry holds every registered policy in registration order: the
// paper's presentation order (baseline, then the three LaPerm schemes), then
// extensions. Enumeration order everywhere follows it.
var schedulerRegistry = []SchedulerInfo{
	{
		Name:        "rr",
		Description: "baseline round-robin: FCFS over kernels, TBs fanned to the next SMX with room",
		IdleAware:   true,
		New:         func(cfg *config.GPU) gpu.TBScheduler { return NewRoundRobin() },
	},
	{
		Name:        "tb-pri",
		Description: "TB Prioritizing: dynamic TBs dispatch before remaining parent TBs (Section IV-A)",
		IdleAware:   true,
		ChildFirst:  true,
		New:         func(cfg *config.GPU) gpu.TBScheduler { return NewTBPri(cfg.MaxPriorityLevels) },
	},
	{
		Name:          "smx-bind",
		Description:   "Prioritized SMX Binding: child TBs run only on their parent's SMX cluster (Section IV-B)",
		IdleAware:     true,
		Binding:       true,
		StrictBinding: true,
		ChildFirst:    true,
		New: func(cfg *config.GPU) gpu.TBScheduler {
			return NewSMXBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels)
		},
	},
	{
		Name:        "adaptive-bind",
		Description: "Adaptive SMX Binding: SMX-Bind plus sticky backup-bank stealing for load balance (Section IV-C)",
		IdleAware:   true,
		Binding:     true,
		ChildFirst:  true,
		New: func(cfg *config.GPU) gpu.TBScheduler {
			return NewAdaptiveBindClusters(cfg.NumSMX, cfg.SMXsPerCluster, cfg.MaxPriorityLevels)
		},
	},
	{
		Name:        "work-steal",
		Description: "work-stealing task queues: per-SMX deques, owner pops newest, thieves steal oldest in cluster-distance order",
		IdleAware:   true,
		Binding:     true,
		ChildFirst:  true,
		New: func(cfg *config.GPU) gpu.TBScheduler {
			return NewWorkStealClusters(cfg.NumSMX, cfg.SMXsPerCluster)
		},
	},
}

// RegisterScheduler adds a policy to the registry. It panics on a duplicate
// or empty name or a nil factory — registration is an init-time programming
// act, not a runtime input.
func RegisterScheduler(info SchedulerInfo) {
	if info.Name == "" {
		panic("core: RegisterScheduler with empty name")
	}
	if info.New == nil {
		panic(fmt.Sprintf("core: RegisterScheduler(%q) with nil factory", info.Name))
	}
	if _, ok := SchedulerByName(info.Name); ok {
		panic(fmt.Sprintf("core: RegisterScheduler(%q) duplicates a registered scheduler", info.Name))
	}
	schedulerRegistry = append(schedulerRegistry, info)
}

// Schedulers returns every registered policy in registration order. The
// slice is fresh; callers may keep or mutate it.
func Schedulers() []SchedulerInfo {
	return append([]SchedulerInfo(nil), schedulerRegistry...)
}

// SchedulerNames returns every registered policy name in registration order.
func SchedulerNames() []string {
	names := make([]string, len(schedulerRegistry))
	for i, info := range schedulerRegistry {
		names[i] = info.Name
	}
	return names
}

// SchedulerByName resolves a policy name against the registry.
func SchedulerByName(name string) (SchedulerInfo, bool) {
	for _, info := range schedulerRegistry {
		if info.Name == name {
			return info, true
		}
	}
	return SchedulerInfo{}, false
}

// NewSchedulerFor builds the named policy for a configuration — the one
// scheduler factory everything above this package funnels through.
func NewSchedulerFor(name string, cfg *config.GPU) (gpu.TBScheduler, error) {
	info, ok := SchedulerByName(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown scheduler %q (registered: %v)", name, SchedulerNames())
	}
	return info.New(cfg), nil
}
