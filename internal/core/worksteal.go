package core

// WorkSteal is a work-stealing task-queue scheduler in the style of Atos-like
// GPU task runtimes: one deque of kernel instances per SMX plus a global FIFO
// for host kernels. The owning SMX pops its deque from the newest end —
// freshly launched children are the hottest in its L1, and within a deque
// newest also means deepest-nested, so LIFO order recovers the child-first
// priority of Section IV-A without explicit priority levels. An SMX that
// runs dry steals from the *oldest* end of a victim's deque (the entries
// whose locality has decayed most), visiting victims in cluster-distance
// order so stolen work stays as close to its bound L1 as the topology
// allows.
//
// Determinism: the simulator is single-threaded, so unlike its namesakes the
// deques need no atomics, and the fixed steal order makes every Select a
// pure function of scheduler state — runs are byte-identical at any worker
// count like every other registered policy.

import (
	"laperm/internal/gpu"
)

// wsDeque is one SMX's task deque with amortised trimming at both ends.
// Instances are appended at the bottom (newest) and consumed from either
// end; an instance only exhausts while it sits at an end (the owner drains
// the bottom entry, thieves the top one), so trimming the ends is enough —
// interior entries are always live.
type wsDeque struct {
	items []*gpu.KernelInstance
	head  int // index of the oldest live entry
}

func (q *wsDeque) push(k *gpu.KernelInstance) { q.items = append(q.items, k) }

// trim drops exhausted instances from both ends and compacts the backing
// array once the dead head region dominates it. Trimming is idempotent on
// frozen state, which the IdleAware replay below relies on.
func (q *wsDeque) trim() {
	for len(q.items) > q.head && q.items[len(q.items)-1].Exhausted() {
		q.items[len(q.items)-1] = nil
		q.items = q.items[:len(q.items)-1]
	}
	for q.head < len(q.items) && q.items[q.head].Exhausted() {
		q.items[q.head] = nil
		q.head++
	}
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= wsCompactThreshold && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// newest returns the bottom (most recently pushed) live instance, or nil.
func (q *wsDeque) newest() *gpu.KernelInstance {
	q.trim()
	if q.head == len(q.items) {
		return nil
	}
	return q.items[len(q.items)-1]
}

// oldest returns the top (least recently pushed) live instance, or nil.
func (q *wsDeque) oldest() *gpu.KernelInstance {
	q.trim()
	if q.head == len(q.items) {
		return nil
	}
	return q.items[q.head]
}

// wsCompactThreshold is how large a deque's dead head region may grow before
// trim compacts the backing array.
const wsCompactThreshold = 32

// WorkSteal implements gpu.TBScheduler; see the package comment above. Use
// NewWorkSteal / NewWorkStealClusters.
type WorkSteal struct {
	global      fifo      // host kernels, FCFS
	deques      []wsDeque // one per SMX, children bound by BoundSMX
	clusterSize int
	cursor      int
	// Steals counts dispatches of TBs taken from another SMX's deque, for
	// the load-balance analyses.
	Steals int64
}

// NewWorkSteal returns a work-stealing scheduler for numSMX SMXs with
// private L1s (every SMX its own cluster).
func NewWorkSteal(numSMX int) *WorkSteal { return NewWorkStealClusters(numSMX, 1) }

// NewWorkStealClusters is the cluster-aware variant: steal victims are
// visited same-cluster first, then by increasing cluster distance, so stolen
// TBs land as close to the L1 that holds their parent's data as possible.
func NewWorkStealClusters(numSMX, smxsPerCluster int) *WorkSteal {
	if smxsPerCluster < 1 || numSMX%smxsPerCluster != 0 {
		panic("core: SMXs per cluster must be positive and divide the SMX count")
	}
	return &WorkSteal{deques: make([]wsDeque, numSMX), clusterSize: smxsPerCluster}
}

// Name implements gpu.TBScheduler.
func (w *WorkSteal) Name() string { return "work-steal" }

// Enqueue implements gpu.TBScheduler: children are pushed onto their bound
// SMX's deque; host kernels join the global FIFO.
func (w *WorkSteal) Enqueue(k *gpu.KernelInstance) {
	if k.Parent == nil || k.BoundSMX < 0 {
		w.global.push(k)
		return
	}
	w.deques[k.BoundSMX].push(k)
}

// Select implements gpu.TBScheduler. One SMX is considered per dispatch slot
// (round-robin cursor), in three stages mirroring the Figure 6 flow:
//
//  1. Own deque, newest first. A bound TB that does not currently fit waits
//     for its SMX rather than being redirected.
//  2. The global host-kernel FIFO.
//  3. Steal: the oldest TB of the first non-empty victim deque in
//     cluster-distance order that fits on this SMX.
func (w *WorkSteal) Select(d gpu.Dispatcher) (*gpu.KernelInstance, int) {
	cur := w.cursor
	w.cursor = (w.cursor + 1) % len(w.deques)

	if k := w.deques[cur].newest(); k != nil {
		if d.CanFit(cur, k.PeekTB()) {
			return k, cur
		}
		return nil, 0
	}
	if k := w.global.head(); k != nil {
		if d.CanFit(cur, k.PeekTB()) {
			return k, cur
		}
		return nil, 0
	}
	numClusters := len(w.deques) / w.clusterSize
	myCluster := cur / w.clusterSize
	for dist := 0; dist < numClusters; dist++ {
		c := (myCluster + dist) % numClusters
		for i := 0; i < w.clusterSize; i++ {
			v := c*w.clusterSize + i
			if v == cur {
				continue
			}
			if k := w.deques[v].oldest(); k != nil && d.CanFit(cur, k.PeekTB()) {
				w.Steals++
				return k, cur
			}
		}
	}
	return nil, 0
}

// IdleSelectPeriod implements gpu.IdleAware: one full round over the SMXs,
// like the other per-SMX-cursor policies — only a fruitless Select at every
// cursor position proves quiescence.
func (w *WorkSteal) IdleSelectPeriod() int { return len(w.deques) }

// SkipIdleSelects implements gpu.IdleAware: a nil Select's only surviving
// effect is the cursor advance (deque trims are idempotent on frozen state,
// and the steal scan records nothing), replayed modulo the SMX count.
func (w *WorkSteal) SkipIdleSelects(n uint64) {
	w.cursor = advanceCursor(w.cursor, n, len(w.deques))
}

// SkipEmptySelects implements gpu.IdleAware: with nothing enqueued every
// stage falls through, so the effect is the same cursor advance.
func (w *WorkSteal) SkipEmptySelects(n uint64) { w.SkipIdleSelects(n) }

// Compile-time interface checks.
var (
	_ gpu.TBScheduler = (*WorkSteal)(nil)
	_ gpu.IdleAware   = (*WorkSteal)(nil)
)
