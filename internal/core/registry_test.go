package core

import (
	"reflect"
	"strings"
	"testing"

	"laperm/internal/config"
	"laperm/internal/gpu"
)

// TestRegistryOrderAndNames pins the registration order — it is the
// enumeration order of every spec, matrix, CSV, and golden file, so a
// reorder is a breaking change.
func TestRegistryOrderAndNames(t *testing.T) {
	want := []string{"rr", "tb-pri", "smx-bind", "adaptive-bind", "work-steal"}
	if got := SchedulerNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("SchedulerNames() = %v, want %v", got, want)
	}
	if got := len(Schedulers()); got != len(want) {
		t.Errorf("Schedulers() has %d entries, want %d", got, len(want))
	}
}

// TestRegistryMetadataMatchesTypes checks every entry's declared metadata
// against the constructed instance: the Name the scheduler reports, and the
// IdleAware flag against a type assertion. A metadata lie here would make
// the fast-forward clock either skip Selects it must not or pin the TB phase
// needlessly.
func TestRegistryMetadataMatchesTypes(t *testing.T) {
	cfg := config.KeplerK20c()
	for _, info := range Schedulers() {
		s := info.New(&cfg)
		if s == nil {
			t.Fatalf("%s: factory returned nil", info.Name)
		}
		if s.Name() != info.Name {
			t.Errorf("%s: instance reports Name() = %q", info.Name, s.Name())
		}
		if _, ok := s.(gpu.IdleAware); ok != info.IdleAware {
			t.Errorf("%s: IdleAware metadata %v, type assertion %v", info.Name, info.IdleAware, ok)
		}
		if info.StrictBinding && !info.Binding {
			t.Errorf("%s: StrictBinding without Binding", info.Name)
		}
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
}

// TestRegistryLookup covers the by-name paths the upper layers validate
// through.
func TestRegistryLookup(t *testing.T) {
	if info, ok := SchedulerByName("work-steal"); !ok || info.Name != "work-steal" {
		t.Errorf("SchedulerByName(work-steal) = %+v, %v", info, ok)
	}
	if _, ok := SchedulerByName("fifo"); ok {
		t.Error("SchedulerByName accepted an unknown name")
	}
	cfg := config.KeplerK20c()
	if s, err := NewSchedulerFor("rr", &cfg); err != nil || s.Name() != "rr" {
		t.Errorf("NewSchedulerFor(rr) = %v, %v", s, err)
	}
	_, err := NewSchedulerFor("fifo", &cfg)
	if err == nil {
		t.Fatal("NewSchedulerFor accepted an unknown name")
	}
	for _, name := range SchedulerNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered scheduler %q", err, name)
		}
	}
}

// TestRegisterSchedulerPanics pins the registration-time guards; the
// registry is restored afterwards so other tests see the built-ins only.
func TestRegisterSchedulerPanics(t *testing.T) {
	saved := schedulerRegistry
	defer func() { schedulerRegistry = saved }()

	expectPanic := func(why string, info SchedulerInfo) {
		defer func() {
			if recover() == nil {
				t.Errorf("RegisterScheduler with %s did not panic", why)
			}
		}()
		RegisterScheduler(info)
	}
	mk := func(cfg *config.GPU) gpu.TBScheduler { return NewRoundRobin() }
	expectPanic("empty name", SchedulerInfo{New: mk})
	expectPanic("nil factory", SchedulerInfo{Name: "x"})
	expectPanic("duplicate name", SchedulerInfo{Name: "rr", New: mk})

	RegisterScheduler(SchedulerInfo{Name: "test-policy", Description: "t", New: mk})
	if _, ok := SchedulerByName("test-policy"); !ok {
		t.Error("registered policy not resolvable")
	}
}
