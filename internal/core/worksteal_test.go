package core

import (
	"testing"

	"laperm/internal/isa"
)

// TestWorkStealOwnerPopsNewest: the owning SMX drains its deque LIFO — with
// two children bound to SMX 0, the later-enqueued (deeper-nested, hotter)
// one dispatches first.
func TestWorkStealOwnerPopsNewest(t *testing.T) {
	s := NewWorkSteal(4)
	parent := ki(9, 0, -1, nil, 1)
	parent.NextTB = 1
	s.Enqueue(ki(0, 1, 0, parent, 1)) // older
	s.Enqueue(ki(1, 2, 0, parent, 1)) // newer
	d := &fakeDispatcher{numSMX: 4}
	seq := drain(t, s, d, 16)
	if len(seq) != 2 || seq[0][0] != 1 || seq[1][0] != 0 {
		t.Errorf("owner dispatch order = %v, want newest (kernel 1) first", seq)
	}
}

// TestWorkStealThievesTakeOldest: a thief takes the victim's oldest entry,
// leaving the newest for the owner's locality.
func TestWorkStealThievesTakeOldest(t *testing.T) {
	s := NewWorkSteal(2)
	parent := ki(9, 0, -1, nil, 1)
	parent.NextTB = 1
	s.Enqueue(ki(0, 1, 1, parent, 1)) // older, bound to SMX 1
	s.Enqueue(ki(1, 1, 1, parent, 1)) // newer, bound to SMX 1
	d := &fakeDispatcher{numSMX: 2}
	// Slot for SMX 0: own deque and global both empty, so it steals — and
	// must take kernel 0, the oldest.
	k, smx := s.Select(d)
	if k == nil || k.ID != 0 || smx != 0 {
		t.Fatalf("Select = kernel %v on SMX %d, want stolen kernel 0 on SMX 0", k, smx)
	}
	if s.Steals != 1 {
		t.Errorf("Steals = %d, want 1", s.Steals)
	}
	k.NextTB++
	// Slot for SMX 1: the owner still gets its newest remaining entry.
	k, smx = s.Select(d)
	if k == nil || k.ID != 1 || smx != 1 {
		t.Fatalf("Select = kernel %v on SMX %d, want kernel 1 on SMX 1", k, smx)
	}
}

// TestWorkStealClusterDistanceOrder: with victims in the thief's own cluster
// and in a remote one, the same-cluster victim is robbed first.
func TestWorkStealClusterDistanceOrder(t *testing.T) {
	// 4 SMXs, clusters {0,1} and {2,3}.
	s := NewWorkStealClusters(4, 2)
	parent := ki(9, 0, -1, nil, 1)
	parent.NextTB = 1
	s.Enqueue(ki(0, 1, 2, parent, 1)) // remote cluster victim (enqueued first)
	s.Enqueue(ki(1, 1, 1, parent, 1)) // same-cluster victim
	d := &fakeDispatcher{numSMX: 4}
	// Slot for SMX 0: must steal from SMX 1 (cluster distance 0) before
	// SMX 2 (distance 1), despite SMX 2's entry being older overall.
	k, smx := s.Select(d)
	if k == nil || k.ID != 1 || smx != 0 {
		t.Fatalf("Select = kernel %v on SMX %d, want same-cluster kernel 1 on SMX 0", k, smx)
	}
	if s.Steals != 1 {
		t.Errorf("Steals = %d, want 1", s.Steals)
	}
}

// TestWorkStealBoundWaitsForItsSMX: a bound TB that does not fit on its own
// SMX is not redirected by that SMX's slot — binding is sticky; only a
// genuine thief may move it.
func TestWorkStealBoundWaitsForItsSMX(t *testing.T) {
	s := NewWorkSteal(2)
	parent := ki(9, 0, -1, nil, 1)
	parent.NextTB = 1
	s.Enqueue(ki(0, 1, 0, parent, 2))
	full0 := &fakeDispatcher{numSMX: 2, fit: func(smx int, tb *isa.TB) bool { return smx != 0 }}
	// SMX 0's slot: its own bound work doesn't fit; it must wait, not
	// dispatch the bound TB elsewhere.
	if k, _ := s.Select(full0); k != nil {
		t.Fatalf("SMX 0 dispatched kernel %d while its bound work didn't fit", k.ID)
	}
	// SMX 1's slot: stealing the waiting TB is allowed.
	k, smx := s.Select(full0)
	if k == nil || k.ID != 0 || smx != 1 {
		t.Fatalf("Select = kernel %v on SMX %d, want stolen kernel 0 on SMX 1", k, smx)
	}
}

// TestWorkStealHostKernelsRoundRobin: host kernels (no binding) fan across
// the SMXs via the rotating cursor.
func TestWorkStealHostKernelsRoundRobin(t *testing.T) {
	s := NewWorkSteal(4)
	s.Enqueue(ki(0, 0, -1, nil, 8))
	d := &fakeDispatcher{numSMX: 4}
	seq := drain(t, s, d, 16)
	if len(seq) != 8 {
		t.Fatalf("dispatched %d TBs, want 8", len(seq))
	}
	for i, e := range seq {
		if e[1] != i%4 {
			t.Errorf("dispatch %d on SMX %d, want %d: %v", i, e[1], i%4, seq)
		}
	}
	if s.Steals != 0 {
		t.Errorf("Steals = %d for a host-only workload, want 0", s.Steals)
	}
}

// TestWorkStealClustersValidation pins the constructor guard.
func TestWorkStealClustersValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorkStealClusters(4, 3) did not panic")
		}
	}()
	NewWorkStealClusters(4, 3)
}

// TestWSDequeTrimCompacts exercises the amortised compaction path: a long
// FIFO-consumed deque must shrink its dead head region.
func TestWSDequeTrimCompacts(t *testing.T) {
	var q wsDeque
	parent := ki(9, 0, -1, nil, 1)
	const n = 100
	for i := 0; i < n; i++ {
		q.push(ki(i, 1, 0, parent, 1))
	}
	for i := 0; i < n; i++ {
		k := q.oldest()
		if k == nil || k.ID != i {
			t.Fatalf("oldest() = %v at step %d, want kernel %d", k, i, i)
		}
		k.NextTB++ // exhaust it
	}
	if q.oldest() != nil {
		t.Error("deque not empty after consuming every entry")
	}
	if q.head != 0 || len(q.items) != 0 {
		t.Errorf("deque not reset after drain: head=%d len=%d", q.head, len(q.items))
	}
}
