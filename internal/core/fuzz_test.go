package core_test

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// FuzzSchedulerDispatch feeds randomised launch traces through every
// registered TB scheduler under every registered dynamic-parallelism model
// with the invariant auditor armed: no run may error, lose a thread block,
// or leave the engine accounting inconsistent. The fuzz bytes shape the
// workload (parent count, children per parent, child width, nesting) and the
// launch-queue bounds.
func FuzzSchedulerDispatch(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(8), uint8(3), uint8(2), uint8(1), uint8(3))
	f.Add(uint8(1), uint8(6), uint8(1), uint8(1), uint8(2))
	f.Add(uint8(12), uint8(0), uint8(3), uint8(0), uint8(1))

	f.Fuzz(func(t *testing.T, nParents, perParent, childTBs, nest, bound uint8) {
		parents := int(nParents%12) + 1
		launches := int(perParent % 4)
		width := int(childTBs%3) + 1
		deep := nest%2 == 1

		cfg := config.SmallTest()
		// Exercise the bounded queues without constructing a deadlock:
		// DropToKMU always makes progress, and the KMU pool bound stays
		// comfortably above the KDU drain rate.
		switch bound % 3 {
		case 0: // unbounded
			cfg.KMUPendingCapacity = 0
			cfg.DTBLAggBufferEntries = 0
			cfg.PMKTaskQueueEntries = 0
		case 1:
			cfg.KMUPendingCapacity = 64
			cfg.DTBLAggBufferEntries = 8
			cfg.DTBLOverflowPolicy = config.DropToKMU
			// PMK launches always stall on a full queue (no KMU to demote
			// to), so its bound stays KMU-pool-sized here where deep
			// nesting is allowed.
			cfg.PMKTaskQueueEntries = 64
		case 2:
			cfg.KMUPendingCapacity = 64
			cfg.DTBLAggBufferEntries = 8
			cfg.DTBLOverflowPolicy = config.StallWarp
			cfg.PMKTaskQueueEntries = 8
			// StallWarp can genuinely deadlock when every TB slot is
			// held by a block stalled at a launch (the scenario
			// TestDeadlockWatchdogReportsCircularWait constructs on
			// purpose). Keep the launching blocks to half the machine
			// and the children launch-free so the buffer always drains.
			deep = false
			if max := cfg.NumSMX * cfg.TBsPerSMX / 2; parents > max {
				parents = max
			}
		}

		leaf := func(i int) *isa.Kernel {
			kb := isa.NewKernel("leaf")
			for c := 0; c < width; c++ {
				kb.Add(isa.NewTB(32).Compute(1 + i%3).Build())
			}
			return kb.Build()
		}
		kb := isa.NewKernel("root")
		wantTBs := parents
		for i := 0; i < parents; i++ {
			b := isa.NewTB(32).Compute(1)
			for c := 0; c < launches; c++ {
				child := leaf(i + c)
				wantTBs += width
				if deep {
					mid := isa.NewKernel("mid").
						Add(isa.NewTB(32).Compute(1).Launch(0, child).Build()).Build()
					wantTBs++ // the mid TB itself
					b.Launch(c, mid)
				} else {
					b.Launch(c, child)
				}
			}
			kb.Add(b.Compute(1).Build())
		}
		k := kb.Build()

		for _, model := range gpu.Models() {
			for _, info := range core.Schedulers() {
				name := info.Name
				sim := gpu.MustNew(gpu.Options{
					Config:           &cfg,
					Scheduler:        info.New(&cfg),
					Model:            model,
					Audit:            true,
					WatchdogInterval: 5_000,
					MaxCycles:        5_000_000,
				})
				if err := sim.LaunchHost(k); err != nil {
					t.Fatalf("%s/%v: LaunchHost: %v", name, model, err)
				}
				res, err := sim.Run()
				if err != nil {
					t.Fatalf("%s/%v (parents=%d launches=%d width=%d deep=%v bound=%d): %v",
						name, model, parents, launches, width, deep, bound%3, err)
				}
				if res.BlockCount != wantTBs {
					t.Fatalf("%s/%v: dispatched %d TBs, want %d (lost or duplicated work)",
						name, model, res.BlockCount, wantTBs)
				}
				for _, ki := range sim.Kernels() {
					if !ki.Complete() {
						t.Fatalf("%s/%v: kernel %d %q incomplete", name, model, ki.ID, ki.Prog.Name)
					}
				}
			}
		}
	})
}
