package core

import (
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// residencyDispatcher reports a programmable resident-TB count.
type residencyDispatcher struct {
	fakeDispatcher
	resident []int
}

func (r *residencyDispatcher) ResidentTBs(smx int) int { return r.resident[smx] }

func TestThrottledCapsResidency(t *testing.T) {
	rr := NewRoundRobin()
	th := NewThrottled(rr, 2)
	if th.Name() != "rr+throttle" {
		t.Errorf("Name = %q", th.Name())
	}
	th.Enqueue(ki(0, 0, -1, nil, 4))
	d := &residencyDispatcher{
		fakeDispatcher: fakeDispatcher{numSMX: 2},
		resident:       []int{2, 1}, // SMX 0 at cap, SMX 1 has room
	}
	for i := 0; i < 4; i++ {
		k, smx := th.Select(d)
		if k == nil {
			break
		}
		k.NextTB++
		if smx != 1 {
			t.Errorf("dispatch %d went to saturated SMX %d", i, smx)
		}
	}
	// Saturate both: nothing dispatches.
	d.resident = []int{2, 2}
	if k, _ := th.Select(d); k != nil {
		t.Error("dispatch despite both SMXs at cap")
	}
}

func TestThrottledHonoursUnderlyingFit(t *testing.T) {
	th := NewThrottled(NewRoundRobin(), 16)
	th.Enqueue(ki(0, 0, -1, nil, 1))
	d := &residencyDispatcher{
		fakeDispatcher: fakeDispatcher{numSMX: 2, fit: func(int, *isa.TB) bool { return false }},
		resident:       []int{0, 0},
	}
	if k, _ := th.Select(d); k != nil {
		t.Error("throttled scheduler ignored underlying CanFit")
	}
}

func TestNewThrottledPanicsOnZeroCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero cap")
		}
	}()
	NewThrottled(NewRoundRobin(), 0)
}

func TestThrottledWrapsAnyScheduler(t *testing.T) {
	for _, inner := range []gpu.TBScheduler{
		NewTBPri(4), NewSMXBind(2, 4), NewAdaptiveBind(2, 4),
	} {
		th := NewThrottled(inner, 1)
		th.Enqueue(ki(0, 1, 0, ki(9, 0, -1, nil, 1), 1))
		d := &residencyDispatcher{
			fakeDispatcher: fakeDispatcher{numSMX: 2},
			resident:       []int{0, 0},
		}
		dispatched := false
		for i := 0; i < 4; i++ {
			if k, _ := th.Select(d); k != nil {
				k.NextTB++
				dispatched = true
			}
		}
		if !dispatched {
			t.Errorf("%s: throttled wrapper never dispatched", th.Name())
		}
	}
}

func TestAdaptiveBindFreeBackupStillCompletes(t *testing.T) {
	ab := NewAdaptiveBind(2, 4)
	ab.FreeBackup = true
	child := ki(0, 1, 0, ki(9, 0, -1, nil, 1), 4)
	ab.Enqueue(child)
	d := &fakeDispatcher{numSMX: 2}
	n := 0
	for i := 0; i < 12 && n < 4; i++ {
		k, _ := ab.Select(d)
		if k == nil {
			continue
		}
		k.NextTB++
		n++
	}
	if n != 4 {
		t.Fatalf("free-backup variant dispatched %d of 4 TBs", n)
	}
	if ab.Steals == 0 {
		t.Error("free-backup variant recorded no steals")
	}
}
