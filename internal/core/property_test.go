package core_test

import (
	"fmt"
	"math/rand"
	"testing"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/isa"
)

// randomWorkload builds a randomized dynamic-parallelism kernel: parents of
// varying sizes launching 0..3 children of varying shapes, some nested.
func randomWorkload(rng *rand.Rand) *isa.Kernel {
	mkTB := func(threads int, depth int) *isa.TB {
		b := isa.NewTB(threads).Resources(8+rng.Intn(24), rng.Intn(3)*512)
		ops := 1 + rng.Intn(8)
		for i := 0; i < ops; i++ {
			switch rng.Intn(3) {
			case 0:
				b.Compute(1 + rng.Intn(30))
			case 1:
				base := uint64(rng.Intn(1 << 18))
				b.Load(func(tid int) uint64 { return base + uint64(tid)*4 })
			case 2:
				base := uint64(rng.Intn(1 << 18))
				b.Store(func(tid int) uint64 { return base + uint64(tid)*8 })
			}
		}
		if depth > 0 {
			for c := 0; c < rng.Intn(3); c++ {
				childTBs := 1 + rng.Intn(3)
				ck := isa.NewKernel(fmt.Sprintf("child-d%d", depth))
				for i := 0; i < childTBs; i++ {
					ck.Add(mkChildTB(rng, depth-1))
				}
				b.Launch(rng.Intn(threads), ck.Build())
			}
		}
		return b.Build()
	}
	kb := isa.NewKernel("random")
	nParents := 4 + rng.Intn(12)
	for p := 0; p < nParents; p++ {
		kb.Add(mkTB(32*(1+rng.Intn(3)), 2))
	}
	return kb.Build()
}

// mkChildTB is split out to avoid unbounded mutual recursion with mkTB.
func mkChildTB(rng *rand.Rand, depth int) *isa.TB {
	b := isa.NewTB(32 * (1 + rng.Intn(2)))
	b.Compute(1 + rng.Intn(20))
	base := uint64(rng.Intn(1 << 18))
	b.Load(func(tid int) uint64 { return base + uint64(tid)*4 })
	if depth > 0 && rng.Intn(3) == 0 {
		grand := isa.NewKernel("grand").Add(mkChildTB(rng, depth-1)).Build()
		b.Launch(0, grand)
	}
	return b.Build()
}

type dispatchEvent struct {
	ki    *gpu.KernelInstance
	tb    int
	smx   int
	cycle uint64
}

// runTraced executes a workload under a scheduler, returning the dispatch
// trace and result.
func runTraced(t *testing.T, k *isa.Kernel, mk func(cfg *config.GPU) gpu.TBScheduler, model gpu.Model) ([]dispatchEvent, *gpu.Result) {
	t.Helper()
	cfg := config.SmallTest()
	var events []dispatchEvent
	sim := gpu.MustNew(gpu.Options{
		Config:    &cfg,
		Scheduler: mk(&cfg),
		Model:     model,
		TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
			events = append(events, dispatchEvent{ki, tbIndex, smxID, cycle})
		},
	})
	if err := sim.LaunchHost(k); err != nil {
		t.Fatalf("launch: %v", err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return events, res
}

// schedulerFactories returns a constructor per registered policy, so the
// property tests sweep every scheduler in the registry.
func schedulerFactories() map[string]func(cfg *config.GPU) gpu.TBScheduler {
	mks := make(map[string]func(cfg *config.GPU) gpu.TBScheduler)
	for _, info := range core.Schedulers() {
		mks[info.Name] = info.New
	}
	return mks
}

// TestSchedulerInvariantsOnRandomWorkloads checks, for every scheduler and
// model across randomized workloads:
//  1. every thread block of every kernel instance is dispatched exactly once;
//  2. no thread block dispatches before its kernel's arrival cycle;
//  3. dispatch cycles are monotone;
//  4. all schedulers execute the same total work.
func TestSchedulerInvariantsOnRandomWorkloads(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		k := randomWorkload(rng)
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: invalid workload: %v", trial, err)
		}
		for _, model := range gpu.Models() {
			var wantInsts int64 = -1
			for name, mk := range schedulerFactories() {
				events, res := runTraced(t, k, mk, model)

				// (1) exactly-once dispatch per (instance, tb).
				seen := make(map[*gpu.KernelInstance]map[int]bool)
				for _, e := range events {
					if seen[e.ki] == nil {
						seen[e.ki] = make(map[int]bool)
					}
					if seen[e.ki][e.tb] {
						t.Fatalf("trial %d %s/%v: TB %d of kernel %d dispatched twice",
							trial, name, model, e.tb, e.ki.ID)
					}
					seen[e.ki][e.tb] = true
				}
				for ki, tbs := range seen {
					if len(tbs) != len(ki.Prog.TBs) {
						t.Fatalf("trial %d %s/%v: kernel %d dispatched %d of %d TBs",
							trial, name, model, ki.ID, len(tbs), len(ki.Prog.TBs))
					}
				}

				// (2) + (3).
				var last uint64
				for _, e := range events {
					if e.cycle < e.ki.ArriveCycle {
						t.Fatalf("trial %d %s/%v: kernel %d dispatched at %d before arrival %d",
							trial, name, model, e.ki.ID, e.cycle, e.ki.ArriveCycle)
					}
					if e.cycle < last {
						t.Fatalf("trial %d %s/%v: dispatch cycles not monotone", trial, name, model)
					}
					last = e.cycle
				}

				// (4).
				if wantInsts == -1 {
					wantInsts = res.ThreadInsts
				} else if res.ThreadInsts != wantInsts {
					t.Fatalf("trial %d %s/%v: executed %d thread-insts, others %d",
						trial, name, model, res.ThreadInsts, wantInsts)
				}
			}
		}
	}
}

// TestBindingInvariantOnRandomWorkloads: under SMX-Bind, every dynamic TB
// runs on its direct parent's SMX; under Adaptive-Bind it may run elsewhere
// only via stage-3 steals (counted by the scheduler).
func TestBindingInvariantOnRandomWorkloads(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		k := randomWorkload(rng)

		events, _ := runTraced(t, k, func(cfg *config.GPU) gpu.TBScheduler {
			return core.NewSMXBind(cfg.NumSMX, cfg.MaxPriorityLevels)
		}, gpu.DTBL)
		for _, e := range events {
			if e.ki.Parent != nil && e.smx != e.ki.BoundSMX {
				t.Fatalf("trial %d: SMX-Bind placed child of SMX %d on SMX %d",
					trial, e.ki.BoundSMX, e.smx)
			}
		}

		cfg := config.SmallTest()
		ab := core.NewAdaptiveBind(cfg.NumSMX, cfg.MaxPriorityLevels)
		var strayed int64
		sim := gpu.MustNew(gpu.Options{
			Config:    &cfg,
			Scheduler: ab,
			Model:     gpu.DTBL,
			TraceDispatch: func(ki *gpu.KernelInstance, tbIndex, smxID int, cycle uint64) {
				if ki.Parent != nil && smxID != ki.BoundSMX {
					strayed++
				}
			},
		})
		if err := sim.LaunchHost(k); err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(); err != nil {
			t.Fatal(err)
		}
		if strayed > ab.Steals {
			t.Fatalf("trial %d: %d TBs off their bound SMX but only %d steals recorded",
				trial, strayed, ab.Steals)
		}
	}
}

// TestDeterminismAcrossSchedulersRandom re-runs each random workload twice
// per scheduler and requires bit-identical statistics.
func TestDeterminismAcrossSchedulersRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3000))
	k := randomWorkload(rng)
	for name, mk := range schedulerFactories() {
		_, a := runTraced(t, k, mk, gpu.DTBL)
		_, b := runTraced(t, k, mk, gpu.DTBL)
		if a.Cycles != b.Cycles || a.ThreadInsts != b.ThreadInsts || a.L1 != b.L1 || a.L2 != b.L2 {
			t.Errorf("%s: nondeterministic results:\n%v\n%v", name, a, b)
		}
	}
}
