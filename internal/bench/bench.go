// Package bench is the multi-sample benchmark harness behind BENCH_*.json
// and the CI regression gate. It parses `go test -bench` output (run with
// -count=N for several samples per benchmark), aggregates each benchmark's
// ns/op distribution into min/median/max alongside its bytes/op and
// allocs/op, and compares a report against a committed baseline with
// separate tolerances for timing (machine-dependent, generous across
// hardware) and allocations (machine-independent, zero tolerance by
// default). Earlier BENCH_*.json artifacts were single-iteration,
// single-sample dumps — noise presented as numbers; this package replaces
// them (DESIGN.md §12).
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Schema identifies the report format.
const Schema = "laperm-bench/1"

// Sample is one benchmark measurement line of `go test -bench` output.
type Sample struct {
	// Name is the benchmark name with any -GOMAXPROCS suffix removed.
	Name string
	// Iterations is the b.N the sample ran.
	Iterations int64
	// NsPerOp is the reported ns/op.
	NsPerOp float64
	// BytesPerOp / AllocsPerOp are the -benchmem columns; -1 when the
	// sample carried no memory columns.
	BytesPerOp  int64
	AllocsPerOp int64
}

// Meta is the run environment parsed from the output header.
type Meta struct {
	GoOS, GoArch, Pkg, CPU string
	// GOMAXPROCS is the benchmark-name suffix (-N); 1 when absent.
	GOMAXPROCS int
}

// ParseGoBench reads `go test -bench` output and returns every benchmark
// sample in order, plus the run metadata.
func ParseGoBench(r io.Reader) ([]Sample, Meta, error) {
	meta := Meta{GOMAXPROCS: 1}
	var samples []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			meta.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			meta.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			meta.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			meta.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		f := strings.Fields(line)
		if len(f) < 3 {
			continue
		}
		s := Sample{BytesPerOp: -1, AllocsPerOp: -1}
		s.Name = f[0]
		if i := strings.LastIndex(s.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(s.Name[i+1:]); err == nil {
				s.Name = s.Name[:i]
				meta.GOMAXPROCS = procs
			}
		}
		var err error
		if s.Iterations, err = strconv.ParseInt(f[1], 10, 64); err != nil {
			return nil, meta, fmt.Errorf("bench: bad iteration count in %q: %w", line, err)
		}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				return nil, meta, fmt.Errorf("bench: bad value in %q: %w", line, err)
			}
			switch f[i+1] {
			case "ns/op":
				s.NsPerOp = v
			case "B/op":
				s.BytesPerOp = int64(v)
			case "allocs/op":
				s.AllocsPerOp = int64(v)
			}
		}
		if s.NsPerOp == 0 {
			return nil, meta, fmt.Errorf("bench: no ns/op column in %q", line)
		}
		samples = append(samples, s)
	}
	return samples, meta, sc.Err()
}

// Stats is a min/median/max summary of one metric across samples.
type Stats struct {
	Min    float64 `json:"min"`
	Median float64 `json:"median"`
	Max    float64 `json:"max"`
}

// statsOf summarizes vs (which must be non-empty).
func statsOf(vs []float64) Stats {
	sorted := append([]float64(nil), vs...)
	sort.Float64s(sorted)
	n := len(sorted)
	med := sorted[n/2]
	if n%2 == 0 {
		med = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	return Stats{Min: sorted[0], Median: med, Max: sorted[n-1]}
}

// Benchmark is one benchmark's aggregate across its samples.
type Benchmark struct {
	Name string `json:"name"`
	// Samples is how many -count repetitions contributed.
	Samples int `json:"samples"`
	// Iterations is the smallest b.N among the samples.
	Iterations int64 `json:"iterations"`
	NsPerOp    Stats `json:"ns_per_op"`
	// BytesPerOp / AllocsPerOp are the maxima across samples (the
	// conservative side for a regression gate); -1 without -benchmem.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Report is the aggregated benchmark artifact serialized to BENCH_*.json.
type Report struct {
	Schema     string      `json:"schema"`
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Aggregate folds samples into a Report, preserving first-seen benchmark
// order.
func Aggregate(samples []Sample, meta Meta) *Report {
	rep := &Report{Schema: Schema, GoOS: meta.GoOS, GoArch: meta.GoArch, CPU: meta.CPU, GOMAXPROCS: meta.GOMAXPROCS}
	index := map[string]int{}
	grouped := map[string][]Sample{}
	for _, s := range samples {
		if _, seen := index[s.Name]; !seen {
			index[s.Name] = len(rep.Benchmarks)
			rep.Benchmarks = append(rep.Benchmarks, Benchmark{Name: s.Name})
		}
		grouped[s.Name] = append(grouped[s.Name], s)
	}
	for name, group := range grouped {
		b := &rep.Benchmarks[index[name]]
		b.Samples = len(group)
		b.Iterations = group[0].Iterations
		b.BytesPerOp, b.AllocsPerOp = -1, -1
		ns := make([]float64, len(group))
		for i, s := range group {
			ns[i] = s.NsPerOp
			if s.Iterations < b.Iterations {
				b.Iterations = s.Iterations
			}
			if s.BytesPerOp > b.BytesPerOp {
				b.BytesPerOp = s.BytesPerOp
			}
			if s.AllocsPerOp > b.AllocsPerOp {
				b.AllocsPerOp = s.AllocsPerOp
			}
		}
		b.NsPerOp = statsOf(ns)
	}
	return rep
}

// ReadReport loads a Report from path.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &rep, nil
}

// WriteJSON serializes the report, indented, with a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Lookup returns the named benchmark's aggregate.
func (r *Report) Lookup(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Regression is one gate violation found by Compare.
type Regression struct {
	Benchmark string
	Metric    string // "ns/op" or "allocs/op"
	Base, Cur float64
	// Limit is the threshold the current value exceeded.
	Limit float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %s regressed %.0f -> %.0f (limit %.0f)", r.Benchmark, r.Metric, r.Base, r.Cur, r.Limit)
}

// Tolerances configures Compare. NsPerOp is relative (0.10 = +10% on the
// median); AllocsPerOp is relative too but defaults to zero — allocation
// counts are machine-independent, so any increase on a pinned benchmark is a
// real regression regardless of the hardware the gate runs on.
type Tolerances struct {
	NsPerOp     float64
	AllocsPerOp float64
}

// Compare gates cur against base: every benchmark present in both reports
// must hold its median ns/op within the timing tolerance and its allocs/op
// within the allocation tolerance. Benchmarks only in one report are
// returned in missing (informational — partial runs gate what they ran).
func Compare(base, cur *Report, tol Tolerances) (regressions []Regression, missing []string) {
	for _, bb := range base.Benchmarks {
		cb, ok := cur.Lookup(bb.Name)
		if !ok {
			missing = append(missing, bb.Name)
			continue
		}
		if limit := bb.NsPerOp.Median * (1 + tol.NsPerOp); cb.NsPerOp.Median > limit {
			regressions = append(regressions, Regression{
				Benchmark: bb.Name, Metric: "ns/op",
				Base: bb.NsPerOp.Median, Cur: cb.NsPerOp.Median, Limit: limit,
			})
		}
		if bb.AllocsPerOp >= 0 && cb.AllocsPerOp >= 0 {
			if limit := float64(bb.AllocsPerOp) * (1 + tol.AllocsPerOp); float64(cb.AllocsPerOp) > limit {
				regressions = append(regressions, Regression{
					Benchmark: bb.Name, Metric: "allocs/op",
					Base: float64(bb.AllocsPerOp), Cur: float64(cb.AllocsPerOp), Limit: limit,
				})
			}
		}
	}
	return regressions, missing
}

// Speedup returns the median-ns/op ratio base/target — e.g. the 1-worker to
// 8-worker matrix speedup — and false when either benchmark is absent.
func (r *Report) Speedup(baseName, targetName string) (float64, bool) {
	b, okB := r.Lookup(baseName)
	t, okT := r.Lookup(targetName)
	if !okB || !okT || t.NsPerOp.Median == 0 {
		return 0, false
	}
	return b.NsPerOp.Median / t.NsPerOp.Median, true
}
