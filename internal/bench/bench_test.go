package bench

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// goBenchOutput is real-shaped `go test -bench -count=3 -benchmem` output:
// header lines, interleaved samples, a sub-benchmark, a benchmark without
// memory columns, and a PASS trailer.
const goBenchOutput = `goos: linux
goarch: amd64
pkg: laperm/internal/exp
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMatrixWorkers1-8   	       2	  91406342 ns/op	 2516020 B/op	    7691 allocs/op
BenchmarkMatrixWorkers1-8   	       2	  90000000 ns/op	 2500000 B/op	    7690 allocs/op
BenchmarkMatrixWorkers1-8   	       2	  95000000 ns/op	 2550000 B/op	    7695 allocs/op
BenchmarkMatrixWorkers8-8   	       2	  30000000 ns/op	 2516020 B/op	    7691 allocs/op
BenchmarkMatrixWorkers8-8   	       2	  28000000 ns/op	 2500000 B/op	    7690 allocs/op
BenchmarkMatrixWorkers8-8   	       2	  29000000 ns/op	 2500000 B/op	    7690 allocs/op
BenchmarkRunOneCells/rr-8   	       2	   9648977 ns/op	   80764 B/op	     216 allocs/op
BenchmarkNoMem              	     100	     12345 ns/op
PASS
ok  	laperm/internal/exp	10.000s
`

func parseGolden(t *testing.T) (*Report, Meta) {
	t.Helper()
	samples, meta, err := ParseGoBench(strings.NewReader(goBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	return Aggregate(samples, meta), meta
}

func TestParseGoBench(t *testing.T) {
	samples, meta, err := ParseGoBench(strings.NewReader(goBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 8 {
		t.Fatalf("parsed %d samples, want 8", len(samples))
	}
	if meta.GoOS != "linux" || meta.GoArch != "amd64" || meta.GOMAXPROCS != 8 {
		t.Errorf("meta = %+v, want linux/amd64 with GOMAXPROCS 8", meta)
	}
	if !strings.Contains(meta.CPU, "Xeon") {
		t.Errorf("CPU = %q, want the header's cpu line", meta.CPU)
	}
	first := samples[0]
	if first.Name != "BenchmarkMatrixWorkers1" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.NsPerOp != 91406342 || first.BytesPerOp != 2516020 || first.AllocsPerOp != 7691 {
		t.Errorf("first sample misparsed: %+v", first)
	}
	sub := samples[6]
	if sub.Name != "BenchmarkRunOneCells/rr" {
		t.Errorf("sub-benchmark name = %q", sub.Name)
	}
	nomem := samples[7]
	if nomem.Name != "BenchmarkNoMem" || nomem.BytesPerOp != -1 || nomem.AllocsPerOp != -1 {
		t.Errorf("memory-less sample misparsed: %+v", nomem)
	}
}

func TestAggregateStats(t *testing.T) {
	rep, _ := parseGolden(t)
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("aggregated %d benchmarks, want 4", len(rep.Benchmarks))
	}
	w1, ok := rep.Lookup("BenchmarkMatrixWorkers1")
	if !ok {
		t.Fatal("BenchmarkMatrixWorkers1 missing")
	}
	if w1.Samples != 3 {
		t.Errorf("samples = %d, want 3", w1.Samples)
	}
	want := Stats{Min: 90000000, Median: 91406342, Max: 95000000}
	if w1.NsPerOp != want {
		t.Errorf("ns/op stats = %+v, want %+v", w1.NsPerOp, want)
	}
	// Memory columns aggregate to the conservative maximum.
	if w1.AllocsPerOp != 7695 || w1.BytesPerOp != 2550000 {
		t.Errorf("allocs/bytes = %d/%d, want max across samples 7695/2550000", w1.AllocsPerOp, w1.BytesPerOp)
	}
}

func TestEvenSampleMedian(t *testing.T) {
	s := statsOf([]float64{10, 20, 30, 40})
	if s.Median != 25 {
		t.Errorf("even-count median = %v, want 25", s.Median)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rep, _ := parseGolden(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Errorf("round trip changed the report:\n%+v\n%+v", rep, &back)
	}
	if back.Schema != Schema {
		t.Errorf("schema = %q, want %q", back.Schema, Schema)
	}
}

func TestCompareGate(t *testing.T) {
	base, _ := parseGolden(t)
	tol := Tolerances{NsPerOp: 0.10}

	t.Run("identical-passes", func(t *testing.T) {
		regs, missing := Compare(base, base, tol)
		if len(regs) != 0 || len(missing) != 0 {
			t.Errorf("self-compare: regressions %v, missing %v", regs, missing)
		}
	})

	t.Run("ns-within-tolerance-passes", func(t *testing.T) {
		cur := cloneReport(t, base)
		bump(t, cur, "BenchmarkMatrixWorkers1", func(b *Benchmark) {
			b.NsPerOp.Median *= 1.05
		})
		if regs, _ := Compare(base, cur, tol); len(regs) != 0 {
			t.Errorf("+5%% ns/op inside the 10%% tolerance flagged: %v", regs)
		}
	})

	t.Run("ns-regression-fails", func(t *testing.T) {
		cur := cloneReport(t, base)
		bump(t, cur, "BenchmarkMatrixWorkers1", func(b *Benchmark) {
			b.NsPerOp.Median *= 1.25
		})
		regs, _ := Compare(base, cur, tol)
		if len(regs) != 1 || regs[0].Metric != "ns/op" {
			t.Fatalf("+25%% ns/op not flagged: %v", regs)
		}
	})

	t.Run("any-alloc-increase-fails", func(t *testing.T) {
		cur := cloneReport(t, base)
		bump(t, cur, "BenchmarkMatrixWorkers8", func(b *Benchmark) {
			b.AllocsPerOp++
		})
		regs, _ := Compare(base, cur, tol)
		if len(regs) != 1 || regs[0].Metric != "allocs/op" {
			t.Fatalf("+1 alloc/op not flagged with zero allocation tolerance: %v", regs)
		}
	})

	t.Run("missing-is-reported-not-failed", func(t *testing.T) {
		cur := cloneReport(t, base)
		cur.Benchmarks = cur.Benchmarks[:1]
		regs, missing := Compare(base, cur, tol)
		if len(regs) != 0 {
			t.Errorf("missing benchmarks produced regressions: %v", regs)
		}
		if len(missing) != 3 {
			t.Errorf("missing = %v, want the 3 absent benchmarks", missing)
		}
	})
}

func TestSpeedup(t *testing.T) {
	rep, _ := parseGolden(t)
	s, ok := rep.Speedup("BenchmarkMatrixWorkers1", "BenchmarkMatrixWorkers8")
	if !ok {
		t.Fatal("speedup pair not found")
	}
	if s < 3.1 || s > 3.2 { // 91406342 / 29000000 = 3.152
		t.Errorf("speedup = %.3f, want ~3.15", s)
	}
	if _, ok := rep.Speedup("BenchmarkMatrixWorkers1", "BenchmarkAbsent"); ok {
		t.Error("speedup against an absent benchmark reported ok")
	}
}

func cloneReport(t *testing.T, r *Report) *Report {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var c Report
	if err := json.Unmarshal(data, &c); err != nil {
		t.Fatal(err)
	}
	return &c
}

func bump(t *testing.T, r *Report, name string, f func(*Benchmark)) {
	t.Helper()
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			f(&r.Benchmarks[i])
			return
		}
	}
	t.Fatalf("%s not in report", name)
}
