// Package spec defines RunSpec: a versioned, JSON-serializable description
// of one simulation run — workload, scale, launch model, scheduler (name plus
// parameters), and simulation options (sampling, attribution, auditing,
// clocking). It is the single request type shared by the command-line tools,
// the experiment harness's scheduler factory, and the lapermd simulation
// service: everything needed to rebuild a run from bytes, and nothing that
// cannot be serialized.
//
// A RunSpec has three derived forms:
//
//   - Normalized() fills every defaulted field with its canonical value, so
//     two specs that describe the same run compare (and hash) equal whether
//     the defaults were spelled out or omitted.
//   - Canonical() is the normalized spec marshaled as JSON with a fixed field
//     order — the byte string the content hash is computed over.
//   - Hash() is the SHA-256 of Canonical(), the content address under which
//     the service coalesces identical submissions and caches results.
//
// Compatibility policy: SpecVersion is bumped only when the meaning of an
// existing field changes or a field is removed — additions that default to
// the previous behaviour keep the version. A spec with a newer version than
// this build understands is rejected by Validate (never silently
// misinterpreted), and the version is part of the canonical form, so a bump
// also changes every hash.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"laperm/internal/config"
	"laperm/internal/core"
	"laperm/internal/gpu"
	"laperm/internal/kernels"
	"laperm/internal/smx"
)

// CurrentVersion is the RunSpec schema version this build writes and the
// newest it accepts.
const CurrentVersion = 1

// Default field values filled in by Normalized.
const (
	DefaultScale      = "small"
	DefaultModel      = "dtbl"
	DefaultScheduler  = "adaptive-bind"
	DefaultWarpPolicy = "gto"
)

// SchedulerParams tunes the named scheduler. Zero values mean the Table I
// configuration's defaults.
type SchedulerParams struct {
	// MaxLevels overrides the maximum priority level L (Section IV-A);
	// 0 keeps the configuration's MaxPriorityLevels.
	MaxLevels int `json:"max_levels,omitempty"`
	// ClusterSize overrides how many SMXs share an L1 for the binding
	// schedulers (Section IV-B); 0 keeps the configuration's
	// SMXsPerCluster.
	ClusterSize int `json:"cluster_size,omitempty"`
}

// RunSpec describes one simulation run. The zero value of every optional
// field means "the default"; Normalized spells the defaults out. Field order
// here is the canonical JSON field order — do not reorder without bumping
// CurrentVersion.
type RunSpec struct {
	// SpecVersion is the schema version; 0 means CurrentVersion.
	SpecVersion int `json:"spec_version,omitempty"`
	// Workload is the Table II workload name ("bfs-citation"). Required.
	Workload string `json:"workload"`
	// Scale is the workload size: "tiny", "small" (default), "medium".
	Scale string `json:"scale,omitempty"`
	// Model is a registered dynamic-parallelism model name
	// (gpu.ModelNames); "dtbl" is the default.
	Model string `json:"model,omitempty"`
	// Scheduler is a registered TB scheduler name (core.SchedulerNames);
	// "adaptive-bind" is the default.
	Scheduler string `json:"scheduler,omitempty"`
	// SchedulerParams tunes the scheduler; nil means all defaults.
	SchedulerParams *SchedulerParams `json:"scheduler_params,omitempty"`
	// WarpPolicy is the warp scheduler: "gto" (default) or "lrr".
	WarpPolicy string `json:"warp_policy,omitempty"`
	// MaxCycles bounds the run; 0 means the engine's safety net
	// (gpu.DefaultMaxCycles).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// SampleEvery records a timeline sample every N cycles; 0 disables
	// sampling.
	SampleEvery uint64 `json:"sample_every,omitempty"`
	// Attribution enables reuse-tagged cache accounting
	// (Result.L1Reuse/L2Reuse).
	Attribution bool `json:"attribution,omitempty"`
	// Audit enables the invariant auditor.
	Audit bool `json:"audit,omitempty"`
	// DenseClock steps one cycle at a time instead of event-horizon
	// fast-forwarding (identical results, slower).
	DenseClock bool `json:"dense_clock,omitempty"`
}

// Normalized returns a copy with every defaulted field filled in: the
// canonical form specs are compared, marshaled, and hashed in. A nil or
// all-zero SchedulerParams normalizes to nil.
func (s RunSpec) Normalized() RunSpec {
	if s.SpecVersion == 0 {
		s.SpecVersion = CurrentVersion
	}
	if s.Scale == "" {
		s.Scale = DefaultScale
	}
	if s.Model == "" {
		s.Model = DefaultModel
	}
	if s.Scheduler == "" {
		s.Scheduler = DefaultScheduler
	}
	if s.WarpPolicy == "" {
		s.WarpPolicy = DefaultWarpPolicy
	}
	if s.SchedulerParams != nil {
		if (*s.SchedulerParams == SchedulerParams{}) {
			s.SchedulerParams = nil
		} else {
			p := *s.SchedulerParams // never alias the caller's struct
			s.SchedulerParams = &p
		}
	}
	return s
}

// Validate checks the normalized spec: a supported version, a known
// workload (an unknown one yields a *kernels.UnknownWorkloadError listing
// the valid names), and recognized scale / model / scheduler / warp-policy
// names. It does not build anything.
func (s RunSpec) Validate() error {
	n := s.Normalized()
	if n.SpecVersion < 1 || n.SpecVersion > CurrentVersion {
		return fmt.Errorf("spec: unsupported spec_version %d (this build supports 1..%d)",
			n.SpecVersion, CurrentVersion)
	}
	if n.Workload == "" {
		return fmt.Errorf("spec: workload is required (valid: %v)", kernels.Names())
	}
	if _, err := kernels.Lookup(n.Workload); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := ParseScale(n.Scale); err != nil {
		return err
	}
	if _, err := ParseModel(n.Model); err != nil {
		return err
	}
	if _, ok := core.SchedulerByName(n.Scheduler); !ok {
		return fmt.Errorf("spec: unknown scheduler %q (valid: %v)", n.Scheduler, SchedulerNames())
	}
	if _, err := ParseWarpPolicy(n.WarpPolicy); err != nil {
		return err
	}
	if p := n.SchedulerParams; p != nil {
		if p.MaxLevels < 0 {
			return fmt.Errorf("spec: scheduler_params.max_levels %d is negative", p.MaxLevels)
		}
		if p.ClusterSize < 0 {
			return fmt.Errorf("spec: scheduler_params.cluster_size %d is negative", p.ClusterSize)
		}
	}
	return nil
}

// Canonical returns the canonical byte form: the normalized spec marshaled
// as JSON. encoding/json emits struct fields in declaration order, so equal
// normalized specs produce equal bytes regardless of how the input JSON was
// ordered or which defaults it spelled out.
func (s RunSpec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Normalized())
}

// Hash returns the spec's content address: the lowercase hex SHA-256 of
// Canonical(). Identical runs hash identically; any semantic difference
// (including a SpecVersion bump) changes the hash.
func (s RunSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// Parse decodes a RunSpec from JSON, rejecting unknown fields — a typo'd
// option must fail loudly, not silently change which run the hash names —
// and trailing garbage. The result is not yet validated or normalized.
func Parse(data []byte) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("spec: invalid RunSpec JSON: %w", err)
	}
	if dec.More() {
		return RunSpec{}, fmt.Errorf("spec: trailing data after RunSpec JSON")
	}
	return s, nil
}

// Options assembles the spec into its concrete pieces: the GPU
// configuration (a private Table I copy with SchedulerParams applied), the
// constructed scheduler inside ready-to-use gpu.Options, and the workload.
// Callers may edit the returned Options (trace hooks, cycle caps) before
// building the simulator.
func (s RunSpec) Options() (gpu.Options, kernels.Workload, error) {
	n := s.Normalized()
	if err := n.Validate(); err != nil {
		return gpu.Options{}, kernels.Workload{}, err
	}
	w, err := kernels.Lookup(n.Workload)
	if err != nil {
		return gpu.Options{}, kernels.Workload{}, err
	}
	cfg := config.KeplerK20c()
	if p := n.SchedulerParams; p != nil {
		if p.MaxLevels > 0 {
			cfg.MaxPriorityLevels = p.MaxLevels
		}
		if p.ClusterSize > 0 {
			cfg.SMXsPerCluster = p.ClusterSize
		}
	}
	sched, err := NewScheduler(n.Scheduler, &cfg)
	if err != nil {
		return gpu.Options{}, kernels.Workload{}, err
	}
	model, err := ParseModel(n.Model)
	if err != nil {
		return gpu.Options{}, kernels.Workload{}, err
	}
	policy, err := ParseWarpPolicy(n.WarpPolicy)
	if err != nil {
		return gpu.Options{}, kernels.Workload{}, err
	}
	return gpu.Options{
		Config:      &cfg,
		Scheduler:   sched,
		Model:       model,
		WarpPolicy:  policy,
		MaxCycles:   n.MaxCycles,
		SampleEvery: n.SampleEvery,
		Attribution: n.Attribution,
		Audit:       n.Audit,
		DenseClock:  n.DenseClock,
	}, w, nil
}

// Build constructs the simulator and launches the workload's host kernel,
// ready for Run/RunContext. Equal specs build byte-identical runs.
func (s RunSpec) Build() (*gpu.Simulator, kernels.Workload, error) {
	return s.BuildWith(nil)
}

// BuildWith is Build with an Options hook: customize, when non-nil, edits
// the assembled gpu.Options (trace hooks, sampling overrides, cycle caps)
// before the simulator is constructed.
func (s RunSpec) BuildWith(customize func(*gpu.Options)) (*gpu.Simulator, kernels.Workload, error) {
	gopts, w, err := s.Options()
	if err != nil {
		return nil, kernels.Workload{}, err
	}
	if customize != nil {
		customize(&gopts)
	}
	sim, err := gpu.New(gopts)
	if err != nil {
		return nil, w, fmt.Errorf("spec: %s: %w", s.Normalized().Workload, err)
	}
	sc, err := ParseScale(s.Normalized().Scale)
	if err != nil {
		return nil, w, err
	}
	if err := sim.LaunchHost(w.Build(sc)); err != nil {
		return nil, w, fmt.Errorf("spec: %s: %w", w.Name, err)
	}
	return sim, w, nil
}

// SchedulerNames lists the valid TB scheduler names in registry order.
func SchedulerNames() []string { return core.SchedulerNames() }

// NewScheduler builds the named TB scheduler for the given configuration —
// a thin veneer over the core scheduler registry that keeps spec's error
// vocabulary.
func NewScheduler(name string, cfg *config.GPU) (gpu.TBScheduler, error) {
	info, ok := core.SchedulerByName(name)
	if !ok {
		return nil, fmt.Errorf("spec: unknown scheduler %q (valid: %v)", name, SchedulerNames())
	}
	return info.New(cfg), nil
}

// ParseScale maps a scale name to its kernels.Scale.
func ParseScale(name string) (kernels.Scale, error) {
	switch name {
	case "tiny":
		return kernels.ScaleTiny, nil
	case "small":
		return kernels.ScaleSmall, nil
	case "medium":
		return kernels.ScaleMedium, nil
	}
	return 0, fmt.Errorf("spec: unknown scale %q (valid: tiny, small, medium)", name)
}

// ParseModel resolves a launch-model name against the gpu model registry.
func ParseModel(name string) (gpu.Model, error) {
	m, ok := gpu.ModelByName(name)
	if !ok {
		return 0, fmt.Errorf("spec: unknown model %q (valid: %v)", name, gpu.ModelNames())
	}
	return m, nil
}

// ParseWarpPolicy maps a warp-policy name to its smx.Policy.
func ParseWarpPolicy(name string) (smx.Policy, error) {
	switch name {
	case "gto":
		return smx.GTO, nil
	case "lrr":
		return smx.LRR, nil
	}
	return 0, fmt.Errorf("spec: unknown warp_policy %q (valid: gto, lrr)", name)
}
