package spec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func rawValues(vals ...string) []json.RawMessage {
	out := make([]json.RawMessage, len(vals))
	for i, v := range vals {
		out[i] = json.RawMessage(v)
	}
	return out
}

func testSweep() SweepSpec {
	return SweepSpec{
		Base: RunSpec{Scale: "tiny", MaxCycles: 50_000},
		Axes: []SweepAxis{
			{Field: "workload", Values: rawValues(`"amr"`, `"bht"`)},
			{Field: "scheduler", Values: rawValues(`"rr"`, `"smx-bind"`, `"adaptive-bind"`)},
		},
	}
}

func TestSweepExpandDeterministic(t *testing.T) {
	s := testSweep()
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 {
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	if got := s.CellCount(); got != 6 {
		t.Fatalf("CellCount = %d, want 6", got)
	}
	// Row-major: first axis slowest.
	wantValues := [][2]string{
		{"amr", "rr"}, {"amr", "smx-bind"}, {"amr", "adaptive-bind"},
		{"bht", "rr"}, {"bht", "smx-bind"}, {"bht", "adaptive-bind"},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.Values[0] != wantValues[i][0] || c.Values[1] != wantValues[i][1] {
			t.Errorf("cell %d values %v, want %v", i, c.Values, wantValues[i])
		}
		if c.Spec.Workload != wantValues[i][0] || c.Spec.Scheduler != wantValues[i][1] {
			t.Errorf("cell %d spec = %+v", i, c.Spec)
		}
		if c.Spec.Scale != "tiny" || c.Spec.MaxCycles != 50_000 {
			t.Errorf("cell %d lost base fields: %+v", i, c.Spec)
		}
		if err := c.Spec.Validate(); err != nil {
			t.Errorf("cell %d invalid: %v", i, err)
		}
	}
	// Expanding again yields identical hashes in identical order.
	again, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if cells[i].Hash != again[i].Hash {
			t.Fatalf("expansion not deterministic at cell %d", i)
		}
	}
}

// TestSweepCellHashMatchesSingleton: a sweep cell's hash is exactly the hash
// a direct /v1/runs submission of the same run would get — the property the
// whole dedupe design rests on.
func TestSweepCellHashMatchesSingleton(t *testing.T) {
	cells, err := testSweep().Expand()
	if err != nil {
		t.Fatal(err)
	}
	direct := RunSpec{Workload: "bht", Scale: "tiny", Scheduler: "smx-bind", MaxCycles: 50_000}
	want, err := direct.Hash()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cells {
		if c.Hash == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sweep cell hashes to the equivalent singleton spec %s", want)
	}
}

func TestSweepHashInsensitiveToFormatting(t *testing.T) {
	a, err := ParseSweep([]byte(`{"base":{"scale":"tiny"},"axes":[{"field":"workload","values":["amr","bht"]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	// Same sweep: reordered keys, whitespace, defaults spelled out,
	// equivalent number formatting in a numeric axis.
	b, err := ParseSweep([]byte(`{
		"axes": [ {"values": [ "amr" , "bht" ], "field": "workload"} ],
		"tenant": "default",
		"priority": 1,
		"spec_version": 1,
		"base": {"scale": "tiny"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent sweeps hash differently: %s vs %s", ha, hb)
	}
	// A different tenant is a different sweep identity (cells still dedupe).
	c := a
	c.Tenant = "acme"
	hc, err := c.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hc == ha {
		t.Fatal("tenant change did not change the sweep hash")
	}
}

func TestSweepParseRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSweep([]byte(`{"base":{"workload":"amr"},"axis":[]}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	if _, err := ParseSweep([]byte(`{"base":{"workload":"amr"},"axes":[]}{}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestSweepValidateAxisErrors(t *testing.T) {
	base := RunSpec{Workload: "amr", Scale: "tiny"}
	cases := []struct {
		name   string
		axes   []SweepAxis
		reason string
	}{
		{"unknown field", []SweepAxis{{Field: "wrokload", Values: rawValues(`"amr"`)}}, "unknown field"},
		{"duplicate field", []SweepAxis{
			{Field: "scale", Values: rawValues(`"tiny"`)},
			{Field: "scale", Values: rawValues(`"small"`)},
		}, "more than one axis"},
		{"empty values", []SweepAxis{{Field: "scale", Values: nil}}, "no values"},
		{"duplicate value", []SweepAxis{{Field: "scale", Values: rawValues(`"tiny"`, `"tiny"`)}}, "duplicate value"},
		{"non-scalar value", []SweepAxis{{Field: "scale", Values: rawValues(`["tiny"]`)}}, "not a JSON scalar"},
		{"invalid json value", []SweepAxis{{Field: "scale", Values: rawValues(`tinee`)}}, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := SweepSpec{Base: base, Axes: tc.axes}
			err := s.Validate()
			if err == nil {
				t.Fatal("validated")
			}
			var ax *AxisError
			if !errors.As(err, &ax) {
				t.Fatalf("error %v is not an *AxisError", err)
			}
			if !strings.Contains(err.Error(), tc.reason) {
				t.Fatalf("error %q does not mention %q", err, tc.reason)
			}
		})
	}
	// Unknown-field errors carry the valid field list.
	err := SweepSpec{Base: base, Axes: []SweepAxis{{Field: "nope", Values: rawValues(`1`)}}}.Validate()
	var ax *AxisError
	if !errors.As(err, &ax) || len(ax.Valid) == 0 {
		t.Fatalf("unknown-field error lacks valid field list: %v", err)
	}
}

func TestSweepValidateStructural(t *testing.T) {
	if err := (SweepSpec{Base: RunSpec{Workload: "amr"}}).Validate(); err == nil ||
		!strings.Contains(err.Error(), "no axes") {
		t.Fatalf("axis-less sweep: %v", err)
	}
	s := testSweep()
	s.Priority = MaxPriority + 1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "priority") {
		t.Fatalf("over-priority sweep: %v", err)
	}
	s = testSweep()
	s.SpecVersion = SweepVersion + 1
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "spec_version") {
		t.Fatalf("future-version sweep: %v", err)
	}
}

func TestSweepCellLimit(t *testing.T) {
	// 3 axes of 16 distinct max_cycles-style values = 4096 cells: allowed.
	// One more value anywhere: rejected before any expansion work.
	vals := func(n, stride int) []json.RawMessage {
		out := make([]json.RawMessage, n)
		for i := range out {
			out[i] = json.RawMessage(json.Number(itoa(1000 + i*stride)))
		}
		return out
	}
	s := SweepSpec{
		Base: RunSpec{Workload: "amr", Scale: "tiny"},
		Axes: []SweepAxis{
			{Field: "max_cycles", Values: vals(64, 1)},
			{Field: "sample_every", Values: vals(65, 7)},
		},
	}
	if err := s.validateAxes(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Fatalf("oversized sweep: %v", err)
	}
	s.Axes[1].Values = s.Axes[1].Values[:64]
	if err := s.validateAxes(); err != nil {
		t.Fatalf("4096-cell sweep rejected: %v", err)
	}
}

func itoa(n int) string {
	return string(json.RawMessage([]byte(jsonInt(n))))
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}

func TestSweepCellErrors(t *testing.T) {
	// An axis value that expands to an invalid run fails with a CellError
	// naming the combination.
	s := SweepSpec{
		Base: RunSpec{Scale: "tiny"},
		Axes: []SweepAxis{{Field: "workload", Values: rawValues(`"amr"`, `"no-such"`)}},
	}
	_, err := s.Expand()
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %v is not a *CellError", err)
	}
	if ce.Index != 1 || !strings.Contains(ce.Values, "workload=no-such") {
		t.Fatalf("cell error points at the wrong cell: %+v", ce)
	}

	// Two combinations normalizing to the same run are rejected: "small" is
	// the default scale, so "" and "small" collide.
	dup := SweepSpec{
		Base: RunSpec{Workload: "amr"},
		Axes: []SweepAxis{{Field: "sample_every", Values: rawValues(`0`, `256`)}},
	}
	if _, err := dup.Expand(); err != nil {
		t.Fatalf("distinct cells rejected: %v", err)
	}
	// "" and "small" are distinct axis values but normalize to the same
	// run (empty scale means the default), so the expanded cells collide.
	collide := SweepSpec{
		Base: RunSpec{Workload: "amr"},
		Axes: []SweepAxis{{Field: "scale", Values: rawValues(`""`, `"small"`)}},
	}
	if _, err := collide.Expand(); err == nil {
		t.Fatal("colliding cells accepted")
	} else if !errors.As(err, &ce) {
		t.Fatalf("collision error %v is not a *CellError", err)
	}
}

// TestSweepDottedAxes: the scheduler_params fields are addressable by
// dotted path and expand into the nested struct.
func TestSweepDottedAxes(t *testing.T) {
	s := SweepSpec{
		Base: RunSpec{Workload: "amr", Scale: "tiny", Scheduler: "smx-bind"},
		Axes: []SweepAxis{
			{Field: "scheduler_params.max_levels", Values: rawValues(`2`, `4`)},
			{Field: "scheduler_params.cluster_size", Values: rawValues(`1`, `2`)},
		},
	}
	cells, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	last := cells[3].Spec
	if last.SchedulerParams == nil || last.SchedulerParams.MaxLevels != 4 || last.SchedulerParams.ClusterSize != 2 {
		t.Fatalf("dotted axes did not reach scheduler_params: %+v", last.SchedulerParams)
	}
}

func TestSweepNormalizedDefaults(t *testing.T) {
	n := testSweep().Normalized()
	if n.SpecVersion != SweepVersion || n.Tenant != DefaultTenant || n.Priority != DefaultPriority {
		t.Fatalf("defaults not filled: %+v", n)
	}
	// Normalization canonicalizes value encoding: 1e3 and 1000 are the
	// same canonical value, so the sweeps hash equal.
	a := SweepSpec{
		Base: RunSpec{Workload: "amr", Scale: "tiny"},
		Axes: []SweepAxis{{Field: "max_cycles", Values: rawValues(`1e3`, `2000`)}},
	}
	b := SweepSpec{
		Base: RunSpec{Workload: "amr", Scale: "tiny"},
		Axes: []SweepAxis{{Field: "max_cycles", Values: rawValues(`1000`, `2e3`)}},
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Fatalf("equivalent numeric values hash differently: %s vs %s", ha, hb)
	}
}
