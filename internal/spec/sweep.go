// SweepSpec describes a parameter sweep: one base RunSpec plus a set of
// axes, each naming a RunSpec field and listing the values it takes. The
// sweep expands into the cross product of the axis values — one
// content-addressed RunSpec ("cell") per combination — which is how the
// paper's evaluation matrix (8 benchmarks × launch models × schedulers) and
// every sensitivity study become a single service request instead of an
// in-process loop.
//
// Like RunSpec, a SweepSpec has Normalized / Canonical / Hash forms: the
// hash is the sweep ID the service coalesces identical submissions under.
// Cells are hashed individually with the ordinary RunSpec content address,
// which is what makes cross-sweep dedupe trivial: two overlapping sweeps
// name their shared cells by the same string.
package spec

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// SweepVersion is the SweepSpec schema version this build writes and the
// newest it accepts. It is independent of the RunSpec CurrentVersion: cells
// carry their own spec_version.
const SweepVersion = 1

// Sweep defaults filled in by Normalized.
const (
	// DefaultTenant is the fair-share tenant a sweep without one belongs to.
	DefaultTenant = "default"
	// DefaultPriority is the fair-share weight of a sweep that does not ask
	// for one.
	DefaultPriority = 1
	// MaxPriority bounds Priority: a single sweep can claim at most this
	// many scheduling slots per fair-share round within its tenant.
	MaxPriority = 16
	// MaxSweepCells bounds the expansion: the cross product of all axis
	// values may not exceed it. The service may configure a lower bound.
	MaxSweepCells = 4096
)

// AxisFields lists the RunSpec fields a sweep axis may range over, in
// canonical (RunSpec declaration) order. Scalar fields only; the two
// scheduler parameters are addressed by dotted path.
func AxisFields() []string {
	return []string{
		"workload", "scale", "model", "scheduler",
		"scheduler_params.max_levels", "scheduler_params.cluster_size",
		"warp_policy", "max_cycles", "sample_every",
		"attribution", "audit", "dense_clock",
	}
}

// AxisError reports an invalid sweep axis: which axis (by field name, or
// position when the name itself is the problem) and why, carrying the valid
// field names so callers can list them without re-deriving the set.
type AxisError struct {
	// Field is the axis' field name as submitted (possibly unknown).
	Field string
	// Index is the axis' position in SweepSpec.Axes.
	Index int
	// Reason says what is wrong.
	Reason string
	// Valid lists the allowed axis fields when the field name was the
	// problem; nil otherwise.
	Valid []string
}

func (e *AxisError) Error() string {
	msg := fmt.Sprintf("spec: sweep axis %d (%q): %s", e.Index, e.Field, e.Reason)
	if len(e.Valid) > 0 {
		msg += fmt.Sprintf(" (valid fields: %s)", strings.Join(e.Valid, ", "))
	}
	return msg
}

// CellError reports a sweep cell whose expanded RunSpec failed validation:
// the cell index in expansion order, the axis assignment that produced it,
// and the underlying spec error.
type CellError struct {
	// Index is the cell's position in expansion order.
	Index int
	// Values renders the cell's axis assignment ("workload=amr model=cdp").
	Values string
	// Err is the underlying RunSpec validation error.
	Err error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("spec: sweep cell %d (%s): %v", e.Index, e.Values, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// SweepAxis is one swept dimension: a RunSpec field and the values it
// takes. Values are JSON scalars (string, number, or bool) matching the
// field's type.
type SweepAxis struct {
	// Field names the RunSpec field (see AxisFields), e.g. "scheduler" or
	// "scheduler_params.max_levels".
	Field string `json:"field"`
	// Values lists the values the field takes, in sweep order. At least
	// one; duplicates are rejected.
	Values []json.RawMessage `json:"values"`
}

// SweepSpec describes one parameter sweep. Field order is the canonical
// JSON field order — do not reorder without bumping SweepVersion.
type SweepSpec struct {
	// SpecVersion is the sweep schema version; 0 means SweepVersion.
	SpecVersion int `json:"spec_version,omitempty"`
	// Tenant names the fair-share tenant the sweep is scheduled under;
	// empty means "default". The service round-robins cells across
	// tenants, so one tenant's giant sweep cannot starve another's.
	Tenant string `json:"tenant,omitempty"`
	// Priority is the sweep's weighted-round-robin weight among its
	// tenant's active sweeps: a priority-3 sweep gets three cells
	// scheduled for every one of a priority-1 sweep. 0 means 1; bounded
	// by MaxPriority.
	Priority int `json:"priority,omitempty"`
	// Base is the RunSpec every cell starts from. Fields named by axes
	// are overridden per cell; Base on its own need not be a valid run
	// (its workload may come from an axis).
	Base RunSpec `json:"base"`
	// Axes are the swept dimensions; the sweep is their cross product,
	// expanded with the first axis slowest (row-major). At least one.
	Axes []SweepAxis `json:"axes"`
}

// SweepCell is one expanded cell of a sweep: a fully normalized, validated
// RunSpec plus its content address and the axis assignment that produced
// it.
type SweepCell struct {
	// Index is the cell's position in expansion order.
	Index int
	// Spec is the cell's normalized RunSpec.
	Spec RunSpec
	// Hash is Spec's content address — run ID, coalescing key, and cache
	// key, identical to what a singleton submission of Spec would get.
	Hash string
	// Values renders each axis' value for this cell, aligned with
	// SweepSpec.Axes.
	Values []string
}

// ParseSweep decodes a SweepSpec from JSON, rejecting unknown fields and
// trailing garbage (same discipline as Parse: a typo must fail loudly, not
// silently change which sweep the hash names). The result is not yet
// validated or normalized.
func ParseSweep(data []byte) (SweepSpec, error) {
	var s SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return SweepSpec{}, fmt.Errorf("spec: invalid SweepSpec JSON: %w", err)
	}
	if dec.More() {
		return SweepSpec{}, fmt.Errorf("spec: trailing data after SweepSpec JSON")
	}
	return s, nil
}

// canonValue re-encodes one axis value compactly: whitespace and number
// formatting in the submitted JSON (1e3 vs 1000) must not change the
// canonical form. Only JSON scalars survive.
func canonValue(raw json.RawMessage) (json.RawMessage, error) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("invalid JSON value %q: %w", string(raw), err)
	}
	switch n := v.(type) {
	case string, bool:
	case json.Number:
		// Exponent and fraction forms collapse to the plain integer or
		// float they denote, so 1e3 and 1000 canonicalize identically —
		// integers via uint64/int64 to keep full 64-bit precision.
		if u, err := strconv.ParseUint(n.String(), 10, 64); err == nil {
			v = u
		} else if i, err := n.Int64(); err == nil {
			v = i
		} else if f, err := n.Float64(); err == nil {
			if f >= 0 && f <= math.MaxUint64 && f == math.Trunc(f) {
				v = uint64(f)
			} else if f == math.Trunc(f) && f >= math.MinInt64 && f <= math.MaxInt64 {
				v = int64(f)
			} else {
				v = f
			}
		} else {
			return nil, fmt.Errorf("invalid JSON number %q", n.String())
		}
	default:
		return nil, fmt.Errorf("value %s is not a JSON scalar (string, number, or bool)", string(raw))
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Normalized returns a copy with every defaulted field filled in and every
// axis value re-encoded canonically: the form sweeps are compared,
// marshaled, and hashed in. Axis values that are not valid JSON scalars are
// left as submitted — Validate rejects them with a structured error.
func (s SweepSpec) Normalized() SweepSpec {
	if s.SpecVersion == 0 {
		s.SpecVersion = SweepVersion
	}
	if s.Tenant == "" {
		s.Tenant = DefaultTenant
	}
	if s.Priority == 0 {
		s.Priority = DefaultPriority
	}
	s.Base = s.Base.Normalized()
	axes := make([]SweepAxis, len(s.Axes))
	for i, ax := range s.Axes {
		values := make([]json.RawMessage, len(ax.Values))
		for j, raw := range ax.Values {
			if canon, err := canonValue(raw); err == nil {
				values[j] = canon
			} else {
				values[j] = append(json.RawMessage(nil), raw...)
			}
		}
		axes[i] = SweepAxis{Field: ax.Field, Values: values}
	}
	s.Axes = axes
	return s
}

// validAxisField reports whether field may be swept.
func validAxisField(field string) bool {
	for _, f := range AxisFields() {
		if f == field {
			return true
		}
	}
	return false
}

// validateAxes checks the sweep's structure without expanding it: a
// supported version, known axis fields, no field swept twice, scalar
// values, no duplicate values, a sane priority, and a bounded cell count.
func (s SweepSpec) validateAxes() error {
	n := s.Normalized()
	if n.SpecVersion < 1 || n.SpecVersion > SweepVersion {
		return fmt.Errorf("spec: unsupported sweep spec_version %d (this build supports 1..%d)",
			n.SpecVersion, SweepVersion)
	}
	if n.Priority < 0 || n.Priority > MaxPriority {
		return fmt.Errorf("spec: sweep priority %d out of range 1..%d", n.Priority, MaxPriority)
	}
	if len(n.Axes) == 0 {
		return fmt.Errorf("spec: sweep has no axes (valid fields: %s)", strings.Join(AxisFields(), ", "))
	}
	seen := make(map[string]bool, len(n.Axes))
	cells := 1
	for i, ax := range n.Axes {
		if !validAxisField(ax.Field) {
			return &AxisError{Field: ax.Field, Index: i, Reason: "unknown field", Valid: AxisFields()}
		}
		if seen[ax.Field] {
			return &AxisError{Field: ax.Field, Index: i, Reason: "field swept by more than one axis"}
		}
		seen[ax.Field] = true
		if len(ax.Values) == 0 {
			return &AxisError{Field: ax.Field, Index: i, Reason: "axis has no values"}
		}
		dup := make(map[string]bool, len(ax.Values))
		for _, raw := range ax.Values {
			if _, err := canonValue(raw); err != nil {
				return &AxisError{Field: ax.Field, Index: i, Reason: err.Error()}
			}
			if dup[string(raw)] {
				return &AxisError{Field: ax.Field, Index: i,
					Reason: fmt.Sprintf("duplicate value %s", string(raw))}
			}
			dup[string(raw)] = true
		}
		if cells > MaxSweepCells/len(ax.Values) {
			return fmt.Errorf("spec: sweep expands to more than %d cells", MaxSweepCells)
		}
		cells *= len(ax.Values)
	}
	return nil
}

// Validate checks the normalized sweep end to end: the axis structure, and
// that every expanded cell is a valid RunSpec. A sweep that validates will
// expand without error.
func (s SweepSpec) Validate() error {
	_, err := s.Expand()
	return err
}

// CellCount returns how many cells the sweep expands to (the product of
// the axis value counts), without expanding.
func (s SweepSpec) CellCount() int {
	n := 1
	for _, ax := range s.Axes {
		n *= len(ax.Values)
	}
	return n
}

// Canonical returns the canonical byte form: the normalized sweep marshaled
// as JSON, after full validation.
func (s SweepSpec) Canonical() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(s.Normalized())
}

// Hash returns the sweep's content address: the lowercase hex SHA-256 of
// Canonical(). Identical sweeps hash identically, so the service coalesces
// a resubmitted sweep onto the in-flight one the same way it coalesces
// runs. Tenant and priority are part of the canonical form — the same axes
// under a different tenant are a different sweep (their cells still dedupe,
// because cells hash on RunSpec content alone).
func (s SweepSpec) Hash() (string, error) {
	c, err := s.Canonical()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// renderValue formats one canonical axis value for human-facing cell
// tables and CSV columns: strings lose their quotes, numbers and bools
// print as-is.
func renderValue(canon json.RawMessage) string {
	var v any
	dec := json.NewDecoder(bytes.NewReader(canon))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		return string(canon)
	}
	if str, ok := v.(string); ok {
		return str
	}
	return string(canon)
}

// setField assigns one axis value into the cell's field map, following one
// level of dotted path ("scheduler_params.max_levels").
func setField(m map[string]any, field string, value json.RawMessage) {
	var v any
	dec := json.NewDecoder(bytes.NewReader(value))
	dec.UseNumber()
	dec.Decode(&v)
	if parent, child, ok := strings.Cut(field, "."); ok {
		sub, _ := m[parent].(map[string]any)
		if sub == nil {
			sub = make(map[string]any)
		}
		sub[child] = v
		m[parent] = sub
		return
	}
	m[field] = v
}

// Expand validates the sweep and returns its cells in deterministic
// expansion order: the cross product of the axis values with the first axis
// slowest (row-major). Every cell is normalized and fully validated; a cell
// that does not name a valid run fails the whole expansion with a
// *CellError saying which combination is at fault.
func (s SweepSpec) Expand() ([]SweepCell, error) {
	if err := s.validateAxes(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	baseJSON, err := json.Marshal(n.Base)
	if err != nil {
		return nil, fmt.Errorf("spec: marshal sweep base: %w", err)
	}
	total := n.CellCount()
	cells := make([]SweepCell, 0, total)
	idx := make([]int, len(n.Axes))
	seen := make(map[string]int, total)
	for i := 0; i < total; i++ {
		// Rebuild the field map from the base each time: axis writes must
		// not leak between cells (scheduler_params is a nested map).
		var fields map[string]any
		if err := json.Unmarshal(baseJSON, &fields); err != nil {
			return nil, fmt.Errorf("spec: decode sweep base: %w", err)
		}
		values := make([]string, len(n.Axes))
		var assign []string
		for a, ax := range n.Axes {
			raw := ax.Values[idx[a]]
			setField(fields, ax.Field, raw)
			values[a] = renderValue(raw)
			assign = append(assign, ax.Field+"="+values[a])
		}
		cellJSON, err := json.Marshal(fields)
		if err != nil {
			return nil, fmt.Errorf("spec: marshal sweep cell %d: %w", i, err)
		}
		cell, err := Parse(cellJSON)
		if err != nil {
			return nil, &CellError{Index: i, Values: strings.Join(assign, " "), Err: err}
		}
		cell = cell.Normalized()
		if err := cell.Validate(); err != nil {
			return nil, &CellError{Index: i, Values: strings.Join(assign, " "), Err: err}
		}
		hash, err := cell.Hash()
		if err != nil {
			return nil, &CellError{Index: i, Values: strings.Join(assign, " "), Err: err}
		}
		if prev, dup := seen[hash]; dup {
			return nil, &CellError{Index: i, Values: strings.Join(assign, " "),
				Err: fmt.Errorf("spec: duplicate cell (same normalized run as cell %d)", prev)}
		}
		seen[hash] = i
		cells = append(cells, SweepCell{Index: i, Spec: cell, Hash: hash, Values: values})
		// Advance the odometer, last axis fastest.
		for a := len(idx) - 1; a >= 0; a-- {
			idx[a]++
			if idx[a] < len(n.Axes[a].Values) {
				break
			}
			idx[a] = 0
		}
	}
	return cells, nil
}
