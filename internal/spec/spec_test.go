package spec

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"laperm/internal/gpu"
	"laperm/internal/kernels"
)

// Golden canonical form and hash of the all-defaults bfs-citation spec.
// These are load-bearing constants: the service's cache keys and coalescing
// identity are these hashes, so an accidental change to field order,
// defaults, or the version breaks every deployed cache. Update them only
// with a deliberate SpecVersion bump.
const (
	goldenCanonical = `{"spec_version":1,"workload":"bfs-citation","scale":"small","model":"dtbl","scheduler":"adaptive-bind","warp_policy":"gto"}`
	goldenHash      = "3593bd798b63dfd0e06a99bcd7788377a66d66adc3e91169ed27e710a78b70ec"
)

func TestCanonicalAndHashGolden(t *testing.T) {
	s := RunSpec{Workload: "bfs-citation"}
	c, err := s.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(c) != goldenCanonical {
		t.Errorf("canonical form drifted:\n got %s\nwant %s", c, goldenCanonical)
	}
	h, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h != goldenHash {
		t.Errorf("hash drifted: got %s, want %s", h, goldenHash)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := RunSpec{
		Workload:        "join-gaussian",
		Scale:           "medium",
		Model:           "cdp",
		Scheduler:       "smx-bind",
		SchedulerParams: &SchedulerParams{MaxLevels: 3, ClusterSize: 2},
		WarpPolicy:      "lrr",
		MaxCycles:       1_000_000,
		SampleEvery:     512,
		Attribution:     true,
		Audit:           true,
		DenseClock:      true,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in.Normalized(), out.Normalized()) {
		t.Fatalf("round trip diverged:\n in  %+v\n out %+v", in.Normalized(), out.Normalized())
	}
}

// TestHashFieldOrderInsensitive: the hash is computed over the canonical
// form, so reordering the keys of the submitted JSON cannot change it.
func TestHashFieldOrderInsensitive(t *testing.T) {
	a, err := Parse([]byte(`{"workload":"amr","model":"cdp","scale":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Parse([]byte(`{"scale":"tiny","model":"cdp","workload":"amr"}`))
	if err != nil {
		t.Fatal(err)
	}
	ha, err := a.Hash()
	if err != nil {
		t.Fatal(err)
	}
	hb, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("field order changed the hash: %s vs %s", ha, hb)
	}
}

// TestHashDefaultInsensitive: spelling a default out hashes identically to
// omitting it.
func TestHashDefaultInsensitive(t *testing.T) {
	implicit := RunSpec{Workload: "bht"}
	explicit := RunSpec{
		SpecVersion: 1, Workload: "bht", Scale: "small", Model: "dtbl",
		Scheduler: "adaptive-bind", WarpPolicy: "gto",
		SchedulerParams: &SchedulerParams{}, // all-zero params normalize away
	}
	hi, err := implicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	he, err := explicit.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if hi != he {
		t.Errorf("explicit defaults changed the hash: %s vs %s", hi, he)
	}
}

// TestHashSensitivity: every semantic difference must change the hash.
func TestHashSensitivity(t *testing.T) {
	base := RunSpec{Workload: "bfs-citation"}
	h0, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]RunSpec{
		"workload":     {Workload: "bfs-graph5"},
		"scale":        {Workload: "bfs-citation", Scale: "tiny"},
		"model":        {Workload: "bfs-citation", Model: "cdp"},
		"scheduler":    {Workload: "bfs-citation", Scheduler: "rr"},
		"sched-params": {Workload: "bfs-citation", SchedulerParams: &SchedulerParams{MaxLevels: 2}},
		"warp-policy":  {Workload: "bfs-citation", WarpPolicy: "lrr"},
		"max-cycles":   {Workload: "bfs-citation", MaxCycles: 12345},
		"sample-every": {Workload: "bfs-citation", SampleEvery: 64},
		"attribution":  {Workload: "bfs-citation", Attribution: true},
		"audit":        {Workload: "bfs-citation", Audit: true},
		"dense-clock":  {Workload: "bfs-citation", DenseClock: true},
	}
	for name, v := range variants {
		h, err := v.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("changing %s did not change the hash", name)
		}
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	_, err := Parse([]byte(`{"workload":"amr","scael":"tiny"}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
	if !strings.Contains(err.Error(), "scael") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

func TestTrailingDataRejected(t *testing.T) {
	if _, err := Parse([]byte(`{"workload":"amr"}{"workload":"bht"}`)); err == nil {
		t.Fatal("trailing JSON accepted")
	}
}

// TestVersionBump: a spec from a future schema version must be rejected, not
// misinterpreted — and a (hypothetical) version change alters the hash, so a
// bump invalidates every cache entry by construction.
func TestVersionBump(t *testing.T) {
	future := RunSpec{SpecVersion: CurrentVersion + 1, Workload: "amr"}
	if err := future.Validate(); err == nil {
		t.Fatal("future spec_version accepted")
	}
	if _, err := future.Hash(); err == nil {
		t.Fatal("Hash succeeded on an invalid spec")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]RunSpec{
		"empty-workload":   {},
		"unknown-workload": {Workload: "nope"},
		"unknown-scale":    {Workload: "amr", Scale: "huge"},
		"unknown-model":    {Workload: "amr", Model: "sycl"},
		"unknown-sched":    {Workload: "amr", Scheduler: "fifo"},
		"unknown-warp":     {Workload: "amr", WarpPolicy: "two-level"},
		"neg-levels":       {Workload: "amr", SchedulerParams: &SchedulerParams{MaxLevels: -1}},
	}
	for name, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	var ue *kernels.UnknownWorkloadError
	if err := (RunSpec{Workload: "nope"}).Validate(); !errors.As(err, &ue) {
		t.Errorf("unknown workload error is %T, want *kernels.UnknownWorkloadError", err)
	}
}

// TestNormalizedDoesNotAliasParams: Normalized must deep-copy
// SchedulerParams so mutating the copy cannot change the original's hash.
func TestNormalizedDoesNotAliasParams(t *testing.T) {
	orig := RunSpec{Workload: "amr", SchedulerParams: &SchedulerParams{MaxLevels: 2}}
	n := orig.Normalized()
	n.SchedulerParams.MaxLevels = 9
	if orig.SchedulerParams.MaxLevels != 2 {
		t.Fatal("Normalized aliased SchedulerParams")
	}
}

// TestBuildRuns: a spec builds into a simulator that runs to completion, and
// equal specs produce identical Results.
func TestBuildRuns(t *testing.T) {
	s := RunSpec{Workload: "amr", Scale: "tiny", Scheduler: "rr", SampleEvery: 1024}
	run := func() *gpu.Result {
		sim, w, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		if w.Name != "amr" {
			t.Fatalf("Build returned workload %q", w.Name)
		}
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		res.WallTime, res.SimCyclesPerSec = 0, 0
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("equal specs produced different Results")
	}
	if len(r1.Timeline) == 0 {
		t.Error("SampleEvery did not produce a timeline")
	}
}

// TestBuildWithHook: BuildWith's customize hook sees (and can edit) the
// assembled options.
func TestBuildWithHook(t *testing.T) {
	s := RunSpec{Workload: "amr", Scale: "tiny", Scheduler: "rr"}
	dispatches := 0
	sim, _, err := s.BuildWith(func(g *gpu.Options) {
		if g.Config == nil || g.Scheduler == nil {
			t.Error("hook ran before options were assembled")
		}
		g.TraceDispatch = func(*gpu.KernelInstance, int, int, uint64) { dispatches++ }
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	if dispatches == 0 {
		t.Error("customize hook's trace was not wired through")
	}
}

// TestSchedulerParamsApplied: SchedulerParams override the Table I values
// handed to the scheduler factory and change the built scheduler.
func TestSchedulerParamsApplied(t *testing.T) {
	s := RunSpec{Workload: "amr", Scheduler: "tb-pri",
		SchedulerParams: &SchedulerParams{MaxLevels: 1}}
	gopts, _, err := s.Options()
	if err != nil {
		t.Fatal(err)
	}
	if gopts.Config.MaxPriorityLevels != 1 {
		t.Errorf("MaxPriorityLevels = %d, want 1", gopts.Config.MaxPriorityLevels)
	}
}
