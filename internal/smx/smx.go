// Package smx models one streaming multiprocessor: resident thread blocks
// with resource accounting, per-warp execution state, the warp scheduler
// (Greedy-Then-Oldest by default, per Table I), the memory coalescer, and
// block-wide barriers. The package is deliberately unaware of kernels and
// TB scheduling; the GPU engine owns those and observes SMX events through
// the Events interface.
package smx

import (
	"fmt"

	"laperm/internal/config"
	"laperm/internal/isa"
	"laperm/internal/mem"
)

// Policy selects the warp scheduling discipline.
type Policy int

const (
	// GTO is Greedy-Then-Oldest (Table I): keep issuing from the warp
	// that issued last; when it cannot issue, fall back to the oldest
	// ready warp.
	GTO Policy = iota
	// LRR is loose round-robin over resident warps.
	LRR
	// TwoLevel is the two-level scheduler of Narasiman et al.: warps are
	// partitioned into fetch groups of TwoLevelGroupSize; issue stays
	// within the active group until it has nothing ready, then moves to
	// the next group. Grouping keeps groups at different program points,
	// overlapping one group's memory stalls with another's compute.
	TwoLevel
)

// TwoLevelGroupSize is the fetch-group width of the TwoLevel policy.
const TwoLevelGroupSize = 8

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case GTO:
		return "gto"
	case LRR:
		return "lrr"
	case TwoLevel:
		return "two-level"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Events receives notifications from an SMX. The GPU engine implements it.
type Events interface {
	// Launch is invoked when a warp executes a device-side launch
	// instruction. It returns false when the launch queue (KMU pending
	// pool or DTBL aggregation buffer) is full and the warp must stall
	// and retry next cycle; retry marks such a reissue of a previously
	// stalled launch.
	Launch(smxID int, b *Block, child *isa.Kernel, now uint64, retry bool) bool
	// BlockDone is invoked when every warp of a resident block has
	// retired and its resources have been freed. The Block record may be
	// recycled for a later dispatch once the callback returns, so
	// implementations must copy out any fields they need to keep.
	BlockDone(smxID int, b *Block, now uint64)
}

// Block is one resident thread block.
type Block struct {
	Prog *isa.TB
	// Owner is an opaque reference for the GPU engine (the kernel
	// instance the block belongs to).
	Owner any
	// Seq is the global dispatch sequence number, used for age ordering.
	Seq uint64
	// DispatchCycle records when the block was placed on the SMX.
	DispatchCycle uint64
	// TBIndex is the block's index within its grid (-1 when the engine
	// did not supply one), for trace pairing of dispatch and retirement.
	TBIndex int
	// Tag is the reuse-attribution identity every memory access of the
	// block carries (mem.NoAccessor when untagged).
	Tag mem.Accessor

	warps     []*warp
	arrived   int // warps waiting at the current barrier
	doneWarps int
	// retireAt is the completion cycle of the block's last instruction;
	// resources are held until then.
	retireAt uint64
	dead     bool
}

type warp struct {
	block *Block
	idx   int
	pc    int
	// readyAt is the first cycle the warp may issue again.
	readyAt uint64
	// pending holds coalesced line addresses of the current memory
	// instruction not yet accepted by the memory system (MSHR stalls).
	// It always aliases lineBuf — a warp instruction coalesces to at most
	// WarpSize lines — so issuing memory instructions never allocates.
	pending []uint64
	// lineBuf is the warp-owned coalescer scratch buffer backing pending.
	lineBuf [config.WarpSize]uint64
	// pendingMax is the latest completion cycle among the transactions
	// already issued for the current memory instruction.
	pendingMax uint64
	atBarrier  bool
	done       bool
	// launchStalled marks a warp blocked at a launch instruction by a
	// full launch queue; it retries the launch every cycle.
	launchStalled bool
}

func (w *warp) stream() []isa.Inst { return w.block.Prog.Warps[w.idx] }

func (w *warp) canIssue(now uint64) bool {
	return !w.done && !w.atBarrier && w.readyAt <= now
}

// Stats aggregates execution statistics for one SMX.
type Stats struct {
	// ThreadInsts counts issued instructions weighted by active lanes
	// (the numerator of IPC).
	ThreadInsts int64
	// WarpInsts counts issued warp instructions.
	WarpInsts int64
	// ResidentCycles counts cycles with at least one resident warp.
	ResidentCycles uint64
	// IssueCycles counts cycles in which at least one instruction
	// issued.
	IssueCycles uint64
	// BlocksCompleted counts retired thread blocks.
	BlocksCompleted int
	// MemStallEvents counts cycles a warp spent blocked on a full MSHR
	// table.
	MemStallEvents int64
	// LaunchStallEvents counts cycles a warp spent blocked on a full
	// launch queue (KMU pending pool or DTBL aggregation buffer).
	LaunchStallEvents int64
}

// SMX is one streaming multiprocessor.
type SMX struct {
	ID     int
	cfg    *config.GPU
	mem    *mem.System
	events Events
	policy Policy

	blocks []*Block
	warps  []*warp // issue-age order (dispatch order)

	usedThreads int
	usedRegs    int
	usedShmem   int

	greedy      *warp
	rrCursor    int
	activeGroup int
	nextSeq     *uint64
	stats       Stats
	needSweep   bool
	// retiring holds blocks whose warps have all finished issuing but
	// whose final instructions are still in flight.
	retiring []*Block
	// nextReady is a conservative lower bound on the next cycle any
	// non-stalled resident warp can issue or a pending block can retire;
	// Tick returns immediately before it when no warp is stalled.
	nextReady uint64
	// launchStalledWarps / memStalledWarps count warps blocked on a full
	// launch queue / MSHR table. Each such warp retries exactly once per
	// cycle (a failed attempt sets readyAt past the current cycle), so
	// these counts are also the per-cycle stall-event rates the
	// fast-forward clock bulk-applies over skipped spans.
	launchStalledWarps int
	memStalledWarps    int
	// scanShort records that the last issue scan stopped at the issue
	// width (or, for TwoLevel, inside the active group) without visiting
	// every warp: a stalled warp may have been starved of its retry, its
	// last observation of the blocking queue or MSHR table is stale, and
	// the stall-wake horizons cannot be trusted until a full scan runs —
	// NextEvent pins the next cycle while this holds.
	scanShort bool
	// horizon/horizonAt cache the last NextEvent answer: the SMX provably
	// cannot act on any cycle in [horizonAt, horizon), because nothing an
	// SMX observes changes inside the window — its warps, retiring blocks,
	// and (private) MSHR table only move when it ticks or the engine
	// dispatches onto it, and AddBlockAttr invalidates the cache. TickFF
	// uses the window to elide whole per-cycle ticks on processed cycles
	// that some other component pinned.
	horizon   uint64
	horizonAt uint64
	// freeBlocks / freeWarps recycle retired Block and warp records so
	// steady-state dispatch allocates nothing: sweep pushes a dead block's
	// records here and AddBlockAttr pops (and fully reinitializes) them.
	// Pool sizes are bounded by the SMX's peak residency. A retired Block
	// keeps its fields until the memory is reused by a later dispatch, so
	// a BlockDone observer must copy out anything it needs to keep.
	freeBlocks []*Block
	freeWarps  []*warp
}

// New builds an SMX. nextSeq is a shared dispatch-sequence counter owned by
// the GPU engine so that block ages are globally ordered.
func New(id int, cfg *config.GPU, m *mem.System, ev Events, policy Policy, nextSeq *uint64) *SMX {
	return &SMX{ID: id, cfg: cfg, mem: m, events: ev, policy: policy, nextSeq: nextSeq}
}

// CanFit reports whether the block's resource demands fit in the SMX's
// currently free resources (threads, TB slots, registers, shared memory).
func (s *SMX) CanFit(tb *isa.TB) bool {
	return len(s.blocks) < s.cfg.TBsPerSMX &&
		s.usedThreads+tb.Threads <= s.cfg.ThreadsPerSMX &&
		s.usedRegs+tb.Registers() <= s.cfg.RegistersPerSMX &&
		s.usedShmem+tb.SharedMemBytes <= s.cfg.SharedMemPerSMX
}

// AddBlock places a thread block on the SMX with no attribution identity
// (tests and standalone use). The caller must have checked CanFit; AddBlock
// panics otherwise.
func (s *SMX) AddBlock(tb *isa.TB, owner any, now uint64) *Block {
	return s.AddBlockAttr(tb, owner, -1, mem.NoAccessor, now)
}

// AddBlockAttr is AddBlock carrying the block's grid index and the
// reuse-attribution accessor its memory accesses are tagged with. Both are
// set before any retirement callback can fire, so even an empty block's
// BlockDone observes them.
func (s *SMX) AddBlockAttr(tb *isa.TB, owner any, tbIndex int, tag mem.Accessor, now uint64) *Block {
	if !s.CanFit(tb) {
		panic(fmt.Sprintf("smx %d: AddBlock without resources for %d threads", s.ID, tb.Threads))
	}
	if now < s.nextReady {
		s.nextReady = now
	}
	s.horizon = 0 // new warps can issue this very cycle
	b := s.newBlock()
	b.Prog, b.Owner, b.Seq, b.DispatchCycle, b.TBIndex, b.Tag = tb, owner, *s.nextSeq, now, tbIndex, tag
	*s.nextSeq++
	s.usedThreads += tb.Threads
	s.usedRegs += tb.Registers()
	s.usedShmem += tb.SharedMemBytes
	s.blocks = append(s.blocks, b)
	for i := 0; i < tb.NumWarps(); i++ {
		w := s.newWarp()
		w.block, w.idx, w.readyAt = b, i, now
		if len(w.stream()) == 0 {
			w.done = true
			b.doneWarps++
		}
		b.warps = append(b.warps, w)
		s.warps = append(s.warps, w)
	}
	// A block whose every warp is empty completes immediately.
	if b.doneWarps == len(b.warps) {
		s.retire(b, now)
		s.sweep()
	}
	return b
}

// ResidentBlocks returns the number of live blocks on the SMX.
func (s *SMX) ResidentBlocks() int { return len(s.blocks) }

// Idle reports whether the SMX has no resident warps.
func (s *SMX) Idle() bool { return len(s.warps) == 0 }

// Stats returns accumulated statistics.
func (s *SMX) Stats() Stats { return s.stats }

// NextEvent returns the earliest cycle >= next at which the SMX can make
// progress on its own: the cached nextReady horizon (the earliest issuable
// non-stalled warp or pending block retirement), lowered to the MSHR stall
// wake-up bound when warps are blocked on a full MSHR table — a stalled
// retry can only advance when the table frees a slot at a known
// fill-completion cycle or the cycle after another warp's access makes the
// blocked line mergeable (mem.NextStallWake covers both). Warps stalled on
// a full launch queue contribute nothing: the queue only frees through
// KMU/TB dispatch or a block retirement, each of which is already a horizon
// source, and the stalled warps are re-scanned on every processed cycle. It
// returns ^uint64(0) when the SMX holds no work at all, so the engine's
// fast-forward clock may skip it entirely until a dispatch makes it
// actionable again. Engine-driven changes (AddBlockAttr) lower nextReady
// themselves, so the bound stays valid across skipped spans.
//
// All of this presumes every stalled warp retried on the last processed
// cycle; when the issue scan stopped short (scanShort), a starved warp's
// view of the blocking resource is stale and the next cycle is pinned until
// a full scan restores the invariant.
func (s *SMX) NextEvent(next uint64) uint64 {
	h := s.nextEvent(next)
	s.horizonAt, s.horizon = next, h
	return h
}

func (s *SMX) nextEvent(next uint64) uint64 {
	if len(s.warps) == 0 {
		return ^uint64(0)
	}
	if (s.memStalledWarps > 0 || s.launchStalledWarps > 0) && s.scanShort {
		return next
	}
	h := s.nextReady
	if s.memStalledWarps > 0 {
		if r := s.mem.NextStallWake(s.ID, next); r < h {
			h = r
		}
	}
	if h < next {
		return next
	}
	return h
}

// TickFF is Tick under the fast-forward clock: when the cached NextEvent
// window proves the SMX cannot act at cycle now, the whole tick — including
// the per-cycle issue scan a memory-stalled SMX would otherwise pay — is
// replaced by a one-cycle SkipIdle. This is the engine's span-skip argument
// applied to a single SMX on a cycle some other component pinned: inside
// [horizonAt, horizon) the SMX's warps, retiring blocks, and private MSHR
// table cannot change except through its own tick or an engine dispatch
// (which invalidates the cache), so every elided stall retry would have
// failed. Warps stalled on a full launch queue disqualify the elision — the
// queue can free through another component's action on this very cycle,
// which the cached window does not see.
func (s *SMX) TickFF(now uint64) {
	if s.launchStalledWarps == 0 && s.horizonAt <= now && now < s.horizon {
		s.SkipIdle(1)
		return
	}
	s.Tick(now)
}

// SkipIdle credits an elided span of `cycles` cycles, all strictly before
// every engine horizon, and returns the number of elided failing launch
// attempts (for the engine's launch-backpressure cycle counter). On such
// cycles a dense Tick counts resident occupancy and retries each stalled
// warp exactly once — the retry must fail, since the blocking queue or MSHR
// table cannot change state before the horizon — so bulk-adding occupancy
// and the per-cycle stall rates here keeps Stats (and the load-imbalance
// metric derived from them) byte-identical to dense clocking.
func (s *SMX) SkipIdle(cycles uint64) (launchRetries uint64) {
	if len(s.warps) == 0 {
		return 0
	}
	s.stats.ResidentCycles += cycles
	s.stats.MemStallEvents += int64(uint64(s.memStalledWarps) * cycles)
	launchRetries = uint64(s.launchStalledWarps) * cycles
	s.stats.LaunchStallEvents += int64(launchRetries)
	return launchRetries
}

// Tick advances the SMX by one cycle, issuing up to IssueWidth warp
// instructions and retiring blocks whose final instructions have drained.
func (s *SMX) Tick(now uint64) {
	if len(s.warps) == 0 {
		return
	}
	s.stats.ResidentCycles++
	// Stalled warps retry (and re-fail) every cycle regardless of the
	// ready horizon, so the early return applies only to stall-free SMXs.
	if now < s.nextReady && s.launchStalledWarps == 0 && s.memStalledWarps == 0 {
		return
	}
	// Retire blocks whose last in-flight instruction has completed.
	if len(s.retiring) > 0 {
		keep := s.retiring[:0]
		for _, b := range s.retiring {
			if b.retireAt <= now {
				s.retire(b, now)
			} else {
				keep = append(keep, b)
			}
		}
		s.retiring = keep
	}
	issued := 0
	switch s.policy {
	case GTO:
		// Greedy warp first, then oldest (s.warps is in dispatch
		// order). A warp that issues gets readyAt > now, so one pass
		// suffices.
		if s.greedy != nil && s.greedy.canIssue(now) && s.issue(s.greedy, now) {
			issued++
		}
		for _, w := range s.warps {
			if issued >= s.cfg.IssueWidth {
				break
			}
			if w.canIssue(now) && s.issue(w, now) {
				issued++
				s.greedy = w
			}
		}
	case LRR:
		n := len(s.warps)
		for i := 0; i < n && issued < s.cfg.IssueWidth; i++ {
			w := s.warps[(s.rrCursor+i)%n]
			if w.canIssue(now) && s.issue(w, now) {
				issued++
				s.rrCursor = (s.rrCursor + i + 1) % n
			}
		}
	case TwoLevel:
		n := len(s.warps)
		groups := (n + TwoLevelGroupSize - 1) / TwoLevelGroupSize
		for g := 0; g < groups && issued == 0; g++ {
			gi := (s.activeGroup + g) % groups
			lo := gi * TwoLevelGroupSize
			hi := lo + TwoLevelGroupSize
			if hi > n {
				hi = n
			}
			for i := lo; i < hi && issued < s.cfg.IssueWidth; i++ {
				if w := s.warps[i]; w.canIssue(now) && s.issue(w, now) {
					issued++
				}
			}
			if issued > 0 {
				s.activeGroup = gi
			}
		}
	}
	if issued > 0 {
		s.stats.IssueCycles++
	}
	// A scan that stopped early (issue width reached, or TwoLevel staying
	// inside its active group) may have skipped a stalled warp's retry.
	if s.policy == TwoLevel {
		s.scanShort = issued > 0
	} else {
		s.scanShort = issued >= s.cfg.IssueWidth
	}
	if s.needSweep {
		s.sweep()
	}
	// Recompute the next cycle anything can happen: the earliest issuable
	// warp or the earliest pending block retirement. Warps waiting at a
	// barrier are excluded: their release happens inside the tick in
	// which the last live warp arrives, which updates readyAt. Stalled
	// warps are excluded too — their failed retries re-arm readyAt every
	// cycle and would pin the horizon; NextEvent accounts for their actual
	// wake-up sources instead.
	next := ^uint64(0)
	for _, w := range s.warps {
		if !w.done && !w.atBarrier && !w.launchStalled && len(w.pending) == 0 && w.readyAt < next {
			next = w.readyAt
		}
	}
	for _, b := range s.retiring {
		if b.retireAt < next {
			next = b.retireAt
		}
	}
	s.nextReady = next
}

// issue executes one instruction (or resumes a stalled memory instruction)
// for warp w and reports whether an instruction issued.
func (s *SMX) issue(w *warp, now uint64) bool {
	if len(w.pending) > 0 {
		return s.issueMem(w, nil, now)
	}
	in := &w.stream()[w.pc]
	switch in.Kind {
	case isa.OpCompute:
		w.readyAt = now + uint64(in.Latency)
		s.count(in)
		s.advance(w, now)
		return true
	case isa.OpLoad, isa.OpStore:
		return s.issueMem(w, in, now)
	case isa.OpBarrier:
		w.atBarrier = true
		w.block.arrived++
		s.count(in)
		s.releaseBarrier(w.block, now)
		return true
	case isa.OpLaunch:
		if !s.events.Launch(s.ID, w.block, w.block.Prog.Launches[in.Launch], now, w.launchStalled) {
			// Launch queue full: stall the warp and retry next
			// cycle (backpressure on the parent kernel).
			if !w.launchStalled {
				w.launchStalled = true
				s.launchStalledWarps++
			}
			w.readyAt = now + 1
			s.stats.LaunchStallEvents++
			return false
		}
		if w.launchStalled {
			w.launchStalled = false
			s.launchStalledWarps--
		}
		w.readyAt = now + 1
		s.count(in)
		s.advance(w, now)
		return true
	}
	panic(fmt.Sprintf("smx %d: unknown op kind %v", s.ID, in.Kind))
}

// issueMem issues the (possibly resumed) transactions of a memory
// instruction. in is nil when resuming a stalled instruction.
func (s *SMX) issueMem(w *warp, in *isa.Inst, now uint64) bool {
	wasStalled := in == nil // resuming implies a prior MSHR rejection
	if in != nil {
		w.pending = isa.CoalesceInto(w.lineBuf[:0], in.Addrs)
		w.pendingMax = 0
	} else {
		in = &w.stream()[w.pc]
	}
	isStore := in.Kind == isa.OpStore
	for len(w.pending) > 0 {
		line := w.pending[0]
		var done uint64
		if isStore {
			// Stores retire without blocking the warp; the drain
			// cycle is accounted inside the memory system.
			s.mem.StoreAs(s.ID, line, now, w.block.Tag)
			done = now + 1
		} else {
			var ok bool
			done, ok = s.mem.LoadAs(s.ID, line, now, w.block.Tag)
			if !ok {
				// MSHRs full: retry remaining transactions
				// next cycle.
				if !wasStalled {
					s.memStalledWarps++
				}
				w.readyAt = now + 1
				s.stats.MemStallEvents++
				return false
			}
		}
		if done > w.pendingMax {
			w.pendingMax = done
		}
		w.pending = w.pending[1:]
	}
	if wasStalled {
		s.memStalledWarps--
	}
	w.readyAt = w.pendingMax
	if isStore {
		w.readyAt = now + 1
	}
	s.count(in)
	s.advance(w, now)
	return true
}

func (s *SMX) count(in *isa.Inst) {
	s.stats.WarpInsts++
	s.stats.ThreadInsts += int64(in.ActiveLanes)
}

// advance moves the warp past its current instruction. At stream end the
// warp stops issuing; its block's resources are released only once its last
// instruction completes (w.readyAt), matching hardware block retirement.
func (s *SMX) advance(w *warp, now uint64) {
	w.pc++
	if w.pc < len(w.stream()) {
		return
	}
	w.done = true
	b := w.block
	b.doneWarps++
	if w.readyAt > b.retireAt {
		b.retireAt = w.readyAt
	}
	// A finishing warp may be the last arrival a barrier was waiting on.
	s.releaseBarrier(b, now)
	if b.doneWarps == len(b.warps) && !b.dead {
		if b.retireAt <= now {
			s.retire(b, now)
		} else {
			s.retiring = append(s.retiring, b)
		}
	}
}

// releaseBarrier releases the block's barrier if every live warp has
// arrived.
func (s *SMX) releaseBarrier(b *Block, now uint64) {
	if b.arrived == 0 || b.arrived < len(b.warps)-b.doneWarps {
		return
	}
	b.arrived = 0
	for _, bw := range b.warps {
		if bw.atBarrier {
			bw.atBarrier = false
			bw.readyAt = now + 1
			s.advance(bw, now)
		}
	}
}

// retire frees the block's resources and notifies the engine.
func (s *SMX) retire(b *Block, now uint64) {
	b.dead = true
	s.usedThreads -= b.Prog.Threads
	s.usedRegs -= b.Prog.Registers()
	s.usedShmem -= b.Prog.SharedMemBytes
	s.stats.BlocksCompleted++
	s.needSweep = true
	s.events.BlockDone(s.ID, b, now)
}

// PendingWork reports whether the SMX holds work that will make progress on
// its own: a warp that can issue or is waiting out an instruction latency,
// or a block draining its final in-flight instructions. Warps stalled at a
// launch and warps parked at a barrier are excluded — their release depends
// on the engine (or on other warps) unblocking them, so they must not mask
// a scheduling deadlock from the forward-progress watchdog.
func (s *SMX) PendingWork() bool {
	for _, w := range s.warps {
		if !w.done && !w.atBarrier && !w.launchStalled {
			return true
		}
	}
	return len(s.retiring) > 0
}

// CheckInvariants validates the SMX's resource accounting against a
// recomputation from its resident blocks, returning a descriptive error on
// the first inconsistency. The engine's invariant auditor calls it
// periodically when auditing is enabled.
func (s *SMX) CheckInvariants() error {
	var threads, regs, shmem, liveWarps int
	for _, b := range s.blocks {
		if b.dead && !s.needSweep {
			return fmt.Errorf("smx %d: dead block (seq %d) still resident after sweep", s.ID, b.Seq)
		}
		if b.dead {
			continue
		}
		threads += b.Prog.Threads
		regs += b.Prog.Registers()
		shmem += b.Prog.SharedMemBytes
		liveWarps += len(b.warps)
		if b.doneWarps < 0 || b.doneWarps > len(b.warps) {
			return fmt.Errorf("smx %d: block (seq %d) doneWarps %d of %d warps", s.ID, b.Seq, b.doneWarps, len(b.warps))
		}
		if b.arrived > len(b.warps)-b.doneWarps {
			return fmt.Errorf("smx %d: block (seq %d) has %d warps at barrier, only %d live", s.ID, b.Seq, b.arrived, len(b.warps)-b.doneWarps)
		}
	}
	if threads != s.usedThreads || regs != s.usedRegs || shmem != s.usedShmem {
		return fmt.Errorf("smx %d: accounted (threads %d, regs %d, shmem %d) != recomputed (%d, %d, %d)",
			s.ID, s.usedThreads, s.usedRegs, s.usedShmem, threads, regs, shmem)
	}
	if s.usedThreads > s.cfg.ThreadsPerSMX || s.usedRegs > s.cfg.RegistersPerSMX || s.usedShmem > s.cfg.SharedMemPerSMX {
		return fmt.Errorf("smx %d: occupancy (threads %d, regs %d, shmem %d) exceeds limits (%d, %d, %d)",
			s.ID, s.usedThreads, s.usedRegs, s.usedShmem,
			s.cfg.ThreadsPerSMX, s.cfg.RegistersPerSMX, s.cfg.SharedMemPerSMX)
	}
	if len(s.blocks) > s.cfg.TBsPerSMX {
		return fmt.Errorf("smx %d: %d resident blocks exceed the %d-TB limit", s.ID, len(s.blocks), s.cfg.TBsPerSMX)
	}
	if !s.needSweep && liveWarps != len(s.warps) {
		return fmt.Errorf("smx %d: %d warps in issue list, blocks hold %d", s.ID, len(s.warps), liveWarps)
	}
	var launchStalled, memStalled int
	for _, w := range s.warps {
		if w.launchStalled {
			launchStalled++
		}
		if len(w.pending) > 0 {
			memStalled++
		}
	}
	if launchStalled != s.launchStalledWarps || memStalled != s.memStalledWarps {
		return fmt.Errorf("smx %d: stalled-warp counts (launch %d, mem %d) != recomputed (%d, %d)",
			s.ID, s.launchStalledWarps, s.memStalledWarps, launchStalled, memStalled)
	}
	return nil
}

// newBlock pops a recycled Block record or allocates a fresh one. All
// engine-owned fields are reset here; the caller assigns the rest.
func (s *SMX) newBlock() *Block {
	if n := len(s.freeBlocks); n > 0 {
		b := s.freeBlocks[n-1]
		s.freeBlocks[n-1] = nil
		s.freeBlocks = s.freeBlocks[:n-1]
		b.warps = b.warps[:0]
		b.arrived, b.doneWarps, b.retireAt, b.dead = 0, 0, 0, false
		return b
	}
	return &Block{}
}

// newWarp pops a recycled warp record or allocates a fresh one. All fields
// except the caller-assigned identity (block, idx, readyAt) are reset here.
func (s *SMX) newWarp() *warp {
	if n := len(s.freeWarps); n > 0 {
		w := s.freeWarps[n-1]
		s.freeWarps[n-1] = nil
		s.freeWarps = s.freeWarps[:n-1]
		w.pc, w.pending, w.pendingMax = 0, nil, 0
		w.atBarrier, w.done, w.launchStalled = false, false, false
		return w
	}
	return &warp{}
}

// sweep removes dead blocks and their warps from the issue lists and
// recycles their records onto the free pools for the next dispatch.
func (s *SMX) sweep() {
	s.needSweep = false
	warps := s.warps[:0]
	for _, w := range s.warps {
		if !w.block.dead {
			warps = append(warps, w)
		}
	}
	for i := len(warps); i < len(s.warps); i++ {
		s.warps[i] = nil
	}
	s.warps = warps
	blocks := s.blocks[:0]
	for _, b := range s.blocks {
		if !b.dead {
			blocks = append(blocks, b)
			continue
		}
		// The warps were just dropped from the issue list; the block's own
		// warp list keeps them reachable for recycling.
		s.freeWarps = append(s.freeWarps, b.warps...)
		s.freeBlocks = append(s.freeBlocks, b)
	}
	for i := len(blocks); i < len(s.blocks); i++ {
		s.blocks[i] = nil
	}
	s.blocks = blocks
	if s.greedy != nil && s.greedy.block.dead {
		s.greedy = nil
	}
	if s.rrCursor >= len(s.warps) {
		s.rrCursor = 0
	}
}
