package smx

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/isa"
	"laperm/internal/mem"
)

// recorder implements Events and records notifications. refuse, when
// positive, rejects that many launches first (simulating a full launch
// queue); retries counts reissues of stalled launches.
type recorder struct {
	launches []*isa.Kernel
	launchBy []int
	done     []*Block
	doneAt   []uint64
	refuse   int
	retries  int
}

func (r *recorder) Launch(smxID int, b *Block, child *isa.Kernel, now uint64, retry bool) bool {
	if retry {
		r.retries++
	}
	if r.refuse > 0 {
		r.refuse--
		return false
	}
	r.launches = append(r.launches, child)
	r.launchBy = append(r.launchBy, smxID)
	return true
}

func (r *recorder) BlockDone(smxID int, b *Block, now uint64) {
	r.done = append(r.done, b)
	r.doneAt = append(r.doneAt, now)
}

func newTestSMX(t *testing.T, policy Policy) (*SMX, *recorder, *config.GPU) {
	t.Helper()
	cfg := config.SmallTest()
	rec := &recorder{}
	var seq uint64
	s := New(0, &cfg, mem.NewSystem(&cfg), rec, policy, &seq)
	return s, rec, &cfg
}

// run ticks the SMX until it idles or maxCycles elapse, returning the final
// cycle.
func run(t *testing.T, s *SMX, maxCycles uint64) uint64 {
	t.Helper()
	var now uint64
	for ; now < maxCycles; now++ {
		s.Tick(now)
		if s.Idle() {
			return now
		}
	}
	t.Fatalf("SMX did not idle within %d cycles", maxCycles)
	return now
}

func TestComputeOnlyBlockRetires(t *testing.T) {
	s, rec, _ := newTestSMX(t, GTO)
	tb := isa.NewTB(64).ComputeN(2, 5).Build()
	s.AddBlock(tb, "owner", 0)
	run(t, s, 1000)
	if len(rec.done) != 1 {
		t.Fatalf("BlockDone notifications = %d, want 1", len(rec.done))
	}
	if rec.done[0].Owner != "owner" {
		t.Error("owner not preserved")
	}
	st := s.Stats()
	if st.ThreadInsts != 64*5 {
		t.Errorf("ThreadInsts = %d, want %d", st.ThreadInsts, 64*5)
	}
	if st.WarpInsts != 2*5 {
		t.Errorf("WarpInsts = %d, want %d", st.WarpInsts, 2*5)
	}
	if st.BlocksCompleted != 1 {
		t.Errorf("BlocksCompleted = %d", st.BlocksCompleted)
	}
}

func TestResourceAccounting(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(cfg.ThreadsPerSMX/2).Resources(8, 0).Compute(100).Build()
	if !s.CanFit(tb) {
		t.Fatal("first block should fit")
	}
	s.AddBlock(tb, nil, 0)
	if !s.CanFit(tb) {
		t.Fatal("second block should fit (half threads each)")
	}
	s.AddBlock(tb, nil, 0)
	if s.CanFit(tb) {
		t.Fatal("third block must not fit: threads exhausted")
	}
	if s.ResidentBlocks() != 2 {
		t.Errorf("ResidentBlocks = %d", s.ResidentBlocks())
	}
}

func TestCanFitTBSlots(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	tiny := isa.NewTB(32).Resources(1, 0).Compute(1).Build()
	for i := 0; i < cfg.TBsPerSMX; i++ {
		if !s.CanFit(tiny) {
			t.Fatalf("block %d should fit", i)
		}
		s.AddBlock(tiny, nil, 0)
	}
	if s.CanFit(tiny) {
		t.Fatal("TB slot limit not enforced")
	}
}

func TestCanFitSharedMemAndRegisters(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	shm := isa.NewTB(32).Resources(1, cfg.SharedMemPerSMX).Compute(1).Build()
	s.AddBlock(shm, nil, 0)
	if s.CanFit(isa.NewTB(32).Resources(1, 1).Compute(1).Build()) {
		t.Error("shared memory limit not enforced")
	}

	s2, _, cfg2 := newTestSMX(t, GTO)
	regs := isa.NewTB(32).Resources(cfg2.RegistersPerSMX/32, 0).Compute(1).Build()
	s2.AddBlock(regs, nil, 0)
	if s2.CanFit(isa.NewTB(32).Resources(1, 0).Compute(1).Build()) {
		t.Error("register limit not enforced")
	}
}

func TestAddBlockPanicsWithoutResources(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(cfg.ThreadsPerSMX).Resources(1, 0).Compute(1).Build()
	s.AddBlock(tb, nil, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("AddBlock without resources did not panic")
		}
	}()
	s.AddBlock(tb, nil, 0)
}

func TestResourcesFreedOnRetire(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(cfg.ThreadsPerSMX).Resources(1, 0).Compute(1).Build()
	s.AddBlock(tb, nil, 0)
	run(t, s, 100)
	if !s.CanFit(tb) {
		t.Fatal("resources not freed after block retired")
	}
}

func TestMemoryLatencyBlocksWarp(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	// Single warp: cold load then one compute. The compute cannot issue
	// before the DRAM latency has elapsed.
	tb := isa.NewTB(32).
		Load(func(tid int) uint64 { return uint64(tid) * 4 }).
		Compute(1).
		Build()
	s.AddBlock(tb, nil, 0)
	end := run(t, s, 10000)
	if end < uint64(cfg.DRAMLatency) {
		t.Errorf("block finished at %d, before DRAM latency %d", end, cfg.DRAMLatency)
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// Two warps each issue a cold load; the second should issue its load
	// while the first waits, so total time is much less than 2x DRAM.
	s, _, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(64).
		Load(func(tid int) uint64 { return uint64(tid) * 4 }).
		Compute(1).
		Build()
	s.AddBlock(tb, nil, 0)
	end := run(t, s, 10000)
	if end > uint64(2*cfg.DRAMLatency) {
		t.Errorf("no latency hiding: end=%d", end)
	}
}

func TestStoreDoesNotBlockWarp(t *testing.T) {
	s, _, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(32).
		Store(func(tid int) uint64 { return uint64(tid) * 4 }).
		Compute(1).
		Build()
	s.AddBlock(tb, nil, 0)
	end := run(t, s, 10000)
	if end >= uint64(cfg.L2HitLatency) {
		t.Errorf("store blocked the warp: end=%d", end)
	}
}

func TestBarrierSynchronisesWarps(t *testing.T) {
	s, _, _ := newTestSMX(t, GTO)
	// Warp 0 computes for 50 cycles before the barrier; warp 1 reaches it
	// immediately. After the barrier both run one more compute.
	tb := isa.NewTB(64).Build()
	tb.Warps[0] = []isa.Inst{
		{Kind: isa.OpCompute, Latency: 50, ActiveLanes: 32},
		{Kind: isa.OpBarrier, ActiveLanes: 32},
		{Kind: isa.OpCompute, Latency: 1, ActiveLanes: 32},
	}
	tb.Warps[1] = []isa.Inst{
		{Kind: isa.OpBarrier, ActiveLanes: 32},
		{Kind: isa.OpCompute, Latency: 1, ActiveLanes: 32},
	}
	s.AddBlock(tb, nil, 0)
	end := run(t, s, 1000)
	if end < 50 {
		t.Errorf("barrier released too early: end=%d", end)
	}
}

func TestBarrierReleasedByRetiringWarp(t *testing.T) {
	s, _, _ := newTestSMX(t, GTO)
	// Warp 1 retires without a barrier while warp 0 waits at one; the
	// barrier must still release (live-warp counting).
	tb := isa.NewTB(64).Build()
	tb.Warps[0] = []isa.Inst{
		{Kind: isa.OpCompute, Latency: 1, ActiveLanes: 32},
		{Kind: isa.OpBarrier, ActiveLanes: 32},
		{Kind: isa.OpCompute, Latency: 1, ActiveLanes: 32},
	}
	tb.Warps[1] = []isa.Inst{
		{Kind: isa.OpCompute, Latency: 40, ActiveLanes: 32},
	}
	s.AddBlock(tb, nil, 0)
	run(t, s, 1000) // must not hang
}

func TestLaunchEvent(t *testing.T) {
	s, rec, _ := newTestSMX(t, GTO)
	child := isa.NewKernel("child").Add(isa.NewTB(32).Compute(1).Build()).Build()
	tb := isa.NewTB(32).Compute(1).Launch(5, child).Compute(1).Build()
	s.AddBlock(tb, nil, 0)
	run(t, s, 1000)
	if len(rec.launches) != 1 || rec.launches[0] != child {
		t.Fatalf("launches = %v", rec.launches)
	}
	if rec.launchBy[0] != 0 {
		t.Errorf("launch attributed to SMX %d", rec.launchBy[0])
	}
}

func TestEmptyBlockRetiresImmediately(t *testing.T) {
	s, rec, _ := newTestSMX(t, GTO)
	tb := isa.NewTB(32).Build() // no instructions
	s.AddBlock(tb, nil, 7)
	if len(rec.done) != 1 {
		t.Fatal("empty block did not retire at AddBlock")
	}
	if !s.Idle() {
		t.Error("SMX not idle after empty block")
	}
	if s.CanFit(isa.NewTB(s.cfg.ThreadsPerSMX).Resources(1, 0).Build()) == false {
		t.Error("resources not freed for empty block")
	}
}

func TestMSHRStallRetries(t *testing.T) {
	cfg := config.SmallTest()
	cfg.L1MSHRs = 1
	rec := &recorder{}
	var seq uint64
	s := New(0, &cfg, mem.NewSystem(&cfg), rec, GTO, &seq)
	// One warp issuing a load that coalesces to 4 distinct lines: with a
	// single MSHR the transactions trickle out but must all complete.
	tb := isa.NewTB(32).
		Load(func(tid int) uint64 { return uint64(tid) * config.LineSize }).
		Build()
	s.AddBlock(tb, nil, 0)
	var now uint64
	for ; now < 100000; now++ {
		s.Tick(now)
		if s.Idle() {
			break
		}
	}
	if !s.Idle() {
		t.Fatal("stalled load never completed")
	}
	if s.Stats().MemStallEvents == 0 {
		t.Error("expected MSHR stall events")
	}
}

func TestGTOPrefersGreedyWarp(t *testing.T) {
	s, _, _ := newTestSMX(t, GTO)
	// Two single-warp blocks with back-to-back unit computes. GTO should
	// drain one warp before touching the other when IssueWidth=1.
	s.cfg.IssueWidth = 1
	a := isa.NewTB(32).ComputeN(1, 4).Build()
	b := isa.NewTB(32).ComputeN(1, 4).Build()
	s.AddBlock(a, "a", 0)
	s.AddBlock(b, "b", 0)

	// Tick cycle by cycle and observe block completion order: with
	// greedy, block a (older) finishes all 4 instructions first.
	rec := s.events.(*recorder)
	var now uint64
	for ; now < 100 && len(rec.done) < 2; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 2 {
		t.Fatal("blocks did not finish")
	}
	if rec.done[0].Owner != "a" {
		t.Errorf("GTO finished %v first, want a", rec.done[0].Owner)
	}
	// The first completion should be well before the second (serial
	// greedy draining), not interleaved evenly.
	if rec.doneAt[1]-rec.doneAt[0] < 3 {
		t.Errorf("completions at %v: expected greedy separation", rec.doneAt)
	}
}

func TestLRRInterleavesWarps(t *testing.T) {
	s, rec, _ := newTestSMX(t, LRR)
	s.cfg.IssueWidth = 1
	a := isa.NewTB(32).ComputeN(1, 4).Build()
	b := isa.NewTB(32).ComputeN(1, 4).Build()
	s.AddBlock(a, "a", 0)
	s.AddBlock(b, "b", 0)
	var now uint64
	for ; now < 100 && len(rec.done) < 2; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 2 {
		t.Fatal("blocks did not finish")
	}
	// Round robin finishes them within one cycle of each other.
	if d := int64(rec.doneAt[1]) - int64(rec.doneAt[0]); d > 2 {
		t.Errorf("LRR completions too far apart: %v", rec.doneAt)
	}
}

func TestIssueWidthBoundsThroughput(t *testing.T) {
	// 4 single-warp blocks of 1 compute each, IssueWidth 2: needs >= 2
	// issue cycles.
	s, rec, _ := newTestSMX(t, GTO)
	s.cfg.IssueWidth = 2
	for i := 0; i < 4; i++ {
		s.AddBlock(isa.NewTB(32).Compute(1).Build(), i, 0)
	}
	var now uint64
	for ; now < 100 && len(rec.done) < 4; now++ {
		s.Tick(now)
	}
	if now < 2 {
		t.Errorf("4 warp-insts at width 2 completed in %d cycles", now)
	}
	if got := s.Stats().IssueCycles; got < 2 {
		t.Errorf("IssueCycles = %d, want >= 2", got)
	}
}

func TestPolicyString(t *testing.T) {
	if GTO.String() != "gto" || LRR.String() != "lrr" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestSeqCounterShared(t *testing.T) {
	cfg := config.SmallTest()
	var seq uint64
	rec := &recorder{}
	m := mem.NewSystem(&cfg)
	s0 := New(0, &cfg, m, rec, GTO, &seq)
	s1 := New(1, &cfg, m, rec, GTO, &seq)
	b0 := s0.AddBlock(isa.NewTB(32).Compute(1).Build(), nil, 0)
	b1 := s1.AddBlock(isa.NewTB(32).Compute(1).Build(), nil, 0)
	if b0.Seq >= b1.Seq {
		t.Errorf("dispatch sequence not global: %d then %d", b0.Seq, b1.Seq)
	}
}

func TestTwoLevelPolicyCompletesWork(t *testing.T) {
	s, rec, _ := newTestSMX(t, TwoLevel)
	// Mixed compute/memory blocks exercising group switching.
	for i := 0; i < 4; i++ {
		tb := isa.NewTB(64).
			Load(func(tid int) uint64 { return uint64(i*8192 + tid*4) }).
			ComputeN(3, 4).
			Build()
		s.AddBlock(tb, i, 0)
	}
	var now uint64
	for ; now < 100000 && len(rec.done) < 4; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 4 {
		t.Fatalf("two-level completed %d of 4 blocks", len(rec.done))
	}
	if s.Stats().ThreadInsts != 4*(64+4*64) {
		t.Errorf("ThreadInsts = %d", s.Stats().ThreadInsts)
	}
}

func TestTwoLevelStaysWithinActiveGroup(t *testing.T) {
	// With IssueWidth 2 and two single-warp blocks per group, the first
	// group's warps should both issue before any second-group warp.
	s, rec, _ := newTestSMX(t, TwoLevel)
	s.cfg.IssueWidth = 2
	// TwoLevelGroupSize is 8, so put 8 one-warp blocks in group 0... the
	// small config allows only 4 TBs; use 4 (all one group).
	for i := 0; i < 4; i++ {
		s.AddBlock(isa.NewTB(32).ComputeN(1, 2).Build(), i, 0)
	}
	var now uint64
	for ; now < 1000 && len(rec.done) < 4; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 4 {
		t.Fatal("work incomplete")
	}
}

func TestPolicyStringTwoLevel(t *testing.T) {
	if TwoLevel.String() != "two-level" {
		t.Errorf("TwoLevel.String() = %q", TwoLevel.String())
	}
}

// TestBlockHoldsResourcesUntilLastInstructionCompletes is the regression
// test for block retirement: a block whose last instruction is a long
// compute must keep its SMX resources until the latency elapses, not free
// them at issue.
func TestBlockHoldsResourcesUntilLastInstructionCompletes(t *testing.T) {
	s, rec, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(cfg.ThreadsPerSMX).Resources(1, 0).Compute(400).Build()
	s.AddBlock(tb, nil, 0)
	// Tick well past issue but before completion: resources still held.
	for now := uint64(0); now < 100; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 0 {
		t.Fatal("block retired before its 400-cycle compute completed")
	}
	if s.CanFit(isa.NewTB(32).Compute(1).Build()) {
		t.Fatal("resources freed while final instruction in flight")
	}
	for now := uint64(100); now < 1000 && len(rec.done) == 0; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 1 {
		t.Fatal("block never retired")
	}
	if rec.doneAt[0] < 400 {
		t.Errorf("block retired at %d, before compute completion 400", rec.doneAt[0])
	}
}

// TestBlockEndingInLoadRetiresAfterData: same property for a trailing
// memory instruction.
func TestBlockEndingInLoadRetiresAfterData(t *testing.T) {
	s, rec, cfg := newTestSMX(t, GTO)
	tb := isa.NewTB(32).Load(func(tid int) uint64 { return uint64(tid) * 4 }).Build()
	s.AddBlock(tb, nil, 0)
	for now := uint64(0); now < 10000 && len(rec.done) == 0; now++ {
		s.Tick(now)
	}
	if len(rec.done) != 1 {
		t.Fatal("block never retired")
	}
	if rec.doneAt[0] < uint64(cfg.DRAMLatency) {
		t.Errorf("block retired at %d, before its cold load returned (~%d)",
			rec.doneAt[0], cfg.DRAMLatency)
	}
}

// TestLaunchBackpressureStallsWarp: a refused launch stalls the warp, which
// retries every cycle until accepted; the following instructions still
// execute and the stall cycles are counted.
func TestLaunchBackpressureStallsWarp(t *testing.T) {
	s, rec, _ := newTestSMX(t, GTO)
	rec.refuse = 5
	child := isa.NewKernel("child").Add(isa.NewTB(32).Compute(1).Build()).Build()
	tb := isa.NewTB(32).Launch(0, child).Compute(3).Build()
	s.AddBlock(tb, nil, 0)
	run(t, s, 1000)
	if len(rec.launches) != 1 {
		t.Fatalf("launches = %d, want 1", len(rec.launches))
	}
	if rec.retries != 5 {
		t.Errorf("retries = %d, want 5 (one per refused cycle)", rec.retries)
	}
	if st := s.Stats(); st.LaunchStallEvents != 5 {
		t.Errorf("LaunchStallEvents = %d, want 5", st.LaunchStallEvents)
	}
	if len(rec.done) != 1 {
		t.Error("block never retired after stalled launch")
	}
}

// TestCheckInvariantsCleanDuringRun: the auditor passes at every cycle of a
// normal multi-block execution.
func TestCheckInvariantsCleanDuringRun(t *testing.T) {
	s, _, _ := newTestSMX(t, GTO)
	for i := 0; i < 3; i++ {
		tb := isa.NewTB(64).Compute(5).LoadSeq(uint64(i)*4096, 4).Compute(5).Build()
		s.AddBlock(tb, nil, 0)
	}
	var now uint64
	for ; now < 10000 && !s.Idle(); now++ {
		s.Tick(now)
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
	}
	if !s.Idle() {
		t.Fatal("SMX did not idle")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("idle: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption: corrupting the resource accounting
// is reported.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	s, _, _ := newTestSMX(t, GTO)
	s.AddBlock(isa.NewTB(64).Compute(100).Build(), nil, 0)
	s.usedThreads += 32 // simulate an accounting bug
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("corrupted thread accounting not detected")
	}
}
