package smx

// Allocation pin for the SMX pipeline: with warm block/warp free pools, a
// full dispatch → execute → retire block lifecycle — including coalescing
// into the warp's inline line buffer, MSHR traffic, a barrier, and the
// retirement sweep — allocates nothing. The budget is an explicit 0 so any
// regression (a fresh slice on the issue path, a lost freelist recycle)
// fails this test rather than quietly serializing the worker pool again.

import (
	"testing"

	"laperm/internal/config"
	"laperm/internal/isa"
	"laperm/internal/mem"
)

// nopEvents accepts every launch and drops retirement notifications, so the
// measured window contains only SMX-side work.
type nopEvents struct{}

func (nopEvents) Launch(int, *Block, *isa.Kernel, uint64, bool) bool { return true }
func (nopEvents) BlockDone(int, *Block, uint64)                      {}

func TestBlockLifecycleZeroAlloc(t *testing.T) {
	cfg := config.SmallTest()
	var seq uint64
	s := New(0, &cfg, mem.NewSystem(&cfg), nopEvents{}, GTO, &seq)
	tb := isa.NewTB(64).
		Load(func(tid int) uint64 { return uint64(tid) * 4 }).
		ComputeN(3, 4).
		Barrier().
		Store(func(tid int) uint64 { return 0x1000_0000 + uint64(tid)*4 }).
		Build()
	var now uint64
	lifecycle := func() {
		s.AddBlock(tb, nil, now)
		for !s.Idle() {
			s.Tick(now)
			now++
		}
	}
	// The first lifecycle warms the free pools and the issue-list backing.
	lifecycle()
	if allocs := testing.AllocsPerRun(200, lifecycle); allocs != 0 {
		t.Errorf("dispatch/execute/retire lifecycle: %.2f allocs per block, want 0", allocs)
	}
}
