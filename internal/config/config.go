// Package config defines the architectural configuration of the simulated
// GPU. The default configuration reproduces Table I of the LaPerm paper
// (ISCA 2016): an NVIDIA Kepler K20c with the GK110 architecture as modelled
// by GPGPU-Sim for CUDA compute capability 3.5.
package config

import (
	"errors"
	"fmt"
)

// WarpSize is the number of threads per warp on every supported
// architecture. The BSP execution model of the paper (and of CUDA/OpenCL)
// fixes this at 32.
const WarpSize = 32

// LineSize is the cache line (and memory transaction) size in bytes for both
// cache levels. Table I: 128 bytes. The shared-footprint methodology of
// Section III-A also counts references in units of 128-byte blocks.
const LineSize = 128

// OverflowPolicy selects what happens when a device-side launch finds its
// launch queue (the KMU pending pool or the DTBL aggregation buffer) full.
type OverflowPolicy int

const (
	// StallWarp is the hardware-faithful default: the launching warp
	// stalls and retries the launch instruction every cycle until an
	// entry frees up, exerting backpressure on the parent kernel.
	StallWarp OverflowPolicy = iota
	// DropToKMU applies to DTBL only: a TB-group launch that finds the
	// aggregation buffer full falls back to the CDP device-kernel path
	// (KMU -> KDU), paying the full CDP launch latency. This mirrors the
	// DTBL fallback where groups that cannot be coalesced are demoted to
	// ordinary device kernels.
	DropToKMU
)

// String returns the policy name.
func (p OverflowPolicy) String() string {
	switch p {
	case StallWarp:
		return "stall-warp"
	case DropToKMU:
		return "drop-to-kmu"
	}
	return fmt.Sprintf("OverflowPolicy(%d)", int(p))
}

// GPU holds every architectural parameter of the simulated device.
//
// The zero value is not usable; start from KeplerK20c and override fields,
// then call Validate.
type GPU struct {
	// Name labels the configuration in reports.
	Name string

	// CoreClockMHz is the SMX clock. Table I: 706 MHz.
	CoreClockMHz int
	// MemClockMHz is the memory clock. Table I: 2600 MHz. The timing model
	// runs on the core clock; the memory clock is folded into the DRAM
	// bandwidth figure (see DRAMTransPer1000Cycles).
	MemClockMHz int

	// NumSMX is the number of streaming multiprocessors. Table I: 13.
	NumSMX int
	// SMXsPerCluster groups SMXs into clusters sharing one L1 cache
	// (Section IV-B: "in some GPUs, SMXs are divided into multiple
	// clusters where ... the L1 cache is shared by all the SMXs in a
	// cluster"). The SMX-binding schedulers then bind child TBs to the
	// whole cluster. 1 (the K20c arrangement) means private L1s.
	SMXsPerCluster int

	// Per-SMX resource limits (Table I: 2048 threads, 16 TBs, 65536
	// registers, 32 KB shared memory).
	ThreadsPerSMX   int
	TBsPerSMX       int
	RegistersPerSMX int
	SharedMemPerSMX int

	// IssueWidth is the number of warp instructions an SMX can issue per
	// cycle (Kepler has four warp schedulers).
	IssueWidth int

	// L1 cache geometry (per SMX). Table I: 32 KB, 128-byte lines.
	L1Bytes int
	L1Assoc int
	// L1MSHRs bounds the outstanding misses per SMX L1; a full MSHR table
	// stalls the issuing warp.
	L1MSHRs int

	// L2 cache geometry (shared, banked). Table I: 1536 KB.
	L2Bytes int
	L2Assoc int
	// L2Banks is the number of address-interleaved L2 partitions, each in
	// front of one memory controller.
	L2Banks int

	// Latencies in core cycles from issue to data return.
	L1HitLatency int
	L2HitLatency int
	DRAMLatency  int
	// DRAMTransPer1000Cycles caps DRAM bandwidth: the number of 128-byte
	// transactions the off-chip interface can complete per 1000 core
	// cycles. K20c: 208 GB/s at 706 MHz core clock is about 2300
	// transactions per 1000 cycles.
	DRAMTransPer1000Cycles int

	// MaxConcurrentKernels is the number of Kernel Distributor Unit
	// entries. Table I: 32. It also bounds the device kernels visible to
	// the TB scheduler under CDP (Section IV-C).
	MaxConcurrentKernels int

	// MaxPriorityLevels is L, the maximum nesting level for TB-Pri
	// priority assignment (Section IV-A). Nested launches deeper than L
	// are clamped to L.
	MaxPriorityLevels int

	// CDPLaunchLatency is the device-kernel launch latency in core cycles
	// (time from the launch instruction until the child kernel is visible
	// to the KMU). The paper adopts the measured CDP latency methodology
	// of the DTBL paper, where CDP launches cost thousands of cycles.
	CDPLaunchLatency int
	// DTBLLaunchLatency is the TB-group launch latency in core cycles.
	// DTBL launches are lightweight (tens of cycles).
	DTBLLaunchLatency int

	// TBDispatchPerCycle is how many TBs the SMX scheduler may dispatch
	// per cycle (Section II-B: one TB per cycle).
	TBDispatchPerCycle int

	// KMUPendingCapacity bounds the KMU pending-kernel pool: device-side
	// kernel launches that have executed but not yet been moved into a
	// KDU entry (in-flight launch latency plus the KMU queues). CUDA's
	// default device pending-launch count is 2048 grids; a warp whose
	// launch finds the pool full stalls until an entry frees. 0 means
	// unbounded. Host-launched kernels do not consume pool entries.
	KMUPendingCapacity int
	// DTBLAggBufferEntries bounds the DTBL aggregation buffer: TB groups
	// that have been launched but whose thread blocks have not all been
	// dispatched yet. A full buffer triggers DTBLOverflowPolicy. 0 means
	// unbounded.
	DTBLAggBufferEntries int
	// DTBLOverflowPolicy selects the behaviour of a DTBL launch that
	// finds the aggregation buffer full: StallWarp (default) or
	// DropToKMU.
	DTBLOverflowPolicy OverflowPolicy

	// PMKLaunchLatency is the persistent-microkernel launch latency in
	// core cycles: a task-queue push plus the dequeue by a scheduler warp
	// resident on the SMX. Cheaper than DTBL's hardware coalescing path —
	// no KMU or distributor interaction at all.
	PMKLaunchLatency int
	// PMKTaskQueueEntries bounds the persistent microkernel's device-side
	// task queue: children that have been published but whose thread
	// blocks have not all been dispatched yet. The queue is a
	// memory-backed ring consumed by the resident scheduler warps; a
	// producer that finds it full spins until an entry frees (there is no
	// KMU fallback). 0 means unbounded.
	PMKTaskQueueEntries int
}

// KeplerK20c returns the baseline configuration of Table I.
func KeplerK20c() GPU {
	return GPU{
		Name:                   "NVIDIA Kepler K20c (GK110)",
		CoreClockMHz:           706,
		MemClockMHz:            2600,
		NumSMX:                 13,
		SMXsPerCluster:         1,
		ThreadsPerSMX:          2048,
		TBsPerSMX:              16,
		RegistersPerSMX:        65536,
		SharedMemPerSMX:        32 * 1024,
		IssueWidth:             4,
		L1Bytes:                32 * 1024,
		L1Assoc:                4,
		L1MSHRs:                32,
		L2Bytes:                1536 * 1024,
		L2Assoc:                8,
		L2Banks:                6,
		L1HitLatency:           28,
		L2HitLatency:           190,
		DRAMLatency:            340,
		DRAMTransPer1000Cycles: 2300,
		MaxConcurrentKernels:   32,
		MaxPriorityLevels:      4,
		CDPLaunchLatency:       5000,
		DTBLLaunchLatency:      75,
		TBDispatchPerCycle:     1,
		KMUPendingCapacity:     2048,
		DTBLAggBufferEntries:   1024,
		// DropToKMU in the baked configurations: deeply nested workloads
		// can fill the aggregation buffer with TB groups that are waiting
		// for SMX space held by their stalled parents, which under
		// StallWarp is a genuine scheduling deadlock (the watchdog reports
		// it). The DTBL fallback demotes the overflow to the kernel path
		// instead, trading launch latency for guaranteed progress.
		DTBLOverflowPolicy: DropToKMU,
		PMKLaunchLatency:   40,
		// Sized like the KMU pending pool rather than the aggregation
		// buffer: the task queue stalls producers when full (no KMU
		// fallback exists), so it must exceed any workload's peak live
		// child count the way the 2048-grid pending pool does.
		PMKTaskQueueEntries: 8192,
	}
}

// SmallTest returns a reduced configuration (4 SMXs, small caches) for unit
// tests that need short simulations with observable cache pressure. It is
// not a model of real hardware.
func SmallTest() GPU {
	g := KeplerK20c()
	g.Name = "small-test"
	g.NumSMX = 4
	g.ThreadsPerSMX = 512
	g.TBsPerSMX = 4
	g.RegistersPerSMX = 16384
	g.SharedMemPerSMX = 16 * 1024
	g.L1Bytes = 4 * 1024
	g.L2Bytes = 64 * 1024
	g.L2Banks = 2
	g.CDPLaunchLatency = 500
	g.DTBLLaunchLatency = 20
	// The KMU pending pool (2048) is inherited, not downscaled: under CDP
	// with StallWarp semantics a pool smaller than a workload's peak live
	// kernel count can wedge the machine (parents hold every TB slot while
	// stalled on the full pool), and several small-scale benchmarks carry
	// hundreds of concurrent children. Only the aggregation buffer shrinks;
	// its DropToKMU fallback always makes progress.
	g.DTBLAggBufferEntries = 128
	// The PMK task queue is inherited at full size for the same reason as
	// the KMU pool (stalling producers must never wedge a saturated small
	// machine); only its latency scales down with the other launch costs.
	g.PMKLaunchLatency = 12
	return g
}

// Clone returns an independent copy of the configuration. GPU deliberately
// contains no pointer, slice, or map fields (TestGPUHasNoReferenceFields
// enforces this), so a value copy is a deep copy: concurrent simulations can
// each take a Clone and mutate it freely without racing. Keep it that way
// when adding parameters.
func (g *GPU) Clone() GPU { return *g }

// L1Sets returns the number of sets in each SMX's L1 cache.
func (g *GPU) L1Sets() int { return g.L1Bytes / (LineSize * g.L1Assoc) }

// L2SetsPerBank returns the number of sets in each L2 bank.
func (g *GPU) L2SetsPerBank() int { return g.L2Bytes / (LineSize * g.L2Assoc * g.L2Banks) }

// WarpsPerSMX returns the maximum resident warps per SMX.
func (g *GPU) WarpsPerSMX() int { return g.ThreadsPerSMX / WarpSize }

// NumClusters returns the number of L1-sharing SMX clusters.
func (g *GPU) NumClusters() int { return g.NumSMX / g.SMXsPerCluster }

// ClusterOf returns the cluster an SMX belongs to.
func (g *GPU) ClusterOf(smx int) int { return smx / g.SMXsPerCluster }

// Validate reports a descriptive error if the configuration is internally
// inconsistent (non-positive resources, cache geometry that does not divide
// evenly, etc.).
func (g *GPU) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{g.NumSMX > 0, "NumSMX must be positive"},
		{g.SMXsPerCluster > 0, "SMXsPerCluster must be positive"},
		{g.SMXsPerCluster > 0 && g.NumSMX%g.SMXsPerCluster == 0, "SMXsPerCluster must divide NumSMX"},
		{g.ThreadsPerSMX >= WarpSize, "ThreadsPerSMX must be at least one warp"},
		{g.ThreadsPerSMX%WarpSize == 0, "ThreadsPerSMX must be a multiple of the warp size"},
		{g.TBsPerSMX > 0, "TBsPerSMX must be positive"},
		{g.RegistersPerSMX > 0, "RegistersPerSMX must be positive"},
		{g.SharedMemPerSMX >= 0, "SharedMemPerSMX must be non-negative"},
		{g.IssueWidth > 0, "IssueWidth must be positive"},
		{g.L1Bytes > 0 && g.L1Assoc > 0, "L1 geometry must be positive"},
		{g.L2Bytes > 0 && g.L2Assoc > 0 && g.L2Banks > 0, "L2 geometry must be positive"},
		{g.L1MSHRs > 0, "L1MSHRs must be positive"},
		{g.L1HitLatency > 0, "L1HitLatency must be positive"},
		{g.L2HitLatency > g.L1HitLatency, "L2HitLatency must exceed L1HitLatency"},
		{g.DRAMLatency > g.L2HitLatency, "DRAMLatency must exceed L2HitLatency"},
		{g.DRAMTransPer1000Cycles > 0, "DRAMTransPer1000Cycles must be positive"},
		{g.MaxConcurrentKernels > 0, "MaxConcurrentKernels must be positive"},
		{g.MaxPriorityLevels > 0, "MaxPriorityLevels must be positive"},
		{g.CDPLaunchLatency >= 0, "CDPLaunchLatency must be non-negative"},
		{g.DTBLLaunchLatency >= 0, "DTBLLaunchLatency must be non-negative"},
		{g.TBDispatchPerCycle > 0, "TBDispatchPerCycle must be positive"},
		{g.KMUPendingCapacity >= 0, "KMUPendingCapacity must be non-negative (0 = unbounded)"},
		{g.DTBLAggBufferEntries >= 0, "DTBLAggBufferEntries must be non-negative (0 = unbounded)"},
		{g.DTBLOverflowPolicy == StallWarp || g.DTBLOverflowPolicy == DropToKMU,
			"DTBLOverflowPolicy must be StallWarp or DropToKMU"},
		{g.PMKLaunchLatency >= 0, "PMKLaunchLatency must be non-negative"},
		{g.PMKTaskQueueEntries >= 0, "PMKTaskQueueEntries must be non-negative (0 = unbounded)"},
	}
	for _, c := range checks {
		if !c.ok {
			return errors.New("config: " + c.msg)
		}
	}
	if g.L1Bytes%(LineSize*g.L1Assoc) != 0 {
		return fmt.Errorf("config: L1Bytes %d not divisible into %d-way %d-byte-line sets", g.L1Bytes, g.L1Assoc, LineSize)
	}
	if g.L2Bytes%(LineSize*g.L2Assoc*g.L2Banks) != 0 {
		return fmt.Errorf("config: L2Bytes %d not divisible into %d banks of %d-way %d-byte-line sets", g.L2Bytes, g.L2Banks, g.L2Assoc, LineSize)
	}
	return nil
}

// String summarises the configuration on one line.
func (g *GPU) String() string {
	return fmt.Sprintf("%s: %d SMXs, %d threads/SMX, L1 %dKB, L2 %dKB, %d KDU entries",
		g.Name, g.NumSMX, g.ThreadsPerSMX, g.L1Bytes/1024, g.L2Bytes/1024, g.MaxConcurrentKernels)
}
