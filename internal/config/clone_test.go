package config

import (
	"reflect"
	"testing"
)

func TestCloneIsIndependent(t *testing.T) {
	g := KeplerK20c()
	c := g.Clone()
	c.NumSMX = 99
	c.DTBLLaunchLatency = 12345
	if g.NumSMX != 13 || g.DTBLLaunchLatency != 75 {
		t.Errorf("mutating a clone changed the original: %+v", g)
	}
	if d := g.Clone(); !reflect.DeepEqual(d, g) {
		t.Errorf("Clone() = %+v, want %+v", d, g)
	}
}

// TestGPUHasNoReferenceFields enforces the contract Clone documents: GPU
// must stay a pure value type (no pointers, slices, maps, channels, funcs,
// or interfaces) so a struct copy is a deep copy and concurrent simulations
// can clone configurations without sharing mutable state.
func TestGPUHasNoReferenceFields(t *testing.T) {
	var check func(t *testing.T, typ reflect.Type, path string)
	check = func(t *testing.T, typ reflect.Type, path string) {
		switch typ.Kind() {
		case reflect.Ptr, reflect.Slice, reflect.Map, reflect.Chan, reflect.Func, reflect.Interface:
			t.Errorf("field %s has reference kind %v; this breaks Clone's deep-copy guarantee", path, typ.Kind())
		case reflect.Struct:
			for i := 0; i < typ.NumField(); i++ {
				f := typ.Field(i)
				check(t, f.Type, path+"."+f.Name)
			}
		case reflect.Array:
			check(t, typ.Elem(), path+"[]")
		}
	}
	check(t, reflect.TypeOf(GPU{}), "GPU")
}
