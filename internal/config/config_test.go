package config

import (
	"strings"
	"testing"
)

// TestTable1 asserts every parameter the paper lists in Table I.
func TestTable1(t *testing.T) {
	g := KeplerK20c()
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"CoreClockMHz", g.CoreClockMHz, 706},
		{"MemClockMHz", g.MemClockMHz, 2600},
		{"NumSMX", g.NumSMX, 13},
		{"ThreadsPerSMX", g.ThreadsPerSMX, 2048},
		{"TBsPerSMX", g.TBsPerSMX, 16},
		{"RegistersPerSMX", g.RegistersPerSMX, 65536},
		{"SharedMemPerSMX", g.SharedMemPerSMX, 32 * 1024},
		{"L1Bytes", g.L1Bytes, 32 * 1024},
		{"L2Bytes", g.L2Bytes, 1536 * 1024},
		{"LineSize", LineSize, 128},
		{"MaxConcurrentKernels", g.MaxConcurrentKernels, 32},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("Table I %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestKeplerValidates(t *testing.T) {
	g := KeplerK20c()
	if err := g.Validate(); err != nil {
		t.Fatalf("KeplerK20c should validate: %v", err)
	}
}

func TestSmallTestValidates(t *testing.T) {
	g := SmallTest()
	if err := g.Validate(); err != nil {
		t.Fatalf("SmallTest should validate: %v", err)
	}
}

func TestDerivedGeometry(t *testing.T) {
	g := KeplerK20c()
	if got := g.WarpsPerSMX(); got != 64 {
		t.Errorf("WarpsPerSMX = %d, want 64", got)
	}
	if got := g.L1Sets(); got != 64 {
		t.Errorf("L1Sets = %d, want 64 (32KB / (128B * 4-way))", got)
	}
	// 1536 KB / (128 B * 8-way * 6 banks) = 256 sets per bank.
	if got := g.L2SetsPerBank(); got != 256 {
		t.Errorf("L2SetsPerBank = %d, want 256", got)
	}
	// Sanity: total L2 lines match the byte capacity.
	lines := g.L2SetsPerBank() * g.L2Assoc * g.L2Banks
	if lines*LineSize != g.L2Bytes {
		t.Errorf("L2 lines %d * %d B = %d, want %d", lines, LineSize, lines*LineSize, g.L2Bytes)
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*GPU)
	}{
		{"zero SMXs", func(g *GPU) { g.NumSMX = 0 }},
		{"sub-warp threads", func(g *GPU) { g.ThreadsPerSMX = 16 }},
		{"non-warp-multiple threads", func(g *GPU) { g.ThreadsPerSMX = 100 }},
		{"zero TBs", func(g *GPU) { g.TBsPerSMX = 0 }},
		{"zero registers", func(g *GPU) { g.RegistersPerSMX = 0 }},
		{"negative shared mem", func(g *GPU) { g.SharedMemPerSMX = -1 }},
		{"zero issue width", func(g *GPU) { g.IssueWidth = 0 }},
		{"zero L1", func(g *GPU) { g.L1Bytes = 0 }},
		{"zero L2 banks", func(g *GPU) { g.L2Banks = 0 }},
		{"zero MSHRs", func(g *GPU) { g.L1MSHRs = 0 }},
		{"L2 latency below L1", func(g *GPU) { g.L2HitLatency = g.L1HitLatency }},
		{"DRAM latency below L2", func(g *GPU) { g.DRAMLatency = g.L2HitLatency }},
		{"zero DRAM bandwidth", func(g *GPU) { g.DRAMTransPer1000Cycles = 0 }},
		{"zero KDU entries", func(g *GPU) { g.MaxConcurrentKernels = 0 }},
		{"zero priority levels", func(g *GPU) { g.MaxPriorityLevels = 0 }},
		{"negative CDP latency", func(g *GPU) { g.CDPLaunchLatency = -1 }},
		{"negative DTBL latency", func(g *GPU) { g.DTBLLaunchLatency = -1 }},
		{"zero dispatch rate", func(g *GPU) { g.TBDispatchPerCycle = 0 }},
		{"indivisible L1", func(g *GPU) { g.L1Bytes = 1000 }},
		{"indivisible L2", func(g *GPU) { g.L2Bytes = 100000 }},
		{"negative KMU pool", func(g *GPU) { g.KMUPendingCapacity = -1 }},
		{"negative agg buffer", func(g *GPU) { g.DTBLAggBufferEntries = -1 }},
		{"unknown overflow policy", func(g *GPU) { g.DTBLOverflowPolicy = OverflowPolicy(9) }},
	}
	for _, m := range mutations {
		g := KeplerK20c()
		m.mut(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a broken config", m.name)
		}
	}
}

func TestLaunchPoolDefaults(t *testing.T) {
	g := KeplerK20c()
	if g.KMUPendingCapacity != 2048 {
		t.Errorf("KMUPendingCapacity = %d, want 2048 (CUDA default pending launch count)", g.KMUPendingCapacity)
	}
	if g.DTBLAggBufferEntries <= 0 {
		t.Errorf("DTBLAggBufferEntries = %d, want bounded by default", g.DTBLAggBufferEntries)
	}
	if g.DTBLOverflowPolicy != DropToKMU {
		t.Errorf("DTBLOverflowPolicy = %v, want DropToKMU in the baked config", g.DTBLOverflowPolicy)
	}
	var zero GPU
	if zero.DTBLOverflowPolicy != StallWarp {
		t.Errorf("zero-value policy = %v, want StallWarp (hardware-faithful default)", zero.DTBLOverflowPolicy)
	}
	if StallWarp.String() != "stall-warp" || DropToKMU.String() != "drop-to-kmu" {
		t.Error("OverflowPolicy names wrong")
	}
}

func TestStringMentionsKeyFacts(t *testing.T) {
	g := KeplerK20c()
	s := g.String()
	for _, want := range []string{"13 SMXs", "2048 threads", "L1 32KB", "L2 1536KB", "32 KDU"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestClusters(t *testing.T) {
	g := KeplerK20c()
	if g.SMXsPerCluster != 1 {
		t.Fatalf("K20c SMXsPerCluster = %d, want 1 (private L1s)", g.SMXsPerCluster)
	}
	if g.NumClusters() != 13 {
		t.Errorf("NumClusters = %d, want 13", g.NumClusters())
	}
	g.NumSMX = 12
	g.SMXsPerCluster = 4
	if err := g.Validate(); err != nil {
		t.Fatalf("clustered config should validate: %v", err)
	}
	if g.NumClusters() != 3 {
		t.Errorf("NumClusters = %d, want 3", g.NumClusters())
	}
	for smx, want := range []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2} {
		if got := g.ClusterOf(smx); got != want {
			t.Errorf("ClusterOf(%d) = %d, want %d", smx, got, want)
		}
	}
	g.SMXsPerCluster = 5 // does not divide 12
	if err := g.Validate(); err == nil {
		t.Error("non-dividing cluster size accepted")
	}
	g.SMXsPerCluster = 0
	if err := g.Validate(); err == nil {
		t.Error("zero cluster size accepted")
	}
}
