package mem

import (
	"fmt"

	"laperm/internal/config"
)

// mshrEntry is one outstanding L1 miss.
type mshrEntry struct {
	lineID   uint64
	complete uint64
}

// noExpiry is the nextExpire sentinel of an empty MSHR table.
const noExpiry = ^uint64(0)

// mshrTable bounds and merges outstanding misses for one SMX's L1. An entry
// is live at cycle t exactly while t < complete; liveness is a pure function
// of the query cycle, so expiry is evaluated lazily — the table never needs
// to observe the cycles in between two queries, which makes it jump-safe
// under the engine's fast-forward clock: querying once after a skipped span
// yields the same answers as polling every elided cycle would have.
type mshrTable struct {
	entries []mshrEntry
	cap     int
	// nextExpire caches the minimum completion cycle over entries (noExpiry
	// when empty): prune is O(1) until that cycle arrives, and it is the
	// exact cycle a full table frees a slot — the release horizon the
	// fast-forward clock uses to wake MSHR-stalled warps.
	nextExpire uint64
	// lastAdd is the cycle of the most recent add (noExpiry before the
	// first). A new entry can turn a stalled warp's blocked line into an
	// MSHR merge (and, once the fill lands, an L1 hit) on the very next
	// cycle, so lastAdd+1 is a wake horizon alongside nextExpire.
	lastAdd uint64
}

// lookup returns the completion cycle of an outstanding miss to lineID, if
// one exists at cycle now (expired entries are pruned first).
func (m *mshrTable) lookup(lineID, now uint64) (uint64, bool) {
	m.prune(now)
	for i := range m.entries {
		if m.entries[i].lineID == lineID {
			return m.entries[i].complete, true
		}
	}
	return 0, false
}

// prune drops entries whose fills have completed by cycle now. It is a no-op
// until nextExpire, so steady-state queries cost one comparison.
func (m *mshrTable) prune(now uint64) {
	if now < m.nextExpire {
		return
	}
	keep := m.entries[:0]
	next := uint64(noExpiry)
	for _, e := range m.entries {
		if e.complete > now {
			keep = append(keep, e)
			if e.complete < next {
				next = e.complete
			}
		}
	}
	m.entries = keep
	m.nextExpire = next
}

func (m *mshrTable) full(now uint64) bool {
	m.prune(now)
	return len(m.entries) >= m.cap
}

func (m *mshrTable) add(lineID, complete, now uint64) {
	m.entries = append(m.entries, mshrEntry{lineID: lineID, complete: complete})
	if complete < m.nextExpire {
		m.nextExpire = complete
	}
	m.lastAdd = now
}

// System is the complete memory hierarchy: one L1 (with MSHRs) per SMX,
// address-interleaved L2 banks, and a bandwidth-limited DRAM.
type System struct {
	cfg *config.GPU

	l1   []*Cache
	mshr []*mshrTable
	l2   []*Cache

	// l2Next is the next free service slot of each L2 bank (one access
	// per bank per cycle).
	l2Next []uint64
	// dramNextMilli is the next free DRAM service slot in millicycles,
	// advanced by the per-transaction service interval derived from the
	// bandwidth cap.
	dramNextMilli uint64
	dramTrans     int64
	storeAccesses int64
}

// NewSystem builds the memory hierarchy for the given configuration.
func NewSystem(cfg *config.GPU) *System {
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("mem: invalid config: %v", err))
	}
	// One L1 (and MSHR table) per cluster; with SMXsPerCluster == 1 each
	// SMX has a private L1 (the K20c arrangement).
	s := &System{
		cfg:    cfg,
		l1:     make([]*Cache, cfg.NumClusters()),
		mshr:   make([]*mshrTable, cfg.NumClusters()),
		l2:     make([]*Cache, cfg.L2Banks),
		l2Next: make([]uint64, cfg.L2Banks),
	}
	for i := range s.l1 {
		s.l1[i] = NewCache(cfg.L1Sets(), cfg.L1Assoc)
		// The entry slice is preallocated to the table's capacity: add
		// never runs past it (full gates admission), and prune reuses
		// the backing array, so the MSHR path never allocates again.
		s.mshr[i] = &mshrTable{
			entries:    make([]mshrEntry, 0, cfg.L1MSHRs),
			cap:        cfg.L1MSHRs,
			nextExpire: noExpiry,
			lastAdd:    noExpiry,
		}
	}
	for i := range s.l2 {
		s.l2[i] = NewCache(cfg.L2SetsPerBank(), cfg.L2Assoc)
	}
	return s
}

// mix64 is the (bijective) splitmix64 finalizer. The L2 hashes line
// addresses through it before bank/set selection, as NVIDIA L2s hash
// physical addresses: without hashing, power-of-two strides (4 KB slabs,
// region bases) alias onto a fraction of the sets and cyclic workloads
// degrade to zero hits.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// l2Place maps a line to its L2 bank and the placement ID used inside the
// bank's cache. mix64 is bijective and IDs within one bank share the same
// residue, so placement IDs stay unique per line.
func (s *System) l2Place(lineID uint64) (bank int, placeID uint64) {
	h := mix64(lineID)
	n := uint64(s.cfg.L2Banks)
	return int(h % n), h / n
}

// l2Access performs the shared-L2 leg of an access, returning the completion
// cycle. The access occupies the bank's single service port for one cycle;
// on a miss it additionally queues for DRAM.
func (s *System) l2Access(lineID, now uint64, acc Accessor) uint64 {
	bank, placeID := s.l2Place(lineID)
	start := now
	if s.l2Next[bank] > start {
		start = s.l2Next[bank]
	}
	s.l2Next[bank] = start + 1
	if s.l2[bank].AccessAs(placeID, acc) {
		return start + uint64(s.cfg.L2HitLatency)
	}
	return s.dramAccess(start)
}

// dramAccess queues one 128-byte DRAM transaction starting no earlier than
// `ready` and returns its completion cycle.
func (s *System) dramAccess(ready uint64) uint64 {
	// Service interval is 1000/DRAMTransPer1000Cycles core cycles per
	// transaction, tracked with millicycle precision.
	interval := uint64(1000000 / s.cfg.DRAMTransPer1000Cycles)
	startMilli := ready * 1000
	if s.dramNextMilli > startMilli {
		startMilli = s.dramNextMilli
	}
	s.dramNextMilli = startMilli + interval
	s.dramTrans++
	return startMilli/1000 + uint64(s.cfg.DRAMLatency)
}

// NextStallWake returns the earliest cycle >= next at which a warp of the
// given SMX stalled on a full MSHR table could make progress, or ^uint64(0)
// when no such cycle is scheduled. A blocked line advances when the table
// has a slot for it — if a slot is already free at next (expired fills can
// linger unclaimed while the warp scheduler's issue-width starves the
// stalled warp's retry), the retry can succeed immediately; otherwise the
// earliest fill completion (nextExpire) is the first chance. Independently,
// another warp's access to the same line can turn the retry into an MSHR
// merge (and, once the fill lands, an L1 hit) — new entries appear only
// through add, so lastAdd+1 bounds that case; a lastAdd+1 below next has
// already been observed by a retry and never rearms.
func (s *System) NextStallWake(smx int, next uint64) uint64 {
	m := s.mshr[s.cfg.ClusterOf(smx)]
	live := 0
	for _, e := range m.entries {
		if e.complete > next {
			live++
		}
	}
	if live < m.cap {
		return next
	}
	// A full table implies no entry expires by next, so nextExpire > next.
	wake := m.nextExpire
	if m.lastAdd != noExpiry {
		if a := m.lastAdd + 1; a >= next && a < wake {
			wake = a
		}
	}
	return wake
}

// Load performs one coalesced 128-byte load transaction for the given SMX at
// cycle now. lineAddr must be line-aligned (as produced by isa.Coalesce).
// It returns the cycle at which the data is available and ok=false if the
// SMX's MSHRs are full (the caller must retry on a later cycle; the access
// is not counted).
func (s *System) Load(smx int, lineAddr, now uint64) (complete uint64, ok bool) {
	return s.LoadAs(smx, lineAddr, now, NoAccessor)
}

// LoadAs is Load carrying the accessing kernel instance's identity for reuse
// attribution. A hit that merges with an outstanding MSHR entry is not
// classified: the data was not in the cache, so no reuse occurred.
func (s *System) LoadAs(smx int, lineAddr, now uint64, acc Accessor) (complete uint64, ok bool) {
	lineID := lineAddr / config.LineSize
	l1 := s.l1[s.cfg.ClusterOf(smx)]
	tbl := s.mshr[s.cfg.ClusterOf(smx)]

	// A hit under an outstanding miss to the same line merges with the
	// MSHR entry: it completes with the fill, counts as an L1 miss (the
	// data was not in the cache), but generates no new L2 traffic.
	if c, merged := tbl.lookup(lineID, now); merged {
		l1.stats.Accesses++
		return c, true
	}
	if l1.Probe(lineID) {
		l1.AccessAs(lineID, acc) // counts the hit and updates LRU
		return now + uint64(s.cfg.L1HitLatency), true
	}
	// Miss: needs an MSHR before it can allocate and go to L2. A full
	// table rejects the access entirely (not counted); the warp retries.
	if tbl.full(now) {
		return 0, false
	}
	l1.AccessAs(lineID, acc) // counts the miss and allocates the fill target
	c := s.l2Access(lineID, now, acc)
	tbl.add(lineID, c, now)
	return c, true
}

// Store performs one coalesced 128-byte store transaction. Kepler L1s are
// write-through/no-allocate for global stores: the L1 is updated only if the
// line is already present, and the transaction always proceeds to the L2
// (write-allocate). Stores do not occupy MSHRs and never stall the issuing
// warp; the returned cycle is when the store drains, for accounting only.
func (s *System) Store(smx int, lineAddr, now uint64) uint64 {
	return s.StoreAs(smx, lineAddr, now, NoAccessor)
}

// StoreAs is Store carrying the accessing kernel instance's identity. The
// write-through L1 touch neither classifies nor retags; the L2 leg tags the
// allocated line and classifies an L2 hit like a load would.
func (s *System) StoreAs(smx int, lineAddr, now uint64, acc Accessor) uint64 {
	lineID := lineAddr / config.LineSize
	s.l1[s.cfg.ClusterOf(smx)].Touch(lineID)
	s.storeAccesses++
	return s.l2Access(lineID, now, acc)
}

// SetAttribution enables reuse attribution on every cache in the hierarchy.
// Off (the default), tagged accesses behave exactly like untagged ones and
// the reuse breakdowns stay zero.
func (s *System) SetAttribution(on bool) {
	for _, c := range s.l1 {
		c.SetAttribution(on)
	}
	for _, c := range s.l2 {
		c.SetAttribution(on)
	}
}

// L1Reuse returns the hit-classification breakdown aggregated over all L1s.
func (s *System) L1Reuse() ReuseStats {
	var t ReuseStats
	for _, c := range s.l1 {
		t.Add(c.Reuse())
	}
	return t
}

// L2Reuse returns the hit-classification breakdown aggregated over all L2
// banks.
func (s *System) L2Reuse() ReuseStats {
	var t ReuseStats
	for _, c := range s.l2 {
		t.Add(c.Reuse())
	}
	return t
}

// L1Stats returns the load statistics of the L1 serving the given SMX (its
// cluster's cache).
func (s *System) L1Stats(smx int) Stats { return s.l1[s.cfg.ClusterOf(smx)].Stats() }

// L1Total returns load statistics aggregated over all L1s.
func (s *System) L1Total() Stats {
	var t Stats
	for _, c := range s.l1 {
		t.Add(c.Stats())
	}
	return t
}

// L2Total returns statistics aggregated over all L2 banks (loads that missed
// L1, plus stores).
func (s *System) L2Total() Stats {
	var t Stats
	for _, c := range s.l2 {
		t.Add(c.Stats())
	}
	return t
}

// DRAMTransactions returns the number of off-chip transactions issued.
func (s *System) DRAMTransactions() int64 { return s.dramTrans }

// StoreCount returns the number of store transactions processed.
func (s *System) StoreCount() int64 { return s.storeAccesses }
