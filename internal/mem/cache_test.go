package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheBasicHitMiss(t *testing.T) {
	c := NewCache(4, 2)
	if c.Access(0) {
		t.Error("first access should miss")
	}
	if !c.Access(0) {
		t.Error("second access should hit")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 2 accesses 1 hit", st)
	}
	if st.Misses() != 1 {
		t.Errorf("misses = %d, want 1", st.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1 set, 2 ways: lines 0, 4, 8 map to the same set (numSets=4, so
	// lineIDs 0,4,8 -> set 0).
	c := NewCache(4, 2)
	c.Access(0)
	c.Access(4)
	c.Access(0) // 0 is now MRU, 4 is LRU
	c.Access(8) // evicts 4
	if !c.Probe(0) {
		t.Error("line 0 should survive (MRU)")
	}
	if c.Probe(4) {
		t.Error("line 4 should be evicted (LRU)")
	}
	if !c.Probe(8) {
		t.Error("line 8 should be resident")
	}
}

func TestCachePrefersInvalidWays(t *testing.T) {
	c := NewCache(1, 4)
	c.Access(0)
	c.Access(1)
	c.Access(2) // one way still invalid
	c.Access(3)
	for id := uint64(0); id < 4; id++ {
		if !c.Probe(id) {
			t.Errorf("line %d should be resident with 4 ways", id)
		}
	}
	if c.Occupancy() != 4 {
		t.Errorf("occupancy = %d, want 4", c.Occupancy())
	}
}

func TestProbeDoesNotAllocateOrCount(t *testing.T) {
	c := NewCache(4, 2)
	if c.Probe(7) {
		t.Error("probe of empty cache hit")
	}
	if c.Occupancy() != 0 {
		t.Error("probe allocated a line")
	}
	if c.Stats().Accesses != 0 {
		t.Error("probe counted as access")
	}
}

func TestTouchUpdatesLRUWithoutAllocating(t *testing.T) {
	c := NewCache(4, 2)
	c.Access(0)
	c.Access(4)
	// Touch 0 so it becomes MRU, then insert 8: 4 must be evicted.
	if !c.Touch(0) {
		t.Error("touch of resident line should report true")
	}
	c.Access(8)
	if c.Probe(4) {
		t.Error("line 4 should have been the LRU victim after Touch(0)")
	}
	// Touch of an absent line must not allocate.
	if c.Touch(100) {
		t.Error("touch of absent line reported hit")
	}
	if c.Probe(100) {
		t.Error("touch allocated a line")
	}
}

func TestNewCachePanicsOnBadGeometry(t *testing.T) {
	for _, args := range [][2]int{{0, 2}, {4, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache(%d,%d) did not panic", args[0], args[1])
				}
			}()
			NewCache(args[0], args[1])
		}()
	}
}

func TestHitRateZeroWhenUntouched(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Error("hit rate of empty stats should be 0")
	}
}

func TestStatsAddAndString(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 4}
	b := Stats{Accesses: 6, Hits: 3}
	a.Add(b)
	if a.Accesses != 16 || a.Hits != 7 {
		t.Errorf("Add = %+v", a)
	}
	if s := a.String(); s == "" {
		t.Error("String empty")
	}
}

// Property: occupancy never exceeds capacity, and the most recently accessed
// line is always resident.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ids []uint16, setsPow, assoc uint8) bool {
		numSets := 1 << (setsPow%5 + 1) // 2..32 sets
		ways := int(assoc%4) + 1        // 1..4 ways
		c := NewCache(numSets, ways)
		for _, id := range ids {
			c.Access(uint64(id))
			if !c.Probe(uint64(id)) {
				return false // MRU line must be resident
			}
			if c.Occupancy() > numSets*ways {
				return false
			}
		}
		st := c.Stats()
		return st.Accesses == int64(len(ids)) && st.Hits <= st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

// Property: a working set that fits entirely in the cache never misses after
// the first pass, regardless of access order within passes.
func TestFittingWorkingSetConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		numSets := 8
		ways := 4
		c := NewCache(numSets, ways)
		// Pick one line per (set, way) pair so the working set fits.
		var lines []uint64
		for s := 0; s < numSets; s++ {
			for w := 0; w < ways; w++ {
				lines = append(lines, uint64(s+numSets*w))
			}
		}
		for _, l := range lines {
			c.Access(l)
		}
		before := c.Stats()
		for pass := 0; pass < 3; pass++ {
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			for _, l := range lines {
				if !c.Access(l) {
					t.Fatalf("trial %d: fitting working set missed on line %d", trial, l)
				}
			}
		}
		after := c.Stats()
		if after.Hits-before.Hits != int64(3*len(lines)) {
			t.Fatalf("trial %d: expected all warm passes to hit", trial)
		}
	}
}
