package mem

import (
	"testing"

	"laperm/internal/config"
)

// These tests pin the two properties the fast-forward clock leans on in the
// memory system: MSHR liveness is a pure function of the query cycle (so the
// lazily-pruned table is jump-safe — nothing observable depends on how often
// it was polled in between), and NextStallWake is exactly the dense-scan
// answer for the first cycle a stalled warp's retry could make progress.

// TestMSHRTableJumpSafe feeds one add schedule to two tables and queries the
// first at every cycle and the second only at a sparse set of jump targets.
// At every shared query cycle the answers must agree: the elided per-cycle
// polls (each of which prunes) must have no observable effect.
func TestMSHRTableJumpSafe(t *testing.T) {
	adds := []struct{ line, complete, at uint64 }{
		{1, 50, 0}, {2, 70, 1}, {3, 70, 2}, {4, 200, 3},
	}
	// Jump targets straddle every expiry boundary.
	sparse := map[uint64]bool{
		4: true, 49: true, 50: true, 69: true, 70: true,
		71: true, 150: true, 199: true, 200: true, 250: true,
	}
	newTable := func() *mshrTable {
		return &mshrTable{cap: 4, nextExpire: noExpiry, lastAdd: noExpiry}
	}
	type answer struct {
		complete [6]uint64
		merged   [6]bool
		full     bool
	}
	query := func(m *mshrTable, now uint64) answer {
		var a answer
		for line := uint64(1); line <= 5; line++ {
			a.complete[line], a.merged[line] = m.lookup(line, now)
		}
		a.full = m.full(now)
		return a
	}

	dense, jump := newTable(), newTable()
	denseAt := map[uint64]answer{}
	for now := uint64(0); now <= 250; now++ {
		for _, ad := range adds {
			if ad.at == now {
				dense.add(ad.line, ad.complete, now)
			}
		}
		a := query(dense, now) // poll every cycle
		if sparse[now] {
			denseAt[now] = a
		}
	}
	for now := uint64(0); now <= 250; now++ {
		for _, ad := range adds {
			if ad.at == now {
				jump.add(ad.line, ad.complete, now)
			}
		}
		if !sparse[now] {
			continue // the fast-forward clock skipped this cycle
		}
		if got, want := query(jump, now), denseAt[now]; got != want {
			t.Errorf("cycle %d: sparse query %+v, dense oracle %+v", now, got, want)
		}
	}
}

// TestNextStallWakeMatchesDenseScan fills an SMX's MSHR table through the
// real load path and cross-checks NextStallWake against the brute-force
// definition: the first cycle >= next at which the table has a free slot for
// the blocked line, lowered to lastAdd+1 (not yet observed by a retry) for
// the merge-enablement case.
func TestNextStallWakeMatchesDenseScan(t *testing.T) {
	cfg := config.SmallTest()
	cfg.L1MSHRs = 4
	s := NewSystem(&cfg)

	// Fill the table at cycle 10 with four distinct-line misses.
	fillCycle := uint64(10)
	var completes []uint64
	for i := uint64(0); i < 4; i++ {
		c, ok := s.Load(0, i*config.LineSize, fillCycle)
		if !ok {
			t.Fatalf("fill load %d rejected", i)
		}
		completes = append(completes, c)
	}
	if _, ok := s.Load(0, 4*config.LineSize, fillCycle); ok {
		t.Fatal("fifth miss accepted by a full 4-entry MSHR table")
	}

	m := s.mshr[cfg.ClusterOf(0)]
	oracle := func(next uint64) uint64 {
		slotFree := next
		for {
			live := 0
			for _, e := range m.entries {
				if e.complete > slotFree {
					live++
				}
			}
			if live < m.cap {
				break
			}
			slotFree++
		}
		// The add at lastAdd becomes visible to a retry one cycle later,
		// enabling a merge even while the table stays full; a lastAdd+1
		// before next was already observed and never rearms.
		if m.lastAdd != noExpiry && m.lastAdd+1 >= next && m.lastAdd+1 < slotFree {
			return m.lastAdd + 1
		}
		return slotFree
	}

	minComplete := completes[0]
	for _, c := range completes {
		if c < minComplete {
			minComplete = c
		}
	}
	probes := []uint64{fillCycle, fillCycle + 1, fillCycle + 2,
		minComplete - 1, minComplete, minComplete + 1}
	for _, next := range probes {
		if got, want := s.NextStallWake(0, next), oracle(next); got != want {
			t.Errorf("NextStallWake(0, %d) = %d, dense oracle %d", next, got, want)
		}
	}

	// The wake must be productive: a retry at the reported cycle succeeds,
	// while one the cycle before (past the merge window) still bounces.
	wake := s.NextStallWake(0, fillCycle+2)
	if wake != minComplete {
		t.Fatalf("post-merge-window wake = %d, want first fill completion %d", wake, minComplete)
	}
	if _, ok := s.Load(0, 5*config.LineSize, wake-1); ok {
		t.Errorf("retry at wake-1 (%d) succeeded; wake is not tight", wake-1)
	}
	if _, ok := s.Load(0, 5*config.LineSize, wake); !ok {
		t.Errorf("retry at wake (%d) still rejected; wake is not productive", wake)
	}

	// Once fills land, a free slot means the wake is immediate whatever the
	// horizon asked for.
	far := completes[len(completes)-1] + 1000
	if got := s.NextStallWake(0, far); got != far {
		t.Errorf("NextStallWake with free slots = %d, want next=%d", got, far)
	}
}
