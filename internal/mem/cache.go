// Package mem models the GPU memory hierarchy of Figure 1: a private
// set-associative L1 per SMX, a banked L2 shared across SMXs, and an
// off-chip DRAM with bounded bandwidth. Timing is expressed as the core
// cycle at which an access completes; contention is modelled with per-bank
// and DRAM service queues, and L1 MSHRs bound outstanding misses.
package mem

import "fmt"

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses int64
	Hits     int64
}

// Misses returns Accesses - Hits.
func (s Stats) Misses() int64 { return s.Accesses - s.Hits }

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
}

func (s Stats) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", s.Hits, s.Accesses, 100*s.HitRate())
}

type cacheLine struct {
	tag     uint64
	valid   bool
	lastUse uint64
}

// Cache is a set-associative cache with true LRU replacement over 128-byte
// lines. It tracks contents and hit statistics only; timing lives in System.
type Cache struct {
	sets    [][]cacheLine
	numSets uint64
	useTick uint64
	stats   Stats
}

// NewCache builds a cache with the given set count and associativity.
func NewCache(numSets, assoc int) *Cache {
	if numSets <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("mem: NewCache(%d, %d): geometry must be positive", numSets, assoc))
	}
	sets := make([][]cacheLine, numSets)
	backing := make([]cacheLine, numSets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc:assoc], backing[assoc:]
	}
	return &Cache{sets: sets, numSets: uint64(numSets)}
}

// Access looks up the line identified by lineID (byte address divided by the
// line size), allocating it on a miss, and reports whether it hit. The
// access is counted in the cache's statistics.
func (c *Cache) Access(lineID uint64) bool {
	hit := c.access(lineID, true)
	c.stats.Accesses++
	if hit {
		c.stats.Hits++
	}
	return hit
}

// Probe reports whether the line is present without allocating or touching
// LRU state or statistics.
func (c *Cache) Probe(lineID uint64) bool {
	set := c.sets[lineID%c.numSets]
	for i := range set {
		if set[i].valid && set[i].tag == lineID {
			return true
		}
	}
	return false
}

// Touch updates the line's LRU position if present without allocating; used
// for write-through-no-allocate stores that hit. Not counted in statistics.
func (c *Cache) Touch(lineID uint64) bool {
	return c.access(lineID, false)
}

func (c *Cache) access(lineID uint64, allocate bool) bool {
	c.useTick++
	set := c.sets[lineID%c.numSets]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineID {
			set[i].lastUse = c.useTick
			return true
		}
		if set[i].lastUse < set[victim].lastUse || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	if allocate {
		// Prefer an invalid way over evicting.
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
		set[victim] = cacheLine{tag: lineID, valid: true, lastUse: c.useTick}
	}
	return false
}

// Stats returns the accumulated access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Occupancy returns the number of valid lines, for tests and introspection.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
