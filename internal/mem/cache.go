// Package mem models the GPU memory hierarchy of Figure 1: a private
// set-associative L1 per SMX, a banked L2 shared across SMXs, and an
// off-chip DRAM with bounded bandwidth. Timing is expressed as the core
// cycle at which an access completes; contention is modelled with per-bank
// and DRAM service queues, and L1 MSHRs bound outstanding misses.
//
// The hierarchy optionally attributes cache reuse: with attribution enabled
// (SetAttribution), every line remembers the kernel instance that installed
// it, and every hit is classified by the relationship between the accessor
// and the installer — the same kernel (self), a direct parent or child
// (parent-child), two children of the same parent (sibling), or unrelated
// kernels (cross). This is the repo-native version of the paper's Figure 3
// locality analysis: LaPerm's claim is precisely that its schedulers raise
// the parent-child share of L1 hits. Attribution is off by default and the
// tagged access paths reduce to the untagged ones, so timing and hit/miss
// behaviour are identical either way.
package mem

import "fmt"

// ReuseClass classifies a cache hit by the relationship between the kernel
// instance performing the access and the one that installed the line.
type ReuseClass uint8

const (
	// ReuseSelf: the accessing instance installed the line itself.
	ReuseSelf ReuseClass = iota
	// ReuseParentChild: the line was installed by the accessor's direct
	// parent, or the accessor is the installer's direct parent.
	ReuseParentChild
	// ReuseSibling: installer and accessor are distinct children of the
	// same parent instance.
	ReuseSibling
	// ReuseCross: any other relationship, including lines installed by
	// untagged accesses.
	ReuseCross
)

// String returns the class name as used in reports and CSV headers.
func (c ReuseClass) String() string {
	switch c {
	case ReuseSelf:
		return "self"
	case ReuseParentChild:
		return "parent-child"
	case ReuseSibling:
		return "sibling"
	case ReuseCross:
		return "cross"
	}
	return fmt.Sprintf("ReuseClass(%d)", int(c))
}

// Accessor identifies the kernel instance behind a memory access for reuse
// attribution: its instance ID and its direct parent's (-1 for host kernels
// and for accesses outside any instance).
type Accessor struct {
	Inst   int32
	Parent int32
}

// NoAccessor is the identity of untagged accesses; hits on lines it installs
// classify as ReuseCross.
var NoAccessor = Accessor{Inst: -1, Parent: -1}

// classify relates a line installed by (inst, parent) to accessor a.
func (a Accessor) classify(inst, parent int32) ReuseClass {
	switch {
	case inst < 0 || a.Inst < 0:
		return ReuseCross
	case inst == a.Inst:
		return ReuseSelf
	case inst == a.Parent || parent == a.Inst:
		return ReuseParentChild
	case parent >= 0 && parent == a.Parent:
		return ReuseSibling
	}
	return ReuseCross
}

// ReuseStats counts classified hits per reuse class.
type ReuseStats struct {
	Self        int64
	ParentChild int64
	Sibling     int64
	Cross       int64
}

// Total returns the number of classified hits.
func (r ReuseStats) Total() int64 { return r.Self + r.ParentChild + r.Sibling + r.Cross }

// Share returns the given class's fraction of classified hits (0 for an
// empty breakdown).
func (r ReuseStats) Share(c ReuseClass) float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	switch c {
	case ReuseSelf:
		return float64(r.Self) / float64(t)
	case ReuseParentChild:
		return float64(r.ParentChild) / float64(t)
	case ReuseSibling:
		return float64(r.Sibling) / float64(t)
	case ReuseCross:
		return float64(r.Cross) / float64(t)
	}
	return 0
}

// Add accumulates o into r.
func (r *ReuseStats) Add(o ReuseStats) {
	r.Self += o.Self
	r.ParentChild += o.ParentChild
	r.Sibling += o.Sibling
	r.Cross += o.Cross
}

func (r *ReuseStats) count(c ReuseClass) {
	switch c {
	case ReuseSelf:
		r.Self++
	case ReuseParentChild:
		r.ParentChild++
	case ReuseSibling:
		r.Sibling++
	case ReuseCross:
		r.Cross++
	}
}

func (r ReuseStats) String() string {
	return fmt.Sprintf("self %d, parent-child %d, sibling %d, cross %d",
		r.Self, r.ParentChild, r.Sibling, r.Cross)
}

// Stats accumulates access counts for one cache.
type Stats struct {
	Accesses int64
	Hits     int64
}

// Misses returns Accesses - Hits.
func (s Stats) Misses() int64 { return s.Accesses - s.Hits }

// HitRate returns Hits/Accesses, or 0 for an untouched cache.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Accesses += o.Accesses
	s.Hits += o.Hits
}

func (s Stats) String() string {
	return fmt.Sprintf("%d/%d (%.1f%%)", s.Hits, s.Accesses, 100*s.HitRate())
}

type cacheLine struct {
	tag     uint64
	valid   bool
	lastUse uint64
	// inst and parent identify the kernel instance that installed the
	// line (attribution only; -1 when untagged). The installer keeps
	// ownership across hits: a line a parent installed stays attributed
	// to the parent however many children re-reference it.
	inst   int32
	parent int32
}

// Cache is a set-associative cache with true LRU replacement over 128-byte
// lines. It tracks contents and hit statistics only; timing lives in System.
type Cache struct {
	sets    [][]cacheLine
	numSets uint64
	useTick uint64
	stats   Stats
	attrib  bool
	reuse   ReuseStats
}

// NewCache builds a cache with the given set count and associativity.
func NewCache(numSets, assoc int) *Cache {
	if numSets <= 0 || assoc <= 0 {
		panic(fmt.Sprintf("mem: NewCache(%d, %d): geometry must be positive", numSets, assoc))
	}
	sets := make([][]cacheLine, numSets)
	backing := make([]cacheLine, numSets*assoc)
	for i := range sets {
		sets[i], backing = backing[:assoc:assoc], backing[assoc:]
	}
	return &Cache{sets: sets, numSets: uint64(numSets)}
}

// Access looks up the line identified by lineID (byte address divided by the
// line size), allocating it on a miss, and reports whether it hit. The
// access is counted in the cache's statistics.
func (c *Cache) Access(lineID uint64) bool {
	return c.AccessAs(lineID, NoAccessor)
}

// AccessAs is Access carrying the accessing kernel instance's identity.
// With attribution enabled the line is tagged on allocation and a hit is
// classified into the cache's ReuseStats; otherwise it behaves exactly like
// Access.
func (c *Cache) AccessAs(lineID uint64, acc Accessor) bool {
	hit := c.access(lineID, acc, true)
	c.stats.Accesses++
	if hit {
		c.stats.Hits++
	}
	return hit
}

// SetAttribution enables or disables reuse attribution. Toggling it does not
// clear existing tags or accumulated ReuseStats.
func (c *Cache) SetAttribution(on bool) { c.attrib = on }

// Reuse returns the accumulated hit-classification breakdown (zero unless
// attribution was enabled).
func (c *Cache) Reuse() ReuseStats { return c.reuse }

// Probe reports whether the line is present without allocating or touching
// LRU state or statistics.
func (c *Cache) Probe(lineID uint64) bool {
	set := c.sets[lineID%c.numSets]
	for i := range set {
		if set[i].valid && set[i].tag == lineID {
			return true
		}
	}
	return false
}

// Touch updates the line's LRU position if present without allocating; used
// for write-through-no-allocate stores that hit. Not counted in statistics
// and never reclassifies or retags the line.
func (c *Cache) Touch(lineID uint64) bool {
	return c.access(lineID, NoAccessor, false)
}

func (c *Cache) access(lineID uint64, acc Accessor, allocate bool) bool {
	c.useTick++
	set := c.sets[lineID%c.numSets]
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == lineID {
			set[i].lastUse = c.useTick
			if c.attrib && allocate {
				c.reuse.count(acc.classify(set[i].inst, set[i].parent))
			}
			return true
		}
		if set[i].lastUse < set[victim].lastUse || !set[i].valid && set[victim].valid {
			victim = i
		}
	}
	if allocate {
		// Prefer an invalid way over evicting.
		for i := range set {
			if !set[i].valid {
				victim = i
				break
			}
		}
		set[victim] = cacheLine{tag: lineID, valid: true, lastUse: c.useTick,
			inst: acc.Inst, parent: acc.Parent}
	}
	return false
}

// Stats returns the accumulated access statistics.
func (c *Cache) Stats() Stats { return c.stats }

// Occupancy returns the number of valid lines, for tests and introspection.
func (c *Cache) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}
