package mem

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		name         string
		acc          Accessor
		inst, parent int32
		want         ReuseClass
	}{
		{"self", Accessor{Inst: 3, Parent: 1}, 3, 1, ReuseSelf},
		{"child hits parent line", Accessor{Inst: 3, Parent: 1}, 1, -1, ReuseParentChild},
		{"parent hits child line", Accessor{Inst: 1, Parent: -1}, 3, 1, ReuseParentChild},
		{"siblings", Accessor{Inst: 3, Parent: 1}, 4, 1, ReuseSibling},
		{"unrelated", Accessor{Inst: 3, Parent: 1}, 7, 5, ReuseCross},
		{"untagged installer", Accessor{Inst: 3, Parent: 1}, -1, -1, ReuseCross},
		{"untagged accessor", NoAccessor, 3, 1, ReuseCross},
		// Two host kernels (both Parent == -1) must not read as siblings
		// or as parent-child through the -1 sentinel.
		{"two host kernels", Accessor{Inst: 2, Parent: -1}, 1, -1, ReuseCross},
	}
	for _, c := range cases {
		if got := c.acc.classify(c.inst, c.parent); got != c.want {
			t.Errorf("%s: classify(%d,%d) by %+v = %v, want %v",
				c.name, c.inst, c.parent, c.acc, got, c.want)
		}
	}
}

func TestAttributionCountsHitsOnly(t *testing.T) {
	c := NewCache(4, 2)
	c.SetAttribution(true)
	parent := Accessor{Inst: 1, Parent: -1}
	child := Accessor{Inst: 2, Parent: 1}

	if c.AccessAs(10, parent) { // cold miss installs under parent
		t.Fatal("unexpected hit")
	}
	if c.Reuse().Total() != 0 {
		t.Fatalf("miss was classified: %v", c.Reuse())
	}
	if !c.AccessAs(10, child) {
		t.Fatal("expected hit")
	}
	if r := c.Reuse(); r.ParentChild != 1 || r.Total() != 1 {
		t.Errorf("reuse = %v, want exactly one parent-child hit", r)
	}
}

func TestInstallerKeepsOwnershipAcrossHits(t *testing.T) {
	c := NewCache(4, 2)
	c.SetAttribution(true)
	parent := Accessor{Inst: 1, Parent: -1}
	childA := Accessor{Inst: 2, Parent: 1}
	childB := Accessor{Inst: 3, Parent: 1}

	c.AccessAs(10, parent)
	c.AccessAs(10, childA) // parent-child, must NOT retag to childA
	if !c.AccessAs(10, childB) {
		t.Fatal("expected hit")
	}
	r := c.Reuse()
	// If childA's hit had retagged the line, childB would classify as
	// sibling instead of parent-child.
	if r.ParentChild != 2 || r.Sibling != 0 {
		t.Errorf("reuse = %v, want 2 parent-child (installer keeps ownership)", r)
	}
}

func TestEvictionResetsOwnership(t *testing.T) {
	c := NewCache(1, 1) // single line: every allocation evicts
	c.SetAttribution(true)
	parent := Accessor{Inst: 1, Parent: -1}
	child := Accessor{Inst: 2, Parent: 1}
	other := Accessor{Inst: 7, Parent: 6}

	c.AccessAs(10, parent)
	c.AccessAs(20, other) // evicts line 10, installs under other
	if c.AccessAs(10, child) {
		t.Fatal("line 10 must have been evicted")
	}
	// Line 10 is now installed by child itself; a re-access is self.
	c.AccessAs(10, child)
	r := c.Reuse()
	if r.Self != 1 || r.ParentChild != 0 {
		t.Errorf("reuse = %v, want one self hit after reinstall", r)
	}
}

func TestAttributionOffIsFree(t *testing.T) {
	tagged := NewCache(4, 2)
	plain := NewCache(4, 2)
	acc := Accessor{Inst: 5, Parent: 2}
	seq := []uint64{1, 2, 3, 1, 2, 9, 1, 17, 3}
	for _, id := range seq {
		a := tagged.AccessAs(id, acc)
		b := plain.Access(id)
		if a != b {
			t.Fatalf("line %d: tagged hit=%v, plain hit=%v", id, a, b)
		}
	}
	if tagged.Stats() != plain.Stats() {
		t.Errorf("stats diverged: %v vs %v", tagged.Stats(), plain.Stats())
	}
	if tagged.Reuse().Total() != 0 {
		t.Errorf("attribution off but hits classified: %v", tagged.Reuse())
	}
}

func TestReuseStatsShareAndAdd(t *testing.T) {
	r := ReuseStats{Self: 2, ParentChild: 6, Sibling: 1, Cross: 1}
	if r.Total() != 10 {
		t.Fatalf("total = %d", r.Total())
	}
	if got := r.Share(ReuseParentChild); got != 0.6 {
		t.Errorf("parent-child share = %v, want 0.6", got)
	}
	if got := (ReuseStats{}).Share(ReuseSelf); got != 0 {
		t.Errorf("empty share = %v, want 0", got)
	}
	var sum ReuseStats
	sum.Add(r)
	sum.Add(r)
	if sum.Total() != 20 || sum.ParentChild != 12 {
		t.Errorf("sum = %v", sum)
	}
}

// TestSystemStoreDoesNotTagL1 pins the write-through contract: a store to a
// resident line keeps the original installer, so a later load by the
// installer's child still classifies parent-child.
func TestSystemStoreDoesNotTagL1(t *testing.T) {
	s := NewSystem(testCfg())
	s.SetAttribution(true)
	parent := Accessor{Inst: 1, Parent: -1}
	child := Accessor{Inst: 2, Parent: 1}

	if _, ok := s.LoadAs(0, 0, 0, parent); !ok {
		t.Fatal("load rejected")
	}
	s.StoreAs(0, 0, 1000, child) // touches the L1 line, must not retag
	if _, ok := s.LoadAs(0, 0, 2000, child); !ok {
		t.Fatal("load rejected")
	}
	if r := s.L1Reuse(); r.ParentChild != 1 || r.Self != 0 {
		t.Errorf("L1 reuse = %v, want one parent-child hit (store must not retag)", r)
	}
}
