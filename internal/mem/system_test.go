package mem

import (
	"testing"

	"laperm/internal/config"
)

func testCfg() *config.GPU {
	g := config.SmallTest()
	return &g
}

func TestLoadLatencyLevels(t *testing.T) {
	cfg := testCfg()
	s := NewSystem(cfg)

	// Cold load: misses L1 and L2, pays DRAM latency.
	done, ok := s.Load(0, 0, 100)
	if !ok {
		t.Fatal("cold load stalled")
	}
	if want := uint64(100 + cfg.DRAMLatency); done != want {
		t.Errorf("cold load completes at %d, want %d", done, want)
	}

	// Warm L1 load.
	done, ok = s.Load(0, 0, 10000)
	if !ok {
		t.Fatal("warm load stalled")
	}
	if want := uint64(10000 + cfg.L1HitLatency); done != want {
		t.Errorf("L1 hit completes at %d, want %d", done, want)
	}

	// Same line from a different SMX: misses its own L1, hits shared L2.
	done, ok = s.Load(1, 0, 20000)
	if !ok {
		t.Fatal("cross-SMX load stalled")
	}
	if want := uint64(20000 + cfg.L2HitLatency); done != want {
		t.Errorf("L2 hit completes at %d, want %d", done, want)
	}
}

func TestLoadStats(t *testing.T) {
	s := NewSystem(testCfg())
	s.Load(0, 0, 0)
	s.Load(0, 0, 10000)
	s.Load(1, 0, 20000)
	l1 := s.L1Total()
	if l1.Accesses != 3 || l1.Hits != 1 {
		t.Errorf("L1 total = %+v, want 3 accesses 1 hit", l1)
	}
	l2 := s.L2Total()
	if l2.Accesses != 2 || l2.Hits != 1 {
		t.Errorf("L2 total = %+v, want 2 accesses 1 hit", l2)
	}
	if s.DRAMTransactions() != 1 {
		t.Errorf("DRAM transactions = %d, want 1", s.DRAMTransactions())
	}
	if got := s.L1Stats(0); got.Accesses != 2 {
		t.Errorf("SMX0 L1 accesses = %d, want 2", got.Accesses)
	}
}

func TestMSHRMerging(t *testing.T) {
	cfg := testCfg()
	s := NewSystem(cfg)
	// Two loads to the same line from the same SMX within the miss window
	// merge: same completion, a single L2 access.
	d1, ok1 := s.Load(0, 0, 0)
	d2, ok2 := s.Load(0, 0, 5)
	if !ok1 || !ok2 {
		t.Fatal("loads stalled")
	}
	if d1 != d2 {
		t.Errorf("merged load completes at %d, want %d", d2, d1)
	}
	if got := s.L2Total().Accesses; got != 1 {
		t.Errorf("L2 accesses = %d, want 1 (merged)", got)
	}
	// Both count as L1 accesses, zero hits (data was in flight, not
	// resident).
	l1 := s.L1Stats(0)
	if l1.Accesses != 2 || l1.Hits != 0 {
		t.Errorf("L1 stats = %+v, want 2 accesses 0 hits", l1)
	}
}

func TestMSHRCapacityStalls(t *testing.T) {
	cfg := testCfg()
	cfg.L1MSHRs = 2
	s := NewSystem(cfg)
	if _, ok := s.Load(0, 0*config.LineSize, 0); !ok {
		t.Fatal("load 0 stalled")
	}
	if _, ok := s.Load(0, 1*config.LineSize, 0); !ok {
		t.Fatal("load 1 stalled")
	}
	// Third distinct miss in the same window must stall.
	if _, ok := s.Load(0, 2*config.LineSize, 0); ok {
		t.Fatal("load 2 should stall with 2 MSHRs")
	}
	// A merge to an outstanding line still succeeds while full.
	if _, ok := s.Load(0, 0, 1); !ok {
		t.Fatal("merge should not stall on full MSHRs")
	}
	// After the misses complete, capacity frees up.
	later := uint64(cfg.DRAMLatency + 10)
	if _, ok := s.Load(0, 2*config.LineSize, later); !ok {
		t.Fatal("load after MSHR drain stalled")
	}
	// The stalled attempt must not have been counted.
	if got := s.L1Stats(0).Accesses; got != 4 {
		t.Errorf("L1 accesses = %d, want 4 (stall not counted)", got)
	}
}

func TestMSHRStallDoesNotAllocate(t *testing.T) {
	cfg := testCfg()
	cfg.L1MSHRs = 1
	s := NewSystem(cfg)
	s.Load(0, 0, 0)
	if _, ok := s.Load(0, 512, 0); ok {
		t.Fatal("expected stall")
	}
	// A retry of the stalled line once MSHRs drain must be an L1 miss
	// (the stall must not have allocated the line).
	later := uint64(cfg.DRAMLatency + 10)
	hitsBefore := s.L1Stats(0).Hits
	if _, ok := s.Load(0, 512, later); !ok {
		t.Fatal("retry stalled")
	}
	if s.L1Stats(0).Hits != hitsBefore {
		t.Error("stalled access left the line allocated (retry hit)")
	}
}

func TestStoreWriteThroughNoAllocate(t *testing.T) {
	cfg := testCfg()
	s := NewSystem(cfg)
	s.Store(0, 0, 0)
	// Store must not allocate in L1 ...
	load, ok := s.Load(0, 0, 10000)
	if !ok {
		t.Fatal("load stalled")
	}
	// ... but must allocate in L2, so the load is an L2 hit.
	if want := uint64(10000 + cfg.L2HitLatency); load != want {
		t.Errorf("load after store completes at %d, want L2 hit at %d", load, want)
	}
	if s.StoreCount() != 1 {
		t.Errorf("store count = %d", s.StoreCount())
	}
}

func TestStoreTouchKeepsL1LineWarm(t *testing.T) {
	cfg := testCfg()
	s := NewSystem(cfg)
	s.Load(0, 0, 0)     // allocate line 0 in L1
	s.Store(0, 0, 5000) // write-through hit: refreshes LRU
	d, ok := s.Load(0, 0, 10000)
	if !ok {
		t.Fatal("load stalled")
	}
	if want := uint64(10000 + cfg.L1HitLatency); d != want {
		t.Errorf("load completes at %d, want L1 hit %d", d, want)
	}
}

func TestL2BankInterleaving(t *testing.T) {
	cfg := testCfg() // 2 banks
	s := NewSystem(cfg)
	// Find two lines on different banks and two on the same bank under
	// the hashed placement.
	bank0, _ := s.l2Place(0)
	var other, same uint64
	for l := uint64(1); ; l++ {
		b, _ := s.l2Place(l)
		if b != bank0 && other == 0 {
			other = l
		}
		if b == bank0 && same == 0 {
			same = l
		}
		if other != 0 && same != 0 {
			break
		}
	}
	// Different banks: both cold misses at cycle 0 start service
	// immediately (no conflict).
	d0, _ := s.Load(0, 0, 0)
	d1, _ := s.Load(1, other*config.LineSize, 0)
	if d0 != d1 {
		t.Errorf("different banks should not serialise: %d vs %d", d0, d1)
	}
	// Same bank at the same cycle serialises by one bank-service cycle.
	s2 := NewSystem(cfg)
	a, _ := s2.Load(0, 0, 0)
	b, _ := s2.Load(1, same*config.LineSize, 0)
	if b != a+1 {
		t.Errorf("same-bank accesses: %d then %d, want +1 serialisation", a, b)
	}
}

// TestL2HashingAvoidsStrideAliasing is a regression test for the zero-hit
// pathology: 4 KB-strided slabs re-read cyclically must enjoy L2 reuse when
// they fit in aggregate capacity.
func TestL2HashingAvoidsStrideAliasing(t *testing.T) {
	cfg := testCfg() // 64 KB L2 = 512 lines
	s := NewSystem(cfg)
	// 24 slabs of 4 lines at a 32-line (4 KB) stride: 96 lines, fits.
	var lines []uint64
	for p := uint64(0); p < 24; p++ {
		for k := uint64(0); k < 4; k++ {
			lines = append(lines, (p*32+k)*config.LineSize)
		}
	}
	// Space accesses out so the MSHRs never fill.
	now := uint64(0)
	for _, l := range lines {
		if _, ok := s.Load(0, l, now); !ok {
			t.Fatalf("cold load of %#x stalled", l)
		}
		now += 1000
	}
	hits := 0
	for _, l := range lines {
		now += 1000
		d, ok := s.Load(1, l, now)
		if !ok {
			t.Fatalf("warm load of %#x stalled", l)
		}
		if d == now+uint64(cfg.L2HitLatency) {
			hits++
		}
	}
	if hits < len(lines)*3/4 {
		t.Errorf("only %d/%d re-reads hit the L2; set hashing not effective", hits, len(lines))
	}
}

func TestDRAMBandwidthThrottling(t *testing.T) {
	cfg := testCfg()
	cfg.DRAMTransPer1000Cycles = 1000 // exactly 1 per cycle
	s := NewSystem(cfg)
	var last uint64
	for i := 0; i < 10; i++ {
		// Distinct lines, alternating banks so bank ports do not bind.
		d, ok := s.Load(i%cfg.NumSMX, uint64(i)*config.LineSize, 0)
		if !ok {
			t.Fatalf("load %d stalled", i)
		}
		if i > 0 && d < last {
			t.Errorf("DRAM completions went backwards: %d after %d", d, last)
		}
		last = d
	}
	// 10 transactions at 1/cycle must span at least 9 cycles of service.
	first := uint64(cfg.DRAMLatency) // i=0 starts at its bank slot 0
	if last < first+9 {
		t.Errorf("last completion %d, want >= %d (bandwidth-limited)", last, first+9)
	}
}

func TestDRAMFractionalBandwidth(t *testing.T) {
	cfg := testCfg()
	cfg.DRAMTransPer1000Cycles = 1500 // 1.5 per cycle => 666 millicycles each
	s := NewSystem(cfg)
	n := 15
	var last uint64
	for i := 0; i < n; i++ {
		d, ok := s.Load(i%cfg.NumSMX, uint64(i)*config.LineSize, 0)
		if !ok {
			t.Fatalf("load %d stalled", i)
		}
		last = d
	}
	// 15 transactions at 1.5/cycle take ~10 cycles of service.
	lo := uint64(cfg.DRAMLatency) + 8
	hi := uint64(cfg.DRAMLatency) + 12
	if last < lo || last > hi {
		t.Errorf("last completion %d, want in [%d, %d]", last, lo, hi)
	}
}

func TestNewSystemPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem with invalid config did not panic")
		}
	}()
	bad := config.SmallTest()
	bad.NumSMX = 0
	NewSystem(&bad)
}

func TestSMXL1Isolation(t *testing.T) {
	s := NewSystem(testCfg())
	s.Load(0, 0, 0)
	// SMX 1's L1 must not contain SMX 0's line.
	d, ok := s.Load(1, 0, 10000)
	if !ok {
		t.Fatal("stall")
	}
	if d == 10000+uint64(testCfg().L1HitLatency) {
		t.Error("L1s are not private: SMX1 hit on SMX0's fill")
	}
}

func TestClusterSharedL1(t *testing.T) {
	cfg := testCfg() // 4 SMXs
	cfg.SMXsPerCluster = 2
	s := NewSystem(cfg)
	s.Load(0, 0, 0) // SMX 0 fills the cluster-0 L1
	// SMX 1 shares that L1 and must hit.
	d, ok := s.Load(1, 0, 10000)
	if !ok {
		t.Fatal("stall")
	}
	if want := uint64(10000 + cfg.L1HitLatency); d != want {
		t.Errorf("cluster-mate load completes at %d, want L1 hit %d", d, want)
	}
	// SMX 2 is in the other cluster: its L1 is cold, so L2 hit.
	d, ok = s.Load(2, 0, 20000)
	if !ok {
		t.Fatal("stall")
	}
	if want := uint64(20000 + cfg.L2HitLatency); d != want {
		t.Errorf("other-cluster load completes at %d, want L2 hit %d", d, want)
	}
}
