package mem

// Allocation pin for the MSHR table: insert to capacity, reject at the full
// table, query the stall-wake horizon, and lazily expire the whole table —
// the complete per-cycle MSHR protocol — with zero allocations. The entry
// slice is preallocated to the table's capacity in NewSystem, so this pin
// holds from the first access, not just after warm-up.

import (
	"testing"

	"laperm/internal/config"
)

func TestMSHRInsertExpireZeroAlloc(t *testing.T) {
	cfg := config.SmallTest()
	s := NewSystem(&cfg)
	var (
		now      uint64
		line     uint64
		rejected bool
		rounds   int
	)
	protocol := func() {
		rounds++
		filled := 0
		for {
			// Strictly increasing line addresses never revisit the L1, so
			// every access is a miss that wants an MSHR entry.
			_, ok := s.Load(0, line*config.LineSize, now)
			line++
			if !ok {
				rejected = true
				break
			}
			if filled++; filled > cfg.L1MSHRs {
				break
			}
		}
		s.NextStallWake(0, now+1)
		// Jump past every fill completion: the next round's first lookup
		// prunes the entire table (lazy expiry).
		now += 1 << 20
	}
	protocol() // verify the shape once before measuring
	if !rejected {
		t.Fatalf("table never filled: %d inserts accepted without rejection (cap %d)", cfg.L1MSHRs, cfg.L1MSHRs)
	}
	if allocs := testing.AllocsPerRun(500, protocol); allocs != 0 {
		t.Errorf("MSHR insert/reject/expire protocol: %.2f allocs per round, want 0", allocs)
	}
	if rounds < 500 {
		t.Fatalf("protocol ran %d rounds, expected at least 500", rounds)
	}
}
