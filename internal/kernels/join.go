package kernels

import (
	"math"

	"laperm/internal/isa"
)

// buildJOIN constructs a partitioned hash join: each parent TB reads a chunk
// of relation R, hashes it into per-parent staging buckets (stores the
// parent generates and the children consume — the producer/consumer pattern
// behind LaPerm's temporal-locality argument), and launches one child TB per
// bucket to probe the matching partition of relation S.
//
// Each child works entirely in its own staging bucket, S partition, and
// output region, so sibling TBs share essentially nothing (the lowest
// child-sibling footprint in Figure 2). The gaussian input skews partition
// sizes, making child durations uneven.
func buildJOIN(s Scale, gaussian bool) *isa.Kernel {
	const (
		tupleBytes  = 16
		buckets     = 4   // staging buckets per parent TB
		stageBytes  = 512 // staging area per bucket (2 tuples/thread max)
		sPartTuples = 48  // mean S-partition tuples probed per child
	)
	parents := s.parentTBs()
	rAddr := func(i int) uint64 { return RegionData + uint64(i)*tupleBytes }
	stageAddr := func(p, bkt int) uint64 {
		return RegionStage + uint64(p*buckets+bkt)*stageBytes
	}

	// Partition sizes: uniform, or gaussian-skewed around the mean.
	partSize := func(p, bkt int) int {
		if !gaussian {
			return sPartTuples
		}
		z := hashFloat(uint64(p*buckets+bkt)*641)*2 - 1
		n := int(float64(sPartTuples) * math.Exp(1.2*z))
		if n < 8 {
			n = 8
		}
		if n > 160 {
			n = 160
		}
		return n
	}
	// S partitions are laid out back to back; compute prefix offsets.
	sOffsets := make([]uint64, parents*buckets+1)
	for i := 0; i < parents*buckets; i++ {
		sOffsets[i+1] = sOffsets[i] + uint64(partSize(i/buckets, i%buckets)*tupleBytes)
	}
	sAddr := func(part int) uint64 { return RegionData2 + sOffsets[part] }

	kb := isa.NewKernel("join")
	for p := 0; p < parents; p++ {
		base := p * TBThreads
		b := isa.NewTB(TBThreads).Resources(26, 0)

		// Read the R chunk: key and payload words of each tuple.
		b.Load(func(tid int) uint64 { return rAddr(base + tid) })
		b.Load(func(tid int) uint64 { return rAddr(base+tid) + 8 })
		b.Compute(12)

		// Stage each tuple into its hash bucket (parent-produced data
		// the children will consume).
		b.Store(func(tid int) uint64 {
			bkt := int(splitmix64(uint64(base+tid)) % buckets)
			slot := tid % (int(stageBytes) / tupleBytes)
			return stageAddr(p, bkt) + uint64(slot)*tupleBytes
		})
		b.Compute(10)

		for bkt := 0; bkt < buckets; bkt++ {
			part := p*buckets + bkt
			b.Launch(bkt*16, joinChild(stageAddr(p, bkt), sAddr(part), partSize(p, bkt), part))
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}

// joinChild probes one S partition with one staged bucket: load the staged
// R tuples the parent wrote, stream the S partition, and write matches to a
// private output run.
func joinChild(stage uint64, sBase uint64, sTuples, part int) *isa.Kernel {
	const tupleBytes = 16
	b := isa.NewTB(TBThreads).Resources(24, 0)

	// Consume the parent-staged bucket (temporal parent-child reuse).
	b.Load(func(tid int) uint64 { return stage + uint64(tid%32)*tupleBytes })
	b.Compute(10)

	// Stream the S partition: each round covers 64 tuples' keys.
	for off := 0; off < sTuples; off += TBThreads {
		n := sTuples - off
		if n > TBThreads {
			n = TBThreads
		}
		addrs := make([]uint64, TBThreads)
		active := make([]bool, TBThreads)
		for t := 0; t < n; t++ {
			addrs[t] = sBase + uint64(off+t)*tupleBytes
			active[t] = true
		}
		b.LoadMasked(addrs, active)
		b.Compute(12)
	}

	// Emit matches to the child's private output run.
	b.Store(func(tid int) uint64 {
		return RegionOut + uint64(part)*1024 + uint64(tid)*8
	})
	b.Compute(8)

	return isa.NewKernel("join-child").Add(b.Build()).Build()
}
