package kernels

import (
	"errors"
	"strings"
	"testing"

	"laperm/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("workloads = %d, want 16 (Table II app-input pairs)", len(all))
	}
	wantApps := []string{"amr", "bht", "bfs", "clr", "regx", "pre", "join", "sssp"}
	apps := Apps()
	if len(apps) != len(wantApps) {
		t.Fatalf("apps = %v, want %v", apps, wantApps)
	}
	for i, a := range wantApps {
		if apps[i] != a {
			t.Errorf("app %d = %q, want %q", i, apps[i], a)
		}
	}
	seen := make(map[string]bool)
	for _, w := range all {
		if w.Name == "" || w.App == "" || w.Input == "" || w.Build == nil {
			t.Errorf("workload %+v has empty fields", w)
		}
		if seen[w.Name] {
			t.Errorf("duplicate workload name %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("bfs-citation")
	if !ok || w.App != "bfs" || w.Input != "citation" {
		t.Errorf("ByName(bfs-citation) = %+v, %v", w, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
	if len(Names()) != 16 {
		t.Error("Names() incomplete")
	}
}

func TestAllWorkloadsBuildValidPrograms(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			k := w.Build(ScaleTiny)
			if err := k.Validate(); err != nil {
				t.Fatalf("invalid program: %v", err)
			}
			if len(k.TBs) != ScaleTiny.parentTBs() {
				t.Errorf("parent TBs = %d, want %d", len(k.TBs), ScaleTiny.parentTBs())
			}
			for _, tb := range k.TBs {
				if tb.Threads != TBThreads {
					t.Errorf("TB threads = %d, want %d", tb.Threads, TBThreads)
				}
			}
		})
	}
}

func TestAllWorkloadsLaunchChildren(t *testing.T) {
	for _, w := range All() {
		k := w.Build(ScaleTiny)
		children := 0
		k.Walk(func(parent, child *isa.Kernel) {
			if parent != nil {
				children++
			}
		})
		if children == 0 {
			t.Errorf("%s: no dynamic launches at tiny scale", w.Name)
		}
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	for _, w := range All() {
		a := w.Build(ScaleTiny)
		b := w.Build(ScaleTiny)
		if a.TotalInstCount() != b.TotalInstCount() {
			t.Errorf("%s: builds differ (%d vs %d insts)", w.Name, a.TotalInstCount(), b.TotalInstCount())
		}
		fa, fb := unionFootprint(a), unionFootprint(b)
		if len(fa) != len(fb) {
			t.Errorf("%s: footprints differ (%d vs %d blocks)", w.Name, len(fa), len(fb))
		}
	}
}

func unionFootprint(k *isa.Kernel) map[uint64]struct{} {
	set := make(map[uint64]struct{})
	k.Walk(func(_, c *isa.Kernel) {
		for _, tb := range c.TBs {
			for _, blk := range tb.Footprint() {
				set[blk] = struct{}{}
			}
		}
	})
	return set
}

func TestScalesGrow(t *testing.T) {
	w, _ := ByName("bfs-citation")
	tiny := w.Build(ScaleTiny).TotalInstCount()
	small := w.Build(ScaleSmall).TotalInstCount()
	medium := w.Build(ScaleMedium).TotalInstCount()
	if !(tiny < small && small < medium) {
		t.Errorf("instruction counts not growing: %d, %d, %d", tiny, small, medium)
	}
}

func TestScaleString(t *testing.T) {
	if ScaleTiny.String() != "tiny" || ScaleSmall.String() != "small" || ScaleMedium.String() != "medium" {
		t.Error("scale names wrong")
	}
	if Scale(9).String() == "" {
		t.Error("unknown scale should format")
	}
}

// TestSiblingRegionsDisjointForAMRAndJoin checks the structural property
// behind Figure 2's lowest bars: sibling children of amr and join read and
// write disjoint private regions (beyond any parent-shared staging).
func TestSiblingRegionsDisjointForAMRAndJoin(t *testing.T) {
	for _, name := range []string{"amr", "join-uniform"} {
		w, _ := ByName(name)
		k := w.Build(ScaleTiny)
		for _, parent := range k.TBs {
			var sibs [][]uint64
			for _, child := range parent.Launches {
				set := make(map[uint64]struct{})
				for _, tb := range child.TBs {
					for _, blk := range tb.Footprint() {
						set[blk] = struct{}{}
					}
				}
				var blocks []uint64
				for b := range set {
					blocks = append(blocks, b)
				}
				sibs = append(sibs, blocks)
			}
			// Pairwise overlap ratio should be tiny.
			for i := 0; i < len(sibs); i++ {
				for j := i + 1; j < len(sibs); j++ {
					inA := make(map[uint64]bool)
					for _, b := range sibs[i] {
						inA[b] = true
					}
					shared := 0
					for _, b := range sibs[j] {
						if inA[b] {
							shared++
						}
					}
					if len(sibs[j]) > 0 && float64(shared)/float64(len(sibs[j])) > 0.15 {
						t.Errorf("%s: siblings %d/%d share %d of %d blocks", name, i, j, shared, len(sibs[j]))
					}
				}
			}
		}
	}
}

// TestParentChildOverlapExists checks every workload has real parent-child
// footprint overlap (the premise of the whole paper).
func TestParentChildOverlapExists(t *testing.T) {
	for _, w := range All() {
		k := w.Build(ScaleTiny)
		sharedAny := false
		for _, parent := range k.TBs {
			if len(parent.Launches) == 0 {
				continue
			}
			pset := make(map[uint64]bool)
			for _, blk := range parent.Footprint() {
				pset[blk] = true
			}
			for _, child := range parent.Launches {
				for _, tb := range child.TBs {
					for _, blk := range tb.Footprint() {
						if pset[blk] {
							sharedAny = true
						}
					}
				}
			}
		}
		if !sharedAny {
			t.Errorf("%s: no parent-child footprint overlap anywhere", w.Name)
		}
	}
}

// TestGraphInputsDiffer ensures the three inputs give different programs
// (different child counts / footprints), the source of the input-dependent
// behaviour in the paper's figures.
func TestGraphInputsDiffer(t *testing.T) {
	counts := make(map[string]int)
	for _, name := range []string{"bfs-citation", "bfs-graph5", "bfs-cage15"} {
		w, _ := ByName(name)
		k := w.Build(ScaleSmall)
		n := 0
		k.Walk(func(p, _ *isa.Kernel) {
			if p != nil {
				n++
			}
		})
		counts[name] = n
	}
	if counts["bfs-citation"] == counts["bfs-graph5"] && counts["bfs-graph5"] == counts["bfs-cage15"] {
		t.Errorf("all inputs produced identical child counts: %v", counts)
	}
}

func TestLaunchesComeFromOwningThreadWarp(t *testing.T) {
	// Launch instructions must be attributed to a single lane (the
	// direct parent thread of Section II-C).
	w, _ := ByName("bfs-citation")
	k := w.Build(ScaleTiny)
	for _, tb := range k.TBs {
		for _, warp := range tb.Warps {
			for _, in := range warp {
				if in.Kind == isa.OpLaunch && in.ActiveLanes != 1 {
					t.Fatalf("launch with %d active lanes", in.ActiveLanes)
				}
			}
		}
	}
}

func TestLookupUnknownWorkload(t *testing.T) {
	if _, err := Lookup("bfs-citation"); err != nil {
		t.Fatalf("Lookup(bfs-citation) = %v, want nil", err)
	}
	_, err := Lookup("no-such-workload")
	var ue *UnknownWorkloadError
	if !errors.As(err, &ue) {
		t.Fatalf("Lookup error = %T %v, want *UnknownWorkloadError", err, err)
	}
	if ue.Name != "no-such-workload" {
		t.Errorf("UnknownWorkloadError.Name = %q", ue.Name)
	}
	if len(ue.Known) != len(All()) {
		t.Errorf("UnknownWorkloadError.Known has %d names, want %d", len(ue.Known), len(All()))
	}
	for _, name := range ue.Known {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error message missing valid name %q: %s", name, err)
		}
	}
}
