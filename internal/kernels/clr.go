package kernels

import (
	"laperm/internal/graph"
	"laperm/internal/isa"
)

// buildCLR constructs one conflict-resolution round of greedy graph
// colouring: each parent thread checks its vertex's colour against the
// leading neighbours; vertices with many neighbours (where the conflict
// scan is expensive) are delegated to child TBs that re-scan the full
// neighbourhood's colours and write a repaired colour.
func buildCLR(s Scale, g *graph.CSR) *isa.Kernel {
	kb := isa.NewKernel("clr")
	for p := 0; p < s.parentTBs(); p++ {
		c := chunk{g: g, base: p * TBThreads}
		b := isa.NewTB(TBThreads).Resources(24, 0)

		// Read own colour and row bounds.
		b.Load(func(tid int) uint64 { return propAddr(c.vertex(tid)) })
		c.loadRowPtrs(b)
		b.Compute(8)
		c.peekNeighbors(b)
		b.Compute(6)
		// Check the colours of the peeked neighbours for conflicts.
		for step := 0; step < peekSteps; step++ {
			addrs := make([]uint64, TBThreads)
			active := make([]bool, TBThreads)
			for tid := 0; tid < TBThreads; tid++ {
				if step < c.degree(tid) {
					v := c.vertex(tid)
					w := int(g.Col[int(g.RowPtr[v])+step])
					addrs[tid] = propAddr(w)
					active[tid] = true
				}
			}
			b.LoadMasked(addrs, active)
		}
		b.Compute(12)

		for _, v := range c.highDegreeVertices() {
			b.Launch(v-c.base, clrChild(g, v))
		}

		// Inline repair of low-degree conflicted vertices.
		c.inlineExpand(b, false)
		saddrs := make([]uint64, TBThreads)
		sactive := make([]bool, TBThreads)
		any := false
		for tid := 0; tid < TBThreads; tid++ {
			v := c.vertex(tid)
			if d := c.degree(tid); d > 0 && d <= childDegThreshold && hashFloat(uint64(v)*7) < 0.3 {
				saddrs[tid] = propAddr(v)
				sactive[tid] = true
				any = true
			}
		}
		if any {
			b.Compute(6)
			b.StoreMasked(saddrs, sactive)
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}

// clrChild re-scans the full neighbourhood colours of vertex v and writes
// the repaired colour of v (a single store to the vertex's own property).
func clrChild(g *graph.CSR, v int) *isa.Kernel {
	return expansionChild("clr-child", g, v, expandOpts{extra: func(b *isa.TBBuilder, edges []int) {
		// First-fit over observed colours, then repair own colour.
		b.Compute(14)
		b.Store(func(tid int) uint64 { return propAddr(v) })
	}})
}
