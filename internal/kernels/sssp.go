package kernels

import (
	"laperm/internal/graph"
	"laperm/internal/isa"
)

// buildSSSP constructs one relaxation sweep of single-source shortest paths:
// structurally like BFS, but every expanded edge also reads its weight and
// distance improvements write back to the distance array, so children touch
// the weight region (aligned with their adjacency range) in addition to the
// BFS footprint.
func buildSSSP(s Scale, g *graph.CSR) *isa.Kernel {
	kb := isa.NewKernel("sssp")
	for p := 0; p < s.parentTBs(); p++ {
		c := chunk{g: g, base: p * TBThreads}
		b := isa.NewTB(TBThreads).Resources(28, 0)

		// Read the distance of each owned vertex and its row bounds.
		b.Load(func(tid int) uint64 { return propAddr(c.vertex(tid)) })
		c.loadRowPtrs(b)
		b.Compute(10)
		c.peekNeighbors(b)
		// Peek the corresponding weights too (same indices as the
		// peeked adjacency entries).
		for step := 0; step < peekSteps; step++ {
			addrs := make([]uint64, TBThreads)
			active := make([]bool, TBThreads)
			for tid := 0; tid < TBThreads; tid++ {
				if step < c.degree(tid) {
					v := c.vertex(tid)
					addrs[tid] = weightAddr(int(g.RowPtr[v]) + step)
					active[tid] = true
				}
			}
			b.LoadMasked(addrs, active)
		}
		b.Compute(12)

		for _, v := range c.highDegreeVertices() {
			b.Launch(v-c.base, expansionChild("sssp-child", g, v,
				expandOpts{extra: ssspEdgeWork(g, v), frontierStore: true}))
		}

		c.inlineExpand(b, true)
		b.Compute(10)
		kb.Add(b.Build())
	}
	return kb.Build()
}

// ssspEdgeWork returns the per-edge extension for an SSSP expansion child:
// load the edge weight, then write improved distances for a data-dependent
// subset of neighbours.
func ssspEdgeWork(g *graph.CSR, v int) func(b *isa.TBBuilder, edges []int) {
	return func(b *isa.TBBuilder, edges []int) {
		addrs := make([]uint64, TBThreads)
		active := make([]bool, TBThreads)
		for t, e := range edges {
			addrs[t] = weightAddr(e)
			active[t] = true
		}
		b.LoadMasked(addrs, active)
		b.Compute(10)

		// Relaxations that improve the distance store it back.
		saddrs := make([]uint64, TBThreads)
		sactive := make([]bool, TBThreads)
		any := false
		for t, e := range edges {
			w := int(g.Col[e])
			if hashFloat(uint64(e)*17+uint64(v)) < 0.4 {
				saddrs[t] = propAddr(w)
				sactive[t] = true
				any = true
			}
		}
		if any {
			b.StoreMasked(saddrs, sactive)
		}
	}
}
