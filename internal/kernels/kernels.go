// Package kernels implements the benchmark applications of Table II as
// workload generators for the simulator. Each benchmark emits the same
// parent→child launch topology and memory reference streams as its CUDA
// dynamic-parallelism implementation: parent thread blocks read their share
// of the input, decide data-dependently where nested parallelism exists, and
// launch child grids that consume data overlapping the parent's footprint.
//
// The generators stand in for the paper's CUDA binaries and input files (see
// DESIGN.md §1): what matters for the LaPerm study is the address streams
// and launch structure, both of which are reproduced, including the
// input-dependent child-sibling locality differences (citation/cage15
// concentrated vs graph500 scattered) and the near-zero sibling sharing of
// amr and join.
package kernels

import (
	"fmt"
	"strings"
	"sync"

	"laperm/internal/isa"
)

// Scale selects the workload size.
type Scale int

const (
	// ScaleTiny is for unit tests: a handful of parent TBs.
	ScaleTiny Scale = iota
	// ScaleSmall is the default experiment size.
	ScaleSmall
	// ScaleMedium is for longer benchmark runs.
	ScaleMedium
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleTiny:
		return "tiny"
	case ScaleSmall:
		return "small"
	case ScaleMedium:
		return "medium"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// parentTBs returns the number of parent thread blocks at this scale.
//
// The simulated K20c holds 13 SMXs x 16 TBs = 208 resident thread blocks,
// so the experiment scales put several waves of parent TBs in flight — the
// regime the paper studies, where child TBs contend with undispatched
// parents (Section III-B). Tiny fits entirely on the machine and exists for
// fast mechanical tests only.
func (s Scale) parentTBs() int {
	switch s {
	case ScaleTiny:
		return 32
	case ScaleMedium:
		return 1248
	default:
		return 624
	}
}

// TBThreads is the thread-block size used by every benchmark (two warps,
// the fine-grained dynamic-parallelism granularity the paper targets).
const TBThreads = 64

// Memory-region base addresses. Each data structure of a workload lives in
// its own region so footprints are interpretable and regions never alias.
const (
	RegionRowPtr uint64 = 0x0000_0000 // CSR row pointers
	RegionCol    uint64 = 0x1000_0000 // CSR adjacency
	RegionProp   uint64 = 0x2000_0000 // per-vertex property (level/dist/color)
	RegionFront  uint64 = 0x3000_0000 // output frontier / flags
	RegionWeight uint64 = 0x4000_0000 // edge weights
	RegionData   uint64 = 0x5000_0000 // primary app data (cells/points/packets/ratings/R)
	RegionData2  uint64 = 0x6000_0000 // secondary app data (tree nodes/NFA table/items/S)
	RegionStage  uint64 = 0x7000_0000 // parent-produced staging buffers
	RegionOut    uint64 = 0x8000_0000 // child-private outputs
)

// Workload is one (application, input) pair of the evaluation.
type Workload struct {
	// Name is the unique "app-input" identifier, e.g. "bfs-citation".
	Name string
	// App and Input are the Table II application and data-set labels.
	App   string
	Input string
	// Build constructs the host kernel for the given scale. Builds are
	// deterministic: equal scale, equal program. For the Table II
	// workloads the built program is memoized per (name, scale) and
	// shared across calls — callers must treat it as immutable, which the
	// engine guarantees (it executes programs through its own mutable
	// wrappers and never writes to isa structures).
	Build func(scale Scale) *isa.Kernel
}

// programCache memoizes the built program of each (workload, scale) pair.
// Builds are deterministic (equal scale, equal program) and the engine never
// mutates isa structures — it executes them through its own KernelInstance /
// Block / warp wrappers — so one built program can back any number of
// concurrent simulation cells. Before this cache a parallel matrix sweep
// rebuilt the full program once per cell (~73% of all sweep allocations),
// and the resulting GC pressure serialized the worker pool.
var programCache sync.Map // "name/scale" -> *isa.Kernel

// memo wraps a deterministic builder with the program cache under the given
// workload name. A LoadOrStore race at most builds the program twice and
// keeps one copy; both are identical.
func memo(name string, build func(Scale) *isa.Kernel) func(Scale) *isa.Kernel {
	return func(s Scale) *isa.Kernel {
		key := fmt.Sprintf("%s/%d", name, int(s))
		if v, ok := programCache.Load(key); ok {
			return v.(*isa.Kernel)
		}
		v, _ := programCache.LoadOrStore(key, build(s))
		return v.(*isa.Kernel)
	}
}

// All returns every workload of the evaluation in the paper's Table II
// order.
func All() []Workload {
	return []Workload{
		{Name: "amr", App: "amr", Input: "combustion", Build: memo("amr", buildAMR)},
		{Name: "bht", App: "bht", Input: "random-points", Build: memo("bht", buildBHT)},
		{Name: "bfs-citation", App: "bfs", Input: "citation", Build: memo("bfs-citation", graphBuilder(buildBFS, inputCitation))},
		{Name: "bfs-graph5", App: "bfs", Input: "graph5", Build: memo("bfs-graph5", graphBuilder(buildBFS, inputGraph5))},
		{Name: "bfs-cage15", App: "bfs", Input: "cage15", Build: memo("bfs-cage15", graphBuilder(buildBFS, inputCage15))},
		{Name: "clr-citation", App: "clr", Input: "citation", Build: memo("clr-citation", graphBuilder(buildCLR, inputCitation))},
		{Name: "clr-graph5", App: "clr", Input: "graph5", Build: memo("clr-graph5", graphBuilder(buildCLR, inputGraph5))},
		{Name: "clr-cage15", App: "clr", Input: "cage15", Build: memo("clr-cage15", graphBuilder(buildCLR, inputCage15))},
		{Name: "regx-darpa", App: "regx", Input: "darpa", Build: memo("regx-darpa", func(s Scale) *isa.Kernel { return buildREGX(s, true) })},
		{Name: "regx-strings", App: "regx", Input: "strings", Build: memo("regx-strings", func(s Scale) *isa.Kernel { return buildREGX(s, false) })},
		{Name: "pre-movielens", App: "pre", Input: "movielens", Build: memo("pre-movielens", buildPRE)},
		{Name: "join-uniform", App: "join", Input: "uniform", Build: memo("join-uniform", func(s Scale) *isa.Kernel { return buildJOIN(s, false) })},
		{Name: "join-gaussian", App: "join", Input: "gaussian", Build: memo("join-gaussian", func(s Scale) *isa.Kernel { return buildJOIN(s, true) })},
		{Name: "sssp-citation", App: "sssp", Input: "citation", Build: memo("sssp-citation", graphBuilder(buildSSSP, inputCitation))},
		{Name: "sssp-graph5", App: "sssp", Input: "graph5", Build: memo("sssp-graph5", graphBuilder(buildSSSP, inputGraph5))},
		{Name: "sssp-cage15", App: "sssp", Input: "cage15", Build: memo("sssp-cage15", graphBuilder(buildSSSP, inputCage15))},
	}
}

// ByName returns the named workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// UnknownWorkloadError reports a workload lookup by a name not in Table II,
// carrying the valid names so callers (CLI usage errors, the simulation
// service's 400 responses) can list them without re-deriving the set.
type UnknownWorkloadError struct {
	// Name is the unknown name that was requested.
	Name string
	// Known lists every valid workload name in evaluation order.
	Known []string
}

func (e *UnknownWorkloadError) Error() string {
	return fmt.Sprintf("kernels: unknown workload %q (valid: %s)", e.Name, strings.Join(e.Known, ", "))
}

// Lookup returns the named workload, or a structured
// *UnknownWorkloadError listing the valid names.
func Lookup(name string) (Workload, error) {
	w, ok := ByName(name)
	if !ok {
		return Workload{}, &UnknownWorkloadError{Name: name, Known: Names()}
	}
	return w, nil
}

// Names returns all workload names in evaluation order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, w := range all {
		names[i] = w.Name
	}
	return names
}

// Apps returns the distinct application names in evaluation order.
func Apps() []string {
	seen := make(map[string]bool)
	var apps []string
	for _, w := range All() {
		if !seen[w.App] {
			seen[w.App] = true
			apps = append(apps, w.App)
		}
	}
	return apps
}

// splitmix64 is a small deterministic hash used for data-dependent but
// reproducible decisions inside workload generators.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashFloat returns a deterministic pseudo-random float in [0, 1) for the
// given key.
func hashFloat(key uint64) float64 {
	return float64(splitmix64(key)>>11) / float64(1<<53)
}
