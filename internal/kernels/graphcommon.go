package kernels

import (
	"fmt"
	"sync"

	"laperm/internal/graph"
	"laperm/internal/isa"
)

// The three graph inputs of Table II, generated synthetically with the
// connectivity-locality properties the paper attributes to each (see
// internal/graph): citation and cage15 concentrated, graph500 scattered.

func graphVertices(s Scale) int { return s.parentTBs() * TBThreads }

// inputCache memoizes the generated graph inputs per (input, scale). A CSR
// is immutable once built — every consumer (workload builders, the graph
// algorithms, the footprint analysis) only reads it — so one instance can
// back any number of concurrent simulation cells. Generation is
// deterministic, so a LoadOrStore race between two cells keeps an instance
// identical to the one discarded.
var inputCache sync.Map // "input/scale" -> *graph.CSR

func cachedInput(input string, s Scale, gen func(Scale) *graph.CSR) *graph.CSR {
	key := fmt.Sprintf("%s/%d", input, int(s))
	if v, ok := inputCache.Load(key); ok {
		return v.(*graph.CSR)
	}
	v, _ := inputCache.LoadOrStore(key, gen(s))
	return v.(*graph.CSR)
}

func inputCitation(s Scale) *graph.CSR {
	return cachedInput("citation", s, func(s Scale) *graph.CSR {
		return graph.Citation(graphVertices(s), 5, 101)
	})
}

func inputGraph5(s Scale) *graph.CSR {
	return cachedInput("graph5", s, func(s Scale) *graph.CSR {
		logn := 9
		for (1 << logn) < graphVertices(s) {
			logn++
		}
		return graph.RMAT(logn, 5, 102)
	})
}

func inputCage15(s Scale) *graph.CSR {
	return cachedInput("cage15", s, func(s Scale) *graph.CSR {
		return graph.Banded(graphVertices(s), 7, 24, 103)
	})
}

// graphBuilder adapts a graph application builder and an input generator to
// the Workload.Build signature.
func graphBuilder(app func(Scale, *graph.CSR) *isa.Kernel, input func(Scale) *graph.CSR) func(Scale) *isa.Kernel {
	return func(s Scale) *isa.Kernel { return app(s, input(s)) }
}

// Tunables shared by the graph applications.
const (
	// childDegThreshold is the out-degree above which the parent thread
	// designates a child TB to expand the vertex instead of expanding it
	// inline (the paper's motivating pattern, Section III-A).
	childDegThreshold = 16
	// peekSteps is how many leading neighbours the parent inspects while
	// deciding; the child re-reads them, creating parent-child overlap.
	peekSteps = 6
)

// chunk describes the 64 consecutive vertices one parent TB owns.
type chunk struct {
	g    *graph.CSR
	base int
}

func (c chunk) vertex(tid int) int { return c.base + tid }

func (c chunk) degree(tid int) int {
	v := c.vertex(tid)
	if v >= c.g.NumVertices() {
		return 0
	}
	return c.g.Degree(v)
}

// rowPtrAddr returns the address of rowPtr[v].
func rowPtrAddr(v int) uint64 { return RegionRowPtr + uint64(v)*4 }

// colAddr returns the address of col[e] for global edge index e.
func colAddr(e int) uint64 { return RegionCol + uint64(e)*4 }

// propAddr returns the address of the per-vertex property of v.
func propAddr(v int) uint64 { return RegionProp + uint64(v)*4 }

// frontAddr returns the address of the output-frontier slot of v.
func frontAddr(v int) uint64 { return RegionFront + uint64(v)*4 }

// weightAddr returns the address of the weight of edge e.
func weightAddr(e int) uint64 { return RegionWeight + uint64(e)*4 }

// loadRowPtrs appends the parent's loads of rowPtr[v] and rowPtr[v+1].
func (c chunk) loadRowPtrs(b *isa.TBBuilder) {
	b.Load(func(tid int) uint64 { return rowPtrAddr(c.vertex(tid)) })
	b.Load(func(tid int) uint64 { return rowPtrAddr(c.vertex(tid) + 1) })
}

// peekNeighbors appends masked loads of the first peekSteps adjacency
// entries of every vertex in the chunk, followed by a gather of those
// neighbours' properties: the parent inspects whether leading neighbours
// are unvisited before deciding to delegate, touching exactly the blocks a
// delegated child will re-read.
func (c chunk) peekNeighbors(b *isa.TBBuilder) {
	for step := 0; step < peekSteps; step++ {
		addrs := make([]uint64, TBThreads)
		gaddrs := make([]uint64, TBThreads)
		active := make([]bool, TBThreads)
		for tid := 0; tid < TBThreads; tid++ {
			if step < c.degree(tid) {
				v := c.vertex(tid)
				w := int(c.g.Col[int(c.g.RowPtr[v])+step])
				addrs[tid] = colAddr(int(c.g.RowPtr[v]) + step)
				gaddrs[tid] = propAddr(w)
				active[tid] = true
			}
		}
		b.LoadMasked(addrs, active)
		b.Compute(4)
		b.LoadMasked(gaddrs, active)
	}
}

// inlineExpand appends the parent's inline expansion of the low-degree
// vertices (degree <= childDegThreshold): the remaining adjacency entries
// and a gather of the neighbour property with a conditional frontier store.
func (c chunk) inlineExpand(b *isa.TBBuilder, withProperty bool) {
	maxDeg := 0
	for tid := 0; tid < TBThreads; tid++ {
		if d := c.degree(tid); d <= childDegThreshold && d > maxDeg {
			maxDeg = d
		}
	}
	for step := peekSteps; step < maxDeg; step++ {
		addrs := make([]uint64, TBThreads)
		active := make([]bool, TBThreads)
		for tid := 0; tid < TBThreads; tid++ {
			if d := c.degree(tid); d <= childDegThreshold && step < d {
				v := c.vertex(tid)
				addrs[tid] = colAddr(int(c.g.RowPtr[v]) + step)
				active[tid] = true
			}
		}
		b.LoadMasked(addrs, active)
	}
	if !withProperty {
		return
	}
	// Gather the property of the first neighbours and update the
	// frontier for the inline-expanded vertices.
	addrs := make([]uint64, TBThreads)
	active := make([]bool, TBThreads)
	stores := make([]uint64, TBThreads)
	for tid := 0; tid < TBThreads; tid++ {
		d := c.degree(tid)
		if d == 0 || d > childDegThreshold {
			continue
		}
		v := c.vertex(tid)
		w := int(c.g.Col[c.g.RowPtr[v]])
		addrs[tid] = propAddr(w)
		stores[tid] = frontAddr(w)
		active[tid] = true
	}
	b.LoadMasked(addrs, active)
	b.Compute(6)
	b.StoreMasked(stores, active)
}

// highDegreeVertices returns the chunk's vertices whose expansion is
// delegated to child TBs, in vertex order.
func (c chunk) highDegreeVertices() []int {
	var out []int
	for tid := 0; tid < TBThreads; tid++ {
		if c.degree(tid) > childDegThreshold {
			out = append(out, c.vertex(tid))
		}
	}
	return out
}

// expandOpts customises expansionChild per application.
type expandOpts struct {
	// extra, when non-nil, appends application-specific instructions for
	// the child TB's edge range.
	extra func(b *isa.TBBuilder, edges []int)
	// frontierStore controls whether discovered neighbours are marked in
	// the output frontier (true for traversal apps, false for colouring).
	frontierStore bool
}

// expansionChild builds the child grid that expands vertex v: one TB per 64
// edges. Each child thread loads its adjacency entry and gathers the
// neighbour property; options add per-app edge work and frontier updates.
func expansionChild(name string, g *graph.CSR, v int, o expandOpts) *isa.Kernel {
	deg := g.Degree(v)
	row := int(g.RowPtr[v])
	kb := isa.NewKernel(name)
	for off := 0; off < deg; off += TBThreads {
		n := deg - off
		if n > TBThreads {
			n = TBThreads
		}
		b := isa.NewTB(TBThreads).Resources(20, 0)
		// Re-read the row bounds the parent read (parent-child
		// overlap in the rowPtr block).
		b.Load(func(tid int) uint64 { return rowPtrAddr(v) })
		b.Compute(4)

		edges := make([]int, n)
		addrs := make([]uint64, TBThreads)
		active := make([]bool, TBThreads)
		for t := 0; t < n; t++ {
			e := row + off + t
			edges[t] = e
			addrs[t] = colAddr(e)
			active[t] = true
		}
		b.LoadMasked(addrs, active)
		b.Compute(4)

		// Gather the neighbour property (level/dist/colour).
		gaddrs := make([]uint64, TBThreads)
		for t := 0; t < n; t++ {
			gaddrs[t] = propAddr(int(g.Col[edges[t]]))
		}
		b.LoadMasked(gaddrs, active)
		b.Compute(4)

		if o.extra != nil {
			o.extra(b, edges)
		}

		if o.frontierStore {
			// Conditionally mark discovered neighbours in the
			// frontier.
			saddrs := make([]uint64, TBThreads)
			sactive := make([]bool, TBThreads)
			any := false
			for t := 0; t < n; t++ {
				w := int(g.Col[edges[t]])
				if hashFloat(uint64(w)*31+uint64(v)) < 0.6 {
					saddrs[t] = frontAddr(w)
					sactive[t] = true
					any = true
				}
			}
			if any {
				b.StoreMasked(saddrs, sactive)
			}
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}
