package kernels

import (
	"laperm/internal/graph"
	"laperm/internal/isa"
)

// buildBFS constructs one breadth-first-search frontier-expansion level, the
// paper's canonical dynamic-parallelism pattern (Section III-A): each parent
// thread owns a frontier vertex, expands low-degree vertices inline, and
// designates a child TB to expand each high-degree vertex so the parent's
// intra-thread locality over the adjacency list becomes inter-thread
// locality of the child.
func buildBFS(s Scale, g *graph.CSR) *isa.Kernel {
	kb := isa.NewKernel("bfs")
	for p := 0; p < s.parentTBs(); p++ {
		c := chunk{g: g, base: p * TBThreads}
		b := isa.NewTB(TBThreads).Resources(24, 0)

		// Read the frontier slice and the row bounds of the owned
		// vertices.
		b.Load(func(tid int) uint64 { return frontAddr(c.vertex(tid)) })
		c.loadRowPtrs(b)
		b.Compute(8)
		// Read the current level of each owned vertex.
		b.Load(func(tid int) uint64 { return propAddr(c.vertex(tid)) })
		b.Compute(6)
		// Peek leading neighbours to classify the vertex.
		c.peekNeighbors(b)
		b.Compute(10)

		// Delegate high-degree vertices to child TBs. The launching
		// thread is the vertex's owner (the direct parent thread).
		for _, v := range c.highDegreeVertices() {
			b.Launch(v-c.base, expansionChild("bfs-child", g, v, expandOpts{frontierStore: true}))
		}

		// Expand the low-degree vertices inline.
		c.inlineExpand(b, true)
		b.Compute(8)
		kb.Add(b.Build())
	}
	return kb.Build()
}
