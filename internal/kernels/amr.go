package kernels

import "laperm/internal/isa"

// buildAMR constructs one refinement step of adaptive mesh refinement over a
// combustion-simulation-like grid: each parent TB owns an 8x8 cell tile,
// evaluates a per-strip error estimate, and launches a child TB to refine
// each high-error strip at 2x resolution. Refinement is spatially clustered
// (the flame front), so launch counts are imbalanced across parents.
//
// Children re-read their strip of the parent's tile (parent-child locality)
// but write fine cells to private regions, so sibling TBs share essentially
// nothing — the behaviour Figure 2 reports for amr.
func buildAMR(s Scale) *isa.Kernel {
	const (
		tileRows  = 8
		tileCols  = 8
		stripRows = 2 // each child refines a 2-row strip
	)
	parents := s.parentTBs()
	tilesPerRow := 8
	gridCols := tilesPerRow * tileCols
	cellAddr := func(y, x int) uint64 { return RegionData + uint64(y*gridCols+x)*4 }

	childID := 0
	kb := isa.NewKernel("amr")
	for p := 0; p < parents; p++ {
		ty, tx := p/tilesPerRow, p%tilesPerRow
		y0, x0 := ty*tileRows, tx*tileCols
		b := isa.NewTB(TBThreads).Resources(26, 0)

		// Each thread owns one cell of the tile (row-major within the
		// tile) and reads it plus its east neighbour for the gradient.
		own := func(tid int) (int, int) { return y0 + tid/tileCols, x0 + tid%tileCols }
		b.Load(func(tid int) uint64 { y, x := own(tid); return cellAddr(y, x) })
		b.Load(func(tid int) uint64 { y, x := own(tid); return cellAddr(y, x+1) })
		b.Compute(16)
		// South neighbour for the vertical gradient.
		b.Load(func(tid int) uint64 { y, x := own(tid); return cellAddr(y+1, x) })
		b.Compute(16)

		// The flame front concentrates in the middle tiles: those
		// refine most strips, the periphery refines few.
		rate := 0.15
		if p >= parents/3 && p < 2*parents/3 {
			rate = 0.8
		}
		for strip := 0; strip < tileRows/stripRows; strip++ {
			if hashFloat(uint64(p)*131+uint64(strip)) >= rate {
				continue
			}
			b.Launch(strip*stripRows*tileCols, amrChild(cellAddr, y0+strip*stripRows, x0, stripRows, tileCols, childID))
			childID++
		}
		b.Compute(12)
		// Write the per-tile error summary.
		b.Store(func(tid int) uint64 { return RegionFront + uint64(p*TBThreads+tid)*4 })
		kb.Add(b.Build())
	}
	return kb.Build()
}

// amrChild refines a rows x cols strip starting at (y0, x0) to 2x
// resolution, writing the fine cells to a private output region.
func amrChild(cellAddr func(y, x int) uint64, y0, x0, rows, cols, childID int) *isa.Kernel {
	b := isa.NewTB(TBThreads).Resources(20, 0)

	// Re-read the strip's coarse cells (rows*cols = 16 cells for the
	// standard strip; one active lane per cell).
	addrs := make([]uint64, TBThreads)
	active := make([]bool, TBThreads)
	for i := 0; i < rows*cols && i < TBThreads; i++ {
		addrs[i] = cellAddr(y0+i/cols, x0+i%cols)
		active[i] = true
	}
	b.LoadMasked(addrs, active)
	b.Compute(20)
	// Interpolation stencil: west neighbour of each coarse cell.
	for i := 0; i < rows*cols && i < TBThreads; i++ {
		x := x0 + i%cols - 1
		if x < 0 {
			x = 0
		}
		addrs[i] = cellAddr(y0+i/cols, x)
	}
	b.LoadMasked(addrs, active)
	b.Compute(20)

	// Write the 2x-refined cells: rows*cols*4 fine cells, one per
	// thread, to this child's private region.
	fineBase := RegionOut + uint64(childID)*uint64(rows*cols*4)*4
	b.Store(func(tid int) uint64 { return fineBase + uint64(tid)*4 })
	b.Compute(10)

	return isa.NewKernel("amr-child").Add(b.Build()).Build()
}
