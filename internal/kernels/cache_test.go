package kernels

import (
	"reflect"
	"sync"
	"testing"

	"laperm/internal/isa"
)

// TestGraphInputCacheSharesOneInstance: repeated builds of the same
// (input, scale) must return the identical immutable CSR, and concurrent
// first-use from many goroutines must converge on one instance (the
// LoadOrStore discipline) with deterministic contents.
func TestGraphInputCacheSharesOneInstance(t *testing.T) {
	a := inputCitation(ScaleTiny)
	b := inputCitation(ScaleTiny)
	if a != b {
		t.Error("inputCitation(ScaleTiny) built two instances; cache miss")
	}
	if c := inputCitation(ScaleSmall); c == a {
		t.Error("different scales share one CSR instance")
	}

	const goroutines = 16
	got := make([]any, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			got[i] = inputGraph5(ScaleTiny)
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if got[i] != got[0] {
			t.Fatalf("concurrent inputGraph5 calls returned distinct instances")
		}
	}
}

// kernelShape flattens a kernel tree into a comparable summary: per-grid TB
// counts and instruction totals, in walk order.
func kernelShape(k *isa.Kernel) [][2]int64 {
	var shape [][2]int64
	add := func(g *isa.Kernel) { shape = append(shape, [2]int64{int64(len(g.TBs)), g.TotalInstCount()}) }
	add(k)
	k.Walk(func(parent, child *isa.Kernel) {
		if parent != nil {
			add(child)
		}
	})
	return shape
}

// TestWorkloadBuildsAreDeterministic: two independent builds of a cached-
// input workload produce structurally identical programs — the property the
// parallel experiment pool's bit-identical-results contract rests on.
func TestWorkloadBuildsAreDeterministic(t *testing.T) {
	w, ok := ByName("bfs-citation")
	if !ok {
		t.Fatal("bfs-citation missing")
	}
	s1 := kernelShape(w.Build(ScaleTiny))
	s2 := kernelShape(w.Build(ScaleTiny))
	if !reflect.DeepEqual(s1, s2) {
		t.Error("two builds of the same workload differ structurally")
	}
	if len(s1) < 2 {
		t.Fatalf("bfs-citation built %d grids; expected dynamic children", len(s1))
	}
}
