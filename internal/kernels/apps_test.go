package kernels

import (
	"testing"

	"laperm/internal/isa"
)

// childrenPerParent returns the number of child grids launched by each
// parent TB of a workload.
func childrenPerParent(k *isa.Kernel) []int {
	out := make([]int, len(k.TBs))
	for i, tb := range k.TBs {
		out[i] = len(tb.Launches)
	}
	return out
}

// TestAMRLaunchClustering: the combustion flame front concentrates
// refinement in the middle tiles, so the central third of parents must
// launch far more children than the periphery (the imbalance that stresses
// SMX-Bind).
func TestAMRLaunchClustering(t *testing.T) {
	w, _ := ByName("amr")
	k := w.Build(ScaleSmall)
	counts := childrenPerParent(k)
	n := len(counts)
	periphery, centre := 0, 0
	for i, c := range counts {
		if i >= n/3 && i < 2*n/3 {
			centre += c
		} else {
			periphery += c
		}
	}
	if centre <= periphery {
		t.Errorf("AMR refinement not clustered: centre %d children vs periphery %d", centre, periphery)
	}
}

// TestAMRChildrenWritePrivateFineGrids: every amr child writes to a region
// no other child writes (RegionOut disjointness behind Figure 2's zero
// sibling sharing).
func TestAMRChildrenWritePrivateFineGrids(t *testing.T) {
	w, _ := ByName("amr")
	k := w.Build(ScaleTiny)
	seen := make(map[uint64]bool)
	for _, parent := range k.TBs {
		for _, child := range parent.Launches {
			mine := make(map[uint64]bool)
			for _, tb := range child.TBs {
				for _, warp := range tb.Warps {
					for _, in := range warp {
						if in.Kind != isa.OpStore {
							continue
						}
						for _, a := range in.Addrs {
							if a >= RegionOut {
								mine[a/128] = true
							}
						}
					}
				}
			}
			for blk := range mine {
				if seen[blk] {
					t.Fatalf("two amr children share output block %#x", blk)
				}
				seen[blk] = true
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no fine-grid stores observed")
	}
}

// TestREGXInputsDiffer: darpa packets are longer (more work per child) and
// match more often (more children) than the random-string collection.
func TestREGXInputsDiffer(t *testing.T) {
	darpa, _ := ByName("regx-darpa")
	strings_, _ := ByName("regx-strings")
	kd := darpa.Build(ScaleTiny)
	ks := strings_.Build(ScaleTiny)

	count := func(k *isa.Kernel) (children int, insts int64) {
		for _, tb := range k.TBs {
			children += len(tb.Launches)
			for _, c := range tb.Launches {
				insts += c.InstCount()
			}
		}
		return
	}
	dc, di := count(kd)
	sc, si := count(ks)
	if dc <= sc {
		t.Errorf("darpa children %d not above strings %d (match rates)", dc, sc)
	}
	if di/int64(dc) <= si/int64(sc) {
		t.Errorf("darpa per-child work %d not above strings %d (payload length)",
			di/int64(dc), si/int64(sc))
	}
}

// TestJOINGaussianSkew: the gaussian input's S partitions are skewed, so
// child instruction counts vary much more than under the uniform input.
func TestJOINGaussianSkew(t *testing.T) {
	spread := func(name string) (min, max int64) {
		w, _ := ByName(name)
		k := w.Build(ScaleTiny)
		first := true
		for _, tb := range k.TBs {
			for _, c := range tb.Launches {
				n := c.InstCount()
				if first || n < min {
					min = n
				}
				if first || n > max {
					max = n
				}
				first = false
			}
		}
		return
	}
	uMin, uMax := spread("join-uniform")
	gMin, gMax := spread("join-gaussian")
	if uMin != uMax {
		t.Errorf("uniform join children uneven: %d..%d", uMin, uMax)
	}
	// The child's fixed work (staged-bucket read, output stores) dilutes
	// the S-stream variance, so require a clear but not extreme spread.
	if gMax*2 < gMin*3 {
		t.Errorf("gaussian join children not skewed: %d..%d", gMin, gMax)
	}
}

// TestJOINChildrenConsumeStagedData: every join child reads the staging
// region its parent wrote (the producer/consumer pattern behind the
// temporal-locality argument).
func TestJOINChildrenConsumeStagedData(t *testing.T) {
	w, _ := ByName("join-uniform")
	k := w.Build(ScaleTiny)
	for pi, tb := range k.TBs {
		parentStores := make(map[uint64]bool)
		for _, warp := range tb.Warps {
			for _, in := range warp {
				if in.Kind == isa.OpStore {
					for _, a := range in.Addrs {
						if a >= RegionStage && a < RegionOut {
							parentStores[a/128] = true
						}
					}
				}
			}
		}
		if len(parentStores) == 0 {
			t.Fatalf("parent %d staged nothing", pi)
		}
		for ci, c := range tb.Launches {
			found := false
			for _, ctb := range c.TBs {
				for _, blk := range ctb.Footprint() {
					if parentStores[blk] {
						found = true
					}
				}
			}
			if !found {
				t.Errorf("parent %d child %d never reads the staged bucket", pi, ci)
			}
		}
	}
}

// TestBHTChildrenShareTopTreeAndPoints: every bht child re-reads part of
// its parent's point chunk and the shared top tree nodes.
func TestBHTChildrenShareTopTreeAndPoints(t *testing.T) {
	w, _ := ByName("bht")
	k := w.Build(ScaleTiny)
	topTreeBlock := RegionData2 / 128 // node 0 lives in the first block
	for pi, tb := range k.TBs {
		pset := make(map[uint64]bool)
		for _, blk := range tb.Footprint() {
			pset[blk] = true
		}
		for ci, c := range tb.Launches {
			sharesParent, sharesTree := false, false
			for _, ctb := range c.TBs {
				for _, blk := range ctb.Footprint() {
					if pset[blk] {
						sharesParent = true
					}
					if blk == topTreeBlock {
						sharesTree = true
					}
				}
			}
			if !sharesParent {
				t.Errorf("bht parent %d child %d shares nothing with parent", pi, ci)
			}
			if !sharesTree {
				t.Errorf("bht parent %d child %d never touches the tree root", pi, ci)
			}
		}
	}
}

// TestGraphChildrenCoverFullAdjacency: a delegated vertex's children read
// every adjacency entry of that vertex (the expansion is complete).
func TestGraphChildrenCoverFullAdjacency(t *testing.T) {
	g := inputCitation(ScaleTiny)
	k := buildBFS(ScaleTiny, g)
	checked := 0
	for p, tb := range k.TBs {
		c := chunk{g: g, base: p * TBThreads}
		high := c.highDegreeVertices()
		if len(high) != len(tb.Launches) {
			t.Fatalf("parent %d: %d high-degree vertices but %d launches", p, len(high), len(tb.Launches))
		}
		for i, v := range high {
			child := tb.Launches[i]
			blocks := make(map[uint64]bool)
			for _, ctb := range child.TBs {
				for _, blk := range ctb.Footprint() {
					blocks[blk] = true
				}
			}
			for e := int(g.RowPtr[v]); e < int(g.RowPtr[v+1]); e++ {
				if !blocks[colAddr(e)/128] {
					t.Fatalf("vertex %d edge %d not covered by its child", v, e)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no delegated vertices at tiny scale")
	}
}

// TestPREHotItemsSharedAcrossChildren: the Zipf-popular item features are
// read by most pre children (the sibling-sharing source).
func TestPREHotItemsSharedAcrossChildren(t *testing.T) {
	w, _ := ByName("pre-movielens")
	k := w.Build(ScaleTiny)
	blockReaders := make(map[uint64]int)
	children := 0
	for _, tb := range k.TBs {
		for _, c := range tb.Launches {
			children++
			seen := make(map[uint64]bool)
			for _, ctb := range c.TBs {
				for _, blk := range ctb.Footprint() {
					if blk*128 >= RegionData2 && blk*128 < RegionStage && !seen[blk] {
						seen[blk] = true
						blockReaders[blk]++
					}
				}
			}
		}
	}
	if children < 4 {
		t.Skip("too few children at tiny scale")
	}
	maxReaders := 0
	for _, n := range blockReaders {
		if n > maxReaders {
			maxReaders = n
		}
	}
	if maxReaders < children/2 {
		t.Errorf("hottest item block read by %d of %d children; want a shared hot set", maxReaders, children)
	}
}
