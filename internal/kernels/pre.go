package kernels

import "laperm/internal/isa"

// buildPRE constructs a product-recommendation pass over a MovieLens-like
// rating matrix: each parent thread inspects one target user's activity;
// active users (a heavy-tailed minority) get a child TB that re-reads the
// user's rating row and gathers the feature vectors of the rated items to
// score recommendations.
//
// Item popularity is Zipf-like, so siblings share the hot items' feature
// blocks; each child also shares its target user's rating row with the
// parent's prefetch of it.
func buildPRE(s Scale) *isa.Kernel {
	const (
		rowBytes  = 256 // 64 items x 4 bytes per user rating row
		featBytes = 64  // item feature vector
		numItems  = 512
		itemReads = 24 // rated items gathered per child
	)
	parents := s.parentTBs()
	rowAddr := func(u int) uint64 { return RegionData + uint64(u)*rowBytes }
	featAddr := func(i int) uint64 { return RegionData2 + uint64(i%numItems)*featBytes }
	activityAddr := func(u int) uint64 { return RegionWeight + uint64(u)*4 }

	kb := isa.NewKernel("pre")
	for p := 0; p < parents; p++ {
		base := p * TBThreads
		b := isa.NewTB(TBThreads).Resources(26, 0)

		// Read each target user's activity counter and the head of
		// their rating row.
		b.Load(func(tid int) uint64 { return activityAddr(base + tid) })
		b.Load(func(tid int) uint64 { return rowAddr(base + tid) })
		b.Compute(14)

		for t := 0; t < TBThreads; t++ {
			u := base + t
			// Heavy-tailed activity: ~20% of users are active
			// enough to warrant a recommendation child.
			if hashFloat(uint64(u)*389) >= 0.2 {
				continue
			}
			b.Launch(t, preChild(rowAddr, featAddr, u, itemReads))
		}
		b.Compute(10)
		kb.Add(b.Build())
	}
	return kb.Build()
}

// preChild scores recommendations for user u: re-read the full rating row,
// gather the rated items' feature vectors (Zipf-popular items recur across
// children), and write the top-k list.
func preChild(rowAddr func(int) uint64, featAddr func(int) uint64, u, itemReads int) *isa.Kernel {
	b := isa.NewTB(TBThreads).Resources(24, 0)

	// The full rating row: 64 threads x 4 bytes.
	b.Load(func(tid int) uint64 { return rowAddr(u) + uint64(tid)*4 })
	b.Compute(12)

	// Gather rated items' features, one item per 8-thread lane group per
	// round. Item choice is Zipf-like: most reads hit a small hot set
	// shared across users.
	for r := 0; r < itemReads/8; r++ {
		b.Load(func(tid int) uint64 {
			h := splitmix64(uint64(u*64+r*8) + uint64(tid/8))
			item := int(h % 512)
			if h%10 < 7 { // 70% of reads to the 32 hottest items
				item = int(h % 32)
			}
			return featAddr(item) + uint64(tid%16)*4
		})
		b.Compute(12)
	}

	// Write the user's top-k recommendation list (private).
	b.Store(func(tid int) uint64 { return RegionOut + uint64(u)*256 + uint64(tid)*4 })
	b.Compute(8)

	return isa.NewKernel("pre-child").Add(b.Build()).Build()
}
