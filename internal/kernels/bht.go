package kernels

import "laperm/internal/isa"

// buildBHT constructs the tree-build phase of a Barnes-Hut simulation over
// random points: each parent TB inserts its 64-point chunk into the top of
// the oct-tree; cells that turn out dense are delegated to child TBs that
// re-read the subset of the parent's points falling into the cell and build
// the cell's subtree.
//
// Siblings share the parent's point-chunk blocks and the top tree nodes, so
// child-sibling locality is substantial; each child's subtree writes are
// private.
func buildBHT(s Scale) *isa.Kernel {
	const (
		pointBytes = 8  // x, y
		nodeBytes  = 32 // tree node
		topNodes   = 21 // root + level 1 (4) + level 2 (16)
		denseCells = 4  // candidate dense cells examined per parent
	)
	parents := s.parentTBs()
	pointAddr := func(i int) uint64 { return RegionData + uint64(i)*pointBytes }
	nodeAddr := func(n int) uint64 { return RegionData2 + uint64(n)*nodeBytes }

	childID := 0
	kb := isa.NewKernel("bht")
	for p := 0; p < parents; p++ {
		base := p * TBThreads
		b := isa.NewTB(TBThreads).Resources(26, 0)

		// Load the chunk's coordinates.
		b.Load(func(tid int) uint64 { return pointAddr(base + tid) })
		b.Load(func(tid int) uint64 { return pointAddr(base+tid) + 4 })
		b.Compute(12)

		// Walk the shared top of the tree: the root, then the point's
		// level-1 and level-2 cells (data-dependent but deterministic).
		b.Load(func(tid int) uint64 { return nodeAddr(0) })
		b.Load(func(tid int) uint64 {
			return nodeAddr(1 + int(splitmix64(uint64(base+tid))%4))
		})
		b.Load(func(tid int) uint64 {
			return nodeAddr(5 + int(splitmix64(uint64(base+tid)*3)%16))
		})
		b.Compute(16)

		// Insert into the top tree (concurrent updates to shared
		// nodes).
		b.Store(func(tid int) uint64 {
			return nodeAddr(5 + int(splitmix64(uint64(base+tid)*3)%16))
		})
		b.Compute(10)

		// Dense cells get a child TB to build their subtree.
		for cell := 0; cell < denseCells; cell++ {
			if hashFloat(uint64(p)*977+uint64(cell)) >= 0.5 {
				continue
			}
			b.Launch(cell*16, bhtChild(pointAddr, nodeAddr, base, cell, topNodes, childID))
			childID++
		}
		kb.Add(b.Build())
	}
	return kb.Build()
}

// bhtChild builds the subtree of one dense cell: it re-reads the parent's
// point chunk (the subset in the cell, scattered over the chunk's blocks),
// re-walks the shared top nodes, and writes new subtree nodes to a private
// extension region.
func bhtChild(pointAddr func(int) uint64, nodeAddr func(int) uint64, chunkBase, cell, topNodes, childID int) *isa.Kernel {
	b := isa.NewTB(TBThreads).Resources(22, 0)

	// Gather the cell's points from the parent chunk: roughly a quarter
	// of the 64 points, scattered across the chunk.
	addrs := make([]uint64, TBThreads)
	active := make([]bool, TBThreads)
	n := 0
	for i := 0; i < TBThreads; i++ {
		if int(splitmix64(uint64(chunkBase+i)*3)%16)%4 == cell%4 {
			addrs[n] = pointAddr(chunkBase + i)
			active[n] = true
			n++
		}
	}
	if n == 0 {
		addrs[0] = pointAddr(chunkBase)
		active[0] = true
	}
	b.LoadMasked(addrs, active)
	b.Compute(14)

	// Re-walk the shared top nodes (sibling-shared blocks).
	b.Load(func(tid int) uint64 { return nodeAddr(0) })
	b.Load(func(tid int) uint64 { return nodeAddr(1 + (cell % 4)) })
	b.Load(func(tid int) uint64 { return nodeAddr(5 + int(splitmix64(uint64(cell))%16)) })
	b.Compute(18)

	// Write the subtree: 16 new nodes in a private extension area.
	subBase := uint64(topNodes+childID*16) * 32
	writeAddrs := make([]uint64, TBThreads)
	writeActive := make([]bool, TBThreads)
	for i := 0; i < 16; i++ {
		writeAddrs[i] = RegionData2 + subBase + uint64(i)*32
		writeActive[i] = true
	}
	b.StoreMasked(writeAddrs, writeActive)
	b.Compute(10)

	return isa.NewKernel("bht-child").Add(b.Build()).Build()
}
