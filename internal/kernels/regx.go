package kernels

import "laperm/internal/isa"

// buildREGX constructs a regular-expression matching pass over a packet (or
// string) collection: each parent thread prefilters one record's header
// against the automaton's first-state table; records that pass are handed to
// child TBs that run the full NFA over the payload.
//
// All children share the NFA transition table (strong sibling locality)
// while each scans its own payload. The darpa input has longer payloads and
// a higher, burstier match rate than the random-string collection.
func buildREGX(s Scale, darpa bool) *isa.Kernel {
	const (
		packetStride = 512  // bytes reserved per record
		tableBytes   = 2048 // NFA transition table (16 blocks)
	)
	payloadBlocks := 2 // random strings: 256-byte payloads
	matchRate := 0.08
	if darpa {
		payloadBlocks = 4 // darpa: 512-byte packets
		matchRate = 0.2
	}
	parents := s.parentTBs()
	packetAddr := func(i int) uint64 { return RegionData + uint64(i)*packetStride }
	tableAddr := func(off int) uint64 { return RegionData2 + uint64(off%tableBytes) }

	kb := isa.NewKernel("regx")
	for p := 0; p < parents; p++ {
		base := p * TBThreads
		b := isa.NewTB(TBThreads).Resources(24, 0)

		// Prefilter: one header word per record, plus the automaton's
		// first-state row (one shared block).
		b.Load(func(tid int) uint64 { return packetAddr(base + tid) })
		b.Load(func(tid int) uint64 { return tableAddr(0) })
		b.Compute(14)
		// Second header word and the second table row.
		b.Load(func(tid int) uint64 { return packetAddr(base+tid) + 4 })
		b.Load(func(tid int) uint64 { return tableAddr(128) })
		b.Compute(14)

		for t := 0; t < TBThreads; t++ {
			id := base + t
			r := hashFloat(uint64(id) * 263)
			if darpa {
				// Bursty: attacks cluster in record space.
				if (id/32)%4 == 0 {
					r *= 0.4
				}
			}
			if r >= matchRate {
				continue
			}
			b.Launch(t, regxChild(packetAddr, tableAddr, id, payloadBlocks))
		}
		b.Compute(8)
		kb.Add(b.Build())
	}
	return kb.Build()
}

// regxChild runs the full NFA over one record's payload: the threads stride
// the payload in parallel and chase data-dependent transitions through the
// shared table, then write the match verdict.
func regxChild(packetAddr func(int) uint64, tableAddr func(int) uint64, id, payloadBlocks int) *isa.Kernel {
	b := isa.NewTB(TBThreads).Resources(24, 0)

	// Scan the payload: 64 threads x 4 bytes covers 256 bytes per round,
	// so the darpa input's 512-byte packets take twice the rounds of the
	// 256-byte random strings.
	const bytesPerRound = TBThreads * 4
	rounds := (payloadBlocks*128 + bytesPerRound - 1) / bytesPerRound
	for r := 0; r < rounds; r++ {
		off := r * bytesPerRound
		b.Load(func(tid int) uint64 {
			return packetAddr(id) + uint64(off+tid*4)%uint64(payloadBlocks*128)
		})
		b.Compute(10)
		// Data-dependent transition lookups into the shared table.
		b.Load(func(tid int) uint64 {
			return tableAddr(int(splitmix64(uint64(id*1000+r*100+tid))) % 2048)
		})
		b.Compute(10)
		b.Load(func(tid int) uint64 {
			return tableAddr(int(splitmix64(uint64(id*1000+r*100+tid)*7)) % 2048)
		})
		b.Compute(12)
	}
	// Write the verdict.
	b.Store(func(tid int) uint64 { return RegionOut + uint64(id)*4 })

	return isa.NewKernel("regx-child").Add(b.Build()).Build()
}
