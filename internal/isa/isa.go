// Package isa defines the abstract warp instruction set executed by the
// simulator, and builders for constructing thread-block programs.
//
// The LaPerm study is about thread-block scheduling and the memory-system
// behaviour it induces, so programs are represented as per-warp instruction
// streams with explicit per-lane memory addresses rather than as compiled
// PTX: compute instructions occupy the pipeline for a latency, memory
// instructions carry the byte addresses each active lane touches, and launch
// instructions spawn child grids (device kernels under CDP, thread-block
// groups under DTBL).
package isa

import (
	"fmt"
	"sort"

	"laperm/internal/config"
)

// OpKind discriminates instruction behaviour.
type OpKind uint8

const (
	// OpCompute occupies the warp for Latency cycles.
	OpCompute OpKind = iota
	// OpLoad reads the per-lane addresses through the cache hierarchy.
	OpLoad
	// OpStore writes the per-lane addresses (write-through past the L1,
	// as on Kepler).
	OpStore
	// OpBarrier blocks the warp until every warp of its thread block has
	// reached the same barrier.
	OpBarrier
	// OpLaunch performs a device-side launch of the child grid identified
	// by the instruction's Launch index into the thread block's Launches
	// list.
	OpLaunch
)

// String returns the mnemonic for the op kind.
func (k OpKind) String() string {
	switch k {
	case OpCompute:
		return "compute"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBarrier:
		return "barrier"
	case OpLaunch:
		return "launch"
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Inst is one warp instruction.
type Inst struct {
	Kind OpKind

	// Latency is the pipeline occupancy in cycles for OpCompute.
	Latency int

	// Addrs holds the byte address accessed by each active lane for
	// OpLoad/OpStore. Its length is the number of active lanes.
	Addrs []uint64

	// ActiveLanes is the number of threads executing the instruction;
	// used for per-thread instruction counting (IPC). For memory ops it
	// equals len(Addrs).
	ActiveLanes int

	// Launch indexes the owning thread block's Launches slice for
	// OpLaunch.
	Launch int
}

// TB is the program of one thread block: one instruction stream per warp
// plus the resources the block occupies on an SMX.
type TB struct {
	// Threads is the number of threads in the block.
	Threads int
	// Warps holds one instruction stream per warp. Warp w covers threads
	// [w*32, min((w+1)*32, Threads)).
	Warps [][]Inst
	// RegistersPerThread and SharedMemBytes are the per-block resource
	// demands used for SMX occupancy accounting.
	RegistersPerThread int
	SharedMemBytes     int
	// Launches lists the child grids this block may launch; OpLaunch
	// instructions refer to entries by index.
	Launches []*Kernel
}

// NumWarps returns the number of warps in the block.
func (tb *TB) NumWarps() int { return len(tb.Warps) }

// Registers returns the total register demand of the block.
func (tb *TB) Registers() int { return tb.RegistersPerThread * tb.Threads }

// InstCount returns the total per-thread instruction count of the block
// (warp instructions weighted by active lanes), excluding child blocks.
func (tb *TB) InstCount() int64 {
	var n int64
	for _, w := range tb.Warps {
		for i := range w {
			n += int64(w[i].ActiveLanes)
		}
	}
	return n
}

// Footprint returns the sorted set of 128-byte block addresses referenced by
// the thread block's memory instructions, excluding children. This is the
// unit used by the shared-footprint methodology of Section III-A.
func (tb *TB) Footprint() []uint64 {
	seen := make(map[uint64]struct{})
	for _, w := range tb.Warps {
		for i := range w {
			in := &w[i]
			if in.Kind != OpLoad && in.Kind != OpStore {
				continue
			}
			for _, a := range in.Addrs {
				seen[a/config.LineSize] = struct{}{}
			}
		}
	}
	out := make([]uint64, 0, len(seen))
	for b := range seen {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Kernel is a grid: an ordered list of thread-block programs. Device-side
// launches reference child Kernels; under DTBL the same structure is treated
// as a thread-block group.
type Kernel struct {
	Name string
	TBs  []*TB
}

// InstCount returns the total per-thread instruction count of the grid,
// excluding nested children.
func (k *Kernel) InstCount() int64 {
	var n int64
	for _, tb := range k.TBs {
		n += tb.InstCount()
	}
	return n
}

// TotalInstCount returns the per-thread instruction count of the grid and
// every grid transitively launched from it.
func (k *Kernel) TotalInstCount() int64 {
	n := k.InstCount()
	for _, tb := range k.TBs {
		for _, c := range tb.Launches {
			n += c.TotalInstCount()
		}
	}
	return n
}

// Walk visits k and every transitively launched child grid in depth-first
// order. The parent argument is nil for the root.
func (k *Kernel) Walk(visit func(parent, child *Kernel)) {
	visit(nil, k)
	k.walkChildren(visit)
}

func (k *Kernel) walkChildren(visit func(parent, child *Kernel)) {
	for _, tb := range k.TBs {
		for _, c := range tb.Launches {
			visit(k, c)
			c.walkChildren(visit)
		}
	}
}

// Validate reports an error if any instruction is malformed: launches out of
// range, memory ops without addresses, non-positive compute latency, or lane
// counts exceeding the warp width.
func (k *Kernel) Validate() error {
	for ti, tb := range k.TBs {
		if tb.Threads <= 0 {
			return fmt.Errorf("isa: kernel %q TB %d has %d threads", k.Name, ti, tb.Threads)
		}
		wantWarps := (tb.Threads + config.WarpSize - 1) / config.WarpSize
		if len(tb.Warps) != wantWarps {
			return fmt.Errorf("isa: kernel %q TB %d has %d warps for %d threads, want %d",
				k.Name, ti, len(tb.Warps), tb.Threads, wantWarps)
		}
		for wi, w := range tb.Warps {
			for ii := range w {
				in := &w[ii]
				if in.ActiveLanes <= 0 || in.ActiveLanes > config.WarpSize {
					return fmt.Errorf("isa: kernel %q TB %d warp %d inst %d has %d active lanes",
						k.Name, ti, wi, ii, in.ActiveLanes)
				}
				switch in.Kind {
				case OpCompute:
					if in.Latency <= 0 {
						return fmt.Errorf("isa: kernel %q TB %d warp %d inst %d compute latency %d",
							k.Name, ti, wi, ii, in.Latency)
					}
				case OpLoad, OpStore:
					if len(in.Addrs) == 0 {
						return fmt.Errorf("isa: kernel %q TB %d warp %d inst %d memory op without addresses",
							k.Name, ti, wi, ii)
					}
					if len(in.Addrs) != in.ActiveLanes {
						return fmt.Errorf("isa: kernel %q TB %d warp %d inst %d has %d addrs for %d lanes",
							k.Name, ti, wi, ii, len(in.Addrs), in.ActiveLanes)
					}
				case OpLaunch:
					if in.Launch < 0 || in.Launch >= len(tb.Launches) {
						return fmt.Errorf("isa: kernel %q TB %d warp %d inst %d launch index %d out of %d",
							k.Name, ti, wi, ii, in.Launch, len(tb.Launches))
					}
				}
			}
		}
		for _, c := range tb.Launches {
			if err := c.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Coalesce maps per-lane byte addresses onto the minimal set of 128-byte
// memory transactions, in first-touch order, exactly as the hardware
// coalescer does for a warp memory instruction. A warp has at most 32
// lanes, so the dedup is a linear scan rather than a map.
func Coalesce(addrs []uint64) []uint64 {
	return CoalesceInto(make([]uint64, 0, 4), addrs)
}

// CoalesceInto is Coalesce appending into dst's backing array, for callers
// on the per-cycle path that keep a reusable scratch buffer (the SMX warp
// state does; see internal/smx). dst is truncated first. A warp instruction
// touches at most config.WarpSize distinct lines (Validate bounds the lane
// count), so a caller-owned buffer with capacity WarpSize never reallocates.
func CoalesceInto(dst, addrs []uint64) []uint64 {
	lines := dst[:0]
next:
	for _, a := range addrs {
		l := a / config.LineSize * config.LineSize
		for _, seen := range lines {
			if seen == l {
				continue next
			}
		}
		lines = append(lines, l)
	}
	return lines
}
