package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"laperm/internal/config"
)

func TestOpKindStrings(t *testing.T) {
	want := map[OpKind]string{
		OpCompute: "compute",
		OpLoad:    "load",
		OpStore:   "store",
		OpBarrier: "barrier",
		OpLaunch:  "launch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := OpKind(99).String(); got != "OpKind(99)" {
		t.Errorf("unknown kind String() = %q", got)
	}
}

func TestNewTBWarpCount(t *testing.T) {
	cases := []struct{ threads, warps int }{
		{1, 1}, {32, 1}, {33, 2}, {64, 2}, {65, 3}, {256, 8}, {100, 4},
	}
	for _, c := range cases {
		tb := NewTB(c.threads).Build()
		if tb.NumWarps() != c.warps {
			t.Errorf("NewTB(%d): %d warps, want %d", c.threads, tb.NumWarps(), c.warps)
		}
	}
}

func TestNewTBPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTB(0) did not panic")
		}
	}()
	NewTB(0)
}

func TestPartialWarpActiveLanes(t *testing.T) {
	tb := NewTB(40).Compute(4).Build() // 32 + 8
	if got := tb.Warps[0][0].ActiveLanes; got != 32 {
		t.Errorf("warp 0 lanes = %d, want 32", got)
	}
	if got := tb.Warps[1][0].ActiveLanes; got != 8 {
		t.Errorf("warp 1 lanes = %d, want 8", got)
	}
	if got := tb.InstCount(); got != 40 {
		t.Errorf("InstCount = %d, want 40", got)
	}
}

func TestLoadAddressesPerThread(t *testing.T) {
	tb := NewTB(64).Load(func(tid int) uint64 { return uint64(tid) * 8 }).Build()
	for w := 0; w < 2; w++ {
		in := tb.Warps[w][0]
		if in.Kind != OpLoad {
			t.Fatalf("warp %d inst kind = %v", w, in.Kind)
		}
		for l, a := range in.Addrs {
			want := uint64(w*config.WarpSize+l) * 8
			if a != want {
				t.Errorf("warp %d lane %d addr = %d, want %d", w, l, a, want)
			}
		}
	}
}

func TestLoadSeqIsCoalesced(t *testing.T) {
	tb := NewTB(128).LoadSeq(0, 2).Build()
	// Each warp instruction should coalesce to exactly one 128-byte line.
	for w, warp := range tb.Warps {
		for i, in := range warp {
			if lines := Coalesce(in.Addrs); len(lines) != 1 {
				t.Errorf("warp %d inst %d coalesces to %d lines, want 1", w, i, len(lines))
			}
		}
	}
	// The two words per thread should cover distinct lines overall.
	if fp := tb.Footprint(); len(fp) != 8 {
		t.Errorf("footprint = %d blocks, want 8 (128 threads * 2 words * 4B / 128B)", len(fp))
	}
}

func TestLoadGatherValidatesLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LoadGather with wrong length did not panic")
		}
	}()
	NewTB(32).LoadGather(make([]uint64, 5))
}

func TestLaunchGoesToOwningWarp(t *testing.T) {
	child := NewKernel("child").Add(NewTB(32).Compute(1).Build()).Build()
	tb := NewTB(96).Launch(70, child).Build() // tid 70 is in warp 2
	if n := len(tb.Warps[2]); n != 1 {
		t.Fatalf("warp 2 has %d insts, want 1", n)
	}
	if tb.Warps[2][0].Kind != OpLaunch {
		t.Fatalf("warp 2 inst kind = %v, want launch", tb.Warps[2][0].Kind)
	}
	if len(tb.Warps[0]) != 0 || len(tb.Warps[1]) != 0 {
		t.Error("launch leaked into other warps")
	}
	if len(tb.Launches) != 1 || tb.Launches[0] != child {
		t.Error("Launches list not recorded")
	}
}

func TestLaunchPanics(t *testing.T) {
	child := NewKernel("c").Add(NewTB(32).Compute(1).Build()).Build()
	for _, f := range []func(){
		func() { NewTB(32).Launch(40, child) },
		func() { NewTB(32).Launch(-1, child) },
		func() { NewTB(32).Launch(0, nil) },
		func() { NewTB(32).Launch(0, NewKernel("empty").Build()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKernelValidate(t *testing.T) {
	good := NewKernel("good").Add(
		NewTB(64).Compute(2).LoadSeq(0, 1).Barrier().Build(),
	).Build()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}

	// Hand-build broken kernels.
	broken := []*Kernel{
		{Name: "zero-threads", TBs: []*TB{{Threads: 0, Warps: nil}}},
		{Name: "warp-mismatch", TBs: []*TB{{Threads: 64, Warps: make([][]Inst, 1)}}},
		{Name: "bad-lanes", TBs: []*TB{{Threads: 32, Warps: [][]Inst{{{Kind: OpCompute, Latency: 1, ActiveLanes: 33}}}}}},
		{Name: "bad-latency", TBs: []*TB{{Threads: 32, Warps: [][]Inst{{{Kind: OpCompute, Latency: 0, ActiveLanes: 32}}}}}},
		{Name: "no-addrs", TBs: []*TB{{Threads: 32, Warps: [][]Inst{{{Kind: OpLoad, ActiveLanes: 32}}}}}},
		{Name: "addr-lane-mismatch", TBs: []*TB{{Threads: 32, Warps: [][]Inst{{{Kind: OpLoad, Addrs: make([]uint64, 4), ActiveLanes: 32}}}}}},
		{Name: "bad-launch-index", TBs: []*TB{{Threads: 32, Warps: [][]Inst{{{Kind: OpLaunch, ActiveLanes: 1, Launch: 0}}}}}},
	}
	for _, k := range broken {
		if err := k.Validate(); err == nil {
			t.Errorf("kernel %q: Validate accepted broken program", k.Name)
		}
	}
}

func TestValidateRecursesIntoChildren(t *testing.T) {
	badChild := &Kernel{Name: "bad", TBs: []*TB{{Threads: 0}}}
	parentTB := NewTB(32).Build()
	parentTB.Launches = append(parentTB.Launches, badChild)
	parentTB.Warps[0] = append(parentTB.Warps[0], Inst{Kind: OpLaunch, ActiveLanes: 1, Launch: 0})
	parent := NewKernel("p").Add(parentTB).Build()
	if err := parent.Validate(); err == nil {
		t.Fatal("Validate did not recurse into launched child")
	}
}

func TestWalkVisitsAllGrids(t *testing.T) {
	leaf := NewKernel("leaf").Add(NewTB(32).Compute(1).Build()).Build()
	mid := NewKernel("mid").Add(NewTB(32).Launch(0, leaf).Build()).Build()
	root := NewKernel("root").Add(
		NewTB(32).Launch(0, mid).Build(),
		NewTB(32).Compute(1).Build(),
	).Build()

	var names []string
	var parents []string
	root.Walk(func(p, c *Kernel) {
		names = append(names, c.Name)
		if p == nil {
			parents = append(parents, "<nil>")
		} else {
			parents = append(parents, p.Name)
		}
	})
	if !reflect.DeepEqual(names, []string{"root", "mid", "leaf"}) {
		t.Errorf("Walk order = %v", names)
	}
	if !reflect.DeepEqual(parents, []string{"<nil>", "root", "mid"}) {
		t.Errorf("Walk parents = %v", parents)
	}
}

func TestInstCounts(t *testing.T) {
	leaf := NewKernel("leaf").Add(NewTB(32).ComputeN(1, 3).Build()).Build() // 96
	root := NewKernel("root").Add(NewTB(64).Compute(1).Launch(0, leaf).Build()).Build()
	if got := root.InstCount(); got != 65 { // 64 compute lanes + 1 launch lane
		t.Errorf("InstCount = %d, want 65", got)
	}
	if got := root.TotalInstCount(); got != 65+96 {
		t.Errorf("TotalInstCount = %d, want %d", got, 65+96)
	}
}

func TestCoalesceOrderAndDedup(t *testing.T) {
	addrs := []uint64{0, 4, 128, 12, 256, 130}
	got := Coalesce(addrs)
	want := []uint64{0, 128, 256}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Coalesce = %v, want %v", got, want)
	}
}

// Property: coalescing never produces more transactions than addresses, every
// address is covered by a produced line, and lines are unique.
func TestCoalesceProperties(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		addrs := make([]uint64, len(raw))
		for i, r := range raw {
			addrs[i] = uint64(r)
		}
		lines := Coalesce(addrs)
		if len(lines) > len(addrs) {
			return false
		}
		set := make(map[uint64]bool)
		for _, l := range lines {
			if l%config.LineSize != 0 {
				return false
			}
			if set[l] {
				return false // duplicate transaction
			}
			set[l] = true
		}
		for _, a := range addrs {
			if !set[a/config.LineSize*config.LineSize] {
				return false // uncovered address
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// Property: a random structured program built through the builder always
// validates, and its footprint block count is bounded by its distinct
// memory addresses.
func TestBuilderProgramsAlwaysValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		threads := 1 + rng.Intn(256)
		b := NewTB(threads)
		nops := 1 + rng.Intn(20)
		for i := 0; i < nops; i++ {
			switch rng.Intn(4) {
			case 0:
				b.Compute(1 + rng.Intn(16))
			case 1:
				base := uint64(rng.Intn(1 << 20))
				b.Load(func(tid int) uint64 { return base + uint64(tid)*4 })
			case 2:
				base := uint64(rng.Intn(1 << 20))
				b.Store(func(tid int) uint64 { return base + uint64(tid)*8 })
			case 3:
				b.Barrier()
			}
		}
		k := NewKernel("fuzz").Add(b.Build()).Build()
		if err := k.Validate(); err != nil {
			t.Fatalf("trial %d: builder produced invalid program: %v", trial, err)
		}
	}
}

func TestResources(t *testing.T) {
	tb := NewTB(128).Resources(32, 4096).Build()
	if tb.Registers() != 32*128 {
		t.Errorf("Registers = %d, want %d", tb.Registers(), 32*128)
	}
	if tb.SharedMemBytes != 4096 {
		t.Errorf("SharedMemBytes = %d, want 4096", tb.SharedMemBytes)
	}
}

func TestFootprintEmptyForComputeOnly(t *testing.T) {
	tb := NewTB(32).ComputeN(1, 5).Barrier().Build()
	if fp := tb.Footprint(); len(fp) != 0 {
		t.Errorf("compute-only footprint = %v, want empty", fp)
	}
}

func TestFootprintSortedUnique(t *testing.T) {
	tb := NewTB(32).
		Load(func(tid int) uint64 { return uint64(tid%4) * 128 }).
		Load(func(tid int) uint64 { return 512 }).
		Build()
	fp := tb.Footprint()
	want := []uint64{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(fp, want) {
		t.Errorf("Footprint = %v, want %v", fp, want)
	}
}

func TestLoadMaskedLaneCompaction(t *testing.T) {
	addrs := make([]uint64, 64)
	active := make([]bool, 64)
	// Activate threads 3, 40, 41 only.
	for _, tid := range []int{3, 40, 41} {
		addrs[tid] = uint64(tid) * 256
		active[tid] = true
	}
	tb := NewTB(64).LoadMasked(addrs, active).Build()
	// Warp 0 carries one active lane, warp 1 two.
	if n := len(tb.Warps[0]); n != 1 {
		t.Fatalf("warp 0 insts = %d", n)
	}
	if got := tb.Warps[0][0]; got.ActiveLanes != 1 || got.Addrs[0] != 3*256 {
		t.Errorf("warp 0 inst = %+v", got)
	}
	if got := tb.Warps[1][0]; got.ActiveLanes != 2 || got.Addrs[0] != 40*256 || got.Addrs[1] != 41*256 {
		t.Errorf("warp 1 inst = %+v", got)
	}
}

func TestLoadMaskedSkipsFullyInactiveWarps(t *testing.T) {
	addrs := make([]uint64, 64)
	active := make([]bool, 64)
	active[0] = true // only warp 0 active
	tb := NewTB(64).LoadMasked(addrs, active).Build()
	if len(tb.Warps[1]) != 0 {
		t.Error("fully inactive warp received an instruction")
	}
	if err := NewKernel("k").Add(tb).Build().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMaskedKind(t *testing.T) {
	addrs := make([]uint64, 32)
	active := make([]bool, 32)
	active[5] = true
	tb := NewTB(32).StoreMasked(addrs, active).Build()
	if tb.Warps[0][0].Kind != OpStore {
		t.Errorf("kind = %v", tb.Warps[0][0].Kind)
	}
}

func TestMaskedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched mask length")
		}
	}()
	NewTB(32).LoadMasked(make([]uint64, 32), make([]bool, 8))
}

func TestStoreSeqAddressing(t *testing.T) {
	tb := NewTB(64).StoreSeq(1024, 2).Build()
	if len(tb.Warps[0]) != 2 {
		t.Fatalf("insts = %d", len(tb.Warps[0]))
	}
	// Word 1 starts after 64 threads * 4 bytes.
	if got := tb.Warps[0][1].Addrs[0]; got != 1024+256 {
		t.Errorf("second word base = %d, want %d", got, 1024+256)
	}
	if tb.Warps[0][0].Kind != OpStore {
		t.Error("StoreSeq produced non-store")
	}
}
