package isa

import (
	"fmt"

	"laperm/internal/config"
)

// TBBuilder assembles the program of one thread block. Methods append
// instructions across all warps of the block (mirroring SPMD source code
// where every thread executes the same statements); per-thread behaviour is
// expressed through address functions of the thread index.
type TBBuilder struct {
	tb *TB
}

// NewTB returns a builder for a thread block with the given thread count.
func NewTB(threads int) *TBBuilder {
	if threads <= 0 {
		panic(fmt.Sprintf("isa: NewTB(%d): thread count must be positive", threads))
	}
	warps := (threads + config.WarpSize - 1) / config.WarpSize
	return &TBBuilder{tb: &TB{
		Threads:            threads,
		Warps:              make([][]Inst, warps),
		RegistersPerThread: 24,
	}}
}

// Resources sets the per-thread register and per-block shared-memory demand.
func (b *TBBuilder) Resources(regsPerThread, sharedMemBytes int) *TBBuilder {
	b.tb.RegistersPerThread = regsPerThread
	b.tb.SharedMemBytes = sharedMemBytes
	return b
}

// lanesOf returns the number of active lanes in warp w.
func (b *TBBuilder) lanesOf(w int) int {
	lanes := b.tb.Threads - w*config.WarpSize
	if lanes > config.WarpSize {
		lanes = config.WarpSize
	}
	return lanes
}

// Compute appends one compute instruction of the given latency to every
// warp.
func (b *TBBuilder) Compute(latency int) *TBBuilder {
	for w := range b.tb.Warps {
		b.tb.Warps[w] = append(b.tb.Warps[w], Inst{
			Kind:        OpCompute,
			Latency:     latency,
			ActiveLanes: b.lanesOf(w),
		})
	}
	return b
}

// ComputeN appends n compute instructions of the given latency.
func (b *TBBuilder) ComputeN(latency, n int) *TBBuilder {
	for i := 0; i < n; i++ {
		b.Compute(latency)
	}
	return b
}

// Load appends one load where thread tid accesses addrFn(tid).
func (b *TBBuilder) Load(addrFn func(tid int) uint64) *TBBuilder {
	return b.mem(OpLoad, addrFn)
}

// Store appends one store where thread tid accesses addrFn(tid).
func (b *TBBuilder) Store(addrFn func(tid int) uint64) *TBBuilder {
	return b.mem(OpStore, addrFn)
}

func (b *TBBuilder) mem(kind OpKind, addrFn func(tid int) uint64) *TBBuilder {
	for w := range b.tb.Warps {
		lanes := b.lanesOf(w)
		addrs := make([]uint64, lanes)
		for l := 0; l < lanes; l++ {
			addrs[l] = addrFn(w*config.WarpSize + l)
		}
		b.tb.Warps[w] = append(b.tb.Warps[w], Inst{
			Kind:        kind,
			Addrs:       addrs,
			ActiveLanes: lanes,
		})
	}
	return b
}

// LoadSeq appends a coalesced load of `words` consecutive 4-byte words per
// thread starting at base: thread tid reads base + tid*4 (repeated for each
// word with a stride of blockDim words). It models the canonical
// structured-access pattern of a well-written kernel.
func (b *TBBuilder) LoadSeq(base uint64, words int) *TBBuilder {
	for i := 0; i < words; i++ {
		off := uint64(i*b.tb.Threads) * 4
		b.Load(func(tid int) uint64 { return base + off + uint64(tid)*4 })
	}
	return b
}

// StoreSeq is the store analogue of LoadSeq.
func (b *TBBuilder) StoreSeq(base uint64, words int) *TBBuilder {
	for i := 0; i < words; i++ {
		off := uint64(i*b.tb.Threads) * 4
		b.Store(func(tid int) uint64 { return base + off + uint64(tid)*4 })
	}
	return b
}

// LoadGather appends one load with an explicit per-thread address table
// (len(addrs) must equal the thread count). It models data-dependent,
// irregular accesses such as CSR neighbour expansion.
func (b *TBBuilder) LoadGather(addrs []uint64) *TBBuilder {
	if len(addrs) != b.tb.Threads {
		panic(fmt.Sprintf("isa: LoadGather: %d addresses for %d threads", len(addrs), b.tb.Threads))
	}
	return b.Load(func(tid int) uint64 { return addrs[tid] })
}

// LoadMasked appends one load with per-thread predication: thread tid
// accesses addrs[tid] only when active[tid] is true. Warps whose lanes are
// all inactive receive no instruction (the hardware analogue of a fully
// predicated-off memory op). Both slices must have one entry per thread.
func (b *TBBuilder) LoadMasked(addrs []uint64, active []bool) *TBBuilder {
	return b.memMasked(OpLoad, addrs, active)
}

// StoreMasked is the store analogue of LoadMasked.
func (b *TBBuilder) StoreMasked(addrs []uint64, active []bool) *TBBuilder {
	return b.memMasked(OpStore, addrs, active)
}

func (b *TBBuilder) memMasked(kind OpKind, addrs []uint64, active []bool) *TBBuilder {
	if len(addrs) != b.tb.Threads || len(active) != b.tb.Threads {
		panic(fmt.Sprintf("isa: masked op: %d addrs / %d mask entries for %d threads",
			len(addrs), len(active), b.tb.Threads))
	}
	for w := range b.tb.Warps {
		lanes := b.lanesOf(w)
		var lane []uint64
		for l := 0; l < lanes; l++ {
			tid := w*config.WarpSize + l
			if active[tid] {
				lane = append(lane, addrs[tid])
			}
		}
		if len(lane) == 0 {
			continue
		}
		b.tb.Warps[w] = append(b.tb.Warps[w], Inst{
			Kind:        kind,
			Addrs:       lane,
			ActiveLanes: len(lane),
		})
	}
	return b
}

// Barrier appends a block-wide barrier to every warp.
func (b *TBBuilder) Barrier() *TBBuilder {
	for w := range b.tb.Warps {
		b.tb.Warps[w] = append(b.tb.Warps[w], Inst{
			Kind:        OpBarrier,
			ActiveLanes: b.lanesOf(w),
		})
	}
	return b
}

// Launch appends a device-side launch of child, executed by the single
// thread tid (the "direct parent" thread of Section II-C). The launch
// instruction is appended only to the warp containing tid.
func (b *TBBuilder) Launch(tid int, child *Kernel) *TBBuilder {
	if tid < 0 || tid >= b.tb.Threads {
		panic(fmt.Sprintf("isa: Launch: tid %d out of %d threads", tid, b.tb.Threads))
	}
	if child == nil || len(child.TBs) == 0 {
		panic("isa: Launch: child grid must have at least one thread block")
	}
	idx := len(b.tb.Launches)
	b.tb.Launches = append(b.tb.Launches, child)
	w := tid / config.WarpSize
	b.tb.Warps[w] = append(b.tb.Warps[w], Inst{
		Kind:        OpLaunch,
		ActiveLanes: 1,
		Launch:      idx,
	})
	return b
}

// Build finalises and returns the thread-block program.
func (b *TBBuilder) Build() *TB { return b.tb }

// KernelBuilder assembles a grid from thread-block programs.
type KernelBuilder struct {
	k *Kernel
}

// NewKernel returns a builder for a named grid.
func NewKernel(name string) *KernelBuilder {
	return &KernelBuilder{k: &Kernel{Name: name}}
}

// Add appends thread blocks to the grid.
func (b *KernelBuilder) Add(tbs ...*TB) *KernelBuilder {
	b.k.TBs = append(b.k.TBs, tbs...)
	return b
}

// Build finalises and returns the grid.
func (b *KernelBuilder) Build() *Kernel { return b.k }
