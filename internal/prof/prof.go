// Package prof wires runtime/pprof CPU and heap profiling behind a pair of
// flags shared by the CLIs, so simulator hot paths are measurable with
// `go tool pprof` without per-command boilerplate. For long-running
// processes, DebugMux serves the same profiles (plus goroutine/block/mutex
// inspection) over HTTP on a separate, opt-in debug listener.
package prof

import (
	"flag"
	"fmt"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"runtime"
	"runtime/pprof"
)

// DebugMux returns a mux serving the net/http/pprof endpoints under
// /debug/pprof/, for mounting on a dedicated debug listener — never on the
// service mux, so profiling stays off the public surface and off by default.
// Handlers are wired explicitly instead of importing the package for its
// DefaultServeMux side effect.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	return mux
}

// Flags holds the profile destinations registered by Register.
type Flags struct {
	cpu  *string
	heap *string
}

// Register installs -pprof-cpu and -pprof-heap on fs (the default flag set
// in the CLIs).
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		cpu:  fs.String("pprof-cpu", "", "write a CPU profile to this file"),
		heap: fs.String("pprof-heap", "", "write a heap profile to this file on exit"),
	}
}

// Start begins CPU profiling when requested. The returned stop function
// finalises the CPU profile and writes the heap profile; call it (or defer
// it) on every exit path that should produce profiles.
func (f *Flags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if *f.cpu != "" {
		cpuFile, err = os.Create(*f.cpu)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
	}
	heapPath := *f.heap
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close CPU profile: %w", err)
			}
		}
		if heapPath != "" {
			hf, err := os.Create(heapPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer hf.Close()
			runtime.GC() // settle live objects before the snapshot
			if err := pprof.WriteHeapProfile(hf); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
