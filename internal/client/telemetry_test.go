package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"laperm/internal/telemetry"
)

// TestTelemetryCounters pins the client's resilience counters: backoff
// sleeps and whole-run resubmissions land in the registry the Config names,
// and render in the shared Prometheus exposition.
func TestTelemetryCounters(t *testing.T) {
	var submits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost:
			// First submit is shed once (one backoff), then each accepted
			// submission fails terminally with a retryable kind until the
			// third, which completes.
			n := submits.Add(1)
			if n == 1 {
				http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
				return
			}
			if n < 4 {
				writeView(w, http.StatusOK, RunView{ID: "id1", State: "failed", ErrorKind: KindTransient})
				return
			}
			writeView(w, http.StatusOK, doneView("id1"))
		default:
			writeView(w, http.StatusOK, doneView("id1"))
		}
	}))
	defer ts.Close()

	reg := telemetry.NewRegistry()
	c, _ := newClient(ts, func(cfg *Config) { cfg.Telemetry = reg })
	if _, err := c.Run(context.Background(), testSpec); err != nil {
		t.Fatal(err)
	}
	if got := c.backoffs.Value(); got < 1 {
		t.Fatalf("backoffs = %d, want >= 1", got)
	}
	if got := c.resubmits.Value(); got != 2 {
		t.Fatalf("resubmits = %d, want 2", got)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MetricBackoffs, MetricResubmits} {
		if !strings.Contains(sb.String(), "# TYPE "+name+" counter") {
			t.Fatalf("exposition missing %s:\n%s", name, sb.String())
		}
	}
}

// TestNoTelemetryIsFree: without a registry the counter handles stay nil and
// counting costs nothing.
func TestNoTelemetryIsFree(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeView(w, http.StatusOK, doneView("id1"))
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	if c.backoffs != nil || c.resubmits != nil || c.streamTears != nil {
		t.Fatal("counters registered without a Telemetry registry")
	}
	if n := testing.AllocsPerRun(1000, func() { c.backoffs.Inc() }); n != 0 {
		t.Fatalf("nil counter allocates %v per op", n)
	}
}
