package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"laperm/internal/spec"
)

func testSweepSpec() spec.SweepSpec {
	return spec.SweepSpec{
		Base: spec.RunSpec{Scale: "tiny"},
		Axes: []spec.SweepAxis{{
			Field:  "workload",
			Values: []json.RawMessage{json.RawMessage(`"amr"`), json.RawMessage(`"bht"`)},
		}},
	}
}

func writeSweepView(w http.ResponseWriter, status int, v SweepView) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestRunSweep: submit, poll to terminal, and return the full cell table.
func TestRunSweep(t *testing.T) {
	var polls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/sweeps":
			writeSweepView(w, http.StatusAccepted, SweepView{ID: "sw1", State: "running", Cells: 2})
		case r.URL.Path == "/v1/sweeps/sw1":
			if polls.Add(1) < 3 {
				writeSweepView(w, http.StatusOK, SweepView{ID: "sw1", State: "running", Cells: 2, Done: 1})
				return
			}
			writeSweepView(w, http.StatusOK, SweepView{
				ID: "sw1", State: "done", Cells: 2, Done: 2,
				CellTable: []SweepCellView{
					{Index: 0, RunID: "r0", State: "done", Source: "run"},
					{Index: 1, RunID: "r1", State: "done", Source: "dedupe"},
				},
			})
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()

	c, _ := newClient(ts, nil)
	v, err := c.RunSweep(context.Background(), testSweepSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || len(v.CellTable) != 2 {
		t.Fatalf("final view = %+v, want done with 2 cells", v)
	}
	if v.CellTable[1].Source != "dedupe" {
		t.Fatalf("cell table lost sources: %+v", v.CellTable)
	}
}

// TestRunSweepFailed: a failed sweep surfaces as *SweepFailedError carrying
// the server's structured kind.
func TestRunSweepFailed(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeSweepView(w, http.StatusOK, SweepView{
			ID: "sw1", State: "failed", Error: "2 of 4 cells failed", ErrorKind: "error",
		})
	}))
	defer ts.Close()

	c, _ := newClient(ts, nil)
	_, err := c.RunSweep(context.Background(), testSweepSpec())
	var sfe *SweepFailedError
	if !errors.As(err, &sfe) {
		t.Fatalf("err = %v, want *SweepFailedError", err)
	}
	if sfe.Kind != "error" || sfe.ID != "sw1" {
		t.Fatalf("failure = %+v", sfe)
	}
}

// TestErrorEnvelopeParsing: non-2xx bodies carrying the unified error
// envelope surface their kind, retryability, and retry_after through
// StatusError.
func TestErrorEnvelopeParsing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]any{
			"kind":            "bad-request",
			"message":         "spec: unknown workload",
			"retryable":       false,
			"valid_workloads": []string{"amr", "bht"},
		})
	}))
	defer ts.Close()

	c, _ := newClient(ts, nil)
	_, err := c.SubmitSweep(context.Background(), testSweepSpec())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StatusError", err)
	}
	if se.API.Kind != "bad-request" || se.API.Retryable {
		t.Fatalf("parsed envelope = %+v", se.API)
	}
	if len(se.API.ValidWorkloads) != 2 {
		t.Fatalf("envelope lost valid_workloads: %+v", se.API)
	}
}

// TestWatchSweepResumes: a torn sweep stream reconnects with Last-Event-ID
// and the handler sees each event exactly once.
func TestWatchSweepResumes(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Error("first connect sent a Last-Event-ID")
			}
			// One cell event, then tear mid-stream.
			w.Write([]byte("id: 1\nevent: cell\ndata: {\"index\":0}\n\n"))
		default:
			if r.Header.Get("Last-Event-ID") != "1" {
				t.Errorf("reconnect Last-Event-ID = %q, want 1", r.Header.Get("Last-Event-ID"))
			}
			w.Write([]byte("id: 2\nevent: cell\ndata: {\"index\":1}\n\n"))
			w.Write([]byte("id: 3\nevent: state\ndata: {\"state\":\"done\"}\n\n"))
		}
	}))
	defer ts.Close()

	c, _ := newClient(ts, nil)
	var ids []uint64
	err := c.WatchSweep(context.Background(), "sw1", func(ev SSEEvent) error {
		ids = append(ids, ev.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 3 {
		t.Fatalf("delivered ids = %v, want [1 2 3]", ids)
	}
}
