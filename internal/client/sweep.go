package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"laperm/internal/spec"
)

// SweepCellView is one row of a sweep's cell table.
type SweepCellView struct {
	Index     int      `json:"index"`
	RunID     string   `json:"run_id"`
	Values    []string `json:"values"`
	Source    string   `json:"source"` // "run", "dedupe", "cache"
	State     string   `json:"state"`
	Error     string   `json:"error,omitempty"`
	ErrorKind string   `json:"error_kind,omitempty"`
}

// SweepView is the wire representation of a sweep returned by the sweep
// submit and status endpoints.
type SweepView struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Tenant    string          `json:"tenant"`
	Priority  int             `json:"priority"`
	Cached    bool            `json:"cached"`
	Canceled  bool            `json:"canceled,omitempty"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Axes      []string        `json:"axes"`
	Cells     int             `json:"cells"`
	Done      int             `json:"done"`
	Failed    int             `json:"failed,omitempty"`
	Deduped   int             `json:"deduped"`
	FromCache int             `json:"served_from_cache"`
	Scheduled int             `json:"scheduled"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.SweepSpec  `json:"spec"`
	CellTable []SweepCellView `json:"cell_table,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// Terminal reports whether the sweep has finished (successfully or not).
func (v SweepView) Terminal() bool { return v.State == "done" || v.State == "failed" }

// SweepFailedError is a sweep that reached the failed state.
type SweepFailedError struct {
	ID, Kind, Message string
}

func (e *SweepFailedError) Error() string {
	return fmt.Sprintf("client: sweep %s failed (%s): %s", e.ID, e.Kind, e.Message)
}

// SubmitSweep POSTs a sweep spec; the server expands it into cells and
// schedules what the cluster has not already computed. Idempotent by sweep
// content hash, exactly like Submit.
func (c *Client) SubmitSweep(ctx context.Context, sp spec.SweepSpec) (SweepView, error) {
	payload, err := json.Marshal(sp)
	if err != nil {
		return SweepView{}, err
	}
	return c.SubmitSweepRaw(ctx, payload)
}

// SubmitSweepRaw is SubmitSweep for callers holding the spec as JSON.
func (c *Client) SubmitSweepRaw(ctx context.Context, specJSON []byte) (SweepView, error) {
	code, hdr, data, err := c.do(ctx, http.MethodPost, "/v1/sweeps", specJSON, nil)
	if err != nil {
		return SweepView{}, err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return SweepView{}, newStatusError(code, data, hdr)
	}
	var v SweepView
	if err := json.Unmarshal(data, &v); err != nil {
		return SweepView{}, fmt.Errorf("client: decode sweep response: %w", err)
	}
	return v, nil
}

// SweepStatus fetches a sweep's current view, including its cell table.
func (c *Client) SweepStatus(ctx context.Context, id string) (SweepView, error) {
	code, hdr, data, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, nil)
	if err != nil {
		return SweepView{}, err
	}
	if code != http.StatusOK {
		return SweepView{}, newStatusError(code, data, hdr)
	}
	var v SweepView
	if err := json.Unmarshal(data, &v); err != nil {
		return SweepView{}, fmt.Errorf("client: decode sweep status: %w", err)
	}
	return v, nil
}

// SweepArtifact fetches one sweep-level artifact (sweep.json, cells.csv,
// result.json).
func (c *Client) SweepArtifact(ctx context.Context, id, name string) ([]byte, error) {
	code, hdr, data, err := c.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/artifacts/"+name, nil, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, newStatusError(code, data, hdr)
	}
	return data, nil
}

// CancelSweep asks the server to cancel a sweep; cells shared with other
// requests keep running for their other owners.
func (c *Client) CancelSweep(ctx context.Context, id string) (SweepView, error) {
	code, hdr, data, err := c.do(ctx, http.MethodPost, "/v1/sweeps/"+id+"/cancel", []byte("{}"), nil)
	if err != nil {
		return SweepView{}, err
	}
	if code != http.StatusOK {
		return SweepView{}, newStatusError(code, data, hdr)
	}
	var v SweepView
	if err := json.Unmarshal(data, &v); err != nil {
		return SweepView{}, fmt.Errorf("client: decode cancel response: %w", err)
	}
	return v, nil
}

// WatchSweep streams a sweep's events — per-cell completions and the
// terminal state — reconnecting on stream tears with Last-Event-ID, the
// same exactly-once contract as WatchEvents.
func (c *Client) WatchSweep(ctx context.Context, id string, handler func(SSEEvent) error) error {
	var lastID uint64
	tears := 0
	for {
		delivered, terminal, err := c.streamOnce(ctx, "/v1/sweeps/"+id+"/events", &lastID, handler)
		if err != nil {
			return err
		}
		if terminal {
			return nil
		}
		c.streamTears.Inc()
		if delivered > 0 {
			tears = 0
		}
		tears++
		if tears >= c.cfg.MaxAttempts {
			return fmt.Errorf("client: sweep stream for %s tore %d times without completing", id, tears)
		}
		if err := c.sleep(ctx, c.backoffDelay(tears-1, 0)); err != nil {
			return err
		}
	}
}

// RunSweep is the end-to-end sweep call: submit, poll until terminal, and
// return the final view (with cell table). A failed sweep returns the view
// plus a *SweepFailedError.
func (c *Client) RunSweep(ctx context.Context, sp spec.SweepSpec) (SweepView, error) {
	v, err := c.SubmitSweep(ctx, sp)
	if err != nil {
		return SweepView{}, err
	}
	for !v.Terminal() {
		if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
			return SweepView{}, err
		}
		if v, err = c.SweepStatus(ctx, v.ID); err != nil {
			return SweepView{}, err
		}
	}
	if v.State == "failed" {
		return v, &SweepFailedError{ID: v.ID, Kind: v.ErrorKind, Message: v.Error}
	}
	// Re-fetch to ensure the cell table is present (submit responses omit
	// it).
	if len(v.CellTable) == 0 {
		if full, err := c.SweepStatus(ctx, v.ID); err == nil {
			v = full
		}
	}
	return v, nil
}
