package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"laperm/internal/spec"
)

// testSpec is a minimal valid spec for wire tests (the stub servers don't
// validate it).
var testSpec = spec.RunSpec{Workload: "amr", Scale: "tiny"}

// newClient builds a client against ts with instant (recorded) sleeps.
func newClient(ts *httptest.Server, mut func(*Config)) (*Client, *[]time.Duration) {
	var mu sync.Mutex
	slept := &[]time.Duration{}
	cfg := Config{
		BaseURL: ts.URL,
		Seed:    1,
		Sleep: func(d time.Duration) {
			mu.Lock()
			*slept = append(*slept, d)
			mu.Unlock()
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg), slept
}

func doneView(id string) RunView {
	return RunView{ID: id, State: "done", Result: json.RawMessage(`{"cycles":1}`)}
}

func writeView(w http.ResponseWriter, status int, v RunView) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestSubmitRetriesRetryableStatuses: 503 and 429 answers are retried with
// backoff until the server accepts; the Retry-After hint floors the delay.
func TestSubmitRetriesRetryableStatuses(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "3")
			http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"flap"}`, http.StatusServiceUnavailable)
		default:
			writeView(w, http.StatusAccepted, RunView{ID: "abc", State: "queued"})
		}
	}))
	defer ts.Close()
	c, slept := newClient(ts, nil)
	v, err := c.Submit(context.Background(), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID != "abc" || calls.Load() != 3 {
		t.Fatalf("view %+v after %d calls", v, calls.Load())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 backoffs", *slept)
	}
	if (*slept)[0] < 3*time.Second {
		t.Errorf("first backoff %v ignored Retry-After: 3", (*slept)[0])
	}
}

// TestSubmitGivesUpAfterMaxAttempts: persistent shedding exhausts the
// attempt budget and surfaces the last status error.
func TestSubmitGivesUpAfterMaxAttempts(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"full"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c, _ := newClient(ts, func(cfg *Config) { cfg.MaxAttempts = 3 })
	_, err := c.Submit(context.Background(), testSpec)
	if err == nil {
		t.Fatal("submit against a permanently shedding server succeeded")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want wrapped 503 StatusError", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", calls.Load())
	}
}

// TestSubmitDoesNotRetryBadRequest: a 400 is the caller's bug, not a
// transient — exactly one attempt.
func TestSubmitDoesNotRetryBadRequest(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad spec"}`, http.StatusBadRequest)
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	_, err := c.Submit(context.Background(), testSpec)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 StatusError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("400 was retried: %d calls", calls.Load())
	}
}

// TestBackoffDeterministicPerSeed: same seed, same jittered delay sequence;
// different seed, a different one. Delays stay within (0, ceil] and the
// ceiling doubles per attempt up to MaxDelay.
func TestBackoffDeterministicPerSeed(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		c := New(Config{BaseURL: "http://x", Seed: seed,
			BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second})
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, c.backoffDelay(i, 0))
		}
		return out
	}
	a, b, c2 := seq(7), seq(7), seq(8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a, b)
		}
		ceil := 50 * time.Millisecond << uint(i)
		if ceil > 2*time.Second {
			ceil = 2 * time.Second
		}
		if a[i] <= 0 || a[i] > ceil {
			t.Fatalf("delay[%d] = %v outside (0, %v]", i, a[i], ceil)
		}
	}
	same := true
	for i := range a {
		if a[i] != c2[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter sequences")
	}
}

// TestRunResubmitsTerminalTransient: a run that lands failed/transient is
// resubmitted (idempotent by content hash) until the server reports done.
func TestRunResubmitsTerminalTransient(t *testing.T) {
	var submits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			if submits.Add(1) <= 2 {
				writeView(w, http.StatusOK, RunView{
					ID: "abc", State: "failed", ErrorKind: "transient", Error: "injected",
				})
				return
			}
			writeView(w, http.StatusOK, doneView("abc"))
			return
		}
		writeView(w, http.StatusOK, doneView("abc"))
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	v, err := c.Run(context.Background(), testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != "done" || submits.Load() != 3 {
		t.Fatalf("state %s after %d submits, want done after 3", v.State, submits.Load())
	}
}

// TestRunDoesNotResubmitDeterministicFailure: a deadlock is a property of
// the spec; resubmitting would loop forever, so the client must not.
func TestRunDoesNotResubmitDeterministicFailure(t *testing.T) {
	var submits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		writeView(w, http.StatusOK, RunView{
			ID: "abc", State: "failed", ErrorKind: "deadlock", Error: "circular wait",
		})
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	_, err := c.Run(context.Background(), testSpec)
	var rfe *RunFailedError
	if !errors.As(err, &rfe) || rfe.Kind != "deadlock" {
		t.Fatalf("err = %v, want *RunFailedError with kind deadlock", err)
	}
	if submits.Load() != 1 {
		t.Fatalf("deterministic failure resubmitted: %d submits", submits.Load())
	}
}

// TestRunGivesUpAfterResubmitLimit: persistent transients stop at the
// resubmit budget with the structured failure.
func TestRunGivesUpAfterResubmitLimit(t *testing.T) {
	var submits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		writeView(w, http.StatusOK, RunView{
			ID: "abc", State: "failed", ErrorKind: "transient", Error: "injected",
		})
	}))
	defer ts.Close()
	c, _ := newClient(ts, func(cfg *Config) { cfg.ResubmitLimit = 2 })
	_, err := c.Run(context.Background(), testSpec)
	var rfe *RunFailedError
	if !errors.As(err, &rfe) {
		t.Fatalf("err = %v, want *RunFailedError", err)
	}
	if rfe.Resubmits != 2 {
		t.Errorf("Resubmits = %d, want 2", rfe.Resubmits)
	}
	if submits.Load() != 3 {
		t.Fatalf("%d submits, want 1 + 2 resubmits", submits.Load())
	}
}

// TestRunPollsUntilTerminal: a queued/running run is polled via the status
// endpoint until done.
func TestRunPollsUntilTerminal(t *testing.T) {
	var statusCalls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			writeView(w, http.StatusAccepted, RunView{ID: "abc", State: "queued"})
			return
		}
		if statusCalls.Add(1) < 3 {
			writeView(w, http.StatusOK, RunView{ID: "abc", State: "running"})
			return
		}
		writeView(w, http.StatusOK, doneView("abc"))
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	v, err := c.Run(context.Background(), testSpec)
	if err != nil || v.State != "done" {
		t.Fatalf("Run = %+v, %v", v, err)
	}
	if statusCalls.Load() != 3 {
		t.Fatalf("polled %d times, want 3", statusCalls.Load())
	}
}

// sseFrame prints one SSE frame.
func sseFrame(id uint64, event, data string) string {
	return fmt.Sprintf("id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
}

// TestWatchEventsResumesFromLastEventID: the stream tears after two events;
// the reconnect must carry Last-Event-ID: 2 and the handler must see ids
// 1..4 exactly once, ending with the terminal state.
func TestWatchEventsResumesFromLastEventID(t *testing.T) {
	var conns atomic.Int32
	var resumeHeader atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			// Two events, then a tear (no terminal state).
			fmt.Fprint(w, sseFrame(1, "state", `{"state":"running"}`))
			fmt.Fprint(w, sseFrame(2, "progress", `{"done":0}`))
		default:
			resumeHeader.Store(r.Header.Get("Last-Event-ID"))
			fmt.Fprint(w, sseFrame(3, "sample", `{"cycle":512}`))
			fmt.Fprint(w, sseFrame(4, "state", `{"state":"done"}`))
		}
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	var got []uint64
	err := c.WatchEvents(context.Background(), "abc", func(ev SSEEvent) error {
		got = append(got, ev.ID)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("handler saw ids %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("handler saw ids %v, want %v", got, want)
		}
	}
	if h := resumeHeader.Load(); h != "2" {
		t.Fatalf("reconnect sent Last-Event-ID %q, want \"2\"", h)
	}
}

// TestWatchEventsGivesUpOnZeroProgressTears: a stream that tears before
// delivering anything, repeatedly, exhausts the reconnect budget instead of
// looping forever.
func TestWatchEventsGivesUpOnZeroProgressTears(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		// Tear immediately: no frames.
	}))
	defer ts.Close()
	c, _ := newClient(ts, func(cfg *Config) { cfg.MaxAttempts = 3 })
	err := c.WatchEvents(context.Background(), "abc", func(SSEEvent) error { return nil })
	if err == nil {
		t.Fatal("WatchEvents on a dead stream returned nil")
	}
	if conns.Load() != 3 {
		t.Fatalf("connected %d times, want MaxAttempts=3", conns.Load())
	}
}

// TestWatchEventsStopsOnHandlerError: a handler error aborts the watch
// without reconnecting.
func TestWatchEventsStopsOnHandlerError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, sseFrame(1, "state", `{"state":"running"}`))
		fmt.Fprint(w, sseFrame(2, "state", `{"state":"done"}`))
	}))
	defer ts.Close()
	c, _ := newClient(ts, nil)
	boom := errors.New("boom")
	err := c.WatchEvents(context.Background(), "abc", func(SSEEvent) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the handler's error", err)
	}
}

// TestContextCancelsRetryLoop: cancellation interrupts the backoff sleep
// promptly and surfaces ctx.Err.
func TestContextCancelsRetryLoop(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"full"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	c := New(Config{BaseURL: ts.URL, Seed: 1, Sleep: func(time.Duration) { cancel() }})
	_, err := c.Submit(ctx, testSpec)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
