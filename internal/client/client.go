// Package client is the resilient Go client for lapermd. It layers the
// retry discipline the service's failure model calls for on top of plain
// net/http:
//
//   - Exponential backoff with deterministic full jitter on retryable HTTP
//     failures (429, 502/503/504, network errors), honoring Retry-After.
//   - Idempotent resubmission: a run is keyed by its RunSpec content hash,
//     so re-POSTing after an ambiguous failure can never duplicate work —
//     the server coalesces or answers from cache. Terminal failures of a
//     retryable kind (transient, panic) are resubmitted the same way,
//     because the server never caches failures.
//   - SSE streams that reconnect on tears and resume from the last event
//     id, so the caller observes every event exactly once.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"laperm/internal/spec"
	"laperm/internal/telemetry"
)

// Client-side metric names, registered when Config.Telemetry is set.
const (
	MetricBackoffs    = "laperm_client_backoffs_total"
	MetricResubmits   = "laperm_client_resubmits_total"
	MetricStreamTears = "laperm_client_stream_tears_total"
)

// Retryable terminal error kinds: failures the server marks as worker
// flakiness rather than properties of the spec. Mirrors the serve package's
// wire kinds (the client deliberately does not import serve).
const (
	KindTransient = "transient"
	KindPanic     = "panic"
)

// RetryableKind reports whether a terminal failure of this kind is worth
// resubmitting.
func RetryableKind(kind string) bool {
	return kind == KindTransient || kind == KindPanic
}

// RunView is the wire representation of a run returned by the submit and
// status endpoints (the server's job view).
type RunView struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	Cached    bool            `json:"cached"`
	Coalesced int64           `json:"coalesced,omitempty"`
	Retries   int64           `json:"retries,omitempty"`
	Error     string          `json:"error,omitempty"`
	ErrorKind string          `json:"error_kind,omitempty"`
	Spec      spec.RunSpec    `json:"spec"`
	Result    json.RawMessage `json:"result,omitempty"`
	Artifacts []string        `json:"artifacts,omitempty"`
}

// Terminal reports whether the run has finished (successfully or not).
func (v RunView) Terminal() bool { return v.State == "done" || v.State == "failed" }

// RunFailedError is a run that reached the failed state: the server's
// structured error kind and message, surfaced as a client error.
type RunFailedError struct {
	ID, Kind, Message string
	// Resubmits counts how many times the client resubmitted before
	// giving up.
	Resubmits int
}

func (e *RunFailedError) Error() string {
	return fmt.Sprintf("client: run %s failed (%s): %s", e.ID, e.Kind, e.Message)
}

// APIError is the server's unified JSON error envelope, attached to every
// non-2xx response: a stable machine-readable kind, a human message, and
// the retry contract.
type APIError struct {
	Kind           string   `json:"kind"`
	Message        string   `json:"message"`
	Retryable      bool     `json:"retryable"`
	RetryAfterSec  int      `json:"retry_after,omitempty"`
	ValidWorkloads []string `json:"valid_workloads,omitempty"`
}

// StatusError is a non-2xx HTTP response that was not retried to success.
type StatusError struct {
	Code int
	Body string
	// API is the parsed error envelope; zero-valued when the body was not
	// an envelope (a proxy's HTML error page, a truncated response).
	API APIError
	// retryAfter carries the server's Retry-After hint as a backoff floor.
	retryAfter time.Duration
}

// newStatusError parses the envelope out of an error response. The
// Retry-After header wins over the envelope's retry_after; either floors
// the client's backoff.
func newStatusError(code int, body []byte, h http.Header) *StatusError {
	e := &StatusError{Code: code, Body: string(body)}
	_ = json.Unmarshal(body, &e.API)
	e.retryAfter = parseRetryAfter(h)
	if e.retryAfter == 0 && e.API.RetryAfterSec > 0 {
		e.retryAfter = time.Duration(e.API.RetryAfterSec) * time.Second
	}
	return e
}

func (e *StatusError) Error() string {
	if e.API.Kind != "" {
		return fmt.Sprintf("client: server returned %d (%s): %s", e.Code, e.API.Kind, e.API.Message)
	}
	return fmt.Sprintf("client: server returned %d: %s", e.Code, strings.TrimSpace(e.Body))
}

// Config configures a Client. The zero value of every field has a usable
// default; only BaseURL is required.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient, when non-nil, replaces http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per HTTP request (first try included);
	// 0 means 5.
	MaxAttempts int
	// ResubmitLimit bounds whole-run resubmissions after terminal
	// retryable failures; 0 means 3, negative disables.
	ResubmitLimit int
	// BaseDelay and MaxDelay shape the backoff: attempt i sleeps a
	// jittered duration in (0, min(MaxDelay, BaseDelay<<i)]. Zero means
	// 50ms and 2s. A server Retry-After floors the delay.
	BaseDelay, MaxDelay time.Duration
	// PollInterval is the status-poll period used by Run; 0 means 10ms.
	PollInterval time.Duration
	// Seed makes the jitter sequence deterministic; 0 means 1.
	Seed uint64
	// Sleep, when non-nil, replaces time.Sleep (tests). It must respect
	// the context's cancellation contract itself only if it blocks
	// forever; the client re-checks ctx after every sleep.
	Sleep func(time.Duration)
	// Telemetry, when non-nil, receives the client's resilience counters
	// (backoff sleeps, run resubmissions, SSE stream tears) — share the
	// server's registry to see both sides in one exposition. Nil keeps
	// every counting site free (nil-safe handles).
	Telemetry *telemetry.Registry
}

// Client is a resilient lapermd client, safe for concurrent use. The
// jitter sequence is a seeded splitmix64 stream advanced atomically, so a
// single-goroutine caller sees a fully deterministic delay sequence and
// concurrent callers interleave it without racing.
type Client struct {
	cfg  Config
	base string
	hc   *http.Client
	// jitterState is the splitmix64 counter; each delay draws one step.
	jitterState atomic.Uint64
	// Resilience counters; nil (and free) without Config.Telemetry.
	backoffs    *telemetry.Counter
	resubmits   *telemetry.Counter
	streamTears *telemetry.Counter
}

// New builds a Client.
func New(cfg Config) *Client {
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	switch {
	case cfg.ResubmitLimit < 0:
		cfg.ResubmitLimit = 0
	case cfg.ResubmitLimit == 0:
		cfg.ResubmitLimit = 3
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 50 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 10 * time.Millisecond
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	c := &Client{cfg: cfg, base: strings.TrimRight(cfg.BaseURL, "/"), hc: hc}
	c.jitterState.Store(seed)
	if reg := cfg.Telemetry; reg != nil {
		c.backoffs = reg.Counter(MetricBackoffs,
			"Backoff sleeps taken before retrying an HTTP request.")
		c.resubmits = reg.Counter(MetricResubmits,
			"Whole-run resubmissions after terminal retryable failures.")
		c.streamTears = reg.Counter(MetricStreamTears,
			"SSE streams that tore before a terminal event and were resumed.")
	}
	return c
}

// nextJitter draws one value from the seeded splitmix64 stream (the same
// mixer construction the fault registry uses, so delays are deterministic
// per seed).
func (c *Client) nextJitter() uint64 {
	x := c.jitterState.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// backoffDelay draws the jittered delay for attempt (0-based), floored by
// any server-provided Retry-After.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.cfg.BaseDelay << uint(attempt)
	if ceil > c.cfg.MaxDelay || ceil <= 0 {
		ceil = c.cfg.MaxDelay
	}
	// Full jitter in (0, ceil]: never zero, so retries always yield.
	d := time.Duration(c.nextJitter()%uint64(ceil)) + 1
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if sl := c.cfg.Sleep; sl != nil {
		sl(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryableStatus classifies HTTP codes worth retrying: shed (429),
// gateway flaps and overload (502/503/504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// parseRetryAfter reads a Retry-After seconds value (0 if absent/invalid).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// do issues one request with backoff-retry on retryable failures and
// returns the final response body and status. The request body is rebuilt
// per attempt from payload (nil for GET).
func (c *Client) do(ctx context.Context, method, path string, payload []byte, header http.Header) (int, http.Header, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			var retryAfter time.Duration
			if se, ok := lastErr.(*StatusError); ok {
				retryAfter = se.retryAfter
			}
			c.backoffs.Inc()
			if err := c.sleep(ctx, c.backoffDelay(attempt-1, retryAfter)); err != nil {
				return 0, nil, nil, err
			}
		}
		var body io.Reader
		if payload != nil {
			body = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return 0, nil, nil, err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, vs := range header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, nil, ctx.Err()
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			continue // network-level failure: retry
		}
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = fmt.Errorf("client: read response: %w", rerr)
			continue
		}
		if retryableStatus(resp.StatusCode) {
			lastErr = newStatusError(resp.StatusCode, data, resp.Header)
			continue
		}
		return resp.StatusCode, resp.Header, data, nil
	}
	return 0, nil, nil, fmt.Errorf("client: giving up after %d attempts: %w", c.cfg.MaxAttempts, lastErr)
}

// Submit POSTs a spec and returns the server's run view. Safe to call
// repeatedly with the same spec: submission is idempotent by content hash.
func (c *Client) Submit(ctx context.Context, sp spec.RunSpec) (RunView, error) {
	payload, err := json.Marshal(sp)
	if err != nil {
		return RunView{}, err
	}
	return c.submitRaw(ctx, payload)
}

// SubmitRaw is Submit for callers holding the spec as JSON already.
func (c *Client) SubmitRaw(ctx context.Context, specJSON []byte) (RunView, error) {
	return c.submitRaw(ctx, specJSON)
}

func (c *Client) submitRaw(ctx context.Context, payload []byte) (RunView, error) {
	code, hdr, data, err := c.do(ctx, http.MethodPost, "/v1/runs", payload, nil)
	if err != nil {
		return RunView{}, err
	}
	if code != http.StatusOK && code != http.StatusAccepted {
		return RunView{}, newStatusError(code, data, hdr)
	}
	var v RunView
	if err := json.Unmarshal(data, &v); err != nil {
		return RunView{}, fmt.Errorf("client: decode submit response: %w", err)
	}
	return v, nil
}

// Status fetches a run's current view.
func (c *Client) Status(ctx context.Context, id string) (RunView, error) {
	code, hdr, data, err := c.do(ctx, http.MethodGet, "/v1/runs/"+id, nil, nil)
	if err != nil {
		return RunView{}, err
	}
	if code != http.StatusOK {
		return RunView{}, newStatusError(code, data, hdr)
	}
	var v RunView
	if err := json.Unmarshal(data, &v); err != nil {
		return RunView{}, fmt.Errorf("client: decode status: %w", err)
	}
	return v, nil
}

// Artifact fetches one artifact of a completed run.
func (c *Client) Artifact(ctx context.Context, id, name string) ([]byte, error) {
	code, hdr, data, err := c.do(ctx, http.MethodGet, "/v1/artifacts/"+id+"/"+name, nil, nil)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, newStatusError(code, data, hdr)
	}
	return data, nil
}

// Run is the resilient end-to-end call: submit, wait for a terminal state,
// and resubmit (up to ResubmitLimit) when the run fails with a retryable
// kind — transient worker failures the server could not absorb itself.
// Returns the final done view, or a *RunFailedError for a persistent or
// non-retryable failure.
func (c *Client) Run(ctx context.Context, sp spec.RunSpec) (RunView, error) {
	payload, err := json.Marshal(sp)
	if err != nil {
		return RunView{}, err
	}
	resubmits := 0
	for {
		v, err := c.submitRaw(ctx, payload)
		if err != nil {
			return RunView{}, err
		}
		for !v.Terminal() {
			if err := c.sleep(ctx, c.cfg.PollInterval); err != nil {
				return RunView{}, err
			}
			if v, err = c.Status(ctx, v.ID); err != nil {
				return RunView{}, err
			}
		}
		if v.State == "done" {
			return v, nil
		}
		if RetryableKind(v.ErrorKind) && resubmits < c.cfg.ResubmitLimit {
			resubmits++
			c.resubmits.Inc()
			if err := c.sleep(ctx, c.backoffDelay(resubmits-1, 0)); err != nil {
				return RunView{}, err
			}
			continue
		}
		return v, &RunFailedError{ID: v.ID, Kind: v.ErrorKind, Message: v.Error, Resubmits: resubmits}
	}
}

// SSEEvent is one server-sent event as delivered to a WatchEvents handler.
type SSEEvent struct {
	// ID is the job-scoped monotonic event id.
	ID uint64
	// Type is the event name: "state", "retry", "progress", "sample".
	Type string
	// Data is the raw JSON payload.
	Data json.RawMessage
}

// WatchEvents streams a run's events, reconnecting on stream tears with
// Last-Event-ID so the handler sees every event at most once and no event
// is lost to a dropped connection. It returns nil once a terminal "state"
// event has been delivered, or the first handler/transport error that
// exhausts the reconnect budget.
func (c *Client) WatchEvents(ctx context.Context, id string, handler func(SSEEvent) error) error {
	var lastID uint64
	tears := 0
	for {
		delivered, terminal, err := c.streamOnce(ctx, "/v1/runs/"+id+"/events", &lastID, handler)
		if err != nil {
			return err
		}
		if terminal {
			return nil
		}
		// The stream tore before a terminal state. Progress resets the
		// reconnect budget; repeated zero-progress tears exhaust it.
		c.streamTears.Inc()
		if delivered > 0 {
			tears = 0
		}
		tears++
		if tears >= c.cfg.MaxAttempts {
			return fmt.Errorf("client: event stream for %s tore %d times without completing", id, tears)
		}
		if err := c.sleep(ctx, c.backoffDelay(tears-1, 0)); err != nil {
			return err
		}
	}
}

// streamOnce runs one SSE connection until the stream ends, delivering
// complete frames to handler and advancing *lastID.
func (c *Client) streamOnce(ctx context.Context, path string, lastID *uint64, handler func(SSEEvent) error) (delivered int, terminal bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, false, err
	}
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, false, ctx.Err()
		}
		return 0, false, nil // transport tear: reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return 0, false, newStatusError(resp.StatusCode, body, resp.Header)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var ev SSEEvent
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, perr := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if perr == nil {
				ev.ID = n
			}
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.Type == "" {
				continue
			}
			if ev.ID > *lastID {
				*lastID = ev.ID
			}
			if herr := handler(ev); herr != nil {
				return delivered, false, herr
			}
			delivered++
			if ev.Type == "state" {
				var st struct {
					State string `json:"state"`
				}
				if json.Unmarshal(ev.Data, &st) == nil && (st.State == "done" || st.State == "failed") {
					return delivered, true, nil
				}
			}
			ev = SSEEvent{}
		}
	}
	// Scanner errors (connection torn mid-frame) and clean EOFs without a
	// terminal event both mean: reconnect and resume.
	return delivered, false, nil
}
