// Package metrics implements the memory-locality analyses of the paper:
// the shared-footprint methodology of Section III-A (Figure 2) over
// workload programs, and small statistical helpers for run results.
package metrics

import (
	"fmt"
	"math"

	"laperm/internal/isa"
)

// blockSet is a set of 128-byte block addresses.
type blockSet map[uint64]struct{}

func tbBlocks(tb *isa.TB) blockSet {
	s := make(blockSet)
	for _, b := range tb.Footprint() {
		s[b] = struct{}{}
	}
	return s
}

func union(dst blockSet, src blockSet) {
	for b := range src {
		dst[b] = struct{}{}
	}
}

func intersectCount(a, b blockSet) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for x := range a {
		if _, ok := b[x]; ok {
			n++
		}
	}
	return n
}

// FootprintStats is the Figure 2 measurement for one workload.
type FootprintStats struct {
	Workload string
	// ParentChild is the mean, over direct-parent TBs, of pc/c: the
	// blocks shared between a direct parent and all of its child TBs,
	// over the child TBs' total footprint (Section III-A).
	ParentChild float64
	// ChildSibling is the mean, over child TBs with at least one
	// sibling, of cos/cs: the blocks a child shares with its siblings
	// over the siblings' total footprint.
	ChildSibling float64
	// ParentParent is the analogous ratio between each parent TB and the
	// union of the other parent TBs (the paper reports an average of
	// 9.3%, far below parent-child reuse).
	ParentParent float64
	// DirectParents and ChildTBs size the measurement.
	DirectParents int
	ChildTBs      int
}

func (f FootprintStats) String() string {
	return fmt.Sprintf("%s: parent-child %.1f%%, child-sibling %.1f%%, parent-parent %.1f%% (%d parents, %d child TBs)",
		f.Workload, 100*f.ParentChild, 100*f.ChildSibling, 100*f.ParentParent, f.DirectParents, f.ChildTBs)
}

// AnalyzeFootprint computes the shared-footprint ratios of Section III-A for
// a workload's root kernel. Memory references are counted in 128-byte
// blocks; the analysis is static (it inspects the programs, as the paper's
// trace-based examination does) and independent of the CDP/DTBL choice.
func AnalyzeFootprint(name string, k *isa.Kernel) FootprintStats {
	st := FootprintStats{Workload: name}

	var pcSum, csSum float64
	var pcN, csN int

	parentSets := make([]blockSet, len(k.TBs))
	for i, tb := range k.TBs {
		parentSets[i] = tbBlocks(tb)
	}

	for i, parent := range k.TBs {
		// Flatten all child TBs launched by this direct parent.
		var childSets []blockSet
		for _, childKernel := range parent.Launches {
			for _, ctb := range childKernel.TBs {
				childSets = append(childSets, tbBlocks(ctb))
			}
		}
		if len(childSets) == 0 {
			continue
		}
		st.DirectParents++
		st.ChildTBs += len(childSets)

		// Parent-child: pc / c.
		c := make(blockSet)
		for _, cs := range childSets {
			union(c, cs)
		}
		if len(c) > 0 {
			pc := intersectCount(parentSets[i], c)
			pcSum += float64(pc) / float64(len(c))
			pcN++
		}

		// Child-sibling: for each child, cos / cs over its siblings.
		// Computed from per-block child counts so the pass is linear
		// in total footprint rather than quadratic in children.
		if len(childSets) >= 2 {
			count := make(map[uint64]int, len(c))
			for _, cs := range childSets {
				for b := range cs {
					count[b]++
				}
			}
			for _, co := range childSets {
				// cs = |union of siblings| = |union| minus the
				// blocks only this child touches; cos = blocks
				// of this child that some sibling also touches.
				exclusive, cos := 0, 0
				for b := range co {
					if count[b] == 1 {
						exclusive++
					} else {
						cos++
					}
				}
				cs := len(c) - exclusive
				if cs == 0 {
					continue
				}
				csSum += float64(cos) / float64(cs)
				csN++
			}
		}
	}

	if pcN > 0 {
		st.ParentChild = pcSum / float64(pcN)
	}
	if csN > 0 {
		st.ChildSibling = csSum / float64(csN)
	}

	// Parent-parent: each parent vs the union of the others.
	if len(k.TBs) >= 2 {
		all := make(blockSet)
		for _, ps := range parentSets {
			union(all, ps)
		}
		// count[b] = number of parents touching block b, to form
		// "union of others" cheaply.
		count := make(map[uint64]int)
		for _, ps := range parentSets {
			for b := range ps {
				count[b]++
			}
		}
		var ppSum float64
		var ppN int
		for _, ps := range parentSets {
			othersLen := 0
			shared := 0
			for b := range all {
				n := count[b]
				if _, mine := ps[b]; mine {
					if n >= 2 {
						othersLen++
						shared++
					}
				} else if n >= 1 {
					othersLen++
				}
			}
			if othersLen > 0 {
				ppSum += float64(shared) / float64(othersLen)
				ppN++
			}
		}
		if ppN > 0 {
			st.ParentParent = ppSum / float64(ppN)
		}
	}
	return st
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty input; panics on
// non-positive values, which indicate a broken speedup computation).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	prod := 1.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("metrics: GeoMean of non-positive value %f", x))
		}
		prod *= x
	}
	return math.Pow(prod, 1/float64(len(xs)))
}
